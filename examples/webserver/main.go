// Webserver: record and reproduce a crash of the uServer (§5.3).
//
// A select()-driven HTTP server handles scripted client connections, then
// receives a crash signal (the paper's SIGSEGV). The instrumented build logs
// one bit per instrumented branch; the replay engine reconstructs HTTP
// request bytes that drive the server down the recorded path to the crash —
// without the bug report ever containing the user's requests. The replay
// search runs on four workers.
//
// Run with: go run ./examples/webserver
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pathlog"
	"pathlog/internal/apps"
)

func main() {
	ctx := context.Background()
	// uServer experiment 2: a GET with query string and Host header.
	scn, err := apps.UServerScenario(2, 72)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program: uServer + ulib, %d branch locations\n", len(scn.Prog.Branches))
	fmt.Printf("user request (stays on the user's machine): %q\n",
		apps.UServerExperiments[1][0])

	// Pre-deployment analysis, seeded by the developer test suite.
	sess := pathlog.SessionOf(scn,
		pathlog.WithAnalysisSpec(apps.UServerAnalysisScenario().Spec),
		pathlog.WithSyscallLog(),
		pathlog.WithDynamicBudget(40, 0),
		pathlog.WithStaticOptions(pathlog.StaticOptions{LibAsSymbolic: true}),
		pathlog.WithReplayBudget(3000, 30*time.Second),
		pathlog.WithReplayWorkers(4),
	)
	in, err := sess.Analyze(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analysis: dynamic %d runs / %d symbolic; static %d symbolic\n",
		in.Dynamic.Runs, in.Dynamic.CountLabel(2), in.Static.CountSymbolic())

	// Sweep the strategy space and walk the overhead/debug-time Pareto
	// frontier: every point below is the best available balance at its
	// overhead level. Each point's plan records and replays the crash.
	points, err := sess.Frontier(ctx,
		pathlog.None(),
		pathlog.Dynamic(),
		pathlog.Union(pathlog.Dynamic(), pathlog.StaticResidue()),
		pathlog.Static(),
		pathlog.All(),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frontier: %d Pareto-optimal strategies\n", len(points))

	for _, pt := range points {
		if !pt.Plan.Instruments() {
			fmt.Printf("\n%-30s baseline: nothing logged, nothing reproducible\n", pt.Strategy)
			continue
		}
		rec, stats, err := sess.RecordWith(ctx, pt.Plan, nil)
		if err != nil {
			log.Fatal(err)
		}
		if rec == nil {
			log.Fatalf("%v: the server did not crash", pt.Strategy)
		}
		res, err := sess.Replay(ctx, rec)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "FAILED (budget exhausted — the paper's inf)"
		if res.Reproduced {
			req := res.InputBytes["conn0"]
			verdict = fmt.Sprintf("reproduced in %d runs (%.0fms, %d workers); reconstructed request %q",
				res.Runs, res.Elapsed.Seconds()*1000, res.Workers, printable(req))
		}
		fmt.Printf("\n%-30s instruments %3d locations (~%.0f est bits/run, ~%.0f est replay runs)\n"+
			"  logged %4d bits (%d B + %d B syscalls)\n  -> %s\n",
			pt.Strategy, pt.Plan.NumInstrumented(), pt.Overhead, pt.ReplayRuns,
			stats.TraceBits, stats.TraceBytes, stats.SyslogBytes, verdict)
		if res.Reproduced {
			if !sess.Verify(res.InputBytes, rec.Crash) {
				log.Fatalf("%v: reconstructed input does not verify", pt.Strategy)
			}
			fmt.Println("  verified: re-running the reconstructed input hits the same crash site")
		}
	}
}

// printable trims trailing NULs and replaces control bytes for display.
func printable(b []byte) string {
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	out := make([]byte, end)
	for i := 0; i < end; i++ {
		c := b[i]
		if c == '\r' || c == '\n' || (c >= 32 && c < 127) {
			out[i] = c
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}
