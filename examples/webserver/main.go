// Webserver: record and reproduce a crash of the uServer (§5.3).
//
// A select()-driven HTTP server handles scripted client connections, then
// receives a crash signal (the paper's SIGSEGV). The instrumented build logs
// one bit per instrumented branch; the replay engine reconstructs HTTP
// request bytes that drive the server down the recorded path to the crash —
// without the bug report ever containing the user's requests.
//
// Run with: go run ./examples/webserver
package main

import (
	"fmt"
	"log"
	"time"

	"pathlog"
	"pathlog/internal/apps"
)

func main() {
	// uServer experiment 2: a GET with query string and Host header.
	scn, err := apps.UServerScenario(2, 72)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("program: uServer + ulib, %d branch locations\n", len(scn.Prog.Branches))
	fmt.Printf("user request (stays on the user's machine): %q\n",
		apps.UServerExperiments[1][0])

	// Pre-deployment analysis, seeded by the developer test suite.
	an := apps.UServerAnalysisScenario()
	in := pathlog.Inputs{
		Dynamic: an.AnalyzeDynamic(pathlog.DynamicOptions{MaxRuns: 40}),
		Static:  an.AnalyzeStatic(pathlog.StaticOptions{LibAsSymbolic: true}),
	}
	fmt.Printf("analysis: dynamic %d runs / %d symbolic; static %d symbolic\n",
		in.Dynamic.Runs, in.Dynamic.CountLabel(2), in.Static.CountSymbolic())

	for _, method := range pathlog.Methods {
		plan := scn.Plan(method, in, true)
		rec, stats, err := scn.Record(plan)
		if err != nil {
			log.Fatal(err)
		}
		if rec == nil {
			log.Fatalf("%v: the server did not crash", method)
		}
		res := scn.Replay(rec, pathlog.ReplayOptions{
			MaxRuns:    3000,
			TimeBudget: 30 * time.Second,
		})
		verdict := "FAILED (budget exhausted — the paper's inf)"
		if res.Reproduced {
			req := res.InputBytes["conn0"]
			verdict = fmt.Sprintf("reproduced in %d runs (%.0fms); reconstructed request %q",
				res.Runs, res.Elapsed.Seconds()*1000, printable(req))
		}
		fmt.Printf("\n%-15s instruments %3d locations, logged %4d bits (%d B + %d B syscalls)\n  -> %s\n",
			method, plan.NumInstrumented(), stats.TraceBits,
			stats.TraceBytes, stats.SyslogBytes, verdict)
		if res.Reproduced {
			if !scn.VerifyInput(res.InputBytes, rec.Crash) {
				log.Fatalf("%v: reconstructed input does not verify", method)
			}
			fmt.Println("  verified: re-running the reconstructed input hits the same crash site")
		}
	}
}

// printable trims trailing NULs and replaces control bytes for display.
func printable(b []byte) string {
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	out := make([]byte, end)
	for i := 0; i < end; i++ {
		c := b[i]
		if c == '\r' || c == '\n' || (c >= 32 && c < 127) {
			out[i] = c
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}
