// Quickstart: the paper's Listing 1 end to end, through the Session API.
//
// A program computes a Fibonacci number for one of two options. Only the two
// option branches depend on input, so the selective instrumentation methods
// log exactly two bits per run — and those two bits are enough to reproduce
// a crash without ever shipping the user's input.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"pathlog"
)

// The program under test: Listing 1 with a planted crash on option 'c' so
// there is a bug to reproduce.
const source = `
int fibonacci(int n) {
	int a = 0;
	int b = 1;
	int i;
	for (i = 0; i < n; i++) {
		int t = a + b;
		a = b;
		b = t;
	}
	return a;
}

int main() {
	char opt[8];
	getarg(0, opt, 8);
	int result = 0;
	if (opt[0] == 'a') {
		result = fibonacci(20);
	} else if (opt[0] == 'b') {
		result = fibonacci(40);
	} else if (opt[0] == 'c') {
		crash(13); /* the bug a user will hit */
	}
	print_str("Result: ");
	print_int(result);
	print_char('\n');
	return 0;
}
`

func main() {
	ctx := context.Background()
	prog, err := pathlog.Compile(pathlog.Unit{Name: "fib.mc", Source: source})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d branch locations\n", len(prog.Branches))

	// The session: one argument of up to 4 bytes. The neutral seed is what
	// analysis and replay see; the user's actual input is 'c'.
	sess := pathlog.NewSession(prog,
		&pathlog.Spec{Args: []pathlog.Stream{pathlog.ArgStream(0, "x", 4)}},
		pathlog.WithName("quickstart"),
		pathlog.WithUserBytes(map[string][]byte{"arg0": []byte("c")}),
		pathlog.WithSyscallLog(),
		pathlog.WithDynamicBudget(50, 0),
		pathlog.WithReplayBudget(500, 0),
	)

	// Pre-deployment analysis: which branches depend on input?
	in, err := sess.Analyze(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dynamic analysis: %d runs, %d symbolic / %d concrete branch locations\n",
		in.Dynamic.Runs,
		in.Dynamic.CountLabel(2), // concolic.Symbolic
		in.Dynamic.CountLabel(1)) // concolic.Concrete
	fmt.Printf("static analysis:  %d symbolic branch locations\n",
		in.Static.CountSymbolic())

	// The paper's titular balance as an API: sweep strategies, print the
	// Pareto frontier of (record overhead, estimated debug time).
	points, err := sess.Frontier(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\noverhead/debug-time frontier:")
	for _, pt := range points {
		fmt.Printf("  %-28s %2d locations  ~%4.0f bits/run  ~%4.1f replay runs\n",
			pt.Strategy, pt.Plan.NumInstrumented(), pt.Overhead, pt.ReplayRuns)
	}
	fmt.Println()

	for _, method := range pathlog.Methods {
		plan, err := sess.PlanFor(ctx, method)
		if err != nil {
			log.Fatal(err)
		}

		// User site: the instrumented run crashes; the bug report holds the
		// branch bits and the crash site — no input bytes.
		rec, stats, err := sess.RecordWith(ctx, plan, nil)
		if err != nil {
			log.Fatal(err)
		}
		if rec == nil {
			log.Fatalf("%v: user run did not crash", method)
		}

		// Developer site: reproduce. Replay would refuse a recording whose
		// plan or program did not match this session.
		res, err := sess.Replay(ctx, rec)
		if err != nil {
			log.Fatal(err)
		}
		status := "failed"
		if res.Reproduced {
			status = fmt.Sprintf("reproduced in %d runs; input arg0=%q",
				res.Runs, trimNul(res.InputBytes["arg0"]))
		}
		fmt.Printf("%-15s  %2d branches instrumented, %2d bits logged -> %s\n",
			method, plan.NumInstrumented(), stats.TraceBits, status)

		if res.Reproduced && !sess.Verify(res.InputBytes, rec.Crash) {
			log.Fatalf("%v: reproduced input does not verify", method)
		}
	}
	fmt.Println("every reproduced input was re-run and verified to hit the same crash site")
}

func trimNul(b []byte) []byte {
	for i, c := range b {
		if c == 0 {
			return b[:i]
		}
	}
	return b
}
