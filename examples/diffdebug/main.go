// Diffdebug: reproduce a diff execution from its branch log (§5.4).
//
// diff is the paper's stress case: nearly every branch depends on the two
// input files, so the dynamic method (with its low analysis coverage) leaves
// many symbolic branches unlogged and replay blows up — while dynamic+static
// replays quickly. This example shows that contrast directly, with the
// replay search fanned out over four workers (WithReplayWorkers).
//
// Run with: go run ./examples/diffdebug
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"pathlog"
	"pathlog/internal/apps"
)

func main() {
	ctx := context.Background()
	scn, err := apps.DiffExperimentScenario(1)
	if err != nil {
		log.Fatal(err)
	}
	pair := apps.DiffExperiments[0]
	fmt.Printf("program: diff + ulib, %d branch locations\n", len(scn.Prog.Branches))
	fmt.Printf("user compares (private):\n  a.txt: %q\n  b.txt: %q\n", pair[0], pair[1])

	// Low-coverage dynamic analysis — §5.4 reports only 20% coverage for
	// diff within the budget — plus the full static analysis.
	sess := pathlog.SessionOf(scn,
		pathlog.WithAnalysisSpec(apps.AnalysisSpec(scn).Spec),
		pathlog.WithSyscallLog(),
		pathlog.WithDynamicBudget(30, 0),
		pathlog.WithReplayBudget(2500, 15*time.Second),
		pathlog.WithReplayWorkers(4),
	)
	in, err := sess.Analyze(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analysis: dynamic labels %d symbolic; static labels %d symbolic (of %d)\n\n",
		in.Dynamic.CountLabel(2), in.Static.CountSymbolic(), len(scn.Prog.Branches))

	for _, method := range pathlog.Methods {
		plan, err := sess.PlanFor(ctx, method)
		if err != nil {
			log.Fatal(err)
		}
		rec, _, err := sess.RecordWith(ctx, plan, nil)
		if err != nil {
			log.Fatal(err)
		}
		if rec == nil {
			log.Fatalf("%v: no crash recorded", method)
		}
		res, err := sess.Replay(ctx, rec)
		if err != nil {
			log.Fatal(err)
		}
		if res.Reproduced {
			fmt.Printf("%-15s reproduced in %4d runs (%s, %d workers); %d/%d symbolic locations logged/unlogged\n",
				method, res.Runs, res.Elapsed.Round(time.Millisecond), res.Workers,
				res.SymLoggedLocs, res.SymNotLoggedLocs)
			fmt.Printf("%-15s  reconstructed a.txt: %q\n", "",
				printable(res.InputBytes["file:a.txt"]))
			fmt.Printf("%-15s  reconstructed b.txt: %q\n", "",
				printable(res.InputBytes["file:b.txt"]))
		} else {
			fmt.Printf("%-15s inf — budget exhausted after %d runs (the paper's Table 6 result for dynamic)\n",
				method, res.Runs)
		}
	}
}

func printable(b []byte) string {
	end := len(b)
	for end > 0 && b[end-1] == 0 {
		end--
	}
	out := make([]byte, end)
	for i := 0; i < end; i++ {
		c := b[i]
		if c == '\n' || (c >= 32 && c < 127) {
			out[i] = c
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}
