package pathlog

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"pathlog/internal/instrument"
)

// subsetStrategy instruments an arbitrary branch subset — the adversarial
// input for the frontier property test.
type subsetStrategy struct {
	name string
	ids  []BranchID
}

func (s subsetStrategy) Name() string { return s.name }

func (s subsetStrategy) Plan(ctx context.Context, pc *PlanContext) (*Plan, error) {
	set := make(map[BranchID]bool, len(s.ids))
	for _, id := range s.ids {
		set[id] = true
	}
	return pc.NewPlan(s.name, set), nil
}

// dominates reports weak Pareto dominance of a over b with at least one
// strict improvement.
func dominates(aOver, aRuns, bOver, bRuns float64) bool {
	return aOver <= bOver && aRuns <= bRuns && (aOver < bOver || aRuns < bRuns)
}

// TestFrontierProperty sweeps random branch subsets and checks the
// frontier contract: output sorted by strictly increasing overhead with
// strictly decreasing replay estimates, no returned point dominated by any
// swept plan, and every swept plan either on the frontier (by fingerprint)
// or matched/dominated by a frontier point.
func TestFrontierProperty(t *testing.T) {
	ctx := context.Background()
	sess := chainSession(t)
	nBranches := len(sess.Program().Branches)

	rng := rand.New(rand.NewSource(7))
	var strategies []Strategy
	for i := 0; i < 40; i++ {
		var ids []BranchID
		for b := 0; b < nBranches; b++ {
			if rng.Intn(2) == 0 {
				ids = append(ids, BranchID(b))
			}
		}
		strategies = append(strategies, subsetStrategy{name: fmt.Sprintf("subset-%d", i), ids: ids})
	}

	points, err := sess.Frontier(ctx, strategies...)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("empty frontier")
	}

	for i := 1; i < len(points); i++ {
		if !(points[i].Overhead > points[i-1].Overhead) {
			t.Errorf("overhead not strictly increasing at %d: %.3f then %.3f",
				i, points[i-1].Overhead, points[i].Overhead)
		}
		if !(points[i].ReplayRuns < points[i-1].ReplayRuns) {
			t.Errorf("replay runs not strictly decreasing at %d: %.3f then %.3f",
				i, points[i-1].ReplayRuns, points[i].ReplayRuns)
		}
	}

	// Re-plan every swept strategy to compare against the frontier.
	in, err := sess.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	pc := instrument.NewPlanContext(sess.Program(), in, true)
	onFrontier := make(map[string]bool)
	for _, pt := range points {
		onFrontier[pt.Plan.Fingerprint()] = true
	}
	for _, s := range strategies {
		p, err := s.Plan(ctx, pc)
		if err != nil {
			t.Fatal(err)
		}
		over, runs := p.EstimatedOverhead(), p.EstimatedReplayRuns()
		for _, pt := range points {
			if dominates(over, runs, pt.Overhead, pt.ReplayRuns) {
				t.Errorf("swept plan %s (%.3f,%.3f) dominates frontier point %s (%.3f,%.3f)",
					s.Name(), over, runs, pt.Strategy, pt.Overhead, pt.ReplayRuns)
			}
		}
		if onFrontier[p.Fingerprint()] {
			continue
		}
		covered := false
		for _, pt := range points {
			if pt.Overhead <= over && pt.ReplayRuns <= runs {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("swept plan %s (%.3f,%.3f) neither on frontier nor covered", s.Name(), over, runs)
		}
	}
}

// TestSessionFrontierDefaultSweep runs the no-argument sweep end to end on
// the chain program: the frontier must hold the paper's structure — the
// baseline at zero overhead, full instrumentation at estimated replay runs
// of exactly one.
func TestSessionFrontierDefaultSweep(t *testing.T) {
	ctx := context.Background()
	sess := chainSession(t)
	points, err := sess.Frontier(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 2 {
		t.Fatalf("frontier has %d points", len(points))
	}
	first, last := points[0], points[len(points)-1]
	if first.Overhead != 0 || first.Plan.Instruments() {
		t.Errorf("first point is not the baseline: %+v", first)
	}
	if last.ReplayRuns != 1 {
		t.Errorf("last point estimates %.2f replay runs, want 1 (full instrumentation)", last.ReplayRuns)
	}
	for _, pt := range points {
		if err := pt.Plan.ValidateForProgram(sess.Program()); err != nil {
			t.Errorf("%s: %v", pt.Strategy, err)
		}
	}
}

// TestSessionWithStrategyEndToEnd drives a composed strategy through
// record and replay — the session workflow with no legacy Method anywhere.
func TestSessionWithStrategyEndToEnd(t *testing.T) {
	ctx := context.Background()
	sess := chainSession(t, WithStrategy(Union(Dynamic(), StaticResidue())))
	plan, err := sess.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Strategy != "union(dynamic,static-residue)" {
		t.Errorf("strategy label: %q", plan.Strategy)
	}
	rec, _, err := sess.RecordWith(ctx, plan, nil)
	if err != nil || rec == nil {
		t.Fatalf("record: %v", err)
	}
	if rec.Fingerprint != plan.Fingerprint() {
		t.Errorf("recording stamp %q != plan fingerprint %q", rec.Fingerprint, plan.Fingerprint())
	}
	res := mustReplay(t, ctx, sess, rec)
	if !res.Reproduced {
		t.Fatalf("not reproduced: %+v", res)
	}
	if !sess.Verify(res.InputBytes, rec.Crash) {
		t.Fatal("input does not verify")
	}
}

// TestSessionReplayRefusesMismatch: a recording that does not fit the
// session must be refused up front, not searched.
func TestSessionReplayRefusesMismatch(t *testing.T) {
	ctx := context.Background()
	sess := chainSession(t)
	rec, _, err := sess.Record(ctx, nil)
	if err != nil || rec == nil {
		t.Fatalf("record: %v", err)
	}

	// Tampered stamp: plan and fingerprint disagree.
	tampered := *rec
	tampered.Fingerprint = "0123456789abcdef0123456789abcdef"
	if _, err := sess.Replay(ctx, &tampered); err == nil {
		t.Error("tampered fingerprint accepted")
	}

	// Same recording against a different program: program hash mismatch.
	otherProg, err := Compile(Unit{Name: "other.mc", Source: `
int main() {
	char a[8];
	getarg(0, a, 8);
	if (a[0] == 'A') { crash(1); }
	if (a[1] == 'B') { }
	if (a[2] == 'C') { }
	if (a[3] == 'D') { }
	if (a[4] == 'E') { }
	if (a[5] == 'F') { }
	return 0;
}
`})
	if err != nil {
		t.Fatal(err)
	}
	other := NewSession(otherProg, &Spec{Args: []Stream{ArgStream(0, "xxxxxx", 8)}})
	if _, err := other.Replay(ctx, rec); err == nil {
		t.Error("recording accepted for the wrong program")
	}

	// Nil recording.
	if _, err := sess.Replay(ctx, nil); err == nil {
		t.Error("nil recording accepted")
	}

	// A bad recording fails the whole ReproduceAll batch before any search.
	if _, err := other.ReproduceAll(ctx, []*Recording{rec}); err == nil {
		t.Error("ReproduceAll accepted a mismatched recording")
	}
}
