package pathlog

import (
	"context"
	"strings"
	"testing"
	"time"

	"pathlog/internal/lang"
)

// demoRefuseSrc is built so that evidence-based demotion is measurably
// wrong: the uninstrumented crash driver (b[0] == 'K') executes BEFORE the
// always-agreeing instrumented loop branch (a[i] == 'x', user bytes equal
// the neutral seed). With the loop instrumented, replay flips the driver's
// pending alternative immediately and reproduces in ~2 runs, and the loop
// bits never once disagree — the exact Demotable shape. Demoted, the loop
// forks at every iteration AFTER the driver's fork, so depth-first search
// buries the productive driver alternative under the loop's speculative
// subtree and the measured replay regresses far past the target.
const demoRefuseSrc = `
int main() {
	char b[4];
	getarg(1, b, 4);
	char a[8];
	getarg(0, a, 8);
	int hit = 0;
	if (b[0] == 'K') {
		hit = 1;
	}
	int i;
	int n = 0;
	for (i = 0; i < 6; i = i + 1) {
		if (a[i] == 'x') {
			n = n + 1;
		}
	}
	if (hit == 1) {
		crash(7);
	}
	print_str("ok");
	return 0;
}
`

// demoAcceptSrc reorders the same ingredients so demotion is measurably
// right: the agreeing loop executes BEFORE the driver, the driver's fork
// is always the newest pending set, and depth-first search pops it first —
// dropping the loop's bits cannot regress the search, only shrink the log.
const demoAcceptSrc = `
int main() {
	char a[8];
	getarg(0, a, 8);
	int n = 0;
	int i;
	for (i = 0; i < 6; i = i + 1) {
		if (a[i] == 'x') {
			n = n + 1;
		}
	}
	char b[4];
	getarg(1, b, 4);
	if (b[0] == 'K') {
		crash(7);
	}
	print_str("ok");
	return 0;
}
`

// demoSession compiles one of the demo sources into a session whose plan
// instruments everything except the branches on the marker lines (the
// crash driver chain), so the instrumented set is exactly the
// always-agreeing branches demotion will propose.
func demoSession(t *testing.T, src string, uninstrumented ...string) (*Session, Strategy) {
	t.Helper()
	prog, err := Compile(Unit{Name: "demo.mc", Source: src})
	if err != nil {
		t.Fatal(err)
	}
	skip := make(map[lang.BranchID]bool)
	lines := strings.Split(src, "\n")
	for _, marker := range uninstrumented {
		found := false
		for _, b := range prog.Branches {
			if b.Pos.Line >= 1 && b.Pos.Line <= len(lines) &&
				strings.Contains(lines[b.Pos.Line-1], marker) {
				skip[b.ID] = true
				found = true
			}
		}
		if !found {
			t.Fatalf("marker %q matches no branch", marker)
		}
	}
	strat := &fixedSetStrategy{prog: prog, skip: skip}
	spec := &Spec{Args: []Stream{ArgStream(0, "xxxxxx", 8), ArgStream(1, "zzz", 4)}}
	sess := NewSession(prog, spec,
		WithUserBytes(map[string][]byte{"arg0": []byte("xxxxxx"), "arg1": []byte("K")}),
		WithSyscallLog(),
		WithStrategy(strat),
		WithReplayBudget(400, 10*time.Second),
	)
	return sess, strat
}

// fixedSetStrategy instruments every branch except an explicit skip set.
type fixedSetStrategy struct {
	prog *Program
	skip map[lang.BranchID]bool
}

func (f *fixedSetStrategy) Name() string { return "all-minus-drivers" }

func (f *fixedSetStrategy) Plan(ctx context.Context, pc *PlanContext) (*Plan, error) {
	set := make(map[lang.BranchID]bool)
	for _, b := range f.prog.Branches {
		if !f.skip[b.ID] {
			set[b.ID] = true
		}
	}
	return pc.NewPlan(f.Name(), set), nil
}

// demoCorpus records the session's user input once and wraps it as a
// one-member corpus carrying the redeployment input.
func demoCorpus(t *testing.T, sess *Session) *Corpus {
	t.Helper()
	ctx := context.Background()
	plan, err := sess.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := sess.RecordWith(ctx, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("demo program did not crash")
	}
	c, err := BuildCorpus([]CorpusMember{{
		Rec:       rec,
		ModTime:   time.Unix(1_700_000_000, 0),
		UserBytes: map[string][]byte{"arg0": []byte("xxxxxx"), "arg1": []byte("K")},
	}}, CorpusIngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCorpusBalanceRefusesMeasuredRegression is the demotion-safety
// acceptance check: every candidate branch is evidence-demotable (bits
// consumed, zero disagreements), yet dropping them measurably regresses
// the replay past the target — so CorpusBalance must refuse the demotion
// by name, keep the measured plan deployed, and never advance the lineage
// to the regressed generation.
func TestCorpusBalanceRefusesMeasuredRegression(t *testing.T) {
	ctx := context.Background()
	sess, _ := demoSession(t, demoRefuseSrc, "b[0] == 'K'", "hit == 1")
	c := demoCorpus(t, sess)

	tr, err := sess.CorpusBalance(ctx, c, BalanceOptions{TargetReplayRuns: 10, MaxGenerations: 3})
	if err != nil {
		t.Fatalf("CorpusBalance: %v", err)
	}
	if !tr.Converged {
		t.Fatalf("population did not meet the target at generation 0: %s", tr.Reason)
	}
	gen0 := tr.Points[0]
	if gen0.MeanReplayRuns > 10 || gen0.Reproduced != gen0.Members {
		t.Fatalf("fixture drifted: gen0 measured %.1f runs, %d/%d", gen0.MeanReplayRuns, gen0.Reproduced, gen0.Members)
	}
	if tr.DemotionRefused == "" {
		t.Fatal("demotion was not refused — the regression went unmeasured")
	}
	if !strings.Contains(tr.DemotionRefused, "refused") || !strings.Contains(tr.DemotionRefused, "b") {
		t.Errorf("refusal does not name the demotion: %q", tr.DemotionRefused)
	}
	final := tr.Final()
	if final.Plan.Fingerprint() != gen0.Plan.Fingerprint() {
		t.Errorf("refused demotion still replaced the plan: %s -> %s",
			gen0.Plan.Fingerprint(), final.Plan.Fingerprint())
	}
	if final.Plan.Generation != 0 {
		t.Errorf("refused demotion advanced the lineage to generation %d", final.Plan.Generation)
	}
	// The evidence really did propose a demotion — the refusal was a
	// measured decision, not a missing candidate.
	if len(gen0.Outcome.Profile.Demotable(gen0.Plan.Instrumented)) == 0 {
		t.Error("fixture drifted: no demotable candidates at generation 0")
	}
}

// TestCorpusBalanceAcceptsMeasuredDemotion is the mirror image: the same
// agreeing branches, but ordered so dropping them cannot regress the
// search — the demotion must be accepted with measured overhead strictly
// below the pre-demotion plan and the report still reproducing.
func TestCorpusBalanceAcceptsMeasuredDemotion(t *testing.T) {
	ctx := context.Background()
	sess, _ := demoSession(t, demoAcceptSrc, "b[0] == 'K'")
	c := demoCorpus(t, sess)

	tr, err := sess.CorpusBalance(ctx, c, BalanceOptions{TargetReplayRuns: 10, MaxGenerations: 3})
	if err != nil {
		t.Fatalf("CorpusBalance: %v", err)
	}
	if !tr.Converged {
		t.Fatalf("did not converge: %s", tr.Reason)
	}
	if tr.DemotionRefused != "" {
		t.Fatalf("safe demotion refused: %s", tr.DemotionRefused)
	}
	final := tr.Final()
	gen0 := tr.Points[0]
	if len(final.Demoted) == 0 || final.Plan.Generation == 0 {
		t.Fatalf("nothing was demoted: %+v (%s)", final, tr.Reason)
	}
	if !(final.MeanOverheadBits < gen0.MeanOverheadBits) {
		t.Errorf("measured overhead did not shrink: %.1f -> %.1f", gen0.MeanOverheadBits, final.MeanOverheadBits)
	}
	if final.Reproduced != final.Members {
		t.Errorf("demoted generation lost reproductions: %d/%d", final.Reproduced, final.Members)
	}
	if final.MeanReplayRuns > 10 {
		t.Errorf("demoted generation misses the target: %.1f runs", final.MeanReplayRuns)
	}
	if final.Plan.Parent != gen0.Plan.Fingerprint() {
		t.Errorf("demoted generation's lineage broken: parent %s, want %s",
			final.Plan.Parent, gen0.Plan.Fingerprint())
	}
}

// TestCorpusBalanceNeedsInputs: an ingested corpus with no attached user
// inputs cannot be redeployed; the error points at the alternatives.
func TestCorpusBalanceNeedsInputs(t *testing.T) {
	ctx := context.Background()
	sess, _ := demoSession(t, demoAcceptSrc, "b[0] == 'K'")
	c := demoCorpus(t, sess)
	c.Reports[0].UserBytes = nil
	_, err := sess.CorpusBalance(ctx, c, BalanceOptions{})
	if err == nil || !strings.Contains(err.Error(), "AttachInput") {
		t.Errorf("input-less corpus accepted, or error unhelpful: %v", err)
	}
}

// TestReplayCorpusRefusesMixedPlans: members recorded under different
// plans must not blend into one attribution.
func TestReplayCorpusRefusesMixedPlans(t *testing.T) {
	ctx := context.Background()
	sess, _ := demoSession(t, demoAcceptSrc, "b[0] == 'K'")
	plan, err := sess.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	recA, _, err := sess.RecordWith(ctx, plan, nil)
	if err != nil || recA == nil {
		t.Fatalf("record: %v", err)
	}
	allPlan, err := sess.PlanWith(ctx, All())
	if err != nil {
		t.Fatal(err)
	}
	recB, _, err := sess.RecordWith(ctx, allPlan, nil)
	if err != nil || recB == nil {
		t.Fatalf("record: %v", err)
	}
	c, err := BuildCorpus([]CorpusMember{
		{Rec: recA, ModTime: time.Unix(1_700_000_000, 0)},
		{Rec: recB, ModTime: time.Unix(1_700_000_100, 0)},
	}, CorpusIngestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.ReplayCorpus(ctx, c, CorpusOptions{})
	if err == nil || !strings.Contains(err.Error(), "mixed plans") {
		t.Errorf("mixed-plan corpus accepted: %v", err)
	}
}

// TestRefineCorpusPersistsAndDemotes: one corpus refinement step on the
// accept fixture promotes nothing (the search is already fast), demotes
// the agreeing branches, and — store-backed — retains both generations,
// the merged profile, and the measured lineage.
func TestRefineCorpusPersistsAndDemotes(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	sess, _ := demoSession(t, demoAcceptSrc, "b[0] == 'K'")
	sess.cfg.storeDir = dir
	c := demoCorpus(t, sess)

	ref, err := sess.RefineCorpus(ctx, c, CorpusOptions{Shards: 2})
	if err != nil {
		t.Fatalf("RefineCorpus: %v", err)
	}
	if len(ref.Demoted) == 0 {
		t.Fatalf("no demotion proposed: %+v", ref)
	}
	if ref.Plan.Fingerprint() == ref.Base.Fingerprint() {
		t.Fatal("refinement was a fixed point despite demotable branches")
	}
	if ref.Plan.Generation != ref.Base.Generation+1 || ref.Plan.Parent != ref.Base.Fingerprint() {
		t.Errorf("lineage: gen %d parent %s", ref.Plan.Generation, ref.Plan.Parent)
	}
	st, err := sess.PlanStore()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.GetPlan(ref.Plan.Fingerprint()); err != nil {
		t.Errorf("refined plan not retained: %v", err)
	}
	if _, err := st.GetProfile(ref.Base.Fingerprint()); err != nil {
		t.Errorf("merged corpus profile not retained under the base generation: %v", err)
	}

	// The refined chain head is now the session's latest generation: a
	// second step over the stale gen-0 corpus must be refused as stale.
	_, err = sess.RefineCorpus(ctx, c, CorpusOptions{})
	if err == nil || !strings.Contains(err.Error(), "stale") {
		t.Errorf("stale corpus accepted for refinement: %v", err)
	}
}

// TestColdSweepCalibratesFromRetainedProfiles: satellite acceptance for
// profile retention — a cold session's frontier estimates for unmeasured
// plans move once the store holds a prior session's per-generation
// profiles, because CalibrateCosts runs before the first sweep.
func TestColdSweepCalibratesFromRetainedProfiles(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	// Warm: run the adaptive loop so the store retains profiles.
	warm := storeChainSession(t, dir, WithReplayBudget(500, 10*time.Second))
	if _, err := warm.AutoBalance(ctx, nil, BalanceOptions{MaxGenerations: 2, TargetReplayRuns: 2}); err != nil {
		t.Fatal(err)
	}
	st, err := warm.PlanStore()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := st.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Profiles == 0 {
		t.Fatal("warm AutoBalance retained no search profiles")
	}

	// The uncalibrated baseline: a storeless session pricing the same
	// partial strategy (3 of 6 symbolic branches instrumented, so the
	// replay estimate sums real uninstrumented rates).
	bare := chainSession(t)
	basePlan, err := bare.PlanWith(ctx, Budgeted(Dynamic(), 3))
	if err != nil {
		t.Fatal(err)
	}

	// Cold store-backed session: a sweep triggers the one-time
	// calibration, after which un-cached plans price with observed rates.
	cold := storeChainSession(t, dir)
	if _, err := cold.Frontier(ctx, None()); err != nil {
		t.Fatal(err)
	}
	coldPlan, err := cold.PlanWith(ctx, Budgeted(Dynamic(), 3))
	if err != nil {
		t.Fatal(err)
	}
	if basePlan.EstimatedReplayRuns() == coldPlan.EstimatedReplayRuns() &&
		basePlan.EstimatedOverhead() == coldPlan.EstimatedOverhead() &&
		basePlan.Fingerprint() == coldPlan.Fingerprint() {
		t.Errorf("cold sweep pricing unchanged by retained profiles: %.3f bits / %.3f runs",
			coldPlan.EstimatedOverhead(), coldPlan.EstimatedReplayRuns())
	}

	// Deployment paths stay uncalibrated by design: a session that never
	// sweeps builds the exact same generation-0 plan the warm session
	// deployed, so refinement chains still resume across sessions.
	noSweep := storeChainSession(t, dir)
	p, err := noSweep.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	warmP, err := warm.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if p.Fingerprint() != warmP.Fingerprint() {
		t.Errorf("calibration leaked into deployment planning: %s vs %s", p.Fingerprint(), warmP.Fingerprint())
	}
}

// TestWorkloadHashIdentity: satellite acceptance for workload identity —
// renaming a session must not move its measured history, changing its
// user bytes must.
func TestWorkloadHashIdentity(t *testing.T) {
	a := chainSession(t, WithName("one"))
	b := chainSession(t, WithName("two"))
	if a.WorkloadHash() != b.WorkloadHash() {
		t.Error("renamed session changed its workload hash")
	}
	c := chainSession(t, WithUserBytes(map[string][]byte{"arg0": []byte("REPLAX")}))
	if c.WorkloadHash() == a.WorkloadHash() {
		t.Error("different user bytes share a workload hash")
	}
	if len(a.WorkloadHash()) != 32 {
		t.Errorf("workload hash %q is not 32 hex chars", a.WorkloadHash())
	}
}
