package pathlog

import (
	"testing"
	"time"
)

const apiTestSrc = `
int main() {
	char a[8];
	getarg(0, a, 8);
	if (a[0] == 'G' && a[1] == 'O') {
		crash(3);
	}
	print_str("fine");
	return 0;
}
`

func apiScenario(t *testing.T) *Scenario {
	t.Helper()
	prog, err := Compile(Unit{Name: "t.mc", Source: apiTestSrc})
	if err != nil {
		t.Fatal(err)
	}
	return &Scenario{
		Name:      "api",
		Prog:      prog,
		Spec:      &Spec{Args: []Stream{ArgStream(0, "xx", 4)}},
		UserBytes: map[string][]byte{"arg0": []byte("GO")},
	}
}

func TestCompileError(t *testing.T) {
	if _, err := Compile(Unit{Name: "bad.mc", Source: "int main( {"}); err == nil {
		t.Fatal("expected parse error")
	}
	if _, err := Compile(Unit{Name: "nomain.mc", Source: "int f() { return 0; }"}); err == nil {
		t.Fatal("expected link error")
	}
}

func TestCompileWithLibUnit(t *testing.T) {
	prog, err := Compile(
		Unit{Name: "app.mc", Source: `int main() { return helper(); }`},
		Unit{Name: "lib.mc", Lib: true, Source: `int helper() { return 7; }`},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.FuncList) != 2 {
		t.Fatalf("functions: %d", len(prog.FuncList))
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	scn := apiScenario(t)
	in := Inputs{
		Dynamic: scn.AnalyzeDynamic(DynamicOptions{MaxRuns: 50}),
		Static:  scn.AnalyzeStatic(StaticOptions{}),
	}
	for _, m := range Methods {
		plan := scn.Plan(m, in, true)
		rec, stats, err := scn.Record(plan)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if rec == nil {
			t.Fatalf("%v: no recording", m)
		}
		if stats.TraceBits != int64(stats.InstrumentedExecs) {
			t.Fatalf("%v: bits/execs mismatch", m)
		}
		res := scn.Replay(rec, ReplayOptions{MaxRuns: 500, TimeBudget: 10 * time.Second})
		if !res.Reproduced {
			t.Fatalf("%v: not reproduced", m)
		}
		got := res.InputBytes["arg0"]
		if got[0] != 'G' || got[1] != 'O' {
			t.Fatalf("%v: input %q", m, got)
		}
	}
}

func TestReproduceOneShot(t *testing.T) {
	scn := apiScenario(t)
	res, rec, err := Reproduce(scn, MethodDynamicStatic,
		DynamicOptions{MaxRuns: 50},
		ReplayOptions{MaxRuns: 500},
		true)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || res == nil || !res.Reproduced {
		t.Fatalf("one-shot failed: rec=%v res=%+v", rec != nil, res)
	}
	if !scn.VerifyInput(res.InputBytes, rec.Crash) {
		t.Fatal("input does not verify")
	}
}

func TestReproduceNoCrash(t *testing.T) {
	scn := apiScenario(t)
	scn.UserBytes = map[string][]byte{"arg0": []byte("no")}
	res, rec, err := Reproduce(scn, MethodAll,
		DynamicOptions{MaxRuns: 10}, ReplayOptions{MaxRuns: 10}, true)
	if err != nil {
		t.Fatal(err)
	}
	if res != nil || rec != nil {
		t.Fatal("non-crashing run must yield no report")
	}
}

func TestStripSyscallLogFacade(t *testing.T) {
	scn := apiScenario(t)
	in := Inputs{
		Dynamic: scn.AnalyzeDynamic(DynamicOptions{MaxRuns: 30}),
		Static:  scn.AnalyzeStatic(StaticOptions{}),
	}
	rec, _, err := scn.Record(scn.Plan(MethodAll, in, true))
	if err != nil || rec == nil {
		t.Fatal(err)
	}
	bare := StripSyscallLog(rec)
	if bare.SysLog != nil {
		t.Fatal("syslog not stripped")
	}
	res := scn.Replay(bare, ReplayOptions{MaxRuns: 500})
	if !res.Reproduced {
		t.Fatal("model-mode replay failed")
	}
}

func TestMethodNamesStable(t *testing.T) {
	want := map[Method]string{
		MethodNone:          "none",
		MethodDynamic:       "dynamic",
		MethodStatic:        "static",
		MethodDynamicStatic: "dynamic+static",
		MethodAll:           "all branches",
	}
	for m, name := range want {
		if m.String() != name {
			t.Errorf("%d: %q", m, m.String())
		}
	}
	if len(Methods) != 4 {
		t.Errorf("methods: %d", len(Methods))
	}
}
