// Package pathlog reproduces the system of "Striking a New Balance Between
// Program Instrumentation and Debugging Time" (Crameri, Bianchini,
// Zwaenepoel — EuroSys 2011): partial branch logging for privacy-preserving
// bug reporting, with log-guided symbolic execution for bug reproduction.
//
// The workflow mirrors the paper end to end, driven through a Session built
// with functional options. Instrumentation decisions are first-class
// strategies: built-ins (Dynamic, Static, All, None) compose through
// combinators (Union, Intersect, Budgeted, Sampled), and the legacy
// methods of §2.3 are fixed compositions (WithMethod is sugar for
// WithStrategy):
//
//	prog, _ := pathlog.Compile(
//		pathlog.Unit{Name: "app.mc", Source: src},
//	)
//	s := pathlog.NewSession(prog, spec,
//		pathlog.WithStrategy(pathlog.Union(pathlog.Dynamic(), pathlog.StaticResidue())),
//		pathlog.WithSyscallLog(),
//		pathlog.WithDynamicBudget(200, 0),
//		pathlog.WithReplayBudget(2000, time.Minute),
//		pathlog.WithReplayWorkers(4),
//	)
//
//	// Pre-deployment: label branches with dynamic and/or static analysis
//	// (§2), then sweep strategies for the paper's titular balance — the
//	// Pareto frontier of (record overhead, estimated debug time).
//	points, _ := s.Frontier(ctx)
//	for _, pt := range points {
//		fmt.Printf("%-28s %6.0f bits/run  ~%4.0f replay runs\n",
//			pt.Strategy, pt.Overhead, pt.ReplayRuns)
//	}
//	plan := points[1].Plan         // pick a balance point ...
//	_ = plan.Save("app.plan.json") // ... and ship it (Fingerprint-stamped)
//
//	// User site: the instrumented run logs one bit per instrumented
//	// branch; a crash yields a bug report with no input bytes in it.
//	rec, stats, _ := s.RecordWith(ctx, plan, userInput)
//
//	// Developer site: reproduce the bug from the partial branch log (§3).
//	// Replay refuses a plan/recording/program mismatch.
//	res, err := s.Replay(ctx, rec)
//	if err == nil && res.Reproduced { fmt.Println(res.InputBytes) }
//
//	// Or close the paper's feedback loop: when replay takes too long,
//	// AutoBalance promotes the branches the search blames
//	// (ReplayResult.Profile) into the next plan generation and redeploys
//	// until the replay budget is met — Session.Refine is the single step.
//	tr, _ := s.AutoBalance(ctx, userInput, pathlog.BalanceOptions{
//		TargetReplayRuns: 200, MaxGenerations: 4,
//	})
//	plan := tr.Final().Plan // lineage-stamped: Generation, Parent
//
// For real deployments, WithPlanStore(dir) backs the session with an
// on-disk plan store: every deployed or refined plan is retained under its
// fingerprint, recordings can ship as stamped-only reference envelopes
// (Recording.SaveRef) that Replay resolves back to the exact retained plan
// generation, AutoBalance persists each generation's measured (overhead,
// debug-time) point, and later Frontier sweeps — even in a cold session —
// fold that measured history back in as ground truth next to the cost
// model's estimates (PlanPoint.Measured, OverheadDrift, ReplayRunsDrift).
//
// A deployed system receives a stream of bug reports, not one: IngestCorpus
// turns a directory of reports into a deduplicated, weighted Corpus
// (frequency × recency), Session.ReplayCorpus replays it over N shards
// (in-process or via cmd/shardworker subprocesses) with every shard profile
// verified at the merge point, and Session.CorpusBalance iterates the
// corpus-driven loop — promoting the population-wide blowup branches until
// the weighted corpus-mean replay meets the target, then demoting branches
// whose bits never once constrained any member's search, with each demotion
// accepted only when re-measurement confirms it (strictly fewer logged bits,
// every report still reproducing).
//
// Cancellation and deadlines flow through the context: a cancelled analyze
// or replay returns promptly with partial results, and the classic
// MaxRuns/TimeBudget bounds remain available as options. The pre-Session
// Scenario methods (AnalyzeDynamic, Record, Replay, ...) and the one-shot
// Reproduce remain as thin deprecated wrappers.
//
// Programs under test are written in MiniC, a small C-like language
// interpreted by a VM with branch hooks (the substitution this reproduction
// makes for CIL-instrumented native C; see DESIGN.md). The benchmark
// programs of the paper's evaluation — mkdir, mknod, mkfifo, paste, the
// uServer, diff and the microbenchmarks — live in internal/apps, and the
// experiment harness that regenerates every table and figure lives in
// internal/harness (driven by cmd/experiments).
package pathlog

import (
	"context"

	"pathlog/internal/concolic"
	"pathlog/internal/core"
	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/replay"
	"pathlog/internal/static"
	"pathlog/internal/store"
	"pathlog/internal/world"
)

// Unit is one MiniC source unit. Lib units count as library code for the
// app/library split in branch statistics and for the treat-library-as-
// symbolic static-analysis mode.
type Unit struct {
	Name   string
	Lib    bool
	Source string
}

// Compile parses and links MiniC units into an executable Program.
func Compile(units ...Unit) (*Program, error) {
	parsed := make([]*lang.Unit, 0, len(units))
	for _, u := range units {
		region := lang.RegionApp
		if u.Lib {
			region = lang.RegionLib
		}
		pu, err := lang.ParseUnit(u.Name, region, u.Source)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, pu)
	}
	return lang.Link(parsed)
}

// Core model types. These are aliases into the implementation packages so
// that the full functionality documented there is available through this
// facade.
type (
	// Program is a linked MiniC program.
	Program = lang.Program
	// BranchID identifies a branch location in a program.
	BranchID = lang.BranchID
	// Scenario binds a program to an input space and a user execution.
	Scenario = core.Scenario
	// RecordStats quantifies one user-site run (instrumentation overhead).
	RecordStats = core.RecordStats
	// Spec declares a scenario's symbolic input streams and workload.
	Spec = world.Spec
	// Stream is one symbolic input byte region.
	Stream = world.Stream
	// Recording is a bug report: plan, branch bitvector, optional syscall
	// results, crash site — never input bytes.
	Recording = replay.Recording
	// ReplayOptions bound reproduction effort (the 1-hour cutoff, scaled).
	ReplayOptions = replay.Options
	// ReplayResult is a reproduction attempt's outcome.
	ReplayResult = replay.Result
	// DynamicOptions bound the concolic analysis (the coverage knob).
	DynamicOptions = concolic.Options
	// DynamicReport carries branch labels from the concolic analysis.
	DynamicReport = concolic.Report
	// StaticOptions configure the dataflow/points-to analysis.
	StaticOptions = static.Options
	// StaticReport carries symbolic-branch labels from static analysis.
	StaticReport = static.Report
	// Method selects an instrumentation strategy (§2.3).
	Method = instrument.Method
	// Plan is the instrumented-branch set retained by the developer.
	Plan = instrument.Plan
	// Inputs carries analysis results into plan construction.
	Inputs = instrument.Inputs
	// Strategy decides which branch locations to instrument; strategies
	// compose through Union, Intersect, Budgeted and Sampled.
	Strategy = instrument.Strategy
	// PlanContext carries the program and analysis results a Strategy
	// consults.
	PlanContext = instrument.PlanContext
	// CostEstimate is a plan's modeled (overhead, debug-time) position.
	CostEstimate = instrument.CostEstimate
	// PlanStore is the on-disk plan, lineage and measured-point store
	// backing WithPlanStore (see internal/store).
	PlanStore = store.Store
	// MeasuredPoint is one persisted (overhead, debug-time) observation of
	// a deployed plan on a workload.
	MeasuredPoint = store.MeasuredPoint
	// LineageEntry is one retained plan's position in its program's
	// refinement chains, from a plan store's lineage index.
	LineageEntry = store.LineageEntry
	// StoreScanReport summarizes a plan store scan: retained plans,
	// measured points, and damaged entries that were skipped.
	StoreScanReport = store.ScanReport
)

// Strategy constructors and combinators, re-exported from
// internal/instrument. Each legacy Method is a fixed composition:
// MethodDynamicStatic == Union(Dynamic(), StaticResidue()).
var (
	// Dynamic instruments branches the concolic analysis labeled symbolic.
	Dynamic = instrument.Dynamic
	// Static instruments branches the static analysis labeled symbolic.
	Static = instrument.Static
	// StaticResidue instruments statically-symbolic branches the dynamic
	// analysis never visited (static's share of the combined method).
	StaticResidue = instrument.StaticResidue
	// All instruments every branch location.
	All = instrument.All
	// None is the uninstrumented baseline.
	None = instrument.None
	// Union instruments what any inner strategy instruments.
	Union = instrument.Union
	// Intersect instruments only what every inner strategy instruments.
	Intersect = instrument.Intersect
	// Budgeted keeps the top-k branches of a strategy by cost-model value
	// density.
	Budgeted = instrument.Budgeted
	// Sampled keeps a deterministic fraction of a strategy's branches.
	Sampled = instrument.Sampled
	// StrategyForMethod returns the composition reproducing a legacy
	// Method exactly.
	StrategyForMethod = instrument.StrategyForMethod
	// Refine returns the strategy deriving the next plan generation from a
	// base plan and the replay search profile measured under it (see
	// Session.Refine and Session.AutoBalance for the driven loop).
	Refine = instrument.Refine
	// LoadSearchProfile reads a search profile saved with
	// SearchProfile.Save (cmd/replay -profile-out writes them).
	LoadSearchProfile = instrument.LoadSearchProfile
	// LoadPlan reads a plan saved with Plan.Save, verifying its
	// fingerprint.
	LoadPlan = instrument.LoadPlan
	// LoadRecording reads a saved bug report (envelope version 1 or 2).
	LoadRecording = replay.LoadRecording
	// LoadRecordingFor reads a saved bug report and validates it against
	// the program it will be replayed on.
	LoadRecordingFor = replay.LoadRecordingFor
	// OpenPlanStore opens (creating if needed) the plan store rooted at a
	// directory; Session WithPlanStore does this lazily, this is for tools
	// that inspect a store directly.
	OpenPlanStore = store.Open
)

// Plan store errors, for errors.Is tests at CLI and store-scan layers.
var (
	// ErrPlanNotFound reports a recording fingerprint stamp that matches no
	// plan retained in the store.
	ErrPlanNotFound = store.ErrPlanNotFound
	// ErrPlanCorrupt marks a damaged plan file (truncated or edited JSON,
	// content that no longer hashes to its fingerprint).
	ErrPlanCorrupt = instrument.ErrPlanCorrupt
)

// Instrumentation methods (§2.3).
const (
	MethodNone          = instrument.MethodNone
	MethodDynamic       = instrument.MethodDynamic
	MethodStatic        = instrument.MethodStatic
	MethodDynamicStatic = instrument.MethodDynamicStatic
	MethodAll           = instrument.MethodAll
)

// Methods lists the instrumented methods in the paper's order.
var Methods = instrument.Methods

// DefaultRefineTopK is the default promotion width of one refinement step.
const DefaultRefineTopK = instrument.DefaultRefineTopK

// Stream constructors.
var (
	// ArgStream declares argv[i] as symbolic input.
	ArgStream = world.ArgSpec
	// FileStream declares a file's contents as symbolic input.
	FileStream = world.FileSpec
	// ConnStream declares a client connection's payload as symbolic input.
	ConnStream = world.ConnSpec
)

// StripSyscallLog removes the syscall-result log from a recording, for
// replaying under the symbolic syscall models of §3.3.
func StripSyscallLog(rec *Recording) *Recording { return core.StripSyslog(rec) }

// Reproduce runs the full pipeline for one scenario and method: analyze,
// plan, record the user run, and replay the resulting bug report.
//
// Deprecated: build a Session and call Session.Reproduce; it adds context
// cancellation, parallel replay and progress reporting.
func Reproduce(scn *Scenario, method Method, dyn DynamicOptions, ropts ReplayOptions, logSyscalls bool) (*ReplayResult, *Recording, error) {
	opts := []Option{
		WithMethod(method),
		WithDynamicOptions(dyn),
		WithReplayOptions(ropts),
	}
	if logSyscalls {
		opts = append(opts, WithSyscallLog())
	}
	return SessionOf(scn, opts...).Reproduce(context.Background(), nil)
}
