package pathlog

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pathlog/internal/core"
	"pathlog/internal/instrument"
	"pathlog/internal/obs"
	"pathlog/internal/store"
	"pathlog/internal/vm"
	"pathlog/internal/world"
)

// CrashInfo identifies a crash site (kind and source position); it is what a
// bug report carries instead of input bytes.
type CrashInfo = vm.CrashInfo

// ProgressEvent is one progress notification from a Session phase.
type ProgressEvent struct {
	// Scenario is the session name (WithName / SessionOf).
	Scenario string
	// Phase is "analyze", "record", "replay", "balance" or "corpus".
	Phase string
	// Runs is the number of completed runs within the phase (analysis and
	// replay are iterated searches; record is a single run, reported as 1;
	// balance and corpus report completed generations).
	Runs int
}

// ProgressFunc observes session progress. It must be cheap, safe for
// concurrent use (replay workers report from their own goroutines), and must
// not call back into the Session or the engine that invoked it — events fire
// from inside the phase that is running.
type ProgressFunc func(ProgressEvent)

// sessionConfig collects everything the functional options configure.
type sessionConfig struct {
	name         string
	userBytes    map[string][]byte
	analysisSpec *Spec
	strategy     Strategy
	logSyscalls  bool
	dyn          DynamicOptions
	static       StaticOptions
	rep          ReplayOptions
	workers      int
	fleetWorkers []string
	progress     ProgressFunc
	storeDir     string
	engine       vm.Factory
	obs          *obs.Observer
}

// Option configures a Session; see the With* constructors.
type Option func(*sessionConfig)

// WithName labels the session; the name appears in progress events.
func WithName(name string) Option {
	return func(c *sessionConfig) { c.name = name }
}

// WithUserBytes sets the default user-site input used when Record or
// Reproduce is called with a nil map. The keys must name declared streams.
func WithUserBytes(user map[string][]byte) Option {
	return func(c *sessionConfig) { c.userBytes = user }
}

// WithAnalysisSpec runs the pre-deployment analyses over a widened input
// space instead of the session's own spec (the paper seeds exploration with
// developer test suites; see internal/apps.AnalysisSpec). Branch labels
// transfer because both specs describe the same program.
func WithAnalysisSpec(spec *Spec) Option {
	return func(c *sessionConfig) { c.analysisSpec = spec }
}

// WithStrategy selects the instrumentation strategy the session plans
// with: a built-in (Dynamic, Static, All, None), a combinator composition
// (Union, Intersect, Budgeted, Sampled), or any custom Strategy. The
// default is the paper's headline configuration,
// Union(Dynamic(), StaticResidue()) — i.e. MethodDynamicStatic.
func WithStrategy(s Strategy) Option {
	return func(c *sessionConfig) { c.strategy = s }
}

// WithMethod selects the instrumentation method (§2.3). It is sugar for
// WithStrategy(StrategyForMethod(m)): each legacy method is a fixed
// strategy composition.
func WithMethod(m Method) Option {
	return func(c *sessionConfig) { c.strategy = instrument.StrategyForMethod(m) }
}

// WithSyscallLog enables syscall-result logging in the instrumented build
// (§2.3): recordings then carry read()/select() results and replay does not
// need the symbolic syscall models of §3.3.
func WithSyscallLog() Option {
	return func(c *sessionConfig) { c.logSyscalls = true }
}

// WithDynamicBudget bounds the concolic analysis — the paper's coverage
// knob. maxRuns <= 0 keeps the default; budget 0 means no wall-clock limit.
func WithDynamicBudget(maxRuns int, budget time.Duration) Option {
	return func(c *sessionConfig) {
		c.dyn.MaxRuns = maxRuns
		c.dyn.TimeBudget = budget
	}
}

// WithDynamicOptions replaces the full concolic-analysis option set.
func WithDynamicOptions(o DynamicOptions) Option {
	return func(c *sessionConfig) { c.dyn = o }
}

// WithStaticOptions configures the static analysis (e.g. LibAsSymbolic for
// the §5.3 library-as-symbolic mode).
func WithStaticOptions(o StaticOptions) Option {
	return func(c *sessionConfig) { c.static = o }
}

// WithReplayBudget bounds each reproduction attempt — the paper's one-hour
// cutoff, scaled. Nonsensical values are clamped at option-apply time with
// one documented rule: anything below zero becomes zero, the "use the
// default / no limit" value (maxRuns <= 0 keeps the default run budget;
// budget <= 0 means no wall-clock limit beyond the context's own deadline).
func WithReplayBudget(maxRuns int, budget time.Duration) Option {
	return func(c *sessionConfig) {
		c.rep.MaxRuns = clampNonNegative(maxRuns)
		c.rep.TimeBudget = clampDurNonNegative(budget)
	}
}

// WithReplayOptions replaces the full replay option set. Workers and OnRun
// set here are overridden by WithReplayWorkers and WithProgress. Negative
// bounds (MaxRuns, TimeBudget, MaxStepsPerRun, MaxPending, Workers) are
// clamped to zero — the documented "default" value of each — at
// option-apply time, so a miscomputed budget surfaces as the default
// behavior here rather than as an engine-internal surprise later.
func WithReplayOptions(o ReplayOptions) Option {
	return func(c *sessionConfig) {
		o.MaxRuns = clampNonNegative(o.MaxRuns)
		o.MaxPending = clampNonNegative(o.MaxPending)
		o.Workers = clampNonNegative(o.Workers)
		o.TimeBudget = clampDurNonNegative(o.TimeBudget)
		if o.MaxStepsPerRun < 0 {
			o.MaxStepsPerRun = 0
		}
		c.rep = o
	}
}

// WithReplayWorkers fans the replay engine's pending-list exploration out
// over n concurrent workers. n <= 1 selects the serial depth-first search
// (anything below 1 is clamped to 1 at option-apply time — asking for "no
// workers" means asking for the paper's serial search, never an engine
// error); larger n trades the paper's exact exploration order for
// wall-clock speed, with the lowest-run-sequence reproduction selected
// deterministically.
func WithReplayWorkers(n int) Option {
	return func(c *sessionConfig) {
		if n < 1 {
			n = 1
		}
		c.workers = n
	}
}

// WithFleet fans corpus replay shards out over a pool of remote shard
// worker daemons (cmd/shardworkerd), addressed as host:port or http URLs.
// The session's name must be a registered scenario name
// (apps.ScenarioByName) — that name is how a stateless worker rebuilds the
// program and input space; recording envelopes ship inline with each
// shard, so workers need neither a shared filesystem nor a plan store.
// An explicit CorpusOptions.Runner or BalanceOptions.Runner still wins;
// an empty worker list keeps the in-process runner. Every remote response
// flows through the same verifying merge point as a local replay —
// distribution moves bytes, not trust.
func WithFleet(workers ...string) Option {
	return func(c *sessionConfig) { c.fleetWorkers = workers }
}

// clampNonNegative is the option-apply guard rule: negative counts become
// 0, the "use the default" value.
func clampNonNegative(n int) int {
	if n < 0 {
		return 0
	}
	return n
}

func clampDurNonNegative(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

// WithProgress registers a progress observer for every phase.
func WithProgress(fn ProgressFunc) Option {
	return func(c *sessionConfig) { c.progress = fn }
}

// Observer re-exports the observability substrate a session carries: a
// metrics registry plus a span tracer (internal/obs). Either half may be
// nil.
type Observer = obs.Observer

// WithObserver attaches an observability substrate to the session. The
// replay engine's per-run distributions (runs, solver calls, logged bits)
// and the balance loop's phase timings land in the observer's registry,
// and every balance generation runs under a span recorded by the
// observer's tracer — propagated across the fleet's HTTP hops, so one
// session's trace links to the daemons that served it. Either half of the
// observer may be nil; a nil observer disables everything it would feed.
func WithObserver(o *Observer) Option {
	return func(c *sessionConfig) { c.obs = o }
}

// Observer returns the session's attached observer, or nil.
func (s *Session) Observer() *Observer { return s.cfg.obs }

// WithEngine selects the execution engine every session phase runs the
// program with:
//
//   - "bytecode" (the default) compiles the program once to the flat IR of
//     internal/ir and executes it in a dispatch loop — the fast engine for
//     run-heavy phases (concolic analysis, replay search);
//   - "tree" selects the original tree-walking interpreter, kept as the
//     differential-testing oracle.
//
// Both engines are bit-for-bit equivalent on everything observable: trace
// bits, syscall logs, crash sites and step counts. Unknown names follow the
// option-apply guard rule and select the default ("bytecode").
func WithEngine(name string) Option {
	return func(c *sessionConfig) {
		if name == "tree" {
			c.engine = vm.TreeFactory
		} else {
			c.engine = nil // core.Scenario defaults to the bytecode engine
		}
	}
}

// WithPlanStore backs the session with the on-disk plan store rooted at
// dir (created on first use), closing the deployment loop around the
// session's artifacts:
//
//   - every plan the session deploys (RecordWith) or refines (Refine,
//     AutoBalance) is retained in the store under its fingerprint;
//   - Replay and ReproduceAll resolve a stamped-only recording's exact
//     retained plan generation from the store by its fingerprint, so the
//     caller never tracks plan files — a stamp matching no retained plan
//     is refused by name;
//   - AutoBalance appends each generation's measured (overhead, replay)
//     point to the store, and Frontier folds the retained measurements for
//     this program and workload back into its sweep as ground truth
//     (PlanPoint.Measured), correcting cost-model estimates with history;
//   - the session seeds its stale-generation bookkeeping from the store's
//     lineage index, so refinement chains advanced by earlier sessions are
//     not silently rewound.
//
// The store keys measured points by (program hash, workload): the workload
// is the session's WorkloadHash — a hash over the input spec and the
// configured user bytes, so renamed sessions share one measured history.
// The directory is opened lazily; an unopenable or damaged store surfaces
// as an error from the first operation that needs it.
func WithPlanStore(dir string) Option {
	return func(c *sessionConfig) { c.storeDir = dir }
}

// Session is the top-level handle on the paper's workflow for one program
// and input space: analyze → plan → record → replay, with shared
// configuration and a cached analysis. A Session is safe for concurrent use;
// the analysis runs at most once.
type Session struct {
	prog *Program
	spec *Spec
	cfg  sessionConfig

	anMu   sync.Mutex // serializes the analysis computation
	mu     sync.Mutex // guards the caches below
	inputs *Inputs
	plans  map[planKey]*Plan
	pc     *instrument.PlanContext
	// Refinement lineage bookkeeping: which chain each refined plan belongs
	// to (keyed by fingerprint) and how far each chain has been refined, so
	// Refine can refuse a stale-generation recording instead of silently
	// rewinding the loop. With a plan store configured, the maps are seeded
	// from the store's lineage index, extending the staleness guarantee
	// across sessions; latestFP lets resumePlan fetch a chain head this
	// session never built (latestPlan holds only in-session plans).
	roots      map[string]string // plan fingerprint → root plan fingerprint
	latestGen  map[string]int    // root plan fingerprint → highest generation
	latestPlan map[string]*Plan  // root plan fingerprint → latest generation's plan
	latestFP   map[string]string // root plan fingerprint → latest generation's fingerprint

	// Plan store plumbing (WithPlanStore): opened lazily, at most once.
	storeOnce sync.Once
	st        *store.Store
	stErr     error
	// calOnce guards the one-time cold calibration: the first plan built
	// through this session folds every retained search profile for this
	// program (store profiles/<fingerprint>.json, in lineage order) into
	// the shared cost model, so a cold session prices unmeasured plans
	// from observed rates instead of analysis-time priors.
	calOnce sync.Once
}

// planKey caches plans by strategy identity; strategy names are required
// to uniquely describe the decision (combinators compose names).
type planKey struct {
	strategy    string
	logSyscalls bool
}

// NewSession binds a compiled program to an input space under the given
// options.
func NewSession(prog *Program, spec *Spec, opts ...Option) *Session {
	cfg := sessionConfig{strategy: instrument.StrategyForMethod(MethodDynamicStatic)}
	for _, o := range opts {
		o(&cfg)
	}
	return &Session{
		prog:       prog,
		spec:       spec,
		cfg:        cfg,
		plans:      make(map[planKey]*Plan),
		roots:      make(map[string]string),
		latestGen:  make(map[string]int),
		latestPlan: make(map[string]*Plan),
		latestFP:   make(map[string]string),
	}
}

// SessionOf wraps an existing Scenario: its name, program, spec and user
// bytes seed the session, and the options apply on top.
func SessionOf(scn *Scenario, opts ...Option) *Session {
	base := []Option{WithName(scn.Name), WithUserBytes(scn.UserBytes)}
	return NewSession(scn.Prog, scn.Spec, append(base, opts...)...)
}

// Program returns the session's compiled program.
func (s *Session) Program() *Program { return s.prog }

// Spec returns the session's input space.
func (s *Session) Spec() *Spec { return s.spec }

// scenario builds the core pipeline view of this session; user may be nil
// for the neutral spec (analysis) or the configured default user bytes.
func (s *Session) scenario(user map[string][]byte) *core.Scenario {
	return &core.Scenario{Name: s.cfg.name, Prog: s.prog, Spec: s.spec, UserBytes: user,
		Engine: s.cfg.engine}
}

func (s *Session) emit(phase string, runs int) {
	if s.cfg.progress != nil {
		s.cfg.progress(ProgressEvent{Scenario: s.cfg.name, Phase: phase, Runs: runs})
	}
}

// PlanStore returns the session's plan store, opening (and creating) the
// WithPlanStore directory on first use. A session built without
// WithPlanStore returns (nil, nil). The first successful open also seeds
// the session's refinement-lineage bookkeeping from the store's lineage
// index for this program.
func (s *Session) PlanStore() (*store.Store, error) { return s.planStore() }

func (s *Session) planStore() (*store.Store, error) {
	if s.cfg.storeDir == "" {
		return nil, nil
	}
	s.storeOnce.Do(func() {
		st, err := store.Open(s.cfg.storeDir)
		if err != nil {
			s.stErr = err
			return
		}
		if err := s.seedLineage(st); err != nil {
			// A lineage index that cannot be read means generation
			// bookkeeping cannot be trusted: refuse the store loudly rather
			// than silently rewinding refinement chains.
			s.stErr = err
			return
		}
		s.st = st
	})
	return s.st, s.stErr
}

// PublishedPlan resolves the program's current chain-head plan from the
// session's plan store: the generation an intake service is serving to
// user sites right now (GET /plan/<proghash>), and therefore the plan
// fresh reports should arrive stamped with. A session without WithPlanStore,
// or a store with no retained plan for this program, is an error — there
// is no published generation to speak of.
func (s *Session) PublishedPlan() (*Plan, error) {
	st, err := s.planStore()
	if err != nil {
		return nil, err
	}
	if st == nil {
		return nil, fmt.Errorf("pathlog: PublishedPlan needs a plan store (WithPlanStore)")
	}
	return st.ChainHead(instrument.ProgramHash(s.prog))
}

// seedLineage folds the store's lineage index for this program into the
// session's chain bookkeeping, so stale-generation refusal and AutoBalance
// resumption work across sessions, not just within one.
func (s *Session) seedLineage(st *store.Store) error {
	entries, err := st.Lineage(instrument.ProgramHash(s.prog))
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Entries arrive in generation order, so every parent's root is
	// resolved before its children need it.
	for _, e := range entries {
		root := e.Fingerprint
		if e.Parent != "" {
			if r, ok := s.roots[e.Parent]; ok {
				root = r
			} else {
				root = e.Parent
				s.roots[e.Parent] = root
			}
		}
		if r, ok := s.roots[e.Fingerprint]; ok {
			root = r
		} else {
			s.roots[e.Fingerprint] = root
		}
		if e.Generation > s.latestGen[root] {
			s.latestGen[root] = e.Generation
			s.latestFP[root] = e.Fingerprint
		}
	}
	return nil
}

// persistPlan retains a plan in the session's plan store, when one is
// configured. A hand-built plan with no program hash has no deployment
// identity to file it under: deploying one through a store-backed session
// is an error (store.PutPlan names it), never a silent skip — a recording
// stamped with its fingerprint could otherwise never be resolved.
func (s *Session) persistPlan(plan *Plan) error {
	if plan == nil {
		return nil
	}
	st, err := s.planStore()
	if err != nil || st == nil {
		return err
	}
	return st.PutPlan(plan)
}

// ResolveRecording attaches the retained plan to a stamped-only recording
// (one loaded from a version-3 reference envelope, Plan == nil) by looking
// its fingerprint stamp up in the plan store. Recordings that already
// carry a plan pass through untouched; the caller's recording is never
// mutated — the resolved copy is returned. A stamp matching no retained
// plan, or a report whose program hash disagrees with the retained
// plan's, is refused with the identities named. Replay, ReproduceAll and
// Refine resolve internally; this is exported for tools that want the
// resolved plan before replaying (to print or inspect it) without
// reimplementing the store checks.
func (s *Session) ResolveRecording(rec *Recording) (*Recording, error) {
	return s.resolveRecording(rec)
}

func (s *Session) resolveRecording(rec *Recording) (*Recording, error) {
	if rec == nil || rec.Plan != nil {
		return rec, nil
	}
	st, err := s.planStore()
	if err != nil {
		return nil, err
	}
	if st == nil {
		return nil, fmt.Errorf("pathlog: recording carries no plan, only fingerprint stamp %s — configure WithPlanStore so the retained plan can be resolved",
			rec.Fingerprint)
	}
	if rec.Fingerprint == "" {
		return nil, fmt.Errorf("pathlog: recording carries neither a plan nor a fingerprint stamp — nothing to resolve from the plan store")
	}
	plan, err := st.GetPlan(rec.Fingerprint)
	if err != nil {
		return nil, fmt.Errorf("pathlog: resolve recording plan: %w", err)
	}
	if rec.ProgHash != "" && plan.ProgHash != rec.ProgHash {
		return nil, fmt.Errorf("pathlog: recording was taken on program %s but the retained plan %s was built for %s (wrong store or wrong build)",
			rec.ProgHash, rec.Fingerprint, plan.ProgHash)
	}
	resolved := *rec
	resolved.Plan = plan
	return &resolved, nil
}

// Analyze runs the pre-deployment analyses (dynamic concolic exploration and
// static dataflow) over the neutral input space and caches the result for
// the session's lifetime. The context bounds the concolic exploration and is
// re-checked before the static pass, so a cancelled analysis returns without
// starting it.
func (s *Session) Analyze(ctx context.Context) (Inputs, error) {
	// anMu serializes the computation; mu guards only the cache, so progress
	// callbacks fire without holding the lock PlanFor and friends take.
	s.anMu.Lock()
	defer s.anMu.Unlock()
	s.mu.Lock()
	if s.inputs != nil {
		in := *s.inputs
		s.mu.Unlock()
		return in, nil
	}
	s.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return Inputs{}, err
	}
	spec := s.spec
	if s.cfg.analysisSpec != nil {
		spec = s.cfg.analysisSpec
	}
	an := &core.Scenario{Name: s.cfg.name, Prog: s.prog, Spec: spec, Engine: s.cfg.engine}
	dynOpts := s.cfg.dyn
	if s.cfg.progress != nil {
		dynOpts.OnRun = func(completed int) { s.emit("analyze", completed) }
	}
	in := Inputs{Dynamic: an.AnalyzeDynamicContext(ctx, dynOpts)}
	if err := ctx.Err(); err != nil {
		// The dynamic exploration was cut short; skip the static pass and do
		// not cache the partial result.
		return in, err
	}
	in.Static = an.AnalyzeStatic(s.cfg.static)
	s.mu.Lock()
	s.inputs = &in
	s.mu.Unlock()
	return in, nil
}

// PlanWith builds (and caches) the instrumentation plan for an explicit
// strategy, using the session's cached analysis. Plans are cached by
// strategy name, so a custom Strategy must name its decision uniquely.
func (s *Session) PlanWith(ctx context.Context, strat Strategy) (*Plan, error) {
	in, err := s.Analyze(ctx)
	if err != nil {
		return nil, err
	}
	key := planKey{strategy: strat.Name(), logSyscalls: s.cfg.logSyscalls}
	s.mu.Lock()
	if p, ok := s.plans[key]; ok {
		s.mu.Unlock()
		return p, nil
	}
	s.mu.Unlock()
	// Plan outside the lock: strategies may do real work (cost ranking).
	p, err := strat.Plan(ctx, s.planContext(in))
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.plans[key] = p
	s.mu.Unlock()
	return p, nil
}

// PlanFor builds (and caches) the instrumentation plan for an explicit
// legacy method — sugar for PlanWith(StrategyForMethod(m)).
func (s *Session) PlanFor(ctx context.Context, m Method) (*Plan, error) {
	return s.PlanWith(ctx, instrument.StrategyForMethod(m))
}

// Plan builds the instrumentation plan for the session's configured
// strategy.
func (s *Session) Plan(ctx context.Context) (*Plan, error) {
	return s.PlanWith(ctx, s.cfg.strategy)
}

// planContext assembles the shared strategy-planning context for one
// analysis result. The PlanContext is cached so concurrent Frontier sweeps
// share one cost model and program hash.
func (s *Session) planContext(in Inputs) *instrument.PlanContext {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pc == nil {
		s.pc = instrument.NewPlanContext(s.prog, in, s.cfg.logSyscalls)
	}
	return s.pc
}

// calibrateForSweep performs the one-time cold calibration before a
// frontier sweep: every retained search profile for this program (store
// profiles/<fingerprint>.json) folds into the shared cost model, in
// lineage (generation) order so later generations' observations win.
// calOnce blocks concurrent sweeps until it is done, so no sweep prices
// half-calibrated.
//
// Calibration is deliberately scoped to sweeps: it changes what selection
// strategies (Budgeted) pick, so applying it to every Plan call would move
// deployed fingerprints between sessions and break refinement-chain
// resumption. A sweep is where estimates are the product; deployment paths
// keep pricing plans exactly as the warm session that built the chain did.
func (s *Session) calibrateForSweep(pc *instrument.PlanContext) {
	s.calOnce.Do(func() { s.calibrateFromStore(pc) })
}

// calibrateFromStore folds every retained search profile for this program
// into the shared cost model. Calibration is best-effort: a session
// without a store, a program with no retained history, and generations
// whose profiles were never retained or are damaged all simply contribute
// nothing — the estimates stand on their analysis-time priors, exactly as
// before profile retention existed.
func (s *Session) calibrateFromStore(pc *instrument.PlanContext) {
	st, err := s.planStore()
	if err != nil || st == nil {
		return
	}
	entries, err := st.Lineage(pc.ProgHash())
	if err != nil {
		return
	}
	for _, e := range entries {
		if p, err := st.GetProfile(e.Fingerprint); err == nil {
			pc.Calibrate(p)
		}
	}
}

// persistProfile retains the search profile measured under a deployed plan
// generation in the plan store (profiles/<fingerprint>.json; a no-op
// without WithPlanStore). Profiles with no plan identity are skipped —
// there is no generation to file them under.
func (s *Session) persistProfile(p *instrument.SearchProfile) error {
	if p == nil || p.PlanFingerprint == "" || p.ProgHash == "" {
		return nil
	}
	st, err := s.planStore()
	if err != nil || st == nil {
		return err
	}
	return st.PutProfile(p)
}

// WorkloadHash returns the session's workload identity: a hash over the
// input spec's stream declarations, kernel parameters and the configured
// user bytes (world.WorkloadHash). Measured store points key on it instead
// of the session's name, so renamed sessions stop fragmenting measured
// history; corpus balance runs reuse the same mechanism with the corpus
// identity as the key.
func (s *Session) WorkloadHash() string {
	return world.WorkloadHash(s.spec, s.cfg.userBytes)
}

// Record performs the user-site half of the workflow: the instrumented
// program runs on the user's bytes (nil selects WithUserBytes) and a crash
// yields a bug report with no input bytes in it. A nil recording with a nil
// error means the run did not crash.
func (s *Session) Record(ctx context.Context, user map[string][]byte) (*Recording, *RecordStats, error) {
	plan, err := s.Plan(ctx)
	if err != nil {
		return nil, nil, err
	}
	return s.RecordWith(ctx, plan, user)
}

// RecordWith is Record under an explicit plan, for callers comparing
// instrumentation methods over one session. With a plan store configured,
// the deployed plan is retained in the store before the run — deployment
// is exactly the moment the developer site must be able to resolve the
// plan later, whatever the recording envelope carries.
func (s *Session) RecordWith(ctx context.Context, plan *Plan, user map[string][]byte) (*Recording, *RecordStats, error) {
	if user == nil {
		user = s.cfg.userBytes
	}
	if err := s.persistPlan(plan); err != nil {
		return nil, nil, fmt.Errorf("pathlog: retain deployed plan: %w", err)
	}
	rec, stats, err := s.scenario(user).RecordContext(ctx, plan)
	if err != nil {
		return nil, nil, err
	}
	s.emit("record", 1)
	return rec, stats, nil
}

// MeasureOverhead runs the user-site workload repeatedly under a plan and
// returns the average wall time, for instrumentation-overhead measurements;
// no crash is required. Cancelling the context stops between rounds.
func (s *Session) MeasureOverhead(ctx context.Context, plan *Plan, rounds int) (time.Duration, *RecordStats, error) {
	return s.scenario(s.cfg.userBytes).MeasureOverheadContext(ctx, plan, rounds)
}

// Replay performs the developer-site half of the workflow: it reproduces the
// recorded bug from the partial branch log. The context's cancellation or
// deadline stops the search within one run; WithReplayBudget and
// WithReplayWorkers shape the search.
//
// Replay refuses a recording that does not fit this session: a plan whose
// branch IDs or program hash disagree with the session's program, or a
// recording whose fingerprint stamp disagrees with its plan, returns an
// error instead of silently searching under the wrong plan.
//
// A stamped-only recording (no embedded plan, just the fingerprint of the
// plan it was taken under) is resolved against the session's plan store
// first: the exact retained plan generation matching the stamp is fetched
// by fingerprint, and a stamp matching no retained plan is refused with
// the fingerprint in the error. This needs WithPlanStore.
func (s *Session) Replay(ctx context.Context, rec *Recording) (*ReplayResult, error) {
	rec, err := s.resolveRecording(rec)
	if err != nil {
		return nil, err
	}
	if err := s.validateRecording(rec); err != nil {
		return nil, err
	}
	return s.replayWith(ctx, rec, s.cfg.workers), nil
}

// validateRecording checks a recording against the session's program
// before any search is spent on it.
func (s *Session) validateRecording(rec *Recording) error {
	if rec == nil {
		return fmt.Errorf("pathlog: nil recording")
	}
	return rec.Validate(s.prog)
}

// replayWith runs one replay; workers > 0 overrides the option set's worker
// count (0 leaves a WithReplayOptions-provided Workers value in place).
func (s *Session) replayWith(ctx context.Context, rec *Recording, workers int) *ReplayResult {
	opts := s.cfg.rep
	if workers > 0 {
		opts.Workers = workers
	}
	if s.cfg.progress != nil {
		opts.OnRun = func(completed int) { s.emit("replay", completed) }
	}
	if opts.Obs == nil {
		opts.Obs = s.cfg.obs.Registry()
	}
	return s.scenario(nil).ReplayContext(ctx, rec, opts)
}

// ReproduceAll replays a batch of recordings, fanning them out over the
// session's worker pool (WithReplayWorkers). Results align with the input
// slice. Each recording is replayed serially so the pool parallelizes across
// recordings; a single recording falls back to parallel in-replay search.
// Every recording is resolved against the plan store (stamped-only
// recordings need WithPlanStore) and validated against the session's
// program first; a mismatch fails the whole batch before any search is
// spent.
func (s *Session) ReproduceAll(ctx context.Context, recs []*Recording) ([]*ReplayResult, error) {
	out := make([]*ReplayResult, len(recs))
	if len(recs) == 0 {
		return out, nil
	}
	recs = append([]*Recording(nil), recs...) // resolution must not mutate the caller's slice
	for i, rec := range recs {
		resolved, err := s.resolveRecording(rec)
		if err != nil {
			return nil, fmt.Errorf("recording %d: %w", i, err)
		}
		recs[i] = resolved
		if err := s.validateRecording(resolved); err != nil {
			return nil, fmt.Errorf("recording %d: %w", i, err)
		}
	}
	pool := s.cfg.workers
	if pool < 1 {
		pool = 1
	}
	if pool > len(recs) {
		pool = len(recs)
	}
	if pool == 1 {
		for i, rec := range recs {
			out[i] = s.replayWith(ctx, rec, s.cfg.workers)
		}
		return out, nil
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = s.replayWith(ctx, recs[i], 1)
			}
		}()
	}
	for i := range recs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out, nil
}

// Reproduce runs the full pipeline once: analyze, plan, record the user run
// (nil selects WithUserBytes), and replay the resulting bug report. A nil
// result with a nil error means the user run did not crash.
func (s *Session) Reproduce(ctx context.Context, user map[string][]byte) (*ReplayResult, *Recording, error) {
	rec, _, err := s.Record(ctx, user)
	if err != nil {
		return nil, nil, err
	}
	if rec == nil {
		return nil, nil, nil // the user run did not crash: nothing to replay
	}
	res, err := s.Replay(ctx, rec)
	if err != nil {
		return nil, rec, err
	}
	return res, rec, nil
}

// Verify checks that an input found by replay really activates the recorded
// bug: it re-runs the program concretely and compares crash sites (§5.3).
func (s *Session) Verify(inputBytes map[string][]byte, crash CrashInfo) bool {
	return s.scenario(nil).VerifyInput(inputBytes, crash)
}

// String renders the session's configuration for logs.
func (s *Session) String() string {
	return fmt.Sprintf("session(%s strategy=%s syscalls=%v workers=%d)",
		s.cfg.name, s.cfg.strategy.Name(), s.cfg.logSyscalls, s.cfg.workers)
}
