package pathlog

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// storeChainSession builds a chain-program session backed by a plan store,
// with a Budgeted partial plan so replay takes real search work (measured
// replay runs that visibly disagree with the estimate).
func storeChainSession(t *testing.T, dir string, opts ...Option) *Session {
	t.Helper()
	base := []Option{
		WithPlanStore(dir),
		WithStrategy(Budgeted(Dynamic(), 3)),
	}
	return chainSession(t, append(base, opts...)...)
}

// Acceptance: a recording replayed with only WithPlanStore(dir) — no
// explicit plan path, a stamped-only reference envelope — resolves its
// exact stamped plan generation from the store.
func TestPlanStoreResolvesStampedRecording(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	// Deployment site: deploy a plan (retained by RecordWith) and ship a
	// stamped-only reference report.
	warm := storeChainSession(t, dir)
	plan, err := warm.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := warm.RecordWith(ctx, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("no crash recorded")
	}
	ref := filepath.Join(t.TempDir(), "bug.report")
	if err := rec.SaveRef(ref); err != nil {
		t.Fatal(err)
	}

	// Developer site, cold session: the loaded report has no plan, only the
	// stamp; the store resolves it.
	loaded, err := LoadRecording(ref)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Plan != nil {
		t.Fatal("reference envelope should not embed a plan")
	}
	if loaded.Fingerprint != plan.Fingerprint() {
		t.Fatalf("stamp %s, want %s", loaded.Fingerprint, plan.Fingerprint())
	}
	cold := storeChainSession(t, dir)
	res, err := cold.Replay(ctx, loaded)
	if err != nil {
		t.Fatalf("store-backed replay refused: %v", err)
	}
	if !res.Reproduced {
		t.Fatalf("not reproduced: %d runs", res.Runs)
	}
	if res.Profile == nil || res.Profile.PlanFingerprint != plan.Fingerprint() {
		t.Fatalf("search did not run under the resolved plan: %+v", res.Profile)
	}
	// The caller's recording must stay untouched (resolution copies).
	if loaded.Plan != nil {
		t.Fatal("resolution mutated the caller's recording")
	}

	// The manual loop's single step resolves the stamped-only recording
	// the same way: Refine derives generation 1 from the retained base.
	refined, err := cold.Refine(ctx, loaded, res)
	if err != nil {
		t.Fatalf("refine of a stamped-only recording refused: %v", err)
	}
	if refined.Generation != 1 || refined.Parent != plan.Fingerprint() {
		t.Errorf("refined lineage wrong: generation %d parent %s (want 1, %s)",
			refined.Generation, refined.Parent, plan.Fingerprint())
	}
	st, err := cold.PlanStore()
	if err != nil {
		t.Fatal(err)
	}
	if !st.HasPlan(refined.Fingerprint()) {
		t.Error("refined generation not retained in the store")
	}
}

// A store-backed session refuses to deploy a plan with no program hash:
// a recording stamped with its fingerprint could never be resolved, so
// the deployment fails loudly instead of claiming retention.
func TestStoreRefusesUnidentifiedPlan(t *testing.T) {
	ctx := context.Background()
	sess := storeChainSession(t, t.TempDir())
	good, err := sess.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	bare := &Plan{Instrumented: good.Instrumented, LogSyscalls: good.LogSyscalls}
	_, _, err = sess.RecordWith(ctx, bare, nil)
	if err == nil || !strings.Contains(err.Error(), "program hash") {
		t.Fatalf("store-backed RecordWith deployed an unidentifiable plan: %v", err)
	}
}

// A damaged measured file degrades a Frontier sweep to estimates — it
// does not fail it; a damaged lineage index refuses session operations.
func TestDamagedStoreEntries(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	warm := storeChainSession(t, dir)
	if _, err := warm.AutoBalance(ctx, nil, BalanceOptions{MaxGenerations: 1}); err != nil {
		t.Fatal(err)
	}
	progHash := mustProgHash(t, warm)

	// Corrupt the measured history: the cold sweep still succeeds, with
	// no measured points (the estimates stand). Measured files key on the
	// workload hash, not the session name.
	measured := filepath.Join(dir, "measured", progHash, warm.WorkloadHash()+".json")
	if err := os.WriteFile(measured, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	cold := storeChainSession(t, dir)
	points, err := cold.Frontier(ctx)
	if err != nil {
		t.Fatalf("frontier failed on a damaged measured file: %v", err)
	}
	for _, pt := range points {
		if pt.Measured {
			t.Errorf("measured point surfaced from a damaged file: %+v", pt)
		}
	}

	// Corrupt the lineage index: session store operations refuse loudly
	// (trusting it could silently rewind refinement chains).
	lineage := filepath.Join(dir, "lineage", progHash+".json")
	if err := os.WriteFile(lineage, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	broken := storeChainSession(t, dir)
	if _, err := broken.PlanStore(); err == nil {
		t.Fatal("session opened a store with a damaged lineage index")
	}
}

// mustProgHash extracts the session program's hash via a retained plan.
func mustProgHash(t *testing.T, sess *Session) string {
	t.Helper()
	plan, err := sess.Plan(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if plan.ProgHash == "" {
		t.Fatal("plan has no program hash")
	}
	return plan.ProgHash
}

// Satellite: a recording whose fingerprint matches no stored plan is
// refused with the fingerprint in the error.
func TestPlanStoreRefusesUnknownFingerprint(t *testing.T) {
	ctx := context.Background()

	warm := storeChainSession(t, t.TempDir())
	rec, _, err := warm.Record(ctx, nil)
	if err != nil || rec == nil {
		t.Fatalf("record: %v (rec %v)", err, rec)
	}
	ref := filepath.Join(t.TempDir(), "bug.report")
	if err := rec.SaveRef(ref); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRecording(ref)
	if err != nil {
		t.Fatal(err)
	}

	// A different (empty) store: the stamp matches nothing.
	cold := storeChainSession(t, t.TempDir())
	_, err = cold.Replay(ctx, loaded)
	if err == nil {
		t.Fatal("replay accepted a recording whose stamp matches no retained plan")
	}
	if !errors.Is(err, ErrPlanNotFound) {
		t.Errorf("error does not wrap ErrPlanNotFound: %v", err)
	}
	if !strings.Contains(err.Error(), loaded.Fingerprint) {
		t.Errorf("refusal does not name the fingerprint %s: %v", loaded.Fingerprint, err)
	}

	// Without any store, the refusal names the stamp and the fix.
	bare := chainSession(t)
	_, err = bare.Replay(ctx, loaded)
	if err == nil || !strings.Contains(err.Error(), "WithPlanStore") {
		t.Errorf("storeless replay of a stamped-only recording should point at WithPlanStore: %v", err)
	}
}

// Acceptance: a second cold Frontier sweep over the same store marks >= 1
// point as Measured with nonzero rendered drift.
func TestColdFrontierFoldsStoredMeasurements(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	// A tight replay target forces at least one refinement, so the store
	// ends up holding a real chain (generation >= 1), not just a root.
	warm := storeChainSession(t, dir)
	tr, err := warm.AutoBalance(ctx, nil, BalanceOptions{MaxGenerations: 2, TargetReplayRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if final := tr.Final(); final == nil || !final.Reproduced {
		t.Fatalf("warm AutoBalance did not reproduce: %+v", tr)
	}
	if tr.Final().Generation < 1 {
		t.Fatalf("warm loop never refined (reason %q) — the resumption check below would be vacuous", tr.Reason)
	}

	cold := storeChainSession(t, dir)
	points, err := cold.Frontier(ctx)
	if err != nil {
		t.Fatal(err)
	}
	nMeasured, nDrift := 0, 0
	for _, pt := range points {
		if !pt.Measured {
			if pt.OverheadDrift() != 0 || pt.ReplayRunsDrift() != 0 {
				t.Errorf("estimated point %s reports drift", pt.Strategy)
			}
			continue
		}
		nMeasured++
		if pt.OverheadDrift() != 0 || pt.ReplayRunsDrift() != 0 {
			nDrift++
		}
	}
	if nMeasured == 0 {
		t.Fatalf("cold frontier has no measured points: %+v", points)
	}
	if nDrift == 0 {
		t.Errorf("no measured point renders nonzero drift: %+v", points)
	}

	// A third session that never analyzed anything can still resume the
	// chain: the store's lineage index seeds the session's bookkeeping, so
	// the loop redeploys the retained chain head, not generation 0.
	resumed := storeChainSession(t, dir)
	tr2, err := resumed.AutoBalance(ctx, nil, BalanceOptions{MaxGenerations: 2, TargetReplayRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr2.Points) == 0 {
		t.Fatal("cold AutoBalance produced no points")
	}
	if first := tr2.Points[0]; first.Generation < tr.Final().Generation {
		t.Errorf("cold AutoBalance rewound to generation %d; store lineage says the chain reached %d",
			first.Generation, tr.Final().Generation)
	}
}

// The store refuses to resolve a recording onto the wrong program: the
// reference envelope's program hash must match the retained plan's.
func TestPlanStoreWrongProgramRefused(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	warm := storeChainSession(t, dir)
	rec, _, err := warm.Record(ctx, nil)
	if err != nil || rec == nil {
		t.Fatalf("record: %v", err)
	}
	ref := filepath.Join(t.TempDir(), "bug.report")
	if err := rec.SaveRef(ref); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadRecording(ref)
	if err != nil {
		t.Fatal(err)
	}
	loaded.ProgHash = strings.Repeat("ab", 16) // a different build's hash
	cold := storeChainSession(t, dir)
	if _, err := cold.Replay(ctx, loaded); err == nil {
		t.Fatal("replay resolved a recording stamped for a different program")
	}
}

// AutoBalance with a store persists every generation and its measured
// points; a cold session can resolve each generation by fingerprint.
func TestAutoBalancePersistsGenerations(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	warm := storeChainSession(t, dir, WithReplayBudget(500, 10*time.Second))
	tr, err := warm.AutoBalance(ctx, nil, BalanceOptions{MaxGenerations: 2})
	if err != nil {
		t.Fatal(err)
	}
	st, err := warm.PlanStore()
	if err != nil || st == nil {
		t.Fatalf("PlanStore: %v", err)
	}
	for _, pt := range tr.Points {
		got, err := st.GetPlan(pt.Plan.Fingerprint())
		if err != nil {
			t.Fatalf("generation %d not retained: %v", pt.Generation, err)
		}
		if got.Generation != pt.Generation {
			t.Errorf("retained generation %d, want %d", got.Generation, pt.Generation)
		}
	}
	// Measured points key on the workload hash (satellite: renamed
	// sessions share one measured history), not the session's name.
	if _, err := st.Measured(tr.Points[0].Plan.ProgHash, "chain"); err != nil {
		t.Fatal(err)
	}
	pts, err := st.Measured(tr.Points[0].Plan.ProgHash, warm.WorkloadHash())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(tr.Points) {
		t.Errorf("store holds %d measured points, trajectory has %d", len(pts), len(tr.Points))
	}
	rep, err := st.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Damaged) != 0 {
		t.Errorf("scan reports damage on a healthy store: %+v", rep.Damaged)
	}
	if rep.MeasuredPoints != len(pts) {
		t.Errorf("scan counts %d measured points, want %d", rep.MeasuredPoints, len(pts))
	}
}
