// Benchmarks regenerating the paper's measurements, one per table/figure.
// Run with: go test -bench=. -benchmem
//
// Benchmarks labeled Figure2/Figure4/Figure5 measure user-site execution
// under each instrumentation method (the paper's CPU-time axes); the
// TableN benchmarks measure bug reproduction (the paper's replay times).
// Custom metrics report the work quantities the paper derives its claims
// from: logged bits per run, instrumented locations, replay runs.
package pathlog

import (
	"context"
	"fmt"
	"testing"
	"time"

	"pathlog/internal/apps"
	"pathlog/internal/concolic"
	"pathlog/internal/core"
	"pathlog/internal/instrument"
	"pathlog/internal/obs"
	"pathlog/internal/replay"
	"pathlog/internal/static"
)

// benchMethods are the instrumented configurations plus the baseline.
var benchMethods = []struct {
	name string
	m    instrument.Method
}{
	{"none", instrument.MethodNone},
	{"dynamic", instrument.MethodDynamic},
	{"dynamic+static", instrument.MethodDynamicStatic},
	{"static", instrument.MethodStatic},
	{"all", instrument.MethodAll},
}

// benchRecord runs the user-site workload once per iteration under a plan.
func benchRecord(b *testing.B, s *core.Scenario, plan *instrument.Plan) {
	b.Helper()
	var bits, steps int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, err := s.Record(plan)
		if err != nil {
			b.Fatal(err)
		}
		bits = stats.TraceBits
		steps = stats.Steps
	}
	b.ReportMetric(float64(bits), "bits/run")
	b.ReportMetric(float64(steps), "steps/run")
	b.ReportMetric(float64(plan.NumInstrumented()), "instr-locs")
}

// benchReplay records once, then replays once per iteration.
func benchReplay(b *testing.B, s *core.Scenario, plan *instrument.Plan) {
	b.Helper()
	rec, _, err := s.Record(plan)
	if err != nil {
		b.Fatal(err)
	}
	if rec == nil {
		b.Fatal("user run did not crash")
	}
	var runs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := s.Replay(rec, replay.Options{MaxRuns: 4000, TimeBudget: 30 * time.Second})
		if !res.Reproduced {
			b.Fatalf("not reproduced after %d runs", res.Runs)
		}
		runs = res.Runs
	}
	b.ReportMetric(float64(runs), "replay-runs")
}

// --- §5.1 microbenchmarks ---------------------------------------------------

// BenchmarkMicroLoop is the counting-loop overhead measurement: none vs all
// branches (paper: 107% overhead, ~3ns per logged branch).
func BenchmarkMicroLoop(b *testing.B) {
	const iters = 100_000
	s := apps.MicroLoopScenario(iters)
	for _, mc := range []struct {
		name string
		m    instrument.Method
	}{{"none", instrument.MethodNone}, {"all", instrument.MethodAll}} {
		b.Run(mc.name, func(b *testing.B) {
			plan := s.Plan(mc.m, instrument.Inputs{}, false)
			benchRecord(b, s, plan)
		})
	}
}

// BenchmarkMicroFib is Listing 1 under every configuration (paper: selective
// methods log 2 bits and cost nothing; all branches ~110%).
func BenchmarkMicroFib(b *testing.B) {
	s := apps.MicroFibScenario('b')
	in := analysesFor(b, apps.AnalysisSpec(s), 60, false)
	for _, mc := range benchMethods {
		b.Run(mc.name, func(b *testing.B) {
			benchRecord(b, s, s.Plan(mc.m, in, false))
		})
	}
}

// --- §5.2 coreutils ----------------------------------------------------------

// BenchmarkFigure2 measures mkdir user-site CPU per method (Figure 2).
func BenchmarkFigure2(b *testing.B) {
	s, err := apps.CoreutilScenario("mkdir", 12)
	if err != nil {
		b.Fatal(err)
	}
	s.UserBytes = map[string][]byte{
		"arg0": []byte("-p"), "arg1": []byte("a/b"), "arg2": []byte("-v"),
	}
	in := analysesFor(b, apps.AnalysisSpec(s), 600, false)
	for _, mc := range benchMethods {
		b.Run(mc.name, func(b *testing.B) {
			benchRecord(b, s, s.Plan(mc.m, in, true))
		})
	}
}

// BenchmarkTable1 measures coreutil bug reproduction per program (Table 1),
// under the dynamic+static method.
func BenchmarkTable1(b *testing.B) {
	for _, name := range apps.CoreutilNames() {
		b.Run(name, func(b *testing.B) {
			s, err := apps.CoreutilScenario(name, 12)
			if err != nil {
				b.Fatal(err)
			}
			in := analysesFor(b, apps.AnalysisSpec(s), 1000, false)
			benchReplay(b, s, s.Plan(instrument.MethodDynamicStatic, in, true))
		})
	}
}

// --- §5.3 uServer -------------------------------------------------------------

// BenchmarkFigure4CPU measures uServer user-site CPU per method over a load
// workload (Figure 4a). Storage appears as the bits/run metric (Figure 4b).
func BenchmarkFigure4CPU(b *testing.B) {
	s := apps.UServerLoadScenario(10, apps.DefaultHTTPRequest)
	an := apps.UServerAnalysisScenario()
	in := analysesFor(b, an, 60, true)
	for _, mc := range benchMethods {
		b.Run(mc.name, func(b *testing.B) {
			benchRecord(b, s, s.Plan(mc.m, in, true))
		})
	}
}

// BenchmarkTable3 measures uServer bug reproduction per experiment under
// dynamic+static (Table 3's central column).
func BenchmarkTable3(b *testing.B) {
	an := apps.UServerAnalysisScenario()
	in := analysesFor(b, an, 60, true)
	for exp := 1; exp <= 5; exp++ {
		b.Run(fmt.Sprintf("exp%d", exp), func(b *testing.B) {
			s, err := apps.UServerScenario(exp, 72)
			if err != nil {
				b.Fatal(err)
			}
			benchReplay(b, s, s.Plan(instrument.MethodDynamicStatic, in, true))
		})
	}
}

// BenchmarkTable5 measures uServer reproduction without syscall logging
// (Table 5): the engine searches for modeled read()/select() results.
func BenchmarkTable5(b *testing.B) {
	an := apps.UServerAnalysisScenario()
	in := analysesFor(b, an, 60, true)
	for _, exp := range []int{1, 4} {
		b.Run(fmt.Sprintf("exp%d", exp), func(b *testing.B) {
			s, err := apps.UServerScenario(exp, 72)
			if err != nil {
				b.Fatal(err)
			}
			benchReplay(b, s, s.Plan(instrument.MethodDynamicStatic, in, false))
		})
	}
}

// --- §5.4 diff ----------------------------------------------------------------

// BenchmarkFigure5 measures diff user-site CPU per method (Figure 5).
func BenchmarkFigure5(b *testing.B) {
	s, err := apps.DiffExperimentScenario(1)
	if err != nil {
		b.Fatal(err)
	}
	in := analysesFor(b, apps.AnalysisSpec(s), 40, false)
	for _, mc := range benchMethods {
		b.Run(mc.name, func(b *testing.B) {
			benchRecord(b, s, s.Plan(mc.m, in, true))
		})
	}
}

// BenchmarkTable6 measures diff bug reproduction per experiment under
// dynamic+static (Table 6; the dynamic row is inf by design and is exercised
// by the harness, not benched).
func BenchmarkTable6(b *testing.B) {
	for exp := 1; exp <= 2; exp++ {
		b.Run(fmt.Sprintf("exp%d", exp), func(b *testing.B) {
			s, err := apps.DiffExperimentScenario(exp)
			if err != nil {
				b.Fatal(err)
			}
			in := analysesFor(b, apps.AnalysisSpec(s), 40, false)
			benchReplay(b, s, s.Plan(instrument.MethodDynamicStatic, in, true))
		})
	}
}

// --- analysis costs (the pre-deployment phase itself) --------------------------

// BenchmarkDynamicAnalysis measures the concolic exploration cost per run
// budget — the coverage knob's price.
func BenchmarkDynamicAnalysis(b *testing.B) {
	for _, runs := range []int{5, 20} {
		b.Run(fmt.Sprintf("userver-%druns", runs), func(b *testing.B) {
			an := apps.UServerAnalysisScenario()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep := an.AnalyzeDynamic(concolic.Options{MaxRuns: runs})
				if rep.Runs == 0 {
					b.Fatal("no runs")
				}
			}
		})
	}
}

// BenchmarkStaticAnalysis measures the dataflow/points-to analysis.
func BenchmarkStaticAnalysis(b *testing.B) {
	progs := map[string]*core.Scenario{}
	if s, err := apps.CoreutilScenario("mkdir", 12); err == nil {
		progs["mkdir"] = s
	}
	progs["userver"] = apps.UServerLoadScenario(2, apps.DefaultHTTPRequest)
	if s, err := apps.DiffExperimentScenario(1); err == nil {
		progs["diff"] = s
	}
	for name, s := range progs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep := s.AnalyzeStatic(static.Options{})
				if rep.CountSymbolic() == 0 {
					b.Fatal("no symbolic branches found")
				}
			}
		})
	}
}

// analysesFor runs both analyses once for a benchmark.
func analysesFor(b *testing.B, an *core.Scenario, dynRuns int, libSym bool) instrument.Inputs {
	b.Helper()
	return instrument.Inputs{
		Dynamic: an.AnalyzeDynamic(concolic.Options{MaxRuns: dynRuns}),
		Static:  an.AnalyzeStatic(static.Options{LibAsSymbolic: libSym}),
	}
}

// --- parallel replay ---------------------------------------------------------

// BenchmarkReplayWorkers measures the Session replay under 1, 2 and 4
// search workers on the uServer no-syslog search (model-mode replay is the
// breadth-heavy case). On an N-core host, budget-exhausting sweeps complete
// a fixed MaxRuns budget in ~1/N wall time; single-core hosts should run
// workers=1 (the cmd/replay default is runtime.NumCPU()).
func BenchmarkReplayWorkers(b *testing.B) {
	an := apps.UServerAnalysisScenario()
	in := analysesFor(b, an, 60, true)
	s, err := apps.UServerScenario(4, 72)
	if err != nil {
		b.Fatal(err)
	}
	plan := s.Plan(instrument.MethodDynamic, in, false)
	rec, _, err := s.Record(plan)
	if err != nil || rec == nil {
		b.Fatalf("record: %v", err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			reg := obs.NewRegistry()
			sess := SessionOf(s,
				WithReplayBudget(4000, 30*time.Second),
				WithReplayWorkers(workers),
				WithObserver(&Observer{Reg: reg}))
			var runs, totalRuns int
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := sess.Replay(context.Background(), rec)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Reproduced {
					b.Fatalf("workers=%d: not reproduced after %d runs", workers, res.Runs)
				}
				runs = res.Runs
				totalRuns += res.Runs
			}
			b.ReportMetric(float64(runs), "replay-runs")
			// ns/replay-run is the per-run cost the engine work actually
			// moves; ns/op also counts the fixed per-search setup and varies
			// with how many runs the search happens to need.
			if totalRuns > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalRuns), "ns/replay-run")
			}
			// The replay engine's per-run distributions, from the observer
			// registry: the committed baseline gains quantiles, not just
			// best-run means.
			for _, h := range reg.Snapshot().Histograms {
				if h.Count == 0 {
					continue
				}
				switch h.Name {
				case "pathlog_replay_run_ns":
					b.ReportMetric(h.Quantile(0.5), "p50-run-ns")
					b.ReportMetric(h.Quantile(0.9), "p90-run-ns")
					b.ReportMetric(h.Quantile(0.99), "p99-run-ns")
				case "pathlog_replay_solver_calls_per_run":
					b.ReportMetric(h.Quantile(0.5), "p50-solver-calls")
				case "pathlog_replay_logged_bits_per_run":
					b.ReportMetric(h.Quantile(0.5), "p50-logged-bits")
				}
			}
		})
	}
}
