package pathlog

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"pathlog/internal/corpus"
	"pathlog/internal/fleet"
	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/replay"
	"pathlog/internal/store"
)

// This file turns the single-recording refinement loop into a corpus-driven
// one at the Session level. A deployed system receives a stream of bug
// reports; refining against only the latest crash lets one noisy report
// steer the whole plan, and replaying every report on one machine wastes
// the fact that reports are independent. ReplayCorpus shards the corpus
// and merges the weighted attribution through a verifying merge point;
// RefineCorpus derives the next plan generation from the merged profile —
// promoting the corpus-wide blowup branches AND demoting branches whose
// bits never constrained any member's search; CorpusBalance iterates the
// loop with measured acceptance, refusing a demotion that regresses what
// was actually measured.

// Corpus is a deduplicated, weighted bug-report population (see
// internal/corpus: frequency from crash-signature dedup, recency from a
// half-life decay over report mtimes).
type Corpus = corpus.Corpus

// CorpusReport is one weighted corpus member.
type CorpusReport = corpus.Report

// CorpusMember is one raw report offered to BuildCorpus.
type CorpusMember = corpus.Member

// CorpusIngestOptions shape corpus construction (recency half-life).
type CorpusIngestOptions = corpus.Options

// CorpusOutcome is a corpus replay's aggregate: the weighted merged
// profile and the per-member results.
type CorpusOutcome = corpus.Outcome

// CorpusRunner replays one shard of a corpus (in-process or via a worker
// subprocess; see internal/corpus).
type CorpusRunner = corpus.Runner

// Corpus constructors, re-exported from internal/corpus.
var (
	// IngestCorpus builds a corpus from a directory of recording
	// envelopes; file mtimes drive the recency weights.
	IngestCorpus = corpus.Ingest
	// BuildCorpus builds a corpus from in-memory members.
	BuildCorpus = corpus.Build
)

// CorpusOptions shape one corpus replay or refinement step.
type CorpusOptions struct {
	// Shards partitions the corpus into this many shards (<= 1 keeps one);
	// shards replay concurrently.
	Shards int
	// Runner replays each shard. Nil selects the in-process runner under
	// the session's replay options (WithReplayBudget, WithReplayWorkers);
	// a corpus.SubprocessRunner fans shards out over worker processes.
	Runner CorpusRunner
	// Workers fans shards out over remote shard worker daemons
	// (cmd/shardworkerd), addressed as host:port or http URLs. Ignored
	// when Runner is set; empty falls back to WithFleet's pool, then to
	// the in-process runner. With workers set and Shards unset, the corpus
	// is partitioned one shard per worker.
	Workers []string
	// TopK is the promotion width of a RefineCorpus step (<= 0 selects
	// DefaultRefineTopK).
	TopK int
}

// CorpusRefinement is one RefineCorpus step's result: the next plan
// generation and the evidence it was derived from.
type CorpusRefinement struct {
	// Plan is the refined generation: Base's branch set plus Promoted,
	// minus Demoted. Equal to Base (same fingerprint) at a fixed point.
	Plan *Plan
	// Base is the plan every corpus member was recorded under.
	Base *Plan
	// Outcome is the sharded corpus replay the refinement was derived
	// from.
	Outcome *CorpusOutcome
	// Promoted lists the corpus-wide blowup branches added to the plan;
	// Demoted lists the proven-redundant branches dropped from it.
	Promoted []BranchID
	Demoted  []BranchID
}

// promotedDemoted is implemented by the refinement strategies
// (instrument.Refine/Demote/RefineAndDemote).
type promotedDemoted interface {
	Promoted() []lang.BranchID
	Demoted() []lang.BranchID
}

// ReplayCorpus replays every corpus member under the plan the corpus was
// recorded with, fanned out over opts.Shards shards, and returns the
// weighted merged outcome. Every member is resolved against the plan
// store (stamped-only v3 reports need WithPlanStore) and validated
// against the session's program; all members must share one plan
// generation — a mixed or stale corpus is refused by name, exactly as a
// stale single recording is. The merge point verifies program hash, plan
// fingerprint and generation on every incoming profile before blending it
// into the attribution (the corpus's one new trust boundary).
func (s *Session) ReplayCorpus(ctx context.Context, c *Corpus, opts CorpusOptions) (*CorpusOutcome, error) {
	out, _, _, err := s.replayCorpus(ctx, c, opts)
	return out, err
}

// replayCorpus is ReplayCorpus returning also the resolved corpus and its
// common base plan, for the refinement paths.
func (s *Session) replayCorpus(ctx context.Context, c *Corpus, opts CorpusOptions) (*CorpusOutcome, *Corpus, *Plan, error) {
	if c == nil || len(c.Reports) == 0 {
		return nil, nil, nil, fmt.Errorf("pathlog: empty corpus")
	}
	// Open (and lineage-seed) the plan store before the staleness check,
	// as refineStep does.
	if _, err := s.planStore(); err != nil {
		return nil, nil, nil, err
	}
	resolved, err := c.Resolve(s.resolveRecording)
	if err != nil {
		return nil, nil, nil, err
	}
	var base *Plan
	for _, rep := range resolved.Reports {
		if err := s.validateRecording(rep.Rec); err != nil {
			return nil, nil, nil, fmt.Errorf("pathlog: corpus report %s: %w", rep.Signature, err)
		}
		if base == nil {
			base = rep.Rec.Plan
		}
	}
	if err := s.checkGenerationFresh(base, base.Fingerprint()); err != nil {
		return nil, nil, nil, err
	}
	// The sharded replay runs under one balance.generation span: the fleet
	// runner's shard/dispatch spans — and, across the HTTP hop, the
	// workers' spans — all parent under it, so a corpus step yields one
	// coherent tree per generation.
	gctx, span := s.cfg.obs.Tracer().StartSpan(ctx, "balance.generation")
	span.SetAttr("gen", fmt.Sprint(base.Generation))
	out, err := corpus.Replay(gctx, resolved, s.corpusShards(opts), s.corpusRunner(opts))
	span.End()
	if err != nil {
		return nil, nil, nil, err
	}
	s.emit("corpus", out.Members)
	return out, resolved, base, nil
}

// corpusReplayOptions assembles the replay bounds a corpus member is
// searched under: the session's replay options with the worker count
// applied and no per-run progress callback (corpus progress is reported
// per member).
func (s *Session) corpusReplayOptions() replay.Options {
	opts := s.cfg.rep
	if s.cfg.workers > 0 {
		opts.Workers = s.cfg.workers
	}
	opts.OnRun = nil
	if opts.Obs == nil {
		opts.Obs = s.cfg.obs.Registry()
	}
	return opts
}

// RefineCorpus performs one corpus-driven refinement step: replay the
// whole corpus (sharded), merge the weighted attribution, and derive the
// next plan generation — the corpus-wide top blowup branches promoted into
// the plan and the proven-redundant branches (bits consumed, zero
// disagreements across every member) demoted out of it. The shared cost
// model is recalibrated with the merged profile before pricing, the
// refined generation carries lineage, and with a plan store configured
// both plans and the merged profile are retained.
//
// The demotion here is evidence-based, not measured: a corpus replay can
// prove a bit never constrained any member's search, but only a
// redeployment can measure the demoted plan. CorpusBalance closes that
// loop and refuses demotions whose measured replay regresses.
func (s *Session) RefineCorpus(ctx context.Context, c *Corpus, opts CorpusOptions) (*CorpusRefinement, error) {
	out, _, base, err := s.replayCorpus(ctx, c, opts)
	if err != nil {
		return nil, err
	}
	strat, err := instrument.RefineAndDemote(base, out.Profile, opts.TopK)
	if err != nil {
		return nil, err
	}
	plan, err := s.buildRefined(ctx, strat, out.Profile)
	if err != nil {
		return nil, err
	}
	ref := &CorpusRefinement{Plan: plan, Base: base, Outcome: out}
	if pd, ok := strat.(promotedDemoted); ok {
		ref.Promoted = pd.Promoted()
		ref.Demoted = pd.Demoted()
	}
	if err := s.persistPlan(base); err != nil {
		return nil, fmt.Errorf("pathlog: retain base plan: %w", err)
	}
	if err := s.persistProfile(out.Profile); err != nil {
		return nil, fmt.Errorf("pathlog: retain corpus profile: %w", err)
	}
	if plan.Fingerprint() != base.Fingerprint() {
		s.recordLineage(base.Fingerprint(), plan)
		if err := s.persistPlan(plan); err != nil {
			return nil, fmt.Errorf("pathlog: retain refined plan: %w", err)
		}
	}
	return ref, nil
}

// buildRefined calibrates the shared cost model with a merged corpus
// profile and prices the refinement strategy's plan.
func (s *Session) buildRefined(ctx context.Context, strat Strategy, profile *SearchProfile) (*Plan, error) {
	in, err := s.Analyze(ctx)
	if err != nil {
		return nil, err
	}
	s.planContext(in).Calibrate(profile)
	return s.PlanWith(ctx, strat)
}

// CorpusPoint is one generation of a CorpusBalance trajectory: the
// deployed plan and the weighted population measurements under it.
type CorpusPoint struct {
	// Generation is the plan's refinement generation.
	Generation int
	// Plan is the generation's deployed plan.
	Plan *Plan
	// MeanOverheadBits is the weighted mean of the bits each member's
	// user-site run logged under the plan — the corpus-mean record
	// overhead.
	MeanOverheadBits float64
	// MeanReplayRuns, MeanReplayMS and MaxReplayRuns measure the
	// developer-site search over the population (weighted means; max over
	// members).
	MeanReplayRuns float64
	MeanReplayMS   float64
	MaxReplayRuns  int
	// Reproduced counts members whose replay found the bug; Members is
	// the corpus size.
	Reproduced int
	Members    int
	// Promoted and Demoted list the branch changes that produced this
	// generation (both empty for the starting generation).
	Promoted []BranchID
	Demoted  []BranchID
	// Outcome carries the full corpus replay behind the numbers.
	Outcome *CorpusOutcome
}

// CorpusTrajectory is a CorpusBalance outcome: the per-generation
// measured points, whether the loop met its target on the whole
// population, and why it stopped.
type CorpusTrajectory struct {
	// CorpusIdentity is the ingested corpus's identity hash; measured
	// store points for the whole loop key on it as their workload.
	CorpusIdentity string
	Points         []CorpusPoint
	Converged      bool
	// Reason is a one-line human explanation of why the loop stopped.
	Reason string
	// DemotionRefused names a demotion the loop measured and refused —
	// the branches involved and the measured regression — empty when no
	// demotion was refused.
	DemotionRefused string
}

// Final returns the last (deployed) generation's point, or nil for an
// empty trajectory.
func (tr *CorpusTrajectory) Final() *CorpusPoint {
	if len(tr.Points) == 0 {
		return nil
	}
	return &tr.Points[len(tr.Points)-1]
}

// CorpusBalance iterates the corpus-driven feedback loop until the whole
// report population replays within the target:
//
//   - promote: while the weighted corpus-mean replay misses the target,
//     refine the plan at the corpus-wide blowup branches, re-record every
//     member's input under the refined plan (members must carry
//     UserBytes; Corpus.AttachInput supplies them for ingested corpora),
//     and measure again;
//   - shrink: once the target is met, demote the branches the merged
//     profile proves redundant — but a demotion is accepted only when the
//     re-recorded, re-replayed corpus confirms it: every member still
//     reproduces, the target still holds, and the measured corpus-mean
//     overhead is strictly below the pre-demotion plan's. A demotion that
//     regresses any of those is refused by name (DemotionRefused), the
//     previous plan stays deployed, and its lineage never advances.
//
// Measured points for every generation are appended to the plan store
// under the corpus identity as the workload key, and each generation's
// merged profile is retained for cold calibration.
func (s *Session) CorpusBalance(ctx context.Context, c *Corpus, opts BalanceOptions) (*CorpusTrajectory, error) {
	if opts.TargetReplayRuns < 0 || opts.TargetReplayTime < 0 {
		return nil, fmt.Errorf("pathlog: CorpusBalance: negative replay target (runs %d, time %v)",
			opts.TargetReplayRuns, opts.TargetReplayTime)
	}
	if opts.OverheadCeiling < 0 {
		return nil, fmt.Errorf("pathlog: CorpusBalance: negative overhead ceiling %g", opts.OverheadCeiling)
	}
	if c == nil || len(c.Reports) == 0 {
		return nil, fmt.Errorf("pathlog: CorpusBalance: empty corpus")
	}
	for _, rep := range c.Reports {
		if rep.UserBytes == nil {
			return nil, fmt.Errorf("pathlog: CorpusBalance: corpus report %s carries no user input to redeploy with — attach inputs (Corpus.AttachInput) or use RefineCorpus for a single evidence-based step",
				rep.Signature)
		}
	}
	maxGen := opts.MaxGenerations
	if maxGen <= 0 {
		maxGen = DefaultMaxGenerations
	}
	copts := CorpusOptions{Shards: opts.Shards, Runner: opts.Runner, Workers: opts.Workers, TopK: opts.TopK}
	tr := &CorpusTrajectory{CorpusIdentity: c.Identity()}

	// Later generations replay outside replayCorpus (the corpus is already
	// resolved), so they open their own balance.generation span here.
	replayGen := func(gen int, cc *Corpus) (*CorpusOutcome, error) {
		gctx, span := s.cfg.obs.Tracer().StartSpan(ctx, "balance.generation")
		span.SetAttr("gen", fmt.Sprint(gen))
		defer span.End()
		start := time.Now()
		out, err := corpus.Replay(gctx, cc, s.corpusShards(copts), s.corpusRunner(copts))
		s.observePhase(opts.OnPhase, gen, "replay", start)
		if err != nil {
			return nil, err
		}
		s.emit("corpus", out.Members)
		return out, nil
	}

	phaseStart := time.Now()
	out, cur, plan, err := s.replayCorpus(ctx, c, copts)
	if err != nil {
		return tr, err
	}
	s.observePhase(opts.OnPhase, plan.Generation, "replay", phaseStart)
	baseGen := plan.Generation
	bits := weightedMeanBits(cur)
	record := func(pt CorpusPoint) error {
		start := time.Now()
		tr.Points = append(tr.Points, pt)
		if err := s.appendCorpusMeasured(tr.CorpusIdentity, pt); err != nil {
			tr.Reason = "plan store write failed"
			return fmt.Errorf("pathlog: CorpusBalance: persist measured point: %w", err)
		}
		if err := s.persistProfile(pt.Outcome.Profile); err != nil {
			tr.Reason = "plan store write failed"
			return fmt.Errorf("pathlog: CorpusBalance: retain corpus profile: %w", err)
		}
		s.observePhase(opts.OnPhase, pt.Generation, "merge", start)
		if opts.OnCorpusGeneration != nil {
			opts.OnCorpusGeneration(pt)
		}
		return nil
	}
	if err := record(corpusPoint(plan, out, bits, nil, nil)); err != nil {
		return tr, err
	}

	// Promote until the population meets the target.
	for !corpusTargetMet(out, opts) {
		if err := ctx.Err(); err != nil {
			tr.Reason = "context cancelled"
			return tr, err
		}
		if plan.Generation-baseGen >= maxGen {
			tr.Reason = fmt.Sprintf("generation cap (%d) reached without meeting the corpus replay target", maxGen)
			return tr, nil
		}
		phaseStart = time.Now()
		strat, err := instrument.Refine(plan, out.Profile, opts.TopK)
		if err != nil {
			return tr, err
		}
		refined, err := s.buildRefined(ctx, strat, out.Profile)
		if err != nil {
			return tr, err
		}
		s.observePhase(opts.OnPhase, plan.Generation, "refine", phaseStart)
		if refined.Fingerprint() == plan.Fingerprint() {
			tr.Reason = fmt.Sprintf("fixed point at generation %d: the corpus profile blames no promotable branch", plan.Generation)
			return tr, nil
		}
		if opts.OverheadCeiling > 0 && refined.EstimatedOverhead() > opts.OverheadCeiling {
			tr.Reason = fmt.Sprintf("overhead ceiling: generation %d would cost ~%.0f bits/run (ceiling %.0f)",
				refined.Generation, refined.EstimatedOverhead(), opts.OverheadCeiling)
			return tr, nil
		}
		s.recordLineage(plan.Fingerprint(), refined)
		if err := s.persistPlan(refined); err != nil {
			tr.Reason = "plan store write failed"
			return tr, fmt.Errorf("pathlog: CorpusBalance: retain refined plan: %w", err)
		}
		phaseStart = time.Now()
		next, err := s.reRecordCorpus(ctx, cur, refined)
		if err != nil {
			return tr, err
		}
		s.observePhase(opts.OnPhase, refined.Generation, "record", phaseStart)
		nextOut, err := replayGen(refined.Generation, next)
		if err != nil {
			return tr, err
		}
		var pd promotedDemoted
		if p, ok := strat.(promotedDemoted); ok {
			pd = p
		}
		plan, cur, out = refined, next, nextOut
		bits = weightedMeanBits(cur)
		pt := corpusPoint(plan, out, bits, nil, nil)
		if pd != nil {
			pt.Promoted = pd.Promoted()
		}
		if err := record(pt); err != nil {
			return tr, err
		}
	}
	tr.Converged = true
	tr.Reason = fmt.Sprintf("corpus replay target met at generation %d (weighted mean %.1f runs over %d reports)",
		plan.Generation, out.MeanRuns, out.Members)

	// Shrink: demote proven-redundant branches while measurement confirms
	// the demotion.
	for plan.Generation-baseGen < maxGen {
		if err := ctx.Err(); err != nil {
			return tr, err
		}
		cands := out.Profile.DemotableAt(plan.Instrumented, opts.DemotionRate)
		if len(cands) == 0 {
			return tr, nil
		}
		phaseStart = time.Now()
		strat, err := instrument.DemoteAt(plan, out.Profile, opts.DemotionRate)
		if err != nil {
			return tr, err
		}
		demoted, err := s.buildRefined(ctx, strat, out.Profile)
		if err != nil {
			return tr, err
		}
		s.observePhase(opts.OnPhase, plan.Generation, "refine", phaseStart)
		if demoted.Fingerprint() == plan.Fingerprint() {
			return tr, nil
		}
		phaseStart = time.Now()
		trial, err := s.reRecordCorpus(ctx, cur, demoted)
		if err != nil {
			return tr, err
		}
		s.observePhase(opts.OnPhase, demoted.Generation, "record", phaseStart)
		trialOut, err := replayGen(demoted.Generation, trial)
		if err != nil {
			return tr, err
		}
		trialBits := weightedMeanBits(trial)
		if !trialOut.AllReproduced() || !corpusTargetMet(trialOut, opts) || trialBits >= bits {
			tr.DemotionRefused = fmt.Sprintf(
				"demoting %s measured %d/%d reproduced, mean %.1f runs, mean %.1f bits (was %d/%d, %.1f runs, %.1f bits) — refused, plan %s stays deployed",
				branchList(cands), trialOut.Reproduced, trialOut.Members, trialOut.MeanRuns, trialBits,
				out.Reproduced, out.Members, out.MeanRuns, bits, plan.Fingerprint())
			tr.Reason += "; demotion refused after measurement"
			return tr, nil
		}
		// Measurement confirms the shrink: only now does the demoted plan
		// become the chain's head.
		s.recordLineage(plan.Fingerprint(), demoted)
		if err := s.persistPlan(demoted); err != nil {
			tr.Reason = "plan store write failed"
			return tr, fmt.Errorf("pathlog: CorpusBalance: retain demoted plan: %w", err)
		}
		plan, cur, out, bits = demoted, trial, trialOut, trialBits
		pt := corpusPoint(plan, out, bits, nil, cands)
		if err := record(pt); err != nil {
			return tr, err
		}
		tr.Reason = fmt.Sprintf("corpus replay target met at generation %d (weighted mean %.1f runs over %d reports); demotion shrank the plan to %.1f mean bits",
			plan.Generation, out.MeanRuns, out.Members, bits)
	}
	return tr, nil
}

// corpusRunner resolves the runner a balance step replays with: an
// explicit Runner wins, then a remote fleet (per-call Workers, falling
// back to the session's WithFleet pool), then the in-process runner. The
// fleet runner dispatches under the session's name — the scenario a
// stateless worker rebuilds the program from — with the same replay
// bounds the in-process runner would use.
func (s *Session) corpusRunner(opts CorpusOptions) CorpusRunner {
	if opts.Runner != nil {
		return opts.Runner
	}
	if workers := s.corpusWorkers(opts); len(workers) > 0 {
		r := fleet.NewRemoteRunner(workers, s.cfg.name, s.corpusReplayOptions())
		// The runner shares the session's observer: its counters land in the
		// same registry and its shard/dispatch spans parent under the balance
		// generation that dispatched them.
		r.Obs = s.cfg.obs
		return r
	}
	return &corpus.InProcessRunner{Prog: s.prog, Spec: s.spec, Opts: s.corpusReplayOptions()}
}

// corpusWorkers resolves the remote worker pool for one corpus step.
func (s *Session) corpusWorkers(opts CorpusOptions) []string {
	if opts.Runner != nil {
		return nil
	}
	if len(opts.Workers) > 0 {
		return opts.Workers
	}
	return s.cfg.fleetWorkers
}

// corpusShards resolves a step's shard count: an explicit Shards wins;
// with a remote pool and no explicit count, one shard per worker (the
// partition that keeps every worker busy).
func (s *Session) corpusShards(opts CorpusOptions) int {
	if opts.Shards > 1 {
		return opts.Shards
	}
	if workers := s.corpusWorkers(opts); len(workers) > 0 {
		return len(workers)
	}
	return opts.Shards
}

// reRecordCorpus redeploys a plan over the corpus population: every
// member's user input is recorded again under the plan, and the fresh
// recordings inherit the member weights (Corpus.Rebind). A member whose
// input no longer crashes is an error — the corpus and the plan no longer
// describe the same bugs.
func (s *Session) reRecordCorpus(ctx context.Context, cur *Corpus, plan *Plan) (*Corpus, error) {
	recs := make([]*replay.Recording, len(cur.Reports))
	for i, rep := range cur.Reports {
		rec, _, err := s.RecordWith(ctx, plan, rep.UserBytes)
		if err != nil {
			return nil, err
		}
		if rec == nil {
			return nil, fmt.Errorf("pathlog: corpus report %s no longer crashes under plan %s (generation %d)",
				rep.Signature, plan.Fingerprint(), plan.Generation)
		}
		recs[i] = rec
	}
	return cur.Rebind(recs)
}

// corpusPoint assembles one trajectory point from a generation's plan and
// corpus replay.
func corpusPoint(plan *Plan, out *CorpusOutcome, bits float64, promoted, demoted []BranchID) CorpusPoint {
	return CorpusPoint{
		Generation:       plan.Generation,
		Plan:             plan,
		MeanOverheadBits: bits,
		MeanReplayRuns:   out.MeanRuns,
		MeanReplayMS:     out.MeanWallMS,
		MaxReplayRuns:    out.MaxRuns,
		Reproduced:       out.Reproduced,
		Members:          out.Members,
		Promoted:         promoted,
		Demoted:          demoted,
		Outcome:          out,
	}
}

// weightedMeanBits is the corpus-mean record overhead: the weighted mean
// of the bits each member's recording logged.
func weightedMeanBits(c *Corpus) float64 {
	total, bits := 0.0, 0.0
	for _, rep := range c.Reports {
		if rep.Rec == nil || rep.Rec.Trace == nil {
			continue
		}
		total += rep.Weight
		bits += rep.Weight * float64(rep.Rec.Trace.Len())
	}
	if total == 0 {
		return 0
	}
	return bits / total
}

// corpusTargetMet checks a corpus replay against the loop's target: every
// member must reproduce, and the weighted means must meet the run and
// wall-clock targets when set. With no target set, reproducing the whole
// population within the replay budget is the bar.
func corpusTargetMet(out *CorpusOutcome, opts BalanceOptions) bool {
	if !out.AllReproduced() {
		return false
	}
	if opts.TargetReplayRuns > 0 && out.MeanRuns > float64(opts.TargetReplayRuns) {
		return false
	}
	if opts.TargetReplayTime > 0 && out.MeanWallMS > float64(opts.TargetReplayTime.Milliseconds()) {
		return false
	}
	return true
}

// appendCorpusMeasured persists one corpus generation's measured point,
// keyed by the corpus identity as the workload (the same mechanism as the
// per-session WorkloadHash: a content identity, not a name).
func (s *Session) appendCorpusMeasured(identity string, pt CorpusPoint) error {
	st, err := s.planStore()
	if err != nil || st == nil {
		return err
	}
	return st.AppendMeasured(pt.Plan.ProgHash, identity, store.MeasuredPoint{
		Fingerprint:  pt.Plan.Fingerprint(),
		Strategy:     pt.Plan.Strategy,
		Generation:   pt.Generation,
		OverheadBits: int64(math.Round(pt.MeanOverheadBits)),
		ReplayRuns:   int(math.Round(pt.MeanReplayRuns)),
		ReplayMS:     int64(math.Round(pt.MeanReplayMS)),
		Reproduced:   pt.Reproduced == pt.Members,
	})
}

// branchList renders a branch-ID set for error and refusal messages.
func branchList(ids []BranchID) string {
	if len(ids) == 0 {
		return "nothing"
	}
	out := ""
	for i, id := range ids {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("b%d", id)
	}
	return out
}

// corpusPointJSON is the persisted shape of one corpus trajectory point.
type corpusPointJSON struct {
	Generation   int     `json:"generation"`
	Strategy     string  `json:"strategy"`
	Fingerprint  string  `json:"fingerprint"`
	Parent       string  `json:"parent,omitempty"`
	Instrumented int     `json:"instrumented_locations"`
	MeanBits     float64 `json:"mean_overhead_bits"`
	MeanRuns     float64 `json:"mean_replay_runs"`
	MaxRuns      int     `json:"max_replay_runs"`
	MeanMS       float64 `json:"mean_replay_ms"`
	Reproduced   int     `json:"reproduced"`
	Members      int     `json:"members"`
	Promoted     []int   `json:"promoted,omitempty"`
	Demoted      []int   `json:"demoted,omitempty"`
}

type corpusTrajectoryJSON struct {
	Corpus          string            `json:"corpus"`
	Converged       bool              `json:"converged"`
	Reason          string            `json:"reason"`
	DemotionRefused string            `json:"demotion_refused,omitempty"`
	Points          []corpusPointJSON `json:"points"`
}

// Save writes the corpus trajectory's measured points to path as JSON —
// the artifact the harness's corpus experiment and CI publish.
func (tr *CorpusTrajectory) Save(path string) error {
	enc := corpusTrajectoryJSON{
		Corpus:          tr.CorpusIdentity,
		Converged:       tr.Converged,
		Reason:          tr.Reason,
		DemotionRefused: tr.DemotionRefused,
	}
	for _, pt := range tr.Points {
		row := corpusPointJSON{
			Generation:   pt.Generation,
			Strategy:     pt.Plan.Strategy,
			Fingerprint:  pt.Plan.Fingerprint(),
			Parent:       pt.Plan.Parent,
			Instrumented: pt.Plan.NumInstrumented(),
			MeanBits:     pt.MeanOverheadBits,
			MeanRuns:     pt.MeanReplayRuns,
			MaxRuns:      pt.MaxReplayRuns,
			MeanMS:       pt.MeanReplayMS,
			Reproduced:   pt.Reproduced,
			Members:      pt.Members,
		}
		for _, id := range pt.Promoted {
			row.Promoted = append(row.Promoted, int(id))
		}
		for _, id := range pt.Demoted {
			row.Demoted = append(row.Demoted, int(id))
		}
		enc.Points = append(enc.Points, row)
	}
	data, err := json.MarshalIndent(enc, "", "  ")
	if err != nil {
		return fmt.Errorf("pathlog: encode corpus trajectory: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}
