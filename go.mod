module pathlog

go 1.24
