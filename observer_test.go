package pathlog

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"pathlog/internal/apps"
	"pathlog/internal/obs"
	"pathlog/internal/static"
)

// TestAutoBalanceObserver pins the session-level observability contract:
// an attached observer receives every balance phase timing in its registry
// histograms, the replay engine's per-run distributions flow into the same
// registry, and each generation's measurement runs under a recorded
// balance.generation span.
func TestAutoBalanceObserver(t *testing.T) {
	s, err := apps.UServerScenario(3, 72)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	var traceBuf bytes.Buffer
	tracer := obs.NewTracer(&traceBuf, "test")
	sess := SessionOf(s,
		WithAnalysisSpec(apps.UServerAnalysisScenario().Spec),
		WithDynamicBudget(3, 0),
		WithStaticOptions(static.Options{LibAsSymbolic: true}),
		WithSyscallLog(),
		WithStrategy(Dynamic()),
		WithReplayBudget(1500, 15*time.Second),
		WithObserver(&Observer{Reg: reg, Trace: tracer}),
	)

	phases := map[string]int{}
	tr, err := sess.AutoBalance(context.Background(), nil, BalanceOptions{
		TargetReplayRuns: 200,
		MaxGenerations:   4,
		OnPhase: func(pt PhaseTiming) {
			if pt.Elapsed < 0 {
				t.Errorf("negative %s timing: %v", pt.Phase, pt.Elapsed)
			}
			phases[pt.Phase]++
		},
	})
	if err != nil {
		t.Fatalf("AutoBalance: %v", err)
	}
	if !tr.Converged {
		t.Fatalf("did not converge: %s", tr.Reason)
	}
	gens := len(tr.Points)

	// Every phase fires through OnPhase: record/replay/merge once per
	// generation, refine once per transition.
	for phase, want := range map[string]int{"record": gens, "replay": gens, "merge": gens, "refine": gens - 1} {
		if phases[phase] != want {
			t.Errorf("phase %q fired %d times, want %d (phases: %v)", phase, phases[phase], want, phases)
		}
	}

	// The same timings land in the registry's phase histograms, and the
	// replay engine's per-run distributions land beside them.
	snap := reg.Snapshot()
	counts := map[string]int64{}
	for _, h := range snap.Histograms {
		counts[h.Name] = h.Count
	}
	for phase, want := range map[string]int64{"record": int64(gens), "replay": int64(gens), "merge": int64(gens), "refine": int64(gens - 1)} {
		name := "pathlog_balance_" + phase + "_ns"
		if counts[name] != want {
			t.Errorf("%s count = %d, want %d", name, counts[name], want)
		}
	}
	if counts["pathlog_replay_run_ns"] == 0 {
		t.Errorf("pathlog_replay_run_ns is empty — replay options did not inherit the observer's registry (histograms: %v)", counts)
	}

	// One balance.generation span per generation, each carrying its gen
	// attribute.
	var genSpans int
	for _, line := range strings.Split(strings.TrimSpace(traceBuf.String()), "\n") {
		var rec obs.SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line unparsable: %v\n%s", err, line)
		}
		if rec.Name != "balance.generation" {
			continue
		}
		genSpans++
		if rec.Proc != "test" || rec.Attrs["gen"] == "" || rec.Trace == "" || rec.Span == "" {
			t.Errorf("malformed generation span: %+v", rec)
		}
	}
	if genSpans != gens {
		t.Errorf("trace has %d balance.generation spans, want %d", genSpans, gens)
	}
}
