package pathlog

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"pathlog/internal/instrument"
)

// Frontier is the paper's titular balance as a callable API: it sweeps a
// set of instrumentation strategies over the session's analysis, prices
// each resulting plan with the cost model (estimated record overhead
// versus estimated debug time), and returns the Pareto frontier — the
// plans no other swept plan beats on both axes. The developer picks a
// point; everything off the frontier is strictly worse somewhere.

// PlanPoint is one Pareto-optimal plan from a Frontier sweep.
type PlanPoint struct {
	// Strategy is the name of the strategy that produced the plan.
	Strategy string
	// Plan is the priced, durable plan (save it with Plan.Save).
	Plan *Plan
	// Overhead is the estimated record overhead in logged bits per
	// user-site run (Plan.EstimatedOverhead).
	Overhead float64
	// ReplayRuns is the estimated debug time in replay search runs
	// (Plan.EstimatedReplayRuns).
	ReplayRuns float64
	// Measured marks a point whose coordinates were observed (a recorded
	// run's logged bits, a replay search's run count) rather than priced by
	// the cost model — an AutoBalance trajectory point merged in through
	// MergeMeasured.
	Measured bool
}

// DefaultSweep returns the strategy sweep Frontier uses when called with
// no strategies: the paper's four methods plus the baseline, and a
// Budgeted ladder between dynamic+static and all branches that fills the
// curve with intermediate points (1/8, 1/4 and 1/2 of the program's
// branch locations, chosen by cost-model value density).
func DefaultSweep(numBranches int) []Strategy {
	combined := instrument.Union(instrument.Dynamic(), instrument.StaticResidue())
	sweep := []Strategy{
		instrument.None(),
		instrument.Dynamic(),
		combined,
		instrument.Static(),
		instrument.All(),
	}
	for _, frac := range []int{8, 4, 2} {
		if k := numBranches / frac; k > 0 {
			sweep = append(sweep, instrument.Budgeted(instrument.All(), k))
		}
	}
	return sweep
}

// Frontier sweeps the given strategies (DefaultSweep when none are given)
// and returns the Pareto frontier of (estimated record overhead, estimated
// replay runs), sorted by strictly increasing overhead — so estimated
// replay runs strictly decrease along the result. Plans with identical
// fingerprints collapse to one point. Plan construction fans out over the
// session's worker pool (WithReplayWorkers).
func (s *Session) Frontier(ctx context.Context, strategies ...Strategy) ([]PlanPoint, error) {
	in, err := s.Analyze(ctx)
	if err != nil {
		return nil, err
	}
	if len(strategies) == 0 {
		strategies = DefaultSweep(len(s.prog.Branches))
	}
	pc := s.planContext(in)

	plans := make([]*Plan, len(strategies))
	errs := make([]error, len(strategies))
	pool := s.cfg.workers
	if pool < 1 {
		pool = 1
	}
	if pool > len(strategies) {
		pool = len(strategies)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				plans[i], errs[i] = strategies[i].Plan(ctx, pc)
			}
		}()
	}
	for i := range strategies {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	points := make([]PlanPoint, 0, len(strategies))
	seen := make(map[string]bool)
	for i, p := range plans {
		if errs[i] != nil {
			return nil, fmt.Errorf("pathlog: frontier strategy %s: %w", strategies[i].Name(), errs[i])
		}
		fp := p.Fingerprint()
		if seen[fp] {
			continue // identical plan under another name: one point
		}
		seen[fp] = true
		points = append(points, PlanPoint{
			Strategy:   strategies[i].Name(),
			Plan:       p,
			Overhead:   p.EstimatedOverhead(),
			ReplayRuns: p.EstimatedReplayRuns(),
		})
	}
	return paretoFrontier(points), nil
}

// MergeMeasured folds an AutoBalance trajectory's measured points into an
// estimated frontier sweep and returns the recomputed Pareto frontier.
// Where a measured point and an estimated point describe the same plan
// (same fingerprint), the measurement wins: the cost model proposed the
// plan, the deployment graded it. The result is sorted like Frontier's —
// strictly increasing overhead, strictly decreasing replay runs — with
// Measured marking which points are ground truth.
func MergeMeasured(estimated []PlanPoint, traj *BalanceTrajectory) []PlanPoint {
	merged := make([]PlanPoint, 0, len(estimated)+len(traj.Points))
	measured := make(map[string]bool, len(traj.Points))
	for _, pt := range traj.PlanPoints() {
		fp := pt.Plan.Fingerprint()
		if measured[fp] {
			continue
		}
		measured[fp] = true
		merged = append(merged, pt)
	}
	for _, pt := range estimated {
		if measured[pt.Plan.Fingerprint()] {
			continue
		}
		merged = append(merged, pt)
	}
	return paretoFrontier(merged)
}

// paretoFrontier keeps the non-dominated points, sorted by strictly
// increasing overhead (and therefore strictly decreasing replay runs). Of
// cost-identical plans, the first in sweep order survives.
func paretoFrontier(points []PlanPoint) []PlanPoint {
	sort.SliceStable(points, func(i, j int) bool {
		if points[i].Overhead != points[j].Overhead {
			return points[i].Overhead < points[j].Overhead
		}
		return points[i].ReplayRuns < points[j].ReplayRuns
	})
	out := points[:0]
	bestRuns := 0.0
	for i, p := range points {
		if i == 0 || p.ReplayRuns < bestRuns {
			out = append(out, p)
			bestRuns = p.ReplayRuns
		}
	}
	return out
}
