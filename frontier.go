package pathlog

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"pathlog/internal/instrument"
	"pathlog/internal/store"
)

// Frontier is the paper's titular balance as a callable API: it sweeps a
// set of instrumentation strategies over the session's analysis, prices
// each resulting plan with the cost model (estimated record overhead
// versus estimated debug time), and returns the Pareto frontier — the
// plans no other swept plan beats on both axes. The developer picks a
// point; everything off the frontier is strictly worse somewhere.

// PlanPoint is one Pareto-optimal plan from a Frontier sweep.
type PlanPoint struct {
	// Strategy is the name of the strategy that produced the plan.
	Strategy string
	// Plan is the priced, durable plan (save it with Plan.Save).
	Plan *Plan
	// Overhead is the estimated record overhead in logged bits per
	// user-site run (Plan.EstimatedOverhead).
	Overhead float64
	// ReplayRuns is the estimated debug time in replay search runs
	// (Plan.EstimatedReplayRuns).
	ReplayRuns float64
	// Measured marks a point whose coordinates were observed (a recorded
	// run's logged bits, a replay search's run count) rather than priced by
	// the cost model — an AutoBalance trajectory point merged in through
	// MergeMeasured, or a persisted measurement the plan store contributed
	// to a Frontier sweep (WithPlanStore).
	Measured bool
}

// OverheadDrift returns how far the measured record overhead landed from
// the cost model's estimate for the same plan (measured minus estimated
// bits per run): the model's pricing error, renderable next to the
// frontier. It is 0 for estimated points — there is nothing to drift from.
func (pt PlanPoint) OverheadDrift() float64 {
	if !pt.Measured || pt.Plan == nil {
		return 0
	}
	return pt.Overhead - pt.Plan.EstimatedOverhead()
}

// ReplayRunsDrift returns how far the measured replay search length landed
// from the cost model's estimate for the same plan (measured minus
// estimated runs); 0 for estimated points.
func (pt PlanPoint) ReplayRunsDrift() float64 {
	if !pt.Measured || pt.Plan == nil {
		return 0
	}
	return pt.ReplayRuns - pt.Plan.EstimatedReplayRuns()
}

// DefaultSweep returns the strategy sweep Frontier uses when called with
// no strategies: the paper's four methods plus the baseline, and a
// Budgeted ladder between dynamic+static and all branches that fills the
// curve with intermediate points (1/8, 1/4 and 1/2 of the program's
// branch locations, chosen by cost-model value density).
func DefaultSweep(numBranches int) []Strategy {
	combined := instrument.Union(instrument.Dynamic(), instrument.StaticResidue())
	sweep := []Strategy{
		instrument.None(),
		instrument.Dynamic(),
		combined,
		instrument.Static(),
		instrument.All(),
	}
	for _, frac := range []int{8, 4, 2} {
		if k := numBranches / frac; k > 0 {
			sweep = append(sweep, instrument.Budgeted(instrument.All(), k))
		}
	}
	return sweep
}

// Frontier sweeps the given strategies (DefaultSweep when none are given)
// and returns the Pareto frontier of (estimated record overhead, estimated
// replay runs), sorted by strictly increasing overhead — so estimated
// replay runs strictly decrease along the result. Plans with identical
// fingerprints collapse to one point. Plan construction fans out over the
// session's worker pool (WithReplayWorkers).
//
// With a plan store configured (WithPlanStore), the sweep also folds in
// the store's persisted measured points for this program and workload:
// where a measurement and an estimate describe the same plan fingerprint
// the measurement wins, and measured plans the sweep would never have
// proposed (refined generations from earlier sessions) compete for the
// frontier on their observed coordinates. Measured points carry
// PlanPoint.Measured and nonzero drift accessors, so a cold session's
// frontier improves with every deployment history the store accumulates.
func (s *Session) Frontier(ctx context.Context, strategies ...Strategy) ([]PlanPoint, error) {
	in, err := s.Analyze(ctx)
	if err != nil {
		return nil, err
	}
	if len(strategies) == 0 {
		strategies = DefaultSweep(len(s.prog.Branches))
	}
	pc := s.planContext(in)
	// Cold calibration: fold the store's retained per-generation search
	// profiles into the cost model before the first sweep, so estimates
	// for unmeasured plans start from observed rates, not analysis priors.
	s.calibrateForSweep(pc)

	plans := make([]*Plan, len(strategies))
	errs := make([]error, len(strategies))
	pool := s.cfg.workers
	if pool < 1 {
		pool = 1
	}
	if pool > len(strategies) {
		pool = len(strategies)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < pool; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				plans[i], errs[i] = strategies[i].Plan(ctx, pc)
			}
		}()
	}
	for i := range strategies {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	points := make([]PlanPoint, 0, len(strategies))
	seen := make(map[string]bool)
	for i, p := range plans {
		if errs[i] != nil {
			return nil, fmt.Errorf("pathlog: frontier strategy %s: %w", strategies[i].Name(), errs[i])
		}
		fp := p.Fingerprint()
		if seen[fp] {
			continue // identical plan under another name: one point
		}
		seen[fp] = true
		points = append(points, PlanPoint{
			Strategy:   strategies[i].Name(),
			Plan:       p,
			Overhead:   p.EstimatedOverhead(),
			ReplayRuns: p.EstimatedReplayRuns(),
		})
	}
	measured, err := s.storedMeasuredPoints(pc.ProgHash())
	if err != nil {
		return nil, err
	}
	return mergeMeasured(measured, points), nil
}

// storedMeasuredPoints loads the plan store's measured history for this
// program and workload as frontier points: one point per fingerprint (the
// latest observation wins — re-measurement supersedes), with the retained
// plan resolved from the store so each point keeps its cost estimate for
// drift rendering. Budget-censored points (not reproduced) are the paper's
// ∞ and are excluded; a damaged measured file, or a measurement whose
// plan is missing or damaged, is skipped — Scan reports such entries, a
// sweep does not fail on them (the estimates stand). Without
// WithPlanStore it returns nothing.
func (s *Session) storedMeasuredPoints(progHash string) ([]PlanPoint, error) {
	st, err := s.planStore()
	if err != nil || st == nil {
		return nil, err
	}
	pts, err := st.Measured(progHash, s.WorkloadHash())
	if errors.Is(err, store.ErrDamaged) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	latest := make(map[string]store.MeasuredPoint, len(pts))
	order := make([]string, 0, len(pts))
	for _, pt := range pts {
		if !pt.Reproduced {
			continue
		}
		if _, ok := latest[pt.Fingerprint]; !ok {
			order = append(order, pt.Fingerprint)
		}
		latest[pt.Fingerprint] = pt
	}
	out := make([]PlanPoint, 0, len(order))
	for _, fp := range order {
		mp := latest[fp]
		plan, err := st.GetPlan(fp)
		if err != nil {
			continue
		}
		out = append(out, PlanPoint{
			Strategy:   mp.Strategy,
			Plan:       plan,
			Overhead:   float64(mp.OverheadBits),
			ReplayRuns: float64(mp.ReplayRuns),
			Measured:   true,
		})
	}
	return out, nil
}

// MergeMeasured folds an AutoBalance trajectory's measured points into an
// estimated frontier sweep and returns the recomputed Pareto frontier.
// Where a measured point and an estimated point describe the same plan
// (same fingerprint), the measurement wins: the cost model proposed the
// plan, the deployment graded it. Measured points are never displaced by
// estimates (see paretoFrontier), so the result is sorted by increasing
// overhead with replay runs strictly decreasing along each tier —
// Measured marks which points are ground truth.
func MergeMeasured(estimated []PlanPoint, traj *BalanceTrajectory) []PlanPoint {
	return mergeMeasured(traj.PlanPoints(), estimated)
}

// mergeMeasured is the shared merge: measured points win over estimated
// points for the same fingerprint (first measured occurrence survives
// duplicate measurements), and the union is re-Pareto'd.
func mergeMeasured(measured, estimated []PlanPoint) []PlanPoint {
	merged := make([]PlanPoint, 0, len(estimated)+len(measured))
	seen := make(map[string]bool, len(measured))
	for _, pt := range measured {
		fp := pt.Plan.Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		merged = append(merged, pt)
	}
	for _, pt := range estimated {
		if seen[pt.Plan.Fingerprint()] {
			continue
		}
		merged = append(merged, pt)
	}
	return paretoFrontier(merged)
}

// paretoFrontier keeps the non-dominated points, sorted by increasing
// overhead. Of cost-identical plans, the first in sweep order survives.
//
// Estimates and measurements are not peers here: a measured point is
// ground truth and is only ever displaced by another measured point,
// while an estimated point dies to any point that beats it. An optimistic
// estimate therefore cannot evict a measurement that the deployment
// already disproved it against — the measurement stays on the frontier,
// and the gap it leaves above the estimated curve is exactly the rendered
// drift. Consequently replay runs strictly decrease along the estimated
// points and along the measured points separately, not necessarily across
// the union.
func paretoFrontier(points []PlanPoint) []PlanPoint {
	sort.SliceStable(points, func(i, j int) bool {
		if points[i].Overhead != points[j].Overhead {
			return points[i].Overhead < points[j].Overhead
		}
		return points[i].ReplayRuns < points[j].ReplayRuns
	})
	out := points[:0]
	bestRuns := math.Inf(1)         // lowest replay runs of any kept point
	bestMeasuredRuns := math.Inf(1) // lowest replay runs of any kept measured point
	for _, p := range points {
		switch {
		case p.Measured && p.ReplayRuns < bestMeasuredRuns:
			out = append(out, p)
			bestMeasuredRuns = p.ReplayRuns
			if p.ReplayRuns < bestRuns {
				bestRuns = p.ReplayRuns
			}
		case !p.Measured && p.ReplayRuns < bestRuns:
			out = append(out, p)
			bestRuns = p.ReplayRuns
		}
	}
	return out
}
