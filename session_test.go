package pathlog

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// chainSrc needs a six-character password, one nested branch per byte, so a
// full-log replay walks one forced constraint per run: a predictable
// multi-run search for cancellation and parallelism tests.
const chainSrc = `
int main() {
	char a[8];
	getarg(0, a, 8);
	if (a[0] == 'R') {
		if (a[1] == 'E') {
			if (a[2] == 'P') {
				if (a[3] == 'L') {
					if (a[4] == 'A') {
						if (a[5] == 'Y') {
							crash(7);
						}
					}
				}
			}
		}
	}
	print_str("ok");
	return 0;
}
`

// mustReplay replays and fails the test on a validation error.
func mustReplay(t *testing.T, ctx context.Context, sess *Session, rec *Recording) *ReplayResult {
	t.Helper()
	res, err := sess.Replay(ctx, rec)
	if err != nil {
		t.Fatalf("replay refused: %v", err)
	}
	return res
}

func chainSession(t *testing.T, opts ...Option) *Session {
	t.Helper()
	prog, err := Compile(Unit{Name: "chain.mc", Source: chainSrc})
	if err != nil {
		t.Fatal(err)
	}
	base := []Option{
		WithName("chain"),
		WithUserBytes(map[string][]byte{"arg0": []byte("REPLAY")}),
		WithSyscallLog(),
		WithDynamicBudget(50, 0),
		WithReplayBudget(500, 10*time.Second),
	}
	return NewSession(prog,
		&Spec{Args: []Stream{ArgStream(0, "xxxxxx", 8)}},
		append(base, opts...)...)
}

func TestSessionEndToEnd(t *testing.T) {
	ctx := context.Background()
	sess := chainSession(t)
	for _, m := range Methods {
		plan, err := sess.PlanFor(ctx, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		rec, stats, err := sess.RecordWith(ctx, plan, nil)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if rec == nil {
			t.Fatalf("%v: no recording", m)
		}
		if stats.TraceBits != int64(stats.InstrumentedExecs) {
			t.Fatalf("%v: bits/execs mismatch", m)
		}
		res := mustReplay(t, ctx, sess, rec)
		if !res.Reproduced {
			t.Fatalf("%v: not reproduced: %+v", m, res)
		}
		if got := res.InputBytes["arg0"]; string(got[:6]) != "REPLAY" {
			t.Fatalf("%v: input %q", m, got)
		}
		if !sess.Verify(res.InputBytes, rec.Crash) {
			t.Fatalf("%v: input does not verify", m)
		}
	}
}

func TestSessionAnalysisCached(t *testing.T) {
	ctx := context.Background()
	sess := chainSession(t)
	a, err := sess.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sess.Analyze(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if a.Dynamic != b.Dynamic || a.Static != b.Static {
		t.Fatal("analysis not cached: got distinct reports")
	}
}

// TestSessionReplayWorkersParity is the acceptance check for parallel
// replay: WithReplayWorkers(4) must reproduce everything workers=1 does,
// with verifying inputs.
func TestSessionReplayWorkersParity(t *testing.T) {
	ctx := context.Background()
	serial := chainSession(t, WithReplayWorkers(1))
	parallel := chainSession(t, WithReplayWorkers(4))
	for _, m := range Methods {
		plan, err := serial.PlanFor(ctx, m)
		if err != nil {
			t.Fatal(err)
		}
		rec, _, err := serial.RecordWith(ctx, plan, nil)
		if err != nil || rec == nil {
			t.Fatalf("%v: record: %v", m, err)
		}
		one := mustReplay(t, ctx, serial, rec)
		four := mustReplay(t, ctx, parallel, rec)
		if !one.Reproduced {
			t.Fatalf("%v: workers=1 did not reproduce", m)
		}
		if !four.Reproduced {
			t.Fatalf("%v: workers=4 did not reproduce what workers=1 did", m)
		}
		if four.Workers != 4 {
			t.Fatalf("%v: workers echoed %d", m, four.Workers)
		}
		if !parallel.Verify(four.InputBytes, rec.Crash) {
			t.Fatalf("%v: workers=4 input does not verify", m)
		}
	}
}

func TestWithReplayOptionsWorkersRespected(t *testing.T) {
	// Workers set through WithReplayOptions must survive when
	// WithReplayWorkers is never called.
	ctx := context.Background()
	sess := chainSession(t, WithReplayOptions(ReplayOptions{MaxRuns: 500, Workers: 2}))
	rec, _, err := sess.Record(ctx, nil)
	if err != nil || rec == nil {
		t.Fatalf("record: %v", err)
	}
	res := mustReplay(t, ctx, sess, rec)
	if !res.Reproduced {
		t.Fatalf("not reproduced: %+v", res)
	}
	if res.Workers != 2 {
		t.Fatalf("WithReplayOptions workers dropped: got %d, want 2", res.Workers)
	}
}

func TestSessionReplayCancelledBeforeStart(t *testing.T) {
	sess := chainSession(t)
	rec, _, err := sess.Record(context.Background(), nil)
	if err != nil || rec == nil {
		t.Fatalf("record: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	res := mustReplay(t, ctx, sess, rec)
	if res.Reproduced {
		t.Fatal("cancelled replay must not reproduce")
	}
	if !res.Cancelled {
		t.Fatalf("expected Cancelled, got %+v", res)
	}
	if res.Runs != 0 {
		t.Fatalf("cancelled-before-start replay ran %d runs", res.Runs)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled replay took %s", elapsed)
	}
}

// TestSessionReplayCancelMidSearch cancels after the second completed run
// and checks the search overshoots by at most one run per worker.
func TestSessionReplayCancelMidSearch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var replayRuns []int
	sess := chainSession(t,
		WithReplayWorkers(1),
		WithProgress(func(ev ProgressEvent) {
			if ev.Phase != "replay" {
				return
			}
			mu.Lock()
			replayRuns = append(replayRuns, ev.Runs)
			mu.Unlock()
			if ev.Runs >= 2 {
				cancel()
			}
		}),
	)
	rec, _, err := sess.Record(context.Background(), nil)
	if err != nil || rec == nil {
		t.Fatalf("record: %v", err)
	}
	res := mustReplay(t, ctx, sess, rec)
	if res.Reproduced {
		// The chain needs ~7 runs; cancellation at 2 must cut it short.
		t.Fatalf("replay reproduced despite cancellation after 2 runs (%d runs)", res.Runs)
	}
	if !res.Cancelled {
		t.Fatalf("expected Cancelled, got %+v", res)
	}
	// One run per worker may already be claimed when the cancel lands.
	if res.Runs > 3 {
		t.Fatalf("cancelled at run 2, but %d runs started (overshoot > 1)", res.Runs)
	}
	mu.Lock()
	events := len(replayRuns)
	mu.Unlock()
	if events < 2 {
		t.Fatalf("progress events: %d", events)
	}
}

func TestSessionReproduceAll(t *testing.T) {
	ctx := context.Background()
	sess := chainSession(t, WithReplayWorkers(4))
	var recs []*Recording
	for _, m := range Methods {
		plan, err := sess.PlanFor(ctx, m)
		if err != nil {
			t.Fatal(err)
		}
		rec, _, err := sess.RecordWith(ctx, plan, nil)
		if err != nil || rec == nil {
			t.Fatalf("%v: record: %v", m, err)
		}
		recs = append(recs, rec)
	}
	results, err := sess.ReproduceAll(ctx, recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(recs) {
		t.Fatalf("results: %d for %d recordings", len(results), len(recs))
	}
	for i, res := range results {
		if res == nil || !res.Reproduced {
			t.Fatalf("recording %d not reproduced: %+v", i, res)
		}
		if !sess.Verify(res.InputBytes, recs[i].Crash) {
			t.Fatalf("recording %d: input does not verify", i)
		}
	}
}

func TestSessionReproduceOneShot(t *testing.T) {
	ctx := context.Background()
	sess := chainSession(t)
	res, rec, err := sess.Reproduce(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || res == nil || !res.Reproduced {
		t.Fatalf("one-shot failed: rec=%v res=%+v", rec != nil, res)
	}
	// A non-crashing input yields no report and no error.
	res, rec, err = sess.Reproduce(ctx, map[string][]byte{"arg0": []byte("no")})
	if err != nil {
		t.Fatal(err)
	}
	if res != nil || rec != nil {
		t.Fatal("non-crashing run must yield no report")
	}
}

// TestSessionRejectsUnknownStream: a typo'd UserBytes key must fail loudly
// instead of silently recording the wrong input.
func TestSessionRejectsUnknownStream(t *testing.T) {
	ctx := context.Background()
	sess := chainSession(t)
	_, _, err := sess.Record(ctx, map[string][]byte{"arg1": []byte("REPLAY")})
	if err == nil {
		t.Fatal("unknown stream key must error")
	}
	if !strings.Contains(err.Error(), "arg1") {
		t.Fatalf("error does not name the bad stream: %v", err)
	}
}

func TestSessionProgressPhases(t *testing.T) {
	ctx := context.Background()
	var mu sync.Mutex
	phases := map[string]int{}
	sess := chainSession(t, WithProgress(func(ev ProgressEvent) {
		if ev.Scenario != "chain" {
			t.Errorf("scenario: %q", ev.Scenario)
		}
		mu.Lock()
		phases[ev.Phase]++
		mu.Unlock()
	}))
	res, rec, err := sess.Reproduce(ctx, nil)
	if err != nil || rec == nil || !res.Reproduced {
		t.Fatalf("reproduce: %v %v", err, res)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, phase := range []string{"analyze", "record", "replay"} {
		if phases[phase] == 0 {
			t.Errorf("no %s progress events (got %v)", phase, phases)
		}
	}
}
