package pathlog

import (
	"pathlog/internal/instrument"
	"pathlog/internal/intake"
)

// This file re-exports the fleet intake service (internal/intake) at the
// facade: the always-on HTTP ingest that closes the paper's deployment loop
// — user sites POST stamped-only reference envelopes, the service validates
// each stamp against the plan store, dedupes by content signature, journals
// every event for crash recovery, and serves the current chain-head plan
// back so sites self-update. cmd/pathlogd is the daemon wrapper; tune
// -corpus -intake consumes the intake directory.

// IntakeConfig shapes an intake server: directory, plan store, queue
// bound, rate limits, body cap.
type IntakeConfig = intake.Config

// IntakeServer is a running intake service instance.
type IntakeServer = intake.Server

// IntakeMetrics is the counter snapshot the service's /metrics endpoint
// serves (accepted/stored/deduped/refused/throttled, queue depth, journal
// size, per-bucket tallies).
type IntakeMetrics = intake.Metrics

// IntakeBucketInfo describes the report bucket IngestIntake built a corpus
// from: the (program hash, plan fingerprint, generation) identity plus the
// stored/accepted counts.
type IntakeBucketInfo = intake.BucketInfo

// Intake constructors, re-exported from internal/intake.
var (
	// NewIntake opens an intake directory (replaying its journal) and
	// starts the ingest workers.
	NewIntake = intake.New
	// IngestIntake builds a corpus from an intake directory: the program's
	// newest-generation bucket, with each stored report's dedupe counter as
	// its member frequency and journal times driving recency.
	IngestIntake = intake.Ingest
)

// ProgramHash computes a program's deployment identity — the hash plan
// stores file lineage under and the intake service buckets reports by.
func ProgramHash(prog *Program) string { return instrument.ProgramHash(prog) }
