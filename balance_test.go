package pathlog

import (
	"context"
	"math"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pathlog/internal/apps"
	"pathlog/internal/static"
)

// uServerBalanceSession builds the acceptance-test session: uServer input
// scenario 3 (cookies and percent-escapes — the workload whose parser
// paths a low-coverage dynamic analysis misses hardest) under the plain
// Dynamic() strategy with a deliberately thin concolic budget, so
// generation 0 is a genuinely bad plan the loop must climb out of.
func uServerBalanceSession(t *testing.T) *Session {
	t.Helper()
	s, err := apps.UServerScenario(3, 72)
	if err != nil {
		t.Fatal(err)
	}
	return SessionOf(s,
		WithAnalysisSpec(apps.UServerAnalysisScenario().Spec),
		WithDynamicBudget(3, 0),
		WithStaticOptions(static.Options{LibAsSymbolic: true}),
		WithSyscallLog(),
		WithStrategy(Dynamic()),
		WithReplayBudget(1500, 15*time.Second),
	)
}

// TestAutoBalanceUServer is the acceptance check for the adaptive loop:
// starting from Dynamic() under low analysis coverage on the uServer,
// AutoBalance must converge within 4 generations to a plan that replays
// within the target and strictly faster than generation 0, while logging
// fewer bits per run than instrumenting all branches would — the paper's
// "new balance", reached by feedback instead of by full instrumentation.
func TestAutoBalanceUServer(t *testing.T) {
	ctx := context.Background()
	sess := uServerBalanceSession(t)

	const target = 200
	var seen []int
	tr, err := sess.AutoBalance(ctx, nil, BalanceOptions{
		TargetReplayRuns: target,
		MaxGenerations:   4,
		OnGeneration:     func(pt BalancePoint) { seen = append(seen, pt.Generation) },
	})
	if err != nil {
		t.Fatalf("AutoBalance: %v (trajectory so far: %+v)", err, tr.Points)
	}
	if !tr.Converged {
		t.Fatalf("did not converge: %s", tr.Reason)
	}
	if len(tr.Points) < 2 || len(tr.Points) > 5 {
		t.Fatalf("trajectory has %d generations, want 2..5 (gen0 must fail the target, convergence within 4 refinements)", len(tr.Points))
	}
	if len(seen) != len(tr.Points) {
		t.Errorf("OnGeneration saw %d points, trajectory has %d", len(seen), len(tr.Points))
	}

	gen0, final := tr.Points[0], *tr.Final()
	if gen0.Reproduced && gen0.ReplayRuns <= target {
		t.Fatalf("generation 0 already met the target (%d runs) — the fixture no longer exercises refinement", gen0.ReplayRuns)
	}
	if !final.Reproduced {
		t.Fatalf("converged trajectory did not reproduce: %+v", final)
	}
	if final.ReplayRuns > target {
		t.Errorf("final generation used %d replay runs, target %d", final.ReplayRuns, target)
	}
	if final.ReplayRuns >= gen0.ReplayRuns {
		t.Errorf("replay runs did not drop: gen0 %d, final %d", gen0.ReplayRuns, final.ReplayRuns)
	}
	if final.Plan.Generation == 0 || final.Plan.Parent == "" {
		t.Errorf("final plan carries no lineage: generation %d parent %q",
			final.Plan.Generation, final.Plan.Parent)
	}

	// The record-side half of the balance: the refined plan must stay far
	// below full instrumentation.
	allPlan, err := sess.PlanWith(ctx, All())
	if err != nil {
		t.Fatal(err)
	}
	_, allStats, err := sess.RecordWith(ctx, allPlan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.OverheadBits >= allStats.TraceBits {
		t.Errorf("refined plan logs %d bits/run, all-branches logs %d — no balance left",
			final.OverheadBits, allStats.TraceBits)
	}

	// Refined plans are durable artifacts: Save/LoadPlan round-trips the
	// lineage.
	path := filepath.Join(t.TempDir(), "refined.plan.json")
	if err := final.Plan.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Generation != final.Plan.Generation || loaded.Parent != final.Plan.Parent {
		t.Errorf("lineage lost in round trip: generation %d parent %s",
			loaded.Generation, loaded.Parent)
	}
	if loaded.Fingerprint() != final.Plan.Fingerprint() {
		t.Error("fingerprint drifted through Save/LoadPlan")
	}

	// A stale-generation recording — generation 0's, after the session has
	// refined past it — is refused with a clear error, not silently
	// re-refined into a fork of the lineage.
	if _, err := sess.Refine(ctx, gen0.Recording, gen0.Result); err == nil ||
		!strings.Contains(err.Error(), "stale-generation") {
		t.Errorf("stale generation-0 recording accepted: %v", err)
	}

	// The trajectory serializes for CI artifacts.
	trajPath := filepath.Join(t.TempDir(), "trajectory.json")
	if err := tr.Save(trajPath); err != nil {
		t.Fatal(err)
	}

	// A second AutoBalance on the same session resumes from the chain's
	// latest generation — it must neither redeploy generation 0 nor trip
	// the staleness check it would cause.
	tr2, err := sess.AutoBalance(ctx, nil, BalanceOptions{
		TargetReplayRuns: target,
		MaxGenerations:   4,
	})
	if err != nil {
		t.Fatalf("second AutoBalance: %v", err)
	}
	if !tr2.Converged || tr2.Points[0].Generation != final.Plan.Generation {
		t.Errorf("second AutoBalance did not resume from generation %d: %+v (%s)",
			final.Plan.Generation, tr2.Points[0].Generation, tr2.Reason)
	}

	// Generation 0 never reproduced, so its budget-censored run count is
	// not a measurement: the trajectory's frontier points must omit it.
	for _, pt := range tr.PlanPoints() {
		if pt.Plan.Fingerprint() == gen0.Plan.Fingerprint() {
			t.Errorf("non-reproduced generation 0 emitted as a measured frontier point")
		}
	}
}

// TestRefineFixedPointDoesNotAdvanceLineage pins the fixed-point rule: a
// refinement that promotes nothing (profile blames only instrumented
// branches) must not mark the still-current base plan stale.
func TestRefineFixedPointDoesNotAdvanceLineage(t *testing.T) {
	ctx := context.Background()
	sess := chainSession(t, WithMethod(MethodAll))
	rec, _, err := sess.Record(ctx, nil)
	if err != nil || rec == nil {
		t.Fatalf("record: %v (%v)", err, rec)
	}
	res := mustReplay(t, ctx, sess, rec)
	if !res.Reproduced {
		t.Fatalf("not reproduced: %+v", res)
	}
	// Full instrumentation leaves nothing to promote: the refined plan is
	// the base plan (fixed point)...
	p1, err := sess.Refine(ctx, rec, res)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Fingerprint() != rec.Plan.Fingerprint() {
		t.Fatalf("all-branches plan refined into something else: %v", p1.IDs())
	}
	// ...and the base plan stays refinable: a repeat Refine must not be
	// refused as stale.
	if _, err := sess.Refine(ctx, rec, res); err != nil {
		t.Errorf("fixed point marked the base plan stale: %v", err)
	}
}

// TestRefineSingleStep drives one manual loop iteration on the chain
// scenario: record, replay, refine — and checks the refined plan's
// estimate is priced under the calibrated (observed) cost model.
func TestRefineSingleStep(t *testing.T) {
	ctx := context.Background()
	sess := chainSession(t, WithStrategy(None()))
	// None() logs nothing, so force a minimal instrumented plan: syscall
	// logging only — every chain branch stays unlogged and the search must
	// discover the password byte by byte.
	plan, err := sess.Plan(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Instruments() {
		t.Fatalf("fixture drifted: None() instruments")
	}
	// Record under a syscall-only plan (None disables syscalls too, so use
	// an explicit empty-branch plan built from the session's context).
	plan, err = sess.PlanWith(ctx, Sampled(All(), 0))
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := sess.RecordWith(ctx, plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("no recording")
	}
	res := mustReplay(t, ctx, sess, rec)
	if !res.Reproduced || res.Profile == nil {
		t.Fatalf("replay failed: %+v", res)
	}
	refined, err := sess.Refine(ctx, rec, res)
	if err != nil {
		t.Fatal(err)
	}
	if refined.NumInstrumented() <= plan.NumInstrumented() {
		t.Errorf("refinement promoted nothing: %d -> %d branches",
			plan.NumInstrumented(), refined.NumInstrumented())
	}
	if refined.Generation != 1 || refined.Parent != plan.Fingerprint() {
		t.Errorf("lineage: generation %d parent %s", refined.Generation, refined.Parent)
	}
	// Calibration replaced priors with the observed fork rates, so the
	// refined plan's replay estimate must price the promoted branches as
	// covered — strictly below the base plan's estimate under the same
	// (calibrated) model.
	if refined.EstimatedReplayRuns() >= plan.EstimatedReplayRuns() {
		t.Errorf("refined replay estimate %.1f not below base %.1f",
			refined.EstimatedReplayRuns(), plan.EstimatedReplayRuns())
	}

	// The refined plan replays a fresh recording no worse than the base
	// did. (The chain is a degenerate case: its replay cost is the forced
	// serial chain, irreducible by instrumentation — the uServer acceptance
	// test above is where refinement visibly wins.)
	rec2, _, err := sess.RecordWith(ctx, refined, nil)
	if err != nil {
		t.Fatal(err)
	}
	res2 := mustReplay(t, ctx, sess, rec2)
	if !res2.Reproduced {
		t.Fatalf("refined plan did not reproduce: %+v", res2)
	}
	if res2.Runs > res.Runs {
		t.Errorf("refined replay took %d runs, base took %d", res2.Runs, res.Runs)
	}
}

// TestAutoBalanceOverheadCeilingDoesNotAdvanceChain pins the acceptance
// order: a refined plan the ceiling rejects was never deployed, so it must
// neither mark its base stale nor be what a later AutoBalance resumes on.
func TestAutoBalanceOverheadCeilingDoesNotAdvanceChain(t *testing.T) {
	ctx := context.Background()
	// An empty starting plan (syscall log only): every chain branch is
	// unlogged, so refinement wants to promote — but the ceiling forbids
	// any logging at all.
	sess := chainSession(t, WithStrategy(Sampled(All(), 0)))
	tr, err := sess.AutoBalance(ctx, nil, BalanceOptions{
		TargetReplayRuns: 1, // unreachable: the chain needs several runs
		OverheadCeiling:  0.5,
		MaxGenerations:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Converged || !strings.Contains(tr.Reason, "overhead ceiling") {
		t.Fatalf("expected an overhead-ceiling stop: %+v (%s)", tr.Points, tr.Reason)
	}
	if len(tr.Points) != 1 {
		t.Fatalf("rejected plan was deployed: %d generations", len(tr.Points))
	}
	gen0 := tr.Points[0]
	// The base plan is still the chain's head: refining its recording must
	// not be refused as stale...
	if _, err := sess.Refine(ctx, gen0.Recording, gen0.Result); err != nil {
		t.Errorf("ceiling reject marked the base plan stale: %v", err)
	}
	// ...but the Refine above DID accept the plan (no ceiling in a manual
	// step), so from here on the chain legitimately moves to generation 1.
	tr2, err := sess.AutoBalance(ctx, nil, BalanceOptions{OverheadCeiling: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Points[0].Generation != 1 {
		t.Errorf("resume generation %d after explicit Refine, want 1", tr2.Points[0].Generation)
	}
}

func TestAutoBalanceRejectsNonsense(t *testing.T) {
	ctx := context.Background()
	sess := chainSession(t)
	if _, err := sess.AutoBalance(ctx, nil, BalanceOptions{TargetReplayRuns: -1}); err == nil {
		t.Error("negative run target accepted")
	}
	if _, err := sess.AutoBalance(ctx, nil, BalanceOptions{TargetReplayTime: -time.Second}); err == nil {
		t.Error("negative time target accepted")
	}
	if _, err := sess.AutoBalance(ctx, nil, BalanceOptions{OverheadCeiling: -3}); err == nil {
		t.Error("negative overhead ceiling accepted")
	}
	// A user run that does not crash cannot drive the loop.
	tr, err := sess.AutoBalance(ctx, map[string][]byte{"arg0": []byte("NOPASS")}, BalanceOptions{})
	if err == nil || !strings.Contains(err.Error(), "did not crash") {
		t.Errorf("crashless workload accepted: %v (%+v)", err, tr)
	}
}

func TestAutoBalanceConvergesImmediatelyWhenCheap(t *testing.T) {
	// The chain under its default strategy replays in a handful of runs:
	// with no explicit target, reproducing at all converges at generation 0
	// and no refinement happens.
	tr, err := chainSession(t).AutoBalance(context.Background(), nil, BalanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Converged || len(tr.Points) != 1 || tr.Points[0].Generation != 0 {
		t.Fatalf("expected immediate convergence: %+v (%s)", tr.Points, tr.Reason)
	}
}

func TestOptionGuardsClampAtApplyTime(t *testing.T) {
	prog, err := Compile(Unit{Name: "g.mc", Source: chainSrc})
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{Args: []Stream{ArgStream(0, "xxxxxx", 8)}}

	s := NewSession(prog, spec, WithReplayWorkers(-3))
	if s.cfg.workers != 1 {
		t.Errorf("WithReplayWorkers(-3) left %d, want clamp to 1", s.cfg.workers)
	}
	s = NewSession(prog, spec, WithReplayWorkers(0))
	if s.cfg.workers != 1 {
		t.Errorf("WithReplayWorkers(0) left %d, want clamp to 1", s.cfg.workers)
	}
	s = NewSession(prog, spec, WithReplayBudget(-10, -time.Second))
	if s.cfg.rep.MaxRuns != 0 || s.cfg.rep.TimeBudget != 0 {
		t.Errorf("WithReplayBudget negatives not clamped: %+v", s.cfg.rep)
	}
	s = NewSession(prog, spec, WithReplayOptions(ReplayOptions{
		MaxRuns: -1, MaxPending: -7, Workers: -2, TimeBudget: -time.Minute, MaxStepsPerRun: -9,
	}))
	r := s.cfg.rep
	if r.MaxRuns != 0 || r.MaxPending != 0 || r.Workers != 0 || r.TimeBudget != 0 || r.MaxStepsPerRun != 0 {
		t.Errorf("WithReplayOptions negatives not clamped: %+v", r)
	}
}

func TestMergeMeasuredFrontier(t *testing.T) {
	ctx := context.Background()
	sess := chainSession(t)
	est, err := sess.Frontier(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sess.AutoBalance(ctx, nil, BalanceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	merged := MergeMeasured(est, tr)
	if len(merged) == 0 {
		t.Fatal("empty merged frontier")
	}
	// Strict Pareto holds per tier: replay runs strictly decrease along the
	// estimated points and along the measured points separately (a measured
	// ground-truth point may sit above the estimated curve — that gap is
	// the drift the store renders).
	foundMeasured := false
	lastEst, lastMeas := PlanPoint{Overhead: -1, ReplayRuns: math.Inf(1)}, PlanPoint{Overhead: -1, ReplayRuns: math.Inf(1)}
	for i, pt := range merged {
		last := &lastEst
		if pt.Measured {
			foundMeasured = true
			last = &lastMeas
		}
		if !(pt.Overhead > last.Overhead) || !(pt.ReplayRuns < last.ReplayRuns) {
			t.Errorf("merged frontier not strictly Pareto within its tier at %d: %+v", i, merged)
		}
		*last = pt
	}
	// Measured points are ground truth: estimates can never displace them,
	// so the trajectory's reproduced generation must survive the merge.
	if !foundMeasured && len(tr.PlanPoints()) > 0 {
		t.Errorf("measured trajectory points %v missing from merged frontier %+v", tr.PlanPoints(), merged)
	}
	// Where the same plan appears measured and estimated, the measured
	// coordinates win.
	byFP := map[string]PlanPoint{}
	for _, pt := range tr.PlanPoints() {
		byFP[pt.Plan.Fingerprint()] = pt
	}
	for _, pt := range merged {
		if m, ok := byFP[pt.Plan.Fingerprint()]; ok {
			if !pt.Measured || pt.Overhead != m.Overhead || pt.ReplayRuns != m.ReplayRuns {
				t.Errorf("estimated point shadowed the measured one: %+v vs %+v", pt, m)
			}
		}
	}
}
