package store

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathlog/internal/instrument"
	"pathlog/internal/lang"
)

// fixedProgHash is a deterministic stand-in program identity for golden
// files (a real instrument.ProgramHash value is also 32 hex chars).
const fixedProgHash = "00112233445566778899aabbccddeeff"

// goldenPlan builds a fully deterministic plan: fixed branch set, fixed
// strategy, fixed cost — so its fingerprint and its on-disk bytes never
// move unless the envelope format does.
func goldenPlan() *instrument.Plan {
	return &instrument.Plan{
		Strategy:     "union(dynamic,static-residue)",
		Method:       instrument.MethodDynamicStatic,
		Instrumented: map[lang.BranchID]bool{2: true, 3: true, 7: true},
		LogSyscalls:  true,
		ProgHash:     fixedProgHash,
		Cost: instrument.CostEstimate{
			OverheadBitsPerRun: 12.5,
			ReplayRuns:         3.25,
			Modeled:            true,
		},
	}
}

// goldenChild is goldenPlan refined by one generation.
func goldenChild() *instrument.Plan {
	p := goldenPlan()
	child := &instrument.Plan{
		Strategy:     "refine(union(dynamic,static-residue)@x,gen1,+b9)",
		Instrumented: map[lang.BranchID]bool{2: true, 3: true, 7: true, 9: true},
		LogSyscalls:  true,
		ProgHash:     fixedProgHash,
		Generation:   1,
		Parent:       p.Fingerprint(),
		Cost: instrument.CostEstimate{
			OverheadBitsPerRun: 14.5,
			ReplayRuns:         1.5,
			Modeled:            true,
		},
	}
	return child
}

func goldenPoints() []MeasuredPoint {
	return []MeasuredPoint{
		{
			Fingerprint:  goldenPlan().Fingerprint(),
			Strategy:     "union(dynamic,static-residue)",
			OverheadBits: 814,
			ReplayRuns:   1500,
			ReplayMS:     15000,
			Reproduced:   false,
		},
		{
			Fingerprint:  goldenChild().Fingerprint(),
			Strategy:     goldenChild().Strategy,
			Generation:   1,
			OverheadBits: 818,
			ReplayRuns:   87,
			ReplayMS:     283,
			Reproduced:   true,
		},
	}
}

// populate fills a store with the golden plan chain and measured points.
func populate(t *testing.T, s *Store) {
	t.Helper()
	if err := s.PutPlan(goldenPlan()); err != nil {
		t.Fatal(err)
	}
	if err := s.PutPlan(goldenChild()); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendMeasured(fixedProgHash, "userver-exp3", goldenPoints()...); err != nil {
		t.Fatal(err)
	}
}

// checkGolden compares one store file against its checked-in golden,
// byte for byte: the store's on-disk layout is an interchange format
// between sessions (and operators), so accidental drift is an API break.
// STORE_REGEN_GOLDEN=1 regenerates the goldens after a deliberate format
// change.
func checkGolden(t *testing.T, gotPath, goldenName string) {
	t.Helper()
	got, err := os.ReadFile(gotPath)
	if err != nil {
		t.Fatalf("store file missing: %v", err)
	}
	goldenPath := filepath.Join("testdata", goldenName)
	if os.Getenv("STORE_REGEN_GOLDEN") != "" {
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden %s missing (regenerate with STORE_REGEN_GOLDEN=1): %v", goldenName, err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s",
			gotPath, goldenName, got, want)
	}
}

// TestStoreGoldenLayout pins the store's on-disk layout: the plan file
// path and bytes, the lineage index, and the measured-point file.
func TestStoreGoldenLayout(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	populate(t, s)

	if err := s.PutProfile(goldenProfile()); err != nil {
		t.Fatal(err)
	}

	fpBase, fpChild := goldenPlan().Fingerprint(), goldenChild().Fingerprint()
	checkGolden(t, filepath.Join(dir, "plans", fpBase+".json"), "plan_base_golden.json")
	checkGolden(t, filepath.Join(dir, "plans", fpChild+".json"), "plan_child_golden.json")
	checkGolden(t, filepath.Join(dir, "lineage", fixedProgHash+".json"), "lineage_golden.json")
	checkGolden(t, filepath.Join(dir, "measured", fixedProgHash, "userver-exp3.json"), "measured_golden.json")
	checkGolden(t, filepath.Join(dir, "profiles", fpChild+".json"), "profile_golden.json")
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	populate(t, s)

	base := goldenPlan()
	got, err := s.GetPlan(base.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != base.Fingerprint() || got.NumInstrumented() != 3 {
		t.Fatalf("round-trip mangled the plan: %+v", got)
	}
	if !s.HasPlan(base.Fingerprint()) || s.HasPlan(strings.Repeat("ff", 16)) {
		t.Error("HasPlan answers wrong")
	}

	// Re-putting retained content is a no-op, not an error.
	if err := s.PutPlan(base); err != nil {
		t.Fatalf("idempotent PutPlan failed: %v", err)
	}

	entries, err := s.Lineage(fixedProgHash)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Generation != 0 || entries[1].Generation != 1 ||
		entries[1].Parent != base.Fingerprint() {
		t.Fatalf("lineage index wrong: %+v", entries)
	}

	pts, err := s.Measured(fixedProgHash, "userver-exp3")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[1].ReplayRuns != 87 || !pts[1].Reproduced {
		t.Fatalf("measured points wrong: %+v", pts)
	}
	// Appends accumulate in observation order.
	if err := s.AppendMeasured(fixedProgHash, "userver-exp3", pts[1]); err != nil {
		t.Fatal(err)
	}
	pts, err = s.Measured(fixedProgHash, "userver-exp3")
	if err != nil || len(pts) != 3 {
		t.Fatalf("append did not accumulate: %d points, %v", len(pts), err)
	}
	// Unknown program / workload: empty, not an error.
	if pts, err := s.Measured(strings.Repeat("aa", 16), "userver-exp3"); err != nil || len(pts) != 0 {
		t.Fatalf("unknown program: %v %v", pts, err)
	}
	if pts, err := s.Measured(fixedProgHash, "never-measured"); err != nil || len(pts) != 0 {
		t.Fatalf("unknown workload: %v %v", pts, err)
	}
}

func TestGetPlanNotFound(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fp := strings.Repeat("ab", 16)
	_, err = s.GetPlan(fp)
	if !errors.Is(err, ErrPlanNotFound) {
		t.Fatalf("want ErrPlanNotFound, got %v", err)
	}
	if !strings.Contains(err.Error(), fp) {
		t.Errorf("error does not name the fingerprint: %v", err)
	}
}

// A truncated plan file is identified as corrupt (instrument.ErrPlanCorrupt,
// the LoadPlan bugfix) and a scan skips past it while reporting it.
func TestScanSkipsDamagedEntries(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	populate(t, s)

	// Truncate one retained plan mid-JSON.
	victim := filepath.Join(s.Dir(), "plans", goldenPlan().Fingerprint()+".json")
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(victim, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := s.GetPlan(goldenPlan().Fingerprint()); !errors.Is(err, instrument.ErrPlanCorrupt) {
		t.Fatalf("truncated plan not identified as corrupt: %v", err)
	}

	rep, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Plans != 1 {
		t.Errorf("scan counted %d healthy plans, want 1", rep.Plans)
	}
	if rep.MeasuredPoints != 2 {
		t.Errorf("scan counted %d measured points, want 2", rep.MeasuredPoints)
	}
	if len(rep.Damaged) != 1 || !errors.Is(rep.Damaged[0].Err, instrument.ErrPlanCorrupt) {
		t.Fatalf("scan damage report wrong: %+v", rep.Damaged)
	}
	if rep.Damaged[0].Path != victim {
		t.Errorf("damage names %s, want %s", rep.Damaged[0].Path, victim)
	}

	// The undamaged sibling still resolves.
	if _, err := s.GetPlan(goldenChild().Fingerprint()); err != nil {
		t.Errorf("damage bled onto a healthy entry: %v", err)
	}

	// Damage the lineage index and a measured file too: the scan reports
	// all three, identified by path, and still returns.
	lineage := filepath.Join(s.Dir(), "lineage", fixedProgHash+".json")
	if err := os.WriteFile(lineage, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	measured := filepath.Join(s.Dir(), "measured", fixedProgHash, "userver-exp3.json")
	if err := os.WriteFile(measured, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Measured(fixedProgHash, "userver-exp3"); !errors.Is(err, ErrDamaged) {
		t.Errorf("damaged measured file not marked ErrDamaged: %v", err)
	}
	if _, err := s.Lineage(fixedProgHash); !errors.Is(err, ErrDamaged) {
		t.Errorf("damaged lineage index not marked ErrDamaged: %v", err)
	}
	rep, err = s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Damaged) != 3 {
		t.Fatalf("scan reports %d damaged entries, want 3 (plan+lineage+measured): %+v",
			len(rep.Damaged), rep.Damaged)
	}
	if rep.MeasuredPoints != 0 {
		t.Errorf("scan counted %d points from a damaged measured file", rep.MeasuredPoints)
	}
}

func TestStoreKeyValidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Path traversal and non-hex stamps are refused everywhere.
	for _, bad := range []string{"", "../../etc/passwd", "ABCDEF", "plan.json", "a/b"} {
		if _, err := s.GetPlan(bad); err == nil || errors.Is(err, ErrPlanNotFound) {
			t.Errorf("GetPlan(%q) = %v, want key validation error", bad, err)
		}
		if _, err := s.Measured(bad, "w"); err == nil {
			t.Errorf("Measured(%q) accepted a bad program hash", bad)
		}
	}
	// A plan without a program hash has no deployment identity.
	p := goldenPlan()
	p.ProgHash = ""
	if err := s.PutPlan(p); err == nil {
		t.Error("PutPlan accepted a plan with no program hash")
	}
	// Workload names sanitize instead of escaping the directory.
	if err := s.AppendMeasured(fixedProgHash, "../escape", goldenPoints()[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(s.Dir(), "measured", fixedProgHash, ".._escape.json")); err != nil {
		t.Errorf("workload name not sanitized into the store: %v", err)
	}
}

func TestChainHead(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ChainHead(fixedProgHash); !errors.Is(err, ErrPlanNotFound) {
		t.Fatalf("ChainHead on empty store: want ErrPlanNotFound, got %v", err)
	}
	if err := s.PutPlan(goldenPlan()); err != nil {
		t.Fatal(err)
	}
	head, err := s.ChainHead(fixedProgHash)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := head.Fingerprint(), goldenPlan().Fingerprint(); got != want {
		t.Fatalf("ChainHead after gen-0 put: got %s, want %s", got, want)
	}
	if err := s.PutPlan(goldenChild()); err != nil {
		t.Fatal(err)
	}
	head, err = s.ChainHead(fixedProgHash)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := head.Fingerprint(), goldenChild().Fingerprint(); got != want {
		t.Fatalf("ChainHead after refinement: got %s, want %s", got, want)
	}
	if head.Generation != 1 {
		t.Fatalf("ChainHead generation: got %d, want 1", head.Generation)
	}
}
