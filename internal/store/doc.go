// Package store persists the deployment half of the paper's balance: the
// plans that were actually shipped to user sites, the lineage of every
// refinement chain, and the measured (overhead, debug-time) points that
// ground the cost model's estimates across sessions.
//
// A Store is a content-addressed directory:
//
//	<dir>/plans/<fingerprint>.json      one retained plan per deployed fingerprint
//	<dir>/lineage/<proghash>.json       generation/parent chains per program
//	<dir>/measured/<proghash>/<workload>.json
//	                                    measured frontier points per workload
//	<dir>/profiles/<fingerprint>.json   latest search profile per plan generation
//	<dir>/.lock                         cross-process advisory lock (lock.go)
//
// Plans are keyed by instrument.Plan.Fingerprint — the same stamp every
// recording carries — so a developer site holding the store can resolve
// the exact plan generation a bug report was taken under without the
// caller tracking plan files (Session Replay does this automatically when
// configured with WithPlanStore). Plan files are immutable once written:
// the fingerprint is the content hash, so a second PutPlan of the same
// plan is a no-op.
//
// The lineage index records, per program hash, every stored plan's
// (fingerprint, generation, parent, strategy). A cold session seeds its
// stale-generation bookkeeping from it, so a recording taken under a plan
// an earlier session already refined past is refused even though the
// refinement happened in another process.
//
// Measured points are the AutoBalance trajectory's ground truth: what a
// deployed plan actually logged per run and how long the developer-site
// search actually took. Frontier sweeps fold them back in (measurement
// wins over estimate for the same fingerprint), which is how cost-model
// estimates are corrected by history — and how estimated-vs-measured
// drift becomes renderable.
//
// Retained profiles close the cold-calibration gap: measured points only
// correct estimates at measured fingerprints, but the per-branch
// SearchProfile behind each generation lets a cold session CalibrateCosts
// before its first sweep, shrinking drift on the whole frontier. The
// newest profile per generation wins (atomic replace, not
// content-addressed), and a profile whose stamp disagrees with the
// fingerprint it is filed under is refused as damaged.
//
// Trust boundary: the store trusts its own directory no further than the
// fingerprints go. Every plan read back is re-hashed and verified
// (instrument.LoadPlan), a damaged file surfaces as an error wrapping
// instrument.ErrPlanCorrupt, and Scan skips damaged entries while
// reporting them by path. Index rewrites (lineage, measured) are
// serialized across processes through an flock-style lock file with
// stale-lock detection by pid and age, so concurrent record/tune runs
// cannot interleave writes; everything else is immutable or atomically
// replaced whole, so readers never need the lock.
package store
