package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// Cross-process advisory locking. The store's in-process mutex already
// serializes one process's writers, but concurrent record and tune runs
// over one store directory would interleave the read-modify-write of the
// lineage and measured index files. An flock-style lock file makes index
// rewrites exclusive across processes:
//
//   - acquire creates <dir>/.lock exclusively (O_CREATE|O_EXCL) with the
//     holder's pid inside; contenders poll until the file disappears;
//   - a stale lock — its holder's pid no longer alive, or the file older
//     than lockStaleAge (a crashed holder on another host, where pid
//     liveness means nothing) — is broken and retaken;
//   - acquisition gives up after lockWait and reports the holder's pid, so
//     a wedged deployment names its blocker instead of hanging forever.
//
// The lock covers only index rewrites (lineage, measured). Plan and
// profile files are content-addressed or atomically replaced whole, so
// concurrent writers can only race to write equivalent bytes there.

const (
	// lockFileName is the advisory lock file inside the store root.
	lockFileName = ".lock"
	// defaultLockWait bounds how long an acquisition polls before giving
	// up and naming the holder.
	defaultLockWait = 5 * time.Second
	// defaultLockStaleAge is the age past which a lock file is presumed
	// abandoned even when its pid cannot be probed.
	defaultLockStaleAge = time.Minute
	// lockPollInterval is the contention polling cadence.
	lockPollInterval = 5 * time.Millisecond
)

// lockPath returns the store's advisory lock file.
func (s *Store) lockPath() string { return filepath.Join(s.dir, lockFileName) }

// withIndexLock runs fn while holding both the in-process mutex and the
// cross-process lock file.
func (s *Store) withIndexLock(fn func() error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	release, err := s.acquireLock()
	if err != nil {
		return err
	}
	defer release()
	return fn()
}

// acquireLock takes the cross-process lock, breaking stale locks by
// pid-liveness and age.
func (s *Store) acquireLock() (func(), error) {
	wait := s.lockWait
	if wait <= 0 {
		wait = defaultLockWait
	}
	staleAge := s.lockStaleAge
	if staleAge <= 0 {
		staleAge = defaultLockStaleAge
	}
	path := s.lockPath()
	deadline := time.Now().Add(wait)
	for {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err == nil {
			fmt.Fprintf(f, "%d\n", os.Getpid())
			f.Close()
			return func() { os.Remove(path) }, nil
		}
		if !errors.Is(err, os.ErrExist) {
			return nil, fmt.Errorf("store: acquire lock %s: %w", path, err)
		}
		holder, stale := s.lockHolder(path, staleAge)
		if stale {
			s.breakStale(path, staleAge)
			continue
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("store: lock %s is held by pid %d (another record/tune run?) — waited %s",
				path, holder, wait)
		}
		time.Sleep(lockPollInterval)
	}
}

// breakStale claims a suspected-stale lock by atomically renaming it
// aside: exactly one contender wins the rename, so breaking the lock can
// never delete a *different* file than the one probed — in particular, a
// fresh lock created by a faster contender survives (a plain remove here
// would race: A removes the stale file and creates its own lock, then B's
// remove deletes A's lock and two writers hold the index at once). The
// captured file is re-verified before discarding; a lock that turned out
// live (its holder re-acquired in the probe window) is restored via
// link(2), which refuses to clobber any newer lock.
func (s *Store) breakStale(path string, staleAge time.Duration) {
	aside := fmt.Sprintf("%s.break.%d", path, os.Getpid())
	if err := os.Rename(path, aside); err != nil {
		return // another contender claimed it first; re-contend
	}
	if _, stillStale := s.lockHolder(aside, staleAge); !stillStale {
		// We captured a live holder's lock: give it back without
		// clobbering. If a newer lock already exists the restore fails and
		// the live holder re-contends on its next operation — never two
		// index files written under one claimed break.
		os.Link(aside, path)
	}
	os.Remove(aside)
}

// lockHolder reads the lock file's pid and decides staleness: a holder
// whose pid is no longer alive, or a lock older than staleAge, is stale. A
// lock file that vanished mid-probe is treated as stale (the next create
// attempt decides).
func (s *Store) lockHolder(path string, staleAge time.Duration) (pid int, stale bool) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, true
	}
	if time.Since(info.ModTime()) > staleAge {
		return 0, true
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, true
	}
	pid, err = strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil || pid <= 0 {
		// An unreadable pid in a fresh lock file: leave it to age out
		// rather than stealing a lock we cannot attribute.
		return 0, false
	}
	if !pidAlive(pid) {
		return pid, true
	}
	return pid, false
}

// pidAlive probes a pid with signal 0 (no signal is delivered). EPERM
// means the process exists but belongs to someone else — alive either way.
func pidAlive(pid int) bool {
	err := syscall.Kill(pid, 0)
	return err == nil || errors.Is(err, syscall.EPERM)
}
