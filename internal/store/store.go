package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"pathlog/internal/instrument"
)

// ErrPlanNotFound reports a fingerprint with no retained plan in the
// store. Replay surfaces it when a recording's stamp matches nothing — the
// deployment shipped a plan the developer site never retained, or the
// store directory is the wrong one.
var ErrPlanNotFound = errors.New("plan not found in store")

// ErrProfileNotFound reports a plan fingerprint with no retained search
// profile — the generation was deployed before profile retention existed,
// or its replay never completed.
var ErrProfileNotFound = errors.New("search profile not found in store")

// ErrDamaged marks an unreadable store index file (lineage or measured
// points). Frontier sweeps skip damaged measured history (the estimates
// stand and Scan reports the file); lineage damage stays fatal for
// session operations, because generation bookkeeping built on a damaged
// index could silently rewind refinement chains.
var ErrDamaged = errors.New("store entry damaged")

// Store is an on-disk plan and measurement store rooted at one directory.
// See the package comment for the layout. A Store is safe for concurrent
// use within one process, and index rewrites (lineage, measured) are
// additionally serialized across processes through an flock-style lock
// file with stale-lock detection by pid and age (see lock.go), so
// concurrent record and tune runs over one store cannot interleave index
// writes.
type Store struct {
	dir string
	mu  sync.Mutex // serializes read-modify-write of the index files
	// lockWait / lockStaleAge override the cross-process lock bounds; zero
	// selects the defaults (tests shorten them).
	lockWait     time.Duration
	lockStaleAge time.Duration
}

// Open opens (creating if needed) the store rooted at dir.
func Open(dir string) (*Store, error) {
	for _, sub := range []string{"plans", "lineage", "measured", "profiles"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("store: open %s: %w", dir, err)
		}
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// checkKey guards every value interpolated into a store path: plan
// fingerprints and program hashes are lowercase hex by construction, so
// anything else in a stamp is corruption (or an attempted path escape).
func checkKey(kind, key string) error {
	if key == "" {
		return fmt.Errorf("store: empty %s", kind)
	}
	for _, c := range key {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("store: invalid %s %q (want lowercase hex)", kind, key)
		}
	}
	return nil
}

// sanitizeWorkload maps a workload name to a filename: hex and the common
// name characters pass through, everything else becomes '_', and an empty
// name becomes "default" (matching the Session's unnamed-workload key).
func sanitizeWorkload(name string) string {
	if name == "" {
		return "default"
	}
	out := make([]rune, 0, len(name))
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// writeFileAtomic writes data next to path and renames it into place, so a
// crash mid-write leaves the previous version intact rather than a
// truncated file.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func (s *Store) planPath(fingerprint string) string {
	return filepath.Join(s.dir, "plans", fingerprint+".json")
}

func (s *Store) lineagePath(progHash string) string {
	return filepath.Join(s.dir, "lineage", progHash+".json")
}

func (s *Store) measuredPath(progHash, workload string) string {
	return filepath.Join(s.dir, "measured", progHash, sanitizeWorkload(workload)+".json")
}

// PutPlan retains a plan under its fingerprint and records it in the
// program's lineage index. The store is content-addressed, so re-putting
// an already-retained plan rewrites nothing; a plan without a program hash
// is refused (it has no deployment identity to file it under).
func (s *Store) PutPlan(p *instrument.Plan) error {
	if p == nil {
		return fmt.Errorf("store: nil plan")
	}
	if p.ProgHash == "" {
		return fmt.Errorf("store: plan %q has no program hash — only plans built for an identified program can be retained", p.Strategy)
	}
	fp := p.Fingerprint()
	if err := checkKey("plan fingerprint", fp); err != nil {
		return err
	}
	if err := checkKey("program hash", p.ProgHash); err != nil {
		return err
	}
	return s.withIndexLock(func() error {
		path := s.planPath(fp)
		if _, err := os.Stat(path); err != nil {
			tmp := path + ".tmp"
			if err := p.Save(tmp); err != nil {
				return fmt.Errorf("store: retain plan %s: %w", fp, err)
			}
			if err := os.Rename(tmp, path); err != nil {
				return fmt.Errorf("store: retain plan %s: %w", fp, err)
			}
		}
		return s.indexLineageLocked(p, fp)
	})
}

// GetPlan resolves a retained plan by fingerprint, re-verifying the
// content hash on the way out. An unknown fingerprint returns an error
// wrapping ErrPlanNotFound that names the fingerprint; a damaged file
// returns the instrument.ErrPlanCorrupt-wrapped load error.
func (s *Store) GetPlan(fingerprint string) (*instrument.Plan, error) {
	if err := checkKey("plan fingerprint", fingerprint); err != nil {
		return nil, err
	}
	p, err := instrument.LoadPlan(s.planPath(fingerprint))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: %w: fingerprint %s (no plan with this stamp was ever retained here)",
			ErrPlanNotFound, fingerprint)
	}
	if err != nil {
		return nil, err
	}
	if got := p.Fingerprint(); got != fingerprint {
		return nil, fmt.Errorf("store: plan filed under %s hashes to %s (%w)",
			fingerprint, got, instrument.ErrPlanCorrupt)
	}
	return p, nil
}

// HasPlan reports whether a plan with the fingerprint is retained (it does
// not verify the file's content; GetPlan does).
func (s *Store) HasPlan(fingerprint string) bool {
	if checkKey("plan fingerprint", fingerprint) != nil {
		return false
	}
	_, err := os.Stat(s.planPath(fingerprint))
	return err == nil
}

// LineageEntry is one retained plan's position in its program's
// refinement chains.
type LineageEntry struct {
	Fingerprint string `json:"fingerprint"`
	Generation  int    `json:"generation"`
	Parent      string `json:"parent,omitempty"`
	Strategy    string `json:"strategy,omitempty"`
}

// lineageJSON is the on-disk lineage index for one program hash.
type lineageJSON struct {
	Version  int            `json:"version"`
	ProgHash string         `json:"prog_hash"`
	Plans    []LineageEntry `json:"plans"`
}

const indexVersion = 1

// Lineage returns the retained plans' lineage entries for a program, in
// (generation, fingerprint) order. A program with no retained plans
// returns an empty slice, not an error.
func (s *Store) Lineage(progHash string) ([]LineageEntry, error) {
	if err := checkKey("program hash", progHash); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	idx, err := s.readLineageLocked(progHash)
	if err != nil {
		return nil, err
	}
	return idx.Plans, nil
}

// ChainHead resolves the program's current chain-head plan: the retained
// plan with the highest generation (ties broken by fingerprint order, so
// the head is deterministic for a given lineage index). This is what an
// intake service serves to user sites asking "what should I record under
// now?". A program with no retained plans returns an error wrapping
// ErrPlanNotFound.
func (s *Store) ChainHead(progHash string) (*instrument.Plan, error) {
	entries, err := s.Lineage(progHash)
	if err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("store: %w: no plans retained for program %s", ErrPlanNotFound, progHash)
	}
	// Lineage is sorted by (generation, fingerprint); the last entry is the
	// head.
	return s.GetPlan(entries[len(entries)-1].Fingerprint)
}

func (s *Store) readLineageLocked(progHash string) (*lineageJSON, error) {
	data, err := os.ReadFile(s.lineagePath(progHash))
	if errors.Is(err, os.ErrNotExist) {
		return &lineageJSON{Version: indexVersion, ProgHash: progHash}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: read lineage index: %w", err)
	}
	var idx lineageJSON
	if err := json.Unmarshal(data, &idx); err != nil {
		return nil, fmt.Errorf("store: lineage index for %s: %w: %w", progHash, ErrDamaged, err)
	}
	return &idx, nil
}

func (s *Store) indexLineageLocked(p *instrument.Plan, fp string) error {
	idx, err := s.readLineageLocked(p.ProgHash)
	if err != nil {
		return err
	}
	for _, e := range idx.Plans {
		if e.Fingerprint == fp {
			return nil // content-addressed: already indexed
		}
	}
	idx.Plans = append(idx.Plans, LineageEntry{
		Fingerprint: fp,
		Generation:  p.Generation,
		Parent:      p.Parent,
		Strategy:    p.Strategy,
	})
	sort.Slice(idx.Plans, func(i, j int) bool {
		if idx.Plans[i].Generation != idx.Plans[j].Generation {
			return idx.Plans[i].Generation < idx.Plans[j].Generation
		}
		return idx.Plans[i].Fingerprint < idx.Plans[j].Fingerprint
	})
	data, err := json.MarshalIndent(idx, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode lineage index: %w", err)
	}
	return writeFileAtomic(s.lineagePath(p.ProgHash), data)
}

func (s *Store) profilePath(fingerprint string) string {
	return filepath.Join(s.dir, "profiles", fingerprint+".json")
}

// PutProfile retains the search profile measured under a plan generation,
// filed under the plan's fingerprint (profiles/<fingerprint>.json). Unlike
// plans, profiles are not content-addressed: a later measurement of the
// same generation atomically replaces the earlier one — the newest
// observation is the one a cold session should calibrate from. A profile
// with no plan fingerprint or program hash has no generation to be filed
// under and is refused.
func (s *Store) PutProfile(p *instrument.SearchProfile) error {
	if p == nil {
		return fmt.Errorf("store: nil search profile")
	}
	if p.PlanFingerprint == "" || p.ProgHash == "" {
		return fmt.Errorf("store: search profile carries no plan fingerprint or program hash — only profiles measured under an identified plan can be retained")
	}
	if err := checkKey("plan fingerprint", p.PlanFingerprint); err != nil {
		return err
	}
	if err := checkKey("program hash", p.ProgHash); err != nil {
		return err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode search profile: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return writeFileAtomic(s.profilePath(p.PlanFingerprint), data)
}

// GetProfile resolves the retained search profile for a plan fingerprint.
// An unknown fingerprint returns an error wrapping ErrProfileNotFound; a
// damaged file, or one whose stamp disagrees with the fingerprint it is
// filed under, returns an ErrDamaged-wrapped error.
func (s *Store) GetProfile(fingerprint string) (*instrument.SearchProfile, error) {
	if err := checkKey("plan fingerprint", fingerprint); err != nil {
		return nil, err
	}
	p, err := instrument.LoadSearchProfile(s.profilePath(fingerprint))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("store: %w: fingerprint %s", ErrProfileNotFound, fingerprint)
	}
	if err != nil {
		return nil, fmt.Errorf("store: profile for %s: %w: %w", fingerprint, ErrDamaged, err)
	}
	if p.PlanFingerprint != fingerprint {
		return nil, fmt.Errorf("store: profile filed under %s was measured under plan %s (%w)",
			fingerprint, p.PlanFingerprint, ErrDamaged)
	}
	return p, nil
}

// HasProfile reports whether a profile is retained for the fingerprint
// (without verifying its content; GetProfile does).
func (s *Store) HasProfile(fingerprint string) bool {
	if checkKey("plan fingerprint", fingerprint) != nil {
		return false
	}
	_, err := os.Stat(s.profilePath(fingerprint))
	return err == nil
}

// MeasuredPoint is one observed (overhead, debug-time) coordinate for a
// deployed plan on one workload: what the user-site run actually logged
// and how long the developer-site search actually took — ground truth next
// to the cost model's estimates.
type MeasuredPoint struct {
	// Fingerprint identifies the deployed plan (and resolves it via
	// GetPlan); Strategy and Generation echo its provenance for rendering.
	Fingerprint string `json:"fingerprint"`
	Strategy    string `json:"strategy,omitempty"`
	Generation  int    `json:"generation,omitempty"`
	// OverheadBits is the measured record overhead: bits the user-site run
	// logged under the plan.
	OverheadBits int64 `json:"overhead_bits"`
	// ReplayRuns and ReplayMS measure the developer-site search. A point
	// with Reproduced false is budget-censored — the paper's ∞ — and is
	// excluded from frontier merging (the runs are a lower bound, not a
	// measurement).
	ReplayRuns int   `json:"replay_runs"`
	ReplayMS   int64 `json:"replay_ms"`
	Reproduced bool  `json:"reproduced"`
}

// measuredJSON is the on-disk measured-point file for one (program hash,
// workload) pair. Points append in observation order; readers that want
// one value per fingerprint take the latest.
type measuredJSON struct {
	Version  int             `json:"version"`
	ProgHash string          `json:"prog_hash"`
	Workload string          `json:"workload"`
	Points   []MeasuredPoint `json:"points"`
}

// AppendMeasured appends observed points for a workload to the program's
// measured-point file, preserving observation order.
func (s *Store) AppendMeasured(progHash, workload string, pts ...MeasuredPoint) error {
	if len(pts) == 0 {
		return nil
	}
	if err := checkKey("program hash", progHash); err != nil {
		return err
	}
	for _, pt := range pts {
		if err := checkKey("plan fingerprint", pt.Fingerprint); err != nil {
			return err
		}
	}
	return s.withIndexLock(func() error {
		path := s.measuredPath(progHash, workload)
		m, err := readMeasured(path)
		if errors.Is(err, os.ErrNotExist) {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				return fmt.Errorf("store: append measured: %w", err)
			}
			m = &measuredJSON{Version: indexVersion, ProgHash: progHash, Workload: workload}
		} else if err != nil {
			return err
		}
		m.Points = append(m.Points, pts...)
		data, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return fmt.Errorf("store: encode measured points: %w", err)
		}
		return writeFileAtomic(path, data)
	})
}

// Measured returns the observed points for a (program, workload) pair in
// observation order. No measurements yet returns an empty slice, not an
// error.
func (s *Store) Measured(progHash, workload string) ([]MeasuredPoint, error) {
	if err := checkKey("program hash", progHash); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, err := readMeasured(s.measuredPath(progHash, workload))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return m.Points, nil
}

func readMeasured(path string) (*measuredJSON, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m measuredJSON
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: measured points file %s: %w: %w", path, ErrDamaged, err)
	}
	return &m, nil
}

// Damage names one unreadable store entry found by Scan.
type Damage struct {
	Path string
	Err  error
}

// ScanReport summarizes a store scan: how much is retained and which
// entries could not be read.
type ScanReport struct {
	// Plans counts retained plans that load and verify.
	Plans int
	// Profiles counts retained search profiles that load and match the
	// fingerprint they are filed under.
	Profiles int
	// MeasuredPoints counts points across all readable measured files.
	MeasuredPoints int
	// Damaged lists entries that failed to load (corrupt plan files,
	// unreadable indexes); the scan skips them instead of failing.
	Damaged []Damage
}

// Scan walks the whole store — plans, lineage indexes, measured files —
// verifying every retained plan and counting measured points. Damaged
// entries — a truncated plan file, an edited envelope whose fingerprint
// no longer matches, an unreadable index — are skipped and reported in
// the ScanReport rather than failing the scan, so one bad file cannot
// hide the rest of the store.
func (s *Store) Scan() (*ScanReport, error) {
	rep := &ScanReport{}
	plans, err := filepath.Glob(filepath.Join(s.dir, "plans", "*.json"))
	if err != nil {
		return nil, fmt.Errorf("store: scan: %w", err)
	}
	sort.Strings(plans)
	for _, path := range plans {
		fp := strings.TrimSuffix(filepath.Base(path), ".json")
		p, err := instrument.LoadPlan(path)
		if err == nil && p.Fingerprint() != fp {
			err = fmt.Errorf("filed under %s but hashes to %s (%w)", fp, p.Fingerprint(), instrument.ErrPlanCorrupt)
		}
		if err != nil {
			rep.Damaged = append(rep.Damaged, Damage{Path: path, Err: err})
			continue
		}
		rep.Plans++
	}
	profiles, err := filepath.Glob(filepath.Join(s.dir, "profiles", "*.json"))
	if err != nil {
		return nil, fmt.Errorf("store: scan: %w", err)
	}
	sort.Strings(profiles)
	for _, path := range profiles {
		fp := strings.TrimSuffix(filepath.Base(path), ".json")
		if _, err := s.GetProfile(fp); err != nil {
			rep.Damaged = append(rep.Damaged, Damage{Path: path, Err: err})
			continue
		}
		rep.Profiles++
	}
	lineage, err := filepath.Glob(filepath.Join(s.dir, "lineage", "*.json"))
	if err != nil {
		return nil, fmt.Errorf("store: scan: %w", err)
	}
	sort.Strings(lineage)
	for _, path := range lineage {
		data, err := os.ReadFile(path)
		if err == nil {
			var idx lineageJSON
			if uerr := json.Unmarshal(data, &idx); uerr != nil {
				err = fmt.Errorf("lineage index: %w: %w", ErrDamaged, uerr)
			}
		}
		if err != nil {
			rep.Damaged = append(rep.Damaged, Damage{Path: path, Err: err})
		}
	}
	measured, err := filepath.Glob(filepath.Join(s.dir, "measured", "*", "*.json"))
	if err != nil {
		return nil, fmt.Errorf("store: scan: %w", err)
	}
	sort.Strings(measured)
	for _, path := range measured {
		m, err := readMeasured(path)
		if err != nil {
			rep.Damaged = append(rep.Damaged, Damage{Path: path, Err: err})
			continue
		}
		rep.MeasuredPoints += len(m.Points)
	}
	return rep, nil
}
