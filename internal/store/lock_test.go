package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pathlog/internal/instrument"
	"pathlog/internal/lang"
)

// goldenProfile is a deterministic search profile for the golden-layout
// and round-trip tests, filed under the golden child generation.
func goldenProfile() *instrument.SearchProfile {
	return &instrument.SearchProfile{
		ProgHash:        fixedProgHash,
		PlanFingerprint: goldenChild().Fingerprint(),
		Generation:      1,
		Runs:            87,
		Aborts:          80,
		Reproduced:      true,
		Workers:         1,
		Branches: map[lang.BranchID]*instrument.BranchCost{
			3:  {LoggedExecs: 30},
			9:  {Forks: 4, AbortedRuns: 2, SolverCalls: 6, SolverTime: 1500, LoggedExecs: 12, Disagreements: 3},
			11: {Forks: 40, AbortedRuns: 70, SolverCalls: 90, SolverTime: 90000},
		},
	}
}

func TestProfileRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := goldenProfile()
	if err := s.PutProfile(want); err != nil {
		t.Fatal(err)
	}
	if !s.HasProfile(want.PlanFingerprint) {
		t.Fatal("HasProfile reports false after PutProfile")
	}
	got, err := s.GetProfile(want.PlanFingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if got.Runs != want.Runs || len(got.Branches) != len(want.Branches) {
		t.Errorf("profile round-trip mismatch: got %d runs / %d branches, want %d / %d",
			got.Runs, len(got.Branches), want.Runs, len(want.Branches))
	}
	if got.Branches[9].Disagreements != 3 || got.Branches[9].LoggedExecs != 12 {
		t.Errorf("evidence counters did not round-trip: %+v", got.Branches[9])
	}
	// A re-measurement replaces the retained profile (newest wins).
	want.Runs = 42
	if err := s.PutProfile(want); err != nil {
		t.Fatal(err)
	}
	got, err = s.GetProfile(want.PlanFingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if got.Runs != 42 {
		t.Errorf("re-put did not replace the profile: got %d runs, want 42", got.Runs)
	}
}

func TestProfileRefusals(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutProfile(&instrument.SearchProfile{Runs: 1}); err == nil {
		t.Error("PutProfile accepted an unidentified profile")
	}
	if _, err := s.GetProfile(fixedProgHash); err == nil {
		t.Error("GetProfile resolved a never-retained fingerprint")
	}
	// A profile filed under the wrong fingerprint is damage, not data.
	p := goldenProfile()
	if err := s.PutProfile(p); err != nil {
		t.Fatal(err)
	}
	wrong := goldenPlan().Fingerprint()
	if err := os.Rename(s.profilePath(p.PlanFingerprint), s.profilePath(wrong)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.GetProfile(wrong); err == nil {
		t.Error("GetProfile accepted a profile whose stamp disagrees with its filename")
	}
	rep, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Profiles != 0 || len(rep.Damaged) != 1 {
		t.Errorf("scan counted %d profiles, %d damaged; want 0 healthy, 1 damaged", rep.Profiles, len(rep.Damaged))
	}
}

// TestLockStaleBreak: a lock file left behind by a dead process must be
// broken by pid-liveness, not waited out.
func TestLockStaleBreak(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// PID 1 is init (alive but EPERM → alive); use an impossible pid. Linux
	// pids max out well below 1<<22 by default.
	deadPid := 1 << 30
	if err := os.WriteFile(filepath.Join(dir, lockFileName), []byte(fmt.Sprintf("%d\n", deadPid)), 0o644); err != nil {
		t.Fatal(err)
	}
	s.lockWait = 2 * time.Second
	if err := s.AppendMeasured(fixedProgHash, "w", goldenPoints()[0]); err != nil {
		t.Fatalf("stale lock was not broken: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, lockFileName)); !os.IsNotExist(err) {
		t.Error("lock file left behind after release")
	}
}

// TestLockHeldTimesOut: a live holder blocks the writer, and the timeout
// error names the holder's pid.
func TestLockHeldTimesOut(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Our own pid is alive by definition; the lock is fresh, so neither
	// staleness rule breaks it.
	if err := os.WriteFile(filepath.Join(dir, lockFileName), []byte(fmt.Sprintf("%d\n", os.Getpid())), 0o644); err != nil {
		t.Fatal(err)
	}
	s.lockWait = 50 * time.Millisecond
	err = s.AppendMeasured(fixedProgHash, "w", goldenPoints()[0])
	if err == nil {
		t.Fatal("write succeeded under a held lock")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("pid %d", os.Getpid())) {
		t.Errorf("timeout error does not name the holder: %v", err)
	}
}

// TestLockConcurrentStores: many Store handles over one directory (the
// cross-process shape, minus the processes) appending measured points must
// not lose writes — the lock serializes the read-modify-write.
func TestLockConcurrentStores(t *testing.T) {
	dir := t.TempDir()
	const writers, perWriter = 8, 5
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := Open(dir)
			if err != nil {
				errs[w] = err
				return
			}
			s.lockWait = 10 * time.Second
			for i := 0; i < perWriter; i++ {
				pt := goldenPoints()[0]
				pt.ReplayRuns = w*1000 + i
				if err := s.AppendMeasured(fixedProgHash, "w", pt); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := s.Measured(fixedProgHash, "w")
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != writers*perWriter {
		t.Errorf("store holds %d measured points, want %d (lost writes under contention)",
			len(pts), writers*perWriter)
	}
}
