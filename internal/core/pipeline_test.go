package core

import (
	"strings"
	"testing"
	"time"

	"pathlog/internal/concolic"
	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/replay"
	"pathlog/internal/static"
	"pathlog/internal/world"
)

func compile(t *testing.T, src string) *lang.Program {
	t.Helper()
	u, err := lang.ParseUnit("app.mc", lang.RegionApp, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := lang.Link([]*lang.Unit{u})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return p
}

// guardedCrash crashes only when arg0 is "-x" and arg1 starts with 'K'.
const guardedCrash = `
int streq(char *a, char *b) {
	int i = 0;
	while (a[i] != '\0' && b[i] != '\0') {
		if (a[i] != b[i]) { return 0; }
		i++;
	}
	if (a[i] == b[i]) { return 1; }
	return 0;
}
int main() {
	char a0[8];
	char a1[8];
	getarg(0, a0, 8);
	getarg(1, a1, 8);
	if (streq(a0, "-x")) {
		if (a1[0] == 'K') {
			crash(42);
		}
	}
	print_str("ok");
	return 0;
}
`

func guardedScenario(t *testing.T) *Scenario {
	return &Scenario{
		Name: "guarded",
		Prog: compile(t, guardedCrash),
		Spec: &world.Spec{Args: []world.Stream{
			world.ArgSpec(0, "aa", 4),
			world.ArgSpec(1, "bb", 4),
		}},
		UserBytes: map[string][]byte{
			"arg0": []byte("-x"),
			"arg1": []byte("K"),
		},
	}
}

func analyses(t *testing.T, s *Scenario) instrument.Inputs {
	t.Helper()
	return instrument.Inputs{
		Dynamic: s.AnalyzeDynamic(concolic.Options{MaxRuns: 60}),
		Static:  s.AnalyzeStatic(static.Options{}),
	}
}

func TestRecordProducesReportOnCrash(t *testing.T) {
	s := guardedScenario(t)
	in := analyses(t, s)
	plan := s.Plan(instrument.MethodAll, in, true)
	rec, stats, err := s.Record(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil {
		t.Fatal("no recording despite crash")
	}
	if rec.Crash.Kind.String() != "crash()" || rec.Crash.Code != 42 {
		t.Fatalf("crash: %+v", rec.Crash)
	}
	if rec.Trace.Len() == 0 {
		t.Fatal("empty trace under all-branches")
	}
	if stats.InstrumentedExecs != rec.Trace.Len() {
		t.Fatalf("execs %d vs bits %d", stats.InstrumentedExecs, rec.Trace.Len())
	}
	if rec.SysLog == nil {
		t.Fatal("syscall log missing")
	}
}

func TestRecordNoCrashNoReport(t *testing.T) {
	s := guardedScenario(t)
	s.UserBytes = map[string][]byte{"arg0": []byte("-y")}
	in := analyses(t, s)
	plan := s.Plan(instrument.MethodAll, in, true)
	rec, stats, err := s.Record(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rec != nil {
		t.Fatal("recording produced without a crash")
	}
	if string(stats.Stdout) != "ok" {
		t.Fatalf("stdout: %q", stats.Stdout)
	}
}

func TestPrivacyNoInputBytesInReport(t *testing.T) {
	// The report consists of branch direction bits and syscall result
	// counts; the user's distinctive bytes must not appear in it.
	s := guardedScenario(t)
	s.UserBytes = map[string][]byte{"arg0": []byte("-x"), "arg1": []byte("K")}
	in := analyses(t, s)
	plan := s.Plan(instrument.MethodAll, in, true)
	rec, _, err := s.Record(plan)
	if err != nil || rec == nil {
		t.Fatal(err)
	}
	raw := string(rec.Trace.Bytes())
	if strings.Contains(raw, "-x") || strings.Contains(raw, "K") {
		// One-byte containment can collide by chance, but for this tiny
		// trace the check is meaningful for "-x".
		if strings.Contains(raw, "-x") {
			t.Error("trace appears to contain input bytes")
		}
	}
}

func TestReplayAllMethods(t *testing.T) {
	s := guardedScenario(t)
	in := analyses(t, s)
	for _, method := range instrument.Methods {
		method := method
		t.Run(method.String(), func(t *testing.T) {
			plan := s.Plan(method, in, true)
			rec, _, err := s.Record(plan)
			if err != nil {
				t.Fatal(err)
			}
			if rec == nil {
				t.Fatal("no recording")
			}
			res := s.Replay(rec, replay.Options{MaxRuns: 500, TimeBudget: 20 * time.Second})
			if !res.Reproduced {
				t.Fatalf("not reproduced: %+v", res)
			}
			if !s.VerifyInput(res.InputBytes, rec.Crash) {
				t.Fatalf("replay input does not activate the bug: %v", res.InputBytes)
			}
			// The reproducing input need not equal the user's input, but for
			// this bug arg0 must decode to "-x" and arg1[0] to 'K'.
			if got := string(trimNul(res.InputBytes["arg0"])); got != "-x" {
				t.Errorf("arg0: %q", got)
			}
			if res.InputBytes["arg1"][0] != 'K' {
				t.Errorf("arg1[0]: %q", res.InputBytes["arg1"][0])
			}
		})
	}
}

func trimNul(b []byte) []byte {
	for i, c := range b {
		if c == 0 {
			return b[:i]
		}
	}
	return b
}

func TestReplayInvariantsPerMethod(t *testing.T) {
	// Under all/static every symbolic branch is instrumented: the successful
	// replay path must show zero unlogged symbolic executions (§3.2).
	s := guardedScenario(t)
	in := analyses(t, s)
	for _, method := range []instrument.Method{instrument.MethodAll, instrument.MethodStatic} {
		plan := s.Plan(method, in, true)
		rec, _, err := s.Record(plan)
		if err != nil || rec == nil {
			t.Fatal(err)
		}
		res := s.Replay(rec, replay.Options{MaxRuns: 500})
		if !res.Reproduced {
			t.Fatalf("%v: not reproduced", method)
		}
		if res.SymNotLoggedLocs != 0 || res.SymNotLoggedExecs != 0 {
			t.Errorf("%v: unlogged symbolic branches on replay path: %d locs / %d execs",
				method, res.SymNotLoggedLocs, res.SymNotLoggedExecs)
		}
	}
}

func TestReplayWithPoorDynamicCoverage(t *testing.T) {
	// A dynamic plan built from a single exploration run misses symbolic
	// branches; replay must still reproduce by searching (more runs).
	s := guardedScenario(t)
	in := instrument.Inputs{
		Dynamic: s.AnalyzeDynamic(concolic.Options{MaxRuns: 1}),
		Static:  s.AnalyzeStatic(static.Options{}),
	}
	plan := s.Plan(instrument.MethodDynamic, in, true)
	rec, _, err := s.Record(plan)
	if err != nil || rec == nil {
		t.Fatal(err)
	}
	res := s.Replay(rec, replay.Options{MaxRuns: 2000, TimeBudget: 30 * time.Second})
	if !res.Reproduced {
		t.Fatalf("not reproduced: %+v", res)
	}
	if !s.VerifyInput(res.InputBytes, rec.Crash) {
		t.Fatal("input does not verify")
	}

	// Compare search effort against the fully instrumented configuration.
	full := s.Plan(instrument.MethodAll, in, true)
	recFull, _, err := s.Record(full)
	if err != nil || recFull == nil {
		t.Fatal(err)
	}
	resFull := s.Replay(recFull, replay.Options{MaxRuns: 2000})
	if !resFull.Reproduced {
		t.Fatal("all-branches replay failed")
	}
	if res.Runs < resFull.Runs {
		t.Errorf("under-instrumented replay used fewer runs (%d) than full (%d)",
			res.Runs, resFull.Runs)
	}
}

func TestReplayTimeBudget(t *testing.T) {
	s := guardedScenario(t)
	in := analyses(t, s)
	plan := s.Plan(instrument.MethodAll, in, true)
	rec, _, err := s.Record(plan)
	if err != nil || rec == nil {
		t.Fatal(err)
	}
	res := s.Replay(rec, replay.Options{MaxRuns: 1_000_000, TimeBudget: time.Nanosecond})
	if res.Reproduced {
		// A nanosecond budget can still allow the very first run to start
		// before the deadline check; only assert that a timeout is flagged
		// when reproduction failed.
		return
	}
	if !res.TimedOut {
		t.Fatalf("expected timeout flag: %+v", res)
	}
}

func TestStripSyslog(t *testing.T) {
	s := guardedScenario(t)
	in := analyses(t, s)
	plan := s.Plan(instrument.MethodAll, in, true)
	rec, _, err := s.Record(plan)
	if err != nil || rec == nil {
		t.Fatal(err)
	}
	bare := StripSyslog(rec)
	if bare.SysLog != nil || bare.Trace != rec.Trace || bare.Crash != rec.Crash {
		t.Fatal("strip changed the wrong fields")
	}
	// Replay must still work via the syscall model for this syscall-light
	// program.
	res := s.Replay(bare, replay.Options{MaxRuns: 1000, TimeBudget: 30 * time.Second})
	if !res.Reproduced {
		t.Fatalf("model-mode replay failed: %+v", res)
	}
}

func TestUserSpecValidation(t *testing.T) {
	s := guardedScenario(t)
	s.UserBytes = map[string][]byte{"arg0": []byte("waytoolongforthestream")}
	if _, err := s.UserSpec(); err == nil {
		t.Fatal("oversized user input must be rejected")
	}
}

func TestUserSpecRejectsUnknownStream(t *testing.T) {
	s := guardedScenario(t)
	// A typo'd stream name must fail loudly, not silently record the
	// neutral seed in place of the user's input.
	s.UserBytes = map[string][]byte{"arg9": []byte("PQ")}
	_, err := s.UserSpec()
	if err == nil {
		t.Fatal("unknown stream key must be rejected")
	}
	if !strings.Contains(err.Error(), "arg9") {
		t.Fatalf("error does not name the unknown stream: %v", err)
	}
}

func TestMeasureOverheadOrdering(t *testing.T) {
	// Instrumented configurations must not be cheaper than none, and all
	// must not be cheaper than dynamic (sanity, not a benchmark).
	s := guardedScenario(t)
	s.UserBytes = map[string][]byte{"arg0": []byte("zz")} // non-crashing run
	in := analyses(t, s)

	nonePlan := s.Plan(instrument.MethodNone, in, false)
	allPlan := s.Plan(instrument.MethodAll, in, true)
	if _, _, err := s.MeasureOverhead(nonePlan, 3); err != nil {
		t.Fatal(err)
	}
	_, allStats, err := s.MeasureOverhead(allPlan, 3)
	if err != nil {
		t.Fatal(err)
	}
	if allStats.InstrumentedExecs == 0 {
		t.Fatal("all-branches run logged nothing")
	}
	if allStats.TraceBits != allStats.InstrumentedExecs {
		t.Fatalf("bits %d != instrumented execs %d", allStats.TraceBits, allStats.InstrumentedExecs)
	}
}

// fileCrash reads a file and crashes on a specific content prefix.
const fileCrash = `
int main() {
	int fd = open("in.txt");
	if (fd < 0) { exit(1); }
	char buf[32];
	int n = read(fd, buf, 32);
	if (n > 1) {
		if (buf[0] == 'G' && buf[1] == 'O') { crash(5); }
	}
	return 0;
}
`

func TestFileInputScenario(t *testing.T) {
	s := &Scenario{
		Name: "filecrash",
		Prog: compile(t, fileCrash),
		Spec: &world.Spec{Files: []world.FileInput{world.FileSpec("in.txt", "xx", 8)}},
		UserBytes: map[string][]byte{
			"file:in.txt": []byte("GO"),
		},
	}
	in := analyses(t, s)
	for _, method := range []instrument.Method{instrument.MethodAll, instrument.MethodDynamicStatic} {
		plan := s.Plan(method, in, true)
		rec, _, err := s.Record(plan)
		if err != nil || rec == nil {
			t.Fatalf("%v: record: %v", method, err)
		}
		res := s.Replay(rec, replay.Options{MaxRuns: 1000, TimeBudget: 20 * time.Second})
		if !res.Reproduced {
			t.Fatalf("%v: not reproduced: runs=%d", method, res.Runs)
		}
		got := res.InputBytes["file:in.txt"]
		if got[0] != 'G' || got[1] != 'O' {
			t.Fatalf("%v: file content: %q", method, got)
		}
	}
}
