// Package core wires the paper's full workflow together — the primary
// contribution of the reproduced system:
//
//	pre-deployment   dynamic (concolic) and/or static analysis labels
//	                 branch locations; an instrumentation plan is built
//	user site        the instrumented program runs concrete, logging one
//	                 bit per instrumented branch plus optional syscall
//	                 results; on a crash, the log and crash site form the
//	                 bug report
//	developer site   the replay engine drives symbolic execution with the
//	                 partial branch log and produces a set of inputs that
//	                 activates the bug
//
// No user input bytes ever flow into the bug report: a Recording contains
// only the bitvector, optional syscall results, and the crash site.
package core

import (
	"context"
	"fmt"
	"time"

	"pathlog/internal/concolic"
	"pathlog/internal/instrument"
	"pathlog/internal/ir"
	"pathlog/internal/lang"
	"pathlog/internal/oskernel"
	"pathlog/internal/replay"
	"pathlog/internal/static"
	"pathlog/internal/vm"
	"pathlog/internal/world"
)

// Scenario binds a program to an input space and one user execution.
type Scenario struct {
	Name string
	Prog *lang.Program
	// Spec is the neutral input space: stream shapes with placeholder
	// seeds. Analysis and replay see only this — never the user's bytes.
	Spec *world.Spec
	// UserBytes holds the user-site input per stream name (the bytes that
	// actually trigger the bug at record time).
	UserBytes map[string][]byte
	// Engine builds the execution machine every pipeline stage runs the
	// program with. Nil selects the bytecode VM (internal/ir), the fast
	// default; vm.TreeFactory selects the tree-walking interpreter, kept as
	// the differential-testing oracle (pathlog.WithEngine).
	Engine vm.Factory
}

// engine resolves the scenario's execution engine.
func (s *Scenario) engine() vm.Factory {
	if s.Engine != nil {
		return s.Engine
	}
	return ir.Engine
}

// UserSpec materializes the user-site input space: the neutral spec with
// seeds replaced by the user's bytes. Every UserBytes key must name a
// declared stream; a key that matches nothing is an error, not a silent
// no-op — a typo'd stream name would otherwise record the wrong input.
func (s *Scenario) UserSpec() (*world.Spec, error) {
	declared := make(map[string]bool,
		len(s.Spec.Args)+len(s.Spec.Files)+len(s.Spec.Conns))
	for _, a := range s.Spec.Args {
		declared[a.Name] = true
	}
	for _, f := range s.Spec.Files {
		declared[f.Stream.Name] = true
	}
	for _, c := range s.Spec.Conns {
		declared[c.Stream.Name] = true
	}
	for name := range s.UserBytes {
		if !declared[name] {
			return nil, fmt.Errorf("core: user input names stream %q, but the spec declares no such stream", name)
		}
	}
	cp := *s.Spec
	cp.Args = append([]world.Stream(nil), s.Spec.Args...)
	cp.Files = append([]world.FileInput(nil), s.Spec.Files...)
	cp.Conns = append([]world.ConnInput(nil), s.Spec.Conns...)
	for i := range cp.Args {
		if err := overrideSeed(&cp.Args[i], s.UserBytes); err != nil {
			return nil, err
		}
	}
	for i := range cp.Files {
		if err := overrideSeed(&cp.Files[i].Stream, s.UserBytes); err != nil {
			return nil, err
		}
	}
	for i := range cp.Conns {
		if err := overrideSeed(&cp.Conns[i].Stream, s.UserBytes); err != nil {
			return nil, err
		}
	}
	return &cp, nil
}

func overrideSeed(st *world.Stream, user map[string][]byte) error {
	b, ok := user[st.Name]
	if !ok {
		return nil
	}
	if len(b) > st.Len {
		return fmt.Errorf("core: user input for %s is %d bytes, stream caps at %d",
			st.Name, len(b), st.Len)
	}
	st.Seed = b
	return nil
}

// AnalyzeDynamicContext runs the concolic analysis over the neutral input
// space; the context's cancellation or deadline stops exploration after the
// current run.
func (s *Scenario) AnalyzeDynamicContext(ctx context.Context, opts concolic.Options) *concolic.Report {
	if opts.Engine == nil {
		opts.Engine = s.engine()
	}
	ex := concolic.New(s.Prog, s.Spec, world.NewRegistry(), opts)
	return ex.Explore(ctx)
}

// AnalyzeDynamic runs the concolic analysis over the neutral input space.
//
// Deprecated: use AnalyzeDynamicContext, or the pathlog.Session API.
func (s *Scenario) AnalyzeDynamic(opts concolic.Options) *concolic.Report {
	return s.AnalyzeDynamicContext(context.Background(), opts)
}

// AnalyzeStatic runs the static analysis.
func (s *Scenario) AnalyzeStatic(opts static.Options) *static.Report {
	return static.Analyze(s.Prog, opts)
}

// Plan builds the instrumentation plan for a method.
func (s *Scenario) Plan(method instrument.Method, in instrument.Inputs, logSyscalls bool) *instrument.Plan {
	return instrument.BuildPlan(s.Prog, method, in, logSyscalls)
}

// RecordStats quantifies one user-site run: the instrumentation overhead
// numbers of Figures 2, 4 and 5 are computed from these.
type RecordStats struct {
	Wall              time.Duration
	Steps             int64
	BranchExecs       int64
	InstrumentedExecs int64
	TraceBits         int64
	TraceBytes        int64
	SyslogBytes       int64
	Flushes           int
	Stdout            []byte
	Syscalls          int64
}

// RecordContext executes the user-site run under a plan and assembles the
// bug report. The run is fully concrete — no symbolic machinery is attached,
// so measured overhead is exactly the branch logger plus syscall-result
// logging. The context gates only the start of the run: a user-site run is
// one bounded concrete execution, so once started it completes.
func (s *Scenario) RecordContext(ctx context.Context, plan *instrument.Plan) (*replay.Recording, *RecordStats, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	userSpec, err := s.UserSpec()
	if err != nil {
		return nil, nil, err
	}
	w := world.NewWorld(userSpec, world.NewRegistry(), nil)
	w.Symbolic = false
	cfg := w.KernelConfig()
	cfg.Mode = oskernel.ModeRecord
	var sysLog *oskernel.SyscallLog
	if plan.LogSyscalls {
		sysLog = oskernel.NewSyscallLog()
		cfg.Log = sysLog
		cfg.LogSyscalls = true
	}
	kern := oskernel.New(cfg)

	var sink vm.BranchSink
	var logger *instrument.Logger
	if plan.Instruments() {
		logger = instrument.NewLogger(plan)
		sink = logger
	}

	start := time.Now()
	res, err := s.engine()(s.Prog, vm.Options{Kernel: kern, Sink: sink}).Run()
	wall := time.Since(start)
	if err != nil {
		return nil, nil, fmt.Errorf("core: user run failed: %w", err)
	}

	stats := &RecordStats{
		Wall:        wall,
		Steps:       res.Steps,
		BranchExecs: res.BranchExecs,
		Stdout:      res.Stdout,
		Syscalls:    kern.NSyscalls,
	}
	if sysLog != nil {
		stats.SyslogBytes = sysLog.SizeBytes()
	}

	var rec *replay.Recording
	if logger != nil {
		tr := logger.Finish()
		stats.InstrumentedExecs = logger.InstrumentedExecs
		stats.TraceBits = tr.Len()
		stats.TraceBytes = tr.SizeBytes()
		stats.Flushes = logger.Flushes()
		// The recording is stamped with the plan's fingerprint so the
		// developer site can refuse a plan/recording/program mismatch.
		rec = &replay.Recording{Plan: plan, Trace: tr, SysLog: sysLog,
			Fingerprint: plan.Fingerprint()}
	}

	if !res.Crashed {
		// A non-crashing run still yields stats (overhead measurements use
		// healthy runs) but no bug report.
		return nil, stats, nil
	}
	if rec == nil {
		return nil, stats, nil // uninstrumented builds report nothing
	}
	rec.Crash = res.Crash
	return rec, stats, nil
}

// Record executes the user-site run under a plan and assembles the bug
// report.
//
// Deprecated: use RecordContext, or the pathlog.Session API.
func (s *Scenario) Record(plan *instrument.Plan) (*replay.Recording, *RecordStats, error) {
	return s.RecordContext(context.Background(), plan)
}

// MeasureOverheadContext runs the user-site workload repeatedly under a plan
// and returns the average wall time, without requiring a crash. One untimed
// warm-up run precedes the measured rounds so allocator and cache effects do
// not pollute the first sample; overhead comparisons need many rounds for
// microsecond-scale workloads. Cancelling the context stops between rounds.
func (s *Scenario) MeasureOverheadContext(ctx context.Context, plan *instrument.Plan, rounds int) (time.Duration, *RecordStats, error) {
	if rounds <= 0 {
		rounds = 1
	}
	warmup := rounds/10 + 1
	if warmup > 20 {
		warmup = 20
	}
	for i := 0; i < warmup; i++ {
		if _, _, err := s.RecordContext(ctx, plan); err != nil {
			return 0, nil, err
		}
	}
	var total time.Duration
	var last *RecordStats
	for i := 0; i < rounds; i++ {
		_, stats, err := s.RecordContext(ctx, plan)
		if err != nil {
			return 0, nil, err
		}
		total += stats.Wall
		last = stats
	}
	return total / time.Duration(rounds), last, nil
}

// MeasureOverhead runs the user-site workload repeatedly under a plan and
// returns the average wall time.
//
// Deprecated: use MeasureOverheadContext, or the pathlog.Session API.
func (s *Scenario) MeasureOverhead(plan *instrument.Plan, rounds int) (time.Duration, *RecordStats, error) {
	return s.MeasureOverheadContext(context.Background(), plan, rounds)
}

// ReplayContext reproduces a recorded bug. The context's cancellation or
// deadline stops the guided search within one run; opts.Workers > 1
// parallelizes the pending-list exploration.
func (s *Scenario) ReplayContext(ctx context.Context, rec *replay.Recording, opts replay.Options) *replay.Result {
	if opts.Engine == nil {
		opts.Engine = s.engine()
	}
	eng := replay.New(s.Prog, s.Spec, world.NewRegistry(), rec, opts)
	return eng.Reproduce(ctx)
}

// Replay reproduces a recorded bug.
//
// Deprecated: use ReplayContext, or the pathlog.Session API.
func (s *Scenario) Replay(rec *replay.Recording, opts replay.Options) *replay.Result {
	return s.ReplayContext(context.Background(), rec, opts)
}

// StripSyslog returns a recording with the syscall log removed, for the
// "without logging system calls" experiments (Tables 5 and 8). The trace and
// crash site are shared.
func StripSyslog(rec *replay.Recording) *replay.Recording {
	return &replay.Recording{Plan: rec.Plan, Trace: rec.Trace, SysLog: nil,
		Crash: rec.Crash, Fingerprint: rec.Fingerprint}
}

// VerifyInput checks that an input found by replay really activates the
// recorded bug: it runs the program concretely on those bytes and compares
// crash sites. This is the paper's post-replay verification step (§5.3).
func (s *Scenario) VerifyInput(inputBytes map[string][]byte, want vm.CrashInfo) bool {
	verify := &Scenario{Name: s.Name, Prog: s.Prog, Spec: s.Spec, UserBytes: inputBytes}
	spec, err := verify.UserSpec()
	if err != nil {
		return false
	}
	w := world.NewWorld(spec, world.NewRegistry(), nil)
	w.Symbolic = false
	cfg := w.KernelConfig()
	cfg.Mode = oskernel.ModeRecord
	res, err := s.engine()(s.Prog, vm.Options{Kernel: oskernel.New(cfg)}).Run()
	if err != nil {
		return false
	}
	return res.Crashed && res.Crash.Kind == want.Kind && res.Crash.Pos == want.Pos
}
