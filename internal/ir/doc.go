// Package ir compiles linked MiniC programs to a flat bytecode IR and
// executes it with a loop-based VM.
//
// The compiler lowers the resolved AST of internal/lang into per-function
// flat instruction arrays: basic blocks of straight-line instructions ending
// in branch, jump, call or return terminators, with branch sites as explicit
// jump targets carrying their lang.BranchSite, a string constant pool, and
// the global table of the source program. Compilation is cached — keyed by a
// structural program hash with a pointer-identity fast path — so one compile
// amortizes over the hundreds to thousands of runs of a replay search.
//
// The VM (Engine, a vm.Factory) executes the bytecode in a dispatch loop
// with an explicit call stack, sharing the operator, builtin and crash
// semantics of internal/vm through vm.BinOp, vm.UnaryOp and vm.Host. It is
// engineered for bit-for-bit parity with the tree-walking interpreter: the
// same trace bits, syscall logs, crash sites, branch events, symbolic
// expressions, object-allocation order and step counts. Step parity works by
// construction: the compiler simulates the tree walker's pre-order step
// charging and attaches each run of charges to the first instruction that
// executes after them (Instr.Steps), inserting explicit OpNop carriers on
// edges — loop entries, branch joins — where no instruction would otherwise
// absorb them.
//
// The tree walker remains the differential-testing oracle; the parity suite
// in this package runs every example/app program under both engines.
package ir
