package ir

import (
	"pathlog/internal/lang"
	"pathlog/internal/vm"
)

// Superinstruction fusion. fuse runs a cascading peephole over register code:
// each incoming instruction is appended and then the tail is repeatedly
// shrunk — operand loads fold into their consumers as source modes, compares
// fold into the branch that consumes them, address computations fold into the
// store/increment behind them, and constant subexpressions evaluate at
// compile time. A fused instruction charges the summed Steps of its
// constituents before any of its effects.
//
// Fusion legality is about that charge batching. The tree walker interleaves
// charges and effects (charge, effect, charge, effect, ...), and both the
// step budget and the final step count are observable: a run that crashes or
// trips the budget reports exactly the charges applied so far. Batching a
// group's charges up front is therefore exact if and only if every
// constituent that precedes a later-charged or final constituent is *pure* —
// it cannot crash, cannot report a branch event, cannot touch the kernel,
// and carries no observable effect whose ordering against a budget trip
// matters. The fold rules below only ever prepend pure producers (const,
// local/global loads, pointer materializations) to a group, so the batched
// schedule is indistinguishable from the walker's: any budget trip inside
// the batch happens before effects either way, and a crash in the group's
// tail sees exactly the same accumulated step count.
//
// Fusion never crosses a jump target: an instruction whose pc is a branch
// destination must remain separately addressable, so it can only start a
// group, never be absorbed into one.

// fuse collapses hot pairs/triples in rcode into superinstructions and
// rewrites jump targets to the shrunk code.
func fuse(rcode []RInstr) []RInstr {
	n := len(rcode)
	leaders := make([]bool, n+1)
	for i := range rcode {
		switch rcode[i].Op {
		case RJump:
			leaders[rcode[i].A] = true
		case RBranch:
			leaders[rcode[i].B] = true
			leaders[rcode[i].C] = true
		case RShortCircuit:
			leaders[rcode[i].C] = true
		}
	}

	out := make([]RInstr, 0, n)
	head := make([]int, 0, n) // original pc of each out entry's first constituent
	newPC := make([]int32, n+1)
	for i := range rcode {
		newPC[i] = int32(len(out))
		out = append(out, rcode[i])
		head = append(head, i)
		for {
			if shrinkTail(&out, head, leaders) {
				head = head[:len(out)]
				continue
			}
			break
		}
	}
	newPC[n] = int32(len(out))

	// Rewrite jump targets to post-fusion pcs. Every target is a leader, and
	// leaders always head their group, so newPC is exact for them.
	for i := range out {
		r := &out[i]
		switch r.Op {
		case RJump:
			r.A = newPC[r.A]
		case RBranch:
			r.B, r.C = newPC[r.B], newPC[r.C]
		case RShortCircuit:
			r.C = newPC[r.C]
		case RCmpBranch:
			r.C = newPC[r.C]
			r.Val = int64(newPC[r.Val])
		}
	}
	return out
}

// shrinkTail tries one peephole rewrite on the tail of out, reporting
// whether it changed anything. Pair rules merge out[n-2] and out[n-1] into
// one instruction at n-2; self rules rewrite out[n-1] in place (and report
// false to let the caller's loop re-enter cleanly via the pair rules).
func shrinkTail(outp *[]RInstr, head []int, leaders []bool) bool {
	out := *outp
	n := len(out)
	if n == 0 {
		return false
	}
	if constFold(&out[n-1]) {
		return true
	}
	if n < 2 || leaders[head[n-1]] {
		return false
	}
	a, b := &out[n-2], &out[n-1]
	merged, ok := fusePair(a, b)
	if !ok {
		return false
	}
	out[n-2] = merged
	*outp = out[:n-1]
	return true
}

// fusePair merges two adjacent instructions when a fusion rule applies.
func fusePair(a, b *RInstr) (RInstr, bool) {
	// A trailing charge-only nop (the flush before a label) folds backward
	// into any pure fall-through instruction: the charge moves earlier
	// across effects that cannot crash or observe, which the budget clamp
	// makes exact.
	if b.Op == RNop && isPure(a.Op) {
		m := *a
		m.Steps += b.Steps
		return m, true
	}

	// A pure producer folds into a moded operand slot of its consumer.
	if mode, idx, ok := producerMode(a); ok {
		if m, ok := foldOperand(a, b, mode, idx); ok {
			return m, true
		}
	}

	switch {
	// compare + branch.
	case a.Op == RBinary && b.Op == RBranch && isCmpKind(a.Kind) &&
		b.AM == SrcReg && b.A == a.Dst:
		m := *a
		m.Op = RCmpBranch
		m.Dst = -1
		m.C = b.B
		m.Val = int64(b.C)
		m.Site = b.Site
		m.Steps = a.Steps + b.Steps
		m.Sub = joinSub(a, b)
		return m, true

	// binop + store (load+binop+store once the operand folds land). The
	// result register write is kept: assignment is an expression and a
	// surrounding consumer may read it.
	case a.Op == RBinary && (b.Op == RStoreLocal || b.Op == RStoreGlobal) &&
		b.BM == SrcReg && b.B == a.Dst:
		m := *a
		if b.Op == RStoreLocal {
			m.Op = RBinStoreLocal
		} else {
			m.Op = RBinStoreGlobal
		}
		m.C = b.A
		m.Steps = a.Steps + b.Steps
		m.Sub = joinSub(a, b)
		return m, true

	// index address + store through it.
	case a.Op == RAddrIndex && b.Op == RStoreCell && b.A == a.Dst:
		m := *a
		m.Op = RStoreIndex
		m.Dst = -1
		m.CM = b.BM
		m.C = b.B
		m.Steps = a.Steps + b.Steps
		m.Sub = joinSub(a, b)
		return m, true

	// index address + increment through it (h[i]++).
	case a.Op == RAddrIndex && b.Op == RIncCell && b.A == a.Dst:
		m := *a
		m.Op = RIncIndex
		m.Dst = b.Dst
		m.Val = b.Val
		m.Steps = a.Steps + b.Steps
		m.Sub = joinSub(a, b)
		return m, true
	}
	return RInstr{}, false
}

// isCmpKind reports whether a binary operator is a comparison — the shapes
// RCmpBranch handles. Fusing is legal even for pointer compares that can
// crash: both constituents carry zero Steps (consumers never hold charges),
// and the compare still evaluates before the branch event fires.
func isCmpKind(k lang.Kind) bool {
	switch k {
	case lang.EQ, lang.NE, lang.LT, lang.LE, lang.GT, lang.GE:
		return true
	}
	return false
}

// producerMode reports the source mode a pure producer folds to.
func producerMode(a *RInstr) (SrcMode, int32, bool) {
	if a.Dst < 0 {
		return 0, 0, false
	}
	switch a.Op {
	case RConst:
		if int64(int32(a.Val)) == a.Val {
			return SrcConst, int32(a.Val), true
		}
	case RLoadLocal:
		return SrcLocal, a.A, true
	case RLoadGlobal:
		return SrcGlobal, a.A, true
	case RGlobalPtr:
		return SrcGPtr, a.A, true
	case RAddrLocal:
		return SrcLAddr, a.A, true
	}
	return 0, 0, false
}

// foldOperand rewrites the operand slot of b that reads a's destination
// register, absorbing a (and its charge) into b. The B slot is checked
// before A: operand B sits above A on the conceptual stack, so an adjacent
// producer feeds B first; cascading folds then expose A.
func foldOperand(a, b *RInstr, mode SrcMode, idx int32) (RInstr, bool) {
	r := a.Dst
	var slot *int32
	var slotMode *SrcMode
	switch b.Op {
	case RBinary, RCmpBranch, RAddrIndex, RLoadIndex,
		RBinStoreLocal, RBinStoreGlobal, RStoreIndex:
		m := *b
		switch {
		case m.CM == SrcReg && m.Op == RStoreIndex && m.C == r:
			slot, slotMode = &m.C, &m.CM
		case m.BM == SrcReg && m.B == r:
			slot, slotMode = &m.B, &m.BM
		case m.AM == SrcReg && m.A == r:
			slot, slotMode = &m.A, &m.AM
		default:
			return RInstr{}, false
		}
		*slot, *slotMode = idx, mode
		m.Steps = a.Steps + b.Steps
		m.Sub = joinSub(a, b)
		return m, true
	case RUnary, RBool, RBranch, RShortCircuit, RRet:
		if b.AM != SrcReg || b.A != r {
			return RInstr{}, false
		}
		m := *b
		m.AM, m.A = mode, idx
		m.Steps = a.Steps + b.Steps
		m.Sub = joinSub(a, b)
		return m, true
	case RStoreLocal, RStoreGlobal, RStoreCell,
		RStoreLocalOp, RStoreGlobalOp, RStoreCellOp:
		if b.BM != SrcReg || b.B != r {
			return RInstr{}, false
		}
		m := *b
		m.BM, m.B = mode, idx
		m.Steps = a.Steps + b.Steps
		m.Sub = joinSub(a, b)
		return m, true
	}
	return RInstr{}, false
}

// constFold evaluates an all-constant instruction at compile time, rewriting
// it to RConst in place. Folds that could crash at run time (division by
// zero) decline and stay runtime instructions.
func constFold(r *RInstr) bool {
	switch r.Op {
	case RBinary:
		if r.AM != SrcConst || r.BM != SrcConst {
			return false
		}
		cv, ok := vm.ConcreteBin(r.Kind, int64(r.A), int64(r.B))
		if !ok {
			return false
		}
		*r = RInstr{Op: RConst, Steps: r.Steps, Dst: r.Dst, Val: cv, Sub: joinSub(r, nil)}
		return true
	case RUnary:
		if r.AM != SrcConst {
			return false
		}
		v, err := vm.UnaryOp(r.Kind, vm.IntValue(int64(r.A)), r.Pos)
		if err != nil || v.K != vm.KInt || v.Sym != nil {
			return false
		}
		*r = RInstr{Op: RConst, Steps: r.Steps, Dst: r.Dst, Val: v.I, Sub: joinSub(r, nil)}
		return true
	case RBool:
		if r.AM != SrcConst {
			return false
		}
		truth := int64(0)
		if r.A != 0 {
			truth = 1
		}
		*r = RInstr{Op: RConst, Steps: r.Steps, Dst: r.Dst, Val: truth, Sub: joinSub(r, nil)}
		return true
	}
	return false
}

// isPure reports whether an opcode can neither crash, observe (branch
// events, kernel calls, output), nor transfer control — the condition for
// both absorbing a trailing charge and leading a charge-batched group.
func isPure(op ROp) bool {
	switch op {
	case RNop, RConst, RStr, RLoadLocal, RLoadGlobal, RGlobalPtr, RAddrLocal,
		RStoreLocal, RStoreGlobal, RZeroLocal, RAllocArr, RIncLocal, RBool:
		return true
	}
	return false
}

// joinSub concatenates the constituent lists of two instructions (b may be
// nil for an in-place rewrite).
func joinSub(a, b *RInstr) []ROp {
	sub := make([]ROp, 0, 4)
	if a.Sub != nil {
		sub = append(sub, a.Sub...)
	} else {
		sub = append(sub, a.Op)
	}
	if b != nil {
		if b.Sub != nil {
			sub = append(sub, b.Sub...)
		} else {
			sub = append(sub, b.Op)
		}
	}
	return sub
}

// FusedStats counts, per resulting opcode, the superinstructions fusion
// emitted across the program (instructions that replaced two or more
// constituents), plus constant-folded instructions under "const".
type FusedStats map[string]int

// FuseStats tallies the fusion results of every function (and the init
// sequence) of the program.
func (p *Program) FuseStats() FusedStats {
	st := FusedStats{}
	count := func(code []RInstr) {
		for i := range code {
			if len(code[i].Sub) > 1 {
				st[code[i].Op.String()]++
			}
		}
	}
	count(p.RInit)
	for _, fc := range p.Funcs {
		count(fc.RCode)
	}
	return st
}
