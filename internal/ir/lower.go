package ir

// Lowering from stack bytecode to register form. The stack code of this
// front end is structured: the operand-stack depth at every pc is a
// compile-time constant and agrees across all control-flow edges into a pc
// (statements execute at depth 0; the only mid-expression join, the
// short-circuit merge, pushes the result on both edges). That makes register
// allocation positional — the value at stack depth d lives in virtual
// register d — so lowering is a single linear scan that rewrites each stack
// instruction into its register form at the depth it executes, with no
// dataflow analysis.
//
// The scan also performs the two cleanups that need stack-shape knowledge:
// OpPop disappears entirely (discarding a register value is free), and a
// value that dies at a Pop has its producer's destination write elided
// (compound stores and increments keep their memory effect, drop the dead
// old-value register write; a pure load of a dead value is deleted with its
// charge preserved). Everything else — operand folding, superinstruction
// fusion, constant folding — happens in fuse.go on the register code.

// lower converts one function's (or the init sequence's) stack code to fused
// register code, returning the code and the number of virtual registers it
// needs.
func lower(code []Instr) ([]RInstr, int) {
	rcode, nregs := lowerCode(code)
	return fuse(rcode), nregs
}

// lowerCode is the fusion-free lowering pass.
func lowerCode(code []Instr) ([]RInstr, int) {
	n := len(code)
	// depth[i] is the operand-stack depth on entry to stack pc i, when that
	// pc is a jump target (recorded when the jump is lowered; every jump in
	// this IR is forward except loop back-edges to already-visited pcs).
	depth := make([]int, n+1)
	for i := range depth {
		depth[i] = -1
	}
	setDepth := func(t int32, d int) {
		if depth[t] < 0 {
			depth[t] = d
		}
	}

	out := make([]RInstr, 0, n)
	// pcMap[i] is the register-code pc of stack pc i (for stack pcs that
	// emit nothing, the position of the next emitted instruction — jump
	// targets always emit or are followed by emission).
	pcMap := make([]int32, n+1)
	nregs := 0
	d := 0 // running fall-through depth; -1 after an unconditional transfer

	for i := 0; i < n; i++ {
		pcMap[i] = int32(len(out))
		if depth[i] >= 0 {
			d = depth[i]
		} else if d < 0 {
			// Unreachable code (statements after a return) still lowers;
			// statement-level code runs at depth 0.
			d = 0
		}
		in := &code[i]
		steps := in.Steps
		rd := func(v int) int32 { return int32(v) } // readability only
		emit := func(r RInstr) {
			r.Steps = steps
			out = append(out, r)
		}
		switch in.Op {
		case OpNop:
			if steps > 0 {
				emit(RInstr{Op: RNop, Dst: -1})
			}

		case OpConst:
			emit(RInstr{Op: RConst, Dst: rd(d), Val: in.Val})
			d++

		case OpStr:
			emit(RInstr{Op: RStr, Dst: rd(d), A: in.A})
			d++

		case OpLoadLocal:
			emit(RInstr{Op: RLoadLocal, Dst: rd(d), A: in.A})
			d++

		case OpLoadGlobal:
			emit(RInstr{Op: RLoadGlobal, Dst: rd(d), A: in.A})
			d++

		case OpGlobalPtr:
			emit(RInstr{Op: RGlobalPtr, Dst: rd(d), A: in.A})
			d++

		case OpAddrLocal:
			emit(RInstr{Op: RAddrLocal, Dst: rd(d), A: in.A})
			d++

		case OpAddrLocalArr:
			emit(RInstr{Op: RAddrLocalArr, Dst: rd(d), A: in.A, Pos: in.Pos})
			d++

		case OpAddrIndex:
			emit(RInstr{Op: RAddrIndex, Dst: rd(d - 2), A: rd(d - 2), B: rd(d - 1), Pos: in.Pos})
			d--

		case OpAddrDeref:
			emit(RInstr{Op: RAddrDeref, Dst: rd(d - 1), A: rd(d - 1), Pos: in.Pos})

		case OpLoadIndex:
			emit(RInstr{Op: RLoadIndex, Dst: rd(d - 2), A: rd(d - 2), B: rd(d - 1), Pos: in.Pos})
			d--

		case OpLoadDeref:
			emit(RInstr{Op: RLoadDeref, Dst: rd(d - 1), A: rd(d - 1), Pos: in.Pos})

		case OpStoreLocal: // peek: the value stays at d-1
			emit(RInstr{Op: RStoreLocal, Dst: -1, A: in.A, B: rd(d - 1)})

		case OpStoreGlobal:
			emit(RInstr{Op: RStoreGlobal, Dst: -1, A: in.A, B: rd(d - 1)})

		case OpStoreCell: // pops the address, peeks the value
			emit(RInstr{Op: RStoreCell, Dst: -1, A: rd(d - 1), B: rd(d - 2)})
			d--

		case OpStoreLocalOp:
			emit(RInstr{Op: RStoreLocalOp, Dst: rd(d - 1), A: in.A, B: rd(d - 1), Kind: in.Kind, Pos: in.Pos})

		case OpStoreGlobalOp:
			emit(RInstr{Op: RStoreGlobalOp, Dst: rd(d - 1), A: in.A, B: rd(d - 1), Kind: in.Kind, Pos: in.Pos})

		case OpStoreCellOp:
			emit(RInstr{Op: RStoreCellOp, Dst: rd(d - 2), A: rd(d - 1), B: rd(d - 2), Kind: in.Kind, Pos: in.Pos})
			d--

		case OpSetLocal: // pop into slot: same store, value just dies
			emit(RInstr{Op: RStoreLocal, Dst: -1, A: in.A, B: rd(d - 1)})
			d--

		case OpSetGlobal:
			emit(RInstr{Op: RStoreGlobal, Dst: -1, A: in.A, B: rd(d - 1)})
			d--

		case OpZeroLocal:
			emit(RInstr{Op: RZeroLocal, Dst: -1, A: in.A})

		case OpAllocArr:
			emit(RInstr{Op: RAllocArr, Dst: -1, A: in.A, Val: in.Val, Name: in.Name})

		case OpIncLocal:
			emit(RInstr{Op: RIncLocal, Dst: rd(d), A: in.A, Val: in.Val})
			d++

		case OpIncCell:
			emit(RInstr{Op: RIncCell, Dst: rd(d - 1), A: rd(d - 1), Val: in.Val})

		case OpUnary:
			emit(RInstr{Op: RUnary, Dst: rd(d - 1), A: rd(d - 1), Kind: in.Kind, Pos: in.Pos})

		case OpBinary:
			emit(RInstr{Op: RBinary, Dst: rd(d - 2), A: rd(d - 2), B: rd(d - 1), Kind: in.Kind, Pos: in.Pos})
			d--

		case OpBool:
			emit(RInstr{Op: RBool, Dst: rd(d - 1), A: rd(d - 1)})

		case OpShortCircuit:
			// Pops the left operand; the jump target receives the pushed
			// short-circuit result at the operand's depth.
			emit(RInstr{Op: RShortCircuit, Dst: rd(d - 1), A: rd(d - 1), C: in.A, Kind: in.Kind, Site: in.Site})
			setDepth(in.A, d)
			d--

		case OpBranch:
			emit(RInstr{Op: RBranch, Dst: -1, A: rd(d - 1), B: in.A, C: in.B, Site: in.Site})
			setDepth(in.A, d-1)
			setDepth(in.B, d-1)
			d = -1

		case OpJump:
			emit(RInstr{Op: RJump, Dst: -1, A: in.A})
			setDepth(in.A, d)
			d = -1

		case OpPop:
			// Discarding a register value is free. If the dying value's
			// producer is the previous instruction, elide its dead
			// destination write; a pure load of a dead value disappears
			// entirely (its charge is preserved as a bare RNop, and when the
			// charge is zero the load was mid-expression, so its pc cannot
			// be a jump target and deleting it is safe).
			d--
			if steps > 0 {
				// Defensive: the compiler never charges a Pop (it always
				// follows the expression's own instructions), but a charge
				// here must not be lost.
				emit(RInstr{Op: RNop, Dst: -1})
				break
			}
			if len(out) == 0 {
				break
			}
			last := &out[len(out)-1]
			if last.Dst != int32(d) {
				break
			}
			switch last.Op {
			case RIncLocal, RIncCell, RStoreLocalOp, RStoreGlobalOp, RStoreCellOp:
				last.Dst = -1
			case RConst, RStr, RLoadLocal, RLoadGlobal, RGlobalPtr, RAddrLocal:
				if last.Steps > 0 {
					*last = RInstr{Op: RNop, Steps: last.Steps, Dst: -1}
				} else {
					out = out[:len(out)-1]
				}
			}

		case OpCall:
			nargs := int(in.B)
			emit(RInstr{Op: RCall, Dst: rd(d - nargs), A: rd(d - nargs), B: in.B, Fn: in.Fn})
			d -= nargs - 1

		case OpCallB:
			nargs := int(in.B)
			emit(RInstr{Op: RCallB, Dst: rd(d - nargs), A: rd(d - nargs), B: in.B, Name: in.Name, Pos: in.Pos})
			d -= nargs - 1

		case OpRet:
			emit(RInstr{Op: RRet, Dst: -1, A: rd(d - 1)})
			d = -1

		case OpRetZero:
			emit(RInstr{Op: RRetZero, Dst: -1})
			d = -1
		}
		if d > nregs {
			nregs = d
		}
	}
	pcMap[n] = int32(len(out))

	// Rewrite jump targets from stack pcs to register pcs.
	for i := range out {
		r := &out[i]
		switch r.Op {
		case RJump:
			r.A = pcMap[r.A]
		case RBranch:
			r.B, r.C = pcMap[r.B], pcMap[r.C]
		case RShortCircuit:
			r.C = pcMap[r.C]
		}
	}
	return out, nregs
}
