package ir

import (
	"fmt"

	"pathlog/internal/lang"
	"pathlog/internal/vm"
)

// compile lowers a linked program to bytecode. The compiler simulates the
// tree walker's step accounting at compile time: every statement and
// expression node charges one step on entry (pre-order), so the compiler
// accumulates a pending charge per node it enters and attaches the
// accumulated run to the first instruction emitted inside that subtree. The
// pending count must be flushed — attached to an emitted instruction on the
// same control-flow edge — before any label is bound, or a charge that the
// tree walker applies once per entry would be re-applied every loop
// iteration (or skipped on a join edge). Loop back-edges and unconditional
// jumps absorb their edge's pending charges themselves.
func compile(prog *lang.Program) (*Program, error) {
	c := &compiler{
		prog: prog,
		out:  &Program{Src: prog},
		fns:  make(map[*lang.FuncDecl]*FuncCode, len(prog.FuncList)),
		strs: make(map[*lang.StrLit]int),
	}
	for _, fn := range prog.FuncList {
		fc := &FuncCode{Decl: fn, FrameName: fn.Name + ".frame"}
		c.fns[fn] = fc
		c.out.Funcs = append(c.out.Funcs, fc)
	}
	init, err := c.compileInit()
	if err != nil {
		return nil, err
	}
	c.out.Init = init
	for _, fn := range prog.FuncList {
		fc := c.fns[fn]
		if err := c.compileFunc(fc); err != nil {
			return nil, fmt.Errorf("ir: compiling %s: %w", fn.Name, err)
		}
	}
	c.out.Main = c.fns[prog.Main]
	if c.out.Main == nil {
		return nil, fmt.Errorf("ir: program has no main")
	}
	c.out.RInit, c.out.InitRegs = lower(c.out.Init)
	for _, fc := range c.out.Funcs {
		fc.RCode, fc.NumRegs = lower(fc.Code)
	}
	return c.out, nil
}

type compiler struct {
	prog *lang.Program
	out  *Program
	fns  map[*lang.FuncDecl]*FuncCode
	strs map[*lang.StrLit]int
}

// strIndex interns a string-literal site in the constant pool.
func (c *compiler) strIndex(s *lang.StrLit) int {
	if i, ok := c.strs[s]; ok {
		return i
	}
	i := len(c.out.Strings)
	c.strs[s] = i
	c.out.Strings = append(c.out.Strings, s.S)
	return i
}

// compileInit emits the global-initializer code: each initializer expression
// in declaration order, stored to its global. Matches the tree walker's
// initGlobals charge-for-charge (initializers charge only their expression
// nodes; there is no statement wrapper).
func (c *compiler) compileInit() ([]Instr, error) {
	fc := &funcCompiler{c: c}
	for i, g := range c.prog.Globals {
		if g.Init == nil {
			continue
		}
		if err := fc.compileExpr(g.Init); err != nil {
			return nil, fmt.Errorf("ir: compiling init of global %s: %w", g.Name, err)
		}
		fc.emit(Instr{Op: OpSetGlobal, A: int32(i)})
	}
	return fc.code, nil
}

func (c *compiler) compileFunc(fc *FuncCode) error {
	f := &funcCompiler{c: c}
	if err := f.compileStmt(fc.Decl.Body); err != nil {
		return err
	}
	// Fall-through function end: the tree walker returns integer 0 when the
	// body completes without a return statement. The trailing OpRetZero also
	// absorbs pending charges of empty trailing statements.
	f.emit(Instr{Op: OpRetZero})
	fc.Code = f.code
	return nil
}

// funcCompiler compiles one function body (or the init code).
type funcCompiler struct {
	c       *compiler
	code    []Instr
	pending int32
	loops   []loopCtx
}

type loopCtx struct {
	contTarget int // continue target; -1 when it is a forward label
	contSites  []int
	breakSites []int
}

// emit appends an instruction, attaching the pending step charges.
func (f *funcCompiler) emit(in Instr) int {
	in.Steps = f.pending
	f.pending = 0
	f.code = append(f.code, in)
	return len(f.code) - 1
}

// flush materializes pending charges as an OpNop so a label can be bound at
// the current position without leaking the fall-through edge's charges into
// other edges.
func (f *funcCompiler) flush() {
	if f.pending > 0 {
		f.emit(Instr{Op: OpNop})
	}
}

func (f *funcCompiler) here() int { return len(f.code) }

func (f *funcCompiler) patchA(idx, target int) { f.code[idx].A = int32(target) }
func (f *funcCompiler) patchB(idx, target int) { f.code[idx].B = int32(target) }

func (f *funcCompiler) compileStmt(s lang.Stmt) error {
	// One pre-order charge per statement execution, as in VM.execStmt.
	f.pending++
	switch st := s.(type) {
	case *lang.Block:
		for _, inner := range st.Stmts {
			if err := f.compileStmt(inner); err != nil {
				return err
			}
		}
		return nil

	case *lang.DeclStmt:
		d := st.Decl
		if d.IsArray {
			f.emit(Instr{Op: OpAllocArr, A: int32(d.Slot), Val: d.Size, Name: d.Name})
			return nil
		}
		if d.Init != nil {
			if err := f.compileExpr(d.Init); err != nil {
				return err
			}
			f.emit(Instr{Op: OpSetLocal, A: int32(d.Slot)})
			return nil
		}
		f.emit(Instr{Op: OpZeroLocal, A: int32(d.Slot)})
		return nil

	case *lang.ExprStmt:
		if err := f.compileExpr(st.E); err != nil {
			return err
		}
		f.emit(Instr{Op: OpPop})
		return nil

	case *lang.Return:
		if st.E != nil {
			if err := f.compileExpr(st.E); err != nil {
				return err
			}
			f.emit(Instr{Op: OpRet})
			return nil
		}
		f.emit(Instr{Op: OpRetZero})
		return nil

	case *lang.Break:
		if len(f.loops) == 0 {
			return fmt.Errorf("break outside loop at %s", st.Pos)
		}
		l := &f.loops[len(f.loops)-1]
		l.breakSites = append(l.breakSites, f.emit(Instr{Op: OpJump}))
		return nil

	case *lang.Continue:
		if len(f.loops) == 0 {
			return fmt.Errorf("continue outside loop at %s", st.Pos)
		}
		l := &f.loops[len(f.loops)-1]
		if l.contTarget >= 0 {
			f.emit(Instr{Op: OpJump, A: int32(l.contTarget)})
		} else {
			l.contSites = append(l.contSites, f.emit(Instr{Op: OpJump}))
		}
		return nil

	case *lang.If:
		if err := f.compileExpr(st.Cond); err != nil {
			return err
		}
		br := f.emit(Instr{Op: OpBranch, Site: st.Branch})
		f.patchA(br, f.here())
		if err := f.compileStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			j := f.emit(Instr{Op: OpJump}) // absorbs trailing then-charges
			f.patchB(br, f.here())
			if err := f.compileStmt(st.Else); err != nil {
				return err
			}
			f.flush() // trailing else-charges stay on the else edge
			f.patchA(j, f.here())
		} else {
			f.flush() // trailing then-charges stay on the then edge
			f.patchB(br, f.here())
		}
		return nil

	case *lang.While:
		f.flush() // the loop's own entry charge must not join the back-edge
		head := f.here()
		if err := f.compileExpr(st.Cond); err != nil {
			return err
		}
		br := f.emit(Instr{Op: OpBranch, Site: st.Branch})
		f.patchA(br, f.here())
		f.loops = append(f.loops, loopCtx{contTarget: head})
		if err := f.compileStmt(st.Body); err != nil {
			return err
		}
		f.emit(Instr{Op: OpJump, A: int32(head)}) // absorbs trailing body charges
		exit := f.here()
		f.patchB(br, exit)
		l := f.loops[len(f.loops)-1]
		f.loops = f.loops[:len(f.loops)-1]
		for _, site := range l.breakSites {
			f.patchA(site, exit)
		}
		return nil

	case *lang.For:
		if st.Init != nil {
			if err := f.compileStmt(st.Init); err != nil {
				return err
			}
		}
		f.flush() // entry edge: the For charge (and Init's, if it was empty)
		head := f.here()
		br := -1
		if st.Cond != nil {
			if err := f.compileExpr(st.Cond); err != nil {
				return err
			}
			br = f.emit(Instr{Op: OpBranch, Site: st.Branch})
			f.patchA(br, f.here())
		}
		f.loops = append(f.loops, loopCtx{contTarget: -1})
		if err := f.compileStmt(st.Body); err != nil {
			return err
		}
		f.flush() // trailing body charges happen on fall-through, not continue
		post := f.here()
		l := f.loops[len(f.loops)-1]
		f.loops = f.loops[:len(f.loops)-1]
		for _, site := range l.contSites {
			f.patchA(site, post)
		}
		if st.Post != nil {
			if err := f.compileStmt(st.Post); err != nil {
				return err
			}
		}
		f.emit(Instr{Op: OpJump, A: int32(head)})
		exit := f.here()
		if br >= 0 {
			f.patchB(br, exit)
		}
		for _, site := range l.breakSites {
			f.patchA(site, exit)
		}
		return nil
	}
	return fmt.Errorf("unknown statement %T", s)
}

func (f *funcCompiler) compileExpr(e lang.Expr) error {
	// One pre-order charge per expression evaluation, as in VM.eval.
	f.pending++
	switch x := e.(type) {
	case *lang.IntLit:
		f.emit(Instr{Op: OpConst, Val: x.V})
		return nil

	case *lang.StrLit:
		f.emit(Instr{Op: OpStr, A: int32(f.c.strIndex(x))})
		return nil

	case *lang.Ident:
		d := x.Decl
		switch {
		case d.Global && d.IsArray:
			f.emit(Instr{Op: OpGlobalPtr, A: int32(d.Slot)})
		case d.Global:
			f.emit(Instr{Op: OpLoadGlobal, A: int32(d.Slot)})
		default:
			f.emit(Instr{Op: OpLoadLocal, A: int32(d.Slot)})
		}
		return nil

	case *lang.Unary:
		if err := f.compileExpr(x.X); err != nil {
			return err
		}
		f.emit(Instr{Op: OpUnary, Kind: x.Op, Pos: x.Pos})
		return nil

	case *lang.Binary:
		if err := f.compileExpr(x.L); err != nil {
			return err
		}
		if err := f.compileExpr(x.R); err != nil {
			return err
		}
		f.emit(Instr{Op: OpBinary, Kind: x.Op, Pos: x.Pos})
		return nil

	case *lang.Logic:
		if err := f.compileExpr(x.L); err != nil {
			return err
		}
		sc := f.emit(Instr{Op: OpShortCircuit, Kind: x.Op, Site: x.Branch})
		if err := f.compileExpr(x.R); err != nil {
			return err
		}
		f.emit(Instr{Op: OpBool})
		f.patchA(sc, f.here())
		return nil

	case *lang.Assign:
		return f.compileAssign(x)

	case *lang.IncDec:
		delta := int64(1)
		if x.Op == lang.MINUSMIN {
			delta = -1
		}
		if id, ok := x.X.(*lang.Ident); ok && !id.Decl.Global && !id.Decl.IsArray {
			f.emit(Instr{Op: OpIncLocal, A: int32(id.Decl.Slot), Val: delta})
			return nil
		}
		if err := f.compileLValue(x.X); err != nil {
			return err
		}
		f.emit(Instr{Op: OpIncCell, Val: delta})
		return nil

	case *lang.Call:
		for _, a := range x.Args {
			if err := f.compileExpr(a); err != nil {
				return err
			}
		}
		if x.Func != nil {
			f.emit(Instr{Op: OpCall, Fn: f.c.fns[x.Func], B: int32(len(x.Args))})
			return nil
		}
		f.emit(Instr{Op: OpCallB, Name: x.Name, B: int32(len(x.Args)), Pos: x.Pos})
		return nil

	case *lang.Index:
		if err := f.compileExpr(x.Base); err != nil {
			return err
		}
		if err := f.compileExpr(x.Idx); err != nil {
			return err
		}
		f.emit(Instr{Op: OpLoadIndex, Pos: x.Pos})
		return nil

	case *lang.AddrOf:
		// The tree walker charges the AddrOf node, then resolves the lvalue
		// (whose own node is not charged); the address is the value.
		return f.compileLValue(x.X)

	case *lang.Deref:
		if err := f.compileExpr(x.X); err != nil {
			return err
		}
		f.emit(Instr{Op: OpLoadDeref, Pos: x.Pos})
		return nil
	}
	return fmt.Errorf("unknown expression %T", e)
}

// compileLValue emits code pushing the cell address an assignable expression
// designates. The lvalue node itself is not step-charged (VM.lvalue has no
// step call); only subexpressions evaluated on the way are.
func (f *funcCompiler) compileLValue(e lang.Expr) error {
	switch x := e.(type) {
	case *lang.Ident:
		d := x.Decl
		switch {
		case d.IsArray && !d.Global:
			f.emit(Instr{Op: OpAddrLocalArr, A: int32(d.Slot), Pos: x.Pos})
		case d.Global:
			f.emit(Instr{Op: OpGlobalPtr, A: int32(d.Slot)})
		default:
			f.emit(Instr{Op: OpAddrLocal, A: int32(d.Slot)})
		}
		return nil
	case *lang.Index:
		if err := f.compileExpr(x.Base); err != nil {
			return err
		}
		if err := f.compileExpr(x.Idx); err != nil {
			return err
		}
		f.emit(Instr{Op: OpAddrIndex, Pos: x.Pos})
		return nil
	case *lang.Deref:
		if err := f.compileExpr(x.X); err != nil {
			return err
		}
		f.emit(Instr{Op: OpAddrDeref, Pos: x.Pos})
		return nil
	}
	return fmt.Errorf("not an lvalue: %T", e)
}

func (f *funcCompiler) compileAssign(x *lang.Assign) error {
	// Evaluation order matches VM.evalAssign: RHS first, then the lvalue.
	if err := f.compileExpr(x.RHS); err != nil {
		return err
	}
	if x.Op == lang.ASSIGN {
		if id, ok := x.LHS.(*lang.Ident); ok && !id.Decl.IsArray {
			if id.Decl.Global {
				f.emit(Instr{Op: OpStoreGlobal, A: int32(id.Decl.Slot)})
			} else {
				f.emit(Instr{Op: OpStoreLocal, A: int32(id.Decl.Slot)})
			}
			return nil
		}
		if err := f.compileLValue(x.LHS); err != nil {
			return err
		}
		f.emit(Instr{Op: OpStoreCell})
		return nil
	}
	op, err := vm.CompoundOp(x.Op)
	if err != nil {
		return err
	}
	if id, ok := x.LHS.(*lang.Ident); ok && !id.Decl.IsArray {
		if id.Decl.Global {
			f.emit(Instr{Op: OpStoreGlobalOp, A: int32(id.Decl.Slot), Kind: op, Pos: x.Pos})
		} else {
			f.emit(Instr{Op: OpStoreLocalOp, A: int32(id.Decl.Slot), Kind: op, Pos: x.Pos})
		}
		return nil
	}
	if err := f.compileLValue(x.LHS); err != nil {
		return err
	}
	f.emit(Instr{Op: OpStoreCellOp, Kind: op, Pos: x.Pos})
	return nil
}
