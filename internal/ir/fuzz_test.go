package ir_test

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"pathlog/internal/ir"
	"pathlog/internal/lang"
	"pathlog/internal/oskernel"
	"pathlog/internal/vm"
)

// This file is the generative arm of the differential harness: a seeded
// deterministic MiniC program generator drives tree-vs-bytecode execution
// over program shapes nobody thought to hand-write. Every generated program
// is syntactically valid by construction (the generator only emits declared
// names), may crash or loop forever (both engines must then agree on the
// crash site or the budget trip), and is replayed at a reduced step budget to
// probe the fused instructions' charge schedule at arbitrary cut points.
//
// FuzzEngineParity is the open-ended fuzz entry (seed corpus committed under
// testdata/fuzz); TestGenParityFixedSeeds pins a deterministic slice of the
// same space for every CI run.

// genRand is a splitmix64 generator. The fuzzer's interesting inputs are
// remembered as raw seeds, so the stream behind a seed must never change;
// rolling our own keeps the mapping independent of math/rand's evolution.
type genRand struct{ s uint64 }

func (r *genRand) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// n returns a value in [0, n).
func (r *genRand) n(n int) int { return int(r.next() % uint64(n)) }

// pct reports true with the given percent probability.
func (r *genRand) pct(p int) bool { return r.n(100) < p }

// genProg holds the generator state for one program.
type genProg struct {
	r       *genRand
	b       strings.Builder
	globals []string // scalar global names
	arrays  []genArr // global + local arrays in scope
	locals  []string // assignable locals in scope
	frozen  map[string]bool
	funcs   []string // helper functions defined so far (callable)
	depth   int
}

type genArr struct {
	name string
	size int
}

// generate renders a complete MiniC unit from the seed.
func generate(seed uint64) string {
	g := &genProg{r: &genRand{s: seed}, frozen: map[string]bool{}}

	ng := 1 + g.r.n(3)
	for i := 0; i < ng; i++ {
		name := fmt.Sprintf("g%d", i)
		g.globals = append(g.globals, name)
		if g.r.pct(50) {
			fmt.Fprintf(&g.b, "int %s = %d;\n", name, g.r.n(20)-5)
		} else {
			fmt.Fprintf(&g.b, "int %s;\n", name)
		}
	}
	na := g.r.n(3)
	for i := 0; i < na; i++ {
		a := genArr{name: fmt.Sprintf("ga%d", i), size: 2 + g.r.n(7)}
		g.arrays = append(g.arrays, a)
		fmt.Fprintf(&g.b, "int %s[%d];\n", a.name, a.size)
	}

	nf := g.r.n(3)
	for i := 0; i < nf; i++ {
		g.genHelper(fmt.Sprintf("f%d", i))
	}

	g.b.WriteString("int main() {\n")
	nl := 2 + g.r.n(3)
	for i := 0; i < nl; i++ {
		name := fmt.Sprintf("v%d", i)
		g.locals = append(g.locals, name)
		fmt.Fprintf(&g.b, "\tint %s = %d;\n", name, g.r.n(10))
	}
	if g.r.pct(40) {
		a := genArr{name: "la", size: 2 + g.r.n(5)}
		g.arrays = append(g.arrays, a)
		fmt.Fprintf(&g.b, "\tint %s[%d];\n", a.name, a.size)
	}
	ns := 3 + g.r.n(6)
	for i := 0; i < ns; i++ {
		g.stmt(1)
	}
	fmt.Fprintf(&g.b, "\texit(%s);\n\treturn 0;\n}\n", g.expr(0))
	return g.b.String()
}

// genHelper emits one two-parameter helper whose body uses only its
// parameters and the globals, so it is valid regardless of main's locals.
func (g *genProg) genHelper(name string) {
	savedLocals, savedArrays := g.locals, g.arrays
	g.locals = []string{"a", "b"}
	g.arrays = nil // helper bodies index global arrays only
	for _, a := range savedArrays {
		if strings.HasPrefix(a.name, "ga") {
			g.arrays = append(g.arrays, a)
		}
	}
	fmt.Fprintf(&g.b, "int %s(int a, int b) {\n", name)
	ns := 1 + g.r.n(3)
	for i := 0; i < ns; i++ {
		g.stmt(1)
	}
	fmt.Fprintf(&g.b, "\treturn %s;\n}\n", g.expr(0))
	g.locals, g.arrays = savedLocals, savedArrays
	g.funcs = append(g.funcs, name)
}

// lvalue picks an assignable scalar: a free local or a global.
func (g *genProg) lvalue() string {
	for tries := 0; tries < 4; tries++ {
		pool := len(g.locals) + len(g.globals)
		k := g.r.n(pool)
		var name string
		if k < len(g.locals) {
			name = g.locals[k]
		} else {
			name = g.globals[k-len(g.locals)]
		}
		if !g.frozen[name] {
			return name
		}
	}
	return g.globals[0]
}

// indexExpr renders an array subscript. Indexes are almost always reduced
// into range; the rare raw index exercises bounds-check crash parity.
func (g *genProg) indexExpr(a genArr) string {
	if g.r.pct(8) {
		return fmt.Sprintf("%s[%s]", a.name, g.expr(2))
	}
	// Double mod keeps the index in range even for negative operands
	// (MiniC % truncates toward zero, like C).
	return fmt.Sprintf("%s[((%s) %% %d + %d) %% %d]", a.name, g.expr(2), a.size, a.size, a.size)
}

var binOps = []string{"+", "-", "*", "/", "%", "<", "<=", ">", ">=", "==", "!=", "&&", "||", "&", "|", "^", "<<", ">>"}

// expr renders an integer expression with bounded depth.
func (g *genProg) expr(depth int) string {
	if depth >= 3 || g.r.pct(30) {
		switch g.r.n(4) {
		case 0:
			return fmt.Sprintf("%d", g.r.n(40)-10)
		case 1:
			return g.locals[g.r.n(len(g.locals))]
		case 2:
			return g.globals[g.r.n(len(g.globals))]
		default:
			if len(g.arrays) > 0 {
				return g.indexExpr(g.arrays[g.r.n(len(g.arrays))])
			}
			return g.locals[g.r.n(len(g.locals))]
		}
	}
	switch g.r.n(8) {
	case 0:
		op := []string{"-", "!", "~"}[g.r.n(3)]
		return fmt.Sprintf("%s(%s)", op, g.expr(depth+1))
	case 1:
		if len(g.funcs) > 0 {
			fn := g.funcs[g.r.n(len(g.funcs))]
			return fmt.Sprintf("%s(%s, %s)", fn, g.expr(depth+1), g.expr(depth+1))
		}
		fallthrough
	default:
		op := binOps[g.r.n(len(binOps))]
		l, rhs := g.expr(depth+1), g.expr(depth+1)
		if op == "/" || op == "%" {
			// Bias toward defined division; the unguarded rest probes
			// divide-by-zero crash parity.
			if g.r.pct(80) {
				rhs = fmt.Sprintf("((%s) | 1)", rhs)
			}
		}
		if op == "<<" || op == ">>" {
			rhs = fmt.Sprintf("((%s) & 7)", rhs)
		}
		return fmt.Sprintf("(%s %s %s)", l, op, rhs)
	}
}

// cond renders a branch condition (any int expression works; comparisons
// dominate so RCmpBranch fusion is on the common path).
func (g *genProg) cond() string {
	if g.r.pct(70) {
		op := []string{"<", "<=", ">", ">=", "==", "!="}[g.r.n(6)]
		return fmt.Sprintf("%s %s %s", g.expr(1), op, g.expr(1))
	}
	return g.expr(1)
}

// stmt renders one statement at the given indent depth.
func (g *genProg) stmt(ind int) {
	tab := strings.Repeat("\t", ind)
	if g.depth >= 3 { // too deep: simple statement only
		fmt.Fprintf(&g.b, "%s%s = %s;\n", tab, g.lvalue(), g.expr(0))
		return
	}
	switch g.r.n(10) {
	case 0, 1:
		fmt.Fprintf(&g.b, "%s%s = %s;\n", tab, g.lvalue(), g.expr(0))
	case 2:
		op := []string{"+=", "-=", "*=", "/=", "%="}[g.r.n(5)]
		rhs := g.expr(1)
		if op == "/=" || op == "%=" {
			rhs = fmt.Sprintf("(%s) | 1", rhs)
		}
		fmt.Fprintf(&g.b, "%s%s %s %s;\n", tab, g.lvalue(), op, rhs)
	case 3:
		if g.r.pct(50) {
			fmt.Fprintf(&g.b, "%s%s++;\n", tab, g.lvalue())
		} else {
			fmt.Fprintf(&g.b, "%s%s--;\n", tab, g.lvalue())
		}
	case 4:
		if len(g.arrays) > 0 {
			a := g.arrays[g.r.n(len(g.arrays))]
			if g.r.pct(30) {
				fmt.Fprintf(&g.b, "%s%s += %s;\n", tab, g.indexExpr(a), g.expr(1))
			} else {
				fmt.Fprintf(&g.b, "%s%s = %s;\n", tab, g.indexExpr(a), g.expr(1))
			}
		} else {
			fmt.Fprintf(&g.b, "%s%s = %s;\n", tab, g.lvalue(), g.expr(0))
		}
	case 5, 6:
		g.depth++
		fmt.Fprintf(&g.b, "%sif (%s) {\n", tab, g.cond())
		g.stmt(ind + 1)
		if g.r.pct(40) {
			fmt.Fprintf(&g.b, "%s} else {\n", tab)
			g.stmt(ind + 1)
		}
		fmt.Fprintf(&g.b, "%s}\n", tab)
		g.depth--
	case 7:
		// Counted loop over a frozen induction variable; the body cannot
		// reassign it, so termination is structural.
		iv := g.lvalue()
		if g.frozen[iv] {
			fmt.Fprintf(&g.b, "%s%s = %s;\n", tab, g.lvalue(), g.expr(0))
			return
		}
		g.depth++
		g.frozen[iv] = true
		fmt.Fprintf(&g.b, "%sfor (%s = 0; %s < %d; %s++) {\n", tab, iv, iv, 2+g.r.n(6), iv)
		for k := 1 + g.r.n(2); k > 0; k-- {
			g.stmt(ind + 1)
		}
		if g.r.pct(25) {
			if g.r.pct(50) {
				fmt.Fprintf(&g.b, "%s\tif (%s) { break; }\n", tab, g.cond())
			} else {
				fmt.Fprintf(&g.b, "%s\tif (%s) { continue; }\n", tab, g.cond())
			}
		}
		fmt.Fprintf(&g.b, "%s}\n", tab)
		delete(g.frozen, iv)
		g.depth--
	case 8:
		fmt.Fprintf(&g.b, "%sprint_int(%s);\n", tab, g.expr(1))
	case 9:
		if len(g.funcs) > 0 {
			fn := g.funcs[g.r.n(len(g.funcs))]
			fmt.Fprintf(&g.b, "%s%s = %s(%s, %s);\n", tab, g.lvalue(), fn, g.expr(1), g.expr(1))
		} else {
			fmt.Fprintf(&g.b, "%s%s = %s;\n", tab, g.lvalue(), g.expr(0))
		}
	}
}

// fuzzBudget bounds every generated run; generated while-free loops terminate
// structurally but total cost is unbounded, and budget trips are themselves a
// parity obligation.
const fuzzBudget = 4000

// checkSeedParity generates the program for seed and asserts engine parity at
// the full budget and at a pseudo-random cut point inside the run, which
// lands budget trips in the middle of fused charge batches.
func checkSeedParity(t *testing.T, seed uint64) {
	t.Helper()
	src := generate(seed)
	u, err := lang.ParseUnit("fuzz.mc", lang.RegionApp, src)
	if err != nil {
		t.Fatalf("seed %d: generator emitted invalid MiniC: %v\n%s", seed, err, src)
	}
	prog, err := lang.Link([]*lang.Unit{u})
	if err != nil {
		t.Fatalf("seed %d: link: %v\n%s", seed, err, src)
	}
	cfg := oskernel.Config{}
	fullSteps := fuzzParity(t, seed, src, prog, cfg, fuzzBudget)
	if fullSteps > 1 {
		cut := 1 + int64(seed%uint64(fullSteps))
		fuzzParity(t, seed, src, prog, cfg, cut)
	}
}

// fuzzParity runs prog under both engines at the given budget and requires
// identical results, branch traces and syscall counts; it returns the step
// count for cut-point derivation.
func fuzzParity(t *testing.T, seed uint64, src string, prog *lang.Program, cfg oskernel.Config, budget int64) int64 {
	t.Helper()
	tRes, tErr, tTrace, tSys := runEngine(t, vm.TreeFactory, prog, cfg, budget)
	bRes, bErr, bTrace, bSys := runEngine(t, ir.Engine, prog, cfg, budget)
	if (tErr == nil) != (bErr == nil) {
		t.Fatalf("seed %d budget %d: error parity: tree=%v bytecode=%v\n%s", seed, budget, tErr, bErr, src)
	}
	if tErr != nil {
		if tErr.Error() != bErr.Error() {
			t.Fatalf("seed %d budget %d: error text: tree=%v bytecode=%v\n%s", seed, budget, tErr, bErr, src)
		}
		return 0
	}
	if !reflect.DeepEqual(tRes, bRes) {
		t.Fatalf("seed %d budget %d: result parity:\ntree:     %+v\nbytecode: %+v\n%s", seed, budget, tRes, bRes, src)
	}
	if !reflect.DeepEqual(tTrace, bTrace) {
		t.Fatalf("seed %d budget %d: trace parity (%d vs %d events)\n%s", seed, budget, len(tTrace), len(bTrace), src)
	}
	if tSys != bSys {
		t.Fatalf("seed %d budget %d: syscall count parity: tree=%d bytecode=%d\n%s", seed, budget, tSys, bSys, src)
	}
	return tRes.Steps
}

// FuzzEngineParity is the open-ended differential fuzzer. The input is a
// generator seed, not program text, so every mutation the fuzzer tries is a
// valid program and coverage feedback steers the seed space.
func FuzzEngineParity(f *testing.F) {
	for _, seed := range []uint64{0, 1, 7, 42, 1337, 99991, 1 << 32, 0xDEADBEEF} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		checkSeedParity(t, seed)
	})
}

// TestGenParityFixedSeeds is the deterministic CI slice of the fuzz space:
// the same 256 seeds every run, so a parity regression in generated-program
// territory fails the ordinary test suite without a fuzzing engine.
func TestGenParityFixedSeeds(t *testing.T) {
	for seed := uint64(0); seed < 256; seed++ {
		checkSeedParity(t, seed)
	}
}
