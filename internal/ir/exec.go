package ir

import (
	"fmt"

	"pathlog/internal/lang"
	"pathlog/internal/sym"
	"pathlog/internal/vm"
)

// machine executes one compiled program's register code in a dispatch loop.
// Create one per run (Engine does). All value, operator, builtin and
// termination semantics are shared with the tree walker through internal/vm,
// which is what keeps the two engines bit-for-bit interchangeable.
type machine struct {
	prog *Program
	opts vm.Options
	host vm.Host

	globals []*vm.Object
	strings []*vm.Object // lazily interned, indexed by string-pool slot
	arena   *vm.ObjectArena
	rf      []vm.Value // register file; each live call owns a window

	// rec is non-nil only while the search's seed run records the linear
	// trace (see trace.go).
	rec *traceRecorder

	steps       int64
	maxSteps    int64
	branchExecs int64
	depth       int
	maxDepth    int
}

// newMachine builds a machine for one run, applying the same option defaults
// as vm.New.
func newMachine(p *Program, opts vm.Options) *machine {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = vm.DefaultMaxSteps
	}
	if opts.MaxCallDepth <= 0 {
		opts.MaxCallDepth = vm.DefaultMaxCallDepth
	}
	return &machine{
		prog:     p,
		opts:     opts,
		host:     vm.Host{Kernel: opts.Kernel, World: opts.World},
		maxSteps: opts.MaxSteps,
		maxDepth: opts.MaxCallDepth,
	}
}

// Run implements vm.Machine.
func (m *machine) Run() (vm.Result, error) {
	// Objects live exactly as long as the run: nothing downstream retains
	// them (sinks keep sym.Expr constraints, the kernel exchanges bytes,
	// results carry scalars), so the arena is released once the result is
	// assembled and its slabs are recycled for the next run.
	m.arena = vm.GetArena()
	err := m.run()
	res, ferr := vm.Finish(m.steps, m.branchExecs, m.opts.Kernel.Stdout(), err)
	a := m.arena
	m.arena, m.globals, m.strings, m.rf = nil, nil, nil, nil
	a.Release()
	return res, ferr
}

// rfSeed is the initial register-file capacity; it covers the whole call
// tree of typical programs, so growRF is the rare path.
const rfSeed = 256

func (m *machine) run() error {
	src := m.prog.Src
	m.globals = make([]*vm.Object, len(src.Globals))
	for i, g := range src.Globals {
		size := int64(1)
		if g.IsArray {
			size = g.Size
		}
		m.globals[i] = m.arena.NewObject(g.Name, size)
	}
	m.strings = make([]*vm.Object, len(m.prog.Strings))
	m.rf = m.arena.Scratch(rfSeed)[0:rfSeed:rfSeed]
	if len(m.prog.RInit) > 0 {
		if err := m.exec(m.prog.RInit, nil, m.prog.InitRegs); err != nil {
			return err
		}
	}
	main := m.prog.Main
	frame := m.arena.NewObject(main.FrameName, int64(main.Decl.NumSlots))
	m.depth++
	if m.depth > m.maxDepth {
		return vm.CrashError(vm.CrashStackOverflow, main.Decl.Pos, 0)
	}
	if c := m.opts.Cache; c != nil {
		// Linear-trace replay fast path: the search's seed run records its
		// instruction sequence, every later run replays the straight line
		// with branch guards until first divergence (trace.go).
		if t, _ := c.Load().(*linearTrace); t != nil {
			return m.runTraced(t, frame, main.NumRegs)
		}
		m.rec = newTraceRecorder()
		err := m.exec(main.RCode, frame, main.NumRegs)
		c.Store(m.rec.finish())
		m.rec = nil
		return err
	}
	return m.exec(main.RCode, frame, main.NumRegs)
}

// growRF reallocates the register file to hold at least n values, preserving
// every live call window.
func (m *machine) growRF(n int) {
	nn := len(m.rf) * 2
	if nn < n {
		nn = n
	}
	nrf := make([]vm.Value, nn)
	copy(nrf, m.rf)
	m.rf = nrf
}

// callFrame is a suspended caller.
type callFrame struct {
	code  []RInstr
	frame *vm.Object
	pc    int32
	base  int32 // caller's register window start in m.rf
	nregs int32 // caller's register window size
	dst   int32 // register receiving the return value; -1 discards it
}

// fetch resolves one moded operand. Every mode is pure: no crash, no
// observation, no step charge (fusion legality depends on this).
func (m *machine) fetch(mode SrcMode, x int32, regs []vm.Value, frame *vm.Object) vm.Value {
	switch mode {
	case SrcReg:
		return regs[x]
	case SrcLocal:
		return frame.Cells[x]
	case SrcGlobal:
		return m.globals[x].Cells[0]
	case SrcConst:
		return vm.IntValue(int64(x))
	case SrcGPtr:
		return vm.PtrValue(m.globals[x], 0)
	default: // SrcLAddr
		return vm.PtrValue(frame, int64(x))
	}
}

// execState is a resumable position in the general dispatch loop. exec
// starts one at a function entry; the linear-trace fast path builds one
// mid-run when the trace diverges or ends (trace.go).
type execState struct {
	code  []RInstr
	pc    int
	frame *vm.Object
	base  int32
	nregs int32
	calls []callFrame
}

// exec runs register code to termination. Function code always terminates
// through RRet/RRetZero (returning from the entry function ends the run as
// exit(0), like the tree walker's Run); the global init code instead falls
// off the end of its instruction array and returns nil.
func (m *machine) exec(code []RInstr, frame *vm.Object, nregs int) error {
	return m.loop(&execState{code: code, frame: frame, nregs: int32(nregs)})
}

// loop is the general dispatch loop, resumable from any execState.
func (m *machine) loop(st *execState) error {
	var (
		code  = st.code
		pc    = st.pc
		frame = st.frame
		base  = st.base
		calls = st.calls
	)
	if int(base)+int(st.nregs) > len(m.rf) {
		m.growRF(int(base) + int(st.nregs))
	}
	regs := m.rf[base : base+st.nregs]
	for {
		if pc >= len(code) {
			if len(calls) != 0 {
				return fmt.Errorf("ir: fell off code end with %d frames live", len(calls))
			}
			return nil // init code completes by falling off the end
		}
		in := &code[pc]
		if m.rec != nil {
			m.rec.note(pc, in)
		}
		pc++
		if in.Steps != 0 {
			// The same pre-order charges the tree walker applies, batched
			// (over both an instruction's subtree prefix and its fused
			// constituents). The walker trips the budget at the single step
			// that crosses it, so a batch that crosses clamps to maxSteps+1
			// with none of this instruction's effects applied.
			s := m.steps + int64(in.Steps)
			if s > m.maxSteps {
				m.steps = m.maxSteps + 1
				return vm.BudgetError()
			}
			m.steps = s
		}
		switch in.Op {
		case RNop:

		case RConst:
			regs[in.Dst] = vm.IntValue(in.Val)

		case RStr:
			o := m.strings[in.A]
			if o == nil {
				s := m.prog.Strings[in.A]
				o = m.arena.NewObject("str", int64(len(s))+1)
				o.StoreBytes(0, []byte(s))
				m.strings[in.A] = o
			}
			regs[in.Dst] = vm.PtrValue(o, 0)

		case RLoadLocal:
			regs[in.Dst] = frame.Cells[in.A]

		case RLoadGlobal:
			regs[in.Dst] = m.globals[in.A].Cells[0]

		case RGlobalPtr:
			regs[in.Dst] = vm.PtrValue(m.globals[in.A], 0)

		case RAddrLocal:
			regs[in.Dst] = vm.PtrValue(frame, int64(in.A))

		case RAddrLocalArr:
			av := frame.Cells[in.A]
			if av.K != vm.KPtr || av.Obj == nil {
				return vm.CrashError(vm.CrashNullDeref, in.Pos, 0)
			}
			regs[in.Dst] = vm.PtrValue(av.Obj, av.Off)

		case RAddrIndex:
			obj, off, err := vm.IndexCell(m.fetch(in.AM, in.A, regs, frame), m.fetch(in.BM, in.B, regs, frame), in.Pos)
			if err != nil {
				return err
			}
			regs[in.Dst] = vm.PtrValue(obj, off)

		case RAddrDeref:
			v := regs[in.A]
			if v.K != vm.KPtr || v.Obj == nil {
				return vm.CrashError(vm.CrashNullDeref, in.Pos, 0)
			}
			if !v.Obj.In(v.Off) {
				return vm.CrashError(vm.CrashOOB, in.Pos, 0)
			}
			regs[in.Dst] = vm.PtrValue(v.Obj, v.Off)

		case RLoadIndex:
			obj, off, err := vm.IndexCell(m.fetch(in.AM, in.A, regs, frame), m.fetch(in.BM, in.B, regs, frame), in.Pos)
			if err != nil {
				return err
			}
			regs[in.Dst] = obj.Cells[off]

		case RLoadDeref:
			v := regs[in.A]
			if v.K != vm.KPtr || v.Obj == nil {
				return vm.CrashError(vm.CrashNullDeref, in.Pos, 0)
			}
			if !v.Obj.In(v.Off) {
				return vm.CrashError(vm.CrashOOB, in.Pos, 0)
			}
			regs[in.Dst] = v.Obj.Cells[v.Off]

		case RStoreLocal:
			frame.Cells[in.A] = m.fetch(in.BM, in.B, regs, frame)

		case RStoreGlobal:
			m.globals[in.A].Cells[0] = m.fetch(in.BM, in.B, regs, frame)

		case RStoreCell:
			addr := regs[in.A]
			addr.Obj.Cells[addr.Off] = m.fetch(in.BM, in.B, regs, frame)

		case RStoreLocalOp:
			nv, err := vm.BinOp(in.Kind, frame.Cells[in.A], m.fetch(in.BM, in.B, regs, frame), in.Pos)
			if err != nil {
				return err
			}
			frame.Cells[in.A] = nv
			if in.Dst >= 0 {
				regs[in.Dst] = nv
			}

		case RStoreGlobalOp:
			g := m.globals[in.A]
			nv, err := vm.BinOp(in.Kind, g.Cells[0], m.fetch(in.BM, in.B, regs, frame), in.Pos)
			if err != nil {
				return err
			}
			g.Cells[0] = nv
			if in.Dst >= 0 {
				regs[in.Dst] = nv
			}

		case RStoreCellOp:
			addr := regs[in.A]
			nv, err := vm.BinOp(in.Kind, addr.Obj.Cells[addr.Off], m.fetch(in.BM, in.B, regs, frame), in.Pos)
			if err != nil {
				return err
			}
			addr.Obj.Cells[addr.Off] = nv
			if in.Dst >= 0 {
				regs[in.Dst] = nv
			}

		case RZeroLocal:
			frame.Cells[in.A] = vm.IntValue(0)

		case RAllocArr:
			frame.Cells[in.A] = vm.PtrValue(m.arena.NewObject(in.Name, in.Val), 0)

		case RIncLocal:
			old := frame.Cells[in.A]
			frame.Cells[in.A] = incValue(old, in.Val)
			if in.Dst >= 0 {
				regs[in.Dst] = old
			}

		case RIncCell:
			addr := regs[in.A]
			old := addr.Obj.Cells[addr.Off]
			addr.Obj.Cells[addr.Off] = incValue(old, in.Val)
			if in.Dst >= 0 {
				regs[in.Dst] = old
			}

		case RIncIndex:
			obj, off, err := vm.IndexCell(m.fetch(in.AM, in.A, regs, frame), m.fetch(in.BM, in.B, regs, frame), in.Pos)
			if err != nil {
				return err
			}
			old := obj.Cells[off]
			obj.Cells[off] = incValue(old, in.Val)
			if in.Dst >= 0 {
				regs[in.Dst] = old
			}

		case RUnary:
			v, err := vm.UnaryOp(in.Kind, m.fetch(in.AM, in.A, regs, frame), in.Pos)
			if err != nil {
				return err
			}
			regs[in.Dst] = v

		case RBinary:
			l := m.fetch(in.AM, in.A, regs, frame)
			r := m.fetch(in.BM, in.B, regs, frame)
			if l.K == vm.KInt && l.Sym == nil && r.K == vm.KInt && r.Sym == nil {
				// All-concrete fast path; div-by-zero and unknown kinds
				// decline and take the full BinOp crash/error path below.
				if cv, ok := vm.ConcreteBin(in.Kind, l.I, r.I); ok {
					regs[in.Dst] = vm.IntValue(cv)
					break
				}
			}
			v, err := vm.BinOp(in.Kind, l, r, in.Pos)
			if err != nil {
				return err
			}
			regs[in.Dst] = v

		case RBinStoreLocal:
			v, err := m.binValue(in, regs, frame)
			if err != nil {
				return err
			}
			frame.Cells[in.C] = v
			regs[in.Dst] = v

		case RBinStoreGlobal:
			v, err := m.binValue(in, regs, frame)
			if err != nil {
				return err
			}
			m.globals[in.C].Cells[0] = v
			regs[in.Dst] = v

		case RStoreIndex:
			obj, off, err := vm.IndexCell(m.fetch(in.AM, in.A, regs, frame), m.fetch(in.BM, in.B, regs, frame), in.Pos)
			if err != nil {
				return err
			}
			obj.Cells[off] = m.fetch(in.CM, in.C, regs, frame)

		case RBool:
			regs[in.Dst] = vm.BoolValue(m.fetch(in.AM, in.A, regs, frame))

		case RShortCircuit:
			l := m.fetch(in.AM, in.A, regs, frame)
			lTrue := l.Truthy()
			if err := m.branch(in.Site, l, lTrue); err != nil {
				return err
			}
			if in.Kind == lang.ANDAND {
				if !lTrue {
					regs[in.Dst] = vm.SymValue(0, vm.BoolExpr(l))
					pc = int(in.C)
				}
			} else if lTrue {
				regs[in.Dst] = vm.SymValue(1, vm.BoolExpr(l))
				pc = int(in.C)
			}

		case RBranch:
			cond := m.fetch(in.AM, in.A, regs, frame)
			taken := cond.Truthy()
			if err := m.branch(in.Site, cond, taken); err != nil {
				return err
			}
			if taken {
				pc = int(in.B)
			} else {
				pc = int(in.C)
			}

		case RCmpBranch:
			cond, err := m.binValue(in, regs, frame)
			if err != nil {
				return err
			}
			taken := cond.Truthy()
			if err := m.branch(in.Site, cond, taken); err != nil {
				return err
			}
			if taken {
				pc = int(in.C)
			} else {
				pc = int(in.Val)
			}

		case RJump:
			pc = int(in.A)

		case RCall:
			fn := in.Fn
			callee := m.arena.NewObject(fn.FrameName, int64(fn.Decl.NumSlots))
			copy(callee.Cells, regs[in.A:in.A+in.B])
			m.depth++
			if m.depth > m.maxDepth {
				return vm.CrashError(vm.CrashStackOverflow, fn.Decl.Pos, 0)
			}
			calls = append(calls, callFrame{
				code: code, frame: frame, pc: int32(pc),
				base: base, nregs: int32(len(regs)), dst: in.Dst,
			})
			base += int32(len(regs))
			if int(base)+fn.NumRegs > len(m.rf) {
				m.growRF(int(base) + fn.NumRegs)
			}
			code, pc, frame = fn.RCode, 0, callee
			regs = m.rf[base : int(base)+fn.NumRegs]

		case RCallB:
			v, err := m.host.Call(in.Name, in.Pos, regs[in.A:in.A+in.B])
			if err != nil {
				return err
			}
			regs[in.Dst] = v

		case RRet, RRetZero:
			v := vm.IntValue(0)
			if in.Op == RRet {
				v = m.fetch(in.AM, in.A, regs, frame)
			}
			m.depth--
			if len(calls) == 0 {
				// Returning from the entry function: the program's return
				// value is discarded and the run exits 0, as in VM.Run.
				return vm.ExitError(0)
			}
			cf := calls[len(calls)-1]
			calls = calls[:len(calls)-1]
			code, pc, frame, base = cf.code, int(cf.pc), cf.frame, cf.base
			regs = m.rf[base : base+cf.nregs]
			if cf.dst >= 0 {
				regs[cf.dst] = v
			}

		default:
			return fmt.Errorf("ir: unknown opcode %v", in.Op)
		}
	}
}

// binValue evaluates the binary-operator half of RBinary-derived fused
// instructions, with the same all-concrete fast path as RBinary.
func (m *machine) binValue(in *RInstr, regs []vm.Value, frame *vm.Object) (vm.Value, error) {
	l := m.fetch(in.AM, in.A, regs, frame)
	r := m.fetch(in.BM, in.B, regs, frame)
	if l.K == vm.KInt && l.Sym == nil && r.K == vm.KInt && r.Sym == nil {
		if cv, ok := vm.ConcreteBin(in.Kind, l.I, r.I); ok {
			return vm.IntValue(cv), nil
		}
	}
	return vm.BinOp(in.Kind, l, r, in.Pos)
}

// incValue applies x++/x-- to a cell value with the tree walker's rules:
// pointers move by delta cells; integers add delta, extending the symbolic
// expression only when one is present.
func incValue(old vm.Value, delta int64) vm.Value {
	if old.K == vm.KPtr {
		return vm.PtrValue(old.Obj, old.Off+delta)
	}
	var se sym.Expr
	if old.Sym != nil {
		op := sym.OpAdd
		if delta < 0 {
			op = sym.OpSub
		}
		se = sym.NewBin(op, old.Sym, sym.One)
	}
	return vm.SymValue(old.I+delta, se)
}

// branch reports one branch execution to the sink, as VM.branch does.
func (m *machine) branch(site *lang.BranchSite, cond vm.Value, taken bool) error {
	m.branchExecs++
	if m.rec != nil {
		m.rec.taken = taken
	}
	if m.opts.Sink == nil {
		return nil
	}
	if err := m.opts.Sink.OnBranch(site, cond, taken); err != nil {
		return vm.SinkError(err)
	}
	return nil
}
