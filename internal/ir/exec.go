package ir

import (
	"fmt"

	"pathlog/internal/lang"
	"pathlog/internal/sym"
	"pathlog/internal/vm"
)

// machine executes one compiled program in a dispatch loop. Create one per
// run (Engine does). All value, operator, builtin and termination semantics
// are shared with the tree walker through internal/vm, which is what keeps
// the two engines bit-for-bit interchangeable.
type machine struct {
	prog *Program
	opts vm.Options
	host vm.Host

	globals []*vm.Object
	strings []*vm.Object // lazily interned, indexed by string-pool slot
	arena   *vm.ObjectArena

	steps       int64
	maxSteps    int64
	branchExecs int64
	depth       int
	maxDepth    int
}

// newMachine builds a machine for one run, applying the same option defaults
// as vm.New.
func newMachine(p *Program, opts vm.Options) *machine {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = vm.DefaultMaxSteps
	}
	if opts.MaxCallDepth <= 0 {
		opts.MaxCallDepth = vm.DefaultMaxCallDepth
	}
	return &machine{
		prog:     p,
		opts:     opts,
		host:     vm.Host{Kernel: opts.Kernel, World: opts.World},
		maxSteps: opts.MaxSteps,
		maxDepth: opts.MaxCallDepth,
	}
}

// Run implements vm.Machine.
func (m *machine) Run() (vm.Result, error) {
	// Objects live exactly as long as the run: nothing downstream retains
	// them (sinks keep sym.Expr constraints, the kernel exchanges bytes,
	// results carry scalars), so the arena is released once the result is
	// assembled and its slabs are recycled for the next run.
	m.arena = vm.GetArena()
	err := m.run()
	res, ferr := vm.Finish(m.steps, m.branchExecs, m.opts.Kernel.Stdout(), err)
	a := m.arena
	m.arena, m.globals, m.strings = nil, nil, nil
	a.Release()
	return res, ferr
}

func (m *machine) run() error {
	src := m.prog.Src
	m.globals = make([]*vm.Object, len(src.Globals))
	for i, g := range src.Globals {
		size := int64(1)
		if g.IsArray {
			size = g.Size
		}
		m.globals[i] = m.arena.NewObject(g.Name, size)
	}
	m.strings = make([]*vm.Object, len(m.prog.Strings))
	if len(m.prog.Init) > 0 {
		if err := m.exec(m.prog.Init, nil); err != nil {
			return err
		}
	}
	main := m.prog.Main
	frame := m.arena.NewObject(main.FrameName, int64(main.Decl.NumSlots))
	m.depth++
	if m.depth > m.maxDepth {
		return vm.CrashError(vm.CrashStackOverflow, main.Decl.Pos, 0)
	}
	return m.exec(main.Code, frame)
}

// callFrame is a suspended caller.
type callFrame struct {
	code  []Instr
	pc    int
	frame *vm.Object
	base  int
}

// exec runs code to termination. Function code always terminates through
// OpRet/OpRetZero (returning from the entry function ends the run as
// exit(0), like the tree walker's Run); the global init code instead falls
// off the end of its instruction array and returns nil.
func (m *machine) exec(code []Instr, frame *vm.Object) error {
	var (
		stack = m.arena.Scratch(256)
		calls []callFrame
		pc    int
		base  int
	)
	for {
		if pc >= len(code) {
			if len(calls) != 0 {
				return fmt.Errorf("ir: fell off code end with %d frames live", len(calls))
			}
			return nil // init code completes by falling off the end
		}
		in := &code[pc]
		pc++
		if in.Steps != 0 {
			// The same pre-order charges the tree walker applies, batched.
			// The walker trips the budget at the single step that crosses it,
			// so a batch that crosses clamps to maxSteps+1 with none of this
			// instruction's effects applied.
			s := m.steps + int64(in.Steps)
			if s > m.maxSteps {
				m.steps = m.maxSteps + 1
				return vm.BudgetError()
			}
			m.steps = s
		}
		switch in.Op {
		case OpNop:

		case OpConst:
			stack = append(stack, vm.IntValue(in.Val))

		case OpStr:
			o := m.strings[in.A]
			if o == nil {
				s := m.prog.Strings[in.A]
				o = m.arena.NewObject("str", int64(len(s))+1)
				o.StoreBytes(0, []byte(s))
				m.strings[in.A] = o
			}
			stack = append(stack, vm.PtrValue(o, 0))

		case OpLoadLocal:
			stack = append(stack, frame.Cells[in.A])

		case OpLoadGlobal:
			stack = append(stack, m.globals[in.A].Cells[0])

		case OpGlobalPtr:
			stack = append(stack, vm.PtrValue(m.globals[in.A], 0))

		case OpAddrLocal:
			stack = append(stack, vm.PtrValue(frame, int64(in.A)))

		case OpAddrLocalArr:
			av := frame.Cells[in.A]
			if av.K != vm.KPtr || av.Obj == nil {
				return vm.CrashError(vm.CrashNullDeref, in.Pos, 0)
			}
			stack = append(stack, vm.PtrValue(av.Obj, av.Off))

		case OpAddrIndex:
			n := len(stack)
			obj, off, err := vm.IndexCell(stack[n-2], stack[n-1], in.Pos)
			if err != nil {
				return err
			}
			stack = stack[:n-1]
			stack[n-2] = vm.PtrValue(obj, off)

		case OpAddrDeref:
			n := len(stack) - 1
			v := stack[n]
			if v.K != vm.KPtr || v.Obj == nil {
				return vm.CrashError(vm.CrashNullDeref, in.Pos, 0)
			}
			if !v.Obj.In(v.Off) {
				return vm.CrashError(vm.CrashOOB, in.Pos, 0)
			}
			stack[n] = vm.PtrValue(v.Obj, v.Off)

		case OpLoadIndex:
			n := len(stack)
			obj, off, err := vm.IndexCell(stack[n-2], stack[n-1], in.Pos)
			if err != nil {
				return err
			}
			stack = stack[:n-1]
			stack[n-2] = obj.Cells[off]

		case OpLoadDeref:
			n := len(stack) - 1
			v := stack[n]
			if v.K != vm.KPtr || v.Obj == nil {
				return vm.CrashError(vm.CrashNullDeref, in.Pos, 0)
			}
			if !v.Obj.In(v.Off) {
				return vm.CrashError(vm.CrashOOB, in.Pos, 0)
			}
			stack[n] = v.Obj.Cells[v.Off]

		case OpStoreLocal:
			frame.Cells[in.A] = stack[len(stack)-1]

		case OpStoreGlobal:
			m.globals[in.A].Cells[0] = stack[len(stack)-1]

		case OpStoreCell:
			n := len(stack)
			addr := stack[n-1]
			stack = stack[:n-1]
			addr.Obj.Cells[addr.Off] = stack[n-2]

		case OpStoreLocalOp:
			n := len(stack) - 1
			nv, err := vm.BinOp(in.Kind, frame.Cells[in.A], stack[n], in.Pos)
			if err != nil {
				return err
			}
			frame.Cells[in.A] = nv
			stack[n] = nv

		case OpStoreGlobalOp:
			n := len(stack) - 1
			g := m.globals[in.A]
			nv, err := vm.BinOp(in.Kind, g.Cells[0], stack[n], in.Pos)
			if err != nil {
				return err
			}
			g.Cells[0] = nv
			stack[n] = nv

		case OpStoreCellOp:
			n := len(stack)
			addr := stack[n-1]
			stack = stack[:n-1]
			nv, err := vm.BinOp(in.Kind, addr.Obj.Cells[addr.Off], stack[n-2], in.Pos)
			if err != nil {
				return err
			}
			addr.Obj.Cells[addr.Off] = nv
			stack[n-2] = nv

		case OpSetLocal:
			n := len(stack) - 1
			frame.Cells[in.A] = stack[n]
			stack = stack[:n]

		case OpSetGlobal:
			n := len(stack) - 1
			m.globals[in.A].Cells[0] = stack[n]
			stack = stack[:n]

		case OpZeroLocal:
			frame.Cells[in.A] = vm.IntValue(0)

		case OpAllocArr:
			frame.Cells[in.A] = vm.PtrValue(m.arena.NewObject(in.Name, in.Val), 0)

		case OpIncLocal:
			old := frame.Cells[in.A]
			frame.Cells[in.A] = incValue(old, in.Val)
			stack = append(stack, old)

		case OpIncCell:
			n := len(stack) - 1
			addr := stack[n]
			old := addr.Obj.Cells[addr.Off]
			addr.Obj.Cells[addr.Off] = incValue(old, in.Val)
			stack[n] = old

		case OpUnary:
			n := len(stack) - 1
			v, err := vm.UnaryOp(in.Kind, stack[n], in.Pos)
			if err != nil {
				return err
			}
			stack[n] = v

		case OpBinary:
			n := len(stack)
			l, r := stack[n-2], stack[n-1]
			if l.K == vm.KInt && l.Sym == nil && r.K == vm.KInt && r.Sym == nil {
				// All-concrete fast path; div-by-zero and unknown kinds
				// decline and take the full BinOp crash/error path below.
				if cv, ok := vm.ConcreteBin(in.Kind, l.I, r.I); ok {
					stack = stack[:n-1]
					stack[n-2] = vm.IntValue(cv)
					break
				}
			}
			v, err := vm.BinOp(in.Kind, l, r, in.Pos)
			if err != nil {
				return err
			}
			stack = stack[:n-1]
			stack[n-2] = v

		case OpBool:
			n := len(stack) - 1
			stack[n] = vm.BoolValue(stack[n])

		case OpShortCircuit:
			n := len(stack) - 1
			l := stack[n]
			stack = stack[:n]
			lTrue := l.Truthy()
			if err := m.branch(in.Site, l, lTrue); err != nil {
				return err
			}
			if in.Kind == lang.ANDAND {
				if !lTrue {
					stack = append(stack, vm.SymValue(0, vm.BoolExpr(l)))
					pc = int(in.A)
				}
			} else if lTrue {
				stack = append(stack, vm.SymValue(1, vm.BoolExpr(l)))
				pc = int(in.A)
			}

		case OpBranch:
			n := len(stack) - 1
			cond := stack[n]
			stack = stack[:n]
			taken := cond.Truthy()
			if err := m.branch(in.Site, cond, taken); err != nil {
				return err
			}
			if taken {
				pc = int(in.A)
			} else {
				pc = int(in.B)
			}

		case OpJump:
			pc = int(in.A)

		case OpPop:
			stack = stack[:len(stack)-1]

		case OpCall:
			fn := in.Fn
			nargs := int(in.B)
			callee := m.arena.NewObject(fn.FrameName, int64(fn.Decl.NumSlots))
			copy(callee.Cells, stack[len(stack)-nargs:])
			stack = stack[:len(stack)-nargs]
			m.depth++
			if m.depth > m.maxDepth {
				return vm.CrashError(vm.CrashStackOverflow, fn.Decl.Pos, 0)
			}
			calls = append(calls, callFrame{code: code, pc: pc, frame: frame, base: base})
			code, pc, frame, base = fn.Code, 0, callee, len(stack)

		case OpCallB:
			nargs := int(in.B)
			v, err := m.host.Call(in.Name, in.Pos, stack[len(stack)-nargs:])
			if err != nil {
				return err
			}
			stack = append(stack[:len(stack)-nargs], v)

		case OpRet, OpRetZero:
			v := vm.IntValue(0)
			if in.Op == OpRet {
				v = stack[len(stack)-1]
			}
			m.depth--
			if len(calls) == 0 {
				// Returning from the entry function: the program's return
				// value is discarded and the run exits 0, as in VM.Run.
				return vm.ExitError(0)
			}
			cf := calls[len(calls)-1]
			calls = calls[:len(calls)-1]
			stack = stack[:base]
			code, pc, frame, base = cf.code, cf.pc, cf.frame, cf.base
			stack = append(stack, v)

		default:
			return fmt.Errorf("ir: unknown opcode %v", in.Op)
		}
	}
}

// incValue applies x++/x-- to a cell value with the tree walker's rules:
// pointers move by delta cells; integers add delta, extending the symbolic
// expression only when one is present.
func incValue(old vm.Value, delta int64) vm.Value {
	if old.K == vm.KPtr {
		return vm.PtrValue(old.Obj, old.Off+delta)
	}
	var se sym.Expr
	if old.Sym != nil {
		op := sym.OpAdd
		if delta < 0 {
			op = sym.OpSub
		}
		se = sym.NewBin(op, old.Sym, sym.One)
	}
	return vm.SymValue(old.I+delta, se)
}

// branch reports one branch execution to the sink, as VM.branch does.
func (m *machine) branch(site *lang.BranchSite, cond vm.Value, taken bool) error {
	m.branchExecs++
	if m.opts.Sink == nil {
		return nil
	}
	if err := m.opts.Sink.OnBranch(site, cond, taken); err != nil {
		return vm.SinkError(err)
	}
	return nil
}
