package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Disasm renders the compiled program as a flat IR listing: the constant
// pools, then each code body split into labeled basic blocks of numbered
// instructions. Branch and short-circuit instructions carry their branch-site
// annotation (site ID, kind, source position), and nonzero step charges are
// shown in a +N column, so the listing exposes exactly the two things the
// bytecode engine precomputes — where instrumentation fires and where the
// step budget is charged. The output is deterministic for a given program and
// is pinned by a golden file in testdata.
func (p *Program) Disasm() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s\n", p.Hash)

	fmt.Fprintf(&b, "\nstrings (%d):\n", len(p.Strings))
	for i, s := range p.Strings {
		fmt.Fprintf(&b, "  s%d: %s\n", i, strconv.Quote(s))
	}

	fmt.Fprintf(&b, "\nglobals (%d):\n", len(p.Src.Globals))
	for i, g := range p.Src.Globals {
		if g.IsArray {
			fmt.Fprintf(&b, "  g%d: %s[%d]\n", i, g.Name, g.Size)
		} else {
			fmt.Fprintf(&b, "  g%d: %s\n", i, g.Name)
		}
	}

	if len(p.Init) > 0 {
		b.WriteString("\ninit:\n")
		p.disasmCode(&b, p.Init)
	}

	for _, fc := range p.Funcs {
		var params []string
		for _, prm := range fc.Decl.Params {
			params = append(params, prm.Decl.Name)
		}
		fmt.Fprintf(&b, "\nfunc %s(%s) slots=%d:\n",
			fc.Decl.Name, strings.Join(params, ", "), fc.Decl.NumSlots)
		p.disasmCode(&b, fc.Code)
	}
	return b.String()
}

// blockLabels assigns a basic-block label to every leader instruction: index
// 0, every jump/branch target, and every instruction following a control
// transfer. Labels are numbered in instruction order.
func blockLabels(code []Instr) map[int32]string {
	leader := make(map[int32]bool, 8)
	leader[0] = true
	for i, in := range code {
		switch in.Op {
		case OpBranch:
			leader[in.A] = true
			leader[in.B] = true
			leader[int32(i+1)] = true
		case OpJump, OpShortCircuit:
			leader[in.A] = true
			leader[int32(i+1)] = true
		case OpRet, OpRetZero:
			leader[int32(i+1)] = true
		}
	}
	labels := make(map[int32]string, len(leader))
	n := 0
	for i := range code {
		if leader[int32(i)] {
			labels[int32(i)] = "L" + strconv.Itoa(n)
			n++
		}
	}
	return labels
}

// disasmCode prints one code body as labeled blocks of instructions.
func (p *Program) disasmCode(b *strings.Builder, code []Instr) {
	labels := blockLabels(code)
	for i, in := range code {
		if l, ok := labels[int32(i)]; ok {
			fmt.Fprintf(b, "%s:\n", l)
		}
		steps := ""
		if in.Steps != 0 {
			steps = "+" + strconv.Itoa(int(in.Steps))
		}
		line := fmt.Sprintf("  %4d %4s  %-10s %s", i, steps, in.Op, p.operands(in, labels))
		b.WriteString(strings.TrimRight(line, " "))
		b.WriteByte('\n')
	}
}

// operands renders the operand fields an instruction actually uses, with the
// pool entry or branch site it refers to as a trailing ; comment.
func (p *Program) operands(in Instr, labels map[int32]string) string {
	gname := func(i int32) string {
		if int(i) < len(p.Src.Globals) {
			return p.Src.Globals[i].Name
		}
		return "?"
	}
	switch in.Op {
	case OpConst:
		return strconv.FormatInt(in.Val, 10)
	case OpStr:
		return fmt.Sprintf("s%d  ; %s", in.A, strconv.Quote(p.Strings[in.A]))
	case OpLoadLocal, OpAddrLocal, OpAddrLocalArr, OpStoreLocal, OpSetLocal, OpZeroLocal:
		return fmt.Sprintf("slot%d", in.A)
	case OpLoadGlobal, OpGlobalPtr, OpStoreGlobal, OpSetGlobal:
		return fmt.Sprintf("g%d  ; %s", in.A, gname(in.A))
	case OpStoreLocalOp:
		return fmt.Sprintf("slot%d %v=", in.A, in.Kind)
	case OpStoreGlobalOp:
		return fmt.Sprintf("g%d %v=  ; %s", in.A, in.Kind, gname(in.A))
	case OpStoreCellOp:
		return fmt.Sprintf("%v=", in.Kind)
	case OpAllocArr:
		return fmt.Sprintf("slot%d cells=%d  ; %s", in.A, in.Val, in.Name)
	case OpIncLocal:
		return fmt.Sprintf("slot%d %+d", in.A, in.Val)
	case OpIncCell:
		return fmt.Sprintf("%+d", in.Val)
	case OpUnary, OpBinary:
		return in.Kind.String()
	case OpShortCircuit:
		return fmt.Sprintf("%v -> %s  ; site %s", in.Kind, labels[in.A], in.Site)
	case OpBranch:
		return fmt.Sprintf("then=%s else=%s  ; site %s", labels[in.A], labels[in.B], in.Site)
	case OpJump:
		return "-> " + labels[in.A]
	case OpCall:
		return fmt.Sprintf("%s args=%d", in.Fn.Decl.Name, in.B)
	case OpCallB:
		return fmt.Sprintf("%s args=%d", in.Name, in.B)
	}
	return ""
}
