package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Disasm renders the compiled program as a register-IR listing: the constant
// pools, then each code body split into labeled basic blocks of numbered
// instructions — the exact instruction array the bytecode VM executes, after
// register lowering and superinstruction fusion. Branch and short-circuit
// instructions carry their branch-site annotation (site ID, kind, source
// position) and every nonzero step charge is shown in a +N column; a fused
// instruction's charge is the sum over its constituents, which are listed in
// a trailing `; = a+b+c` comment. The listing therefore exposes exactly what
// the VM precomputes: where instrumentation fires, where the step budget is
// charged, and which tree-walker operations each superinstruction batches.
// The output is deterministic for a given program and is pinned by a golden
// file in testdata.
func (p *Program) Disasm() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s\n", p.Hash)

	fmt.Fprintf(&b, "\nstrings (%d):\n", len(p.Strings))
	for i, s := range p.Strings {
		fmt.Fprintf(&b, "  s%d: %s\n", i, strconv.Quote(s))
	}

	fmt.Fprintf(&b, "\nglobals (%d):\n", len(p.Src.Globals))
	for i, g := range p.Src.Globals {
		if g.IsArray {
			fmt.Fprintf(&b, "  g%d: %s[%d]\n", i, g.Name, g.Size)
		} else {
			fmt.Fprintf(&b, "  g%d: %s\n", i, g.Name)
		}
	}

	if len(p.RInit) > 0 {
		fmt.Fprintf(&b, "\ninit regs=%d:\n", p.InitRegs)
		p.disasmCode(&b, p.RInit)
	}

	for _, fc := range p.Funcs {
		var params []string
		for _, prm := range fc.Decl.Params {
			params = append(params, prm.Decl.Name)
		}
		fmt.Fprintf(&b, "\nfunc %s(%s) regs=%d slots=%d:\n",
			fc.Decl.Name, strings.Join(params, ", "), fc.NumRegs, fc.Decl.NumSlots)
		p.disasmCode(&b, fc.RCode)
	}
	return b.String()
}

// blockLabels assigns a basic-block label to every leader instruction: index
// 0, every jump/branch target, and every instruction following a control
// transfer. Labels are numbered in instruction order.
func blockLabels(code []RInstr) map[int32]string {
	leader := make(map[int32]bool, 8)
	leader[0] = true
	for i, in := range code {
		switch in.Op {
		case RBranch:
			leader[in.B] = true
			leader[in.C] = true
			leader[int32(i+1)] = true
		case RCmpBranch:
			leader[in.C] = true
			leader[int32(in.Val)] = true
			leader[int32(i+1)] = true
		case RJump, RShortCircuit:
			if in.Op == RJump {
				leader[in.A] = true
			} else {
				leader[in.C] = true
			}
			leader[int32(i+1)] = true
		case RRet, RRetZero:
			leader[int32(i+1)] = true
		}
	}
	labels := make(map[int32]string, len(leader))
	n := 0
	for i := range code {
		if leader[int32(i)] {
			labels[int32(i)] = "L" + strconv.Itoa(n)
			n++
		}
	}
	return labels
}

// disasmCode prints one code body as labeled blocks of instructions.
func (p *Program) disasmCode(b *strings.Builder, code []RInstr) {
	labels := blockLabels(code)
	for i := range code {
		in := &code[i]
		if l, ok := labels[int32(i)]; ok {
			fmt.Fprintf(b, "%s:\n", l)
		}
		steps := ""
		if in.Steps != 0 {
			steps = "+" + strconv.Itoa(int(in.Steps))
		}
		line := fmt.Sprintf("  %4d %4s  %-10s %s", i, steps, in.Op, p.operands(in, labels))
		b.WriteString(strings.TrimRight(line, " "))
		b.WriteByte('\n')
	}
}

// gname resolves a global index to its source name for ; comments.
func (p *Program) gname(i int32) string {
	if int(i) < len(p.Src.Globals) {
		return p.Src.Globals[i].Name
	}
	return "?"
}

// src renders one moded operand. Register/immediate modes are
// self-describing; global modes carry the global's name inline since there is
// no room for a trailing comment per operand.
func (p *Program) src(m SrcMode, x int32) string {
	switch m {
	case SrcReg:
		return "r" + strconv.Itoa(int(x))
	case SrcLocal:
		return "slot" + strconv.Itoa(int(x))
	case SrcGlobal:
		return fmt.Sprintf("g%d(%s)", x, p.gname(x))
	case SrcConst:
		return strconv.Itoa(int(x))
	case SrcGPtr:
		return fmt.Sprintf("&g%d(%s)", x, p.gname(x))
	case SrcLAddr:
		return "&slot" + strconv.Itoa(int(x))
	}
	return "?"
}

// dst renders the `rN = ` destination prefix, or nothing when the result is
// discarded (Dst < 0).
func dst(in *RInstr) string {
	if in.Dst < 0 {
		return ""
	}
	return "r" + strconv.Itoa(int(in.Dst)) + " = "
}

// fused renders the `; = a+b+c` constituent list of a fused or folded
// instruction, or nothing for a plain one.
func fused(in *RInstr) string {
	if len(in.Sub) <= 1 {
		return ""
	}
	parts := make([]string, len(in.Sub))
	for i, op := range in.Sub {
		parts[i] = op.String()
	}
	return "  ; = " + strings.Join(parts, "+")
}

// operands renders the operand fields an instruction actually uses, with the
// pool entry or branch site it refers to — and, for fused superinstructions,
// the constituent ops — as trailing ; comments.
func (p *Program) operands(in *RInstr, labels map[int32]string) string {
	var body string
	switch in.Op {
	case RConst:
		body = dst(in) + strconv.FormatInt(in.Val, 10)
	case RStr:
		body = fmt.Sprintf("%ss%d  ; %s", dst(in), in.A, strconv.Quote(p.Strings[in.A]))
	case RLoadLocal:
		body = fmt.Sprintf("%sslot%d", dst(in), in.A)
	case RLoadGlobal:
		body = fmt.Sprintf("%sg%d  ; %s", dst(in), in.A, p.gname(in.A))
	case RGlobalPtr:
		body = fmt.Sprintf("%s&g%d  ; %s", dst(in), in.A, p.gname(in.A))
	case RAddrLocal:
		body = fmt.Sprintf("%s&slot%d", dst(in), in.A)
	case RAddrLocalArr:
		body = fmt.Sprintf("%sarr slot%d", dst(in), in.A)
	case RAddrIndex:
		body = fmt.Sprintf("%s&%s[%s]", dst(in), p.src(in.AM, in.A), p.src(in.BM, in.B))
	case RAddrDeref:
		body = fmt.Sprintf("%s&*r%d", dst(in), in.A)
	case RLoadIndex:
		body = fmt.Sprintf("%s%s[%s]", dst(in), p.src(in.AM, in.A), p.src(in.BM, in.B))
	case RLoadDeref:
		body = fmt.Sprintf("%s*r%d", dst(in), in.A)
	case RStoreLocal:
		body = fmt.Sprintf("slot%d = %s", in.A, p.src(in.BM, in.B))
	case RStoreGlobal:
		body = fmt.Sprintf("g%d = %s  ; %s", in.A, p.src(in.BM, in.B), p.gname(in.A))
	case RStoreCell:
		body = fmt.Sprintf("*r%d = %s", in.A, p.src(in.BM, in.B))
	case RStoreLocalOp:
		body = fmt.Sprintf("%sslot%d %v= %s", dst(in), in.A, in.Kind, p.src(in.BM, in.B))
	case RStoreGlobalOp:
		body = fmt.Sprintf("%sg%d %v= %s  ; %s", dst(in), in.A, in.Kind, p.src(in.BM, in.B), p.gname(in.A))
	case RStoreCellOp:
		body = fmt.Sprintf("%s*r%d %v= %s", dst(in), in.A, in.Kind, p.src(in.BM, in.B))
	case RZeroLocal:
		body = fmt.Sprintf("slot%d = 0", in.A)
	case RAllocArr:
		body = fmt.Sprintf("slot%d cells=%d  ; %s", in.A, in.Val, in.Name)
	case RIncLocal:
		body = fmt.Sprintf("%sslot%d %+d", dst(in), in.A, in.Val)
	case RIncCell:
		body = fmt.Sprintf("%s*r%d %+d", dst(in), in.A, in.Val)
	case RUnary:
		body = fmt.Sprintf("%s%v %s", dst(in), in.Kind, p.src(in.AM, in.A))
	case RBinary:
		body = fmt.Sprintf("%s%s %v %s", dst(in), p.src(in.AM, in.A), in.Kind, p.src(in.BM, in.B))
	case RBool:
		body = fmt.Sprintf("%sbool %s", dst(in), p.src(in.AM, in.A))
	case RShortCircuit:
		body = fmt.Sprintf("%s%v %s -> %s  ; site %s", dst(in), in.Kind, p.src(in.AM, in.A), labels[in.C], in.Site)
	case RBranch:
		body = fmt.Sprintf("%s then=%s else=%s  ; site %s", p.src(in.AM, in.A), labels[in.B], labels[in.C], in.Site)
	case RJump:
		body = "-> " + labels[in.A]
	case RCall:
		body = fmt.Sprintf("%s%s regs=[r%d..r%d)", dst(in), in.Fn.Decl.Name, in.A, in.A+in.B)
	case RCallB:
		body = fmt.Sprintf("%s%s regs=[r%d..r%d)", dst(in), in.Name, in.A, in.A+in.B)
	case RRet:
		body = p.src(in.AM, in.A)
	case RCmpBranch:
		body = fmt.Sprintf("%s %v %s then=%s else=%s  ; site %s",
			p.src(in.AM, in.A), in.Kind, p.src(in.BM, in.B), labels[in.C], labels[int32(in.Val)], in.Site)
	case RBinStoreLocal:
		body = fmt.Sprintf("%sslot%d = %s %v %s", dst(in), in.C, p.src(in.AM, in.A), in.Kind, p.src(in.BM, in.B))
	case RBinStoreGlobal:
		body = fmt.Sprintf("%sg%d = %s %v %s  ; %s",
			dst(in), in.C, p.src(in.AM, in.A), in.Kind, p.src(in.BM, in.B), p.gname(in.C))
	case RStoreIndex:
		body = fmt.Sprintf("%s[%s] = %s", p.src(in.AM, in.A), p.src(in.BM, in.B), p.src(in.CM, in.C))
	case RIncIndex:
		body = fmt.Sprintf("%s%s[%s] %+d", dst(in), p.src(in.AM, in.A), p.src(in.BM, in.B), in.Val)
	}
	return body + fused(in)
}
