package ir

import (
	"pathlog/internal/lang"
)

// This file defines the register-form IR the VM executes. The stack bytecode
// produced by the compiler (ir.go, compile.go) remains the front-end IR that
// carries the tree walker's step-charge schedule; lower.go converts it to
// register form by assigning each operand-stack depth a virtual register, and
// fuse.go collapses hot instruction pairs/triples into superinstructions
// whose Steps charge is the sum of their parts.

// ROp is a register-form opcode.
type ROp uint8

// Register opcodes. Operand fields are noted per opcode; `src(AM,A)` means
// the value selected by mode AM and index A (see SrcMode). Dst < 0 means the
// result value is discarded (dead-value elimination).
const (
	// RNop does nothing; it carries Steps charges on control-flow edges
	// where no other instruction can absorb them without changing the tree
	// walker's charge schedule.
	RNop ROp = iota
	// RConst sets Dst = integer literal Val.
	RConst
	// RStr sets Dst = pointer to interned string-pool entry A.
	RStr
	// RLoadLocal sets Dst = frame slot A.
	RLoadLocal
	// RLoadGlobal sets Dst = scalar value of global A.
	RLoadGlobal
	// RGlobalPtr sets Dst = pointer to cell 0 of global A.
	RGlobalPtr
	// RAddrLocal sets Dst = pointer to frame slot A.
	RAddrLocal
	// RAddrLocalArr sets Dst = the cell the local array in slot A designates
	// as an lvalue (null-checked at Pos).
	RAddrLocalArr
	// RAddrIndex sets Dst = address of src(AM,A)[src(BM,B)], checked at Pos.
	RAddrIndex
	// RAddrDeref sets Dst = checked cell address of the pointer in reg A.
	RAddrDeref
	// RLoadIndex sets Dst = src(AM,A)[src(BM,B)], checked at Pos.
	RLoadIndex
	// RLoadDeref sets Dst = *(reg A), checked at Pos.
	RLoadDeref
	// RStoreLocal stores src(BM,B) into frame slot A.
	RStoreLocal
	// RStoreGlobal stores src(BM,B) into global scalar A.
	RStoreGlobal
	// RStoreCell stores src(BM,B) through the cell address in reg A.
	RStoreCell
	// RStoreLocalOp applies compound assignment `slot A Kind= src(BM,B)` at
	// Pos; the result is written back and to Dst (when Dst >= 0).
	RStoreLocalOp
	// RStoreGlobalOp is RStoreLocalOp for global scalar A.
	RStoreGlobalOp
	// RStoreCellOp applies compound assignment through the cell address in
	// reg A with rhs src(BM,B).
	RStoreCellOp
	// RZeroLocal stores integer 0 into frame slot A.
	RZeroLocal
	// RAllocArr allocates a Val-cell object named Name and stores a pointer
	// to it into frame slot A.
	RAllocArr
	// RIncLocal adds Val (±1) to frame slot A with the tree walker's pointer
	// and symbolic rules; the old value goes to Dst (when Dst >= 0).
	RIncLocal
	// RIncCell is RIncLocal through the cell address in reg A.
	RIncCell
	// RUnary sets Dst = UnaryOp(Kind, src(AM,A)) evaluated at Pos.
	RUnary
	// RBinary sets Dst = BinOp(Kind, src(AM,A), src(BM,B)) evaluated at Pos.
	RBinary
	// RBool sets Dst = the 0/1 coercion of src(AM,A).
	RBool
	// RShortCircuit reads the left operand of Site's && / || (Kind) from
	// src(AM,A), reports the branch event, and either falls through into the
	// right-operand code or writes the short-circuit result to Dst and jumps
	// to C.
	RShortCircuit
	// RBranch reads the condition of Site from src(AM,A), reports the branch
	// event, and jumps to B when taken, C when not.
	RBranch
	// RJump jumps to A.
	RJump
	// RCall copies regs A..A+B-1 into Fn's frame and transfers control to it
	// (stack-overflow-checked); the return value lands in Dst.
	RCall
	// RCallB invokes builtin Name at Pos with arguments regs A..A+B-1; the
	// result lands in Dst.
	RCallB
	// RRet returns src(AM,A) to the caller; returning from the entry
	// function ends the run with exit(0).
	RRet
	// RRetZero is RRet with an implicit integer 0 return value.
	RRetZero

	// Fused superinstructions. Each charges the summed Steps of its
	// constituents up front; fuse.go only forms groups whose constituents
	// before the last crash-capable/observable one are pure, which keeps the
	// batched charge indistinguishable from the tree walker's per-node
	// schedule (see doc.go).

	// RCmpBranch computes cond = BinOp(Kind, src(AM,A), src(BM,B)) at Pos,
	// reports Site's branch event, and jumps to C when taken, Val when not.
	RCmpBranch
	// RBinStoreLocal computes BinOp(Kind, src(AM,A), src(BM,B)) at Pos and
	// stores it both to frame slot C and to Dst.
	RBinStoreLocal
	// RBinStoreGlobal is RBinStoreLocal for global scalar C.
	RBinStoreGlobal
	// RStoreIndex stores src(CM,C) into src(AM,A)[src(BM,B)], checked at Pos.
	RStoreIndex
	// RIncIndex adds Val (±1) to src(AM,A)[src(BM,B)] (checked at Pos); the
	// old value goes to Dst (when Dst >= 0).
	RIncIndex
)

var rOpNames = [...]string{
	RNop: "nop", RConst: "const", RStr: "str",
	RLoadLocal: "loadl", RLoadGlobal: "loadg", RGlobalPtr: "gptr",
	RAddrLocal: "addrl", RAddrLocalArr: "addrla", RAddrIndex: "addridx",
	RAddrDeref: "addrderef", RLoadIndex: "loadidx", RLoadDeref: "loadderef",
	RStoreLocal: "storel", RStoreGlobal: "storeg", RStoreCell: "storec",
	RStoreLocalOp: "storelop", RStoreGlobalOp: "storegop", RStoreCellOp: "storecop",
	RZeroLocal: "zerol", RAllocArr: "allocarr", RIncLocal: "incl", RIncCell: "incc",
	RUnary: "unary", RBinary: "binary", RBool: "bool",
	RShortCircuit: "shortcirc", RBranch: "branch", RJump: "jump",
	RCall: "call", RCallB: "callb", RRet: "ret", RRetZero: "ret0",
	RCmpBranch: "cmpbr", RBinStoreLocal: "binstorel", RBinStoreGlobal: "binstoreg",
	RStoreIndex: "storeidx", RIncIndex: "incidx",
}

// String implements fmt.Stringer.
func (o ROp) String() string {
	if int(o) < len(rOpNames) && rOpNames[o] != "" {
		return rOpNames[o]
	}
	return "rop?"
}

// SrcMode selects where a moded operand of a register instruction comes
// from. Every mode is pure — fetching an operand cannot crash, observe or
// charge steps — which is what makes folding operand loads into their
// consumers exact (the load's charge is batched into the consumer's Steps).
type SrcMode uint8

// Operand source modes.
const (
	// SrcReg reads register index X.
	SrcReg SrcMode = iota
	// SrcLocal reads frame slot X.
	SrcLocal
	// SrcGlobal reads the scalar value of global X.
	SrcGlobal
	// SrcConst is the int32 immediate X.
	SrcConst
	// SrcGPtr is a pointer to cell 0 of global X (array decay).
	SrcGPtr
	// SrcLAddr is a pointer to frame slot X (&local).
	SrcLAddr
)

var srcModeNames = [...]string{
	SrcReg: "r", SrcLocal: "l", SrcGlobal: "g",
	SrcConst: "c", SrcGPtr: "gp", SrcLAddr: "&l",
}

// String implements fmt.Stringer.
func (s SrcMode) String() string {
	if int(s) < len(srcModeNames) {
		return srcModeNames[s]
	}
	return "m?"
}

// RInstr is one register-form instruction.
type RInstr struct {
	Op ROp
	// AM and BM are the source modes of the A and B operands; CM is the
	// source mode of C for RStoreIndex.
	AM, BM, CM SrcMode
	// Steps is the number of tree-walker step charges that precede this
	// instruction's effects, summed over every fused constituent; the VM
	// applies them (with the budget check) before executing the instruction.
	Steps int32
	// Dst is the destination register; -1 means the result is discarded.
	Dst int32
	// A, B and C are register indexes, moded operand indexes, frame/global
	// slots, argument bases/counts or jump targets, per opcode.
	A, B, C int32
	// Val is an integer literal, array size, ±1 increment delta, or the
	// not-taken target of RCmpBranch.
	Val int64
	// Kind is the operator token for unary/binary/compound/short-circuit ops.
	Kind lang.Kind
	// Pos is the source position used for crash attribution.
	Pos lang.Pos
	// Site is the branch site of RBranch/RShortCircuit/RCmpBranch.
	Site *lang.BranchSite
	// Fn is the callee of RCall.
	Fn *FuncCode
	// Name is the builtin name of RCallB or the object name of RAllocArr.
	Name string
	// Sub lists the constituent ops a fused instruction replaces, in
	// execution order (nil when the instruction is not fused). It exists for
	// disassembly and fusion statistics only; the VM never reads it.
	Sub []ROp
}
