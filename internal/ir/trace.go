package ir

import (
	"fmt"
	"sort"

	"pathlog/internal/lang"
	"pathlog/internal/vm"
)

// Linear-trace replay fast path. A search (replay reproduction, concolic
// exploration) runs the same program hundreds of times with inputs that
// mostly follow the same path. The search's seed run — which both engines
// complete before any sibling run starts — records the instruction sequence
// it executes into a straight-line array; every later run of the search
// executes that array front to back, with no jump dispatch and no
// branch-target computation, until its own input first disagrees with a
// recorded branch direction. At that point (and at the end of the trace) it
// hands the live machine state to the general dispatch loop and continues
// there.
//
// Exactness. The fast path executes the same instruction effects, in the
// same order, with the same step-charge schedule as the general loop:
//
//   - RJump and RNop disappear from the trace; their charges fold forward
//     into the next recorded instruction. Neither opcode has an effect or an
//     observation, and a charge batch that trips the budget clamps to
//     maxSteps+1 with nothing applied — so moving a pure instruction's
//     charge onto its dynamic successor is indistinguishable from the
//     general loop (the same argument that makes superinstruction fusion
//     exact; see fuse.go).
//   - Branch instructions stay in the trace and fire their sink event
//     before the direction guard, exactly as the general loop fires it
//     before moving pc.
//   - An instruction is recorded only after it completes. The instruction a
//     seed run dies in (crash, budget, sink abort, or the final return) is
//     excluded, and the trace's resume point names it, so later runs execute
//     it in the general loop with full effect.
//
// Divergence is detected at branch guards only; between branches MiniC
// control flow is input-independent (calls and returns are unconditional),
// so a run that agrees with every guard so far is exactly on the recorded
// path.

// traceCap bounds recorded entries (and so per-search memory). Runs longer
// than the cap execute the capped prefix on the fast path and the rest in
// the general loop, via the same resume mechanism as every other trace end.
// traceMaxPC and traceMaxCum guard the compact entry encoding: recording
// stops (same resume mechanism) rather than overflow a field.
const (
	traceCap    = 1 << 15
	traceMaxPC  = 1<<16 - 1
	traceMaxCum = 1 << 30
)

// tEntry is one recorded instruction. It points at the real instruction
// rather than copying it: the referenced code arrays are the same hot lines
// the general loop keeps in cache, and a 16-byte entry keeps the trace
// stream itself an order of magnitude smaller than an RInstr copy would —
// replaying is a sequential walk, so entry size is bandwidth.
type tEntry struct {
	in *RInstr
	// cum is the cumulative step charge through this entry (the entry's own
	// Steps, carries folded forward from elided jumps/nops, and everything
	// before it). Every on-trace run charges the same schedule, so absolute
	// prefix sums replace per-entry budget arithmetic: the replay loop's
	// steps counter is start+cum, and the budget trip point is a single
	// binary search before the loop.
	cum int32
	// realPC is the instruction's pc in its function's RCode, the anchor for
	// call returns and divergence fallback.
	realPC uint16
	// expected is the recorded branch direction (branch opcodes only).
	expected bool
}

// linearTrace is the recorded seed run: the committed entries, plus where in
// the real code the run after the last entry continues.
type linearTrace struct {
	entries []tEntry
	// resumePC continues the general loop after the last entry, in the
	// function active at that point (tracked through the trace's own
	// call/return entries).
	resumePC int32
	// endSteps is the charge carried by jumps/nops executed after the last
	// committed entry, applied before resuming.
	endSteps int32
}

// traceRecorder accumulates the trace during the seed run's general loop.
// An instruction is staged when the loop reaches it and committed when the
// loop reaches its dynamic successor — so the instruction the run dies in
// is staged but never committed, which is exactly the truncation the resume
// rule wants.
type traceRecorder struct {
	entries     []tEntry
	staged      tEntry
	stagedSteps int32 // the staged instruction's own charge
	stagedValid bool
	// carry folds the charges of jumps/nops (which are elided from the
	// trace) into the next committed entry.
	carry int32
	// cum is the total charge committed so far (the last entry's cum).
	cum int64
	// resumePC tracks where execution continues after everything committed
	// so far: the staged instruction, or a jump target.
	resumePC int32
	// taken is the last branch direction, written by machine.branch while
	// the staged instruction executes.
	taken bool
	// done is set when a cap is reached; recording stops, execution
	// continues.
	done bool
}

func newTraceRecorder() *traceRecorder {
	return &traceRecorder{entries: make([]tEntry, 0, 1024)}
}

// note observes the general loop reaching pc. It commits the previously
// staged instruction (it completed — the loop moved past it) and stages
// this one; jumps and nops are elided into the charge carry instead.
func (r *traceRecorder) note(pc int, in *RInstr) {
	if r.done {
		return
	}
	r.commit()
	if r.done {
		return // commit hit the charge cap and set the resume point itself
	}
	if len(r.entries) >= traceCap || pc > traceMaxPC {
		// Entry-count or pc-encoding cap. The current instruction is not
		// recorded; resuming at it re-executes it with full charge and
		// effect.
		r.done = true
		r.resumePC = int32(pc)
		return
	}
	if in.Op == RJump || in.Op == RNop {
		r.carry += in.Steps
		if in.Op == RJump {
			r.resumePC = in.A
		} else {
			r.resumePC = int32(pc + 1)
		}
		return
	}
	r.staged = tEntry{in: in, realPC: uint16(pc)}
	r.stagedSteps = in.Steps
	r.stagedValid = true
	r.resumePC = int32(pc)
}

// commit finalizes the staged entry: the carry and the instruction's own
// charge extend the cumulative sum, and the branch direction observed during
// its execution becomes the guard. On cumulative overflow the staged entry
// is dropped instead (it executed, but later runs will re-execute it in the
// general loop — the same truncation rule as a seed run dying in it).
func (r *traceRecorder) commit() {
	if !r.stagedValid {
		return
	}
	r.stagedValid = false
	total := r.cum + int64(r.stagedSteps) + int64(r.carry)
	if total > traceMaxCum {
		r.done = true
		r.resumePC = int32(r.staged.realPC)
		return
	}
	r.carry = 0
	r.cum = total
	r.staged.cum = int32(total)
	r.staged.expected = r.taken
	r.entries = append(r.entries, r.staged)
}

// finish builds the trace once the seed run ended. The staged instruction
// (the one the run died in) is dropped; resumePC already names it.
func (r *traceRecorder) finish() *linearTrace {
	return &linearTrace{entries: r.entries, resumePC: r.resumePC, endSteps: r.carry}
}

// runTraced executes main on the linear trace, falling back to the general
// loop at first divergence or at trace end. The handlers mirror loop's
// exactly; only control transfers differ (linear continuation plus guards).
func (m *machine) runTraced(t *linearTrace, frame *vm.Object, nregs int) error {
	if nregs > len(m.rf) {
		m.growRF(nregs)
	}
	var (
		calls []callFrame
		base  int32
		code  = m.prog.Main.RCode // real code of the current function
		nr    = int32(nregs)
	)
	regs := m.rf[:nregs]
	// resume hands the live state to the general loop at a real pc.
	resume := func(pc int32) error {
		return m.loop(&execState{
			code: code, pc: int(pc), frame: frame,
			base: base, nregs: nr, calls: calls,
		})
	}
	// Every on-trace run charges the same schedule, so the budget trip point
	// — the first entry whose cumulative charge crosses the remaining budget
	// — is known before the loop starts. Entries before it execute with no
	// budget arithmetic beyond one store; the trip itself clamps exactly as
	// the general loop would, with none of the tripping entry's effects
	// applied.
	start := m.steps
	limit := len(t.entries)
	tripped := false
	if limit > 0 && start+int64(t.entries[limit-1].cum) > m.maxSteps {
		rem := m.maxSteps - start
		limit = sort.Search(limit, func(i int) bool { return int64(t.entries[i].cum) > rem })
		tripped = true
	}
	for ti := 0; ti < limit; ti++ {
		e := &t.entries[ti]
		in := e.in
		// Charge before effects, as the general loop does: any observation
		// or crash inside this entry sees the entry's charge applied.
		m.steps = start + int64(e.cum)
		switch in.Op {
		case RConst:
			regs[in.Dst] = vm.IntValue(in.Val)

		case RStr:
			o := m.strings[in.A]
			if o == nil {
				s := m.prog.Strings[in.A]
				o = m.arena.NewObject("str", int64(len(s))+1)
				o.StoreBytes(0, []byte(s))
				m.strings[in.A] = o
			}
			regs[in.Dst] = vm.PtrValue(o, 0)

		case RLoadLocal:
			regs[in.Dst] = frame.Cells[in.A]

		case RLoadGlobal:
			regs[in.Dst] = m.globals[in.A].Cells[0]

		case RGlobalPtr:
			regs[in.Dst] = vm.PtrValue(m.globals[in.A], 0)

		case RAddrLocal:
			regs[in.Dst] = vm.PtrValue(frame, int64(in.A))

		case RAddrLocalArr:
			av := frame.Cells[in.A]
			if av.K != vm.KPtr || av.Obj == nil {
				return vm.CrashError(vm.CrashNullDeref, in.Pos, 0)
			}
			regs[in.Dst] = vm.PtrValue(av.Obj, av.Off)

		case RAddrIndex:
			obj, off, err := vm.IndexCell(m.fetch(in.AM, in.A, regs, frame), m.fetch(in.BM, in.B, regs, frame), in.Pos)
			if err != nil {
				return err
			}
			regs[in.Dst] = vm.PtrValue(obj, off)

		case RAddrDeref:
			v := regs[in.A]
			if v.K != vm.KPtr || v.Obj == nil {
				return vm.CrashError(vm.CrashNullDeref, in.Pos, 0)
			}
			if !v.Obj.In(v.Off) {
				return vm.CrashError(vm.CrashOOB, in.Pos, 0)
			}
			regs[in.Dst] = vm.PtrValue(v.Obj, v.Off)

		case RLoadIndex:
			obj, off, err := vm.IndexCell(m.fetch(in.AM, in.A, regs, frame), m.fetch(in.BM, in.B, regs, frame), in.Pos)
			if err != nil {
				return err
			}
			regs[in.Dst] = obj.Cells[off]

		case RLoadDeref:
			v := regs[in.A]
			if v.K != vm.KPtr || v.Obj == nil {
				return vm.CrashError(vm.CrashNullDeref, in.Pos, 0)
			}
			if !v.Obj.In(v.Off) {
				return vm.CrashError(vm.CrashOOB, in.Pos, 0)
			}
			regs[in.Dst] = v.Obj.Cells[v.Off]

		case RStoreLocal:
			frame.Cells[in.A] = m.fetch(in.BM, in.B, regs, frame)

		case RStoreGlobal:
			m.globals[in.A].Cells[0] = m.fetch(in.BM, in.B, regs, frame)

		case RStoreCell:
			addr := regs[in.A]
			addr.Obj.Cells[addr.Off] = m.fetch(in.BM, in.B, regs, frame)

		case RStoreLocalOp:
			nv, err := vm.BinOp(in.Kind, frame.Cells[in.A], m.fetch(in.BM, in.B, regs, frame), in.Pos)
			if err != nil {
				return err
			}
			frame.Cells[in.A] = nv
			if in.Dst >= 0 {
				regs[in.Dst] = nv
			}

		case RStoreGlobalOp:
			g := m.globals[in.A]
			nv, err := vm.BinOp(in.Kind, g.Cells[0], m.fetch(in.BM, in.B, regs, frame), in.Pos)
			if err != nil {
				return err
			}
			g.Cells[0] = nv
			if in.Dst >= 0 {
				regs[in.Dst] = nv
			}

		case RStoreCellOp:
			addr := regs[in.A]
			nv, err := vm.BinOp(in.Kind, addr.Obj.Cells[addr.Off], m.fetch(in.BM, in.B, regs, frame), in.Pos)
			if err != nil {
				return err
			}
			addr.Obj.Cells[addr.Off] = nv
			if in.Dst >= 0 {
				regs[in.Dst] = nv
			}

		case RZeroLocal:
			frame.Cells[in.A] = vm.IntValue(0)

		case RAllocArr:
			frame.Cells[in.A] = vm.PtrValue(m.arena.NewObject(in.Name, in.Val), 0)

		case RIncLocal:
			old := frame.Cells[in.A]
			frame.Cells[in.A] = incValue(old, in.Val)
			if in.Dst >= 0 {
				regs[in.Dst] = old
			}

		case RIncCell:
			addr := regs[in.A]
			old := addr.Obj.Cells[addr.Off]
			addr.Obj.Cells[addr.Off] = incValue(old, in.Val)
			if in.Dst >= 0 {
				regs[in.Dst] = old
			}

		case RIncIndex:
			obj, off, err := vm.IndexCell(m.fetch(in.AM, in.A, regs, frame), m.fetch(in.BM, in.B, regs, frame), in.Pos)
			if err != nil {
				return err
			}
			old := obj.Cells[off]
			obj.Cells[off] = incValue(old, in.Val)
			if in.Dst >= 0 {
				regs[in.Dst] = old
			}

		case RUnary:
			v, err := vm.UnaryOp(in.Kind, m.fetch(in.AM, in.A, regs, frame), in.Pos)
			if err != nil {
				return err
			}
			regs[in.Dst] = v

		case RBinary:
			v, err := m.binValue(in, regs, frame)
			if err != nil {
				return err
			}
			regs[in.Dst] = v

		case RBinStoreLocal:
			v, err := m.binValue(in, regs, frame)
			if err != nil {
				return err
			}
			frame.Cells[in.C] = v
			regs[in.Dst] = v

		case RBinStoreGlobal:
			v, err := m.binValue(in, regs, frame)
			if err != nil {
				return err
			}
			m.globals[in.C].Cells[0] = v
			regs[in.Dst] = v

		case RStoreIndex:
			obj, off, err := vm.IndexCell(m.fetch(in.AM, in.A, regs, frame), m.fetch(in.BM, in.B, regs, frame), in.Pos)
			if err != nil {
				return err
			}
			obj.Cells[off] = m.fetch(in.CM, in.C, regs, frame)

		case RBool:
			regs[in.Dst] = vm.BoolValue(m.fetch(in.AM, in.A, regs, frame))

		case RShortCircuit:
			l := m.fetch(in.AM, in.A, regs, frame)
			lTrue := l.Truthy()
			if err := m.branch(in.Site, l, lTrue); err != nil {
				return err
			}
			short := lTrue == (in.Kind != lang.ANDAND) // direction that short-circuits
			if short {
				v := int64(1)
				if in.Kind == lang.ANDAND {
					v = 0
				}
				regs[in.Dst] = vm.SymValue(v, vm.BoolExpr(l))
			}
			if lTrue != e.expected {
				if short {
					return resume(in.C)
				}
				return resume(int32(e.realPC) + 1)
			}

		case RBranch:
			cond := m.fetch(in.AM, in.A, regs, frame)
			taken := cond.Truthy()
			if err := m.branch(in.Site, cond, taken); err != nil {
				return err
			}
			if taken != e.expected {
				if taken {
					return resume(in.B)
				}
				return resume(in.C)
			}

		case RCmpBranch:
			cond, err := m.binValue(in, regs, frame)
			if err != nil {
				return err
			}
			taken := cond.Truthy()
			if err := m.branch(in.Site, cond, taken); err != nil {
				return err
			}
			if taken != e.expected {
				if taken {
					return resume(in.C)
				}
				return resume(int32(in.Val))
			}

		case RCall:
			fn := in.Fn
			callee := m.arena.NewObject(fn.FrameName, int64(fn.Decl.NumSlots))
			copy(callee.Cells, regs[in.A:in.A+in.B])
			m.depth++
			if m.depth > m.maxDepth {
				return vm.CrashError(vm.CrashStackOverflow, fn.Decl.Pos, 0)
			}
			calls = append(calls, callFrame{
				code: code, frame: frame, pc: int32(e.realPC) + 1,
				base: base, nregs: nr, dst: in.Dst,
			})
			base += nr
			if int(base)+fn.NumRegs > len(m.rf) {
				m.growRF(int(base) + fn.NumRegs)
			}
			code, nr, frame = fn.RCode, int32(fn.NumRegs), callee
			regs = m.rf[base : base+nr]

		case RCallB:
			v, err := m.host.Call(in.Name, in.Pos, regs[in.A:in.A+in.B])
			if err != nil {
				return err
			}
			regs[in.Dst] = v

		case RRet, RRetZero:
			v := vm.IntValue(0)
			if in.Op == RRet {
				v = m.fetch(in.AM, in.A, regs, frame)
			}
			m.depth--
			if len(calls) == 0 {
				return vm.ExitError(0)
			}
			cf := calls[len(calls)-1]
			calls = calls[:len(calls)-1]
			// cf.pc stays with the frame for a later divergence; the trace
			// itself continues linearly.
			code, frame, base, nr = cf.code, cf.frame, cf.base, cf.nregs
			regs = m.rf[base : base+nr]
			if cf.dst >= 0 {
				regs[cf.dst] = v
			}

		default:
			// RJump/RNop are elided at record time; anything else here is a
			// recorder bug.
			return fmt.Errorf("ir: opcode %v in linear trace", in.Op)
		}
	}
	if tripped {
		// The precomputed trip entry: clamp with none of its effects applied,
		// exactly as the general loop's per-instruction check would.
		m.steps = m.maxSteps + 1
		return vm.BudgetError()
	}
	// Trace exhausted on the recorded path: apply the charge carried past
	// the last entry and continue in the general loop.
	if t.endSteps != 0 {
		s := m.steps + int64(t.endSteps)
		if s > m.maxSteps {
			m.steps = m.maxSteps + 1
			return vm.BudgetError()
		}
		m.steps = s
	}
	return resume(t.resumePC)
}
