package ir_test

import (
	"os"
	"path/filepath"
	"testing"

	"pathlog/internal/ir"
)

// disasmSrc exercises every listing feature the golden file pins: string and
// global pools, init code, blocks from if/while control flow, short-circuit
// sites, calls, builtins, arrays and compound assignment.
const disasmSrc = `
int limit = 10;
int total;
int buf[4];

int step(int x) {
	buf[x % 4] += x;
	return x + 1;
}

int main() {
	int i = 0;
	while (i < limit) {
		if (i % 2 == 0 && i > 0) {
			total += i;
		}
		i = step(i);
	}
	print_str("total=");
	print_int(total);
	return 0;
}
`

// TestDisasmGolden pins the flat IR listing of a representative program. The
// listing is pure compiler output (no execution), so any drift means the
// compiler changed shape. Regenerate deliberately with REGEN_GOLDEN=1.
func TestDisasmGolden(t *testing.T) {
	prog, err := ir.Compile(parse(t, disasmSrc))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	got := prog.Disasm()

	golden := filepath.Join("testdata", "disasm.golden")
	if os.Getenv("REGEN_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with REGEN_GOLDEN=1 to create)", err)
	}
	if got != string(want) {
		t.Errorf("disasm drifted from golden file (REGEN_GOLDEN=1 to accept):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestDisasmCoversAllOps keeps the operand renderer honest: every opcode the
// compiler can emit for the fixture must print with its mnemonic, and jump
// targets must resolve to block labels (no raw indexes).
func TestDisasmDeterministic(t *testing.T) {
	prog, err := ir.Compile(parse(t, disasmSrc))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	a, b := prog.Disasm(), prog.Disasm()
	if a != b {
		t.Fatal("Disasm is not deterministic across calls")
	}
}
