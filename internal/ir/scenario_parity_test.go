package ir_test

import (
	"context"
	"reflect"
	"testing"

	"pathlog/internal/apps"
	"pathlog/internal/concolic"
	"pathlog/internal/core"
	"pathlog/internal/instrument"
	"pathlog/internal/ir"
	"pathlog/internal/lang"
	"pathlog/internal/replay"
	"pathlog/internal/static"
	"pathlog/internal/vm"
)

// The scenario-level differential harness: every named app scenario —
// coreutils, all five uServer experiments, the diff experiments, the
// Listing-1 micro program — runs the full pipeline (concolic analysis,
// instrumented user-site recording, guided replay) under the tree walker and
// the bytecode VM, and every artifact must match: branch labels and
// histograms, trace bits, syscall logs, crash sites, step counts, replay run
// counts and the per-branch search-profile attribution.

// pipeOut is everything one engine's pipeline produced, with wall-clock
// fields stripped.
type pipeOut struct {
	DynRuns      int
	Labels       map[lang.BranchID]concolic.Label
	ExecCount    map[lang.BranchID]int64
	SymExecCount map[lang.BranchID]int64
	BranchExecs  int64
	SymExecs     int64

	Stats *core.RecordStats

	HasRec      bool
	TraceBits   []byte
	TraceLen    int64
	SysReads    []int64
	SysSelects  [][]int
	Crash       vm.CrashInfo
	Fingerprint string

	Replay *replay.Result
}

// runPipeline drives one engine through analysis, record and replay (serial
// search) for a named scenario. The instrumentation plan is built from the
// engine's own analysis, so a labeling divergence surfaces as a plan
// divergence too.
func runPipeline(t *testing.T, name string, engine vm.Factory, replayRuns int) *pipeOut {
	t.Helper()
	ctx := context.Background()
	scn, err := apps.ScenarioByName(name)
	if err != nil {
		t.Fatal(err)
	}
	scn.Engine = engine
	an := apps.AnalysisScenarioFor(name, scn)
	an.Engine = engine

	dyn := an.AnalyzeDynamicContext(ctx, concolic.Options{MaxRuns: 6})
	st := scn.AnalyzeStatic(static.Options{LibAsSymbolic: true})
	plan := instrument.BuildPlan(scn.Prog, instrument.MethodDynamic,
		instrument.Inputs{Dynamic: dyn, Static: st}, true)

	rec, stats, err := scn.RecordContext(ctx, plan)
	if err != nil {
		t.Fatalf("record: %v", err)
	}
	stats.Wall = 0
	out := &pipeOut{
		DynRuns:      dyn.Runs,
		Labels:       dyn.Labels,
		ExecCount:    dyn.ExecCount,
		SymExecCount: dyn.SymExecCount,
		BranchExecs:  dyn.BranchExecs,
		SymExecs:     dyn.SymbolicExecs,
		Stats:        stats,
	}
	if rec == nil {
		return out
	}
	out.HasRec = true
	out.TraceBits = rec.Trace.Bytes()
	out.TraceLen = rec.Trace.Len()
	if rec.SysLog != nil {
		out.SysReads, out.SysSelects = rec.SysLog.Snapshot()
	}
	out.Crash = rec.Crash
	out.Fingerprint = rec.Fingerprint

	res := scn.ReplayContext(ctx, rec, replay.Options{MaxRuns: replayRuns})
	res.Elapsed = 0
	if res.Profile != nil {
		for _, bc := range res.Profile.Branches {
			bc.SolverTime = 0
		}
	}
	out.Replay = res
	return out
}

func scenarioList(t *testing.T) []string {
	names := apps.ScenarioNames()
	if testing.Short() {
		// One representative of each app family keeps -short fast.
		names = []string{"mkdir", "userver-exp4", "diff-exp1", "micro-fib"}
	}
	return names
}

// TestScenarioPipelineParity is the serial-search differential gate: with
// one worker both engines are fully deterministic, so every pipeline
// artifact must be identical — including the replay result's path stats,
// pending peak and per-branch SearchProfile attribution.
func TestScenarioPipelineParity(t *testing.T) {
	for _, name := range scenarioList(t) {
		t.Run(name, func(t *testing.T) {
			tree := runPipeline(t, name, vm.TreeFactory, 100)
			bc := runPipeline(t, name, ir.Engine, 100)
			if !reflect.DeepEqual(tree, bc) {
				diffPipeOut(t, tree, bc)
			}
		})
	}
}

// diffPipeOut reports which artifact diverged, field by field, so a parity
// break names the layer it happened in.
func diffPipeOut(t *testing.T, tree, bc *pipeOut) {
	t.Helper()
	check := func(what string, a, b interface{}) {
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s diverged:\ntree:     %+v\nbytecode: %+v", what, a, b)
		}
	}
	check("analysis runs", tree.DynRuns, bc.DynRuns)
	check("branch labels", tree.Labels, bc.Labels)
	check("exec histogram", tree.ExecCount, bc.ExecCount)
	check("symbolic-exec histogram", tree.SymExecCount, bc.SymExecCount)
	check("branch execs", tree.BranchExecs, bc.BranchExecs)
	check("symbolic execs", tree.SymExecs, bc.SymExecs)
	check("record stats", tree.Stats, bc.Stats)
	check("has recording", tree.HasRec, bc.HasRec)
	check("trace bits", tree.TraceBits, bc.TraceBits)
	check("trace length", tree.TraceLen, bc.TraceLen)
	check("syscall log reads", tree.SysReads, bc.SysReads)
	check("syscall log selects", tree.SysSelects, bc.SysSelects)
	check("crash site", tree.Crash, bc.Crash)
	check("plan fingerprint", tree.Fingerprint, bc.Fingerprint)
	check("replay result", tree.Replay, bc.Replay)
	if !t.Failed() {
		t.Fatal("pipeOut diverged but no field did — comparison bug")
	}
}

// TestScenarioReplayParityWorkers exercises the engines under the
// concurrent pending-list search (CI runs this package with -race). Worker
// scheduling makes run counts nondeterministic even within one engine, so
// the cross-engine assertions here are the scheduling-independent ones:
// whether the bug reproduces and that the reproducing input activates the
// recorded crash.
func TestScenarioReplayParityWorkers(t *testing.T) {
	names := []string{"mkdir", "userver-exp4"}
	if testing.Short() {
		names = names[:1]
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			ctx := context.Background()
			scn, err := apps.ScenarioByName(name)
			if err != nil {
				t.Fatal(err)
			}
			an := apps.AnalysisScenarioFor(name, scn)
			dyn := an.AnalyzeDynamicContext(ctx, concolic.Options{MaxRuns: 6})
			st := scn.AnalyzeStatic(static.Options{LibAsSymbolic: true})
			plan := instrument.BuildPlan(scn.Prog, instrument.MethodDynamicStatic,
				instrument.Inputs{Dynamic: dyn, Static: st}, true)
			rec, _, err := scn.RecordContext(ctx, plan)
			if err != nil || rec == nil {
				t.Fatalf("record: rec=%v err=%v", rec, err)
			}
			for _, engine := range []vm.Factory{vm.TreeFactory, ir.Engine} {
				scn.Engine = engine
				res := scn.ReplayContext(ctx, rec, replay.Options{MaxRuns: 1000, Workers: 4})
				if !res.Reproduced {
					t.Fatalf("not reproduced after %d runs", res.Runs)
				}
				if !scn.VerifyInput(res.InputBytes, rec.Crash) {
					t.Fatalf("reproducing input does not activate the recorded crash")
				}
			}
		})
	}
}
