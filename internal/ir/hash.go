package ir

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash"

	"pathlog/internal/lang"
)

// hashProgram computes the structural hash that keys the compile cache. It
// covers everything bytecode generation and observable behavior depend on:
// the global table (slots, sizes, initializers), every function body down to
// literals and positions (positions feed crash attribution), and the branch
// sites with their IDs. Note instrument.ProgramHash is NOT sufficient here —
// it hashes units, signatures and branch sites but not statement bodies.
func hashProgram(p *lang.Program) string {
	d := sha256.New()
	h := &hasher{w: d}
	fmt.Fprintf(d, "prog %d %d %s\n", len(p.Globals), len(p.FuncList), p.Main.Name)
	for _, g := range p.Globals {
		h.decl(g)
	}
	for _, fn := range p.FuncList {
		fmt.Fprintf(d, "func %s %d %d ", fn.Name, fn.NumSlots, len(fn.Params))
		h.pos(fn.Pos)
		for _, pr := range fn.Params {
			h.decl(pr.Decl)
		}
		h.stmt(fn.Body)
	}
	return hex.EncodeToString(d.Sum(nil))
}

type hasher struct {
	w hash.Hash
}

func (h *hasher) pos(p lang.Pos) {
	fmt.Fprintf(h.w, "@%s:%d:%d;", p.Unit, p.Line, p.Col)
}

func (h *hasher) decl(d *lang.VarDecl) {
	fmt.Fprintf(h.w, "var %s g=%t a=%t n=%d s=%d ", d.Name, d.Global, d.IsArray, d.Size, d.Slot)
	h.pos(d.Pos)
	if d.Init != nil {
		h.expr(d.Init)
	}
	fmt.Fprint(h.w, ";")
}

func (h *hasher) site(b *lang.BranchSite) {
	if b == nil {
		fmt.Fprint(h.w, "b-;")
		return
	}
	fmt.Fprintf(h.w, "b%d %d %s %d ", b.ID, b.Kind, b.Func, b.Region)
	h.pos(b.Pos)
}

func (h *hasher) stmt(s lang.Stmt) {
	if s == nil {
		fmt.Fprint(h.w, "nil;")
		return
	}
	switch st := s.(type) {
	case *lang.Block:
		fmt.Fprintf(h.w, "blk %d ", len(st.Stmts))
		h.pos(st.Pos)
		for _, inner := range st.Stmts {
			h.stmt(inner)
		}
	case *lang.DeclStmt:
		fmt.Fprint(h.w, "decl ")
		h.pos(st.Pos)
		h.decl(st.Decl)
	case *lang.ExprStmt:
		fmt.Fprint(h.w, "exprst ")
		h.pos(st.Pos)
		h.expr(st.E)
	case *lang.Return:
		fmt.Fprint(h.w, "ret ")
		h.pos(st.Pos)
		if st.E != nil {
			h.expr(st.E)
		}
	case *lang.Break:
		fmt.Fprint(h.w, "brk ")
		h.pos(st.Pos)
	case *lang.Continue:
		fmt.Fprint(h.w, "cont ")
		h.pos(st.Pos)
	case *lang.If:
		fmt.Fprint(h.w, "if ")
		h.pos(st.Pos)
		h.site(st.Branch)
		h.expr(st.Cond)
		h.stmt(st.Then)
		h.stmt(st.Else)
	case *lang.While:
		fmt.Fprint(h.w, "while ")
		h.pos(st.Pos)
		h.site(st.Branch)
		h.expr(st.Cond)
		h.stmt(st.Body)
	case *lang.For:
		fmt.Fprint(h.w, "for ")
		h.pos(st.Pos)
		h.site(st.Branch)
		h.stmt(st.Init)
		if st.Cond != nil {
			h.expr(st.Cond)
		} else {
			fmt.Fprint(h.w, "nocond;")
		}
		h.stmt(st.Post)
		h.stmt(st.Body)
	default:
		fmt.Fprintf(h.w, "stmt?%T;", s)
	}
}

func (h *hasher) expr(e lang.Expr) {
	switch x := e.(type) {
	case *lang.IntLit:
		fmt.Fprintf(h.w, "int %d ", x.V)
		h.pos(x.Pos)
	case *lang.StrLit:
		fmt.Fprintf(h.w, "str %q ", x.S)
		h.pos(x.Pos)
	case *lang.Ident:
		d := x.Decl
		fmt.Fprintf(h.w, "id %s g=%t a=%t s=%d ", x.Name, d.Global, d.IsArray, d.Slot)
		h.pos(x.Pos)
	case *lang.Unary:
		fmt.Fprintf(h.w, "un %d ", x.Op)
		h.pos(x.Pos)
		h.expr(x.X)
	case *lang.Binary:
		fmt.Fprintf(h.w, "bin %d ", x.Op)
		h.pos(x.Pos)
		h.expr(x.L)
		h.expr(x.R)
	case *lang.Logic:
		fmt.Fprintf(h.w, "logic %d ", x.Op)
		h.pos(x.Pos)
		h.site(x.Branch)
		h.expr(x.L)
		h.expr(x.R)
	case *lang.Assign:
		fmt.Fprintf(h.w, "asn %d ", x.Op)
		h.pos(x.Pos)
		h.expr(x.LHS)
		h.expr(x.RHS)
	case *lang.IncDec:
		fmt.Fprintf(h.w, "incdec %d ", x.Op)
		h.pos(x.Pos)
		h.expr(x.X)
	case *lang.Call:
		fmt.Fprintf(h.w, "call %s %d b=%t ", x.Name, len(x.Args), x.Func == nil)
		h.pos(x.Pos)
		for _, a := range x.Args {
			h.expr(a)
		}
	case *lang.Index:
		fmt.Fprint(h.w, "idx ")
		h.pos(x.Pos)
		h.expr(x.Base)
		h.expr(x.Idx)
	case *lang.AddrOf:
		fmt.Fprint(h.w, "addr ")
		h.pos(x.Pos)
		h.expr(x.X)
	case *lang.Deref:
		fmt.Fprint(h.w, "deref ")
		h.pos(x.Pos)
		h.expr(x.X)
	default:
		fmt.Fprintf(h.w, "expr?%T;", e)
	}
	fmt.Fprint(h.w, ";")
}
