package ir

import (
	"sync"

	"pathlog/internal/lang"
	"pathlog/internal/vm"
)

// The compile cache. A replay search runs one program hundreds to thousands
// of times — and the corpus layer re-parses the same sources into fresh AST
// instances — so compiled programs are shared process-wide: first by
// *lang.Program identity (lock-free fast path), then by structural hash, so
// re-linked copies of the same source reuse the same bytecode.
var (
	ptrCache  sync.Map // *lang.Program -> *Program
	hashMu    sync.Mutex
	hashCache = map[string]*Program{}
)

// Compile returns the bytecode for a linked program, compiling at most once
// per structurally distinct program.
func Compile(src *lang.Program) (*Program, error) {
	if p, ok := ptrCache.Load(src); ok {
		return p.(*Program), nil
	}
	h := hashProgram(src)
	hashMu.Lock()
	p := hashCache[h]
	hashMu.Unlock()
	if p == nil {
		var err error
		p, err = compile(src)
		if err != nil {
			return nil, err
		}
		p.Hash = h
		hashMu.Lock()
		// Two goroutines may have compiled concurrently; keep the first so
		// every caller shares one instance.
		if q, ok := hashCache[h]; ok {
			p = q
		} else {
			hashCache[h] = p
		}
		hashMu.Unlock()
	}
	ptrCache.Store(src, p)
	return p, nil
}

// Engine is the vm.Factory of the bytecode engine: it compiles the program
// (cached) and returns a dispatch-loop machine for one run. It is the default
// engine of a session; the tree walker (vm.TreeFactory) remains available as
// the differential-testing oracle.
func Engine(prog *lang.Program, opts vm.Options) vm.Machine {
	p, err := Compile(prog)
	if err != nil {
		return errMachine{err}
	}
	return newMachine(p, opts)
}

// errMachine surfaces a compile error at Run time, where every engine's
// errors already flow.
type errMachine struct{ err error }

// Run implements vm.Machine.
func (e errMachine) Run() (vm.Result, error) { return vm.Result{}, e.err }

// ResetCacheForTesting clears the process-wide compile cache.
func ResetCacheForTesting() {
	ptrCache = sync.Map{}
	hashMu.Lock()
	hashCache = map[string]*Program{}
	hashMu.Unlock()
}
