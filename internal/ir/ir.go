package ir

import (
	"pathlog/internal/lang"
)

// Op is a bytecode opcode.
type Op uint8

// Opcodes. Stack effects are written [pops] -> [pushes]; "peek" leaves the
// operand in place. A, B, Val, Kind, Pos, Site, Fn and Name are the operand
// fields of Instr; which ones an opcode uses is noted per opcode.
const (
	// OpNop does nothing; it exists to carry Steps charges on control-flow
	// edges (loop entries, branch joins) where no other instruction would
	// absorb them.
	OpNop Op = iota
	// OpConst pushes the integer literal Val.
	OpConst
	// OpStr pushes a pointer to interned string-pool entry A (lazily
	// allocated per run, in first-execution order, like the tree walker).
	OpStr
	// OpLoadLocal pushes frame slot A.
	OpLoadLocal
	// OpLoadGlobal pushes the scalar value of global A.
	OpLoadGlobal
	// OpGlobalPtr pushes a pointer to cell 0 of global A (array decay and
	// global lvalues).
	OpGlobalPtr
	// OpAddrLocal pushes a pointer to frame slot A (&x on a local scalar).
	OpAddrLocal
	// OpAddrLocalArr pushes the cell a local array name A designates as an
	// lvalue: the array pointer held in the slot, null-checked at Pos.
	OpAddrLocalArr
	// OpAddrIndex pops idx and base, bounds-checks base[idx] at Pos, and
	// pushes the cell address.
	OpAddrIndex
	// OpAddrDeref pops a pointer, checks it at Pos, and pushes the cell
	// address.
	OpAddrDeref
	// OpLoadIndex pops idx and base and pushes base[idx] (checked at Pos).
	OpLoadIndex
	// OpLoadDeref pops a pointer and pushes *p (checked at Pos).
	OpLoadDeref
	// OpStoreLocal stores the top of stack (peek) into frame slot A.
	OpStoreLocal
	// OpStoreGlobal stores the top of stack (peek) into global scalar A.
	OpStoreGlobal
	// OpStoreCell pops a cell address and stores the new top (peek) into it.
	OpStoreCell
	// OpStoreLocalOp applies compound assignment `slot A Kind= top`: replaces
	// the top with BinOp(Kind, old, top) evaluated at Pos and stores it.
	OpStoreLocalOp
	// OpStoreGlobalOp is OpStoreLocalOp for global scalar A.
	OpStoreGlobalOp
	// OpStoreCellOp pops a cell address and applies compound assignment to
	// it with the new top (replaced by the result).
	OpStoreCellOp
	// OpSetLocal pops the top into frame slot A (declaration initializers).
	OpSetLocal
	// OpSetGlobal pops the top into global scalar A (global init code).
	OpSetGlobal
	// OpZeroLocal stores integer 0 into frame slot A.
	OpZeroLocal
	// OpAllocArr allocates a Val-cell object named Name and stores a pointer
	// to it into frame slot A (local array declaration).
	OpAllocArr
	// OpIncLocal pushes the old value of frame slot A and adds Val (±1) to
	// it, with the tree walker's pointer and symbolic rules.
	OpIncLocal
	// OpIncCell pops a cell address, pushes the old cell value and adds Val.
	OpIncCell
	// OpUnary pops v and pushes UnaryOp(Kind, v) evaluated at Pos.
	OpUnary
	// OpBinary pops r then l and pushes BinOp(Kind, l, r) evaluated at Pos.
	OpBinary
	// OpBool pops v and pushes its 0/1 coercion (logic-expression result).
	OpBool
	// OpShortCircuit pops the left operand of Site's && / || (Kind), reports
	// the branch event, and either falls through into the right-operand code
	// or pushes the short-circuit result and jumps to A.
	OpShortCircuit
	// OpBranch pops the condition of Site, reports the branch event, and
	// jumps to A when taken, B when not.
	OpBranch
	// OpJump jumps to A.
	OpJump
	// OpPop discards the top of stack (expression statements).
	OpPop
	// OpCall pops B arguments, allocates Fn's frame, and transfers control
	// to it (stack-overflow-checked).
	OpCall
	// OpCallB pops B arguments and invokes builtin Name at Pos.
	OpCallB
	// OpRet pops the return value and returns to the caller; returning from
	// main ends the run with exit(0).
	OpRet
	// OpRetZero is OpRet with an implicit integer 0 return value (bare
	// `return;` and function-end fall-through).
	OpRetZero
)

var opNames = [...]string{
	OpNop: "nop", OpConst: "const", OpStr: "str",
	OpLoadLocal: "loadl", OpLoadGlobal: "loadg", OpGlobalPtr: "gptr",
	OpAddrLocal: "addrl", OpAddrLocalArr: "addrla", OpAddrIndex: "addridx",
	OpAddrDeref: "addrderef", OpLoadIndex: "loadidx", OpLoadDeref: "loadderef",
	OpStoreLocal: "storel", OpStoreGlobal: "storeg", OpStoreCell: "storec",
	OpStoreLocalOp: "storelop", OpStoreGlobalOp: "storegop", OpStoreCellOp: "storecop",
	OpSetLocal: "setl", OpSetGlobal: "setg", OpZeroLocal: "zerol",
	OpAllocArr: "allocarr", OpIncLocal: "incl", OpIncCell: "incc",
	OpUnary: "unary", OpBinary: "binary", OpBool: "bool",
	OpShortCircuit: "shortcirc", OpBranch: "branch", OpJump: "jump",
	OpPop: "pop", OpCall: "call", OpCallB: "callb",
	OpRet: "ret", OpRetZero: "ret0",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// Instr is one flat bytecode instruction.
type Instr struct {
	Op Op
	// Steps is the number of tree-walker step charges that precede this
	// instruction's effects; the VM applies them (with the budget check)
	// before executing the instruction.
	Steps int32
	// A and B are slot numbers, pool indexes, argument counts or jump
	// targets, per opcode.
	A, B int32
	// Val is an integer literal, array size, or ±1 increment delta.
	Val int64
	// Kind is the operator token for unary/binary/compound/short-circuit ops.
	Kind lang.Kind
	// Pos is the source position used for crash attribution.
	Pos lang.Pos
	// Site is the branch site of OpBranch/OpShortCircuit.
	Site *lang.BranchSite
	// Fn is the callee of OpCall.
	Fn *FuncCode
	// Name is the builtin name of OpCallB or the object name of OpAllocArr.
	Name string
}

// FuncCode is the compiled body of one function.
type FuncCode struct {
	// Decl is the source declaration.
	Decl *lang.FuncDecl
	// FrameName is Decl.Name + ".frame", precomputed so frame allocation
	// matches the tree walker's object naming without per-call formatting.
	FrameName string
	// Code is the flat stack-form instruction array the compiler emits; it
	// carries the tree walker's step-charge schedule and is the input to
	// register lowering. Entry is index 0 and every path ends in
	// OpRet/OpRetZero.
	Code []Instr
	// RCode is the fused register-form code the VM executes, lowered from
	// Code (lower.go, fuse.go).
	RCode []RInstr
	// NumRegs is the number of virtual registers RCode needs.
	NumRegs int
}

// Program is one compiled program: the bytecode of every function plus the
// constant pools shared by all runs.
type Program struct {
	// Src is the source program (globals table, branch sites, functions).
	Src *lang.Program
	// Hash is the structural program hash the compile cache is keyed by.
	Hash string
	// Funcs holds the compiled functions in lang.Program.FuncList order.
	Funcs []*FuncCode
	// Main is the entry function's code.
	Main *FuncCode
	// Init is the global-initializer code, run once before main with no
	// frame; it ends by falling off the end of the array.
	Init []Instr
	// RInit is the register form of Init, with InitRegs virtual registers.
	RInit []RInstr
	// InitRegs is the register count of RInit.
	InitRegs int
	// Strings is the string constant pool; OpStr.A indexes it. One entry per
	// string-literal site, in source order, matching the tree walker's
	// per-site interning.
	Strings []string
}
