package ir_test

import (
	"fmt"
	"reflect"
	"testing"

	"pathlog/internal/ir"
	"pathlog/internal/lang"
	"pathlog/internal/oskernel"
	"pathlog/internal/vm"
)

// The differential harness: every program runs under the tree walker (the
// oracle) and the bytecode VM with identical kernels, and everything
// observable must match bit for bit — results, step counts, branch traces,
// stdout, syscall counts.

func parse(t *testing.T, src string) *lang.Program {
	t.Helper()
	u, err := lang.ParseUnit("test.mc", lang.RegionApp, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := lang.Link([]*lang.Unit{u})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return p
}

// traceSink records every branch event.
type traceSink struct {
	events []string
}

func (s *traceSink) OnBranch(site *lang.BranchSite, cond vm.Value, taken bool) error {
	s.events = append(s.events, fmt.Sprintf("b%d:%v:%d:%v", site.ID, taken, cond.I, cond.Sym))
	return nil
}

// runEngine executes prog once under the given factory with a fresh kernel.
func runEngine(t *testing.T, f vm.Factory, prog *lang.Program, cfg oskernel.Config, maxSteps int64) (vm.Result, error, []string, int64) {
	t.Helper()
	kern := oskernel.New(cfg)
	sink := &traceSink{}
	res, err := f(prog, vm.Options{Kernel: kern, Sink: sink, MaxSteps: maxSteps}).Run()
	return res, err, sink.events, kern.NSyscalls
}

// assertParity runs prog under both engines and requires identical outcomes.
func assertParity(t *testing.T, prog *lang.Program, cfg oskernel.Config, maxSteps int64) {
	t.Helper()
	tRes, tErr, tTrace, tSys := runEngine(t, vm.TreeFactory, prog, cfg, maxSteps)
	bRes, bErr, bTrace, bSys := runEngine(t, ir.Engine, prog, cfg, maxSteps)
	if (tErr == nil) != (bErr == nil) {
		t.Fatalf("error parity: tree=%v bytecode=%v", tErr, bErr)
	}
	if tErr != nil {
		if tErr.Error() != bErr.Error() {
			t.Fatalf("error text: tree=%v bytecode=%v", tErr, bErr)
		}
		return
	}
	if !reflect.DeepEqual(tRes, bRes) {
		t.Fatalf("result parity:\ntree:     %+v\nbytecode: %+v", tRes, bRes)
	}
	if !reflect.DeepEqual(tTrace, bTrace) {
		t.Fatalf("trace parity (%d vs %d events):\ntree:     %v\nbytecode: %v",
			len(tTrace), len(bTrace), tTrace, bTrace)
	}
	if tSys != bSys {
		t.Fatalf("syscall count parity: tree=%d bytecode=%d", tSys, bSys)
	}
}

var parityPrograms = map[string]string{
	"arith": `int main() { exit((2 + 3 * 4 - 1) / 2 % 5); return 0; }`,
	"bitops": `int main() {
		exit(((0xF0 | 0x0F) ^ 0xFF) + (1 << 4) + (256 >> 4) + (~0 + 1) + (12 & 10));
		return 0; }`,
	"fib": `
		int fib(int n) {
			if (n < 2) { return n; }
			return fib(n - 1) + fib(n - 2);
		}
		int main() { exit(fib(12)); return 0; }`,
	"loops": `int main() {
		int s = 0;
		int i;
		for (i = 1; i <= 10; i++) { s += i; }
		while (s > 50) { s -= 1; }
		int j = 0;
		for (;;) { j++; if (j >= 3) { break; } }
		s *= 2; s /= 4; s %= 7;
		exit(s * 10 + j);
		return 0; }`,
	"breakcontinue": `int main() {
		int s = 0;
		int i;
		for (i = 0; i < 10; i++) {
			if (i % 2 == 0) { continue; }
			if (i > 7) { break; }
			s += i;
		}
		int k = 0;
		while (k < 100) { k++; if (k == 5) { break; } }
		exit(s + k);
		return 0; }`,
	"nested-loops": `int main() {
		int s = 0;
		int i; int j;
		for (i = 0; i < 5; i++) {
			for (j = 0; j < 5; j++) {
				if (j > i) { continue; }
				if (i == 4 && j == 2) { break; }
				s += 1;
			}
		}
		exit(s);
		return 0; }`,
	"arrays": `int main() {
		int a[8];
		int i;
		for (i = 0; i < 8; i++) { a[i] = i * i; }
		int *p = &a[3];
		*p = 100;
		p++;
		exit(a[3] + *p + a[7]);
		return 0; }`,
	"globals": `
		int g = 7;
		int h = 3 + 4;
		int tab[4];
		int bump() { g += 1; return g; }
		int main() {
			tab[0] = bump(); tab[1] = bump();
			exit(g * 100 + tab[0] + tab[1] + h);
			return 0; }`,
	"strings": `int main() {
		print_str("hello ");
		print_str("world");
		print_char(10);
		int i;
		for (i = 0; i < 2; i++) { print_str("x"); }
		exit(0);
		return 0; }`,
	"logic": `int main() {
		int a = 3; int b = 0;
		int r1 = a && b;
		int r2 = a || b;
		int r3 = b && a;
		int r4 = b || b;
		int c = 0;
		if (a > 1 && b == 0 || c) { c = 9; }
		exit(r1 + r2 * 10 + r3 * 100 + r4 * 1000 + c);
		return 0; }`,
	"incdec": `int main() {
		int a[3];
		a[0] = 5;
		int i = 0;
		int x = a[i++];
		int y = a[i--];
		int *p = &a[0];
		int z = (*p)++;
		exit(x * 100 + y * 10 + z + a[0]);
		return 0; }`,
	"deref-chain": `int main() {
		int v = 42;
		int *p = &v;
		*p = 43;
		int w = *p + v;
		*p += 2;
		exit(w + v);
		return 0; }`,
	"crash-oob": `int main() {
		int a[4];
		int i;
		for (i = 0; i <= 4; i++) { a[i] = i; }
		exit(0);
		return 0; }`,
	"crash-null": `int main() {
		int *p = 0;
		exit(*p);
		return 0; }`,
	"crash-div": `int main() {
		int z = 0;
		exit(10 / z);
		return 0; }`,
	"crash-explicit": `int main() {
		int i;
		for (i = 0; i < 3; i++) { }
		crash(42);
		return 0; }`,
	"crash-recursion": `
		int f(int n) { return f(n + 1); }
		int main() { exit(f(0)); return 0; }`,
	"empty-blocks": `int main() {
		int i;
		for (i = 0; i < 3; i++) { { } }
		while (i > 0) { i--; { { } } }
		if (i == 0) { } else { i = 1; }
		if (i == 1) { i = 2; } else { }
		exit(i);
		return 0; }`,
	"args": `int main() {
		int buf[16];
		int n = getarg(0, buf, 16);
		int s = 0;
		int i;
		for (i = 0; i < n; i++) { s += buf[i]; }
		exit(s % 251);
		return 0; }`,
	"files": `int main() {
		int fd = open("data.txt");
		if (fd < 0) { exit(1); }
		int buf[32];
		int n = read(fd, buf, 32);
		int i;
		int s = 0;
		for (i = 0; i < n; i++) { s += buf[i]; }
		write(1, buf, n);
		close(fd);
		exit(s % 97);
		return 0; }`,
}

func parityConfig(name string) oskernel.Config {
	switch name {
	case "args":
		return oskernel.Config{Args: [][]byte{[]byte("hello-arg")}}
	case "files":
		return oskernel.Config{Files: map[string][]byte{"data.txt": []byte("file contents here")}}
	}
	return oskernel.Config{}
}

func TestEngineParity(t *testing.T) {
	for name, src := range parityPrograms {
		t.Run(name, func(t *testing.T) {
			assertParity(t, parse(t, src), parityConfig(name), 0)
		})
	}
}

// TestEngineParityBudgetSweep runs each program under every step budget from
// 1 to its full cost. Any divergence in where charges land — even a single
// step attributed to the wrong edge — shows up as a budget trip in one engine
// but not the other, so this pins the charge schedule exactly.
func TestEngineParityBudgetSweep(t *testing.T) {
	for name, src := range parityPrograms {
		if name == "crash-recursion" {
			continue // cost is dominated by the depth limit; sweep is slow and adds nothing
		}
		t.Run(name, func(t *testing.T) {
			prog := parse(t, src)
			cfg := parityConfig(name)
			full, err, _, _ := runEngine(t, vm.TreeFactory, prog, cfg, 0)
			if err != nil {
				t.Fatalf("full run: %v", err)
			}
			for budget := int64(1); budget <= full.Steps; budget++ {
				tRes, tErr, tTrace, _ := runEngine(t, vm.TreeFactory, prog, cfg, budget)
				bRes, bErr, bTrace, _ := runEngine(t, ir.Engine, prog, cfg, budget)
				if (tErr == nil) != (bErr == nil) {
					t.Fatalf("budget %d: error parity: tree=%v bytecode=%v", budget, tErr, bErr)
				}
				if !reflect.DeepEqual(tRes, bRes) {
					t.Fatalf("budget %d:\ntree:     %+v\nbytecode: %+v", budget, tRes, bRes)
				}
				if !reflect.DeepEqual(tTrace, bTrace) {
					t.Fatalf("budget %d: trace:\ntree:     %v\nbytecode: %v", budget, tTrace, bTrace)
				}
			}
		})
	}
}
