package vm

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"pathlog/internal/lang"
	"pathlog/internal/oskernel"
	"pathlog/internal/sym"
)

func compile(t *testing.T, src string) *lang.Program {
	t.Helper()
	u, err := lang.ParseUnit("test.mc", lang.RegionApp, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := lang.Link([]*lang.Unit{u})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return p
}

func run(t *testing.T, src string, cfg oskernel.Config) Result {
	t.Helper()
	return runOpts(t, src, cfg, Options{})
}

func runOpts(t *testing.T, src string, cfg oskernel.Config, opts Options) Result {
	t.Helper()
	prog := compile(t, src)
	opts.Kernel = oskernel.New(cfg)
	res, err := New(prog, opts).Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestArithmetic(t *testing.T) {
	res := run(t, `int main() { return (2 + 3 * 4 - 1) / 2 % 5; }`, oskernel.Config{})
	// (2+12-1)/2 %5 = 13/2 %5 = 6%5 = 1... exit() not used, so main's return
	// value is discarded and Exit stays 0; use exit() to observe values.
	if res.Crashed || res.Exit != 0 {
		t.Fatalf("res: %+v", res)
	}
	res = run(t, `int main() { exit((2 + 3 * 4 - 1) / 2 % 5); return 0; }`, oskernel.Config{})
	if res.Exit != 1 {
		t.Fatalf("exit: %d", res.Exit)
	}
}

func TestBitOps(t *testing.T) {
	res := run(t, `int main() { exit(((0xF0 | 0x0F) ^ 0xFF) + (1 << 4) + (256 >> 4) + (~0 + 1) + (12 & 10)); return 0; }`, oskernel.Config{})
	// 0 + 16 + 16 + 0 + 8 = 40
	if res.Exit != 40 {
		t.Fatalf("exit: %d", res.Exit)
	}
}

func TestFibonacciRecursive(t *testing.T) {
	res := run(t, `
		int fib(int n) {
			if (n < 2) { return n; }
			return fib(n - 1) + fib(n - 2);
		}
		int main() { exit(fib(12)); return 0; }
	`, oskernel.Config{})
	if res.Exit != 144 {
		t.Fatalf("fib(12): %d", res.Exit)
	}
}

func TestLoopsAndCompound(t *testing.T) {
	res := run(t, `
		int main() {
			int s = 0;
			int i;
			for (i = 1; i <= 10; i++) { s += i; }
			while (s > 50) { s -= 1; }
			int j = 0;
			for (;;) { j++; if (j >= 3) { break; } }
			s *= 2;
			s /= 4;
			s %= 7;
			exit(s * 10 + j);
			return 0;
		}
	`, oskernel.Config{})
	// s=55 → 50 → *2=100 → /4=25 → %7=4 ; j=3 → 43
	if res.Exit != 43 {
		t.Fatalf("exit: %d", res.Exit)
	}
}

func TestBreakContinue(t *testing.T) {
	res := run(t, `
		int main() {
			int s = 0;
			int i;
			for (i = 0; i < 10; i++) {
				if (i % 2 == 0) { continue; }
				if (i > 7) { break; }
				s += i;
			}
			exit(s);
			return 0;
		}
	`, oskernel.Config{})
	// odd i <= 7: 1+3+5+7 = 16
	if res.Exit != 16 {
		t.Fatalf("exit: %d", res.Exit)
	}
}

func TestArraysAndPointers(t *testing.T) {
	res := run(t, `
		int g[8];
		int sum(int *p, int n) {
			int s = 0;
			int i;
			for (i = 0; i < n; i++) { s += p[i]; }
			return s;
		}
		int main() {
			int a[4];
			int i;
			for (i = 0; i < 4; i++) { a[i] = i * i; }
			int *p = &a[1];
			*p = 100;
			p++;
			*p = 200;
			g[0] = sum(a, 4);      // 0+100+200+9
			int *q = g;
			exit(*q + (p - a));    // 309 + 2
			return 0;
		}
	`, oskernel.Config{})
	if res.Exit != 311 {
		t.Fatalf("exit: %d", res.Exit)
	}
}

func TestStringsAndGlobals(t *testing.T) {
	res := run(t, `
		char buf[32];
		int copy(char *dst, char *src) {
			int i = 0;
			while (src[i] != '\0') { dst[i] = src[i]; i++; }
			dst[i] = '\0';
			return i;
		}
		int main() {
			int n = copy(buf, "hello");
			print_str(buf);
			print_char('\n');
			print_int(n);
			exit(n);
			return 0;
		}
	`, oskernel.Config{})
	if res.Exit != 5 {
		t.Fatalf("exit: %d", res.Exit)
	}
	if string(res.Stdout) != "hello\n5" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}

func TestGlobalInitializers(t *testing.T) {
	res := run(t, `
		int base = 40;
		int extra = 2;
		int main() { exit(base + extra); return 0; }
	`, oskernel.Config{})
	if res.Exit != 42 {
		t.Fatalf("exit: %d", res.Exit)
	}
}

func TestLogicShortCircuit(t *testing.T) {
	res := run(t, `
		int calls = 0;
		int bump() { calls++; return 1; }
		int main() {
			int a = 0 && bump();   // bump not called
			int b = 1 || bump();   // bump not called
			int c = 1 && bump();   // called
			int d = 0 || bump();   // called
			exit(calls * 100 + a * 1 + b * 2 + c * 4 + d * 8);
			return 0;
		}
	`, oskernel.Config{})
	if res.Exit != 2*100+0+2+4+8 {
		t.Fatalf("exit: %d", res.Exit)
	}
}

func TestCrashKinds(t *testing.T) {
	cases := []struct {
		src  string
		kind CrashKind
	}{
		{`int main() { int a[2]; a[5] = 1; return 0; }`, CrashOOB},
		{`int main() { int a[2]; exit(a[-1]); return 0; }`, CrashOOB},
		{`int *gp; int main() { *gp = 3; return 0; }`, CrashNullDeref},
		{`int main() { int x = 0; exit(4 / x); return 0; }`, CrashDivZero},
		{`int main() { int x = 0; exit(4 % x); return 0; }`, CrashDivZero},
		{`int f(int n) { return f(n + 1); } int main() { return f(0); }`, CrashStackOverflow},
		{`int main() { crash(9); return 0; }`, CrashExplicit},
	}
	for i, tc := range cases {
		res := run(t, tc.src, oskernel.Config{})
		if !res.Crashed || res.Crash.Kind != tc.kind {
			t.Errorf("case %d: got %+v, want kind %v", i, res.Crash, tc.kind)
		}
	}
	// crash code is preserved.
	res := run(t, `int main() { crash(77); return 0; }`, oskernel.Config{})
	if res.Crash.Code != 77 {
		t.Errorf("crash code: %d", res.Crash.Code)
	}
}

func TestArgsBuiltins(t *testing.T) {
	cfg := oskernel.Config{Args: [][]byte{[]byte("-p"), []byte("dir")}}
	res := run(t, `
		int main() {
			char a0[16];
			char a1[16];
			int n0 = getarg(0, a0, 16);
			int n1 = getarg(1, a1, 16);
			int miss = getarg(5, a0, 16);
			if (a0[0] == '-' && a0[1] == 'p' && n0 == 2 && n1 == 3 && miss == -1) {
				exit(argcount());
			}
			exit(99);
			return 0;
		}
	`, cfg)
	if res.Exit != 2 {
		t.Fatalf("exit: %d stdout=%q", res.Exit, res.Stdout)
	}
}

func TestFileReadBuiltins(t *testing.T) {
	cfg := oskernel.Config{Files: map[string][]byte{"a.txt": []byte("AB")}}
	res := run(t, `
		int main() {
			int fd = open("a.txt");
			if (fd < 0) { exit(1); }
			char buf[8];
			int n = read(fd, buf, 8);
			int eof = read(fd, buf + 4, 4);
			close(fd);
			int bad = open("missing");
			exit(n * 100 + eof * 10 + (bad == 0 - 1) + buf[0] - 'A');
			return 0;
		}
	`, cfg)
	// n=2, eof=0, bad==-1 → +1, buf[0]-'A'=0 → 201
	if res.Exit != 201 {
		t.Fatalf("exit: %d", res.Exit)
	}
}

func TestServerBuiltins(t *testing.T) {
	cfg := oskernel.Config{
		Conns:                 []oskernel.ConnSpec{{Payload: []byte("GET")}},
		ListenPort:            80,
		CrashSignalAfterConns: true,
	}
	res := run(t, `
		int main() {
			int lfd = listen_socket(80);
			int ready[4];
			int n = select_ready(ready, 4);
			if (n < 1) { exit(1); }
			int cfd = accept(lfd);
			if (cfd < 0) { exit(2); }
			char buf[16];
			int r = read(cfd, buf, 16);
			write(cfd, buf, r);
			if (signal_pending()) { crash(7); }
			exit(3);
			return 0;
		}
	`, cfg)
	if !res.Crashed || res.Crash.Kind != CrashExplicit || res.Crash.Code != 7 {
		t.Fatalf("res: %+v", res)
	}
}

// recordingSink captures branch executions.
type recordingSink struct {
	sites []lang.BranchID
	conds []bool
	taken []bool
	stop  lang.BranchID
	abort bool
}

func (r *recordingSink) OnBranch(site *lang.BranchSite, cond Value, taken bool) error {
	r.sites = append(r.sites, site.ID)
	r.conds = append(r.conds, cond.IsSymbolic())
	r.taken = append(r.taken, taken)
	if r.abort && site.ID == r.stop {
		return ErrAbortRun
	}
	return nil
}

func TestBranchSinkObservesAll(t *testing.T) {
	sink := &recordingSink{}
	res := runOpts(t, `
		int main() {
			int i;
			for (i = 0; i < 3; i++) {        // b0: 4 execs
				if (i == 1) { }              // b1: 3 execs
			}
			return 0;
		}
	`, oskernel.Config{}, Options{Sink: sink})
	if res.Crashed {
		t.Fatalf("crash: %+v", res.Crash)
	}
	if len(sink.sites) != 7 {
		t.Fatalf("branch execs: %d (%v)", len(sink.sites), sink.sites)
	}
	if res.BranchExecs != 7 {
		t.Fatalf("counter: %d", res.BranchExecs)
	}
}

func TestBranchSinkAbort(t *testing.T) {
	sink := &recordingSink{abort: true, stop: 1}
	res := runOpts(t, `
		int main() {
			int i;
			for (i = 0; i < 3; i++) {
				if (i == 1) { }
			}
			return 0;
		}
	`, oskernel.Config{}, Options{Sink: sink})
	if !res.Aborted {
		t.Fatalf("expected abort, got %+v", res)
	}
}

// fakeWorld marks arg bytes symbolic.
type fakeWorld struct {
	inputs map[string]*sym.Input
	nextID int
}

func (w *fakeWorld) MarkByte(stream string, off int64) sym.Expr {
	key := fmt.Sprintf("%s:%d", stream, off)
	if in, ok := w.inputs[key]; ok {
		return in
	}
	in := sym.NewInput(w.nextID, key, 0, 255)
	w.nextID++
	w.inputs[key] = in
	return in
}

func (w *fakeWorld) SyscallExpr(kind string, seq int) sym.Expr { return nil }

func TestSymbolicPropagation(t *testing.T) {
	sink := &recordingSink{}
	world := &fakeWorld{inputs: map[string]*sym.Input{}}
	res := runOpts(t, `
		int main() {
			char a[8];
			getarg(0, a, 8);
			int x = a[0] + 1;          // symbolic
			int y = 10;                // concrete
			if (x > 50) { y = 20; }    // b0: symbolic condition
			if (y == 20) { }           // b1: y is concrete (control dependence is not data flow)
			exit(x);
			return 0;
		}
	`, oskernel.Config{Args: [][]byte{[]byte("Q")}}, Options{Sink: sink, World: world})
	if res.Exit != 'Q'+1 {
		t.Fatalf("exit: %d", res.Exit)
	}
	if len(sink.conds) != 2 {
		t.Fatalf("branches: %d", len(sink.conds))
	}
	if !sink.conds[0] {
		t.Error("first branch should be symbolic")
	}
	if sink.conds[1] {
		t.Error("second branch should be concrete")
	}
}

func TestSymbolicExprShape(t *testing.T) {
	world := &fakeWorld{inputs: map[string]*sym.Input{}}
	var captured sym.Expr
	sink := sinkFunc(func(site *lang.BranchSite, cond Value, taken bool) error {
		captured = cond.Sym
		return nil
	})
	runOpts(t, `
		int main() {
			char a[8];
			getarg(0, a, 8);
			if (a[0] * 2 - 1 > 100) { }
			return 0;
		}
	`, oskernel.Config{Args: [][]byte{[]byte("A")}}, Options{Sink: sink, World: world})
	if captured == nil {
		t.Fatal("no symbolic condition captured")
	}
	want := "(((arg0:0 * 2) - 1) > 100)"
	if got := sym.Format(captured); got != want {
		t.Fatalf("expr: %q want %q", got, want)
	}
	// The constraint must evaluate consistently: 'A'*2-1 = 129 > 100.
	if captured.Eval(sym.MapAssignment{0: 'A'}) != 1 {
		t.Error("expr misevaluates")
	}
}

type sinkFunc func(*lang.BranchSite, Value, bool) error

func (f sinkFunc) OnBranch(s *lang.BranchSite, c Value, tk bool) error { return f(s, c, tk) }

func TestStepBudget(t *testing.T) {
	res := runOpts(t, `int main() { while (1) { } return 0; }`,
		oskernel.Config{}, Options{MaxSteps: 1000})
	if !res.BudgetExceeded {
		t.Fatalf("expected budget exceeded: %+v", res)
	}
}

func TestIncDecSemantics(t *testing.T) {
	res := run(t, `
		int main() {
			int i = 5;
			int a = i++;   // a=5, i=6
			int b = i--;   // b=6, i=5
			int arr[3];
			arr[0] = 7;
			arr[0]++;
			exit(a * 100 + b * 10 + i + arr[0] * 1000);
			return 0;
		}
	`, oskernel.Config{})
	if res.Exit != 8000+500+60+5 {
		t.Fatalf("exit: %d", res.Exit)
	}
}

func TestPointerComparisons(t *testing.T) {
	res := run(t, `
		int main() {
			int a[4];
			int *p = &a[1];
			int *q = &a[3];
			int *nil_p = 0;
			int r = 0;
			if (p < q) { r += 1; }
			if (p == &a[1]) { r += 2; }
			if (p != q) { r += 4; }
			if (nil_p == 0) { r += 8; }
			if (p != 0) { r += 16; }
			exit(r);
			return 0;
		}
	`, oskernel.Config{})
	if res.Exit != 31 {
		t.Fatalf("exit: %d", res.Exit)
	}
}

func TestShadowingAndScopes(t *testing.T) {
	res := run(t, `
		int x = 1;
		int main() {
			int r = x;
			int x = 10;
			r += x;
			{
				int x = 100;
				r += x;
			}
			r += x;
			exit(r);
			return 0;
		}
	`, oskernel.Config{})
	if res.Exit != 121 {
		t.Fatalf("exit: %d", res.Exit)
	}
}

func TestVoidFunctionAndParams(t *testing.T) {
	res := run(t, `
		int g = 0;
		void note(int v) { g += v; return; }
		int main() { note(4); note(5); exit(g); return 0; }
	`, oskernel.Config{})
	if res.Exit != 9 {
		t.Fatalf("exit: %d", res.Exit)
	}
}

// TestQuickVMArithMatchesGo property-checks that MiniC integer arithmetic
// matches Go's semantics for the same expressions.
func TestQuickVMArithMatchesGo(t *testing.T) {
	prog := compile(t, `
		int main() {
			char a[4];
			char b[4];
			getarg(0, a, 4);
			getarg(1, b, 4);
			int x = a[0];
			int y = b[0] + 1;  // avoid div by zero
			exit((x + y) * 3 - x / y + x % y);
			return 0;
		}
	`)
	f := func(xa, xb uint8) bool {
		x, y := int64(xa), int64(xb)+1
		kern := oskernel.New(oskernel.Config{Args: [][]byte{{xa}, {xb}}})
		res, err := New(prog, Options{Kernel: kern}).Run()
		if err != nil {
			return false
		}
		want := (x+y)*3 - x/y + x%y
		return res.Exit == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestStdoutCapture(t *testing.T) {
	res := run(t, `
		int main() {
			print_str("x=");
			print_int(0 - 42);
			return 0;
		}
	`, oskernel.Config{})
	if string(res.Stdout) != "x=-42" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}

func TestCrashSiteStable(t *testing.T) {
	src := `int main() { if (argcount() > 0) { crash(1); } crash(2); return 0; }`
	r1 := run(t, src, oskernel.Config{Args: [][]byte{[]byte("x")}})
	r2 := run(t, src, oskernel.Config{Args: [][]byte{[]byte("y")}})
	r3 := run(t, src, oskernel.Config{})
	if r1.Crash.Site() != r2.Crash.Site() {
		t.Error("same path should crash at same site")
	}
	if r1.Crash.Site() == r3.Crash.Site() {
		t.Error("different path should crash at different site")
	}
	if !strings.Contains(r1.Crash.Site(), "crash()@test.mc:1") {
		t.Errorf("site: %s", r1.Crash.Site())
	}
}
