package vm

import (
	"errors"

	"pathlog/internal/lang"
)

// Machine is one execution of a MiniC program. The tree-walking interpreter
// (New) and the bytecode VM (internal/ir) both satisfy it; everything above
// this interface — the branch sinks, the kernel, the symbolic world — is
// engine-agnostic, which is what makes the tree walker usable as a
// differential-testing oracle for the bytecode engine.
type Machine interface {
	// Run executes the program's main function to completion.
	Run() (Result, error)
}

// Factory builds a fresh Machine for one run of prog under opts. The record,
// concolic and replay layers each take a Factory so the execution engine is
// swappable per session (pathlog.WithEngine).
type Factory func(prog *lang.Program, opts Options) Machine

// TreeFactory is the Factory of the tree-walking interpreter — the original
// recursive evaluator, kept as the parity oracle for faster engines.
func TreeFactory(prog *lang.Program, opts Options) Machine { return New(prog, opts) }

// The constructors below build the abnormal-termination errors an execution
// engine threads through its evaluator. Finish maps them onto a Result
// exactly the way the tree walker does, so every engine built on them reports
// crashes, exits, aborts and budget blowups identically.

// CrashError terminates a run with a program crash at the given site.
func CrashError(kind CrashKind, pos lang.Pos, code int64) error {
	return &runError{crash: &CrashInfo{Kind: kind, Pos: pos, Code: code}}
}

// ExitError terminates a run as a normal exit with the given code.
func ExitError(code int64) error { return &runError{exit: &code} }

// BudgetError terminates a run that exceeded its step budget.
func BudgetError() error { return &runError{budget: true} }

// SinkError wraps a BranchSink error: ErrAbortRun becomes an engine abort,
// anything else a VM-internal failure.
func SinkError(err error) error {
	if errors.Is(err, ErrAbortRun) {
		return &runError{abort: true}
	}
	return &runError{err: err}
}

// Finish assembles a Result from a run's counters and its termination error,
// with the same classification the tree walker applies: crash, exit, sink
// abort and budget blowup produce a Result; anything else is a VM-internal
// error and is returned as one.
func Finish(steps, branchExecs int64, stdout []byte, err error) (Result, error) {
	res := Result{
		Steps:       steps,
		BranchExecs: branchExecs,
		Stdout:      stdout,
	}
	var re *runError
	if !errors.As(err, &re) {
		return res, err
	}
	switch {
	case re.crash != nil:
		res.Crashed = true
		res.Crash = *re.crash
	case re.exit != nil:
		res.Exit = *re.exit
	case re.abort:
		res.Aborted = true
	case re.budget:
		res.BudgetExceeded = true
	default:
		return res, re.err
	}
	return res, nil
}
