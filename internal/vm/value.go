// Package vm interprets linked MiniC programs.
//
// The interpreter is the reproduction's stand-in for running CIL-instrumented
// native code: it executes concrete values, optionally carries a symbolic
// expression alongside every integer (concolic execution), and exposes a
// branch hook at every branch site so that analyses, the branch logger and
// the replay engine can observe or abort executions. When no symbolic world
// is attached, no expressions are built and the interpreter runs on its
// cheap concrete path — that is the "user site" configuration whose overhead
// the paper measures.
package vm

import (
	"fmt"
	"sync/atomic"

	"pathlog/internal/sym"
)

// ValueKind discriminates Value.
type ValueKind int

// Value kinds.
const (
	// KInt is a 64-bit integer (also chars and booleans).
	KInt ValueKind = iota
	// KPtr is a pointer into an Object.
	KPtr
)

// Value is one MiniC runtime value. Integers may carry a symbolic expression
// mirroring their concrete value; pointers are always concrete (the engine
// concretizes addresses, as concolic engines for C commonly do).
type Value struct {
	K   ValueKind
	I   int64
	Obj *Object
	Off int64
	Sym sym.Expr
}

// IntValue makes a concrete integer value.
func IntValue(v int64) Value { return Value{K: KInt, I: v} }

// SymValue makes an integer value with concrete v and symbolic expression e.
// A nil or constant e yields a plain concrete value.
func SymValue(v int64, e sym.Expr) Value {
	if e == nil {
		return Value{K: KInt, I: v}
	}
	if _, isConst := sym.IsConst(e); isConst {
		return Value{K: KInt, I: v}
	}
	return Value{K: KInt, I: v, Sym: e}
}

// PtrValue makes a pointer value.
func PtrValue(obj *Object, off int64) Value { return Value{K: KPtr, Obj: obj, Off: off} }

// Truthy reports the C truth of the value: nonzero integer or non-nil
// pointer.
func (v Value) Truthy() bool {
	if v.K == KPtr {
		return v.Obj != nil
	}
	return v.I != 0
}

// IsSymbolic reports whether the value carries a non-constant symbolic
// expression.
func (v Value) IsSymbolic() bool { return v.Sym != nil }

// Expr returns the value's symbolic expression, falling back to a constant
// of its concrete value. Pointers are represented by their truthiness.
func (v Value) Expr() sym.Expr {
	if v.Sym != nil {
		return v.Sym
	}
	if v.K == KPtr {
		if v.Obj != nil {
			return sym.One
		}
		return sym.Zero
	}
	return sym.NewConst(v.I)
}

// String implements fmt.Stringer.
func (v Value) String() string {
	if v.K == KPtr {
		if v.Obj == nil {
			return "null"
		}
		return fmt.Sprintf("&%s+%d", v.Obj.Name, v.Off)
	}
	if v.Sym != nil {
		return fmt.Sprintf("%d{%s}", v.I, sym.Format(v.Sym))
	}
	return fmt.Sprintf("%d", v.I)
}

// Object is a block of cells: a global, a stack frame, a local array, or an
// interned string literal.
type Object struct {
	ID    int64 // unique identity, used for pointer comparisons
	Name  string
	Cells []Value
}

var objectIDs atomic.Int64

// NewObject allocates a zeroed object of n cells.
func NewObject(name string, n int64) *Object {
	return &Object{ID: objectIDs.Add(1), Name: name, Cells: make([]Value, n)}
}

// Len returns the object's cell count.
func (o *Object) Len() int64 { return int64(len(o.Cells)) }

// In reports whether off is a valid cell index.
func (o *Object) In(off int64) bool { return off >= 0 && off < int64(len(o.Cells)) }

// CString extracts the concrete NUL-terminated byte string starting at off.
// Symbolic cells contribute their concrete values (address concretization).
func (o *Object) CString(off int64) []byte {
	var out []byte
	for ; off < int64(len(o.Cells)); off++ {
		b := o.Cells[off].I
		if b == 0 {
			return out
		}
		out = append(out, byte(b))
	}
	return out
}

// StoreBytes copies a byte string plus NUL terminator into the object.
func (o *Object) StoreBytes(off int64, data []byte) {
	for i, b := range data {
		o.Cells[off+int64(i)] = IntValue(int64(b))
	}
	o.Cells[off+int64(len(data))] = IntValue(0)
}
