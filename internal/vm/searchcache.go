package vm

import "sync/atomic"

// SearchCache carries engine-private acceleration state across the runs of
// one search (a replay reproduction or a concolic exploration). The search
// layer allocates one per search and passes it to every run through Options;
// what an engine stores in it is opaque to everything else — the tree walker
// ignores it entirely, and the bytecode VM uses it for its linear-trace
// replay fast path.
//
// The single-writer discipline is the search's: both the replay engine and
// the concolic explorer complete their seed run before any other run starts,
// so one run records and all later runs read. Load and Store are nonetheless
// safe under concurrent use (atomic), so a violation of that discipline can
// at worst waste a recording, never corrupt one.
type SearchCache struct {
	v atomic.Value
}

// NewSearchCache returns an empty cache.
func NewSearchCache() *SearchCache { return &SearchCache{} }

// Load returns the stored state, or nil when nothing was stored yet.
func (c *SearchCache) Load() any {
	if c == nil {
		return nil
	}
	return c.v.Load()
}

// Store publishes the engine state for later runs.
func (c *SearchCache) Store(state any) {
	if c == nil || state == nil {
		return
	}
	c.v.Store(state)
}
