package vm

import (
	"fmt"

	"pathlog/internal/lang"
	"pathlog/internal/sym"
)

// This file holds the operator semantics shared by every execution engine:
// the tree walker calls these directly, and the bytecode VM (internal/ir)
// executes the same functions from its dispatch loop, so there is exactly one
// definition of MiniC arithmetic, pointer rules and crash conditions.

// BoolValue coerces v to 0/1, keeping symbolic information.
func BoolValue(v Value) Value {
	truth := int64(0)
	if v.Truthy() {
		truth = 1
	}
	if v.Sym != nil {
		return SymValue(truth, sym.Bool(v.Sym))
	}
	return IntValue(truth)
}

// BoolExpr returns the symbolic 0/1 expression of v, or nil when v is
// concrete. It is the symbolic half of a short-circuit result whose concrete
// truth is already decided.
func BoolExpr(v Value) sym.Expr {
	if v.Sym == nil {
		return nil
	}
	return sym.Bool(v.Sym)
}

// UnaryOp applies !x, -x or ~x with the crash rules of the tree walker:
// unary minus and bitwise-not on a pointer are null-deref crashes, while !p
// tests pointer nullness.
func UnaryOp(op lang.Kind, v Value, pos lang.Pos) (Value, error) {
	if v.K == KPtr {
		if op == lang.BANG {
			truth := int64(0)
			if v.Obj == nil {
				truth = 1
			}
			return IntValue(truth), nil
		}
		return Value{}, CrashError(CrashNullDeref, pos, 0)
	}
	switch op {
	case lang.MINUS:
		return SymValue(-v.I, unarySym(sym.OpNeg, v)), nil
	case lang.TILDE:
		return SymValue(^v.I, unarySym(sym.OpBNot, v)), nil
	case lang.BANG:
		truth := int64(0)
		if v.I == 0 {
			truth = 1
		}
		return SymValue(truth, unarySym(sym.OpNot, v)), nil
	}
	return Value{}, fmt.Errorf("vm: bad unary %v", op)
}

func unarySym(op sym.Op, v Value) sym.Expr {
	if v.Sym == nil {
		return nil
	}
	return sym.NewUn(op, v.Sym)
}

// binSymOp translates a binary token kind to its symbolic operator. A switch
// rather than a map: this sits on the per-instruction path of both execution
// engines, and the dense jump table beats hashing the kind every time.
func binSymOp(op lang.Kind) (sym.Op, bool) {
	switch op {
	case lang.PLUS:
		return sym.OpAdd, true
	case lang.MINUS:
		return sym.OpSub, true
	case lang.STAR:
		return sym.OpMul, true
	case lang.SLASH:
		return sym.OpDiv, true
	case lang.PERCENT:
		return sym.OpMod, true
	case lang.AMP:
		return sym.OpAnd, true
	case lang.PIPE:
		return sym.OpOr, true
	case lang.CARET:
		return sym.OpXor, true
	case lang.SHL:
		return sym.OpShl, true
	case lang.SHR:
		return sym.OpShr, true
	case lang.EQ:
		return sym.OpEq, true
	case lang.NE:
		return sym.OpNe, true
	case lang.LT:
		return sym.OpLt, true
	case lang.LE:
		return sym.OpLe, true
	case lang.GT:
		return sym.OpGt, true
	case lang.GE:
		return sym.OpGe, true
	}
	return 0, false
}

// ConcreteBin computes a binary operator over two concrete integers,
// reporting ok=false for kinds it does not translate and for division by
// zero — those must take BinOp's crash/error path. It lets the bytecode VM
// skip the full operator machinery for the common all-concrete case.
func ConcreteBin(op lang.Kind, l, r int64) (int64, bool) {
	sop, ok := binSymOp(op)
	if !ok || ((sop == sym.OpDiv || sop == sym.OpMod) && r == 0) {
		return 0, false
	}
	return evalConcrete(sop, l, r), true
}

// BinOp applies a non-short-circuit binary operator, handling pointer
// arithmetic, the div-by-zero crash, and symbolic propagation with the
// too-large concretization cutoff.
func BinOp(op lang.Kind, l, r Value, pos lang.Pos) (Value, error) {
	// Pointer arithmetic and comparisons.
	if l.K == KPtr || r.K == KPtr {
		return ptrOp(op, l, r, pos)
	}
	sop, ok := binSymOp(op)
	if !ok {
		return Value{}, fmt.Errorf("vm: bad binary op %v", op)
	}
	if (sop == sym.OpDiv || sop == sym.OpMod) && r.I == 0 {
		return Value{}, CrashError(CrashDivZero, pos, 0)
	}
	cv := evalConcrete(sop, l.I, r.I)
	if l.Sym == nil && r.Sym == nil {
		return IntValue(cv), nil
	}
	se := sym.NewBin(sop, l.Expr(), r.Expr())
	if sym.TooLarge(se) {
		// Concretize: drop the symbolic half to keep solver inputs tractable.
		se = nil
	}
	return SymValue(cv, se), nil
}

func evalConcrete(op sym.Op, l, r int64) int64 {
	switch op {
	case sym.OpAdd:
		return l + r
	case sym.OpSub:
		return l - r
	case sym.OpMul:
		return l * r
	case sym.OpDiv:
		return l / r
	case sym.OpMod:
		return l % r
	case sym.OpAnd:
		return l & r
	case sym.OpOr:
		return l | r
	case sym.OpXor:
		return l ^ r
	case sym.OpShl:
		return l << uint64(r&63)
	case sym.OpShr:
		return l >> uint64(r&63)
	case sym.OpEq:
		return b2i(l == r)
	case sym.OpNe:
		return b2i(l != r)
	case sym.OpLt:
		return b2i(l < r)
	case sym.OpLe:
		return b2i(l <= r)
	case sym.OpGt:
		return b2i(l > r)
	case sym.OpGe:
		return b2i(l >= r)
	}
	panic("vm: bad op")
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ptrOp implements pointer arithmetic: ptr±int, ptr-ptr, and comparisons.
func ptrOp(op lang.Kind, l, r Value, pos lang.Pos) (Value, error) {
	switch op {
	case lang.PLUS:
		if l.K == KPtr && r.K == KInt {
			return PtrValue(l.Obj, l.Off+r.I), nil
		}
		if l.K == KInt && r.K == KPtr {
			return PtrValue(r.Obj, r.Off+l.I), nil
		}
	case lang.MINUS:
		if l.K == KPtr && r.K == KInt {
			return PtrValue(l.Obj, l.Off-r.I), nil
		}
		if l.K == KPtr && r.K == KPtr && l.Obj == r.Obj {
			return IntValue(l.Off - r.Off), nil
		}
	case lang.EQ, lang.NE, lang.LT, lang.LE, lang.GT, lang.GE:
		li, ri, ok := ptrCompareOperands(l, r)
		if ok {
			sop, _ := binSymOp(op)
			return IntValue(evalConcrete(sop, li, ri)), nil
		}
	}
	return Value{}, CrashError(CrashNullDeref, pos, 0)
}

// ptrCompareOperands maps pointer comparison operands onto integers: same
// object compares offsets; a pointer against integer 0 compares nullness;
// distinct objects compare by identity ordering (stable within a run).
func ptrCompareOperands(l, r Value) (int64, int64, bool) {
	if l.K == KPtr && r.K == KPtr {
		if l.Obj == r.Obj {
			return l.Off, r.Off, true
		}
		return objAddr(l.Obj), objAddr(r.Obj), true
	}
	if l.K == KPtr && r.K == KInt && r.I == 0 {
		if l.Obj == nil {
			return 0, 0, true
		}
		return 1, 0, true
	}
	if l.K == KInt && l.I == 0 && r.K == KPtr {
		if r.Obj == nil {
			return 0, 0, true
		}
		return 0, 1, true
	}
	return 0, 0, false
}

func objAddr(o *Object) int64 {
	if o == nil {
		return 0
	}
	return o.ID
}

// IndexCell computes base[idx] with bounds checking, the address-resolution
// rule shared by loads, stores and &a[i]. Symbolic indexes are concretized to
// their run value.
func IndexCell(base, idx Value, pos lang.Pos) (*Object, int64, error) {
	if base.K != KPtr || base.Obj == nil {
		return nil, 0, CrashError(CrashNullDeref, pos, 0)
	}
	off := base.Off + idx.I
	if !base.Obj.In(off) {
		return nil, 0, CrashError(CrashOOB, pos, 0)
	}
	return base.Obj, off, nil
}
