package vm

import (
	"errors"
	"fmt"

	"pathlog/internal/lang"
	"pathlog/internal/oskernel"
	"pathlog/internal/sym"
)

// BranchSink observes every executed branch. Implementations include the
// branch logger (instrumented builds), the concolic labeler and the replay
// engine. Returning ErrAbortRun stops the execution with Aborted status;
// any other error stops it with a VM error.
type BranchSink interface {
	OnBranch(site *lang.BranchSite, cond Value, taken bool) error
}

// ErrAbortRun is returned by a BranchSink to abandon the current run (replay
// case 2b/3b in §3.1).
var ErrAbortRun = errors.New("vm: run aborted by branch sink")

// World supplies symbolic marking for program input. When nil, the VM runs
// fully concrete (the user-site configuration).
type World interface {
	// MarkByte returns the symbolic expression standing for the input byte
	// at (stream, off), or nil when that stream is concrete.
	MarkByte(stream string, off int64) sym.Expr
	// SyscallExpr returns the symbolic expression for the result of the
	// seq-th nondeterministic syscall of the given kind ("read" or
	// "select"), or nil when syscall results are concrete in this mode.
	SyscallExpr(kind string, seq int) sym.Expr
}

// CrashKind classifies abnormal terminations.
type CrashKind int

// Crash kinds.
const (
	CrashNone CrashKind = iota
	CrashExplicit
	CrashOOB
	CrashNullDeref
	CrashDivZero
	CrashStackOverflow
)

// String implements fmt.Stringer.
func (k CrashKind) String() string {
	return [...]string{"none", "crash()", "out-of-bounds", "null-deref",
		"div-by-zero", "stack-overflow"}[k]
}

// CrashInfo identifies where and why a run crashed. Pos is the bug site; two
// crashes match when Kind and Pos are equal — the analogue of the paper's
// "crashes at the same location in the code".
type CrashInfo struct {
	Kind CrashKind
	Pos  lang.Pos
	Code int64 // crash(code) argument
}

// Site returns a printable bug-site identifier.
func (c CrashInfo) Site() string { return fmt.Sprintf("%s@%s", c.Kind, c.Pos) }

// Result summarizes one execution.
type Result struct {
	Exit           int64
	Crashed        bool
	Crash          CrashInfo
	Aborted        bool // stopped by the branch sink
	BudgetExceeded bool
	Steps          int64
	BranchExecs    int64
	Stdout         []byte
}

// Options configure one VM instance.
type Options struct {
	// Kernel supplies syscalls. Required.
	Kernel *oskernel.Kernel
	// Sink observes branches; may be nil.
	Sink BranchSink
	// World marks input symbolic; may be nil for concrete runs.
	World World
	// MaxSteps bounds execution; 0 means DefaultMaxSteps.
	MaxSteps int64
	// MaxCallDepth bounds recursion; 0 means DefaultMaxCallDepth.
	MaxCallDepth int
}

// Default budgets.
const (
	DefaultMaxSteps     = 50_000_000
	DefaultMaxCallDepth = 4096
)

// VM executes one program against one kernel. Create a fresh VM per run.
type VM struct {
	prog *lang.Program
	opts Options

	globals []*Object
	strings map[*lang.StrLit]*Object

	steps       int64
	maxSteps    int64
	branchExecs int64
	depth       int
	maxDepth    int

	readSeq   int
	selectSeq int
}

// control is the statement-level control-flow signal.
type control int

const (
	ctlNone control = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

// runError carries abnormal termination through the evaluator.
type runError struct {
	crash  *CrashInfo
	exit   *int64
	abort  bool
	budget bool
	err    error
}

// Error implements error.
func (e *runError) Error() string {
	switch {
	case e.crash != nil:
		return "crash: " + e.crash.Site()
	case e.exit != nil:
		return fmt.Sprintf("exit(%d)", *e.exit)
	case e.abort:
		return "aborted"
	case e.budget:
		return "step budget exceeded"
	}
	return e.err.Error()
}

// New creates a VM for the program with the given options.
func New(prog *lang.Program, opts Options) *VM {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = DefaultMaxSteps
	}
	if opts.MaxCallDepth <= 0 {
		opts.MaxCallDepth = DefaultMaxCallDepth
	}
	return &VM{
		prog:     prog,
		opts:     opts,
		strings:  make(map[*lang.StrLit]*Object),
		maxSteps: opts.MaxSteps,
		maxDepth: opts.MaxCallDepth,
	}
}

// Run executes the program's main function to completion.
func (m *VM) Run() (Result, error) {
	if err := m.initGlobals(); err != nil {
		return m.finish(err)
	}
	frame := NewObject("main.frame", int64(m.prog.Main.NumSlots))
	_, err := m.callFunc(m.prog.Main, frame)
	if err == nil {
		zero := int64(0)
		err = &runError{exit: &zero}
	}
	return m.finish(err)
}

func (m *VM) finish(err error) (Result, error) {
	res := Result{
		Steps:       m.steps,
		BranchExecs: m.branchExecs,
		Stdout:      m.opts.Kernel.Stdout(),
	}
	var re *runError
	if !errors.As(err, &re) {
		return res, err
	}
	switch {
	case re.crash != nil:
		res.Crashed = true
		res.Crash = *re.crash
	case re.exit != nil:
		res.Exit = *re.exit
	case re.abort:
		res.Aborted = true
	case re.budget:
		res.BudgetExceeded = true
	default:
		return res, re.err
	}
	return res, nil
}

func (m *VM) initGlobals() error {
	m.globals = make([]*Object, len(m.prog.Globals))
	for i, g := range m.prog.Globals {
		size := int64(1)
		if g.IsArray {
			size = g.Size
		}
		m.globals[i] = NewObject(g.Name, size)
	}
	// Initializers run in declaration order with no frame; they may only
	// reference earlier globals and constants.
	for i, g := range m.prog.Globals {
		if g.Init == nil {
			continue
		}
		v, err := m.eval(nil, g.Init)
		if err != nil {
			return err
		}
		m.globals[i].Cells[0] = v
	}
	return nil
}

func (m *VM) step(pos lang.Pos) error {
	m.steps++
	if m.steps > m.maxSteps {
		return &runError{budget: true}
	}
	return nil
}

func (m *VM) crash(kind CrashKind, pos lang.Pos, code int64) error {
	return &runError{crash: &CrashInfo{Kind: kind, Pos: pos, Code: code}}
}

// callFunc executes fn with an initialized frame and returns its value.
func (m *VM) callFunc(fn *lang.FuncDecl, frame *Object) (Value, error) {
	m.depth++
	if m.depth > m.maxDepth {
		m.depth--
		return Value{}, m.crash(CrashStackOverflow, fn.Pos, 0)
	}
	defer func() { m.depth-- }()

	ret, ctl, err := m.execStmt(frame, fn.Body)
	if err != nil {
		return Value{}, err
	}
	if ctl == ctlReturn {
		return ret, nil
	}
	return IntValue(0), nil
}

// execStmt executes one statement; when ctl is ctlReturn, ret carries the
// return value.
func (m *VM) execStmt(frame *Object, s lang.Stmt) (ret Value, ctl control, err error) {
	if err := m.step(s.StmtPos()); err != nil {
		return Value{}, ctlNone, err
	}
	switch st := s.(type) {
	case *lang.Block:
		for _, inner := range st.Stmts {
			ret, ctl, err = m.execStmt(frame, inner)
			if err != nil || ctl != ctlNone {
				return ret, ctl, err
			}
		}
		return Value{}, ctlNone, nil

	case *lang.DeclStmt:
		d := st.Decl
		if d.IsArray {
			frame.Cells[d.Slot] = PtrValue(NewObject(d.Name, d.Size), 0)
			return Value{}, ctlNone, nil
		}
		var v Value
		if d.Init != nil {
			v, err = m.eval(frame, d.Init)
			if err != nil {
				return Value{}, ctlNone, err
			}
		} else {
			v = IntValue(0)
		}
		frame.Cells[d.Slot] = v
		return Value{}, ctlNone, nil

	case *lang.ExprStmt:
		_, err = m.eval(frame, st.E)
		return Value{}, ctlNone, err

	case *lang.Return:
		if st.E != nil {
			v, err := m.eval(frame, st.E)
			if err != nil {
				return Value{}, ctlNone, err
			}
			return v, ctlReturn, nil
		}
		return IntValue(0), ctlReturn, nil

	case *lang.Break:
		return Value{}, ctlBreak, nil

	case *lang.Continue:
		return Value{}, ctlContinue, nil

	case *lang.If:
		cond, err := m.eval(frame, st.Cond)
		if err != nil {
			return Value{}, ctlNone, err
		}
		taken := cond.Truthy()
		if err := m.branch(st.Branch, cond, taken); err != nil {
			return Value{}, ctlNone, err
		}
		if taken {
			return m.execStmt(frame, st.Then)
		}
		if st.Else != nil {
			return m.execStmt(frame, st.Else)
		}
		return Value{}, ctlNone, nil

	case *lang.While:
		for {
			cond, err := m.eval(frame, st.Cond)
			if err != nil {
				return Value{}, ctlNone, err
			}
			taken := cond.Truthy()
			if err := m.branch(st.Branch, cond, taken); err != nil {
				return Value{}, ctlNone, err
			}
			if !taken {
				return Value{}, ctlNone, nil
			}
			ret, ctl, err = m.execStmt(frame, st.Body)
			if err != nil {
				return Value{}, ctlNone, err
			}
			if ctl == ctlReturn {
				return ret, ctl, nil
			}
			if ctl == ctlBreak {
				return Value{}, ctlNone, nil
			}
		}

	case *lang.For:
		if st.Init != nil {
			if _, _, err := m.execStmt(frame, st.Init); err != nil {
				return Value{}, ctlNone, err
			}
		}
		for {
			if st.Cond != nil {
				cond, err := m.eval(frame, st.Cond)
				if err != nil {
					return Value{}, ctlNone, err
				}
				taken := cond.Truthy()
				if err := m.branch(st.Branch, cond, taken); err != nil {
					return Value{}, ctlNone, err
				}
				if !taken {
					return Value{}, ctlNone, nil
				}
			}
			ret, ctl, err = m.execStmt(frame, st.Body)
			if err != nil {
				return Value{}, ctlNone, err
			}
			if ctl == ctlReturn {
				return ret, ctl, nil
			}
			if ctl == ctlBreak {
				return Value{}, ctlNone, nil
			}
			if st.Post != nil {
				if _, _, err := m.execStmt(frame, st.Post); err != nil {
					return Value{}, ctlNone, err
				}
			}
		}
	}
	return Value{}, ctlNone, fmt.Errorf("vm: unknown statement %T", s)
}

// branch reports one branch execution to the sink.
func (m *VM) branch(site *lang.BranchSite, cond Value, taken bool) error {
	m.branchExecs++
	if m.opts.Sink == nil {
		return nil
	}
	if err := m.opts.Sink.OnBranch(site, cond, taken); err != nil {
		if errors.Is(err, ErrAbortRun) {
			return &runError{abort: true}
		}
		return &runError{err: err}
	}
	return nil
}

// eval evaluates an expression.
func (m *VM) eval(frame *Object, e lang.Expr) (Value, error) {
	if err := m.step(e.ExprPos()); err != nil {
		return Value{}, err
	}
	switch x := e.(type) {
	case *lang.IntLit:
		return IntValue(x.V), nil

	case *lang.StrLit:
		return PtrValue(m.internString(x), 0), nil

	case *lang.Ident:
		return m.evalIdentValue(frame, x), nil

	case *lang.Unary:
		v, err := m.eval(frame, x.X)
		if err != nil {
			return Value{}, err
		}
		return m.applyUnary(x, v)

	case *lang.Binary:
		l, err := m.eval(frame, x.L)
		if err != nil {
			return Value{}, err
		}
		r, err := m.eval(frame, x.R)
		if err != nil {
			return Value{}, err
		}
		return m.applyBinary(x, l, r)

	case *lang.Logic:
		return m.evalLogic(frame, x)

	case *lang.Assign:
		return m.evalAssign(frame, x)

	case *lang.IncDec:
		obj, off, err := m.lvalue(frame, x.X)
		if err != nil {
			return Value{}, err
		}
		old := obj.Cells[off]
		delta := int64(1)
		op := sym.OpAdd
		if x.Op == lang.MINUSMIN {
			delta = -1
			op = sym.OpSub
		}
		var nv Value
		if old.K == KPtr {
			nv = PtrValue(old.Obj, old.Off+delta)
		} else {
			var se sym.Expr
			if old.Sym != nil {
				se = sym.NewBin(op, old.Sym, sym.One)
			}
			nv = SymValue(old.I+delta, se)
		}
		obj.Cells[off] = nv
		return old, nil

	case *lang.Call:
		return m.evalCall(frame, x)

	case *lang.Index:
		base, err := m.eval(frame, x.Base)
		if err != nil {
			return Value{}, err
		}
		idx, err := m.eval(frame, x.Idx)
		if err != nil {
			return Value{}, err
		}
		obj, off, err := m.indexCell(base, idx, x.Pos)
		if err != nil {
			return Value{}, err
		}
		return obj.Cells[off], nil

	case *lang.AddrOf:
		obj, off, err := m.lvalue(frame, x.X)
		if err != nil {
			return Value{}, err
		}
		return PtrValue(obj, off), nil

	case *lang.Deref:
		v, err := m.eval(frame, x.X)
		if err != nil {
			return Value{}, err
		}
		if v.K != KPtr || v.Obj == nil {
			return Value{}, m.crash(CrashNullDeref, x.Pos, 0)
		}
		if !v.Obj.In(v.Off) {
			return Value{}, m.crash(CrashOOB, x.Pos, 0)
		}
		return v.Obj.Cells[v.Off], nil
	}
	return Value{}, fmt.Errorf("vm: unknown expression %T", e)
}

// evalIdentValue reads an identifier's value, decaying array names to
// pointers to their first cell.
func (m *VM) evalIdentValue(frame *Object, id *lang.Ident) Value {
	d := id.Decl
	if d.Global {
		obj := m.globals[d.Slot]
		if d.IsArray {
			return PtrValue(obj, 0)
		}
		return obj.Cells[0]
	}
	return frame.Cells[d.Slot]
}

func (m *VM) internString(s *lang.StrLit) *Object {
	if o, ok := m.strings[s]; ok {
		return o
	}
	o := NewObject("str", int64(len(s.S))+1)
	o.StoreBytes(0, []byte(s.S))
	m.strings[s] = o
	return o
}

// lvalue resolves an assignable expression to (object, offset).
func (m *VM) lvalue(frame *Object, e lang.Expr) (*Object, int64, error) {
	switch x := e.(type) {
	case *lang.Ident:
		d := x.Decl
		if d.IsArray {
			// &arr[0] via AddrOf(Ident) on an array name.
			if d.Global {
				return m.globals[d.Slot], 0, nil
			}
			av := frame.Cells[d.Slot]
			if av.K != KPtr || av.Obj == nil {
				return nil, 0, m.crash(CrashNullDeref, x.Pos, 0)
			}
			return av.Obj, av.Off, nil
		}
		if d.Global {
			return m.globals[d.Slot], 0, nil
		}
		return frame, int64(d.Slot), nil
	case *lang.Index:
		base, err := m.eval(frame, x.Base)
		if err != nil {
			return nil, 0, err
		}
		idx, err := m.eval(frame, x.Idx)
		if err != nil {
			return nil, 0, err
		}
		return m.indexCell(base, idx, x.Pos)
	case *lang.Deref:
		v, err := m.eval(frame, x.X)
		if err != nil {
			return nil, 0, err
		}
		if v.K != KPtr || v.Obj == nil {
			return nil, 0, m.crash(CrashNullDeref, x.Pos, 0)
		}
		if !v.Obj.In(v.Off) {
			return nil, 0, m.crash(CrashOOB, x.Pos, 0)
		}
		return v.Obj, v.Off, nil
	}
	return nil, 0, fmt.Errorf("vm: not an lvalue: %T", e)
}

// indexCell computes base[idx] with bounds checking. Symbolic indexes are
// concretized to their run value.
func (m *VM) indexCell(base, idx Value, pos lang.Pos) (*Object, int64, error) {
	if base.K != KPtr || base.Obj == nil {
		return nil, 0, m.crash(CrashNullDeref, pos, 0)
	}
	off := base.Off + idx.I
	if !base.Obj.In(off) {
		return nil, 0, m.crash(CrashOOB, pos, 0)
	}
	return base.Obj, off, nil
}

func (m *VM) evalLogic(frame *Object, x *lang.Logic) (Value, error) {
	l, err := m.eval(frame, x.L)
	if err != nil {
		return Value{}, err
	}
	lTrue := l.Truthy()
	// The short-circuit decision is itself a branch location.
	if err := m.branch(x.Branch, l, lTrue); err != nil {
		return Value{}, err
	}
	if x.Op == lang.ANDAND {
		if !lTrue {
			return SymValue(0, boolExprOf(l, false)), nil
		}
		r, err := m.eval(frame, x.R)
		if err != nil {
			return Value{}, err
		}
		return boolValue(r), nil
	}
	// OROR.
	if lTrue {
		return SymValue(1, boolExprOf(l, true)), nil
	}
	r, err := m.eval(frame, x.R)
	if err != nil {
		return Value{}, err
	}
	return boolValue(r), nil
}

// boolValue coerces v to 0/1, keeping symbolic information.
func boolValue(v Value) Value {
	truth := int64(0)
	if v.Truthy() {
		truth = 1
	}
	if v.Sym != nil {
		return SymValue(truth, sym.Bool(v.Sym))
	}
	return IntValue(truth)
}

// boolExprOf returns the symbolic 0/1 expression of v when symbolic; the
// concrete result is fixed by `truth`.
func boolExprOf(v Value, truth bool) sym.Expr {
	if v.Sym == nil {
		return nil
	}
	return sym.Bool(v.Sym)
}

func (m *VM) evalAssign(frame *Object, x *lang.Assign) (Value, error) {
	rhs, err := m.eval(frame, x.RHS)
	if err != nil {
		return Value{}, err
	}
	obj, off, err := m.lvalue(frame, x.LHS)
	if err != nil {
		return Value{}, err
	}
	if x.Op == lang.ASSIGN {
		obj.Cells[off] = rhs
		return rhs, nil
	}
	old := obj.Cells[off]
	var op lang.Kind
	switch x.Op {
	case lang.PLUSEQ:
		op = lang.PLUS
	case lang.MINUSEQ:
		op = lang.MINUS
	case lang.STAREQ:
		op = lang.STAR
	case lang.SLASHEQ:
		op = lang.SLASH
	case lang.PCTEQ:
		op = lang.PERCENT
	default:
		return Value{}, fmt.Errorf("vm: bad compound assign %v", x.Op)
	}
	nv, err := m.binOp(op, old, rhs, x.Pos)
	if err != nil {
		return Value{}, err
	}
	obj.Cells[off] = nv
	return nv, nil
}

func (m *VM) applyUnary(x *lang.Unary, v Value) (Value, error) {
	if v.K == KPtr {
		if x.Op == lang.BANG {
			truth := int64(0)
			if v.Obj == nil {
				truth = 1
			}
			return IntValue(truth), nil
		}
		return Value{}, m.crash(CrashNullDeref, x.Pos, 0)
	}
	switch x.Op {
	case lang.MINUS:
		return SymValue(-v.I, unarySym(sym.OpNeg, v)), nil
	case lang.TILDE:
		return SymValue(^v.I, unarySym(sym.OpBNot, v)), nil
	case lang.BANG:
		truth := int64(0)
		if v.I == 0 {
			truth = 1
		}
		return SymValue(truth, unarySym(sym.OpNot, v)), nil
	}
	return Value{}, fmt.Errorf("vm: bad unary %v", x.Op)
}

func unarySym(op sym.Op, v Value) sym.Expr {
	if v.Sym == nil {
		return nil
	}
	return sym.NewUn(op, v.Sym)
}

func (m *VM) applyBinary(x *lang.Binary, l, r Value) (Value, error) {
	return m.binOp(x.Op, l, r, x.Pos)
}

var binOpMap = map[lang.Kind]sym.Op{
	lang.PLUS: sym.OpAdd, lang.MINUS: sym.OpSub, lang.STAR: sym.OpMul,
	lang.SLASH: sym.OpDiv, lang.PERCENT: sym.OpMod, lang.AMP: sym.OpAnd,
	lang.PIPE: sym.OpOr, lang.CARET: sym.OpXor, lang.SHL: sym.OpShl,
	lang.SHR: sym.OpShr, lang.EQ: sym.OpEq, lang.NE: sym.OpNe,
	lang.LT: sym.OpLt, lang.LE: sym.OpLe, lang.GT: sym.OpGt, lang.GE: sym.OpGe,
}

func (m *VM) binOp(op lang.Kind, l, r Value, pos lang.Pos) (Value, error) {
	// Pointer arithmetic and comparisons.
	if l.K == KPtr || r.K == KPtr {
		return m.ptrOp(op, l, r, pos)
	}
	sop, ok := binOpMap[op]
	if !ok {
		return Value{}, fmt.Errorf("vm: bad binary op %v", op)
	}
	if (sop == sym.OpDiv || sop == sym.OpMod) && r.I == 0 {
		return Value{}, m.crash(CrashDivZero, pos, 0)
	}
	cv := evalConcrete(sop, l.I, r.I)
	if l.Sym == nil && r.Sym == nil {
		return IntValue(cv), nil
	}
	se := sym.NewBin(sop, l.Expr(), r.Expr())
	if sym.TooLarge(se) {
		// Concretize: drop the symbolic half to keep solver inputs tractable.
		se = nil
	}
	return SymValue(cv, se), nil
}

func evalConcrete(op sym.Op, l, r int64) int64 {
	switch op {
	case sym.OpAdd:
		return l + r
	case sym.OpSub:
		return l - r
	case sym.OpMul:
		return l * r
	case sym.OpDiv:
		return l / r
	case sym.OpMod:
		return l % r
	case sym.OpAnd:
		return l & r
	case sym.OpOr:
		return l | r
	case sym.OpXor:
		return l ^ r
	case sym.OpShl:
		return l << uint64(r&63)
	case sym.OpShr:
		return l >> uint64(r&63)
	case sym.OpEq:
		return b2i(l == r)
	case sym.OpNe:
		return b2i(l != r)
	case sym.OpLt:
		return b2i(l < r)
	case sym.OpLe:
		return b2i(l <= r)
	case sym.OpGt:
		return b2i(l > r)
	case sym.OpGe:
		return b2i(l >= r)
	}
	panic("vm: bad op")
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// ptrOp implements pointer arithmetic: ptr±int, ptr-ptr, and comparisons.
func (m *VM) ptrOp(op lang.Kind, l, r Value, pos lang.Pos) (Value, error) {
	switch op {
	case lang.PLUS:
		if l.K == KPtr && r.K == KInt {
			return PtrValue(l.Obj, l.Off+r.I), nil
		}
		if l.K == KInt && r.K == KPtr {
			return PtrValue(r.Obj, r.Off+l.I), nil
		}
	case lang.MINUS:
		if l.K == KPtr && r.K == KInt {
			return PtrValue(l.Obj, l.Off-r.I), nil
		}
		if l.K == KPtr && r.K == KPtr && l.Obj == r.Obj {
			return IntValue(l.Off - r.Off), nil
		}
	case lang.EQ, lang.NE, lang.LT, lang.LE, lang.GT, lang.GE:
		li, ri, ok := ptrCompareOperands(l, r)
		if ok {
			sop := binOpMap[op]
			return IntValue(evalConcrete(sop, li, ri)), nil
		}
	}
	return Value{}, m.crash(CrashNullDeref, pos, 0)
}

// ptrCompareOperands maps pointer comparison operands onto integers: same
// object compares offsets; a pointer against integer 0 compares nullness;
// distinct objects compare by identity ordering (stable within a run).
func ptrCompareOperands(l, r Value) (int64, int64, bool) {
	if l.K == KPtr && r.K == KPtr {
		if l.Obj == r.Obj {
			return l.Off, r.Off, true
		}
		return objAddr(l.Obj), objAddr(r.Obj), true
	}
	if l.K == KPtr && r.K == KInt && r.I == 0 {
		if l.Obj == nil {
			return 0, 0, true
		}
		return 1, 0, true
	}
	if l.K == KInt && l.I == 0 && r.K == KPtr {
		if r.Obj == nil {
			return 0, 0, true
		}
		return 0, 1, true
	}
	return 0, 0, false
}

func objAddr(o *Object) int64 {
	if o == nil {
		return 0
	}
	return o.ID
}
