package vm

import (
	"errors"
	"fmt"

	"pathlog/internal/lang"
	"pathlog/internal/oskernel"
	"pathlog/internal/sym"
)

// BranchSink observes every executed branch. Implementations include the
// branch logger (instrumented builds), the concolic labeler and the replay
// engine. Returning ErrAbortRun stops the execution with Aborted status;
// any other error stops it with a VM error.
type BranchSink interface {
	OnBranch(site *lang.BranchSite, cond Value, taken bool) error
}

// ErrAbortRun is returned by a BranchSink to abandon the current run (replay
// case 2b/3b in §3.1).
var ErrAbortRun = errors.New("vm: run aborted by branch sink")

// World supplies symbolic marking for program input. When nil, the VM runs
// fully concrete (the user-site configuration).
type World interface {
	// MarkByte returns the symbolic expression standing for the input byte
	// at (stream, off), or nil when that stream is concrete.
	MarkByte(stream string, off int64) sym.Expr
	// SyscallExpr returns the symbolic expression for the result of the
	// seq-th nondeterministic syscall of the given kind ("read" or
	// "select"), or nil when syscall results are concrete in this mode.
	SyscallExpr(kind string, seq int) sym.Expr
}

// CrashKind classifies abnormal terminations.
type CrashKind int

// Crash kinds.
const (
	CrashNone CrashKind = iota
	CrashExplicit
	CrashOOB
	CrashNullDeref
	CrashDivZero
	CrashStackOverflow
)

// String implements fmt.Stringer.
func (k CrashKind) String() string {
	return [...]string{"none", "crash()", "out-of-bounds", "null-deref",
		"div-by-zero", "stack-overflow"}[k]
}

// CrashInfo identifies where and why a run crashed. Pos is the bug site; two
// crashes match when Kind and Pos are equal — the analogue of the paper's
// "crashes at the same location in the code".
type CrashInfo struct {
	Kind CrashKind
	Pos  lang.Pos
	Code int64 // crash(code) argument
}

// Site returns a printable bug-site identifier.
func (c CrashInfo) Site() string { return fmt.Sprintf("%s@%s", c.Kind, c.Pos) }

// Result summarizes one execution.
type Result struct {
	Exit           int64
	Crashed        bool
	Crash          CrashInfo
	Aborted        bool // stopped by the branch sink
	BudgetExceeded bool
	Steps          int64
	BranchExecs    int64
	Stdout         []byte
}

// Options configure one VM instance.
type Options struct {
	// Kernel supplies syscalls. Required.
	Kernel *oskernel.Kernel
	// Sink observes branches; may be nil.
	Sink BranchSink
	// World marks input symbolic; may be nil for concrete runs.
	World World
	// MaxSteps bounds execution; 0 means DefaultMaxSteps.
	MaxSteps int64
	// MaxCallDepth bounds recursion; 0 means DefaultMaxCallDepth.
	MaxCallDepth int
	// Cache, when set, carries engine-private acceleration state across the
	// runs of one search. Engines that cannot use it (the tree walker)
	// ignore it; using it never changes observable run behavior.
	Cache *SearchCache
}

// Default budgets.
const (
	DefaultMaxSteps     = 50_000_000
	DefaultMaxCallDepth = 4096
)

// VM executes one program against one kernel with a recursive tree walk over
// the AST. Create a fresh VM per run. It is the reference engine: the
// bytecode VM in internal/ir must match it bit for bit on trace output,
// syscall logs, crash sites and step counts.
type VM struct {
	prog *lang.Program
	opts Options
	host Host

	globals []*Object
	strings map[*lang.StrLit]*Object

	steps       int64
	maxSteps    int64
	branchExecs int64
	depth       int
	maxDepth    int
}

// control is the statement-level control-flow signal.
type control int

const (
	ctlNone control = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

// runError carries abnormal termination through the evaluator.
type runError struct {
	crash  *CrashInfo
	exit   *int64
	abort  bool
	budget bool
	err    error
}

// Error implements error.
func (e *runError) Error() string {
	switch {
	case e.crash != nil:
		return "crash: " + e.crash.Site()
	case e.exit != nil:
		return fmt.Sprintf("exit(%d)", *e.exit)
	case e.abort:
		return "aborted"
	case e.budget:
		return "step budget exceeded"
	}
	return e.err.Error()
}

// New creates a VM for the program with the given options.
func New(prog *lang.Program, opts Options) *VM {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = DefaultMaxSteps
	}
	if opts.MaxCallDepth <= 0 {
		opts.MaxCallDepth = DefaultMaxCallDepth
	}
	return &VM{
		prog:     prog,
		opts:     opts,
		host:     Host{Kernel: opts.Kernel, World: opts.World},
		strings:  make(map[*lang.StrLit]*Object),
		maxSteps: opts.MaxSteps,
		maxDepth: opts.MaxCallDepth,
	}
}

// Run executes the program's main function to completion.
func (m *VM) Run() (Result, error) {
	if err := m.initGlobals(); err != nil {
		return m.finish(err)
	}
	frame := NewObject("main.frame", int64(m.prog.Main.NumSlots))
	_, err := m.callFunc(m.prog.Main, frame)
	if err == nil {
		err = ExitError(0)
	}
	return m.finish(err)
}

func (m *VM) finish(err error) (Result, error) {
	return Finish(m.steps, m.branchExecs, m.opts.Kernel.Stdout(), err)
}

func (m *VM) initGlobals() error {
	m.globals = make([]*Object, len(m.prog.Globals))
	for i, g := range m.prog.Globals {
		size := int64(1)
		if g.IsArray {
			size = g.Size
		}
		m.globals[i] = NewObject(g.Name, size)
	}
	// Initializers run in declaration order with no frame; they may only
	// reference earlier globals and constants.
	for i, g := range m.prog.Globals {
		if g.Init == nil {
			continue
		}
		v, err := m.eval(nil, g.Init)
		if err != nil {
			return err
		}
		m.globals[i].Cells[0] = v
	}
	return nil
}

func (m *VM) step(pos lang.Pos) error {
	m.steps++
	if m.steps > m.maxSteps {
		return &runError{budget: true}
	}
	return nil
}

func (m *VM) crash(kind CrashKind, pos lang.Pos, code int64) error {
	return CrashError(kind, pos, code)
}

// callFunc executes fn with an initialized frame and returns its value.
func (m *VM) callFunc(fn *lang.FuncDecl, frame *Object) (Value, error) {
	m.depth++
	if m.depth > m.maxDepth {
		m.depth--
		return Value{}, m.crash(CrashStackOverflow, fn.Pos, 0)
	}
	defer func() { m.depth-- }()

	ret, ctl, err := m.execStmt(frame, fn.Body)
	if err != nil {
		return Value{}, err
	}
	if ctl == ctlReturn {
		return ret, nil
	}
	return IntValue(0), nil
}

// execStmt executes one statement; when ctl is ctlReturn, ret carries the
// return value.
func (m *VM) execStmt(frame *Object, s lang.Stmt) (ret Value, ctl control, err error) {
	if err := m.step(s.StmtPos()); err != nil {
		return Value{}, ctlNone, err
	}
	switch st := s.(type) {
	case *lang.Block:
		for _, inner := range st.Stmts {
			ret, ctl, err = m.execStmt(frame, inner)
			if err != nil || ctl != ctlNone {
				return ret, ctl, err
			}
		}
		return Value{}, ctlNone, nil

	case *lang.DeclStmt:
		d := st.Decl
		if d.IsArray {
			frame.Cells[d.Slot] = PtrValue(NewObject(d.Name, d.Size), 0)
			return Value{}, ctlNone, nil
		}
		var v Value
		if d.Init != nil {
			v, err = m.eval(frame, d.Init)
			if err != nil {
				return Value{}, ctlNone, err
			}
		} else {
			v = IntValue(0)
		}
		frame.Cells[d.Slot] = v
		return Value{}, ctlNone, nil

	case *lang.ExprStmt:
		_, err = m.eval(frame, st.E)
		return Value{}, ctlNone, err

	case *lang.Return:
		if st.E != nil {
			v, err := m.eval(frame, st.E)
			if err != nil {
				return Value{}, ctlNone, err
			}
			return v, ctlReturn, nil
		}
		return IntValue(0), ctlReturn, nil

	case *lang.Break:
		return Value{}, ctlBreak, nil

	case *lang.Continue:
		return Value{}, ctlContinue, nil

	case *lang.If:
		cond, err := m.eval(frame, st.Cond)
		if err != nil {
			return Value{}, ctlNone, err
		}
		taken := cond.Truthy()
		if err := m.branch(st.Branch, cond, taken); err != nil {
			return Value{}, ctlNone, err
		}
		if taken {
			return m.execStmt(frame, st.Then)
		}
		if st.Else != nil {
			return m.execStmt(frame, st.Else)
		}
		return Value{}, ctlNone, nil

	case *lang.While:
		for {
			cond, err := m.eval(frame, st.Cond)
			if err != nil {
				return Value{}, ctlNone, err
			}
			taken := cond.Truthy()
			if err := m.branch(st.Branch, cond, taken); err != nil {
				return Value{}, ctlNone, err
			}
			if !taken {
				return Value{}, ctlNone, nil
			}
			ret, ctl, err = m.execStmt(frame, st.Body)
			if err != nil {
				return Value{}, ctlNone, err
			}
			if ctl == ctlReturn {
				return ret, ctl, nil
			}
			if ctl == ctlBreak {
				return Value{}, ctlNone, nil
			}
		}

	case *lang.For:
		if st.Init != nil {
			if _, _, err := m.execStmt(frame, st.Init); err != nil {
				return Value{}, ctlNone, err
			}
		}
		for {
			if st.Cond != nil {
				cond, err := m.eval(frame, st.Cond)
				if err != nil {
					return Value{}, ctlNone, err
				}
				taken := cond.Truthy()
				if err := m.branch(st.Branch, cond, taken); err != nil {
					return Value{}, ctlNone, err
				}
				if !taken {
					return Value{}, ctlNone, nil
				}
			}
			ret, ctl, err = m.execStmt(frame, st.Body)
			if err != nil {
				return Value{}, ctlNone, err
			}
			if ctl == ctlReturn {
				return ret, ctl, nil
			}
			if ctl == ctlBreak {
				return Value{}, ctlNone, nil
			}
			if st.Post != nil {
				if _, _, err := m.execStmt(frame, st.Post); err != nil {
					return Value{}, ctlNone, err
				}
			}
		}
	}
	return Value{}, ctlNone, fmt.Errorf("vm: unknown statement %T", s)
}

// branch reports one branch execution to the sink.
func (m *VM) branch(site *lang.BranchSite, cond Value, taken bool) error {
	m.branchExecs++
	if m.opts.Sink == nil {
		return nil
	}
	if err := m.opts.Sink.OnBranch(site, cond, taken); err != nil {
		return SinkError(err)
	}
	return nil
}

// eval evaluates an expression.
func (m *VM) eval(frame *Object, e lang.Expr) (Value, error) {
	if err := m.step(e.ExprPos()); err != nil {
		return Value{}, err
	}
	switch x := e.(type) {
	case *lang.IntLit:
		return IntValue(x.V), nil

	case *lang.StrLit:
		return PtrValue(m.internString(x), 0), nil

	case *lang.Ident:
		return m.evalIdentValue(frame, x), nil

	case *lang.Unary:
		v, err := m.eval(frame, x.X)
		if err != nil {
			return Value{}, err
		}
		return UnaryOp(x.Op, v, x.Pos)

	case *lang.Binary:
		l, err := m.eval(frame, x.L)
		if err != nil {
			return Value{}, err
		}
		r, err := m.eval(frame, x.R)
		if err != nil {
			return Value{}, err
		}
		return BinOp(x.Op, l, r, x.Pos)

	case *lang.Logic:
		return m.evalLogic(frame, x)

	case *lang.Assign:
		return m.evalAssign(frame, x)

	case *lang.IncDec:
		obj, off, err := m.lvalue(frame, x.X)
		if err != nil {
			return Value{}, err
		}
		old := obj.Cells[off]
		delta := int64(1)
		op := sym.OpAdd
		if x.Op == lang.MINUSMIN {
			delta = -1
			op = sym.OpSub
		}
		var nv Value
		if old.K == KPtr {
			nv = PtrValue(old.Obj, old.Off+delta)
		} else {
			var se sym.Expr
			if old.Sym != nil {
				se = sym.NewBin(op, old.Sym, sym.One)
			}
			nv = SymValue(old.I+delta, se)
		}
		obj.Cells[off] = nv
		return old, nil

	case *lang.Call:
		return m.evalCall(frame, x)

	case *lang.Index:
		base, err := m.eval(frame, x.Base)
		if err != nil {
			return Value{}, err
		}
		idx, err := m.eval(frame, x.Idx)
		if err != nil {
			return Value{}, err
		}
		obj, off, err := IndexCell(base, idx, x.Pos)
		if err != nil {
			return Value{}, err
		}
		return obj.Cells[off], nil

	case *lang.AddrOf:
		obj, off, err := m.lvalue(frame, x.X)
		if err != nil {
			return Value{}, err
		}
		return PtrValue(obj, off), nil

	case *lang.Deref:
		v, err := m.eval(frame, x.X)
		if err != nil {
			return Value{}, err
		}
		if v.K != KPtr || v.Obj == nil {
			return Value{}, m.crash(CrashNullDeref, x.Pos, 0)
		}
		if !v.Obj.In(v.Off) {
			return Value{}, m.crash(CrashOOB, x.Pos, 0)
		}
		return v.Obj.Cells[v.Off], nil
	}
	return Value{}, fmt.Errorf("vm: unknown expression %T", e)
}

// evalIdentValue reads an identifier's value, decaying array names to
// pointers to their first cell.
func (m *VM) evalIdentValue(frame *Object, id *lang.Ident) Value {
	d := id.Decl
	if d.Global {
		obj := m.globals[d.Slot]
		if d.IsArray {
			return PtrValue(obj, 0)
		}
		return obj.Cells[0]
	}
	return frame.Cells[d.Slot]
}

func (m *VM) internString(s *lang.StrLit) *Object {
	if o, ok := m.strings[s]; ok {
		return o
	}
	o := NewObject("str", int64(len(s.S))+1)
	o.StoreBytes(0, []byte(s.S))
	m.strings[s] = o
	return o
}

// lvalue resolves an assignable expression to (object, offset).
func (m *VM) lvalue(frame *Object, e lang.Expr) (*Object, int64, error) {
	switch x := e.(type) {
	case *lang.Ident:
		d := x.Decl
		if d.IsArray {
			// &arr[0] via AddrOf(Ident) on an array name.
			if d.Global {
				return m.globals[d.Slot], 0, nil
			}
			av := frame.Cells[d.Slot]
			if av.K != KPtr || av.Obj == nil {
				return nil, 0, m.crash(CrashNullDeref, x.Pos, 0)
			}
			return av.Obj, av.Off, nil
		}
		if d.Global {
			return m.globals[d.Slot], 0, nil
		}
		return frame, int64(d.Slot), nil
	case *lang.Index:
		base, err := m.eval(frame, x.Base)
		if err != nil {
			return nil, 0, err
		}
		idx, err := m.eval(frame, x.Idx)
		if err != nil {
			return nil, 0, err
		}
		return IndexCell(base, idx, x.Pos)
	case *lang.Deref:
		v, err := m.eval(frame, x.X)
		if err != nil {
			return nil, 0, err
		}
		if v.K != KPtr || v.Obj == nil {
			return nil, 0, m.crash(CrashNullDeref, x.Pos, 0)
		}
		if !v.Obj.In(v.Off) {
			return nil, 0, m.crash(CrashOOB, x.Pos, 0)
		}
		return v.Obj, v.Off, nil
	}
	return nil, 0, fmt.Errorf("vm: not an lvalue: %T", e)
}

func (m *VM) evalLogic(frame *Object, x *lang.Logic) (Value, error) {
	l, err := m.eval(frame, x.L)
	if err != nil {
		return Value{}, err
	}
	lTrue := l.Truthy()
	// The short-circuit decision is itself a branch location.
	if err := m.branch(x.Branch, l, lTrue); err != nil {
		return Value{}, err
	}
	if x.Op == lang.ANDAND {
		if !lTrue {
			return SymValue(0, BoolExpr(l)), nil
		}
		r, err := m.eval(frame, x.R)
		if err != nil {
			return Value{}, err
		}
		return BoolValue(r), nil
	}
	// OROR.
	if lTrue {
		return SymValue(1, BoolExpr(l)), nil
	}
	r, err := m.eval(frame, x.R)
	if err != nil {
		return Value{}, err
	}
	return BoolValue(r), nil
}

func (m *VM) evalAssign(frame *Object, x *lang.Assign) (Value, error) {
	rhs, err := m.eval(frame, x.RHS)
	if err != nil {
		return Value{}, err
	}
	obj, off, err := m.lvalue(frame, x.LHS)
	if err != nil {
		return Value{}, err
	}
	if x.Op == lang.ASSIGN {
		obj.Cells[off] = rhs
		return rhs, nil
	}
	old := obj.Cells[off]
	op, err := CompoundOp(x.Op)
	if err != nil {
		return Value{}, err
	}
	nv, err := BinOp(op, old, rhs, x.Pos)
	if err != nil {
		return Value{}, err
	}
	obj.Cells[off] = nv
	return nv, nil
}

// CompoundOp maps a compound-assignment token to its binary operator.
func CompoundOp(tok lang.Kind) (lang.Kind, error) {
	switch tok {
	case lang.PLUSEQ:
		return lang.PLUS, nil
	case lang.MINUSEQ:
		return lang.MINUS, nil
	case lang.STAREQ:
		return lang.STAR, nil
	case lang.SLASHEQ:
		return lang.SLASH, nil
	case lang.PCTEQ:
		return lang.PERCENT, nil
	}
	return 0, fmt.Errorf("vm: bad compound assign %v", tok)
}
