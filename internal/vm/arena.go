package vm

import "sync"

// ObjectArena bump-allocates run-lifetime Objects from pooled slabs. The
// replay search executes the program hundreds of times per reproduction, and
// every run allocates the full set of globals, frames and local arrays; with
// the general-purpose heap that allocation (and the garbage-collection work
// it induces) dominates the run cost. An arena amortizes it: slabs are
// reused across runs via a pool, so a steady-state run allocates nothing.
//
// Arena objects are semantically identical to NewObject ones — zeroed cells
// and a unique, allocation-ordered ID (pointer comparisons across distinct
// objects order by ID, so allocation order is what matters, not the ID
// values themselves). The caller owning the arena must guarantee that no
// Object allocated from it is reachable after Release; in this repository
// nothing retains Objects past a run — sinks keep sym.Expr constraints, the
// kernel exchanges plain bytes, and results carry only scalars.
type ObjectArena struct {
	cellSlabs [][]Value
	cellUsed  []int // high-water mark per slab, for release-time zeroing
	objSlabs  [][]Object
	ci, cn    int // current cell slab and its used count
	oi, on    int // current object slab and its used count
}

const (
	arenaCellSlab = 16384 // Values per cell slab
	arenaObjSlab  = 512   // Objects per header slab
)

var arenaPool = sync.Pool{New: func() any { return new(ObjectArena) }}

// GetArena returns a pooled arena whose storage is zeroed.
func GetArena() *ObjectArena { return arenaPool.Get().(*ObjectArena) }

// Release zeroes the arena's used storage (dropping every Name, Cells and
// Sym reference it pinned) and returns it to the pool. No Object allocated
// from the arena may be used after Release.
func (a *ObjectArena) Release() {
	for i := 0; i <= a.ci && i < len(a.cellSlabs); i++ {
		clear(a.cellSlabs[i][:a.cellUsed[i]])
		a.cellUsed[i] = 0
	}
	for i := 0; i <= a.oi && i < len(a.objSlabs); i++ {
		used := arenaObjSlab
		if i == a.oi {
			used = a.on
		}
		clear(a.objSlabs[i][:used])
	}
	a.ci, a.cn, a.oi, a.on = 0, 0, 0, 0
	arenaPool.Put(a)
}

// NewObject allocates a zeroed n-cell object with run lifetime.
func (a *ObjectArena) NewObject(name string, n int64) *Object {
	if a.oi == len(a.objSlabs) {
		a.objSlabs = append(a.objSlabs, make([]Object, arenaObjSlab))
	}
	o := &a.objSlabs[a.oi][a.on]
	if a.on++; a.on == arenaObjSlab {
		a.oi++
		a.on = 0
	}
	o.ID = objectIDs.Add(1)
	o.Name = name
	o.Cells = a.cells(int(n))
	return o
}

// Scratch carves a zeroed value buffer of capacity n and zero length for
// run-local scratch (the bytecode VM's operand stack); like any arena
// storage it is reclaimed on Release. Appending past n migrates to the heap,
// which is correct and merely loses the pooling for that one run.
func (a *ObjectArena) Scratch(n int) []Value { return a.cells(n)[:0] }

// cells carves a zeroed value slice off the slab sequence. Requests larger
// than the standard slab get a dedicated one, so arbitrarily big arrays
// still pool.
func (a *ObjectArena) cells(n int) []Value {
	for {
		if a.ci == len(a.cellSlabs) {
			size := arenaCellSlab
			if n > size {
				size = n
			}
			a.cellSlabs = append(a.cellSlabs, make([]Value, size))
			a.cellUsed = append(a.cellUsed, 0)
		}
		if slab := a.cellSlabs[a.ci]; a.cn+n <= len(slab) {
			out := slab[a.cn : a.cn+n : a.cn+n]
			a.cn += n
			if a.cn > a.cellUsed[a.ci] {
				a.cellUsed[a.ci] = a.cn
			}
			return out
		}
		// Slabs are pooled in whatever sizes earlier runs needed; skip any
		// too full (or too small) for this request.
		a.ci++
		a.cn = 0
	}
}
