package vm

import (
	"fmt"

	"pathlog/internal/lang"
	"pathlog/internal/oskernel"
	"pathlog/internal/sym"
)

// evalCall dispatches MiniC function calls and builtins.
func (m *VM) evalCall(frame *Object, x *lang.Call) (Value, error) {
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := m.eval(frame, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	if x.Func != nil {
		callee := NewObject(x.Name+".frame", int64(x.Func.NumSlots))
		copy(callee.Cells, args)
		return m.callFunc(x.Func, callee)
	}
	return m.host.Call(x.Name, x.Pos, args)
}

// Host is the builtin and syscall surface of a MiniC execution: the kernel,
// the optional symbolic world, and the per-run syscall sequence counters that
// tie read()/select_ready() results to their symbolic variables. Both the
// tree walker and the bytecode VM own one Host per run, so builtin semantics
// — including symbolic input marking and crash positions — have exactly one
// definition.
type Host struct {
	// Kernel supplies syscalls. Required.
	Kernel *oskernel.Kernel
	// World marks input symbolic; may be nil for concrete runs.
	World World

	readSeq   int
	selectSeq int
}

// argErr reports a builtin misuse; these are programming errors in the MiniC
// sources, not program crashes.
func argErr(pos lang.Pos, name, why string) error {
	return fmt.Errorf("vm: %s: builtin %s: %s", pos, name, why)
}

// Call executes the named builtin at a call site. Abnormal terminations
// (crashes, exit) come back as the same termination errors every engine
// threads through Finish.
func (h *Host) Call(name string, pos lang.Pos, args []Value) (Value, error) {
	k := h.Kernel
	switch name {
	case "argcount":
		return IntValue(int64(len(k.Args()))), nil

	case "getarg":
		if len(args) != 3 {
			return Value{}, argErr(pos, name, "want (i, buf, cap)")
		}
		idx := args[0].I
		buf := args[1]
		capacity := args[2].I
		if buf.K != KPtr || buf.Obj == nil {
			return Value{}, CrashError(CrashNullDeref, pos, 0)
		}
		if idx < 0 || idx >= int64(len(k.Args())) {
			return IntValue(-1), nil
		}
		arg := k.Args()[idx]
		n := int64(len(arg))
		if n > capacity-1 {
			n = capacity - 1
		}
		stream := oskernel.ArgStream(int(idx))
		for i := int64(0); i < n; i++ {
			if !buf.Obj.In(buf.Off + i) {
				return Value{}, CrashError(CrashOOB, pos, 0)
			}
			buf.Obj.Cells[buf.Off+i] = h.InputByte(stream, i, arg[i])
		}
		if !buf.Obj.In(buf.Off + n) {
			return Value{}, CrashError(CrashOOB, pos, 0)
		}
		// The terminator at the end of the argv region is part of the
		// symbolic input space (domain {0}); a mid-region terminator from
		// capacity truncation is program-computed and stays concrete.
		if n == int64(len(arg)) {
			buf.Obj.Cells[buf.Off+n] = h.InputByte(stream, n, 0)
		} else {
			buf.Obj.Cells[buf.Off+n] = IntValue(0)
		}
		return IntValue(n), nil

	case "open":
		if len(args) != 1 {
			return Value{}, argErr(pos, name, "want (path)")
		}
		if args[0].K != KPtr || args[0].Obj == nil {
			return Value{}, CrashError(CrashNullDeref, pos, 0)
		}
		path := string(args[0].Obj.CString(args[0].Off))
		return IntValue(int64(k.Open(path))), nil

	case "close":
		if len(args) != 1 {
			return Value{}, argErr(pos, name, "want (fd)")
		}
		return IntValue(int64(k.Close(int(args[0].I)))), nil

	case "read":
		return h.builtinRead(pos, name, args)

	case "write":
		if len(args) != 3 {
			return Value{}, argErr(pos, name, "want (fd, buf, n)")
		}
		buf := args[1]
		n := args[2].I
		if buf.K != KPtr || buf.Obj == nil {
			return Value{}, CrashError(CrashNullDeref, pos, 0)
		}
		data := make([]byte, 0, n)
		for i := int64(0); i < n; i++ {
			if !buf.Obj.In(buf.Off + i) {
				return Value{}, CrashError(CrashOOB, pos, 0)
			}
			data = append(data, byte(buf.Obj.Cells[buf.Off+i].I))
		}
		return IntValue(k.Write(int(args[0].I), data)), nil

	case "listen_socket":
		if len(args) != 1 {
			return Value{}, argErr(pos, name, "want (port)")
		}
		return IntValue(int64(k.Listen(int(args[0].I)))), nil

	case "accept":
		if len(args) != 1 {
			return Value{}, argErr(pos, name, "want (lfd)")
		}
		return IntValue(int64(k.Accept(int(args[0].I)))), nil

	case "select_ready":
		return h.builtinSelect(pos, name, args)

	case "signal_pending":
		v := int64(0)
		if k.SignalPending() {
			v = 1
		}
		return IntValue(v), nil

	case "print_int":
		if len(args) != 1 {
			return Value{}, argErr(pos, name, "want (v)")
		}
		k.Write(oskernel.FDStdout, []byte(fmt.Sprintf("%d", args[0].I)))
		return IntValue(0), nil

	case "print_char":
		if len(args) != 1 {
			return Value{}, argErr(pos, name, "want (c)")
		}
		k.Write(oskernel.FDStdout, []byte{byte(args[0].I)})
		return IntValue(0), nil

	case "print_str":
		if len(args) != 1 {
			return Value{}, argErr(pos, name, "want (s)")
		}
		if args[0].K != KPtr || args[0].Obj == nil {
			return Value{}, CrashError(CrashNullDeref, pos, 0)
		}
		k.Write(oskernel.FDStdout, args[0].Obj.CString(args[0].Off))
		return IntValue(0), nil

	case "exit":
		code := int64(0)
		if len(args) > 0 {
			code = args[0].I
		}
		return Value{}, ExitError(code)

	case "crash":
		code := int64(0)
		if len(args) > 0 {
			code = args[0].I
		}
		return Value{}, CrashError(CrashExplicit, pos, code)
	}
	return Value{}, argErr(pos, name, "not implemented")
}

// InputByte wraps an input byte with its symbolic expression when the world
// declares the stream symbolic.
func (h *Host) InputByte(stream string, off int64, b byte) Value {
	if h.World == nil {
		return IntValue(int64(b))
	}
	return SymValue(int64(b), h.World.MarkByte(stream, off))
}

// builtinRead implements read(fd, buf, n). The returned count may carry a
// symbolic expression (the paper's read() model, §3.3) when the world is in
// model mode; the data bytes carry input-stream expressions.
func (h *Host) builtinRead(pos lang.Pos, name string, args []Value) (Value, error) {
	if len(args) != 3 {
		return Value{}, argErr(pos, name, "want (fd, buf, n)")
	}
	buf := args[1]
	n := args[2].I
	if buf.K != KPtr || buf.Obj == nil {
		return Value{}, CrashError(CrashNullDeref, pos, 0)
	}
	seq := h.readSeq
	h.readSeq++
	res := h.Kernel.Read(int(args[0].I), n)
	if res.N > 0 {
		for i := int64(0); i < res.N; i++ {
			if !buf.Obj.In(buf.Off + i) {
				return Value{}, CrashError(CrashOOB, pos, 0)
			}
			var cell Value
			if res.Stream != "" {
				cell = h.InputByte(res.Stream, res.Off+int64(i), res.Data[i])
			} else {
				cell = IntValue(int64(res.Data[i]))
			}
			buf.Obj.Cells[buf.Off+i] = cell
		}
	}
	var countExpr sym.Expr
	if h.World != nil {
		countExpr = h.World.SyscallExpr("read", seq)
	}
	return SymValue(res.N, countExpr), nil
}

// builtinSelect implements select_ready(buf, cap): fills buf with ready fds
// and returns the count. The count may be symbolic in model mode; fd values
// themselves stay concrete (address concretization).
func (h *Host) builtinSelect(pos lang.Pos, name string, args []Value) (Value, error) {
	if len(args) != 2 {
		return Value{}, argErr(pos, name, "want (buf, cap)")
	}
	buf := args[0]
	capacity := args[1].I
	if buf.K != KPtr || buf.Obj == nil {
		return Value{}, CrashError(CrashNullDeref, pos, 0)
	}
	seq := h.selectSeq
	h.selectSeq++
	ready := h.Kernel.SelectReady(int(capacity))
	for i, fd := range ready {
		if !buf.Obj.In(buf.Off + int64(i)) {
			return Value{}, CrashError(CrashOOB, pos, 0)
		}
		buf.Obj.Cells[buf.Off+int64(i)] = IntValue(int64(fd))
	}
	var countExpr sym.Expr
	if h.World != nil {
		countExpr = h.World.SyscallExpr("select", seq)
	}
	return SymValue(int64(len(ready)), countExpr), nil
}
