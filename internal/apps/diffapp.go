package apps

import (
	"pathlog/internal/lang"
	"pathlog/internal/world"
)

// DiffSource is the MiniC port of the diff utility (§5.4): it reads two
// files, splits them into lines, runs the LCS dynamic program over the line
// arrays, and prints an edit script. Diff is the paper's stress case for
// dynamic analysis — nearly every branch depends on file contents, and the
// LCS loops generate very long constraint chains.
//
// As in §5.3/§5.4, the experiments crash the program after it has produced
// its output (the paper sends SIGSEGV); the explicit crash at the end of
// main is that signal's stand-in, so reproducing the run means recovering
// file contents that drive the whole comparison down the recorded path.
const DiffSource = `
/* diff: line-based file comparison via LCS. */

char file_a[1024];
char file_b[1024];
int len_a = 0;
int len_b = 0;

/* Line index: start offset and length per line, flattened. */
int starts_a[32];
int lens_a[32];
int hash_a[32];
int nlines_a = 0;
int starts_b[32];
int lens_b[32];
int hash_b[32];
int nlines_b = 0;

/* Options. */
int opt_ignore_case = 0;
int opt_ignore_blank = 0;

/* LCS table, (nlines_a+1) x (nlines_b+1), flattened at stride 33. */
int lcs[1089];

int stat_added = 0;
int stat_deleted = 0;
int stat_common = 0;

int read_whole(char *path, char *dst, int cap) {
	int fd = open(path);
	if (fd < 0) { return 0 - 1; }
	int total = 0;
	while (total < cap) {
		int got = read(fd, dst + total, cap - total);
		if (got <= 0) { break; }
		total += got;
	}
	close(fd);
	/* Text files end at the first NUL byte (the stream padding). */
	int i;
	for (i = 0; i < total; i++) {
		if (dst[i] == '\0') { return i; }
	}
	return total;
}

/* Detect binary content: any byte below TAB in the first 16 bytes. */
int looks_binary(char *buf, int n) {
	int limit = n;
	if (limit > 16) { limit = 16; }
	int i;
	for (i = 0; i < limit; i++) {
		if (buf[i] > 0 && buf[i] < 9) { return 1; }
	}
	return 0;
}

/* Canonical byte under the active options. */
int canon(int c) {
	if (opt_ignore_case) { return to_lower(c); }
	return c;
}

/* Effective line length: -b strips trailing blanks. */
int eff_len(char *buf, int start, int len) {
	if (!opt_ignore_blank) { return len; }
	while (len > 0 && (buf[start + len - 1] == ' ' || buf[start + len - 1] == '\t')) {
		len--;
	}
	return len;
}

/* Line hash under the active options (djb-ish). */
int hash_line(char *buf, int start, int len) {
	int h = 5381;
	int k;
	for (k = 0; k < len; k++) {
		h = (h * 31 + canon(buf[start + k])) % 16777216;
	}
	return h;
}

int split_lines(char *buf, int n, int *starts, int *lens, int *hashes, int maxlines) {
	int count = 0;
	int i = 0;
	int start = 0;
	while (i < n && count < maxlines) {
		if (buf[i] == '\n') {
			starts[count] = start;
			lens[count] = eff_len(buf, start, i - start);
			hashes[count] = hash_line(buf, start, lens[count]);
			count++;
			start = i + 1;
		}
		i++;
	}
	if (start < n && count < maxlines) {
		starts[count] = start;
		lens[count] = eff_len(buf, start, n - start);
		hashes[count] = hash_line(buf, start, lens[count]);
		count++;
	}
	return count;
}

int stat_hashhits = 0;

int lines_equal(int ia, int ib) {
	if (lens_a[ia] != lens_b[ib]) { return 0; }
	int k;
	for (k = 0; k < lens_a[ia]; k++) {
		if (canon(file_a[starts_a[ia] + k]) != canon(file_b[starts_b[ib] + k])) {
			return 0;
		}
	}
	/* Bookkeeping on the hash equivalence classes (real diff buckets lines
	   by hash; the bucket-parity counter keeps that code input-dependent
	   without gating correctness on hash equality). */
	if ((hash_a[ia] & 1) == (hash_b[ib] & 1)) { stat_hashhits++; }
	return 1;
}

int max2(int x, int y) {
	if (x > y) { return x; }
	return y;
}

int build_lcs() {
	int i;
	int j;
	for (i = 0; i <= nlines_a; i++) { lcs[i * 33] = 0; }
	for (j = 0; j <= nlines_b; j++) { lcs[j] = 0; }
	for (i = 1; i <= nlines_a; i++) {
		for (j = 1; j <= nlines_b; j++) {
			if (lines_equal(i - 1, j - 1)) {
				lcs[i * 33 + j] = lcs[(i - 1) * 33 + (j - 1)] + 1;
			} else {
				lcs[i * 33 + j] = max2(lcs[(i - 1) * 33 + j], lcs[i * 33 + (j - 1)]);
			}
		}
	}
	return lcs[nlines_a * 33 + nlines_b];
}

int print_line(char *buf, int start, int len) {
	int k;
	for (k = 0; k < len; k++) {
		print_char(buf[start + k]);
	}
	print_char('\n');
	return len;
}

/* Emit the edit script by walking the LCS table backwards; the walk itself
   is recursive to keep the output in order. */
int emit(int i, int j) {
	if (i > 0 && j > 0 && lines_equal(i - 1, j - 1)) {
		emit(i - 1, j - 1);
		stat_common++;
		return 0;
	}
	if (j > 0 && (i == 0 || lcs[i * 33 + (j - 1)] >= lcs[(i - 1) * 33 + j])) {
		emit(i, j - 1);
		print_str("> ");
		print_line(file_b, starts_b[j - 1], lens_b[j - 1]);
		stat_added++;
		return 0;
	}
	if (i > 0) {
		emit(i - 1, j);
		print_str("< ");
		print_line(file_a, starts_a[i - 1], lens_a[i - 1]);
		stat_deleted++;
		return 0;
	}
	return 0;
}

int main() {
	char patha[104];
	char pathb[104];
	char opt[8];
	if (getarg(0, patha, 104) < 0 || getarg(1, pathb, 104) < 0) {
		print_str("diff: need two files\n");
		exit(2);
	}
	if (getarg(2, opt, 8) >= 0) {
		if (opt[0] == '-' && opt[1] == 'i' && opt[2] == '\0') {
			opt_ignore_case = 1;
		} else if (opt[0] == '-' && opt[1] == 'b' && opt[2] == '\0') {
			opt_ignore_blank = 1;
		} else if (opt[0] != '\0') {
			print_str("diff: unknown option\n");
			exit(2);
		}
	}
	len_a = read_whole(patha, file_a, 1023);
	if (len_a < 0) {
		print_str("diff: cannot open first file\n");
		exit(2);
	}
	len_b = read_whole(pathb, file_b, 1023);
	if (len_b < 0) {
		print_str("diff: cannot open second file\n");
		exit(2);
	}
	if (looks_binary(file_a, len_a) || looks_binary(file_b, len_b)) {
		print_str("binary files differ\n");
		crash(9);
	}
	nlines_a = split_lines(file_a, len_a, starts_a, lens_a, hash_a, 32);
	nlines_b = split_lines(file_b, len_b, starts_b, lens_b, hash_b, 32);

	build_lcs();
	emit(nlines_a, nlines_b);

	if (stat_added == 0 && stat_deleted == 0) {
		print_str("files are identical\n");
	} else {
		print_str("=== ");
		print_int(stat_deleted);
		print_str(" deleted, ");
		print_int(stat_added);
		print_str(" added, ");
		print_int(stat_common);
		print_str(" common\n");
	}
	/* The experiment's SIGSEGV after the comparison completes (S5.4). */
	crash(9);
	return 0;
}
`

// DiffProgram links diff against ulib.
func DiffProgram() *lang.Program {
	return mustProgram("diff.mc", DiffSource)
}

// DiffScenario builds the input space and user input for one diff
// experiment comparing two text files.
func DiffScenario(fileA, fileB string, capBytes int) (*world.Spec, map[string][]byte) {
	if capBytes < len(fileA) {
		capBytes = len(fileA)
	}
	if capBytes < len(fileB) {
		capBytes = len(fileB)
	}
	spec := &world.Spec{
		Args: []world.Stream{
			world.ArgSpec(0, "a.txt", 8),
			world.ArgSpec(1, "b.txt", 8),
			world.ArgSpec(2, "", 4), // optional -i / -b
		},
		Files: []world.FileInput{
			world.FileSpec("a.txt", neutralText(len(fileA)), capBytes),
			world.FileSpec("b.txt", neutralText(len(fileB)), capBytes),
		},
		// Path arguments are symbolic; serve opens in declaration order
		// (KLEE symbolic-FS model).
		SymbolicFS: true,
	}
	user := map[string][]byte{
		"arg0":       []byte("a.txt"),
		"arg1":       []byte("b.txt"),
		"file:a.txt": []byte(fileA),
		"file:b.txt": []byte(fileB),
	}
	return spec, user
}

// neutralText builds a placeholder text of the given length: 'x' bytes with
// a newline every 8 bytes, so the neutral seed has line structure too.
func neutralText(n int) string {
	b := make([]byte, n)
	for i := range b {
		if i%8 == 7 {
			b[i] = '\n'
		} else {
			b[i] = 'x'
		}
	}
	return string(b)
}

// The two §5.4 experiments: small but different text files.
var DiffExperiments = [][2]string{
	{"alpha\nbeta\ngamma\n", "alpha\ndelta\ngamma\n"},
	{"one\ntwo\nthree\nfour\n", "one\nthree\nfive\nfour\nsix\n"},
}
