package apps

import (
	"pathlog/internal/lang"
	"pathlog/internal/world"
)

// The four coreutils of §5.2, each carrying a crash bug that manifests only
// under a specific argument combination — modeled on the real bugs that KLEE
// found and ESD/this paper reproduced. All four share ulib and realistic
// option-parsing structure, so their branch behavior matches Figure 1:
// a small set of branch locations executes with symbolic conditions, the
// rest are concrete.

// MkdirSource implements `mkdir [-p] [-v] [-m MODE] dir...`.
//
// Planted bug: the mode string is copied into a fixed 4-byte buffer without
// a length check; `mkdir -m 07777 d` overflows it (out-of-bounds write
// inside ulib's str_cpy, crashing in library code like the original report).
const MkdirSource = `
char modebuf[4];

int report(char *name, int verbose) {
	if (verbose) {
		print_str("mkdir: created directory ");
		print_str(name);
		print_char('\n');
	}
	return 0;
}

int main() {
	int parents = 0;
	int verbose = 0;
	int mode = 493; /* 0755 */
	int argi = 0;
	int n = argcount();
	char arg[104];
	int made = 0;

	while (argi < n) {
		int len = getarg(argi, arg, 104);
		if (len < 0) { break; }
		if (arg[0] == '-' && arg[1] != '\0') {
			if (str_eq(arg, "-p")) {
				parents = 1;
			} else if (str_eq(arg, "-v")) {
				verbose = 1;
			} else if (str_eq(arg, "-m")) {
				argi++;
				len = getarg(argi, arg, 104);
				if (len < 0) {
					print_str("mkdir: option requires an argument -- m\n");
					exit(1);
				}
				/* BUG: no length check before copying into modebuf[4]. */
				str_cpy(modebuf, arg);
				mode = parse_octal(modebuf);
				if (mode < 0) {
					print_str("mkdir: invalid mode\n");
					exit(1);
				}
			} else {
				print_str("mkdir: invalid option\n");
				exit(1);
			}
		} else {
			if (parents) {
				/* Create each path component. */
				int i = 0;
				while (arg[i] != '\0') {
					if (arg[i] == '/') { made++; }
					i++;
				}
			}
			report(arg, verbose);
			made++;
		}
		argi++;
	}
	if (made == 0) {
		print_str("mkdir: missing operand\n");
		exit(1);
	}
	print_int(mode);
	return 0;
}
`

// MknodSource implements `mknod NAME TYPE [MAJOR MINOR]`.
//
// Planted bug: for block/char devices the major number is parsed from an
// argument that may be missing; the resulting -1 indexes the device table
// (out-of-bounds write). `mknod foo b` crashes.
const MknodSource = `
int devtable[16];

int valid_type(int t) {
	if (t == 'b' || t == 'c' || t == 'u' || t == 'p') { return 1; }
	return 0;
}

int main() {
	char name[104];
	char typ[104];
	char majbuf[104];
	char minbuf[104];

	if (getarg(0, name, 104) < 0) {
		print_str("mknod: missing operand\n");
		exit(1);
	}
	if (getarg(1, typ, 104) < 0) {
		print_str("mknod: missing type\n");
		exit(1);
	}
	if (typ[1] != '\0' || !valid_type(typ[0])) {
		print_str("mknod: invalid device type\n");
		exit(1);
	}
	if (typ[0] == 'p') {
		print_str("mknod: created fifo ");
		print_str(name);
		print_char('\n');
		return 0;
	}
	/* Block or character device: needs major/minor. */
	getarg(2, majbuf, 104);
	getarg(3, minbuf, 104);
	int major = parse_int(majbuf);
	int minor = parse_int(minbuf);
	if (minor < 0) { minor = 0; }
	/* BUG: missing major argument leaves major == -1, which indexes the
	   device table out of bounds. */
	if (major >= 16) {
		print_str("mknod: major too large\n");
		exit(1);
	}
	devtable[major] = minor + 1;
	print_str("mknod: created device ");
	print_str(name);
	print_char('\n');
	return 0;
}
`

// MkfifoSource implements `mkfifo [-m MODE] NAME...`.
//
// Planted bug: an invalid octal mode parses to -1, and -1 % 8 stays -1 in C
// semantics, indexing the permission-bit histogram out of bounds.
// `mkfifo -m 9 f` crashes.
const MkfifoSource = `
int permbits[8];

int main() {
	int argi = 0;
	int n = argcount();
	char arg[104];
	int made = 0;
	int mode = 420; /* 0644 */

	while (argi < n) {
		int len = getarg(argi, arg, 104);
		if (len < 0) { break; }
		if (str_eq(arg, "-m")) {
			argi++;
			len = getarg(argi, arg, 104);
			if (len < 0) {
				print_str("mkfifo: option requires an argument -- m\n");
				exit(1);
			}
			mode = parse_octal(arg);
			/* BUG: no validation; -1 % 8 == -1 indexes out of bounds. */
			permbits[mode % 8]++;
		} else if (arg[0] == '-' && arg[1] != '\0') {
			print_str("mkfifo: invalid option\n");
			exit(1);
		} else {
			print_str("mkfifo: created fifo ");
			print_str(arg);
			print_char('\n');
			made++;
		}
		argi++;
	}
	if (made == 0) {
		print_str("mkfifo: missing operand\n");
		exit(1);
	}
	print_int(mode);
	return 0;
}
`

// PasteSource implements `paste [-s] [-d LIST] FILE`, reading the file from
// the simulated kernel and joining lines with the delimiter list.
//
// Planted bug (the historical coreutils one): a delimiter list consisting of
// a single backslash collapses to an empty list, and the per-column
// delimiter selection divides by the list length. `paste -d\ f` crashes with
// a division by zero at the modulo, the analogue of the original
// out-of-bounds delimiter pointer.
const PasteSource = `
char delims[8];
int delim_len = 0;

int collapse_escapes(char *list) {
	int i = 0;
	int o = 0;
	while (list[i] != '\0') {
		if (list[i] == '\\') {
			i++;
			if (list[i] == 'n') { delims[o] = '\n'; o++; }
			else if (list[i] == 't') { delims[o] = '\t'; o++; }
			else if (list[i] == '0') { delims[o] = '\0'; o++; }
			else if (list[i] == '\\') { delims[o] = '\\'; o++; }
			/* BUG source: a trailing backslash adds nothing and skips the
			   terminator check, leaving the list empty. */
			if (list[i] == '\0') { break; }
			i++;
		} else {
			if (o < 7) { delims[o] = list[i]; }
			o++;
			i++;
		}
	}
	if (o > 7) { o = 7; }
	delim_len = o;
	return o;
}

int main() {
	int serial = 0;
	int argi = 0;
	int n = argcount();
	char arg[104];
	char fname[104];
	int have_file = 0;

	delims[0] = '\t';
	delim_len = 1;

	while (argi < n) {
		int len = getarg(argi, arg, 104);
		if (len < 0) { break; }
		if (str_eq(arg, "-s")) {
			serial = 1;
		} else if (arg[0] == '-' && arg[1] == 'd') {
			if (arg[2] != '\0') {
				collapse_escapes(arg + 2);
			} else {
				argi++;
				len = getarg(argi, arg, 104);
				if (len < 0) {
					print_str("paste: option requires an argument -- d\n");
					exit(1);
				}
				collapse_escapes(arg);
			}
		} else if (arg[0] == '-' && arg[1] != '\0') {
			print_str("paste: invalid option\n");
			exit(1);
		} else {
			str_cpy(fname, arg);
			have_file = 1;
		}
		argi++;
	}
	if (!have_file) {
		print_str("paste: missing file operand\n");
		exit(1);
	}

	int fd = open(fname);
	if (fd < 0) {
		print_str("paste: cannot open file\n");
		exit(1);
	}
	char buf[256];
	int got = read(fd, buf, 255);
	if (got < 0) { got = 0; }
	buf[got] = '\0';
	close(fd);

	/* Join lines using the delimiter list, cycling through it. */
	int col = 0;
	int i;
	for (i = 0; i < got; i++) {
		if (buf[i] == '\n') {
			if (!serial) {
				/* BUG: delim_len can be zero after a lone backslash. */
				int d = delims[col % delim_len];
				if (d != '\0') { print_char(d); }
				col++;
			} else {
				print_char('\n');
			}
		} else {
			print_char(buf[i]);
		}
	}
	print_char('\n');
	return 0;
}
`

// Coreutil bundles one program with its bug-triggering invocation.
type Coreutil struct {
	Name    string
	Prog    *lang.Program
	Spec    *world.Spec
	UserArg map[string][]byte
}

// Coreutils returns the four §5.2 programs with their bug scenarios. The
// neutral spec mirrors the paper's setup — several arguments of up to 100
// bytes each (scaled by maxArgLen for tractable tests).
func Coreutils(maxArgLen int) []Coreutil {
	if maxArgLen <= 0 {
		maxArgLen = 16
	}
	spec := func(nArgs int, files ...world.FileInput) *world.Spec {
		s := &world.Spec{}
		for i := 0; i < nArgs; i++ {
			s.Args = append(s.Args, world.ArgSpec(i, "zz", maxArgLen))
		}
		s.Files = files
		// File names are symbolic input; use the KLEE-style FS model so
		// open() can succeed during analysis and replay.
		s.SymbolicFS = len(files) > 0
		return s
	}
	return []Coreutil{
		{
			Name: "mkdir",
			Prog: mustProgram("mkdir.mc", MkdirSource),
			Spec: spec(3),
			UserArg: map[string][]byte{
				"arg0": []byte("-m"),
				"arg1": []byte("07777"),
				"arg2": []byte("d"),
			},
		},
		{
			Name: "mknod",
			Prog: mustProgram("mknod.mc", MknodSource),
			Spec: spec(2),
			UserArg: map[string][]byte{
				"arg0": []byte("foo"),
				"arg1": []byte("b"),
			},
		},
		{
			Name: "mkfifo",
			Prog: mustProgram("mkfifo.mc", MkfifoSource),
			Spec: spec(3),
			UserArg: map[string][]byte{
				"arg0": []byte("-m"),
				"arg1": []byte("9"),
				"arg2": []byte("f"),
			},
		},
		{
			Name: "paste",
			Prog: mustProgram("paste.mc", PasteSource),
			Spec: spec(2, world.FileSpec("data.txt", "a\nb\nc\n", 12)),
			UserArg: map[string][]byte{
				"arg0": []byte("-d\\"),
				"arg1": []byte("data.txt"),
			},
		},
	}
}
