package apps

import (
	"fmt"
	"strings"

	"pathlog/internal/lang"
	"pathlog/internal/world"
)

// UServerSource is the MiniC port of the uServer (§5.3): a select()-driven
// HTTP server with a full request parser — methods, URL and query string,
// percent-escapes, headers (Host, Cookie, Content-Length, Connection,
// User-Agent), POST bodies — and per-connection state tables. The parser is
// where input-dependent branching concentrates; the event loop and fd
// bookkeeping are concrete, reproducing the roughly-10%-symbolic branch mix
// of Figure 3.
//
// The crash of §5.3 is reproduced via the kernel's crash signal: the
// workload delivers it after the scripted connections complete, and the
// server's signal check crashes at a fixed source location.
const UServerSource = `
/* uServer: select()-driven HTTP server. */

int conn_fds[16];
int conn_len[16];
int conn_done[16];
char conn_bufs[8192];   /* 16 slots x 512 bytes, flat */

/* The served document: a static in-memory page, like the uServer's cached
   file set. Initialized at startup. */
char doc[256];
int doc_len = 256;

/* Access log line assembly buffer. */
char alog[96];
int alog_cks = 0;

int stat_requests = 0;
int stat_gets = 0;
int stat_posts = 0;
int stat_heads = 0;
int stat_bad = 0;
int stat_cookies = 0;
int stat_keepalive = 0;
int stat_bodybytes = 0;
int stat_queries = 0;
int stat_escapes = 0;

int slot_of(int fd) {
	int i;
	for (i = 0; i < 16; i++) {
		if (conn_fds[i] == fd) { return i; }
	}
	return 0 - 1;
}

int free_slot() {
	int i;
	for (i = 0; i < 16; i++) {
		if (conn_fds[i] < 0) { return i; }
	}
	return 0 - 1;
}

int add_conn(int fd) {
	int s = free_slot();
	if (s < 0) {
		close(fd);
		return 0 - 1;
	}
	conn_fds[s] = fd;
	conn_len[s] = 0;
	conn_done[s] = 0;
	/* Clear the slot's request buffer, as the uServer recycles buffers. */
	mem_set(conn_bufs + s * 512, 0, 512);
	return s;
}

int drop_conn(int s) {
	close(conn_fds[s]);
	conn_fds[s] = 0 - 1;
	conn_len[s] = 0;
	conn_done[s] = 0;
	return 0;
}

/* Find the end of the header section: returns the index just past the first
   blank line, or -1 when the request is still incomplete. */
int headers_end(int s) {
	int base = s * 512;
	int n = conn_len[s];
	int i = 0;
	while (i + 3 < n) {
		if (conn_bufs[base + i] == '\r' && conn_bufs[base + i + 1] == '\n' &&
		    conn_bufs[base + i + 2] == '\r' && conn_bufs[base + i + 3] == '\n') {
			return i + 4;
		}
		i++;
	}
	return 0 - 1;
}

int hex_val(int c) {
	if (c >= '0' && c <= '9') { return c - '0'; }
	if (c >= 'a' && c <= 'f') { return c - 'a' + 10; }
	if (c >= 'A' && c <= 'F') { return c - 'A' + 10; }
	return 0 - 1;
}

/* Parse the request line starting at base; returns the index past its CRLF
   or -1 on malformed input. Classifies the method and scans the URL. */
int parse_request_line(int s, int base) {
	int method = 0; /* 1 GET, 2 POST, 3 HEAD */
	int i = 0;
	char mbuf[8];
	int mi = 0;

	while (mi < 7 && conn_bufs[base + i] != ' ' && conn_bufs[base + i] != '\r' &&
	       conn_bufs[base + i] != '\0') {
		mbuf[mi] = conn_bufs[base + i];
		mi++;
		i++;
	}
	mbuf[mi] = '\0';
	if (str_eq(mbuf, "GET")) { method = 1; }
	else if (str_eq(mbuf, "POST")) { method = 2; }
	else if (str_eq(mbuf, "HEAD")) { method = 3; }
	else {
		stat_bad++;
		return 0 - 1;
	}
	if (conn_bufs[base + i] != ' ') {
		stat_bad++;
		return 0 - 1;
	}
	i++;

	/* URL: path, percent escapes, optional query string. */
	if (conn_bufs[base + i] != '/') {
		stat_bad++;
		return 0 - 1;
	}
	int in_query = 0;
	while (conn_bufs[base + i] != ' ' && conn_bufs[base + i] != '\r' &&
	       conn_bufs[base + i] != '\0') {
		int c = conn_bufs[base + i];
		if (c == '%') {
			int h1 = hex_val(conn_bufs[base + i + 1]);
			int h2 = hex_val(conn_bufs[base + i + 2]);
			if (h1 < 0 || h2 < 0) {
				stat_bad++;
				return 0 - 1;
			}
			stat_escapes++;
			i += 3;
		} else {
			if (c == '?') {
				in_query = 1;
				stat_queries++;
			}
			if (in_query && c == '&') { stat_queries++; }
			i++;
		}
	}
	if (conn_bufs[base + i] != ' ') {
		stat_bad++;
		return 0 - 1;
	}
	i++;

	/* Version. */
	char vbuf[12];
	int vi = 0;
	while (vi < 11 && conn_bufs[base + i] != '\r' && conn_bufs[base + i] != '\0') {
		vbuf[vi] = conn_bufs[base + i];
		vi++;
		i++;
	}
	vbuf[vi] = '\0';
	if (!str_eq(vbuf, "HTTP/1.0") && !str_eq(vbuf, "HTTP/1.1")) {
		stat_bad++;
		return 0 - 1;
	}
	if (conn_bufs[base + i] != '\r' || conn_bufs[base + i + 1] != '\n') {
		stat_bad++;
		return 0 - 1;
	}

	if (method == 1) { stat_gets++; }
	if (method == 2) { stat_posts++; }
	if (method == 3) { stat_heads++; }
	return i + 2;
}

/* Parse one header line starting at base+i; returns the index past its CRLF,
   or -1 on the blank line that ends the header section. Recognized headers
   update statistics; Content-Length's value is stored in *clen. */
int parse_header_line(int s, int base, int i, int *clen) {
	if (conn_bufs[base + i] == '\r' && conn_bufs[base + i + 1] == '\n') {
		return 0 - 1;
	}
	char name[32];
	int ni = 0;
	while (ni < 31 && conn_bufs[base + i] != ':' && conn_bufs[base + i] != '\r' &&
	       conn_bufs[base + i] != '\0') {
		name[ni] = conn_bufs[base + i];
		ni++;
		i++;
	}
	name[ni] = '\0';
	if (conn_bufs[base + i] != ':') {
		/* Malformed header: skip to end of line. */
		while (conn_bufs[base + i] != '\n' && conn_bufs[base + i] != '\0') { i++; }
		return i + 1;
	}
	i++;
	while (conn_bufs[base + i] == ' ') { i++; }

	char value[64];
	int vi = 0;
	while (vi < 63 && conn_bufs[base + i] != '\r' && conn_bufs[base + i] != '\0') {
		value[vi] = conn_bufs[base + i];
		vi++;
		i++;
	}
	value[vi] = '\0';

	if (str_casecmp(name, "cookie") == 0) {
		stat_cookies++;
		int j = 0;
		while (value[j] != '\0') {
			if (value[j] == ';') { stat_cookies++; }
			j++;
		}
	} else if (str_casecmp(name, "content-length") == 0) {
		int v = parse_int(value);
		if (v >= 0) { *clen = v; }
	} else if (str_casecmp(name, "connection") == 0) {
		if (str_casecmp(value, "keep-alive") == 0) { stat_keepalive++; }
	} else if (str_casecmp(name, "host") == 0) {
		if (value[0] == '\0') { stat_bad++; }
	} else if (str_casecmp(name, "user-agent") == 0) {
		if (str_str(value, "Mozilla") >= 0) { stat_requests += 0; }
	}

	if (conn_bufs[base + i] == '\r' && conn_bufs[base + i + 1] == '\n') {
		return i + 2;
	}
	while (conn_bufs[base + i] != '\n' && conn_bufs[base + i] != '\0') { i++; }
	return i + 1;
}

/* Build and send the response: status line, headers, and the document body
   for successful requests. X-Echo carries the received body byte count. */
int respond(int fd, int status, int nbytes) {
	char resp[192];
	char num[24];
	int blen = 0;
	if (status == 200) {
		str_cpy(resp, "HTTP/1.1 200 OK\r\nContent-Length: ");
		blen = doc_len;
	} else {
		str_cpy(resp, "HTTP/1.1 400 Bad Request\r\nContent-Length: ");
	}
	int_to_str(num, blen);
	str_cat(resp, num);
	str_cat(resp, "\r\nX-Echo: ");
	int_to_str(num, nbytes);
	str_cat(resp, num);
	str_cat(resp, "\r\n\r\n");
	int len = str_len(resp);
	write(fd, resp, len);
	if (blen > 0) {
		char body[300];
		mem_cpy(body, doc, blen);
		int cks = sum_bytes(body, blen);
		if (cks < 0) { cks = 0; }
		write(fd, body, blen);
	}
	return len + blen;
}

/* Format one access-log entry (kept in memory; checksummed so the work is
   observable). */
int log_request(int status, int nbytes) {
	char num[24];
	str_cpy(alog, "req ");
	int_to_str(num, stat_requests);
	str_cat(alog, num);
	str_cat(alog, " status ");
	int_to_str(num, status);
	str_cat(alog, num);
	str_cat(alog, " bytes ");
	int_to_str(num, nbytes);
	str_cat(alog, num);
	alog_cks = sum_bytes(alog, str_len(alog));
	return alog_cks;
}

int process_request(int s) {
	int base = s * 512;
	int hend = headers_end(s);
	if (hend < 0) { return 0; } /* incomplete */

	int pos = parse_request_line(s, base);
	int clen = 0;
	int ok = 1;
	if (pos < 0) {
		ok = 0;
	} else {
		while (pos >= 0 && pos < hend) {
			int next = parse_header_line(s, base, pos, &clen);
			if (next < 0) { break; }
			pos = next;
		}
	}

	/* POST body accounting. */
	int body = conn_len[s] - hend;
	if (body < 0) { body = 0; }
	if (body > clen) { body = clen; }
	stat_bodybytes += body;

	stat_requests++;
	if (ok) {
		respond(conn_fds[s], 200, body);
		log_request(200, body);
	} else {
		respond(conn_fds[s], 400, 0);
		log_request(400, 0);
	}
	conn_done[s] = 1;
	return 1;
}

int handle_readable(int fd) {
	int s = slot_of(fd);
	if (s < 0) { return 0; }
	int base = s * 512;
	int room = 511 - conn_len[s];
	if (room <= 0) {
		drop_conn(s);
		return 0;
	}
	char tmp[512];
	int got = read(fd, tmp, room);
	if (got <= 0) {
		/* EOF or error: process whatever we have, then drop. */
		if (conn_len[s] > 0 && !conn_done[s]) { process_request(s); }
		drop_conn(s);
		return 0;
	}
	int i;
	for (i = 0; i < got; i++) {
		conn_bufs[base + conn_len[s] + i] = tmp[i];
	}
	conn_len[s] += got;
	if (!conn_done[s]) {
		if (process_request(s)) {
			drop_conn(s);
		}
	}
	return 1;
}

int main() {
	int i;
	for (i = 0; i < 16; i++) { conn_fds[i] = 0 - 1; }
	/* Build the served document. */
	for (i = 0; i < 256; i++) { doc[i] = 'A' + i % 26; }

	int lfd = listen_socket(8080);
	if (lfd < 0) {
		print_str("userver: cannot listen\n");
		exit(1);
	}
	int ready[32];
	int idle = 0;

	while (1) {
		if (signal_pending()) {
			crash(7); /* the SIGSEGV of the experiment (S5.3) */
		}
		int n = select_ready(ready, 32);
		if (n <= 0) {
			idle++;
			if (idle > 3) { break; }
			continue;
		}
		idle = 0;
		int k;
		for (k = 0; k < n; k++) {
			int fd = ready[k];
			if (fd == lfd) {
				int cfd = accept(lfd);
				if (cfd >= 0) { add_conn(cfd); }
			} else {
				handle_readable(fd);
			}
		}
	}
	print_str("userver: served ");
	print_int(stat_requests);
	print_str(" requests\n");
	return 0;
}
`

// UServerProgram links the uServer against ulib.
func UServerProgram() *lang.Program {
	return mustProgram("userver.mc", UServerSource)
}

// UServerScenarioSpec builds the input space for a uServer workload: one
// stream per scripted connection. Payload capacity follows the experiment's
// request; requests arrive immediately (arrival tick 0) so replay and record
// see the same accept order.
func UServerScenarioSpec(requests []string, payloadCap int, crash bool) (*world.Spec, map[string][]byte) {
	spec := &world.Spec{
		ListenPort:            8080,
		CrashSignalAfterConns: crash,
	}
	user := make(map[string][]byte)
	for i, req := range requests {
		cap := payloadCap
		if cap < len(req) {
			cap = len(req)
		}
		neutral := strings.Repeat("x", len(req))
		spec.Conns = append(spec.Conns, world.ConnSpec(i, neutral, cap, 0))
		user[fmt.Sprintf("conn%d", i)] = []byte(req)
	}
	return spec, user
}

// AnalysisRequests are the developer test requests that seed pre-deployment
// exploration (the paper's engine is driven by test suites; §6 recommends
// manual tests to boost coverage). The request streams remain fully
// symbolic — the seeds only determine the first explored paths.
var AnalysisRequests = []string{
	"GET /index.html HTTP/1.1\r\nHost: test\r\n\r\n",
	"POST /form HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc",
}

// The five §5.3 input scenarios: queries of 5-400 bytes, different methods
// and parameters (Cookies, Content-Length). Scaled to keep replay tractable
// while preserving the experiment's structure.
var UServerExperiments = [][]string{
	// Exp 1: one minimal GET.
	{"GET / HTTP/1.1\r\n\r\n"},
	// Exp 2: GET with query string and Host header.
	{"GET /index.html?user=bob&lang=en HTTP/1.1\r\nHost: a\r\n\r\n"},
	// Exp 3: GET with cookies and percent-escapes.
	{"GET /a%20b?q=1 HTTP/1.1\r\nCookie: sid=abc; theme=dark\r\n\r\n"},
	// Exp 4: POST with Content-Length and body.
	{"POST /submit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"},
	// Exp 5: two connections — HEAD keep-alive plus a GET.
	{
		"HEAD /x HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
		"GET /y?a=b HTTP/1.1\r\nUser-Agent: Mozilla\r\n\r\n",
	},
}
