package apps

import (
	"fmt"

	"pathlog/internal/core"
)

// Scenario constructors bridging the raw sources to core.Scenario values the
// harness and the examples consume.

// CoreutilScenario returns the §5.2 crash scenario for one coreutil by name
// (mkdir, mknod, mkfifo, paste). maxArgLen scales the argument streams; the
// paper uses 100-byte arguments, tests usually pass something smaller.
func CoreutilScenario(name string, maxArgLen int) (*core.Scenario, error) {
	for _, cu := range Coreutils(maxArgLen) {
		if cu.Name == name {
			return &core.Scenario{
				Name:      cu.Name,
				Prog:      cu.Prog,
				Spec:      cu.Spec,
				UserBytes: cu.UserArg,
			}, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown coreutil %q", name)
}

// CoreutilNames lists the four §5.2 programs.
func CoreutilNames() []string { return []string{"mkdir", "mknod", "mkfifo", "paste"} }

// UServerScenario returns uServer experiment exp (1-based, §5.3) with the
// scripted HTTP requests as symbolic connection streams and the crash signal
// armed. payloadCap bounds each request stream.
func UServerScenario(exp int, payloadCap int) (*core.Scenario, error) {
	if exp < 1 || exp > len(UServerExperiments) {
		return nil, fmt.Errorf("apps: uServer experiment %d out of range", exp)
	}
	spec, user := UServerScenarioSpec(UServerExperiments[exp-1], payloadCap, true)
	return &core.Scenario{
		Name:      fmt.Sprintf("userver-exp%d", exp),
		Prog:      UServerProgram(),
		Spec:      spec,
		UserBytes: user,
	}, nil
}

// UServerLoadScenario returns a non-crashing uServer workload with nReqs
// identical requests, used for overhead measurements (Figure 4) and branch
// statistics (Figure 3).
func UServerLoadScenario(nReqs int, req string) *core.Scenario {
	reqs := make([]string, nReqs)
	for i := range reqs {
		reqs[i] = req
	}
	spec, user := UServerScenarioSpec(reqs, len(req)+16, false)
	return &core.Scenario{
		Name:      fmt.Sprintf("userver-load%d", nReqs),
		Prog:      UServerProgram(),
		Spec:      spec,
		UserBytes: user,
	}
}

// DefaultHTTPRequest is the canonical request used by load workloads.
const DefaultHTTPRequest = "GET /index.html HTTP/1.1\r\nHost: localhost\r\n\r\n"

// UServerAnalysisScenario returns the pre-deployment exploration scenario:
// connection streams seeded with the developer test requests, so the first
// concolic runs already walk the parser's happy paths (the paper's
// test-suite-driven exploration).
func UServerAnalysisScenario() *core.Scenario {
	spec, user := UServerScenarioSpec(AnalysisRequests, 72, false)
	for i := range spec.Conns {
		if b, ok := user[fmt.Sprintf("conn%d", i)]; ok {
			spec.Conns[i].Stream.Seed = b
		}
	}
	return &core.Scenario{Name: "userver-analysis", Prog: UServerProgram(), Spec: spec}
}

// DiffExperimentScenario returns diff experiment exp (1-based, §5.4).
func DiffExperimentScenario(exp int) (*core.Scenario, error) {
	if exp < 1 || exp > len(DiffExperiments) {
		return nil, fmt.Errorf("apps: diff experiment %d out of range", exp)
	}
	pair := DiffExperiments[exp-1]
	spec, user := DiffScenario(pair[0], pair[1], 32)
	return &core.Scenario{
		Name:      fmt.Sprintf("diff-exp%d", exp),
		Prog:      DiffProgram(),
		Spec:      spec,
		UserBytes: user,
	}, nil
}

// MicroLoopScenario returns the counting-loop microbenchmark scenario.
func MicroLoopScenario(iterations int64) *core.Scenario {
	spec, user := MicroLoopSpec(iterations)
	return &core.Scenario{
		Name:      "micro-loop",
		Prog:      MicroLoopProgram(),
		Spec:      spec,
		UserBytes: user,
	}
}

// MicroFibScenario returns the Listing-1 scenario with the given option
// byte ('a' or 'b' select a Fibonacci computation).
func MicroFibScenario(option byte) *core.Scenario {
	spec, user := MicroFibSpec(option)
	return &core.Scenario{
		Name:      "micro-fib",
		Prog:      MicroFibProgram(),
		Spec:      spec,
		UserBytes: user,
	}
}

// AnalysisSpec widens a scenario's input space for pre-deployment analysis:
// the developer explores with generic inputs (the paper's "up to 10
// arguments, each 100 bytes"), not with the user's future input. The
// returned scenario shares the program but uses neutral streams only.
func AnalysisSpec(s *core.Scenario) *core.Scenario {
	return &core.Scenario{
		Name: s.Name + "-analysis",
		Prog: s.Prog,
		Spec: s.Spec,
	}
}

// ScenarioNames lists every named scenario the tools can address.
func ScenarioNames() []string {
	names := append([]string{}, CoreutilNames()...)
	for i := 1; i <= len(UServerExperiments); i++ {
		names = append(names, fmt.Sprintf("userver-exp%d", i))
	}
	for i := 1; i <= len(DiffExperiments); i++ {
		names = append(names, fmt.Sprintf("diff-exp%d", i))
	}
	return append(names, "micro-fib")
}

// ScenarioByName resolves a named scenario for the command-line tools.
func ScenarioByName(name string) (*core.Scenario, error) {
	for _, cu := range CoreutilNames() {
		if name == cu {
			return CoreutilScenario(name, 16)
		}
	}
	for i := 1; i <= len(UServerExperiments); i++ {
		if name == fmt.Sprintf("userver-exp%d", i) {
			return UServerScenario(i, 72)
		}
	}
	for i := 1; i <= len(DiffExperiments); i++ {
		if name == fmt.Sprintf("diff-exp%d", i) {
			return DiffExperimentScenario(i)
		}
	}
	if name == "micro-fib" {
		s := MicroFibScenario('c')
		return s, nil
	}
	return nil, fmt.Errorf("apps: unknown scenario %q (known: %v)", name, ScenarioNames())
}

// AnalysisScenarioFor returns the pre-deployment analysis scenario matched
// to a named scenario: uServer experiments share the test-suite-seeded
// exploration; everything else explores its own neutral input space.
func AnalysisScenarioFor(name string, s *core.Scenario) *core.Scenario {
	if len(name) >= 7 && name[:7] == "userver" {
		return UServerAnalysisScenario()
	}
	return AnalysisSpec(s)
}
