package apps

import (
	"fmt"

	"pathlog/internal/lang"
	"pathlog/internal/world"
)

// MicroLoopSource is the first §5.1 microbenchmark: a loop that increments a
// counter N times. Its loop condition is a single branch location executed
// once per iteration, so the all-branches configuration pays one logged bit
// per iteration — the per-branch instrumentation cost measured in isolation.
// N is a compile-time constant in the paper (10^9); here it arrives as a
// (concrete) argument so benchmarks can scale it.
const MicroLoopSource = `
int main() {
	char nbuf[16];
	getarg(0, nbuf, 16);
	int n = parse_int(nbuf);
	if (n < 0) { n = 0; }
	int counter = 0;
	int i;
	for (i = 0; i < n; i++) {
		counter++;
	}
	print_int(counter);
	return 0;
}
`

// MicroFibSource is Listing 1 of the paper: the program computes a Fibonacci
// number for one of two inputs. Only the two option branches are symbolic;
// all branches inside fibonacci are concrete, so the selective methods log
// exactly two bits per run.
const MicroFibSource = `
int fibonacci(int n) {
	int a = 0;
	int b = 1;
	int i;
	for (i = 0; i < n; i++) {
		int t = a + b;
		a = b;
		b = t;
	}
	return a;
}

int main() {
	char opt[8];
	getarg(0, opt, 8);
	int result = 0;
	if (opt[0] == 'a') {
		result = fibonacci(20);
	} else if (opt[0] == 'b') {
		result = fibonacci(40);
	}
	print_str("Result: ");
	print_int(result);
	print_char('\n');
	return 0;
}
`

// MicroLoopProgram links the counting-loop microbenchmark.
func MicroLoopProgram() *lang.Program {
	return mustProgram("microloop.mc", MicroLoopSource)
}

// MicroFibProgram links the Listing-1 microbenchmark.
func MicroFibProgram() *lang.Program {
	return mustProgram("microfib.mc", MicroFibSource)
}

// MicroLoopSpec builds the input space for the counting loop with the given
// iteration count.
func MicroLoopSpec(iterations int64) (*world.Spec, map[string][]byte) {
	n := fmt.Sprintf("%d", iterations)
	spec := &world.Spec{Args: []world.Stream{world.ArgSpec(0, n, len(n)+1)}}
	return spec, map[string][]byte{"arg0": []byte(n)}
}

// MicroFibSpec builds the input space for Listing 1 with the given option.
func MicroFibSpec(option byte) (*world.Spec, map[string][]byte) {
	spec := &world.Spec{Args: []world.Stream{world.ArgSpec(0, "x", 2)}}
	return spec, map[string][]byte{"arg0": {option}}
}
