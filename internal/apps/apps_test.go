package apps

import (
	"strings"
	"testing"
	"time"

	"pathlog/internal/concolic"
	"pathlog/internal/core"
	"pathlog/internal/instrument"
	"pathlog/internal/oskernel"
	"pathlog/internal/replay"
	"pathlog/internal/static"
	"pathlog/internal/vm"
	"pathlog/internal/world"
)

// runConcrete executes a scenario's user run without instrumentation.
func runConcrete(t *testing.T, s *core.Scenario) vm.Result {
	t.Helper()
	spec, err := s.UserSpec()
	if err != nil {
		t.Fatal(err)
	}
	w := world.NewWorld(spec, world.NewRegistry(), nil)
	w.Symbolic = false
	cfg := w.KernelConfig()
	cfg.Mode = oskernel.ModeRecord
	res, err := vm.New(s.Prog, vm.Options{Kernel: oskernel.New(cfg)}).Run()
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	return res
}

// runWithArgs executes a coreutil with specific arguments and files.
func runWithArgs(t *testing.T, name string, args []string, files map[string][]byte) vm.Result {
	t.Helper()
	s, err := CoreutilScenario(name, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := oskernel.Config{Files: files}
	for _, a := range args {
		cfg.Args = append(cfg.Args, []byte(a))
	}
	if files == nil {
		// Reuse the scenario's declared files (paste needs its input file).
		spec, err := s.UserSpec()
		if err != nil {
			t.Fatal(err)
		}
		w := world.NewWorld(spec, world.NewRegistry(), nil)
		kcfg := w.KernelConfig()
		cfg.Files = kcfg.Files
	}
	res, err := vm.New(s.Prog, vm.Options{Kernel: oskernel.New(cfg)}).Run()
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	return res
}

func TestCoreutilsHealthyRuns(t *testing.T) {
	cases := []struct {
		name   string
		args   []string
		stdout string
	}{
		{"mkdir", []string{"-v", "mydir"}, "created directory mydir"},
		{"mkdir", []string{"-m", "755", "d"}, "493"},
		{"mknod", []string{"pipe1", "p"}, "created fifo pipe1"},
		{"mknod", []string{"dev0", "b", "8", "1"}, "created device dev0"},
		{"mkfifo", []string{"f1", "f2"}, "created fifo f2"},
		{"mkfifo", []string{"-m", "644", "f"}, "420"},
		{"paste", []string{"data.txt"}, "a\tb\tc"},
		{"paste", []string{"-s", "data.txt"}, "a\nb\nc"},
		{"paste", []string{"-d", ",", "data.txt"}, "a,b,c"},
		{"paste", []string{"-d:", "data.txt"}, "a:b:c"},
	}
	for _, tc := range cases {
		res := runWithArgs(t, tc.name, tc.args, nil)
		if res.Crashed {
			t.Errorf("%s %v: crashed: %s", tc.name, tc.args, res.Crash.Site())
			continue
		}
		if !strings.Contains(string(res.Stdout), tc.stdout) {
			t.Errorf("%s %v: stdout %q missing %q", tc.name, tc.args, res.Stdout, tc.stdout)
		}
	}
}

func TestCoreutilsUsageErrors(t *testing.T) {
	cases := [][2]string{
		{"mkdir", "-Q"},
		{"mkfifo", "-Q"},
		{"paste", "-Q"},
	}
	for _, tc := range cases {
		res := runWithArgs(t, tc[0], []string{tc[1]}, nil)
		if res.Crashed {
			t.Errorf("%s %s: crashed instead of usage error", tc[0], tc[1])
		}
		if res.Exit != 1 {
			t.Errorf("%s %s: exit %d", tc[0], tc[1], res.Exit)
		}
	}
}

func TestCoreutilBugsTrigger(t *testing.T) {
	wantKinds := map[string]vm.CrashKind{
		"mkdir":  vm.CrashOOB,
		"mknod":  vm.CrashOOB,
		"mkfifo": vm.CrashOOB,
		"paste":  vm.CrashDivZero,
	}
	for _, name := range CoreutilNames() {
		s, err := CoreutilScenario(name, 16)
		if err != nil {
			t.Fatal(err)
		}
		res := runConcrete(t, s)
		if !res.Crashed {
			t.Errorf("%s: user input did not crash", name)
			continue
		}
		if res.Crash.Kind != wantKinds[name] {
			t.Errorf("%s: crash kind %v, want %v", name, res.Crash.Kind, wantKinds[name])
		}
	}
}

func TestMkdirCrashInLibrary(t *testing.T) {
	// The mkdir overflow happens inside ulib's str_cpy, like the original
	// report crashing inside libc.
	s, err := CoreutilScenario("mkdir", 16)
	if err != nil {
		t.Fatal(err)
	}
	res := runConcrete(t, s)
	if !res.Crashed || res.Crash.Pos.Unit != "ulib.mc" {
		t.Fatalf("crash: %+v", res.Crash)
	}
}

func TestUServerServesRequests(t *testing.T) {
	s := UServerLoadScenario(3, DefaultHTTPRequest)
	res := runConcrete(t, s)
	if res.Crashed {
		t.Fatalf("crashed: %s", res.Crash.Site())
	}
	if !strings.Contains(string(res.Stdout), "served 3 requests") {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}

func TestUServerResponses(t *testing.T) {
	reqs := []string{
		"GET / HTTP/1.1\r\n\r\n",
		"POST /s HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd",
		"BOGUS / HTTP/1.1\r\n\r\n",
	}
	spec, user := UServerScenarioSpec(reqs, 80, false)
	s := &core.Scenario{Name: "t", Prog: UServerProgram(), Spec: spec, UserBytes: user}
	userSpec, err := s.UserSpec()
	if err != nil {
		t.Fatal(err)
	}
	w := world.NewWorld(userSpec, world.NewRegistry(), nil)
	w.Symbolic = false
	cfg := w.KernelConfig()
	cfg.Mode = oskernel.ModeRecord
	kern := oskernel.New(cfg)
	if _, err := vm.New(s.Prog, vm.Options{Kernel: kern}).Run(); err != nil {
		t.Fatal(err)
	}
	if got := string(kern.ConnWrites(0)); !strings.Contains(got, "200 OK") {
		t.Errorf("conn0 response: %q", got)
	}
	if got := string(kern.ConnWrites(1)); !strings.Contains(got, "200 OK") ||
		!strings.Contains(got, "X-Echo: 4") {
		t.Errorf("conn1 response: %q", got)
	}
	if got := string(kern.ConnWrites(2)); !strings.Contains(got, "400 Bad Request") {
		t.Errorf("conn2 response: %q", got)
	}
}

func TestUServerCrashScenario(t *testing.T) {
	for exp := 1; exp <= len(UServerExperiments); exp++ {
		s, err := UServerScenario(exp, 80)
		if err != nil {
			t.Fatal(err)
		}
		res := runConcrete(t, s)
		if !res.Crashed || res.Crash.Kind != vm.CrashExplicit || res.Crash.Code != 7 {
			t.Errorf("exp %d: crash %+v", exp, res.Crash)
		}
	}
}

func TestUServerBranchMix(t *testing.T) {
	// Figure 3's qualitative claim: roughly 10% of branch executions are
	// symbolic, and the library executes the majority of all branches.
	s := UServerLoadScenario(5, DefaultHTTPRequest)
	rep := s.AnalyzeDynamic(concolic.Options{MaxRuns: 1})
	if rep.BranchExecs == 0 {
		t.Fatal("no branches executed")
	}
	frac := float64(rep.SymbolicExecs) / float64(rep.BranchExecs)
	if frac <= 0.01 || frac >= 0.6 {
		t.Errorf("symbolic fraction %.3f outside plausible band", frac)
	}
}

func TestDiffOutputs(t *testing.T) {
	for exp := 1; exp <= len(DiffExperiments); exp++ {
		s, err := DiffExperimentScenario(exp)
		if err != nil {
			t.Fatal(err)
		}
		res := runConcrete(t, s)
		if !res.Crashed || res.Crash.Kind != vm.CrashExplicit || res.Crash.Code != 9 {
			t.Fatalf("exp %d: want the end-of-run crash, got %+v", exp, res.Crash)
		}
		out := string(res.Stdout)
		if !strings.Contains(out, "deleted") || !strings.Contains(out, "added") {
			t.Errorf("exp %d: output %q", exp, out)
		}
	}
}

func TestDiffIdenticalFiles(t *testing.T) {
	spec, user := DiffScenario("same\nlines\n", "same\nlines\n", 24)
	s := &core.Scenario{Name: "t", Prog: DiffProgram(), Spec: spec, UserBytes: user}
	res := runConcrete(t, s)
	if !strings.Contains(string(res.Stdout), "files are identical") {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}

func TestDiffEditScript(t *testing.T) {
	spec, user := DiffScenario("a\nb\nc\n", "a\nX\nc\n", 16)
	s := &core.Scenario{Name: "t", Prog: DiffProgram(), Spec: spec, UserBytes: user}
	res := runConcrete(t, s)
	out := string(res.Stdout)
	if !strings.Contains(out, "< b") || !strings.Contains(out, "> X") {
		t.Fatalf("edit script: %q", out)
	}
	if !strings.Contains(out, "1 deleted, 1 added, 2 common") {
		t.Fatalf("summary: %q", out)
	}
}

func TestMicroLoopCounts(t *testing.T) {
	s := MicroLoopScenario(1000)
	res := runConcrete(t, s)
	if string(res.Stdout) != "1000" {
		t.Fatalf("stdout: %q", res.Stdout)
	}
}

func TestMicroFibResults(t *testing.T) {
	// Iterative fibonacci: F(20)=6765, F(40)=102334155.
	for _, tc := range []struct {
		opt  byte
		want string
	}{
		{'a', "Result: 6765"},
		{'b', "Result: 102334155"},
		{'x', "Result: 0"},
	} {
		s := MicroFibScenario(tc.opt)
		res := runConcrete(t, s)
		if !strings.Contains(string(res.Stdout), tc.want) {
			t.Errorf("opt %c: %q", tc.opt, res.Stdout)
		}
	}
}

func TestMicroFibSelectiveInstrumentation(t *testing.T) {
	// §5.1: every configuration except all-branches instruments only the two
	// option branches of Listing 1.
	s := MicroFibScenario('a')
	an := AnalysisSpec(s)
	in := instrument.Inputs{
		Dynamic: an.AnalyzeDynamic(concolic.Options{MaxRuns: 40}),
		Static:  an.AnalyzeStatic(static.Options{}),
	}
	for _, m := range []instrument.Method{
		instrument.MethodDynamic, instrument.MethodStatic, instrument.MethodDynamicStatic,
	} {
		plan := s.Plan(m, in, false)
		if got := plan.NumInstrumented(); got != 2 {
			t.Errorf("%v: instruments %d branches, want 2 (ids %v)", m, got, plan.IDs())
		}
	}
	all := s.Plan(instrument.MethodAll, in, false)
	if got := all.NumInstrumented(); got != len(s.Prog.Branches) {
		t.Errorf("all: %d", got)
	}
}

func TestCoreutilEndToEndReplay(t *testing.T) {
	// Table 1: the four coreutils bugs reproduce quickly under every method.
	for _, name := range CoreutilNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			s, err := CoreutilScenario(name, 12)
			if err != nil {
				t.Fatal(err)
			}
			an := AnalysisSpec(s)
			// Coreutils are small: the explorer reaches high coverage fast
			// (the paper's Table 1 precondition), so give it enough runs.
			in := instrument.Inputs{
				Dynamic: an.AnalyzeDynamic(concolic.Options{MaxRuns: 1000}),
				Static:  an.AnalyzeStatic(static.Options{}),
			}
			for _, m := range instrument.Methods {
				plan := s.Plan(m, in, true)
				rec, _, err := s.Record(plan)
				if err != nil {
					t.Fatalf("%v: %v", m, err)
				}
				if rec == nil {
					t.Fatalf("%v: no crash recorded", m)
				}
				res := s.Replay(rec, replay.Options{
					MaxRuns:    4000,
					TimeBudget: 60 * time.Second,
				})
				if !res.Reproduced {
					t.Fatalf("%v: not reproduced after %d runs (timeout=%v)",
						m, res.Runs, res.TimedOut)
				}
				if !s.VerifyInput(res.InputBytes, rec.Crash) {
					t.Fatalf("%v: input does not verify", m)
				}
			}
		})
	}
}
