// Package apps holds the MiniC sources of every benchmark program the paper
// evaluates — a small libc, four coreutils with planted crash bugs, the
// uServer web server, the diff utility and two microbenchmarks — plus the
// scenario definitions (input spaces, user inputs, workloads) that the
// experiment harness runs them under.
package apps

import (
	"pathlog/internal/lang"
)

// ULibSource is the MiniC standard library ("ulib"), the reproduction's
// uClibc stand-in (§4: "for all experiments we link the programs with the
// uClibc library"). It is tagged RegionLib so Figure 3's app/library split
// and §5.3's treat-library-as-symbolic mode work against it.
const ULibSource = `
/* ulib: MiniC standard library (uClibc stand-in). */

int str_len(char *s) {
	int n = 0;
	while (s[n] != '\0') { n++; }
	return n;
}

int str_cmp(char *a, char *b) {
	int i = 0;
	while (a[i] != '\0' && b[i] != '\0') {
		if (a[i] != b[i]) {
			if (a[i] < b[i]) { return 0 - 1; }
			return 1;
		}
		i++;
	}
	if (a[i] == b[i]) { return 0; }
	if (a[i] == '\0') { return 0 - 1; }
	return 1;
}

int str_eq(char *a, char *b) {
	if (str_cmp(a, b) == 0) { return 1; }
	return 0;
}

int str_ncmp(char *a, char *b, int n) {
	int i = 0;
	while (i < n) {
		if (a[i] != b[i]) {
			if (a[i] < b[i]) { return 0 - 1; }
			return 1;
		}
		if (a[i] == '\0') { return 0; }
		i++;
	}
	return 0;
}

int str_cpy(char *dst, char *src) {
	int i = 0;
	while (src[i] != '\0') {
		dst[i] = src[i];
		i++;
	}
	dst[i] = '\0';
	return i;
}

int str_ncpy(char *dst, char *src, int n) {
	int i = 0;
	while (i < n && src[i] != '\0') {
		dst[i] = src[i];
		i++;
	}
	dst[i] = '\0';
	return i;
}

int str_cat(char *dst, char *src) {
	int n = str_len(dst);
	int i = 0;
	while (src[i] != '\0') {
		dst[n + i] = src[i];
		i++;
	}
	dst[n + i] = '\0';
	return n + i;
}

int str_chr(char *s, int c) {
	int i = 0;
	while (s[i] != '\0') {
		if (s[i] == c) { return i; }
		i++;
	}
	return 0 - 1;
}

int str_str(char *hay, char *needle) {
	int i = 0;
	if (needle[0] == '\0') { return 0; }
	while (hay[i] != '\0') {
		int j = 0;
		while (needle[j] != '\0' && hay[i + j] != '\0' && hay[i + j] == needle[j]) {
			j++;
		}
		if (needle[j] == '\0') { return i; }
		i++;
	}
	return 0 - 1;
}

int mem_set(char *p, int v, int n) {
	int i;
	for (i = 0; i < n; i++) { p[i] = v; }
	return n;
}

int mem_cpy(char *dst, char *src, int n) {
	int i;
	for (i = 0; i < n; i++) { dst[i] = src[i]; }
	return n;
}

int is_digit(int c) {
	if (c >= '0' && c <= '9') { return 1; }
	return 0;
}

int is_alpha(int c) {
	if (c >= 'a' && c <= 'z') { return 1; }
	if (c >= 'A' && c <= 'Z') { return 1; }
	return 0;
}

int is_space(int c) {
	if (c == ' ' || c == '\t' || c == '\r' || c == '\n') { return 1; }
	return 0;
}

int is_upper(int c) {
	if (c >= 'A' && c <= 'Z') { return 1; }
	return 0;
}

int to_lower(int c) {
	if (is_upper(c)) { return c + 32; }
	return c;
}

int to_upper(int c) {
	if (c >= 'a' && c <= 'z') { return c - 32; }
	return c;
}

/* Case-insensitive string compare, as HTTP header names need. */
int str_casecmp(char *a, char *b) {
	int i = 0;
	while (a[i] != '\0' && b[i] != '\0') {
		int ca = to_lower(a[i]);
		int cb = to_lower(b[i]);
		if (ca != cb) {
			if (ca < cb) { return 0 - 1; }
			return 1;
		}
		i++;
	}
	if (a[i] == b[i]) { return 0; }
	if (a[i] == '\0') { return 0 - 1; }
	return 1;
}

/* Parse a non-negative decimal integer; returns -1 on malformed input. */
int parse_int(char *s) {
	int i = 0;
	int v = 0;
	if (s[0] == '\0') { return 0 - 1; }
	while (s[i] != '\0') {
		if (!is_digit(s[i])) { return 0 - 1; }
		v = v * 10 + (s[i] - '0');
		i++;
	}
	return v;
}

/* Parse a non-negative decimal prefix of at most n bytes. */
int parse_int_n(char *s, int n) {
	int i = 0;
	int v = 0;
	int any = 0;
	while (i < n && is_digit(s[i])) {
		v = v * 10 + (s[i] - '0');
		any = 1;
		i++;
	}
	if (!any) { return 0 - 1; }
	return v;
}

/* Parse an octal mode string like "755"; -1 on malformed input. */
int parse_octal(char *s) {
	int i = 0;
	int v = 0;
	if (s[0] == '\0') { return 0 - 1; }
	while (s[i] != '\0') {
		if (s[i] < '0' || s[i] > '7') { return 0 - 1; }
		v = v * 8 + (s[i] - '0');
		i++;
	}
	return v;
}

/* Render v in decimal into dst; returns the length. */
int int_to_str(char *dst, int v) {
	int i = 0;
	int n = 0;
	char tmp[24];
	if (v < 0) {
		dst[i] = '-';
		i++;
		v = 0 - v;
	}
	if (v == 0) {
		dst[i] = '0';
		dst[i + 1] = '\0';
		return i + 1;
	}
	while (v > 0) {
		tmp[n] = '0' + v % 10;
		v /= 10;
		n++;
	}
	while (n > 0) {
		n--;
		dst[i] = tmp[n];
		i++;
	}
	dst[i] = '\0';
	return i;
}

int str_starts_with(char *s, char *prefix) {
	int i = 0;
	while (prefix[i] != '\0') {
		if (s[i] != prefix[i]) { return 0; }
		i++;
	}
	return 1;
}

/* Trim leading spaces in place by returning the first non-space index. */
int skip_spaces_at(char *s, int i) {
	while (s[i] == ' ' || s[i] == '\t') { i++; }
	return i;
}

/* Sum bytes modulo 2^16, as checksums over buffers do. */
int sum_bytes(char *p, int n) {
	int s = 0;
	int i;
	for (i = 0; i < n; i++) {
		s = (s + p[i]) % 65536;
	}
	return s;
}
`

// ULibUnit parses the library unit.
func ULibUnit() *lang.Unit {
	return lang.MustParse("ulib.mc", lang.RegionLib, ULibSource)
}

// mustProgram links an app unit against ulib, panicking on error (these are
// embedded known-good sources; failures are programming errors here).
func mustProgram(appName, appSrc string) *lang.Program {
	app := lang.MustParse(appName, lang.RegionApp, appSrc)
	return lang.MustLink([]*lang.Unit{app, ULibUnit()})
}

// mustStandalone links a unit with no library (microbenchmarks).
func mustStandalone(appName, appSrc string) *lang.Program {
	app := lang.MustParse(appName, lang.RegionApp, appSrc)
	return lang.MustLink([]*lang.Unit{app})
}
