package instrument

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"

	"pathlog/internal/lang"
)

// ErrPlanCorrupt marks a plan file whose content is damaged: truncated or
// invalid JSON, a malformed branch set, a negative generation, or a
// fingerprint that does not hash from the content. Store scans test for it
// with errors.Is to skip (and report) damaged entries instead of failing
// the whole scan; every other LoadPlan failure (missing file, unsupported
// version) is a different condition and is not wrapped.
var ErrPlanCorrupt = errors.New("plan file corrupt")

// Plans serialize to a small JSON envelope so a decided plan can be
// shipped to user sites and retained at the developer site: the strategy
// provenance, the program hash, the sorted branch-ID set, the syscall
// flag, the cost estimate, and a self-describing fingerprint verified on
// load (a hand-edited or corrupted plan file fails loudly instead of
// silently instrumenting the wrong branches).

type planJSON struct {
	Version      int          `json:"version"`
	Strategy     string       `json:"strategy,omitempty"`
	Method       string       `json:"method"`
	MethodID     int          `json:"method_id"`
	ProgHash     string       `json:"prog_hash,omitempty"`
	Instrumented []int        `json:"instrumented_branches"`
	LogSyscalls  bool         `json:"log_syscalls"`
	Cost         CostEstimate `json:"cost"`
	// Refinement lineage (omitted for generation-0 plans, so pre-lineage
	// envelopes and their golden files are byte-identical).
	Generation  int    `json:"generation,omitempty"`
	Parent      string `json:"parent,omitempty"`
	Fingerprint string `json:"fingerprint"`
}

// planVersion is the current plan envelope version.
const planVersion = 1

// Save writes the plan to path.
func (p *Plan) Save(path string) error {
	data, err := p.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// Encode renders the plan as envelope bytes — exactly what Save writes to
// disk. An intake service serves these bytes over HTTP so user sites can
// self-update to the current chain head; LoadPlan-equivalent verification
// happens on the receiving side, because the fingerprint travels inside.
func (p *Plan) Encode() ([]byte, error) {
	enc := planJSON{
		Version:     planVersion,
		Strategy:    p.Strategy,
		Method:      p.Method.String(),
		MethodID:    int(p.Method),
		ProgHash:    p.ProgHash,
		LogSyscalls: p.LogSyscalls,
		Cost:        p.Cost,
		Generation:  p.Generation,
		Parent:      p.Parent,
		Fingerprint: p.Fingerprint(),
	}
	enc.Instrumented = make([]int, 0, len(p.Instrumented))
	for _, id := range p.IDs() {
		enc.Instrumented = append(enc.Instrumented, int(id))
	}
	data, err := json.MarshalIndent(enc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("instrument: encode plan: %w", err)
	}
	return data, nil
}

// DecodeBranchSet validates and converts a serialized branch-ID list, as
// found in plan and recording envelopes: negative, duplicate or unsorted
// IDs are corruption, not data.
func DecodeBranchSet(ids []int) (map[lang.BranchID]bool, error) {
	if !sort.IntsAreSorted(ids) {
		return nil, fmt.Errorf("branch IDs not sorted")
	}
	set := make(map[lang.BranchID]bool, len(ids))
	for i, id := range ids {
		if id < 0 {
			return nil, fmt.Errorf("negative branch ID %d", id)
		}
		if i > 0 && ids[i-1] == id {
			return nil, fmt.Errorf("duplicate branch ID %d", id)
		}
		set[lang.BranchID(id)] = true
	}
	return set, nil
}

// LoadPlan reads a plan saved by Save, verifying its fingerprint. A
// damaged file — truncated or otherwise unparseable JSON, a malformed
// branch set, a fingerprint that does not match the content — returns an
// error wrapping ErrPlanCorrupt, so a caller scanning many plan files can
// identify (and skip past) corruption without string-matching.
func LoadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodePlan(data, path)
}

// DecodePlan decodes plan envelope bytes (what Encode renders), verifying
// the embedded fingerprint the same way LoadPlan does. It is the wire-side
// entry point for sites fetching the chain head over HTTP.
func DecodePlan(data []byte) (*Plan, error) {
	return decodePlan(data, "envelope")
}

func decodePlan(data []byte, label string) (*Plan, error) {
	path := label
	var enc planJSON
	if err := json.Unmarshal(data, &enc); err != nil {
		return nil, fmt.Errorf("instrument: decode plan %s: %w: %w", path, ErrPlanCorrupt, err)
	}
	if enc.Version != planVersion {
		return nil, fmt.Errorf("instrument: unsupported plan version %d in %s", enc.Version, path)
	}
	set, err := DecodeBranchSet(enc.Instrumented)
	if err != nil {
		return nil, fmt.Errorf("instrument: decode plan %s: %w: %w", path, ErrPlanCorrupt, err)
	}
	p := &Plan{
		Method:       Method(enc.MethodID),
		Strategy:     enc.Strategy,
		Instrumented: set,
		LogSyscalls:  enc.LogSyscalls,
		ProgHash:     enc.ProgHash,
		Cost:         enc.Cost,
		Generation:   enc.Generation,
		Parent:       enc.Parent,
	}
	if enc.Generation < 0 {
		return nil, fmt.Errorf("instrument: decode plan %s: %w: negative generation %d", path, ErrPlanCorrupt, enc.Generation)
	}
	if enc.Fingerprint != "" && p.Fingerprint() != enc.Fingerprint {
		return nil, fmt.Errorf("instrument: decode plan %s: %w: file says fingerprint %s, content hashes to %s (plan file corrupted or edited)",
			path, ErrPlanCorrupt, enc.Fingerprint, p.Fingerprint())
	}
	return p, nil
}
