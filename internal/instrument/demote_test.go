package instrument

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"pathlog/internal/lang"
)

// demoProfile builds a profile with demotion evidence on top of the
// refinement fixture: b0 (instrumented by the dynamic plan) consumed bits
// that never disagreed — the demotable shape — while b1/b4/b3 carry the
// blowup charges of fakeProfile.
func demoProfile(plan *Plan) *SearchProfile {
	p := fakeProfile(plan)
	p.Branches[0] = &BranchCost{LoggedExecs: 40}
	return p
}

func TestDemotable(t *testing.T) {
	instrumented := map[lang.BranchID]bool{0: true, 2: true, 5: true, 7: true}
	p := &SearchProfile{Branches: map[lang.BranchID]*BranchCost{
		0: {LoggedExecs: 10},                  // instrumented, agreed always: demotable
		2: {LoggedExecs: 8, Disagreements: 1}, // its bits constrained the search: kept
		5: {},                                 // never exercised: silence is not evidence
		7: {LoggedExecs: 3},                   // demotable; sorts after b0
		9: {LoggedExecs: 4, Disagreements: 0}, // not instrumented: nothing to demote
		1: {Forks: 12, AbortedRuns: 3},        // uninstrumented blowup: promotion's business
	}}
	got := p.Demotable(instrumented)
	want := []lang.BranchID{0, 7}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Demotable = %v, want %v", got, want)
	}
}

func TestMergeWeightedScalesRunCostNotEvidence(t *testing.T) {
	src := &SearchProfile{
		PlanFingerprint: "aa11",
		ProgHash:        "bb22",
		Runs:            10,
		Aborts:          8,
		Workers:         1,
		Branches: map[lang.BranchID]*BranchCost{
			1: {Forks: 10, AbortedRuns: 4, WastedRuns: 2, SolverCalls: 6,
				SolverTime: 1000 * time.Nanosecond, LoggedExecs: 5, Disagreements: 2},
		},
	}
	var acc SearchProfile
	if err := acc.MergeWeighted(src, 0.5); err != nil {
		t.Fatal(err)
	}
	bc := acc.Branches[1]
	if bc.Forks != 5 || bc.AbortedRuns != 2 || bc.WastedRuns != 1 || bc.SolverCalls != 3 || bc.SolverTime != 500 {
		t.Errorf("run-cost counters not scaled by 0.5: %+v", bc)
	}
	if bc.LoggedExecs != 5 || bc.Disagreements != 2 {
		t.Errorf("evidence counters must merge unscaled: %+v", bc)
	}
	if acc.Runs != 5 || acc.Aborts != 4 {
		t.Errorf("runs/aborts not scaled: %d/%d", acc.Runs, acc.Aborts)
	}
	// ForkRate stays the weighted rate: 5 forks over 5 runs = the source's
	// 10/10.
	if got := acc.ForkRate(1); got != 1 {
		t.Errorf("weighted fork rate %g, want 1", got)
	}
	// A tiny weight shrinks a charge but never erases it (floor of 1).
	var tiny SearchProfile
	if err := tiny.MergeWeighted(src, 0.001); err != nil {
		t.Fatal(err)
	}
	if tiny.Branches[1].Forks != 1 {
		t.Errorf("nonzero charge scaled to %d, want floor 1", tiny.Branches[1].Forks)
	}
}

func TestMergeWeightedGroupingInvariance(t *testing.T) {
	mk := func(seed int64) *SearchProfile {
		return &SearchProfile{
			PlanFingerprint: "aa11",
			Runs:            int(10 + seed),
			Branches: map[lang.BranchID]*BranchCost{
				lang.BranchID(seed % 3): {Forks: 7 * seed, AbortedRuns: seed, LoggedExecs: seed},
				lang.BranchID(seed % 5): {SolverCalls: seed, Disagreements: 1},
			},
		}
	}
	weights := []float64{1.7, 0.3, 2.2, 0.9}
	var fwd, rev SearchProfile
	for i := 0; i < 4; i++ {
		if err := fwd.MergeWeighted(mk(int64(i+1)), weights[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 3; i >= 0; i-- {
		if err := rev.MergeWeighted(mk(int64(i+1)), weights[i]); err != nil {
			t.Fatal(err)
		}
	}
	if fwd.Runs != rev.Runs || !reflect.DeepEqual(fwd.Branches, rev.Branches) {
		t.Errorf("weighted merge depends on order:\nfwd %+v\nrev %+v", fwd, rev)
	}
}

func TestMergeWeightedRefusals(t *testing.T) {
	src := &SearchProfile{PlanFingerprint: "aa11", Runs: 1}
	var acc SearchProfile
	for _, w := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := acc.MergeWeighted(src, w); err == nil {
			t.Errorf("weight %g accepted", w)
		}
	}
	acc.PlanFingerprint = "ff00"
	if err := acc.MergeWeighted(src, 1); err == nil {
		t.Error("foreign plan fingerprint accepted")
	}
}

func TestRefineAndDemote(t *testing.T) {
	pc := NewPlanContext(fakeProgram(t), fakeInputs(), true)
	base, err := Dynamic().Plan(context.Background(), pc)
	if err != nil {
		t.Fatal(err)
	}
	profile := demoProfile(base)

	strat, err := RefineAndDemote(base, profile, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := strat.Plan(context.Background(), pc)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Instrumented[1] {
		t.Error("top blowup branch b1 not promoted")
	}
	if p.Instrumented[0] {
		t.Error("proven-redundant branch b0 not demoted")
	}
	if p.Generation != 1 || p.Parent != base.Fingerprint() {
		t.Errorf("lineage: generation %d parent %s", p.Generation, p.Parent)
	}
	if !strings.Contains(p.Strategy, "+b1") || !strings.Contains(p.Strategy, "-b0") {
		t.Errorf("strategy name %q does not describe both directions", p.Strategy)
	}

	// Demote-only: same demotion, no promotion, and the name says so.
	dStrat, err := Demote(base, profile)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dStrat.Plan(context.Background(), pc)
	if err != nil {
		t.Fatal(err)
	}
	if d.Instrumented[0] || d.Instrumented[1] {
		t.Errorf("demote-only plan instruments %v", d.IDs())
	}
	if !strings.Contains(d.Strategy, "+none") || !strings.Contains(d.Strategy, "-b0") {
		t.Errorf("demote-only name %q", d.Strategy)
	}

	// Promotion-only names are byte-compatible with the pre-demotion
	// format: no "-" tag appears when nothing is demoted.
	rStrat, err := Refine(base, profile, 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := rStrat.Plan(context.Background(), pc)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(r.Strategy, ",-") {
		t.Errorf("promotion-only name %q grew a demotion tag", r.Strategy)
	}
	if !r.Instrumented[0] {
		t.Error("Refine demoted b0 — promotion-only must keep the base set")
	}

	// A profile with no demotion evidence is a fixed point for Demote.
	noEvidence, err := Demote(base, fakeProfile(base))
	if err != nil {
		t.Fatal(err)
	}
	np, err := noEvidence.Plan(context.Background(), pc)
	if err != nil {
		t.Fatal(err)
	}
	if np.Fingerprint() != base.Fingerprint() {
		t.Errorf("no-evidence demotion moved the plan: %s vs %s", np.Fingerprint(), base.Fingerprint())
	}
}

func TestRefineTopKContract(t *testing.T) {
	// The documented contract everywhere TopK appears: k <= 0 selects
	// DefaultRefineTopK — including negative values.
	pc := NewPlanContext(fakeProgram(t), fakeInputs(), true)
	base, err := Dynamic().Plan(context.Background(), pc)
	if err != nil {
		t.Fatal(err)
	}
	profile := fakeProfile(base)
	def := refinedPlan(t, pc, base, profile, DefaultRefineTopK)
	neg := refinedPlan(t, pc, base, profile, -1)
	if neg.Fingerprint() != def.Fingerprint() {
		t.Errorf("Refine(k=-1) != Refine(k=Default): %s vs %s", neg.Fingerprint(), def.Fingerprint())
	}
	if neg.Fingerprint() == base.Fingerprint() {
		t.Error("Refine(k=-1) promoted nothing")
	}
}

func TestDemotableAt(t *testing.T) {
	instrumented := map[lang.BranchID]bool{0: true, 2: true, 5: true, 7: true}
	p := &SearchProfile{Branches: map[lang.BranchID]*BranchCost{
		0: {LoggedExecs: 10},                    // silent: demotable at any rate
		2: {LoggedExecs: 100, Disagreements: 1}, // rate 0.01: below a 5% threshold
		7: {LoggedExecs: 10, Disagreements: 2},  // rate 0.2: above it
		5: {},                                   // never exercised: silence is not evidence
	}}
	// Rate 0 (and negative) reproduce the strict rule exactly.
	for _, rate := range []float64{0, -1} {
		if got, want := p.DemotableAt(instrumented, rate), p.Demotable(instrumented); !reflect.DeepEqual(got, want) {
			t.Errorf("DemotableAt(%g) = %v, want strict %v", rate, got, want)
		}
	}
	if got, want := p.DemotableAt(instrumented, 0.05), []lang.BranchID{0, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("DemotableAt(0.05) = %v, want %v", got, want)
	}
	if got, want := p.DemotableAt(instrumented, 0.5), []lang.BranchID{0, 2, 7}; !reflect.DeepEqual(got, want) {
		t.Errorf("DemotableAt(0.5) = %v, want %v", got, want)
	}
}

func TestDemoteAtRate(t *testing.T) {
	pc := NewPlanContext(fakeProgram(t), fakeInputs(), true)
	base, err := Dynamic().Plan(context.Background(), pc)
	if err != nil {
		t.Fatal(err)
	}
	profile := fakeProfile(base)
	// b0 disagreed once in 40 consumed bits: kept by the strict rule,
	// dropped under a 5% threshold.
	profile.Branches[0] = &BranchCost{LoggedExecs: 40, Disagreements: 1}

	strict, err := Demote(base, profile)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := strict.Plan(context.Background(), pc)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Fingerprint() != base.Fingerprint() {
		t.Errorf("strict demotion moved the plan despite a disagreement")
	}

	loose, err := DemoteAt(base, profile, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	lp, err := loose.Plan(context.Background(), pc)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Instrumented[0] {
		t.Errorf("DemoteAt(0.05) kept b0 (1 disagreement over 40 execs)")
	}
	if lp.Generation != 1 || lp.Parent != base.Fingerprint() {
		t.Errorf("lineage: generation %d parent %s", lp.Generation, lp.Parent)
	}
}
