package instrument

import (
	"context"
	"strings"
	"testing"
	"time"

	"pathlog/internal/lang"
)

// fakeProfile builds a search profile measured under plan: b1 blamed
// hardest (aborted runs), b4 second (forks only), b3 charged solver work
// only.
func fakeProfile(plan *Plan) *SearchProfile {
	return &SearchProfile{
		PlanFingerprint: plan.Fingerprint(),
		Runs:            20,
		Aborts:          19,
		Reproduced:      true,
		Workers:         1,
		Branches: map[lang.BranchID]*BranchCost{
			1: {Forks: 30, AbortedRuns: 12, SolverCalls: 30, SolverTime: time.Millisecond},
			4: {Forks: 10, SolverCalls: 10},
			3: {SolverCalls: 2},
		},
	}
}

func refinedPlan(t *testing.T, pc *PlanContext, base *Plan, profile *SearchProfile, k int) *Plan {
	t.Helper()
	strat, err := Refine(base, profile, k)
	if err != nil {
		t.Fatal(err)
	}
	p, err := strat.Plan(context.Background(), pc)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRefinePromotesTopBlowup(t *testing.T) {
	pc := NewPlanContext(fakeProgram(t), fakeInputs(), true)
	base, err := Dynamic().Plan(context.Background(), pc)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Instrumented[0] || base.Instrumented[1] {
		t.Fatalf("fixture drifted: dynamic plan %v", base.IDs())
	}
	profile := fakeProfile(base)
	p := refinedPlan(t, pc, base, profile, 1)

	if !p.Instrumented[1] {
		t.Error("top blowup branch b1 not promoted")
	}
	if p.Instrumented[4] {
		t.Error("k=1 promoted more than one branch")
	}
	if !p.Instrumented[0] {
		t.Error("base branch b0 dropped by refinement")
	}
	if p.Generation != 1 || p.Parent != base.Fingerprint() {
		t.Errorf("lineage: generation %d parent %s", p.Generation, p.Parent)
	}
	if p.LogSyscalls != base.LogSyscalls {
		t.Error("refinement changed the syscall-logging flag")
	}
	if !strings.Contains(p.Strategy, "refine(") || !strings.Contains(p.Strategy, "+b1") {
		t.Errorf("strategy name %q does not describe the promotion", p.Strategy)
	}

	// k wider than the blamable set promotes everything promotable and no
	// more: b3 has solver charges only, still promotable; instrumented
	// branches never are.
	wide := refinedPlan(t, pc, base, profile, 10)
	for _, id := range []lang.BranchID{1, 3, 4} {
		if !wide.Instrumented[id] {
			t.Errorf("k=10: b%d not promoted", id)
		}
	}
	if wide.NumInstrumented() != base.NumInstrumented()+3 {
		t.Errorf("k=10 instrumented %d, want base+3", wide.NumInstrumented())
	}
}

func TestRefineRefusesForeignProfile(t *testing.T) {
	pc := NewPlanContext(fakeProgram(t), fakeInputs(), true)
	base, err := Dynamic().Plan(context.Background(), pc)
	if err != nil {
		t.Fatal(err)
	}
	all, err := All().Plan(context.Background(), pc)
	if err != nil {
		t.Fatal(err)
	}
	profile := fakeProfile(all) // measured under a different plan
	if _, err := Refine(base, profile, 2); err == nil ||
		!strings.Contains(err.Error(), "measured under") {
		t.Errorf("foreign profile accepted: %v", err)
	}
	if _, err := Refine(nil, fakeProfile(base), 1); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := Refine(base, nil, 1); err == nil {
		t.Error("nil profile accepted")
	}
}

func TestRefineChainNamesAndLineage(t *testing.T) {
	pc := NewPlanContext(fakeProgram(t), fakeInputs(), true)
	base, err := Dynamic().Plan(context.Background(), pc)
	if err != nil {
		t.Fatal(err)
	}
	gen1 := refinedPlan(t, pc, base, fakeProfile(base), 1)
	prof1 := fakeProfile(gen1)
	delete(prof1.Branches, 1) // b1 is instrumented now; blame the rest
	gen2 := refinedPlan(t, pc, gen1, prof1, 1)

	if gen2.Generation != 2 || gen2.Parent != gen1.Fingerprint() {
		t.Errorf("gen2 lineage: generation %d parent %s", gen2.Generation, gen2.Parent)
	}
	if strings.Count(gen2.Strategy, "refine(") != 1 {
		t.Errorf("nested refinement name not flattened: %q", gen2.Strategy)
	}
	if !strings.Contains(gen2.Strategy, "@") {
		t.Errorf("deep refinement name %q does not reference the parent fingerprint", gen2.Strategy)
	}
	// Lineage is provenance, not identity: a refined plan's fingerprint
	// depends only on program, branch set and syscall flag.
	clone := *gen2
	clone.Generation = 0
	clone.Parent = ""
	if clone.Fingerprint() != gen2.Fingerprint() {
		t.Error("lineage leaked into the fingerprint")
	}
}

func TestRefineFixedPointOnSilentProfile(t *testing.T) {
	pc := NewPlanContext(fakeProgram(t), fakeInputs(), true)
	base, err := Dynamic().Plan(context.Background(), pc)
	if err != nil {
		t.Fatal(err)
	}
	empty := &SearchProfile{PlanFingerprint: base.Fingerprint(), Runs: 3, Branches: nil}
	p := refinedPlan(t, pc, base, empty, 4)
	if p.Fingerprint() != base.Fingerprint() {
		t.Errorf("silent profile changed the branch set: %v vs %v", p.IDs(), base.IDs())
	}
	if p.Generation != 1 {
		t.Errorf("fixed-point plan generation %d, want 1 (callers compare fingerprints)", p.Generation)
	}
}

func TestCalibrateCostsUsesObservedRates(t *testing.T) {
	prog := fakeProgram(t)
	m := NewCostModel(prog, fakeInputs().Dynamic)
	base := BuildPlan(prog, MethodDynamic, fakeInputs(), true)
	profile := fakeProfile(base)

	cal := m.CalibrateCosts(profile)
	// b1 forked 30 times over 20 runs: observed symRate 1.5 replaces the
	// prior, and the branch now counts as visited.
	if got, want := cal.branchReplayCost(1), 1.5; got != want {
		t.Errorf("calibrated replay cost of b1: %g, want %g", got, want)
	}
	// A branch the profile never charged keeps its analysis-time pricing.
	if got, want := cal.branchReplayCost(2), m.branchReplayCost(2); got != want {
		t.Errorf("uncharged branch repriced: %g, want %g", got, want)
	}
	// A zero-fork entry (an instrumented case-2b origin: solver charges,
	// no speculation) must NOT calibrate — the search never observed its
	// fork rate, and repricing it as symRate 0 would mark a
	// proven-symbolic branch concrete.
	if got, want := cal.branchReplayCost(3), m.branchReplayCost(3); got != want {
		t.Errorf("zero-fork entry repriced: %g, want %g", got, want)
	}
	if cal.visited[3] {
		t.Error("zero-fork entry marked visited by calibration")
	}
	// Observed forks floor the exec rate: instrumenting b1 now costs at
	// least its observed per-run executions.
	if got := cal.branchOverhead(1); got < 1.5 {
		t.Errorf("calibrated overhead of b1: %g, want >= 1.5", got)
	}
	// The original model is untouched (calibration returns a copy).
	if m.visited[1] {
		t.Error("calibration mutated the base model")
	}
	// Degenerate profiles are identity.
	if m.CalibrateCosts(nil) != m {
		t.Error("nil profile did not return the base model")
	}
	if m.CalibrateCosts(&SearchProfile{}) != m {
		t.Error("empty profile did not return the base model")
	}
}

func TestTopBlowupDeterministicOrder(t *testing.T) {
	p := &SearchProfile{
		Runs: 10,
		Branches: map[lang.BranchID]*BranchCost{
			7: {AbortedRuns: 5, Forks: 1},
			2: {AbortedRuns: 5, Forks: 9},
			9: {AbortedRuns: 5, Forks: 9}, // ties with b2 on runs+forks: lower ID wins
			1: {Forks: 100},               // many forks, no runs: ranks below any aborted-run branch
		},
	}
	got := p.TopBlowup(4, nil)
	want := []lang.BranchID{2, 9, 7, 1}
	if len(got) != len(want) {
		t.Fatalf("TopBlowup: %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopBlowup order: %v, want %v", got, want)
		}
	}
	if top := p.TopBlowup(2, map[lang.BranchID]bool{2: true}); top[0] != 9 {
		t.Errorf("instrumented branch not excluded: %v", top)
	}
}

func TestSearchProfileMergeAndRoundTrip(t *testing.T) {
	prog := fakeProgram(t)
	base := BuildPlan(prog, MethodDynamic, fakeInputs(), true)
	a := fakeProfile(base)
	b := fakeProfile(base)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Runs != 40 || a.Branches[1].Forks != 60 {
		t.Errorf("merge totals: runs=%d b1.forks=%d", a.Runs, a.Branches[1].Forks)
	}
	other := fakeProfile(BuildPlan(prog, MethodAll, fakeInputs(), true))
	if err := a.Merge(other); err == nil {
		t.Error("merged profiles from different plans")
	}
	// A zero-value accumulator adopts the first source's identity, so a
	// later foreign profile is still refused.
	acc := &SearchProfile{}
	if err := acc.Merge(b); err != nil {
		t.Fatal(err)
	}
	if acc.PlanFingerprint != b.PlanFingerprint {
		t.Errorf("accumulator did not adopt identity: %q", acc.PlanFingerprint)
	}
	if err := acc.Merge(other); err == nil {
		t.Error("accumulator merged a foreign profile after adopting an identity")
	}

	path := t.TempDir() + "/profile.json"
	if err := a.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSearchProfile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Runs != a.Runs || loaded.PlanFingerprint != a.PlanFingerprint {
		t.Errorf("round trip drifted: %+v vs %+v", loaded, a)
	}
	if loaded.Branches[1].AbortedRuns != a.Branches[1].AbortedRuns ||
		loaded.Branches[1].SolverTime != a.Branches[1].SolverTime {
		t.Errorf("branch cost drifted: %+v vs %+v", loaded.Branches[1], a.Branches[1])
	}
}
