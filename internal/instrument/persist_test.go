package instrument

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pathlog/internal/lang"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// goldenPlan is the deterministic fixture plan: fakeProgram under the
// combined method with syscall logging.
func goldenPlan(t *testing.T) *Plan {
	t.Helper()
	return BuildPlan(fakeProgram(t), MethodDynamicStatic, fakeInputs(), true)
}

// TestPlanGoldenFile pins the serialized plan format: program hash,
// fingerprint, branch set and cost survive exactly as checked in. A
// failure here means the envelope changed — bump the version and the
// golden file deliberately, not accidentally.
func TestPlanGoldenFile(t *testing.T) {
	golden := filepath.Join("testdata", "plan_golden.json")
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := goldenPlan(t).Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("plan serialization drifted from golden file:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestPlanSaveLoadRoundTrip(t *testing.T) {
	p := goldenPlan(t)
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Fingerprint() != p.Fingerprint() {
		t.Errorf("fingerprint: %s vs %s", loaded.Fingerprint(), p.Fingerprint())
	}
	if loaded.Method != p.Method || loaded.Strategy != p.Strategy ||
		loaded.LogSyscalls != p.LogSyscalls || loaded.ProgHash != p.ProgHash {
		t.Errorf("metadata drifted: %+v vs %+v", loaded, p)
	}
	if loaded.Cost != p.Cost {
		t.Errorf("cost: %+v vs %+v", loaded.Cost, p.Cost)
	}
	if loaded.NumInstrumented() != p.NumInstrumented() {
		t.Errorf("instrumented: %d vs %d", loaded.NumInstrumented(), p.NumInstrumented())
	}
	if err := loaded.ValidateForProgram(fakeProgram(t)); err != nil {
		t.Errorf("round-tripped plan does not validate: %v", err)
	}
}

// TestRefinedPlanRoundTripKeepsLineage pins the adaptive loop's durability
// claim: a refined plan survives Save/LoadPlan with its generation and
// parent fingerprint intact, and a generation-0 plan serializes without
// lineage fields (byte-stable with pre-lineage envelopes — the golden-file
// test above is the proof).
func TestRefinedPlanRoundTripKeepsLineage(t *testing.T) {
	base := goldenPlan(t)
	p := *base
	p.Instrumented = map[lang.BranchID]bool{0: true, 1: true, 4: true}
	p.Strategy = "refine(method:dynamic+static,gen2,+b4)"
	p.Generation = 2
	p.Parent = base.Fingerprint()

	path := filepath.Join(t.TempDir(), "refined.json")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"generation": 2`) ||
		!strings.Contains(string(data), `"parent": "`+p.Parent+`"`) {
		t.Errorf("lineage not serialized:\n%s", data)
	}
	loaded, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Generation != 2 || loaded.Parent != p.Parent {
		t.Errorf("lineage drifted: generation %d parent %s", loaded.Generation, loaded.Parent)
	}
	if loaded.Fingerprint() != p.Fingerprint() {
		t.Errorf("fingerprint drifted: %s vs %s", loaded.Fingerprint(), p.Fingerprint())
	}

	// A negative generation is corruption.
	bad := strings.Replace(string(data), `"generation": 2`, `"generation": -2`, 1)
	badPath := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(badPath, []byte(bad), 0o644)
	if _, err := LoadPlan(badPath); err == nil || !strings.Contains(err.Error(), "generation") {
		t.Errorf("negative generation accepted: %v", err)
	}
}

func TestLoadPlanRejectsTampering(t *testing.T) {
	p := goldenPlan(t)
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Quietly flipping the syscall flag must break the fingerprint.
	tampered := strings.Replace(string(data), `"log_syscalls": true`,
		`"log_syscalls": false`, 1)
	if tampered == string(data) {
		t.Fatal("tamper target not found")
	}
	bad := filepath.Join(t.TempDir(), "tampered.json")
	os.WriteFile(bad, []byte(tampered), 0o644)
	if _, err := LoadPlan(bad); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("tampered plan not caught by fingerprint: %v", err)
	}
}

func TestLoadPlanErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadPlan(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	for name, content := range map[string]string{
		"garbage.json":   "{not json",
		"version.json":   `{"version":9}`,
		"negative.json":  `{"version":1,"instrumented_branches":[-1],"fingerprint":""}`,
		"duplicate.json": `{"version":1,"instrumented_branches":[1,1],"fingerprint":""}`,
		"unsorted.json":  `{"version":1,"instrumented_branches":[2,1],"fingerprint":""}`,
	} {
		path := filepath.Join(dir, name)
		os.WriteFile(path, []byte(content), 0o644)
		if _, err := LoadPlan(path); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
