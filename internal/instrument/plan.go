package instrument

import (
	"fmt"
	"sort"

	"pathlog/internal/concolic"
	"pathlog/internal/lang"
	"pathlog/internal/static"
	"pathlog/internal/trace"
	"pathlog/internal/vm"
)

// Method selects an instrumentation strategy.
type Method int

// Methods. MethodNone is the uninstrumented baseline configuration.
const (
	MethodNone Method = iota
	MethodDynamic
	MethodStatic
	MethodDynamicStatic
	MethodAll
)

var methodNames = [...]string{"none", "dynamic", "static", "dynamic+static", "all branches"}

// String implements fmt.Stringer.
func (m Method) String() string {
	if int(m) < len(methodNames) {
		return methodNames[m]
	}
	return "method?"
}

// Methods lists the instrumented methods in the paper's presentation order.
var Methods = []Method{MethodDynamic, MethodDynamicStatic, MethodStatic, MethodAll}

// ParseMethod parses the CLI spelling of a method ("none", "dynamic",
// "static", "dynamic+static", "all").
func ParseMethod(s string) (Method, error) {
	switch s {
	case "none":
		return MethodNone, nil
	case "dynamic":
		return MethodDynamic, nil
	case "static":
		return MethodStatic, nil
	case "dynamic+static":
		return MethodDynamicStatic, nil
	case "all":
		return MethodAll, nil
	}
	return 0, fmt.Errorf("instrument: unknown method %q (want none, dynamic, static, dynamic+static or all)", s)
}

// Plan is the instrumentation decision for one program build. Plans are
// durable artifacts: Save/LoadPlan round-trip them through JSON, and
// Fingerprint gives them a shippable identity covering the program, the
// branch set and the syscall flag.
type Plan struct {
	// Method is the legacy §2.3 tag. Plans built by a strategy composition
	// with no legacy equivalent leave it at MethodNone; Strategy is the
	// authoritative provenance.
	Method Method
	// Strategy names the strategy that produced the plan (e.g.
	// "union(dynamic,static-residue)"); empty on hand-built plans.
	Strategy string
	// Instrumented holds the branch locations whose directions are logged.
	Instrumented map[lang.BranchID]bool
	// LogSyscalls enables recording of select()/read() results (§2.3).
	LogSyscalls bool
	// ProgHash identifies the program the plan was built for (see
	// ProgramHash); empty on hand-built plans, which skips program checks.
	ProgHash string
	// Cost is the plan's modeled position in the overhead/debug-time plane.
	Cost CostEstimate
	// Generation counts refinement steps: 0 for a plan built from analysis
	// alone, n+1 for a plan Refine derived from a generation-n plan.
	// Lineage is provenance, not identity — it is deliberately outside the
	// fingerprint, because two plans with the same branch set are
	// interchangeable at record and replay time however they were reached.
	Generation int
	// Parent is the fingerprint of the plan this one was refined from;
	// empty for generation 0.
	Parent string
}

// Instruments reports whether applying the plan changes the build at all:
// an empty branch set with no syscall logging is the uninstrumented
// baseline and produces no recording.
func (p *Plan) Instruments() bool {
	return p.LogSyscalls || p.NumInstrumented() > 0
}

// NumInstrumented returns the number of instrumented branch locations.
func (p *Plan) NumInstrumented() int {
	n := 0
	for _, v := range p.Instrumented {
		if v {
			n++
		}
	}
	return n
}

// InstrumentedIn counts instrumented branch locations within a region.
func (p *Plan) InstrumentedIn(prog *lang.Program, r lang.Region) int {
	n := 0
	for _, b := range prog.Branches {
		if b.Region == r && p.Instrumented[b.ID] {
			n++
		}
	}
	return n
}

// IDs returns the sorted instrumented branch IDs.
func (p *Plan) IDs() []lang.BranchID {
	out := make([]lang.BranchID, 0, len(p.Instrumented))
	for id, v := range p.Instrumented {
		if v {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Inputs carries the analysis results a plan is derived from. Dynamic and
// Static may each be nil when the method does not need them.
type Inputs struct {
	Dynamic *concolic.Report
	Static  *static.Report
}

// BuildPlan derives the instrumented-branch set for a method (§2.3). It is
// the literal reference implementation of the paper's four methods; the
// strategy compositions of strategy.go reproduce it exactly (gated by
// TestMethodStrategyParity). The returned plan carries the program hash
// and a cost estimate like any strategy-built plan.
func BuildPlan(prog *lang.Program, method Method, in Inputs, logSyscalls bool) *Plan {
	p := &Plan{
		Method:       method,
		Strategy:     StrategyForMethod(method).Name(),
		Instrumented: make(map[lang.BranchID]bool),
		LogSyscalls:  logSyscalls,
		ProgHash:     ProgramHash(prog),
	}
	switch method {
	case MethodNone:
		p.LogSyscalls = false

	case MethodAll:
		for _, b := range prog.Branches {
			p.Instrumented[b.ID] = true
		}

	case MethodDynamic:
		for id, l := range in.Dynamic.Labels {
			if l == concolic.Symbolic {
				p.Instrumented[id] = true
			}
		}

	case MethodStatic:
		for id, v := range in.Static.SymbolicBranches {
			if v {
				p.Instrumented[id] = true
			}
		}

	case MethodDynamicStatic:
		// Visited branches take the dynamic label (which may override a
		// conservative static "symbolic"); unvisited branches take the
		// static label.
		for _, b := range prog.Branches {
			switch in.Dynamic.Labels[b.ID] {
			case concolic.Symbolic:
				p.Instrumented[b.ID] = true
			case concolic.Concrete:
				// Dynamic evidence wins: not instrumented.
			case concolic.Unvisited:
				if in.Static.SymbolicBranches[b.ID] {
					p.Instrumented[b.ID] = true
				}
			}
		}
	}
	p.Cost = NewCostModel(prog, in.Dynamic).Estimate(p)
	return p
}

// Logger is the vm.BranchSink an instrumented build runs with at the user
// site: one bit per executed instrumented branch through the 4KB buffer.
type Logger struct {
	plan *Plan
	w    *trace.Writer
	// InstrumentedExecs counts executions of instrumented branches.
	InstrumentedExecs int64
}

// NewLogger returns a logger for the given plan.
func NewLogger(plan *Plan) *Logger {
	return &Logger{plan: plan, w: trace.NewWriter()}
}

// OnBranch implements vm.BranchSink.
func (l *Logger) OnBranch(site *lang.BranchSite, cond vm.Value, taken bool) error {
	if l.plan.Instrumented[site.ID] {
		l.InstrumentedExecs++
		l.w.Append(taken)
	}
	return nil
}

// Finish returns the completed branch trace.
func (l *Logger) Finish() *trace.Trace { return l.w.Finish() }

// Flushes reports buffer flushes so far.
func (l *Logger) Flushes() int { return l.w.Flushes() }
