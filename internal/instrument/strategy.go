package instrument

import (
	"context"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"pathlog/internal/concolic"
	"pathlog/internal/lang"
)

// The Planner API makes the paper's instrumentation decision a first-class,
// composable value instead of a closed enum. A Strategy turns analysis
// results into a Plan; combinators build new strategies out of existing
// ones. Every legacy Method is reproduced exactly as a composition (gated
// by the parity test in strategy_test.go):
//
//	MethodNone          == None()
//	MethodDynamic       == Dynamic()
//	MethodStatic        == Static()
//	MethodDynamicStatic == Union(Dynamic(), StaticResidue())
//	MethodAll           == All()
//
// Compositions beyond the paper's four become available for free:
//
//	Budgeted(All(), 64)                    // best 64 branches by value density
//	Sampled(Static(), 0.5)                 // half of static's set, deterministic
//	Intersect(Dynamic(), Static())         // branches both analyses agree on
//
// Strategy names are identifiers: the Session caches plans by name, and
// frontier tables label points with them, so a custom Strategy must return
// a name that uniquely describes its decision.

// PlanContext carries everything a Strategy may consult: the program, the
// analysis results, the session's syscall-logging flag, and lazily built
// shared state (the cost model and program hash). It is safe for
// concurrent use by strategies planned in parallel.
type PlanContext struct {
	Prog        *lang.Program
	In          Inputs
	LogSyscalls bool

	costMu   sync.Mutex
	cost     *CostModel
	hashOnce sync.Once
	progHash string
}

// NewPlanContext binds a program and its analysis results for planning.
func NewPlanContext(prog *lang.Program, in Inputs, logSyscalls bool) *PlanContext {
	return &PlanContext{Prog: prog, In: in, LogSyscalls: logSyscalls}
}

// CostModel returns the shared cost model, built on first use from the
// dynamic analysis profile (and possibly recalibrated since — see
// Calibrate).
func (pc *PlanContext) CostModel() *CostModel {
	pc.costMu.Lock()
	defer pc.costMu.Unlock()
	if pc.cost == nil {
		pc.cost = NewCostModel(pc.Prog, pc.In.Dynamic)
	}
	return pc.cost
}

// Calibrate folds an observed replay profile into the shared cost model
// (see CostModel.CalibrateCosts). Plans built after the call are priced
// with measured rates; plans already built keep the estimate they were
// born with — an estimate is a statement about what was known at planning
// time. The read-calibrate-swap holds costMu throughout, so concurrent
// calibrations compose instead of overwriting each other.
func (pc *PlanContext) Calibrate(profile *SearchProfile) {
	pc.costMu.Lock()
	defer pc.costMu.Unlock()
	if pc.cost == nil {
		pc.cost = NewCostModel(pc.Prog, pc.In.Dynamic)
	}
	pc.cost = pc.cost.CalibrateCosts(profile)
}

// ProgHash returns the program identity hash, computed on first use.
func (pc *PlanContext) ProgHash() string {
	pc.hashOnce.Do(func() { pc.progHash = ProgramHash(pc.Prog) })
	return pc.progHash
}

// NewPlan assembles and prices a finished plan from an explicit
// instrumented-branch set — the one constructor every strategy (built-in or
// user-written) funnels through, so every plan carries its provenance
// label, program hash and cost estimate.
func (pc *PlanContext) NewPlan(name string, instrumented map[lang.BranchID]bool) *Plan {
	if instrumented == nil {
		instrumented = make(map[lang.BranchID]bool)
	}
	p := &Plan{
		Strategy:     name,
		Instrumented: instrumented,
		LogSyscalls:  pc.LogSyscalls,
		ProgHash:     pc.ProgHash(),
	}
	p.Cost = pc.CostModel().Estimate(p)
	return p
}

// Strategy decides which branch locations to instrument. Implementations
// must be deterministic: the same PlanContext must always yield the same
// plan (fingerprints, plan caching and recordings shipped between sites
// all depend on it).
type Strategy interface {
	// Name uniquely identifies the strategy's decision, e.g.
	// "union(dynamic,static-residue)". Combinators compose names.
	Name() string
	// Plan derives the instrumentation plan. The context bounds any work;
	// strategies needing an analysis the PlanContext lacks return an error.
	Plan(ctx context.Context, pc *PlanContext) (*Plan, error)
}

// strategyFunc adapts a name and a set-builder to the Strategy interface.
type strategyFunc struct {
	name  string
	build func(ctx context.Context, pc *PlanContext) (map[lang.BranchID]bool, error)
}

// Name implements Strategy.
func (s *strategyFunc) Name() string { return s.name }

// Plan implements Strategy: it builds the branch set and prices it.
func (s *strategyFunc) Plan(ctx context.Context, pc *PlanContext) (*Plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	set, err := s.build(ctx, pc)
	if err != nil {
		return nil, err
	}
	return pc.NewPlan(s.name, set), nil
}

// noneStrategy is the uninstrumented baseline. It is its own type because
// it overrides the session's syscall-logging flag: the baseline never logs
// anything (matching the legacy MethodNone exactly).
type noneStrategy struct{}

// Name implements Strategy.
func (noneStrategy) Name() string { return "none" }

// Plan implements Strategy: an empty branch set with syscall logging off.
func (noneStrategy) Plan(ctx context.Context, pc *PlanContext) (*Plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p := pc.NewPlan("none", nil)
	p.LogSyscalls = false
	return p, nil
}

// None returns the uninstrumented-baseline strategy: no branches, no
// syscall logging.
func None() Strategy { return noneStrategy{} }

// Dynamic returns the strategy instrumenting every branch the concolic
// analysis labeled symbolic (§2.3 "dynamic"). It errors without a dynamic
// report.
func Dynamic() Strategy {
	return &strategyFunc{name: "dynamic", build: func(ctx context.Context, pc *PlanContext) (map[lang.BranchID]bool, error) {
		if pc.In.Dynamic == nil {
			return nil, fmt.Errorf("instrument: strategy dynamic needs a dynamic analysis report")
		}
		set := make(map[lang.BranchID]bool)
		for id, l := range pc.In.Dynamic.Labels {
			if l == concolic.Symbolic {
				set[id] = true
			}
		}
		return set, nil
	}}
}

// Static returns the strategy instrumenting every branch the static
// analysis labeled symbolic (§2.3 "static"). It errors without a static
// report.
func Static() Strategy {
	return &strategyFunc{name: "static", build: func(ctx context.Context, pc *PlanContext) (map[lang.BranchID]bool, error) {
		if pc.In.Static == nil {
			return nil, fmt.Errorf("instrument: strategy static needs a static analysis report")
		}
		set := make(map[lang.BranchID]bool)
		for id, v := range pc.In.Static.SymbolicBranches {
			if v {
				set[id] = true
			}
		}
		return set, nil
	}}
}

// StaticResidue returns the strategy instrumenting the statically-symbolic
// branches the dynamic analysis never visited — static's contribution to
// the combined method, where dynamic evidence always wins on visited
// branches (§2.3). Union(Dynamic(), StaticResidue()) reproduces
// MethodDynamicStatic exactly.
func StaticResidue() Strategy {
	return &strategyFunc{name: "static-residue", build: func(ctx context.Context, pc *PlanContext) (map[lang.BranchID]bool, error) {
		if pc.In.Dynamic == nil || pc.In.Static == nil {
			return nil, fmt.Errorf("instrument: strategy static-residue needs both analysis reports")
		}
		set := make(map[lang.BranchID]bool)
		for _, b := range pc.Prog.Branches {
			if pc.In.Dynamic.Labels[b.ID] == concolic.Unvisited && pc.In.Static.SymbolicBranches[b.ID] {
				set[b.ID] = true
			}
		}
		return set, nil
	}}
}

// All returns the strategy instrumenting every branch location (§2.3 "all
// branches").
func All() Strategy {
	return &strategyFunc{name: "all", build: func(ctx context.Context, pc *PlanContext) (map[lang.BranchID]bool, error) {
		set := make(map[lang.BranchID]bool, len(pc.Prog.Branches))
		for _, b := range pc.Prog.Branches {
			set[b.ID] = true
		}
		return set, nil
	}}
}

// composeName renders a combinator name from its parts.
func composeName(op string, parts ...string) string {
	return op + "(" + strings.Join(parts, ",") + ")"
}

// innerSets plans every inner strategy and returns their instrumented sets.
func innerSets(ctx context.Context, pc *PlanContext, inner []Strategy) ([]map[lang.BranchID]bool, error) {
	sets := make([]map[lang.BranchID]bool, len(inner))
	for i, s := range inner {
		p, err := s.Plan(ctx, pc)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", s.Name(), err)
		}
		sets[i] = p.Instrumented
	}
	return sets, nil
}

func strategyNames(ss []Strategy) []string {
	names := make([]string, len(ss))
	for i, s := range ss {
		names[i] = s.Name()
	}
	return names
}

// Union returns the strategy instrumenting every branch any of the inner
// strategies instruments.
func Union(inner ...Strategy) Strategy {
	return &strategyFunc{
		name: composeName("union", strategyNames(inner)...),
		build: func(ctx context.Context, pc *PlanContext) (map[lang.BranchID]bool, error) {
			sets, err := innerSets(ctx, pc, inner)
			if err != nil {
				return nil, err
			}
			out := make(map[lang.BranchID]bool)
			for _, set := range sets {
				for id, v := range set {
					if v {
						out[id] = true
					}
				}
			}
			return out, nil
		},
	}
}

// Intersect returns the strategy instrumenting only the branches every
// inner strategy instruments.
func Intersect(inner ...Strategy) Strategy {
	return &strategyFunc{
		name: composeName("intersect", strategyNames(inner)...),
		build: func(ctx context.Context, pc *PlanContext) (map[lang.BranchID]bool, error) {
			sets, err := innerSets(ctx, pc, inner)
			if err != nil {
				return nil, err
			}
			if len(sets) == 0 {
				return nil, nil
			}
			out := make(map[lang.BranchID]bool)
			for id, v := range sets[0] {
				if !v {
					continue
				}
				in := true
				for _, set := range sets[1:] {
					if !set[id] {
						in = false
						break
					}
				}
				if in {
					out[id] = true
				}
			}
			return out, nil
		},
	}
}

// Budgeted returns the strategy that keeps at most k branches of the inner
// strategy's set — the k with the highest value density under the cost
// model, where value is the replay fan-out the branch's bit removes and
// cost is the expected bits per run it adds. This sweeps smooth
// intermediate points onto the overhead/debug-time curve between the
// paper's fixed methods. Ties break toward higher replay value, then lower
// branch ID, so the selection is deterministic.
func Budgeted(inner Strategy, k int) Strategy {
	return &strategyFunc{
		name: fmt.Sprintf("budgeted(%s,%d)", inner.Name(), k),
		build: func(ctx context.Context, pc *PlanContext) (map[lang.BranchID]bool, error) {
			p, err := inner.Plan(ctx, pc)
			if err != nil {
				return nil, err
			}
			ids := p.IDs()
			if k < 0 {
				k = 0
			}
			if len(ids) <= k {
				return p.Instrumented, nil
			}
			model := pc.CostModel()
			type ranked struct {
				id      lang.BranchID
				value   float64
				density float64
			}
			rs := make([]ranked, len(ids))
			for i, id := range ids {
				v := model.branchReplayCost(id)
				rs[i] = ranked{id: id, value: v, density: v / model.branchOverhead(id)}
			}
			sort.Slice(rs, func(i, j int) bool {
				if rs[i].density != rs[j].density {
					return rs[i].density > rs[j].density
				}
				if rs[i].value != rs[j].value {
					return rs[i].value > rs[j].value
				}
				return rs[i].id < rs[j].id
			})
			out := make(map[lang.BranchID]bool, k)
			for _, r := range rs[:k] {
				out[r.id] = true
			}
			return out, nil
		},
	}
}

// Sampled returns the strategy that keeps a deterministic rate-fraction of
// the inner strategy's set, selected by hashing branch IDs (no randomness:
// the same program and rate always keep the same branches, so fingerprints
// stay stable across sites).
func Sampled(inner Strategy, rate float64) Strategy {
	return &strategyFunc{
		name: fmt.Sprintf("sampled(%s,%g)", inner.Name(), rate),
		build: func(ctx context.Context, pc *PlanContext) (map[lang.BranchID]bool, error) {
			p, err := inner.Plan(ctx, pc)
			if err != nil {
				return nil, err
			}
			if rate >= 1 {
				return p.Instrumented, nil
			}
			out := make(map[lang.BranchID]bool)
			if rate <= 0 {
				return out, nil
			}
			threshold := uint32(rate * float64(1<<24))
			for _, id := range p.IDs() {
				h := fnv.New32a()
				fmt.Fprintf(h, "b%d", id)
				if h.Sum32()%(1<<24) < threshold {
					out[id] = true
				}
			}
			return out, nil
		},
	}
}

// methodStrategy wraps a composition so plans built through the legacy
// Method sugar carry the method tag alongside the strategy label.
type methodStrategy struct {
	m     Method
	inner Strategy
}

// Name implements Strategy.
func (s *methodStrategy) Name() string { return "method:" + s.m.String() }

// Plan implements Strategy: the inner composition's plan, tagged with the
// legacy method.
func (s *methodStrategy) Plan(ctx context.Context, pc *PlanContext) (*Plan, error) {
	p, err := s.inner.Plan(ctx, pc)
	if err != nil {
		return nil, err
	}
	p.Method = s.m
	return p, nil
}

// StrategyForMethod returns the composition reproducing a legacy Method
// (§2.3) exactly: same branch set, same flags, same fingerprint. Unknown
// methods map to None().
func StrategyForMethod(m Method) Strategy {
	var inner Strategy
	switch m {
	case MethodDynamic:
		inner = Dynamic()
	case MethodStatic:
		inner = Static()
	case MethodDynamicStatic:
		inner = Union(Dynamic(), StaticResidue())
	case MethodAll:
		inner = All()
	default:
		inner = None()
	}
	return &methodStrategy{m: m, inner: inner}
}
