package instrument

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"pathlog/internal/lang"
)

// Fingerprints make plans durable and safe to ship between sites: a plan's
// fingerprint covers the program identity, the instrumented-branch set and
// the syscall-logging flag — everything the replay engine needs to agree on
// to interpret a bitvector. Recordings are stamped with the fingerprint of
// the plan they were taken under, so a replay site can refuse a
// plan/recording/program mismatch instead of silently searching under the
// wrong plan.

// ProgramHash returns a stable identity for a linked program: a hash over
// its unit names and regions, its function signatures, and every branch
// site (ID, kind, position, enclosing function, region). Branch IDs are
// assigned in source order during linking, so any edit that moves, adds or
// removes a branch changes the hash — exactly the edits that would
// invalidate a retained plan.
func ProgramHash(prog *lang.Program) string {
	h := sha256.New()
	io.WriteString(h, "pathlog-program-v1\n")
	for _, u := range prog.Units {
		fmt.Fprintf(h, "unit %s region=%d\n", u.Name, u.Region)
	}
	for _, f := range prog.FuncList {
		fmt.Fprintf(h, "func %s/%d region=%d\n", f.Name, len(f.Params), f.Region)
	}
	fmt.Fprintf(h, "branches %d\n", len(prog.Branches))
	for _, b := range prog.Branches {
		fmt.Fprintf(h, "b%d %d %s %s:%d:%d region=%d\n",
			b.ID, b.Kind, b.Func, b.Pos.Unit, b.Pos.Line, b.Pos.Col, b.Region)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Fingerprint returns the plan's durable identity: a hash of the program
// hash, the sorted instrumented branch-ID set, and the syscall-logging
// flag. Two plans with the same fingerprint are interchangeable at record
// and replay time regardless of which strategy produced them.
func (p *Plan) Fingerprint() string {
	h := sha256.New()
	io.WriteString(h, "pathlog-plan-v1\n")
	io.WriteString(h, p.ProgHash)
	io.WriteString(h, "\n")
	for _, id := range p.IDs() {
		fmt.Fprintf(h, "%d\n", id)
	}
	fmt.Fprintf(h, "syscalls=%v\n", p.LogSyscalls)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// ValidateForProgram checks that the plan can be applied to prog: every
// instrumented branch ID must name a branch site of the program, and a
// recorded program hash must match the program's.
func (p *Plan) ValidateForProgram(prog *lang.Program) error {
	n := lang.BranchID(len(prog.Branches))
	for id, v := range p.Instrumented {
		if !v {
			continue
		}
		if id < 0 || id >= n {
			return fmt.Errorf("instrument: plan instruments branch b%d, but the program has only %d branch locations", id, n)
		}
	}
	if p.ProgHash != "" {
		if got := ProgramHash(prog); got != p.ProgHash {
			return fmt.Errorf("instrument: plan was built for program %s, not %s (program changed since the plan was made)",
				p.ProgHash, got)
		}
	}
	return nil
}
