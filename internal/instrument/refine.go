package instrument

import (
	"context"
	"fmt"
	"strings"

	"pathlog/internal/lang"
)

// Refine closes the paper's feedback loop at the strategy layer: when the
// developer-site search under a cheap partial plan takes too long, the next
// plan generation keeps everything the base plan logged and additionally
// instruments the branches the search blamed for the blowup — one more bit
// per execution of each promoted branch buys the search one fewer
// speculative dimension. The promotion is decided eagerly (the top-k
// blowup branches of the profile that the base plan does not already
// instrument), so the strategy's name pins the exact decision and refined
// plans cache and fingerprint like any other plan.
//
// The resulting plan carries lineage: Generation = base.Generation+1 and
// Parent = base.Fingerprint(), so a trajectory of refinements remains
// auditable after Save/LoadPlan round-trips.
type refineStrategy struct {
	base     *Plan
	promoted []lang.BranchID
	demoted  []lang.BranchID
	name     string
}

// Refine returns the strategy deriving the next plan generation from a
// base plan and the search profile measured under it: the base branch set
// plus the top-k blowup branches the profile attributes the search length
// to. A profile that blames no promotable branch yields a plan identical
// to the base (callers detect the fixed point by comparing fingerprints).
//
// Refine refuses a profile measured under a different plan than base: the
// attribution is only meaningful for the plan whose gaps produced it.
func Refine(base *Plan, profile *SearchProfile, k int) (Strategy, error) {
	return refineWith(base, profile, k, true, false, 0)
}

// Demote returns the strategy deriving the next plan generation by
// shrinking the base plan: every instrumented branch the profile proves
// redundant (SearchProfile.Demotable — bits consumed, zero disagreements)
// is dropped, winning back its record overhead. Nothing is promoted. A
// profile with no demotable branch yields a plan identical to the base.
// The demotion is evidence-based, not verified: callers that can re-measure
// (Session.CorpusBalance) must refuse a demoted plan whose measured replay
// regresses.
func Demote(base *Plan, profile *SearchProfile) (Strategy, error) {
	return refineWith(base, profile, 0, false, true, 0)
}

// DemoteAt is Demote with a rate-thresholded candidate rule
// (SearchProfile.DemotableAt): branches whose disagreement rate is at most
// rate are dropped, not only the strictly silent ones. Rate 0 is exactly
// Demote.
func DemoteAt(base *Plan, profile *SearchProfile, rate float64) (Strategy, error) {
	return refineWith(base, profile, 0, false, true, rate)
}

// RefineAndDemote combines both directions of the balance in one
// generation: the top-k blowup branches are promoted into the plan and the
// proven-redundant branches are dropped from it, so a corpus refinement
// step both speeds up replay and shrinks user-site overhead. The two sets
// are disjoint by construction (TopBlowup only proposes uninstrumented
// branches; Demotable only instrumented ones).
func RefineAndDemote(base *Plan, profile *SearchProfile, k int) (Strategy, error) {
	return refineWith(base, profile, k, true, true, 0)
}

// RefineAndDemoteAt is RefineAndDemote with a rate-thresholded demotion
// rule (see DemoteAt). Rate 0 is exactly RefineAndDemote.
func RefineAndDemoteAt(base *Plan, profile *SearchProfile, k int, rate float64) (Strategy, error) {
	return refineWith(base, profile, k, true, true, rate)
}

// refineWith builds the refinement strategy. With promote set, k <= 0
// selects DefaultRefineTopK (the documented contract of every TopK
// option); without it nothing is promoted (the demote-only form). The
// demotion candidate rule is rate-thresholded (DemotableAt); rate 0 keeps
// the strict zero-disagreement rule.
func refineWith(base *Plan, profile *SearchProfile, k int, promote, demote bool, rate float64) (Strategy, error) {
	if base == nil {
		return nil, fmt.Errorf("instrument: refine needs a base plan")
	}
	if profile == nil {
		return nil, fmt.Errorf("instrument: refine needs a search profile")
	}
	if profile.PlanFingerprint != "" {
		if got := base.Fingerprint(); got != profile.PlanFingerprint {
			return nil, fmt.Errorf("instrument: profile was measured under plan %s, cannot refine plan %s (generation %d): record and replay under the plan being refined",
				profile.PlanFingerprint, got, base.Generation)
		}
	}
	var promoted []lang.BranchID
	if promote {
		if k <= 0 {
			k = DefaultRefineTopK
		}
		promoted = profile.TopBlowup(k, base.Instrumented)
	}
	var demoted []lang.BranchID
	if demote {
		demoted = profile.DemotableAt(base.Instrumented, rate)
	}
	return &refineStrategy{
		base:     base,
		promoted: promoted,
		demoted:  demoted,
		name:     refineName(base, promoted, demoted),
	}, nil
}

// DefaultRefineTopK is the promotion width when the caller does not choose
// one: wide enough to collapse a multi-branch blowup in one generation,
// narrow enough that overhead grows a few bits per run at a time.
const DefaultRefineTopK = 4

// refineName renders the refined strategy's identifier. The base plan is
// always pinned by (a prefix of) its fingerprint — strategy names alone
// are not identities, and the session caches plans by name, so two bases
// both called "dynamic" with different branch sets must refine under
// different names. Small promotions list the branch IDs outright; larger
// ones carry a count plus a deterministic hash. Demotions render the same
// way with a "-" sign, and only when present — promotion-only names are
// byte-identical to what they were before demotion existed. Refining a
// refined plan drops the base's strategy text, keeping deep chains flat:
// refine(dynamic@a2d02b70,gen1,+b15) then refine(@831530c5,gen2,+b33,-b7).
func refineName(base *Plan, promoted, demoted []lang.BranchID) string {
	fp := base.Fingerprint()
	if len(fp) > 8 {
		fp = fp[:8]
	}
	baseName := base.Strategy
	if baseName == "" {
		baseName = base.Method.String()
	}
	if base.Generation > 0 {
		baseName = "@" + fp
	} else {
		baseName += "@" + fp
	}
	tag := idsTag("+", promoted)
	if tag == "" {
		tag = "+none"
	}
	if d := idsTag("-", demoted); d != "" {
		tag += "," + d
	}
	return fmt.Sprintf("refine(%s,gen%d,%s)", baseName, base.Generation+1, tag)
}

// idsTag renders a signed branch-ID set: up to 6 IDs outright, larger sets
// as a count plus a deterministic hash, an empty set as "".
func idsTag(sign string, ids []lang.BranchID) string {
	switch {
	case len(ids) == 0:
		return ""
	case len(ids) <= 6:
		parts := make([]string, len(ids))
		for i, id := range ids {
			parts[i] = fmt.Sprintf("b%d", id)
		}
		return sign + strings.Join(parts, sign)
	default:
		return fmt.Sprintf("%s%d@%s", sign, len(ids), hashIDs(ids))
	}
}

// Name implements Strategy.
func (s *refineStrategy) Name() string { return s.name }

// Promoted returns the branch IDs this refinement adds to the base plan,
// in blowup order.
func (s *refineStrategy) Promoted() []lang.BranchID {
	return append([]lang.BranchID(nil), s.promoted...)
}

// Demoted returns the branch IDs this refinement drops from the base plan,
// in branch-ID order.
func (s *refineStrategy) Demoted() []lang.BranchID {
	return append([]lang.BranchID(nil), s.demoted...)
}

// Plan implements Strategy: the base set plus the promoted branches minus
// the demoted ones, with the generation lineage stamped on.
func (s *refineStrategy) Plan(ctx context.Context, pc *PlanContext) (*Plan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := s.base.ValidateForProgram(pc.Prog); err != nil {
		return nil, fmt.Errorf("instrument: refine base plan does not fit the program: %w", err)
	}
	set := make(map[lang.BranchID]bool, len(s.base.Instrumented)+len(s.promoted))
	for id, v := range s.base.Instrumented {
		if v {
			set[id] = true
		}
	}
	for _, id := range s.promoted {
		set[id] = true
	}
	for _, id := range s.demoted {
		delete(set, id)
	}
	p := pc.NewPlan(s.name, set)
	// The refined build logs syscalls iff the base build did: refinement
	// changes the branch set, not the record-time feature set.
	p.LogSyscalls = s.base.LogSyscalls
	p.Generation = s.base.Generation + 1
	p.Parent = s.base.Fingerprint()
	return p, nil
}
