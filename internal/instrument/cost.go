package instrument

import (
	"pathlog/internal/concolic"
	"pathlog/internal/lang"
)

// The cost model prices the paper's tradeoff before anything is deployed.
// It is fed by the per-branch hit counts the concolic analysis gathers
// anyway (Report.ExecCount / SymExecCount) and produces two numbers per
// plan:
//
//   - estimated record overhead: the expected number of logged bits per
//     user-site run. One bit per execution of an instrumented branch is
//     exactly what drives both the CPU overhead (the 17-instruction logging
//     sequence of §5.1) and the storage overhead, so bits/run is the
//     natural overhead unit.
//   - estimated replay runs: a first-order estimate of the guided search's
//     length. Every uninstrumented symbolic branch execution queues one
//     pending alternative (§3.1 case 1), so the expected number of such
//     executions per run bounds the fan-out of the search.
//
// Branches the analysis never visited are priced with empirical priors:
// an unvisited instrumented branch is charged one expected execution per
// run (instrumentation is never free), and an unvisited uninstrumented
// branch is charged the observed symbolic fraction of visited branches
// (the best available guess at how likely it is to turn symbolic at the
// user site — this is what makes the dynamic method's estimate honest
// about its coverage gamble).

// CostEstimate carries a plan's modeled position in the overhead/debug-time
// plane. It persists with the plan so shipped plans keep their pricing.
type CostEstimate struct {
	// OverheadBitsPerRun is the expected logged bits per user-site run.
	OverheadBitsPerRun float64 `json:"overhead_bits_per_run"`
	// ReplayRuns is the expected number of replay search runs.
	ReplayRuns float64 `json:"replay_runs"`
	// Modeled is false when no concolic profile was available and the
	// estimate fell back to structural priors only.
	Modeled bool `json:"modeled"`
}

// minExecRate is the floor on an instrumented branch's expected executions
// per run: even a branch the analysis never saw executing costs at least
// one expected bit once instrumented.
const minExecRate = 1.0

// defaultSymPrior is the symbolic prior used when the analysis visited
// nothing (no profile at all).
const defaultSymPrior = 0.5

// CostModel holds the per-branch rates derived from one concolic profile.
// Build it once per analysis via NewCostModel and price any number of
// plans with Estimate.
type CostModel struct {
	ids      []lang.BranchID
	execRate map[lang.BranchID]float64
	symRate  map[lang.BranchID]float64
	visited  map[lang.BranchID]bool
	// priorSym is the empirical probability that an unvisited branch turns
	// out symbolic: the symbolic fraction among visited locations.
	priorSym float64
	modeled  bool
}

// NewCostModel derives per-branch rates from a concolic report. A nil
// report (or one with zero runs) yields a structural model that prices
// every branch with priors only.
func NewCostModel(prog *lang.Program, dyn *concolic.Report) *CostModel {
	m := &CostModel{
		ids:      make([]lang.BranchID, 0, len(prog.Branches)),
		execRate: make(map[lang.BranchID]float64),
		symRate:  make(map[lang.BranchID]float64),
		visited:  make(map[lang.BranchID]bool),
		priorSym: defaultSymPrior,
	}
	for _, b := range prog.Branches {
		m.ids = append(m.ids, b.ID)
	}
	if dyn == nil || dyn.Runs == 0 {
		return m
	}
	m.modeled = true
	runs := float64(dyn.Runs)
	nVisited, nSym := 0, 0
	for _, id := range m.ids {
		if dyn.Labels[id] == concolic.Unvisited {
			continue
		}
		m.visited[id] = true
		m.execRate[id] = float64(dyn.ExecCount[id]) / runs
		m.symRate[id] = float64(dyn.SymExecCount[id]) / runs
		nVisited++
		if dyn.Labels[id] == concolic.Symbolic {
			nSym++
		}
	}
	if nVisited > 0 {
		m.priorSym = float64(nSym) / float64(nVisited)
		// Never price the coverage gamble at exactly zero: an analysis that
		// saw no symbolic branches still cannot promise the user site won't.
		if m.priorSym < 0.02 {
			m.priorSym = 0.02
		}
	}
	return m
}

// branchOverhead is the expected logged bits per run if id is instrumented.
func (m *CostModel) branchOverhead(id lang.BranchID) float64 {
	if r := m.execRate[id]; r > minExecRate {
		return r
	}
	return minExecRate
}

// branchReplayCost is the expected pending-alternative fan-out per run if
// id is NOT instrumented.
func (m *CostModel) branchReplayCost(id lang.BranchID) float64 {
	if m.visited[id] {
		return m.symRate[id] // 0 for branches observed concrete
	}
	return m.priorSym
}

// Estimate prices one plan: expected logged bits per run for the
// instrumented set, and one base run plus the expected uninstrumented
// symbolic fan-out for the replay search.
func (m *CostModel) Estimate(p *Plan) CostEstimate {
	est := CostEstimate{ReplayRuns: 1, Modeled: m.modeled}
	for _, id := range m.ids {
		if p.Instrumented[id] {
			est.OverheadBitsPerRun += m.branchOverhead(id)
		} else {
			est.ReplayRuns += m.branchReplayCost(id)
		}
	}
	return est
}

// CalibrateCosts returns a copy of the model with an observed replay
// profile folded in, replacing structural priors with measured rates for
// every branch the search actually charged:
//
//   - symRate becomes the observed per-run fork rate (§3.1 case-1
//     alternatives queued per run) — the quantity the replay-runs estimate
//     is literally built from, so after one search the estimate for the
//     searched plan converges on what was measured rather than on the
//     priorSym coverage gamble;
//   - execRate is raised to at least the fork rate (a branch that forked f
//     times per run executed at least f times per run), so promoting it is
//     priced honestly;
//   - the branch counts as visited, so it is no longer priced with priors.
//
// Branches the profile never charged keep their analysis-time rates: a
// replay search only observes the paths it walked, and silence there is
// not evidence of concreteness at other user sites. For the same reason
// only fork-charged entries calibrate: a profile entry with zero forks is
// an instrumented case-2b origin, whose fork rate the search never
// observes (its directions came from the log, not from speculation), so
// repricing it from forks would mark a proven-symbolic branch concrete.
func (m *CostModel) CalibrateCosts(profile *SearchProfile) *CostModel {
	if profile == nil || profile.Runs == 0 || len(profile.Branches) == 0 {
		return m
	}
	cal := &CostModel{
		ids:      m.ids,
		execRate: make(map[lang.BranchID]float64, len(m.execRate)+len(profile.Branches)),
		symRate:  make(map[lang.BranchID]float64, len(m.symRate)+len(profile.Branches)),
		visited:  make(map[lang.BranchID]bool, len(m.visited)+len(profile.Branches)),
		priorSym: m.priorSym,
		modeled:  true, // observed behavior is a profile even if analysis had none
	}
	for id, r := range m.execRate {
		cal.execRate[id] = r
	}
	for id, r := range m.symRate {
		cal.symRate[id] = r
	}
	for id := range m.visited {
		cal.visited[id] = true
	}
	for id, bc := range profile.Branches {
		if bc.Forks == 0 {
			continue
		}
		rate := profile.ForkRate(id)
		cal.symRate[id] = rate
		if rate > cal.execRate[id] {
			cal.execRate[id] = rate
		}
		cal.visited[id] = true
	}
	return cal
}

// EstimatedOverhead returns the plan's expected logged bits per user-site
// run under the cost model it was built with (0 for an unpriced plan).
func (p *Plan) EstimatedOverhead() float64 { return p.Cost.OverheadBitsPerRun }

// EstimatedReplayRuns returns the plan's expected replay search length
// under the cost model it was built with (0 for an unpriced plan).
func (p *Plan) EstimatedReplayRuns() float64 { return p.Cost.ReplayRuns }
