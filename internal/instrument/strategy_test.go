package instrument

import (
	"context"
	"fmt"
	"testing"

	"pathlog/internal/concolic"
	"pathlog/internal/lang"
)

// fakeInputs labels the 5-branch fakeProgram with a profile exercising
// every §2.3 case: b0 visited symbolic, b2 visited concrete (statically
// symbolic — dynamic evidence must win), b1 unvisited statically symbolic,
// b3/b4 unvisited statically concrete.
func fakeInputs() Inputs {
	return Inputs{
		Dynamic: &concolic.Report{
			Runs: 4,
			Labels: map[lang.BranchID]concolic.Label{
				0: concolic.Symbolic,
				2: concolic.Concrete,
			},
			ExecCount:    map[lang.BranchID]int64{0: 8, 2: 40},
			SymExecCount: map[lang.BranchID]int64{0: 8},
		},
		Static: statics(0, 1, 2),
	}
}

func planOf(t *testing.T, s Strategy, pc *PlanContext) *Plan {
	t.Helper()
	p, err := s.Plan(context.Background(), pc)
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	return p
}

// TestMethodStrategyParity is the gate on the Planner redesign: every
// legacy Method's plan must be byte-identical — same branch-ID set, same
// flags, same fingerprint — to its strategy composition.
func TestMethodStrategyParity(t *testing.T) {
	prog := fakeProgram(t)
	in := fakeInputs()
	compositions := map[Method]Strategy{
		MethodNone:          None(),
		MethodDynamic:       Dynamic(),
		MethodStatic:        Static(),
		MethodDynamicStatic: Union(Dynamic(), StaticResidue()),
		MethodAll:           All(),
	}
	for _, logSyscalls := range []bool{false, true} {
		pc := NewPlanContext(prog, in, logSyscalls)
		for m, comp := range compositions {
			legacy := BuildPlan(prog, m, in, logSyscalls)
			for _, strat := range []Strategy{comp, StrategyForMethod(m)} {
				got := planOf(t, strat, pc)
				if a, b := fmt.Sprint(legacy.IDs()), fmt.Sprint(got.IDs()); a != b {
					t.Errorf("%v vs %s (syscalls=%v): IDs %s != %s", m, strat.Name(), logSyscalls, a, b)
				}
				if legacy.LogSyscalls != got.LogSyscalls {
					t.Errorf("%v vs %s: LogSyscalls %v != %v", m, strat.Name(), legacy.LogSyscalls, got.LogSyscalls)
				}
				if a, b := legacy.Fingerprint(), got.Fingerprint(); a != b {
					t.Errorf("%v vs %s (syscalls=%v): fingerprint %s != %s", m, strat.Name(), logSyscalls, a, b)
				}
			}
		}
	}
}

func TestStrategyForMethodCarriesMethodTag(t *testing.T) {
	pc := NewPlanContext(fakeProgram(t), fakeInputs(), true)
	for _, m := range append(Methods, MethodNone) {
		p := planOf(t, StrategyForMethod(m), pc)
		if p.Method != m {
			t.Errorf("%v: plan tagged %v", m, p.Method)
		}
	}
}

func TestNoneNeverLogsSyscalls(t *testing.T) {
	pc := NewPlanContext(fakeProgram(t), fakeInputs(), true)
	p := planOf(t, None(), pc)
	if p.LogSyscalls || p.NumInstrumented() != 0 || p.Instruments() {
		t.Fatalf("none plan: %+v", p)
	}
}

func TestUnionIntersect(t *testing.T) {
	pc := NewPlanContext(fakeProgram(t), fakeInputs(), false)
	// dynamic = {0}; static = {0,1,2}.
	u := planOf(t, Union(Dynamic(), Static()), pc)
	if got := fmt.Sprint(u.IDs()); got != "[0 1 2]" {
		t.Errorf("union: %s", got)
	}
	i := planOf(t, Intersect(Dynamic(), Static()), pc)
	if got := fmt.Sprint(i.IDs()); got != "[0]" {
		t.Errorf("intersect: %s", got)
	}
	empty := planOf(t, Intersect(), pc)
	if empty.NumInstrumented() != 0 {
		t.Errorf("empty intersect instruments %d", empty.NumInstrumented())
	}
}

func TestBudgetedKeepsTopKDeterministically(t *testing.T) {
	prog := fakeProgram(t)
	pc := NewPlanContext(prog, fakeInputs(), false)
	full := planOf(t, All(), pc)
	for k := 0; k <= len(prog.Branches)+1; k++ {
		s := Budgeted(All(), k)
		a := planOf(t, s, pc)
		b := planOf(t, s, pc)
		want := k
		if want > full.NumInstrumented() {
			want = full.NumInstrumented()
		}
		if a.NumInstrumented() != want {
			t.Errorf("k=%d: instruments %d", k, a.NumInstrumented())
		}
		if fmt.Sprint(a.IDs()) != fmt.Sprint(b.IDs()) {
			t.Errorf("k=%d: nondeterministic selection", k)
		}
		// The kept set must be a subset of the inner strategy's set.
		for _, id := range a.IDs() {
			if !full.Instrumented[id] {
				t.Errorf("k=%d: b%d not in inner set", k, id)
			}
		}
	}
	// Budgets must nest: the k-set is contained in the (k+1)-set, so a
	// budget sweep walks one monotone curve.
	prev := map[lang.BranchID]bool{}
	for k := 1; k <= len(prog.Branches); k++ {
		p := planOf(t, Budgeted(All(), k), pc)
		for id := range prev {
			if !p.Instrumented[id] {
				t.Errorf("k=%d dropped b%d kept at k=%d", k, id, k-1)
			}
		}
		prev = p.Instrumented
	}
}

func TestSampledDeterministicAndBounded(t *testing.T) {
	pc := NewPlanContext(fakeProgram(t), fakeInputs(), false)
	if p := planOf(t, Sampled(All(), 0), pc); p.NumInstrumented() != 0 {
		t.Errorf("rate 0 instruments %d", p.NumInstrumented())
	}
	if p := planOf(t, Sampled(All(), 1), pc); p.NumInstrumented() != 5 {
		t.Errorf("rate 1 instruments %d", p.NumInstrumented())
	}
	s := Sampled(All(), 0.5)
	a, b := planOf(t, s, pc), planOf(t, s, pc)
	if fmt.Sprint(a.IDs()) != fmt.Sprint(b.IDs()) {
		t.Error("sampling not deterministic")
	}
}

func TestStrategyErrorsWithoutReports(t *testing.T) {
	pc := NewPlanContext(fakeProgram(t), Inputs{}, false)
	for _, s := range []Strategy{Dynamic(), Static(), StaticResidue(),
		Union(Dynamic()), Budgeted(Static(), 2)} {
		if _, err := s.Plan(context.Background(), pc); err == nil {
			t.Errorf("%s: no error without analysis reports", s.Name())
		}
	}
	// All and None need no analysis.
	for _, s := range []Strategy{All(), None()} {
		if _, err := s.Plan(context.Background(), pc); err != nil {
			t.Errorf("%s: %v", s.Name(), err)
		}
	}
}

func TestStrategyHonorsContext(t *testing.T) {
	pc := NewPlanContext(fakeProgram(t), fakeInputs(), false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := All().Plan(ctx, pc); err == nil {
		t.Error("cancelled context must abort planning")
	}
}

func TestCostModelOrdering(t *testing.T) {
	prog := fakeProgram(t)
	in := fakeInputs()
	pc := NewPlanContext(prog, in, true)
	none := planOf(t, None(), pc)
	dyn := planOf(t, Dynamic(), pc)
	ds := planOf(t, Union(Dynamic(), StaticResidue()), pc)
	all := planOf(t, All(), pc)

	// Overhead rises with instrumentation; replay estimate falls.
	if !(none.EstimatedOverhead() < dyn.EstimatedOverhead() &&
		dyn.EstimatedOverhead() < ds.EstimatedOverhead() &&
		ds.EstimatedOverhead() < all.EstimatedOverhead()) {
		t.Errorf("overhead ordering: none=%.1f dyn=%.1f ds=%.1f all=%.1f",
			none.EstimatedOverhead(), dyn.EstimatedOverhead(),
			ds.EstimatedOverhead(), all.EstimatedOverhead())
	}
	if !(none.EstimatedReplayRuns() > dyn.EstimatedReplayRuns() &&
		dyn.EstimatedReplayRuns() > ds.EstimatedReplayRuns() &&
		ds.EstimatedReplayRuns() >= all.EstimatedReplayRuns()) {
		t.Errorf("replay ordering: none=%.1f dyn=%.1f ds=%.1f all=%.1f",
			none.EstimatedReplayRuns(), dyn.EstimatedReplayRuns(),
			ds.EstimatedReplayRuns(), all.EstimatedReplayRuns())
	}
	// A fully instrumented program needs exactly the base run.
	if all.EstimatedReplayRuns() != 1 {
		t.Errorf("all: estimated replay runs %.2f, want 1", all.EstimatedReplayRuns())
	}
	if !all.Cost.Modeled {
		t.Error("profiled estimate not marked modeled")
	}
	// Without a profile the estimate is structural, and says so.
	bare := NewPlanContext(prog, Inputs{}, false)
	if p := planOf(t, All(), bare); p.Cost.Modeled {
		t.Error("unprofiled estimate marked modeled")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	prog := fakeProgram(t)
	in := fakeInputs()
	base := BuildPlan(prog, MethodStatic, in, true)
	same := BuildPlan(prog, MethodStatic, in, true)
	if base.Fingerprint() != same.Fingerprint() {
		t.Error("identical plans hash differently")
	}
	noSys := BuildPlan(prog, MethodStatic, in, false)
	if base.Fingerprint() == noSys.Fingerprint() {
		t.Error("syscall flag not covered by fingerprint")
	}
	smaller := BuildPlan(prog, MethodDynamic, in, true)
	if base.Fingerprint() == smaller.Fingerprint() {
		t.Error("branch set not covered by fingerprint")
	}
	// A different program changes the hash even under the same branch set.
	other := &Plan{Instrumented: base.Instrumented, LogSyscalls: true, ProgHash: "deadbeef"}
	if base.Fingerprint() == other.Fingerprint() {
		t.Error("program hash not covered by fingerprint")
	}
}

func TestValidateForProgram(t *testing.T) {
	prog := fakeProgram(t)
	good := BuildPlan(prog, MethodAll, fakeInputs(), false)
	if err := good.ValidateForProgram(prog); err != nil {
		t.Fatal(err)
	}
	bad := &Plan{Instrumented: map[lang.BranchID]bool{99: true}}
	if err := bad.ValidateForProgram(prog); err == nil {
		t.Error("out-of-range branch ID accepted")
	}
	wrongProg := &Plan{Instrumented: map[lang.BranchID]bool{0: true}, ProgHash: "not-this-program"}
	if err := wrongProg.ValidateForProgram(prog); err == nil {
		t.Error("wrong program hash accepted")
	}
}
