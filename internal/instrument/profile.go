package instrument

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"sort"
	"time"

	"pathlog/internal/lang"
	"pathlog/internal/solver"
)

// A SearchProfile attributes the cost of one replay search to the branch
// sites that caused it. It is the observational half of the paper's
// feedback loop: the cost model prices plans *before* deployment from
// analysis-time hit counts, and the profile re-prices them *after* a
// developer-site search has shown where the fan-out actually happened.
// Refine promotes the guiltiest branches into the next plan generation and
// CalibrateCosts folds the observed rates back into the cost model, so the
// estimates the Frontier reports converge toward measured behavior.
//
// The profile lives in this package, not in internal/replay, because it is
// planner input: replay produces it (Result.Profile), Refine and
// CalibrateCosts consume it, and putting it next to the cost model keeps
// the dependency arrow pointing the way it already does (replay imports
// instrument).
type SearchProfile struct {
	// ProgHash and PlanFingerprint identify what was searched: the program
	// and the plan of the recording the search ran under. Refine refuses a
	// profile whose fingerprint disagrees with the plan it is refining.
	ProgHash        string `json:"prog_hash,omitempty"`
	PlanFingerprint string `json:"plan_fingerprint,omitempty"`
	// Generation echoes the searched plan's refinement generation.
	Generation int `json:"generation,omitempty"`
	// Runs is the number of completed search runs the profile aggregates
	// over (the denominator for per-run rates). Aborts counts the runs that
	// ended without reproducing; Reproduced reports the search outcome.
	Runs       int  `json:"runs"`
	Aborts     int  `json:"aborts"`
	Reproduced bool `json:"reproduced"`
	// Workers echoes the search's worker count. Per-branch aggregation is
	// identical for any worker count on a search that runs to exhaustion;
	// with an early winner, only WastedRuns depends on scheduling.
	Workers int `json:"workers"`
	// Solver aggregates the solver counters across all workers.
	Solver solver.Stats `json:"solver"`
	// Branches holds the per-site attribution. Keys are branch IDs that
	// queued at least one pending set: uninstrumented symbolic branches
	// (case-1 forks, the refinable blowup) and instrumented branches whose
	// forced-direction sets drove the productive §3.1 case-2b chain.
	Branches map[lang.BranchID]*BranchCost `json:"branches"`
}

// BranchCost is the search cost charged to one branch site.
type BranchCost struct {
	// Forks counts case-1 pending alternatives queued at this branch: each
	// is an uninstrumented symbolic execution whose other direction the
	// search may have to try. Forced case-2b sets are not forks.
	Forks int64 `json:"forks"`
	// AbortedRuns counts completed runs, seeded from a pending set that
	// originated at this branch, that ended without reproducing the bug.
	AbortedRuns int64 `json:"aborted_runs"`
	// WastedRuns is the subset of AbortedRuns that finished after the
	// search was already decided — speculative work a serial search would
	// not have started. Always 0 with one worker.
	WastedRuns int64 `json:"wasted_runs"`
	// SolverCalls and SolverTime charge the constraint solving spent on
	// pending sets originating at this branch (including unsat sets that
	// never became runs).
	SolverCalls int64         `json:"solver_calls"`
	SolverTime  time.Duration `json:"solver_time_ns"`
	// LoggedExecs counts replay executions of this instrumented branch that
	// consumed a log bit (§3.1 cases 2 and 3). Zero means the search never
	// even reached the branch under logging — absence of evidence, so the
	// demotion rule requires it to be positive.
	LoggedExecs int64 `json:"logged_execs,omitempty"`
	// Disagreements counts log bits at this branch that contradicted the
	// run's own direction: case-2b forced-direction sets and case-3b
	// mismatch aborts. A disagreement is exactly the moment the branch's
	// bit constrained the search; a branch whose bits were consumed but
	// never once disagreed (corpus-wide) is redundant at replay time and
	// becomes a demotion candidate (Demotable).
	Disagreements int64 `json:"disagreements,omitempty"`
}

// add merges o into c at weight w. Run-cost counters (forks, runs, solver
// effort) scale by the weight with round-half-up, but a nonzero charge
// never scales to silence — a branch the search paid for stays attributed
// however small its report's weight. Evidence counters (LoggedExecs,
// Disagreements) merge unscaled: they gate demotion by presence or
// absence, and presence evidence does not shrink with recency.
func (c *BranchCost) add(o *BranchCost, w float64) {
	c.Forks += scaleCount(o.Forks, w)
	c.AbortedRuns += scaleCount(o.AbortedRuns, w)
	c.WastedRuns += scaleCount(o.WastedRuns, w)
	c.SolverCalls += scaleCount(o.SolverCalls, w)
	c.SolverTime += time.Duration(scaleCount(int64(o.SolverTime), w))
	c.LoggedExecs += o.LoggedExecs
	c.Disagreements += o.Disagreements
}

// scaleCount scales one run-cost counter by a merge weight, rounding half
// up, with a floor of 1 for any nonzero input so down-weighting can shrink
// a charge but never erase it.
func scaleCount(v int64, w float64) int64 {
	if v == 0 || w == 1 {
		return v
	}
	s := int64(math.Round(float64(v) * w))
	if s < 1 {
		return 1
	}
	return s
}

// blowup is the branch's responsibility for search length, in runs. Runs
// are the paper's unit of debugging time, so aborted and wasted runs lead;
// forks and solver calls break ties (cost the search paid even when the
// resulting sets were unsat or unexplored).
func (c *BranchCost) blowup() (runs, forks, solves int64) {
	return c.AbortedRuns + c.WastedRuns, c.Forks, c.SolverCalls
}

// Branch returns the cost entry for id, or a zero entry if the search
// never charged it.
func (p *SearchProfile) Branch(id lang.BranchID) BranchCost {
	if c, ok := p.Branches[id]; ok {
		return *c
	}
	return BranchCost{}
}

// Merge folds another profile (e.g. from replaying a second recording under
// the same plan) into p. Identity fields must agree — Merge refuses to mix
// profiles from different plans — and an accumulator that has no identity
// yet (a zero value) adopts the source's, so the refusal also protects
// chains of merges.
func (p *SearchProfile) Merge(o *SearchProfile) error {
	return p.MergeWeighted(o, 1)
}

// MergeWeighted folds another profile into p at a report weight: a corpus
// merge charges each recording's search cost in proportion to how much that
// report should steer refinement (frequency × recency; see
// internal/corpus). Weight 1 is exactly Merge. Run-cost counters scale with
// round-half-up and a floor of 1 for nonzero charges; evidence counters
// (LoggedExecs, Disagreements) merge unscaled — see BranchCost.add.
// Scaling each source independently keeps the result identical however the
// sources are grouped into shards. Weights must be positive and finite.
func (p *SearchProfile) MergeWeighted(o *SearchProfile, weight float64) error {
	if o == nil {
		return nil
	}
	if weight <= 0 || math.IsInf(weight, 0) || math.IsNaN(weight) {
		return fmt.Errorf("instrument: merge weight %g is not a positive finite number", weight)
	}
	if p.PlanFingerprint != "" && o.PlanFingerprint != "" && p.PlanFingerprint != o.PlanFingerprint {
		return fmt.Errorf("instrument: cannot merge search profiles from different plans (%s vs %s)",
			p.PlanFingerprint, o.PlanFingerprint)
	}
	if p.PlanFingerprint == "" {
		p.PlanFingerprint = o.PlanFingerprint
		p.Generation = o.Generation
	}
	if p.ProgHash == "" {
		p.ProgHash = o.ProgHash
	}
	if o.Workers > p.Workers {
		p.Workers = o.Workers
	}
	// Runs scale with the same rule as the per-branch counters, so per-run
	// rates (ForkRate) stay weighted averages of the sources' rates.
	p.Runs += int(scaleCount(int64(o.Runs), weight))
	p.Aborts += int(scaleCount(int64(o.Aborts), weight))
	p.Reproduced = p.Reproduced || o.Reproduced
	p.Solver.Add(o.Solver)
	if p.Branches == nil {
		p.Branches = make(map[lang.BranchID]*BranchCost, len(o.Branches))
	}
	for id, bc := range o.Branches {
		if have, ok := p.Branches[id]; ok {
			have.add(bc, weight)
		} else {
			cp := BranchCost{}
			cp.add(bc, weight)
			p.Branches[id] = &cp
		}
	}
	return nil
}

// TopBlowup returns up to k branch IDs ranked by their blowup — the
// branches most responsible for search length — restricted to branches NOT
// in the instrumented set (promoting an already-logged branch buys
// nothing). Ranking is deterministic: aborted+wasted runs, then forks,
// then solver calls, then lower branch ID. Branches that charged nothing
// are never returned, so the result may be shorter than k.
func (p *SearchProfile) TopBlowup(k int, instrumented map[lang.BranchID]bool) []lang.BranchID {
	if k <= 0 || len(p.Branches) == 0 {
		return nil
	}
	type cand struct {
		id                  lang.BranchID
		runs, forks, solves int64
	}
	cands := make([]cand, 0, len(p.Branches))
	for id, bc := range p.Branches {
		if instrumented[id] {
			continue
		}
		runs, forks, solves := bc.blowup()
		if runs == 0 && forks == 0 && solves == 0 {
			continue
		}
		cands = append(cands, cand{id: id, runs: runs, forks: forks, solves: solves})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].runs != cands[j].runs {
			return cands[i].runs > cands[j].runs
		}
		if cands[i].forks != cands[j].forks {
			return cands[i].forks > cands[j].forks
		}
		if cands[i].solves != cands[j].solves {
			return cands[i].solves > cands[j].solves
		}
		return cands[i].id < cands[j].id
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]lang.BranchID, len(cands))
	for i, c := range cands {
		out[i] = c.id
	}
	return out
}

// Demotable returns the instrumented branches whose logged bits the
// profile proves redundant: branches the search exercised under logging
// (LoggedExecs > 0) whose bits never once disagreed with the run's own
// direction (Disagreements == 0). Every consumed bit at such a branch was
// implied by the rest of the path — dropping it wins back record overhead
// without removing a constraint the search ever used. Branches the profile
// never charged are NOT demotable: silence is absence of evidence, not
// evidence of redundancy. The result is sorted by branch ID, so the
// demotion decision (and the refined plan's fingerprint) is deterministic.
func (p *SearchProfile) Demotable(instrumented map[lang.BranchID]bool) []lang.BranchID {
	return p.DemotableAt(instrumented, 0)
}

// DemotableAt is the rate-thresholded variant of Demotable: an instrumented,
// exercised branch is a demotion candidate when its disagreement rate —
// Disagreements over LoggedExecs, both evidence counters the weighted merge
// leaves unscaled — is at most rate. Rate 0 (or negative) reproduces the
// strict zero-disagreement rule exactly. A positive rate trades a bounded
// chance of losing a constraint the search occasionally used for more
// overhead won back; the measured-acceptance gate downstream (CorpusBalance
// refusing demotions whose replay regresses) is what makes that trade safe
// to attempt.
func (p *SearchProfile) DemotableAt(instrumented map[lang.BranchID]bool, rate float64) []lang.BranchID {
	if rate < 0 {
		rate = 0
	}
	var out []lang.BranchID
	for id, bc := range p.Branches {
		if instrumented[id] && bc.LoggedExecs > 0 &&
			float64(bc.Disagreements) <= rate*float64(bc.LoggedExecs) {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ForkRate is the observed per-run rate of case-1 forks at id — the
// measured counterpart of the cost model's symRate for uninstrumented
// branches.
func (p *SearchProfile) ForkRate(id lang.BranchID) float64 {
	bc, ok := p.Branches[id]
	if !ok || p.Runs == 0 {
		return 0
	}
	return float64(bc.Forks) / float64(p.Runs)
}

// hashIDs renders a short deterministic tag for a promoted branch set, used
// in refined strategy names so distinct promotions cache as distinct plans.
func hashIDs(ids []lang.BranchID) string {
	h := fnv.New32a()
	for _, id := range ids {
		fmt.Fprintf(h, "b%d,", id)
	}
	return fmt.Sprintf("%08x", h.Sum32())
}

// Save writes the profile to path as indented JSON, the artifact
// cmd/replay -profile-out and the harness's adaptive experiment emit.
func (p *SearchProfile) Save(path string) error {
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return fmt.Errorf("instrument: encode search profile: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadSearchProfile reads a profile saved by Save.
func LoadSearchProfile(path string) (*SearchProfile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var p SearchProfile
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("instrument: decode search profile: %w", err)
	}
	return &p, nil
}
