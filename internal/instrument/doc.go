// Package instrument decides which branch locations to log and implements
// the branch logger that an instrumented build runs with.
//
// The four methods of §2.3 are reproduced literally:
//
//	dynamic         branches labeled symbolic by the concolic analysis
//	static          branches labeled symbolic by the static analysis
//	dynamic+static  dynamic's labels where visited, static's elsewhere
//	all             every branch location
//
// The developer retains the plan (the instrumented-branch set); the replay
// engine needs it to interpret the bitvector (§3.1).
//
// Beyond the paper's fixed methods, the package exposes the decision as a
// composable Strategy algebra: built-ins (Dynamic, Static, StaticResidue,
// All, None) compose through combinators (Union, Intersect, Budgeted,
// Sampled), and each legacy Method is a fixed composition reproduced
// exactly by StrategyForMethod. A CostModel built from concolic per-branch
// hit counts prices every plan in the paper's two currencies — expected
// logged bits per user-site run and expected replay search runs — and
// CalibrateCosts corrects those prices with rates observed by a real
// developer-site search (SearchProfile), which Refine also consumes to
// derive the next plan generation.
//
// Plans are durable deployment artifacts. Fingerprint gives a plan a
// content identity (program hash + branch set + syscall flag) that records
// and recordings are stamped with; Save and LoadPlan round-trip the full
// envelope through JSON, verifying the fingerprint on load; lineage
// (Plan.Generation, Plan.Parent) travels with the envelope so refinement
// chains stay auditable across sites. A damaged plan file fails LoadPlan
// with an error wrapping ErrPlanCorrupt, which the plan store
// (internal/store) uses to skip and report damaged entries during scans.
package instrument
