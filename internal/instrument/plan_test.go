package instrument

import (
	"testing"

	"pathlog/internal/concolic"
	"pathlog/internal/lang"
	"pathlog/internal/static"
)

// fakeProgram builds a program with n branches for plan-combination tests.
func fakeProgram(t *testing.T) *lang.Program {
	t.Helper()
	u, err := lang.ParseUnit("t", lang.RegionApp, `
int main() {
	char a[4];
	getarg(0, a, 4);
	if (a[0] == 'x') { }   // b0
	if (a[1] == 'y') { }   // b1
	int i;
	for (i = 0; i < 3; i++) { }  // b2
	while (i > 0) { i--; }       // b3
	if (a[2] == 'z') { }   // b4
	return 0;
}
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := lang.Link([]*lang.Unit{u})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Branches) != 5 {
		t.Fatalf("want 5 branches, got %d", len(p.Branches))
	}
	return p
}

func labels(m map[lang.BranchID]concolic.Label) *concolic.Report {
	return &concolic.Report{Labels: m}
}

func statics(ids ...lang.BranchID) *static.Report {
	m := make(map[lang.BranchID]bool)
	for _, id := range ids {
		m[id] = true
	}
	return &static.Report{SymbolicBranches: m}
}

func TestMethodAll(t *testing.T) {
	p := fakeProgram(t)
	plan := BuildPlan(p, MethodAll, Inputs{}, true)
	if plan.NumInstrumented() != 5 {
		t.Fatalf("all: %d", plan.NumInstrumented())
	}
	if !plan.LogSyscalls {
		t.Error("syscall logging flag lost")
	}
}

func TestMethodNone(t *testing.T) {
	p := fakeProgram(t)
	plan := BuildPlan(p, MethodNone, Inputs{}, true)
	if plan.NumInstrumented() != 0 {
		t.Fatalf("none: %d", plan.NumInstrumented())
	}
	if plan.LogSyscalls {
		t.Error("none must not log syscalls")
	}
}

func TestMethodDynamic(t *testing.T) {
	p := fakeProgram(t)
	dyn := labels(map[lang.BranchID]concolic.Label{
		0: concolic.Symbolic,
		1: concolic.Symbolic,
		2: concolic.Concrete,
		// 3, 4 unvisited
	})
	plan := BuildPlan(p, MethodDynamic, Inputs{Dynamic: dyn}, true)
	want := map[lang.BranchID]bool{0: true, 1: true}
	for _, b := range p.Branches {
		if plan.Instrumented[b.ID] != want[b.ID] {
			t.Errorf("b%d: %v", b.ID, plan.Instrumented[b.ID])
		}
	}
}

func TestMethodStatic(t *testing.T) {
	p := fakeProgram(t)
	plan := BuildPlan(p, MethodStatic, Inputs{Static: statics(0, 1, 4, 2)}, true)
	if plan.NumInstrumented() != 4 {
		t.Fatalf("static: %d", plan.NumInstrumented())
	}
}

func TestMethodDynamicStatic(t *testing.T) {
	p := fakeProgram(t)
	// Dynamic: b0 symbolic, b2 concrete (overriding static), b1/b3/b4
	// unvisited. Static: b0, b1, b2 symbolic.
	dyn := labels(map[lang.BranchID]concolic.Label{
		0: concolic.Symbolic,
		2: concolic.Concrete,
	})
	plan := BuildPlan(p, MethodDynamicStatic, Inputs{Dynamic: dyn, Static: statics(0, 1, 2)}, true)
	want := map[lang.BranchID]bool{
		0: true,  // dynamic symbolic
		1: true,  // unvisited, static symbolic
		2: false, // dynamic concrete overrides static symbolic (§2.3)
		3: false, // unvisited, static concrete
		4: false, // unvisited, static concrete
	}
	for _, b := range p.Branches {
		if plan.Instrumented[b.ID] != want[b.ID] {
			t.Errorf("b%d: got %v want %v", b.ID, plan.Instrumented[b.ID], want[b.ID])
		}
	}
}

func TestPlanIDsSorted(t *testing.T) {
	p := fakeProgram(t)
	plan := BuildPlan(p, MethodStatic, Inputs{Static: statics(4, 0, 2)}, false)
	ids := plan.IDs()
	if len(ids) != 3 || ids[0] != 0 || ids[1] != 2 || ids[2] != 4 {
		t.Fatalf("ids: %v", ids)
	}
}

func TestInstrumentedIn(t *testing.T) {
	app, err := lang.ParseUnit("a", lang.RegionApp, `
int main() { if (argcount() > 0) { } return lib1(); }
`)
	if err != nil {
		t.Fatal(err)
	}
	lib, err := lang.ParseUnit("l", lang.RegionLib, `
int lib1() { int i = 0; while (i < 2) { i++; } return i; }
`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := lang.Link([]*lang.Unit{app, lib})
	if err != nil {
		t.Fatal(err)
	}
	plan := BuildPlan(p, MethodAll, Inputs{}, false)
	if plan.InstrumentedIn(p, lang.RegionApp) != 1 || plan.InstrumentedIn(p, lang.RegionLib) != 1 {
		t.Fatalf("region counts: app=%d lib=%d",
			plan.InstrumentedIn(p, lang.RegionApp), plan.InstrumentedIn(p, lang.RegionLib))
	}
}

func TestMethodString(t *testing.T) {
	names := map[Method]string{
		MethodNone: "none", MethodDynamic: "dynamic", MethodStatic: "static",
		MethodDynamicStatic: "dynamic+static", MethodAll: "all branches",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d: %q", m, m.String())
		}
	}
}
