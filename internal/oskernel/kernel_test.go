package oskernel

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestFileReadWrite(t *testing.T) {
	k := New(Config{Files: map[string][]byte{"f": []byte("hello")}})
	fd := k.Open("f")
	if fd < 0 {
		t.Fatal("open failed")
	}
	r := k.Read(fd, 3)
	if r.N != 3 || string(r.Data) != "hel" || r.Stream != "file:f" || r.Off != 0 {
		t.Fatalf("read1: %+v", r)
	}
	r = k.Read(fd, 10)
	if r.N != 2 || string(r.Data) != "lo" || r.Off != 3 {
		t.Fatalf("read2: %+v", r)
	}
	r = k.Read(fd, 10)
	if r.N != 0 {
		t.Fatalf("expected EOF, got %+v", r)
	}
	if k.Close(fd) != 0 || k.Close(fd) != -1 {
		t.Error("close semantics")
	}
	if k.Open("missing") != -1 {
		t.Error("open of missing file should fail")
	}
	if k.Read(999, 1).N != -1 {
		t.Error("read of bad fd should fail")
	}
	// Files are read-only.
	fd2 := k.Open("f")
	if k.Write(fd2, []byte("x")) != -1 {
		t.Error("file write should fail")
	}
}

func TestStdoutCapture(t *testing.T) {
	k := New(Config{})
	k.Write(FDStdout, []byte("ab"))
	k.Write(FDStderr, []byte("cd"))
	if string(k.Stdout()) != "abcd" {
		t.Fatalf("stdout: %q", k.Stdout())
	}
	if k.Read(FDStdin, 4).N != 0 {
		t.Error("stdin should be empty")
	}
}

func TestServerLifecycle(t *testing.T) {
	k := New(Config{
		Conns: []ConnSpec{
			{Payload: []byte("one")},
			{Payload: []byte("two"), ArrivalTick: 0},
		},
		ListenPort:            80,
		CrashSignalAfterConns: true,
	})
	lfd := k.Listen(80)
	if lfd < 0 {
		t.Fatal("listen failed")
	}
	if k.Listen(81) != -1 {
		t.Error("second listen should fail")
	}

	// Listen socket is ready (pending conn); no signal yet.
	if k.SignalPending() {
		t.Fatal("signal too early")
	}
	ready := k.SelectReady(8)
	if len(ready) != 1 || ready[0] != lfd {
		t.Fatalf("ready: %v", ready)
	}

	c0 := k.Accept(lfd)
	if c0 < 0 {
		t.Fatal("accept failed")
	}
	r := k.Read(c0, 16)
	if r.N != 3 || string(r.Data) != "one" || r.Stream != ConnStream(0) {
		t.Fatalf("conn read: %+v", r)
	}
	if k.Write(c0, []byte("resp")) != 4 {
		t.Error("conn write")
	}
	if string(k.ConnWrites(0)) != "resp" {
		t.Errorf("conn writes: %q", k.ConnWrites(0))
	}

	c1 := k.Accept(lfd)
	if c1 < 0 {
		t.Fatal("accept 2 failed")
	}
	if k.Accept(lfd) != -1 {
		t.Error("accept beyond script should fail")
	}
	if k.SignalPending() {
		t.Fatal("signal before consumption")
	}
	k.Read(c1, 16)
	// EOF read marks consumption complete.
	k.Read(c0, 16)
	if !k.SignalPending() {
		t.Fatal("signal should fire after all conns consumed")
	}
	if !k.SignalPending() {
		t.Fatal("signal should stay fired")
	}
}

func TestArrivalTicks(t *testing.T) {
	k := New(Config{
		Conns:      []ConnSpec{{Payload: []byte("x"), ArrivalTick: 100}},
		ListenPort: 80,
		Mode:       ModeRecord,
	})
	lfd := k.Listen(80)
	if got := k.Accept(lfd); got != -1 {
		t.Fatalf("accept before arrival: %d", got)
	}
	if len(k.SelectReady(4)) != 0 {
		t.Error("nothing should be ready before arrival")
	}
	for k.Tick() < 100 {
		k.SelectReady(4)
	}
	if got := k.Accept(lfd); got < 0 {
		t.Fatalf("accept after arrival: %d", got)
	}
}

func TestShortReadsDeterministic(t *testing.T) {
	mk := func() []int64 {
		k := New(Config{
			Conns:          []ConnSpec{{Payload: bytes.Repeat([]byte("a"), 64)}},
			ListenPort:     80,
			Mode:           ModeRecord,
			Seed:           7,
			ShortReadDenom: 2,
		})
		lfd := k.Listen(80)
		fd := k.Accept(lfd)
		var counts []int64
		for {
			r := k.Read(fd, 16)
			if r.N <= 0 {
				break
			}
			counts = append(counts, r.N)
		}
		return counts
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic lengths: %v vs %v", a, b)
	}
	short := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic counts: %v vs %v", a, b)
		}
		if a[i] < 16 {
			short = true
		}
	}
	if !short {
		t.Error("expected at least one short read with denom=2")
	}
}

func TestSyscallLogRecordReplay(t *testing.T) {
	log := NewSyscallLog()
	rec := New(Config{
		Conns:          []ConnSpec{{Payload: bytes.Repeat([]byte("b"), 32)}},
		ListenPort:     80,
		Mode:           ModeRecord,
		Seed:           3,
		ShortReadDenom: 2,
		LogSyscalls:    true,
		Log:            log,
	})
	lfd := rec.Listen(80)
	rec.SelectReady(4)
	fd := rec.Accept(lfd)
	var recCounts []int64
	for {
		r := rec.Read(fd, 8)
		if r.N <= 0 {
			break
		}
		recCounts = append(recCounts, r.N)
	}
	if log.NumReads() == 0 || log.NumSelects() == 0 {
		t.Fatalf("log empty: %d reads %d selects", log.NumReads(), log.NumSelects())
	}
	if log.SizeBytes() <= 0 {
		t.Error("log size should be positive")
	}

	// Replay: served counts must match recorded ones.
	log.Rewind()
	rep := New(Config{
		Conns:      []ConnSpec{{Payload: bytes.Repeat([]byte("c"), 32)}},
		ListenPort: 80,
		Mode:       ModeReplayLogged,
		Log:        log,
	})
	lfd = rep.Listen(80)
	rep.SelectReady(4)
	fd = rep.Accept(lfd)
	for i := range recCounts {
		r := rep.Read(fd, 8)
		if r.N != recCounts[i] {
			t.Fatalf("replay read %d: got %d want %d", i, r.N, recCounts[i])
		}
	}
}

// scriptModel forces model-driven results.
type scriptModel struct {
	counts []int64
	ready  [][]int
}

func (m *scriptModel) ReadCount(stream string, seq int, max int64) int64 {
	if seq < len(m.counts) {
		v := m.counts[seq]
		if v > max {
			return max
		}
		return v
	}
	return max
}

func (m *scriptModel) SelectReady(seq int, candidates []int) []int {
	if seq < len(m.ready) {
		var out []int
		for _, want := range m.ready[seq] {
			for _, c := range candidates {
				if c == want {
					out = append(out, c)
				}
			}
		}
		return out
	}
	return candidates
}

func TestModelMode(t *testing.T) {
	model := &scriptModel{counts: []int64{2, 1}}
	k := New(Config{
		Conns:      []ConnSpec{{Payload: []byte("abcdef")}},
		ListenPort: 80,
		Mode:       ModeReplayModel,
		Model:      model,
	})
	lfd := k.Listen(80)
	fd := k.Accept(lfd)
	if r := k.Read(fd, 6); r.N != 2 || string(r.Data) != "ab" {
		t.Fatalf("model read 1: %+v", r)
	}
	if r := k.Read(fd, 6); r.N != 1 || string(r.Data) != "c" {
		t.Fatalf("model read 2: %+v", r)
	}
	if r := k.Read(fd, 6); r.N != 3 {
		t.Fatalf("model read 3 (default=max): %+v", r)
	}
}

func TestSelectRotationLogged(t *testing.T) {
	// With rotation on, the select log must reproduce ready-order exactly.
	mk := func(mode Mode, log *SyscallLog) [][]int {
		k := New(Config{
			Conns: []ConnSpec{
				{Payload: []byte("aaaa")},
				{Payload: []byte("bbbb")},
				{Payload: []byte("cccc")},
			},
			ListenPort:        80,
			Mode:              mode,
			Seed:              11,
			RotateSelectOrder: true,
			LogSyscalls:       mode == ModeRecord,
			Log:               log,
		})
		lfd := k.Listen(80)
		k.Accept(lfd)
		k.Accept(lfd)
		k.Accept(lfd)
		var orders [][]int
		for i := 0; i < 5; i++ {
			orders = append(orders, k.SelectReady(8))
		}
		return orders
	}
	log := NewSyscallLog()
	recOrders := mk(ModeRecord, log)
	log.Rewind()
	repOrders := mk(ModeReplayLogged, log)
	for i := range recOrders {
		if len(recOrders[i]) != len(repOrders[i]) {
			t.Fatalf("select %d: %v vs %v", i, recOrders[i], repOrders[i])
		}
		for j := range recOrders[i] {
			if recOrders[i][j] != repOrders[i][j] {
				t.Fatalf("select %d order: %v vs %v", i, recOrders[i], repOrders[i])
			}
		}
	}
}

func TestStreamNames(t *testing.T) {
	if ArgStream(2) != "arg2" || FileStream("x") != "file:x" || ConnStream(0) != "conn0" {
		t.Error("stream naming changed; trace coordinates depend on these")
	}
}

// TestQuickReadNeverOverReturns property-checks that reads never return more
// bytes than requested or than remain.
func TestQuickReadNeverOverReturns(t *testing.T) {
	f := func(payload []byte, req uint8, seed int64) bool {
		if len(payload) == 0 {
			payload = []byte("x")
		}
		k := New(Config{
			Conns:          []ConnSpec{{Payload: payload}},
			ListenPort:     80,
			Mode:           ModeRecord,
			Seed:           seed,
			ShortReadDenom: 3,
		})
		lfd := k.Listen(80)
		fd := k.Accept(lfd)
		remaining := int64(len(payload))
		n := int64(req%32) + 1
		for {
			r := k.Read(fd, n)
			if r.N < 0 {
				return false
			}
			if r.N == 0 {
				return remaining == 0
			}
			if r.N > n || r.N > remaining {
				return false
			}
			remaining -= r.N
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
