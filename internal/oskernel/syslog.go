package oskernel

// SyscallLog records the results of nondeterministic system calls during an
// instrumented run and serves them back during replay (§2.3 "Logging system
// calls"). Only results are stored — read counts and select ready sets —
// never the data bytes, so no user input leaves the machine.
//
// Reads and selects are kept in separate queues. During replay the engine
// may wander onto a wrong path and issue syscalls out of order; per-kind
// queues keep consumption aligned well enough that the branch-log mismatch
// aborts the run before the skew matters.
type SyscallLog struct {
	reads     []int64
	selects   [][]int
	readPos   int
	selectPos int
}

// NewSyscallLog returns an empty log ready for recording.
func NewSyscallLog() *SyscallLog { return &SyscallLog{} }

// Snapshot exports the recorded results for serialization.
func (l *SyscallLog) Snapshot() (reads []int64, selects [][]int) {
	reads = append([]int64(nil), l.reads...)
	for _, s := range l.selects {
		selects = append(selects, append([]int(nil), s...))
	}
	return reads, selects
}

// SyscallLogFromData reconstructs a log from a Snapshot, rewound for replay.
func SyscallLogFromData(reads []int64, selects [][]int) *SyscallLog {
	l := &SyscallLog{}
	l.reads = append(l.reads, reads...)
	for _, s := range selects {
		l.selects = append(l.selects, append([]int(nil), s...))
	}
	return l
}

func (l *SyscallLog) appendRead(n int64) { l.reads = append(l.reads, n) }

func (l *SyscallLog) appendSelect(ready []int) {
	cp := append([]int{}, ready...)
	l.selects = append(l.selects, cp)
}

func (l *SyscallLog) nextRead() (int64, bool) {
	if l.readPos >= len(l.reads) {
		return 0, false
	}
	v := l.reads[l.readPos]
	l.readPos++
	return v, true
}

func (l *SyscallLog) nextSelect() ([]int, bool) {
	if l.selectPos >= len(l.selects) {
		return nil, false
	}
	v := l.selects[l.selectPos]
	l.selectPos++
	return v, true
}

// Rewind resets replay cursors to the beginning; the replay engine calls it
// before every new run.
func (l *SyscallLog) Rewind() { l.readPos, l.selectPos = 0, 0 }

// Clone returns a view over the same recorded results with fresh, independent
// replay cursors. The backing result slices are shared and must no longer be
// appended to; parallel replay runs each consume their own clone.
func (l *SyscallLog) Clone() *SyscallLog {
	return &SyscallLog{reads: l.reads, selects: l.selects}
}

// NumReads returns how many read() results were recorded.
func (l *SyscallLog) NumReads() int { return len(l.reads) }

// NumSelects returns how many select() results were recorded.
func (l *SyscallLog) NumSelects() int { return len(l.selects) }

// SizeBytes estimates the storage cost of the log: 2 bytes per read count
// (counts are small) and 1 byte per fd in each select set plus a 1-byte
// length, matching the paper's observation that syscall-result logging adds
// only marginally to the branch log.
func (l *SyscallLog) SizeBytes() int64 {
	total := int64(2 * len(l.reads))
	for _, s := range l.selects {
		total += 1 + int64(len(s))
	}
	return total
}
