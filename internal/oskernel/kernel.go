// Package oskernel simulates the operating-system environment that MiniC
// programs run against: argument vectors, an in-memory file system, listening
// sockets with scripted client connections, and the select/accept/read/write
// system calls.
//
// The paper's experiments depend on two OS behaviours that this package
// reproduces deterministically:
//
//   - Nondeterminism. select() ready-set ordering and read() short-counts
//     vary between runs. A seeded PRNG injects both, so recorded executions
//     contain genuine nondeterminism that replay must either read back from
//     the syscall-result log or search for (§2.3, §3.3, Tables 5 and 8).
//
//   - Selective syscall-result logging. In record mode the kernel can log
//     the results (never the data) of read/select/accept; in replay mode it
//     can serve results back from such a log. Data bytes are never logged —
//     the user's input stays private.
//
// The kernel itself is fully concrete. Symbolic marking of input bytes is
// layered on top by the VM through stream coordinates: every byte the kernel
// hands to the program is labeled with (stream, offset), and the execution
// engine decides which streams are symbolic program input.
package oskernel

import (
	"fmt"
	"math/rand"
	"sort"
)

// Mode selects how the kernel resolves nondeterministic syscall results.
type Mode int

// Kernel modes.
const (
	// ModeRecord runs with injected nondeterminism, optionally logging
	// syscall results. This is the "user site" mode.
	ModeRecord Mode = iota
	// ModeReplayLogged serves nondeterministic results from a syscall log.
	ModeReplayLogged
	// ModeReplayModel resolves nondeterministic results from a ResultModel
	// callback (the replay engine supplies symbolic-variable-backed values).
	ModeReplayModel
)

// Well-known file descriptors.
const (
	FDStdin  = 0
	FDStdout = 1
	FDStderr = 2
)

// Flags for Open (subset).
const (
	ORdOnly = 0
	OWrOnly = 1
)

// ConnSpec scripts one client connection for server workloads.
type ConnSpec struct {
	// Payload is the request bytes the client sends (the seed content for
	// symbolic replay).
	Payload []byte
	// ArrivalTick is the kernel tick at which the connection appears on the
	// listening socket.
	ArrivalTick int64
}

// Config describes the simulated environment for one run.
type Config struct {
	// Args is the argument vector (argv[1:]; the program name is implicit).
	Args [][]byte
	// Files maps path names to file contents.
	Files map[string][]byte
	// FileOrder lists Files keys in declaration order, for SymbolicFS.
	FileOrder []string
	// SymbolicFS emulates KLEE's symbolic filesystem model: open() calls
	// succeed against the declared files in declaration order regardless of
	// the path argument. Without it, a symbolic file name could never be
	// found by search (there is no branch constraining its bytes), which is
	// exactly why KLEE-based systems model the FS this way.
	SymbolicFS bool
	// Conns scripts client connections, in arrival order.
	Conns []ConnSpec
	// ListenPort is the port the program is expected to listen on; 0 when
	// the workload has no server component.
	ListenPort int
	// Seed drives injected nondeterminism.
	Seed int64
	// ShortReadDenom injects short reads: each read returns roughly half
	// the available bytes with probability 1/ShortReadDenom. 0 disables.
	ShortReadDenom int
	// RotateSelectOrder shuffles select() ready ordering pseudo-randomly.
	RotateSelectOrder bool
	// CrashSignalAfterConns delivers a crash signal (the SIGSEGV analogue
	// from §5.3) once every scripted connection has been fully consumed.
	CrashSignalAfterConns bool

	// Mode selects record or replay behaviour.
	Mode Mode
	// Log collects syscall results in ModeRecord when LogSyscalls is true,
	// and supplies them in ModeReplayLogged.
	Log *SyscallLog
	// LogSyscalls enables syscall-result logging in ModeRecord.
	LogSyscalls bool
	// Model resolves nondeterministic results in ModeReplayModel.
	Model ResultModel
}

// ResultModel lets the replay engine supply nondeterministic syscall results
// (backed by symbolic variables) when no syscall log is available.
type ResultModel interface {
	// ReadCount picks the byte count returned by the seq-th read() on the
	// given stream. max is the requested count clamped to stream capacity.
	ReadCount(stream string, seq int, max int64) int64
	// SelectReady picks the subset of candidate fds reported ready by the
	// seq-th select(). Order matters; fds not in the result stay pending.
	SelectReady(seq int, candidates []int) []int
}

// fdKind classifies descriptors.
type fdKind int

const (
	fdFile fdKind = iota
	fdListen
	fdConn
	fdStd
)

type fileDesc struct {
	kind   fdKind
	path   string // files
	data   []byte // file contents or connection payload
	off    int64
	conn   int // connection index for fdConn
	closed bool
	wbuf   []byte // bytes written to a connection (responses)
}

// Kernel is one simulated OS instance. It is single-threaded, matching the
// paper's sequential-execution scope, and is not safe for concurrent use.
type Kernel struct {
	cfg  Config
	rng  *rand.Rand
	fds  map[int]*fileDesc
	next int
	tick int64

	listenFD    int
	nextConn    int // next scripted connection to hand to accept()
	connFDs     []int
	consumed    []bool // per-connection: payload fully read
	signalFired bool

	stdout []byte

	readSeq   int
	selectSeq int
	acceptSeq int
	openSeq   int

	// Counters for reports.
	NSyscalls int64
}

// New creates a kernel for one program run.
func New(cfg Config) *Kernel {
	k := &Kernel{
		cfg:      cfg,
		fds:      make(map[int]*fileDesc),
		next:     3,
		listenFD: -1,
		consumed: make([]bool, len(cfg.Conns)),
	}
	k.fds[FDStdin] = &fileDesc{kind: fdStd}
	k.fds[FDStdout] = &fileDesc{kind: fdStd}
	k.fds[FDStderr] = &fileDesc{kind: fdStd}
	return k
}

// rand returns the nondeterminism source, created on first draw. Only record
// mode ever draws from it; replay runs are fully scripted, and skipping the
// generator's seeding (a 607-word warm-up) is a measurable per-run saving.
func (k *Kernel) rand() *rand.Rand {
	if k.rng == nil {
		k.rng = rand.New(rand.NewSource(k.cfg.Seed))
	}
	return k.rng
}

// Args returns the argument vector.
func (k *Kernel) Args() [][]byte { return k.cfg.Args }

// ArgStream returns the input-stream coordinate name for argv[i].
func ArgStream(i int) string { return fmt.Sprintf("arg%d", i) }

// FileStream returns the input-stream coordinate name for a file path.
func FileStream(path string) string { return "file:" + path }

// ConnStream returns the input-stream coordinate name for connection i.
func ConnStream(i int) string { return fmt.Sprintf("conn%d", i) }

// Stdout returns everything the program wrote to fd 1.
func (k *Kernel) Stdout() []byte { return k.stdout }

// Tick returns the current kernel tick (advanced by every syscall).
func (k *Kernel) Tick() int64 { return k.tick }

func (k *Kernel) step() { k.tick++; k.NSyscalls++ }

func (k *Kernel) allocFD(d *fileDesc) int {
	fd := k.next
	k.next++
	k.fds[fd] = d
	return fd
}

// Open opens a file by path. Returns the new fd, or -1 when the path does
// not exist. Under SymbolicFS, opens are served from the declared files in
// declaration order, ignoring the path (the KLEE symbolic-FS model).
func (k *Kernel) Open(path string) int {
	k.step()
	if k.cfg.SymbolicFS {
		if k.openSeq >= len(k.cfg.FileOrder) {
			return -1
		}
		name := k.cfg.FileOrder[k.openSeq]
		k.openSeq++
		return k.allocFD(&fileDesc{kind: fdFile, path: name, data: k.cfg.Files[name]})
	}
	data, ok := k.cfg.Files[path]
	if !ok {
		return -1
	}
	return k.allocFD(&fileDesc{kind: fdFile, path: path, data: data})
}

// Close closes a descriptor. Returns 0, or -1 for a bad fd.
func (k *Kernel) Close(fd int) int {
	k.step()
	d, ok := k.fds[fd]
	if !ok || d.closed {
		return -1
	}
	d.closed = true
	return 0
}

// ReadResult carries one read()'s outcome plus the input-stream coordinates
// of the returned bytes so the VM can mark them symbolic.
type ReadResult struct {
	N      int64  // -1 error, 0 EOF, >0 bytes
	Data   []byte // len(Data) == N when N > 0
	Stream string // "" when the bytes are not program input
	Off    int64  // offset of Data[0] within Stream
}

// Read reads up to n bytes from fd.
func (k *Kernel) Read(fd int, n int64) ReadResult {
	k.step()
	d, ok := k.fds[fd]
	if !ok || d.closed || n < 0 {
		return ReadResult{N: -1}
	}
	switch d.kind {
	case fdStd:
		return ReadResult{N: 0} // no interactive stdin in the harness
	case fdFile, fdConn:
		avail := int64(len(d.data)) - d.off
		if avail <= 0 {
			if d.kind == fdConn {
				k.markConsumed(d.conn)
			}
			return ReadResult{N: 0}
		}
		want := n
		if want > avail {
			want = avail
		}
		count := k.resolveReadCount(d, want)
		if count < 0 {
			return ReadResult{N: -1}
		}
		if count == 0 {
			return ReadResult{N: 0}
		}
		if count > avail {
			count = avail
		}
		stream := ""
		switch d.kind {
		case fdFile:
			stream = FileStream(d.path)
		case fdConn:
			stream = ConnStream(d.conn)
		}
		res := ReadResult{
			N:      count,
			Data:   d.data[d.off : d.off+count],
			Stream: stream,
			Off:    d.off,
		}
		d.off += count
		if d.kind == fdConn && d.off >= int64(len(d.data)) {
			k.markConsumed(d.conn)
		}
		return res
	}
	return ReadResult{N: -1}
}

// resolveReadCount decides how many bytes a read returns, according to mode.
func (k *Kernel) resolveReadCount(d *fileDesc, want int64) int64 {
	seq := k.readSeq
	k.readSeq++
	switch k.cfg.Mode {
	case ModeRecord:
		count := want
		if k.cfg.ShortReadDenom > 0 && d.kind == fdConn &&
			k.rand().Intn(k.cfg.ShortReadDenom) == 0 && want > 1 {
			count = want / 2
		}
		if k.cfg.LogSyscalls && k.cfg.Log != nil {
			k.cfg.Log.appendRead(count)
		}
		return count
	case ModeReplayLogged:
		if k.cfg.Log != nil {
			if v, ok := k.cfg.Log.nextRead(); ok {
				if v > want {
					v = want
				}
				return v
			}
		}
		return want // log exhausted: a diverged path; defaults are fine
	case ModeReplayModel:
		if k.cfg.Model != nil {
			stream := ""
			if d.kind == fdConn {
				stream = ConnStream(d.conn)
			} else {
				stream = FileStream(d.path)
			}
			v := k.cfg.Model.ReadCount(stream, seq, want)
			if v > want {
				v = want
			}
			return v
		}
		return want
	}
	return want
}

// Write writes bytes to fd. Stdout/stderr are captured; connection writes are
// buffered per connection (the simulated client discards them).
func (k *Kernel) Write(fd int, data []byte) int64 {
	k.step()
	d, ok := k.fds[fd]
	if !ok || d.closed {
		return -1
	}
	switch d.kind {
	case fdStd:
		if fd == FDStdout || fd == FDStderr {
			k.stdout = append(k.stdout, data...)
		}
		return int64(len(data))
	case fdConn:
		d.wbuf = append(d.wbuf, data...)
		return int64(len(data))
	case fdFile:
		// Files are read-only in the harness.
		return -1
	}
	return -1
}

// Listen creates the listening socket. Only one per kernel.
func (k *Kernel) Listen(port int) int {
	k.step()
	if k.listenFD >= 0 {
		return -1
	}
	k.listenFD = k.allocFD(&fileDesc{kind: fdListen})
	return k.listenFD
}

// Accept accepts the next pending scripted connection, or returns -1 when
// none has arrived yet.
func (k *Kernel) Accept(lfd int) int {
	k.step()
	k.acceptSeq++
	d, ok := k.fds[lfd]
	if !ok || d.kind != fdListen || d.closed {
		return -1
	}
	if k.nextConn >= len(k.cfg.Conns) {
		return -1
	}
	spec := k.cfg.Conns[k.nextConn]
	if k.cfg.Mode == ModeRecord && spec.ArrivalTick > k.tick {
		return -1
	}
	fd := k.allocFD(&fileDesc{kind: fdConn, data: spec.Payload, conn: k.nextConn})
	k.connFDs = append(k.connFDs, fd)
	k.nextConn++
	return fd
}

// SelectReady reports the descriptors that are ready for reading: the listen
// socket when a connection is pending, and any connection with unread bytes.
// In record mode the order may be rotated by the nondeterminism source and
// the result is optionally logged; in replay modes the result comes from the
// log or the model.
func (k *Kernel) SelectReady(max int) []int {
	k.step()
	seq := k.selectSeq
	k.selectSeq++

	candidates := k.readyCandidates()
	var ready []int
	switch k.cfg.Mode {
	case ModeRecord:
		ready = candidates
		if k.cfg.RotateSelectOrder && len(ready) > 1 {
			rot := k.rand().Intn(len(ready))
			ready = append(append([]int{}, ready[rot:]...), ready[:rot]...)
		}
		if k.cfg.LogSyscalls && k.cfg.Log != nil {
			k.cfg.Log.appendSelect(ready)
		}
	case ModeReplayLogged:
		if k.cfg.Log != nil {
			if v, ok := k.cfg.Log.nextSelect(); ok {
				// Serve the logged set, dropping fds that do not exist in
				// this run (diverged path).
				for _, fd := range v {
					if _, exists := k.fds[fd]; exists {
						ready = append(ready, fd)
					}
				}
				break
			}
		}
		ready = candidates
	case ModeReplayModel:
		if k.cfg.Model != nil {
			ready = k.cfg.Model.SelectReady(seq, candidates)
		} else {
			ready = candidates
		}
	}
	if len(ready) > max {
		ready = ready[:max]
	}
	return ready
}

// readyCandidates computes which fds could be reported ready, in fd order.
func (k *Kernel) readyCandidates() []int {
	var out []int
	if k.listenFD >= 0 && k.nextConn < len(k.cfg.Conns) {
		if k.cfg.Mode != ModeRecord || k.cfg.Conns[k.nextConn].ArrivalTick <= k.tick {
			out = append(out, k.listenFD)
		}
	}
	fds := append([]int{}, k.connFDs...)
	sort.Ints(fds)
	for _, fd := range fds {
		d := k.fds[fd]
		if !d.closed && d.off < int64(len(d.data)) {
			out = append(out, fd)
		}
	}
	return out
}

func (k *Kernel) markConsumed(conn int) {
	if conn >= 0 && conn < len(k.consumed) {
		k.consumed[conn] = true
	}
}

// SignalPending reports whether the scripted crash signal has been
// delivered: all connections accepted and fully consumed.
func (k *Kernel) SignalPending() bool {
	k.step()
	if !k.cfg.CrashSignalAfterConns || k.signalFired {
		return k.signalFired
	}
	if k.nextConn < len(k.cfg.Conns) {
		return false
	}
	for _, c := range k.consumed {
		if !c {
			return false
		}
	}
	k.signalFired = true
	return true
}

// ConnWrites returns the bytes the program wrote to connection i (the HTTP
// responses in server workloads); nil when the connection was never accepted.
func (k *Kernel) ConnWrites(i int) []byte {
	for _, fd := range k.connFDs {
		d := k.fds[fd]
		if d.conn == i {
			return d.wbuf
		}
	}
	return nil
}
