package lang

// Recursive-descent parser for MiniC with C-like operator precedence.

type parser struct {
	toks []Token
	i    int
	unit *Unit
}

// ParseUnit parses one source unit. Units are later combined with Link.
func ParseUnit(name string, region Region, src string) (*Unit, error) {
	toks, err := lexAll(name, src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, unit: &Unit{Name: name, Region: region}}
	for p.peek().Kind != EOF {
		if err := p.parseTopLevel(); err != nil {
			return nil, err
		}
	}
	return p.unit, nil
}

func (p *parser) peek() Token { return p.toks[p.i] }
func (p *parser) peekN(n int) Token {
	if p.i+n >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.i+n]
}

func (p *parser) next() Token {
	t := p.toks[p.i]
	if t.Kind != EOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k Kind) (Token, error) {
	t := p.peek()
	if t.Kind != k {
		return t, errf(t.Pos, "expected %v, found %v", k, t.Kind)
	}
	return p.next(), nil
}

func (p *parser) accept(k Kind) bool {
	if p.peek().Kind == k {
		p.next()
		return true
	}
	return false
}

func isTypeKeyword(k Kind) bool { return k == KWINT || k == KWCHAR || k == KWVOID }

// parseTopLevel parses one global declaration or function definition.
func (p *parser) parseTopLevel() error {
	t := p.peek()
	if !isTypeKeyword(t.Kind) {
		return errf(t.Pos, "expected declaration, found %v", t.Kind)
	}
	p.next() // type keyword
	isPtr := p.accept(STAR)
	nameTok, err := p.expect(IDENT)
	if err != nil {
		return err
	}
	if p.peek().Kind == LPAREN {
		fn, err := p.parseFuncRest(nameTok)
		if err != nil {
			return err
		}
		p.unit.Funcs = append(p.unit.Funcs, fn)
		return nil
	}
	decl, err := p.parseVarRest(nameTok, isPtr, true)
	if err != nil {
		return err
	}
	p.unit.Globals = append(p.unit.Globals, decl)
	return nil
}

// parseVarRest parses the remainder of a variable declaration after the
// name: optional array size, optional initializer, and the semicolon.
func (p *parser) parseVarRest(nameTok Token, isPtr, global bool) (*VarDecl, error) {
	d := &VarDecl{Name: nameTok.Text, Pos: nameTok.Pos, IsPtr: isPtr, Global: global}
	if p.accept(LBRACK) {
		szTok, err := p.expect(INT)
		if err != nil {
			return nil, err
		}
		if szTok.Int <= 0 {
			return nil, errf(szTok.Pos, "array size must be positive")
		}
		d.IsArray = true
		d.Size = szTok.Int
		if _, err := p.expect(RBRACK); err != nil {
			return nil, err
		}
	}
	if p.accept(ASSIGN) {
		if d.IsArray {
			return nil, errf(nameTok.Pos, "array initializers are not supported")
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Init = e
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) parseFuncRest(nameTok Token) (*FuncDecl, error) {
	fn := &FuncDecl{Name: nameTok.Text, Pos: nameTok.Pos, Region: p.unit.Region}
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	if !p.accept(RPAREN) {
		for {
			t := p.peek()
			if !isTypeKeyword(t.Kind) {
				return nil, errf(t.Pos, "expected parameter type, found %v", t.Kind)
			}
			p.next()
			isPtr := p.accept(STAR)
			pn, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if p.accept(LBRACK) {
				// `type name[]` parameter: an array-typed pointer.
				if _, err := p.expect(RBRACK); err != nil {
					return nil, err
				}
				isPtr = true
			}
			fn.Params = append(fn.Params, Param{Decl: &VarDecl{
				Name: pn.Text, Pos: pn.Pos, IsPtr: isPtr,
			}})
			if !p.accept(COMMA) {
				break
			}
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) parseBlock() (*Block, error) {
	lb, err := p.expect(LBRACE)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: lb.Pos}
	for p.peek().Kind != RBRACE {
		if p.peek().Kind == EOF {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.peek()
	switch t.Kind {
	case LBRACE:
		return p.parseBlock()
	case KWIF:
		return p.parseIf()
	case KWWHILE:
		return p.parseWhile()
	case KWFOR:
		return p.parseFor()
	case KWRETURN:
		p.next()
		r := &Return{Pos: t.Pos}
		if p.peek().Kind != SEMI {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.E = e
		}
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return r, nil
	case KWBREAK:
		p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &Break{Pos: t.Pos}, nil
	case KWCONTINUE:
		p.next()
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
		return &Continue{Pos: t.Pos}, nil
	case KWINT, KWCHAR:
		return p.parseLocalDecl()
	case KWVOID:
		return nil, errf(t.Pos, "void is only valid as a return type")
	case SEMI:
		p.next()
		return &Block{Pos: t.Pos}, nil // empty statement
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(SEMI); err != nil {
		return nil, err
	}
	return &ExprStmt{Pos: t.Pos, E: e}, nil
}

func (p *parser) parseLocalDecl() (Stmt, error) {
	p.next() // type keyword
	isPtr := p.accept(STAR)
	nameTok, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	d, err := p.parseVarRest(nameTok, isPtr, false)
	if err != nil {
		return nil, err
	}
	return &DeclStmt{Pos: nameTok.Pos, Decl: d}, nil
}

func (p *parser) parseIf() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &If{Pos: t.Pos, Cond: cond, Then: then}
	if p.accept(KWELSE) {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *parser) parseWhile() (Stmt, error) {
	t := p.next() // while
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &While{Pos: t.Pos, Cond: cond, Body: body}, nil
}

func (p *parser) parseFor() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect(LPAREN); err != nil {
		return nil, err
	}
	s := &For{Pos: t.Pos}
	if !p.accept(SEMI) {
		if p.peek().Kind == KWINT || p.peek().Kind == KWCHAR {
			d, err := p.parseLocalDecl()
			if err != nil {
				return nil, err
			}
			s.Init = d // parseLocalDecl consumed the semicolon
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.Init = &ExprStmt{Pos: e.ExprPos(), E: e}
			if _, err := p.expect(SEMI); err != nil {
				return nil, err
			}
		}
	}
	if !p.accept(SEMI) {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
		if _, err := p.expect(SEMI); err != nil {
			return nil, err
		}
	}
	if p.peek().Kind != RPAREN {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Post = &ExprStmt{Pos: e.ExprPos(), E: e}
	}
	if _, err := p.expect(RPAREN); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// --- expressions -------------------------------------------------------

func (p *parser) parseExpr() (Expr, error) { return p.parseAssign() }

func isAssignOp(k Kind) bool {
	switch k {
	case ASSIGN, PLUSEQ, MINUSEQ, STAREQ, SLASHEQ, PCTEQ:
		return true
	}
	return false
}

func (p *parser) parseAssign() (Expr, error) {
	lhs, err := p.parseLogicOr()
	if err != nil {
		return nil, err
	}
	if !isAssignOp(p.peek().Kind) {
		return lhs, nil
	}
	opTok := p.next()
	switch lhs.(type) {
	case *Ident, *Index, *Deref:
	default:
		return nil, errf(opTok.Pos, "invalid assignment target")
	}
	rhs, err := p.parseAssign()
	if err != nil {
		return nil, err
	}
	return &Assign{Pos: opTok.Pos, Op: opTok.Kind, LHS: lhs, RHS: rhs}, nil
}

func (p *parser) parseLogicOr() (Expr, error) {
	l, err := p.parseLogicAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == OROR {
		t := p.next()
		r, err := p.parseLogicAnd()
		if err != nil {
			return nil, err
		}
		l = &Logic{Pos: t.Pos, Op: OROR, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseLogicAnd() (Expr, error) {
	l, err := p.parseBinary(0)
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == ANDAND {
		t := p.next()
		r, err := p.parseBinary(0)
		if err != nil {
			return nil, err
		}
		l = &Logic{Pos: t.Pos, Op: ANDAND, L: l, R: r}
	}
	return l, nil
}

// binLevels lists binary operator precedence levels from loosest to
// tightest (excluding short-circuit operators which are handled above).
var binLevels = [][]Kind{
	{PIPE},
	{CARET},
	{AMP},
	{EQ, NE},
	{LT, LE, GT, GE},
	{SHL, SHR},
	{PLUS, MINUS},
	{STAR, SLASH, PERCENT},
}

func (p *parser) parseBinary(level int) (Expr, error) {
	if level == len(binLevels) {
		return p.parseUnary()
	}
	l, err := p.parseBinary(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		k := p.peek().Kind
		match := false
		for _, op := range binLevels[level] {
			if k == op {
				match = true
				break
			}
		}
		if !match {
			return l, nil
		}
		t := p.next()
		r, err := p.parseBinary(level + 1)
		if err != nil {
			return nil, err
		}
		l = &Binary{Pos: t.Pos, Op: t.Kind, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case BANG, MINUS, TILDE:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: t.Pos, Op: t.Kind, X: x}, nil
	case STAR:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Deref{Pos: t.Pos, X: x}, nil
	case AMP:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		switch x.(type) {
		case *Ident, *Index:
		default:
			return nil, errf(t.Pos, "& requires a variable or array element")
		}
		return &AddrOf{Pos: t.Pos, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch t.Kind {
		case LBRACK:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBRACK); err != nil {
				return nil, err
			}
			e = &Index{Pos: t.Pos, Base: e, Idx: idx}
		case PLUSPLUS, MINUSMIN:
			p.next()
			switch e.(type) {
			case *Ident, *Index, *Deref:
			default:
				return nil, errf(t.Pos, "%v requires an lvalue", t.Kind)
			}
			e = &IncDec{Pos: t.Pos, Op: t.Kind, X: e, Post: true}
		default:
			return e, nil
		}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case INT:
		p.next()
		return &IntLit{Pos: t.Pos, V: t.Int}, nil
	case STRING:
		p.next()
		return &StrLit{Pos: t.Pos, S: t.Text}, nil
	case IDENT:
		if p.peekN(1).Kind == LPAREN {
			return p.parseCall()
		}
		p.next()
		return &Ident{Pos: t.Pos, Name: t.Text}, nil
	case LPAREN:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.Pos, "expected expression, found %v", t.Kind)
}

func (p *parser) parseCall() (Expr, error) {
	nameTok := p.next()
	p.next() // (
	c := &Call{Pos: nameTok.Pos, Name: nameTok.Text}
	if !p.accept(RPAREN) {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			c.Args = append(c.Args, a)
			if !p.accept(COMMA) {
				break
			}
		}
		if _, err := p.expect(RPAREN); err != nil {
			return nil, err
		}
	}
	return c, nil
}
