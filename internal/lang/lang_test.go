package lang

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustTokens(t *testing.T, src string) []Token {
	t.Helper()
	toks, err := lexAll("test.mc", src)
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	return toks
}

func TestLexBasics(t *testing.T) {
	toks := mustTokens(t, "int main() { return 42; }")
	kinds := []Kind{KWINT, IDENT, LPAREN, RPAREN, LBRACE, KWRETURN, INT, SEMI, RBRACE, EOF}
	if len(toks) != len(kinds) {
		t.Fatalf("token count: got %d want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v want %v", i, toks[i].Kind, k)
		}
	}
	if toks[6].Int != 42 {
		t.Errorf("int literal: got %d", toks[6].Int)
	}
}

func TestLexOperators(t *testing.T) {
	src := "== != <= >= << >> && || ++ -- += -= *= /= %= = < > + - * / % & | ^ ~ !"
	toks := mustTokens(t, src)
	want := []Kind{EQ, NE, LE, GE, SHL, SHR, ANDAND, OROR, PLUSPLUS, MINUSMIN,
		PLUSEQ, MINUSEQ, STAREQ, SLASHEQ, PCTEQ, ASSIGN, LT, GT, PLUS, MINUS,
		STAR, SLASH, PERCENT, AMP, PIPE, CARET, TILDE, BANG, EOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d: got %v want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexLiterals(t *testing.T) {
	toks := mustTokens(t, `'a' '\n' '\0' '\\' 0x1F 255 "hi\tthere"`)
	if toks[0].Int != 'a' || toks[1].Int != '\n' || toks[2].Int != 0 || toks[3].Int != '\\' {
		t.Errorf("char literals: %v %v %v %v", toks[0].Int, toks[1].Int, toks[2].Int, toks[3].Int)
	}
	if toks[4].Int != 0x1F || toks[5].Int != 255 {
		t.Errorf("numbers: %v %v", toks[4].Int, toks[5].Int)
	}
	if toks[6].Text != "hi\tthere" {
		t.Errorf("string: %q", toks[6].Text)
	}
}

func TestLexComments(t *testing.T) {
	toks := mustTokens(t, "int x; // line comment\n/* block\ncomment */ int y;")
	var idents []string
	for _, tok := range toks {
		if tok.Kind == IDENT {
			idents = append(idents, tok.Text)
		}
	}
	if len(idents) != 2 || idents[0] != "x" || idents[1] != "y" {
		t.Errorf("idents: %v", idents)
	}
}

func TestLexPositions(t *testing.T) {
	toks := mustTokens(t, "int\n  x;")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("tok0 pos: %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("tok1 pos: %v", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"'a", `"abc`, "'\\q'", "@", "0x"} {
		if _, err := lexAll("t", src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func mustProgram(t *testing.T, src string) *Program {
	t.Helper()
	u, err := ParseUnit("test.mc", RegionApp, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Link([]*Unit{u})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return p
}

func TestParseSimpleProgram(t *testing.T) {
	p := mustProgram(t, `
		int counter = 3;
		int add(int a, int b) { return a + b; }
		int main() {
			int x = add(counter, 4);
			return x;
		}
	`)
	if len(p.Globals) != 1 || p.Globals[0].Name != "counter" {
		t.Fatalf("globals: %+v", p.Globals)
	}
	if p.Main == nil || len(p.FuncList) != 2 {
		t.Fatalf("funcs: %v", p.FuncNames())
	}
	add := p.Funcs["add"]
	if len(add.Params) != 2 || add.NumSlots != 2 {
		t.Fatalf("add params/slots: %d/%d", len(add.Params), add.NumSlots)
	}
}

func TestBranchNumbering(t *testing.T) {
	p := mustProgram(t, `
		int main() {
			int i;
			if (argcount() > 1) { i = 1; }      // b0
			while (i < 10) { i++; }             // b1
			for (i = 0; i < 5; i++) { }         // b2
			if (i > 1 && i < 9) { }             // b3 (&&), b4 (if)
			if (i == 0 || i == 5) { }           // b5 (||), b6 (if)
			return 0;
		}
	`)
	if len(p.Branches) != 7 {
		for _, b := range p.Branches {
			t.Logf("%v", b)
		}
		t.Fatalf("branch count: got %d want 7", len(p.Branches))
	}
	wantKinds := []BranchKind{BranchIf, BranchWhile, BranchFor, BranchAnd, BranchIf, BranchOr, BranchIf}
	for i, k := range wantKinds {
		if p.Branches[i].Kind != k {
			t.Errorf("branch %d: got %v want %v", i, p.Branches[i].Kind, k)
		}
		if p.Branches[i].ID != BranchID(i) {
			t.Errorf("branch %d: ID %d", i, p.Branches[i].ID)
		}
		if p.Branches[i].Func != "main" {
			t.Errorf("branch %d: func %q", i, p.Branches[i].Func)
		}
	}
}

func TestBranchRegions(t *testing.T) {
	app := MustParse("app.mc", RegionApp, `
		int main() { if (argcount() > 0) { } return helper(); }
	`)
	lib := MustParse("lib.mc", RegionLib, `
		int helper() { int i = 0; while (i < 3) { i++; } return i; }
	`)
	p := MustLink([]*Unit{app, lib})
	sum := p.BranchSummary()
	if sum[RegionApp] != 1 || sum[RegionLib] != 1 {
		t.Fatalf("summary: %v", sum)
	}
	if got := len(p.BranchesIn(RegionLib)); got != 1 {
		t.Fatalf("lib branches: %d", got)
	}
}

func TestParsePointersAndArrays(t *testing.T) {
	p := mustProgram(t, `
		char gbuf[64];
		int fill(char *dst, int n) {
			int i;
			for (i = 0; i < n; i++) { dst[i] = 'x'; }
			dst[n] = '\0';
			return n;
		}
		int main() {
			char local[16];
			int n = fill(local, 5);
			char *p = &local[2];
			*p = 'y';
			gbuf[0] = *p;
			return n + gbuf[0];
		}
	`)
	g := p.Globals[0]
	if !g.IsArray || g.Size != 64 {
		t.Fatalf("gbuf: %+v", g)
	}
	fill := p.Funcs["fill"]
	if !fill.Params[0].Decl.IsPtr {
		t.Error("dst should be a pointer param")
	}
}

func TestParseArrayParam(t *testing.T) {
	p := mustProgram(t, `
		int sum(int vals[], int n) {
			int s = 0;
			int i;
			for (i = 0; i < n; i++) { s += vals[i]; }
			return s;
		}
		int main() { int a[3]; return sum(a, 3); }
	`)
	if !p.Funcs["sum"].Params[0].Decl.IsPtr {
		t.Error("vals[] should resolve to a pointer param")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no main":          `int f() { return 0; }`,
		"undefined var":    `int main() { return x; }`,
		"undefined func":   `int main() { return nope(); }`,
		"bad arity":        `int f(int a) { return a; } int main() { return f(); }`,
		"dup global":       `int g; int g; int main() { return 0; }`,
		"dup func":         `int f() { return 0; } int f() { return 1; } int main() { return 0; }`,
		"dup local":        `int main() { int x; int x; return 0; }`,
		"break outside":    `int main() { break; return 0; }`,
		"continue outside": `int main() { continue; return 0; }`,
		"assign to call":   `int main() { argcount() = 3; return 0; }`,
		"bad array size":   `int main() { int a[0]; return 0; }`,
		"array init":       `int main() { int a[3] = 5; return 0; }`,
		"shadow builtin":   `int read() { return 0; } int main() { return 0; }`,
		"void local":       `int main() { void x; return 0; }`,
		"missing semi":     `int main() { return 0 }`,
		"unterminated":     `int main() { return 0;`,
		"addr of literal":  `int main() { int x = &3; return x; }`,
	}
	for name, src := range cases {
		u, err := ParseUnit("t", RegionApp, src)
		if err == nil {
			_, err = Link([]*Unit{u})
		}
		if err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestScopeShadowing(t *testing.T) {
	p := mustProgram(t, `
		int x = 1;
		int main() {
			int x = 2;
			if (x == 2) {
				int x = 3;
				x++;
			}
			return x;
		}
	`)
	main := p.Funcs["main"]
	if len(main.Locals) != 2 {
		t.Fatalf("locals: %d", len(main.Locals))
	}
	if main.Locals[0].Slot == main.Locals[1].Slot {
		t.Error("shadowed locals share a slot")
	}
}

func TestPrecedence(t *testing.T) {
	// 1 + 2 * 3 == 7 should parse as (1 + (2*3)) == 7.
	u := MustParse("t", RegionApp, `int main() { return 1 + 2 * 3 == 7; }`)
	p := MustLink([]*Unit{u})
	ret := p.Main.Body.Stmts[0].(*Return)
	cmp, ok := ret.E.(*Binary)
	if !ok || cmp.Op != EQ {
		t.Fatalf("top op: %T", ret.E)
	}
	add, ok := cmp.L.(*Binary)
	if !ok || add.Op != PLUS {
		t.Fatalf("lhs: %T", cmp.L)
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != STAR {
		t.Fatalf("rhs of +: %T", add.R)
	}
}

func TestLogicTree(t *testing.T) {
	u := MustParse("t", RegionApp, `int main() { return 1 && 2 || 3; }`)
	p := MustLink([]*Unit{u})
	ret := p.Main.Body.Stmts[0].(*Return)
	or, ok := ret.E.(*Logic)
	if !ok || or.Op != OROR {
		t.Fatalf("top: %T", ret.E)
	}
	and, ok := or.L.(*Logic)
	if !ok || and.Op != ANDAND {
		t.Fatalf("left: %T", or.L)
	}
	if or.Branch == nil || and.Branch == nil {
		t.Fatal("logic branches not numbered")
	}
}

func TestForVariants(t *testing.T) {
	mustProgram(t, `
		int main() {
			int s = 0;
			for (;;) { break; }
			for (int i = 0; i < 3; i++) { s += i; }
			for (s = 0; ; s++) { if (s > 2) { break; } }
			return s;
		}
	`)
}

func TestEmptyStatement(t *testing.T) {
	mustProgram(t, `int main() { ;; return 0; }`)
}

func TestKindString(t *testing.T) {
	if KWINT.String() != "int" || ANDAND.String() != "&&" {
		t.Error("kind names wrong")
	}
	if Kind(999).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestPosAndBranchString(t *testing.T) {
	p := mustProgram(t, `int main() { if (1) { } return 0; }`)
	b := p.Branches[0]
	if !strings.Contains(b.String(), "b0(if@test.mc:1") {
		t.Errorf("branch string: %s", b.String())
	}
}

// TestQuickLexIdentifiers property-checks that any valid identifier-shaped
// string round-trips through the lexer as a single IDENT (or keyword).
func TestQuickLexIdentifiers(t *testing.T) {
	f := func(raw []byte) bool {
		var b strings.Builder
		b.WriteByte('a')
		for _, c := range raw {
			c = c%26 + 'a'
			b.WriteByte(c)
		}
		name := b.String()
		toks, err := lexAll("t", name)
		if err != nil || len(toks) != 2 {
			return false
		}
		if kw, isKW := keywords[name]; isKW {
			return toks[0].Kind == kw
		}
		return toks[0].Kind == IDENT && toks[0].Text == name
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickLexIntegers property-checks integer literal round-tripping.
func TestQuickLexIntegers(t *testing.T) {
	f := func(v uint32) bool {
		src := ""
		if v%2 == 0 {
			src = "0x" + hex(uint64(v))
		} else {
			src = dec(uint64(v))
		}
		toks, err := lexAll("t", src)
		return err == nil && len(toks) == 2 && toks[0].Kind == INT && toks[0].Int == int64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func hex(v uint64) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0"
	}
	var buf [16]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v&0xf]
		v >>= 4
	}
	return string(buf[i:])
}

func dec(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
