package lang

import "fmt"

// lexer turns MiniC source text into tokens.
type lexer struct {
	unit string
	src  string
	off  int
	line int
	col  int
}

func newLexer(unit, src string) *lexer {
	return &lexer{unit: unit, src: src, line: 1, col: 1}
}

func (lx *lexer) pos() Pos { return Pos{Unit: lx.unit, Line: lx.line, Col: lx.col} }

func (lx *lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

// next scans and returns the next token.
func (lx *lexer) next() (Token, error) {
	lx.skipSpaceAndComments()
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		return lx.lexIdent(pos), nil
	case c >= '0' && c <= '9':
		return lx.lexNumber(pos)
	case c == '\'':
		return lx.lexChar(pos)
	case c == '"':
		return lx.lexString(pos)
	}
	return lx.lexOperator(pos)
}

func (lx *lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			lx.advance()
			lx.advance()
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func (lx *lexer) lexIdent(pos Pos) Token {
	start := lx.off
	for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
		lx.advance()
	}
	text := lx.src[start:lx.off]
	if kw, ok := keywords[text]; ok {
		return Token{Kind: kw, Pos: pos, Text: text}
	}
	return Token{Kind: IDENT, Pos: pos, Text: text}
}

func (lx *lexer) lexNumber(pos Pos) (Token, error) {
	start := lx.off
	base := int64(10)
	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.advance()
		lx.advance()
		base = 16
		start = lx.off
	}
	var v int64
	digits := 0
	for lx.off < len(lx.src) {
		c := lx.peek()
		var d int64
		switch {
		case c >= '0' && c <= '9':
			d = int64(c - '0')
		case base == 16 && c >= 'a' && c <= 'f':
			d = int64(c-'a') + 10
		case base == 16 && c >= 'A' && c <= 'F':
			d = int64(c-'A') + 10
		default:
			goto done
		}
		if d >= base {
			return Token{}, errf(pos, "bad digit %q in base-%d literal", c, base)
		}
		v = v*base + d
		digits++
		lx.advance()
	}
done:
	if digits == 0 {
		return Token{}, errf(pos, "malformed number %q", lx.src[start:lx.off])
	}
	return Token{Kind: INT, Pos: pos, Int: v}, nil
}

func (lx *lexer) lexChar(pos Pos) (Token, error) {
	lx.advance() // opening quote
	if lx.off >= len(lx.src) {
		return Token{}, errf(pos, "unterminated char literal")
	}
	var v int64
	c := lx.advance()
	if c == '\\' {
		if lx.off >= len(lx.src) {
			return Token{}, errf(pos, "unterminated escape in char literal")
		}
		e, err := decodeEscape(lx.advance(), pos)
		if err != nil {
			return Token{}, err
		}
		v = int64(e)
	} else {
		v = int64(c)
	}
	if lx.off >= len(lx.src) || lx.advance() != '\'' {
		return Token{}, errf(pos, "unterminated char literal")
	}
	return Token{Kind: INT, Pos: pos, Int: v}, nil
}

func (lx *lexer) lexString(pos Pos) (Token, error) {
	lx.advance() // opening quote
	var buf []byte
	for {
		if lx.off >= len(lx.src) {
			return Token{}, errf(pos, "unterminated string literal")
		}
		c := lx.advance()
		if c == '"' {
			break
		}
		if c == '\\' {
			if lx.off >= len(lx.src) {
				return Token{}, errf(pos, "unterminated escape in string literal")
			}
			e, err := decodeEscape(lx.advance(), pos)
			if err != nil {
				return Token{}, err
			}
			buf = append(buf, e)
			continue
		}
		buf = append(buf, c)
	}
	return Token{Kind: STRING, Pos: pos, Text: string(buf)}, nil
}

func decodeEscape(c byte, pos Pos) (byte, error) {
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	}
	return 0, errf(pos, "unknown escape \\%c", c)
}

func (lx *lexer) lexOperator(pos Pos) (Token, error) {
	c := lx.advance()
	two := func(second byte, k2, k1 Kind) Token {
		if lx.peek() == second {
			lx.advance()
			return Token{Kind: k2, Pos: pos}
		}
		return Token{Kind: k1, Pos: pos}
	}
	switch c {
	case '(':
		return Token{Kind: LPAREN, Pos: pos}, nil
	case ')':
		return Token{Kind: RPAREN, Pos: pos}, nil
	case '{':
		return Token{Kind: LBRACE, Pos: pos}, nil
	case '}':
		return Token{Kind: RBRACE, Pos: pos}, nil
	case '[':
		return Token{Kind: LBRACK, Pos: pos}, nil
	case ']':
		return Token{Kind: RBRACK, Pos: pos}, nil
	case ';':
		return Token{Kind: SEMI, Pos: pos}, nil
	case ',':
		return Token{Kind: COMMA, Pos: pos}, nil
	case '~':
		return Token{Kind: TILDE, Pos: pos}, nil
	case '^':
		return Token{Kind: CARET, Pos: pos}, nil
	case '=':
		return two('=', EQ, ASSIGN), nil
	case '!':
		return two('=', NE, BANG), nil
	case '+':
		if lx.peek() == '+' {
			lx.advance()
			return Token{Kind: PLUSPLUS, Pos: pos}, nil
		}
		return two('=', PLUSEQ, PLUS), nil
	case '-':
		if lx.peek() == '-' {
			lx.advance()
			return Token{Kind: MINUSMIN, Pos: pos}, nil
		}
		return two('=', MINUSEQ, MINUS), nil
	case '*':
		return two('=', STAREQ, STAR), nil
	case '/':
		return two('=', SLASHEQ, SLASH), nil
	case '%':
		return two('=', PCTEQ, PERCENT), nil
	case '&':
		return two('&', ANDAND, AMP), nil
	case '|':
		return two('|', OROR, PIPE), nil
	case '<':
		if lx.peek() == '<' {
			lx.advance()
			return Token{Kind: SHL, Pos: pos}, nil
		}
		return two('=', LE, LT), nil
	case '>':
		if lx.peek() == '>' {
			lx.advance()
			return Token{Kind: SHR, Pos: pos}, nil
		}
		return two('=', GE, GT), nil
	}
	return Token{}, errf(pos, "unexpected character %q", fmt.Sprintf("%c", c))
}

// lexAll scans the whole source, returning the token stream.
func lexAll(unit, src string) ([]Token, error) {
	lx := newLexer(unit, src)
	var toks []Token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
