package lang

import "fmt"

// Region tags a compilation unit as application or library code. The paper's
// Figure 3 splits branch statistics along this axis, and §5.3 treats all
// library branches as symbolic when static analysis cannot process the
// merged library sources.
type Region int

// Regions.
const (
	RegionApp Region = iota
	RegionLib
)

// String implements fmt.Stringer.
func (r Region) String() string {
	if r == RegionLib {
		return "lib"
	}
	return "app"
}

// BranchID identifies one branch location (a branch site in the source, not
// one dynamic execution of it). IDs are dense, assigned in source order
// during linking, and stable for a given program text.
type BranchID int

// BranchKind says which construct a branch site belongs to.
type BranchKind int

// Branch kinds.
const (
	BranchIf BranchKind = iota
	BranchWhile
	BranchFor
	BranchAnd // right operand guard of &&
	BranchOr  // right operand guard of ||
)

// String implements fmt.Stringer.
func (k BranchKind) String() string {
	return [...]string{"if", "while", "for", "&&", "||"}[k]
}

// BranchSite is the static description of one branch location.
type BranchSite struct {
	ID     BranchID
	Kind   BranchKind
	Pos    Pos
	Func   string // enclosing function name
	Region Region
}

// String implements fmt.Stringer.
func (b *BranchSite) String() string {
	return fmt.Sprintf("b%d(%s@%s)", b.ID, b.Kind, b.Pos)
}

// VarDecl declares a global, local or parameter. Every VarDecl is assigned a
// storage slot by the resolver: globals index the program's global table,
// locals and params index the function frame.
type VarDecl struct {
	Name    string
	Pos     Pos
	IsArray bool
	Size    int64 // number of cells for arrays
	Init    Expr  // optional initializer (scalars only)
	IsPtr   bool  // declared with * (or an [] parameter)

	Global bool
	Slot   int // global index or frame slot
}

// Param is a function parameter.
type Param struct {
	Decl *VarDecl
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name   string
	Pos    Pos
	Params []Param
	Body   *Block
	Region Region

	// NumSlots is the frame size (params + locals), set by the resolver.
	NumSlots int
	// Locals lists every local VarDecl (excluding params) in declaration
	// order; used by analyses.
	Locals []*VarDecl
}

// Unit is one parsed source unit, before linking.
type Unit struct {
	Name    string
	Region  Region
	Funcs   []*FuncDecl
	Globals []*VarDecl
}

// Program is a linked MiniC program, ready for execution and analysis.
type Program struct {
	Units    []*Unit
	Funcs    map[string]*FuncDecl
	FuncList []*FuncDecl // deterministic order
	Globals  []*VarDecl
	Branches []*BranchSite
	Main     *FuncDecl
}

// BranchesIn returns the branch sites belonging to the given region.
func (p *Program) BranchesIn(r Region) []*BranchSite {
	var out []*BranchSite
	for _, b := range p.Branches {
		if b.Region == r {
			out = append(out, b)
		}
	}
	return out
}

// Stmt is a statement node.
type Stmt interface {
	stmtNode()
	StmtPos() Pos
}

// Expr is an expression node.
type Expr interface {
	exprNode()
	ExprPos() Pos
}

// Block is a `{ ... }` statement list with its own scope.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// If is a conditional with a branch site.
type If struct {
	Pos    Pos
	Cond   Expr
	Then   Stmt
	Else   Stmt // may be nil
	Branch *BranchSite
}

// While is a pre-test loop with a branch site.
type While struct {
	Pos    Pos
	Cond   Expr
	Body   Stmt
	Branch *BranchSite
}

// For is a C-style for loop; Cond may be nil (infinite loop, no branch site).
type For struct {
	Pos    Pos
	Init   Stmt // may be nil; ExprStmt or DeclStmt
	Cond   Expr // may be nil
	Post   Stmt // may be nil
	Body   Stmt
	Branch *BranchSite // nil when Cond is nil
}

// Return exits the enclosing function, optionally with a value.
type Return struct {
	Pos Pos
	E   Expr // may be nil
}

// Break exits the innermost loop.
type Break struct{ Pos Pos }

// Continue re-tests the innermost loop.
type Continue struct{ Pos Pos }

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	Pos Pos
	E   Expr
}

// DeclStmt declares a local variable.
type DeclStmt struct {
	Pos  Pos
	Decl *VarDecl
}

func (*Block) stmtNode()    {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*ExprStmt) stmtNode() {}
func (*DeclStmt) stmtNode() {}

// StmtPos implements Stmt.
func (s *Block) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *If) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *While) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *For) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *Return) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *Break) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *Continue) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *ExprStmt) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *DeclStmt) StmtPos() Pos { return s.Pos }

// IntLit is an integer (or char) literal.
type IntLit struct {
	Pos Pos
	V   int64
}

// StrLit is a string literal; the VM interns one NUL-terminated object per
// literal site per run.
type StrLit struct {
	Pos Pos
	S   string
}

// Ident references a variable.
type Ident struct {
	Pos  Pos
	Name string
	Decl *VarDecl // set by the resolver
}

// Unary is !x, -x, ~x.
type Unary struct {
	Pos Pos
	Op  Kind // BANG, MINUS, TILDE
	X   Expr
}

// Binary is a non-short-circuit binary operator.
type Binary struct {
	Pos  Pos
	Op   Kind
	L, R Expr
}

// Logic is && or ||; evaluating the right operand is guarded by a branch.
type Logic struct {
	Pos    Pos
	Op     Kind // ANDAND or OROR
	L, R   Expr
	Branch *BranchSite
}

// Assign stores into an lvalue. Op is ASSIGN or a compound-assignment token.
type Assign struct {
	Pos Pos
	Op  Kind
	LHS Expr // Ident, Index or Deref
	RHS Expr
}

// IncDec is x++ or x-- (postfix; value is the old one).
type IncDec struct {
	Pos  Pos
	Op   Kind // PLUSPLUS or MINUSMIN
	X    Expr // Ident, Index or Deref
	Post bool
}

// Call invokes a function or builtin.
type Call struct {
	Pos     Pos
	Name    string
	Args    []Expr
	Func    *FuncDecl // non-nil for MiniC functions; nil for builtins
	Builtin bool
}

// Index is a[i] over an array or pointer.
type Index struct {
	Pos  Pos
	Base Expr
	Idx  Expr
}

// AddrOf is &x or &a[i].
type AddrOf struct {
	Pos Pos
	X   Expr // Ident or Index
}

// Deref is *p.
type Deref struct {
	Pos Pos
	X   Expr
}

func (*IntLit) exprNode() {}
func (*StrLit) exprNode() {}
func (*Ident) exprNode()  {}
func (*Unary) exprNode()  {}
func (*Binary) exprNode() {}
func (*Logic) exprNode()  {}
func (*Assign) exprNode() {}
func (*IncDec) exprNode() {}
func (*Call) exprNode()   {}
func (*Index) exprNode()  {}
func (*AddrOf) exprNode() {}
func (*Deref) exprNode()  {}

// ExprPos implements Expr.
func (e *IntLit) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *StrLit) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *Ident) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *Unary) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *Binary) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *Logic) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *Assign) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *IncDec) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *Call) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *Index) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *AddrOf) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *Deref) ExprPos() Pos { return e.Pos }
