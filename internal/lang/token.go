// Package lang implements MiniC, the small C-like language that all
// benchmark programs in this repository are written in.
//
// The paper instruments C programs through CIL source rewriting. Go cannot
// host CIL, so this reproduction defines MiniC — a deliberately C-shaped
// language (functions, pointers, arrays, NUL-terminated strings,
// short-circuit booleans) — and interprets it on a VM with first-class branch
// hooks. Every branch site (if/while/for conditions and the right-hand sides
// of && and ||) receives a stable BranchID during resolution; the analyses,
// the instrumentation planner and the replay engine all speak in terms of
// those IDs, exactly as the paper's tooling speaks in terms of branch
// locations in C sources.
package lang

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INT    // integer literal (includes char literals, already decoded)
	STRING // string literal, unquoted and unescaped

	// Keywords.
	KWINT
	KWCHAR
	KWVOID
	KWIF
	KWELSE
	KWWHILE
	KWFOR
	KWRETURN
	KWBREAK
	KWCONTINUE

	// Punctuation and operators.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACK   // [
	RBRACK   // ]
	SEMI     // ;
	COMMA    // ,
	ASSIGN   // =
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	AMP      // &
	PIPE     // |
	CARET    // ^
	SHL      // <<
	SHR      // >>
	EQ       // ==
	NE       // !=
	LT       // <
	LE       // <=
	GT       // >
	GE       // >=
	ANDAND   // &&
	OROR     // ||
	BANG     // !
	TILDE    // ~
	PLUSPLUS // ++
	MINUSMIN // --
	PLUSEQ   // +=
	MINUSEQ  // -=
	STAREQ   // *=
	SLASHEQ  // /=
	PCTEQ    // %=
)

var kindNames = map[Kind]string{
	EOF: "eof", IDENT: "identifier", INT: "int literal", STRING: "string literal",
	KWINT: "int", KWCHAR: "char", KWVOID: "void", KWIF: "if", KWELSE: "else",
	KWWHILE: "while", KWFOR: "for", KWRETURN: "return", KWBREAK: "break",
	KWCONTINUE: "continue",
	LPAREN:     "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACK: "[", RBRACK: "]",
	SEMI: ";", COMMA: ",", ASSIGN: "=", PLUS: "+", MINUS: "-", STAR: "*",
	SLASH: "/", PERCENT: "%", AMP: "&", PIPE: "|", CARET: "^", SHL: "<<",
	SHR: ">>", EQ: "==", NE: "!=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	ANDAND: "&&", OROR: "||", BANG: "!", TILDE: "~", PLUSPLUS: "++",
	MINUSMIN: "--", PLUSEQ: "+=", MINUSEQ: "-=", STAREQ: "*=", SLASHEQ: "/=",
	PCTEQ: "%=",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"int": KWINT, "char": KWCHAR, "void": KWVOID, "if": KWIF, "else": KWELSE,
	"while": KWWHILE, "for": KWFOR, "return": KWRETURN, "break": KWBREAK,
	"continue": KWCONTINUE,
}

// Pos is a source position within a named unit.
type Pos struct {
	Unit string
	Line int
	Col  int
}

// String implements fmt.Stringer.
func (p Pos) String() string { return fmt.Sprintf("%s:%d:%d", p.Unit, p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string // identifier name or string literal contents
	Int  int64  // value for INT
}

// Error is a compile-time error with a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
