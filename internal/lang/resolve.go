package lang

import (
	"fmt"
	"sort"
)

// BuiltinNames is the set of functions provided by the VM rather than by
// MiniC source. The resolver accepts calls to these names; the VM implements
// them (see internal/vm). Keeping the set here lets the resolver reject
// typos at link time instead of at run time.
var BuiltinNames = map[string]bool{
	// Program input.
	"argcount": true, // argcount() -> number of argv strings
	"getarg":   true, // getarg(i, buf, cap) -> length; copies argv[i], NUL-terminated

	// Simulated kernel.
	"open":           true, // open(path) -> fd or -1
	"close":          true, // close(fd) -> 0 or -1
	"read":           true, // read(fd, buf, n) -> bytes read, 0 on EOF, -1 on error
	"write":          true, // write(fd, buf, n) -> bytes written
	"listen_socket":  true, // listen_socket(port) -> listening fd
	"accept":         true, // accept(lfd) -> connection fd or -1
	"select_ready":   true, // select_ready(buf, cap) -> count of ready fds
	"signal_pending": true, // signal_pending() -> 1 when a crash signal was delivered

	// Output (diagnostics; never part of recorded input).
	"print_int":  true,
	"print_str":  true,
	"print_char": true,

	// Termination.
	"exit":  true, // exit(code): stop the program normally
	"crash": true, // crash(code): the bug site; aborts like SIGSEGV
}

// Link resolves a set of parsed units into an executable Program: it lays
// out globals, resolves identifiers and calls, assigns frame slots, and
// numbers every branch site in deterministic source order.
func Link(units []*Unit) (*Program, error) {
	p := &Program{
		Units: units,
		Funcs: make(map[string]*FuncDecl),
	}

	// Globals first so function bodies can reference them.
	seenGlobal := make(map[string]*VarDecl)
	for _, u := range units {
		for _, g := range u.Globals {
			if prev, dup := seenGlobal[g.Name]; dup {
				return nil, errf(g.Pos, "global %q redeclared (first at %s)", g.Name, prev.Pos)
			}
			g.Global = true
			g.Slot = len(p.Globals)
			seenGlobal[g.Name] = g
			p.Globals = append(p.Globals, g)
		}
	}

	for _, u := range units {
		for _, fn := range u.Funcs {
			if prev, dup := p.Funcs[fn.Name]; dup {
				return nil, errf(fn.Pos, "function %q redeclared (first at %s)", fn.Name, prev.Pos)
			}
			if BuiltinNames[fn.Name] {
				return nil, errf(fn.Pos, "function %q shadows a builtin", fn.Name)
			}
			p.Funcs[fn.Name] = fn
			p.FuncList = append(p.FuncList, fn)
		}
	}
	main, ok := p.Funcs["main"]
	if !ok {
		return nil, fmt.Errorf("lang: program has no main function")
	}
	p.Main = main

	r := &resolver{prog: p, globals: seenGlobal}
	for _, fn := range p.FuncList {
		if err := r.resolveFunc(fn); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// MustLink is Link for known-good embedded sources; it panics on error.
func MustLink(units []*Unit) *Program {
	p, err := Link(units)
	if err != nil {
		panic(err)
	}
	return p
}

// MustParse parses a unit from known-good embedded source; it panics on
// error.
func MustParse(name string, region Region, src string) *Unit {
	u, err := ParseUnit(name, region, src)
	if err != nil {
		panic(err)
	}
	return u
}

type resolver struct {
	prog    *Program
	globals map[string]*VarDecl

	fn        *FuncDecl
	scopes    []map[string]*VarDecl
	loopDepth int
}

func (r *resolver) resolveFunc(fn *FuncDecl) error {
	r.fn = fn
	r.scopes = []map[string]*VarDecl{make(map[string]*VarDecl)}
	r.loopDepth = 0
	fn.NumSlots = 0
	fn.Locals = nil
	for _, prm := range fn.Params {
		d := prm.Decl
		if prev, dup := r.scopes[0][d.Name]; dup {
			return errf(d.Pos, "parameter %q redeclared (first at %s)", d.Name, prev.Pos)
		}
		d.Slot = fn.NumSlots
		fn.NumSlots++
		r.scopes[0][d.Name] = d
	}
	if err := r.stmt(fn.Body); err != nil {
		return err
	}
	r.fn = nil
	return nil
}

func (r *resolver) push() { r.scopes = append(r.scopes, make(map[string]*VarDecl)) }
func (r *resolver) pop()  { r.scopes = r.scopes[:len(r.scopes)-1] }

func (r *resolver) declare(d *VarDecl) error {
	top := r.scopes[len(r.scopes)-1]
	if prev, dup := top[d.Name]; dup {
		return errf(d.Pos, "variable %q redeclared in this scope (first at %s)", d.Name, prev.Pos)
	}
	d.Slot = r.fn.NumSlots
	r.fn.NumSlots++
	r.fn.Locals = append(r.fn.Locals, d)
	top[d.Name] = d
	return nil
}

func (r *resolver) lookup(name string) *VarDecl {
	for i := len(r.scopes) - 1; i >= 0; i-- {
		if d, ok := r.scopes[i][name]; ok {
			return d
		}
	}
	return r.globals[name]
}

func (r *resolver) newBranch(kind BranchKind, pos Pos) *BranchSite {
	b := &BranchSite{
		ID:     BranchID(len(r.prog.Branches)),
		Kind:   kind,
		Pos:    pos,
		Func:   r.fn.Name,
		Region: r.fn.Region,
	}
	r.prog.Branches = append(r.prog.Branches, b)
	return b
}

func (r *resolver) stmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		r.push()
		defer r.pop()
		for _, inner := range st.Stmts {
			if err := r.stmt(inner); err != nil {
				return err
			}
		}
		return nil
	case *DeclStmt:
		if st.Decl.Init != nil {
			if err := r.expr(st.Decl.Init); err != nil {
				return err
			}
		}
		return r.declare(st.Decl)
	case *If:
		if err := r.expr(st.Cond); err != nil {
			return err
		}
		st.Branch = r.newBranch(BranchIf, st.Pos)
		if err := r.stmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return r.stmt(st.Else)
		}
		return nil
	case *While:
		if err := r.expr(st.Cond); err != nil {
			return err
		}
		st.Branch = r.newBranch(BranchWhile, st.Pos)
		r.loopDepth++
		defer func() { r.loopDepth-- }()
		return r.stmt(st.Body)
	case *For:
		r.push()
		defer r.pop()
		if st.Init != nil {
			if err := r.stmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := r.expr(st.Cond); err != nil {
				return err
			}
			st.Branch = r.newBranch(BranchFor, st.Pos)
		}
		if st.Post != nil {
			if err := r.stmt(st.Post); err != nil {
				return err
			}
		}
		r.loopDepth++
		defer func() { r.loopDepth-- }()
		return r.stmt(st.Body)
	case *Return:
		if st.E != nil {
			return r.expr(st.E)
		}
		return nil
	case *Break:
		if r.loopDepth == 0 {
			return errf(st.Pos, "break outside loop")
		}
		return nil
	case *Continue:
		if r.loopDepth == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		return nil
	case *ExprStmt:
		return r.expr(st.E)
	}
	return fmt.Errorf("lang: unknown statement %T", s)
}

func (r *resolver) expr(e Expr) error {
	switch x := e.(type) {
	case *IntLit, *StrLit:
		return nil
	case *Ident:
		d := r.lookup(x.Name)
		if d == nil {
			return errf(x.Pos, "undefined variable %q", x.Name)
		}
		x.Decl = d
		return nil
	case *Unary:
		return r.expr(x.X)
	case *Binary:
		if err := r.expr(x.L); err != nil {
			return err
		}
		return r.expr(x.R)
	case *Logic:
		if err := r.expr(x.L); err != nil {
			return err
		}
		kind := BranchAnd
		if x.Op == OROR {
			kind = BranchOr
		}
		x.Branch = r.newBranch(kind, x.Pos)
		return r.expr(x.R)
	case *Assign:
		if err := r.expr(x.LHS); err != nil {
			return err
		}
		return r.expr(x.RHS)
	case *IncDec:
		return r.expr(x.X)
	case *Call:
		if fn, ok := r.prog.Funcs[x.Name]; ok {
			x.Func = fn
			if len(x.Args) != len(fn.Params) {
				return errf(x.Pos, "call to %q with %d args, want %d",
					x.Name, len(x.Args), len(fn.Params))
			}
		} else if BuiltinNames[x.Name] {
			x.Builtin = true
		} else {
			return errf(x.Pos, "call to undefined function %q", x.Name)
		}
		for _, a := range x.Args {
			if err := r.expr(a); err != nil {
				return err
			}
		}
		return nil
	case *Index:
		if err := r.expr(x.Base); err != nil {
			return err
		}
		return r.expr(x.Idx)
	case *AddrOf:
		return r.expr(x.X)
	case *Deref:
		return r.expr(x.X)
	}
	return fmt.Errorf("lang: unknown expression %T", e)
}

// BranchSummary returns per-region branch-location counts, used by reports.
func (p *Program) BranchSummary() map[Region]int {
	out := make(map[Region]int)
	for _, b := range p.Branches {
		out[b.Region]++
	}
	return out
}

// FuncNames returns the sorted names of all program functions.
func (p *Program) FuncNames() []string {
	names := make([]string, 0, len(p.Funcs))
	for n := range p.Funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
