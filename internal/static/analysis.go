// Package static implements the paper's static analysis (§2.2, Algorithms 1
// and 2): an interprocedural dataflow analysis combined with a points-to
// analysis that over-approximates the set of symbolic branches.
//
// The lattice is monotone — taint and points-to sets only grow — so the
// analysis iterates all discovered (function, symbolic-parameter-pattern)
// contexts to a global fixed point. Per the paper's footnote, functions are
// summarized per combination of symbolic parameters, not merged across call
// sites. Imprecision enters exactly where the paper says it does: the
// points-to analysis is field-insensitive (one abstract object per array),
// so a single tainted cell taints the whole object, and any branch whose
// condition may read tainted memory is labeled symbolic. Every truly
// symbolic branch is found; some concrete branches are over-labeled.
package static

import (
	"sort"

	"pathlog/internal/lang"
)

// Options configure the analysis.
type Options struct {
	// LibAsSymbolic reproduces §5.3: the merged library sources are too
	// large for the points-to analysis, so library function bodies are not
	// analyzed (conservative summaries are used instead) and every library
	// branch is labeled symbolic.
	LibAsSymbolic bool
	// MaxContexts bounds the number of (function, pattern) summaries;
	// 0 means DefaultMaxContexts.
	MaxContexts int
	// MaxPasses bounds global fixpoint iterations; 0 means DefaultMaxPasses.
	MaxPasses int
}

// Default bounds.
const (
	DefaultMaxContexts = 4096
	DefaultMaxPasses   = 64
)

// Report is the analysis outcome.
type Report struct {
	// SymbolicBranches holds the branch locations labeled symbolic.
	SymbolicBranches map[lang.BranchID]bool
	// Contexts is the number of (function, pattern) summaries computed.
	Contexts int
	// Passes is the number of global fixpoint passes.
	Passes int
}

// CountSymbolic returns the number of branch locations labeled symbolic.
func (r *Report) CountSymbolic() int {
	n := 0
	for _, v := range r.SymbolicBranches {
		if v {
			n++
		}
	}
	return n
}

// object is an abstract memory object: an array/scalar declaration site or a
// string literal.
type object interface{}

type objSet map[object]bool

func (s objSet) addAll(o objSet) bool {
	changed := false
	for k := range o {
		if !s[k] {
			s[k] = true
			changed = true
		}
	}
	return changed
}

// summaryKey identifies one analysis context.
type summaryKey struct {
	fn      *lang.FuncDecl
	pattern uint64
}

// summary is a per-context function summary.
type summary struct {
	retSym bool
	// retPt is the may-points-to set of returned pointers (accumulated
	// across contexts; pointer flow is context-insensitive).
	retPt objSet
}

// Analysis carries the global fixpoint state.
type Analysis struct {
	prog *lang.Program
	opts Options

	objTaint    map[object]bool
	globalTaint map[*lang.VarDecl]bool
	pointsTo    map[*lang.VarDecl]objSet
	summaries   map[summaryKey]*summary
	branchSym   map[lang.BranchID]bool
	order       []summaryKey // deterministic iteration order

	changed bool
	passes  int
}

// Analyze runs the static analysis to fixpoint and labels branches.
func Analyze(prog *lang.Program, opts Options) *Report {
	if opts.MaxContexts <= 0 {
		opts.MaxContexts = DefaultMaxContexts
	}
	if opts.MaxPasses <= 0 {
		opts.MaxPasses = DefaultMaxPasses
	}
	a := &Analysis{
		prog:        prog,
		opts:        opts,
		objTaint:    make(map[object]bool),
		globalTaint: make(map[*lang.VarDecl]bool),
		pointsTo:    make(map[*lang.VarDecl]objSet),
		summaries:   make(map[summaryKey]*summary),
		branchSym:   make(map[lang.BranchID]bool),
	}
	a.enqueue(summaryKey{fn: prog.Main, pattern: 0})

	for pass := 0; pass < opts.MaxPasses; pass++ {
		a.passes++
		a.changed = false
		for i := 0; i < len(a.order); i++ { // order may grow during the pass
			a.analyzeContext(a.order[i])
		}
		if !a.changed {
			break
		}
	}

	if opts.LibAsSymbolic {
		for _, b := range prog.Branches {
			if b.Region == lang.RegionLib {
				a.branchSym[b.ID] = true
			}
		}
	}

	return &Report{
		SymbolicBranches: a.branchSym,
		Contexts:         len(a.summaries),
		Passes:           a.passes,
	}
}

func (a *Analysis) enqueue(k summaryKey) *summary {
	if s, ok := a.summaries[k]; ok {
		return s
	}
	if len(a.summaries) >= a.opts.MaxContexts {
		// Context budget exhausted: merge into pattern 0 conservatively.
		if s, ok := a.summaries[summaryKey{fn: k.fn, pattern: 0}]; ok {
			return s
		}
	}
	s := &summary{retPt: make(objSet)}
	a.summaries[k] = s
	a.order = append(a.order, k)
	a.changed = true
	return s
}

func (a *Analysis) ptOf(d *lang.VarDecl) objSet {
	s, ok := a.pointsTo[d]
	if !ok {
		s = make(objSet)
		a.pointsTo[d] = s
	}
	return s
}

func (a *Analysis) taintObjects(objs objSet) bool {
	changed := false
	for o := range objs {
		if !a.objTaint[o] {
			a.objTaint[o] = true
			a.changed = true
			changed = true
		}
	}
	return changed
}

func (a *Analysis) anyObjTainted(objs objSet) bool {
	for o := range objs {
		if a.objTaint[o] {
			return true
		}
	}
	return false
}

func (a *Analysis) markBranch(site *lang.BranchSite, symbolic bool) {
	if symbolic && !a.branchSym[site.ID] {
		a.branchSym[site.ID] = true
		a.changed = true
	}
}

// ctx is the per-(function, pattern) local dataflow state.
type ctx struct {
	a     *Analysis
	fn    *lang.FuncDecl
	key   summaryKey
	taint map[*lang.VarDecl]bool // scalar and pointer locals/params
	dirty bool
}

// analyzeContext runs one context's body to a local fixed point.
func (a *Analysis) analyzeContext(k summaryKey) {
	if k.fn.Body == nil {
		return
	}
	if a.opts.LibAsSymbolic && k.fn.Region == lang.RegionLib {
		return // library bodies are not analyzed in this mode
	}
	c := &ctx{a: a, fn: k.fn, key: k, taint: make(map[*lang.VarDecl]bool)}
	for i, prm := range k.fn.Params {
		if k.pattern&(1<<uint(i)) != 0 {
			c.taint[prm.Decl] = true
		}
	}
	// Local fixpoint: taint only grows, so iterate until stable.
	for pass := 0; pass < 1+len(k.fn.Locals)+len(k.fn.Params); pass++ {
		c.dirty = false
		c.stmt(k.fn.Body)
		if !c.dirty {
			break
		}
	}
}

func (c *ctx) setTaint(d *lang.VarDecl, v bool) {
	if !v {
		return
	}
	if d.Global {
		if !c.a.globalTaint[d] {
			c.a.globalTaint[d] = true
			c.a.changed = true
			c.dirty = true
		}
		return
	}
	if !c.taint[d] {
		c.taint[d] = true
		c.dirty = true
	}
}

func (c *ctx) varTaint(d *lang.VarDecl) bool {
	if d.Global {
		return c.a.globalTaint[d]
	}
	return c.taint[d]
}

// flow is the abstract value of an expression: may it be symbolic, and what
// may it point to.
type flow struct {
	sym bool
	pt  objSet
}

func (c *ctx) stmt(s lang.Stmt) {
	switch st := s.(type) {
	case *lang.Block:
		for _, inner := range st.Stmts {
			c.stmt(inner)
		}
	case *lang.DeclStmt:
		if st.Decl.Init != nil {
			f := c.expr(st.Decl.Init)
			c.setTaint(st.Decl, f.sym)
			if len(f.pt) > 0 {
				if c.a.ptOf(st.Decl).addAll(f.pt) {
					c.a.changed = true
					c.dirty = true
				}
			}
		}
	case *lang.ExprStmt:
		c.expr(st.E)
	case *lang.Return:
		if st.E != nil {
			f := c.expr(st.E)
			sum := c.a.summaries[c.key]
			if f.sym && !sum.retSym {
				sum.retSym = true
				c.a.changed = true
				c.dirty = true
			}
			if len(f.pt) > 0 && sum.retPt.addAll(f.pt) {
				c.a.changed = true
				c.dirty = true
			}
		}
	case *lang.Break, *lang.Continue:
	case *lang.If:
		f := c.expr(st.Cond)
		c.a.markBranch(st.Branch, f.sym)
		c.stmt(st.Then)
		if st.Else != nil {
			c.stmt(st.Else)
		}
	case *lang.While:
		f := c.expr(st.Cond)
		c.a.markBranch(st.Branch, f.sym)
		c.stmt(st.Body)
		// Loop bodies can feed the condition; the enclosing local fixpoint
		// re-walks the whole body, which covers this back edge.
	case *lang.For:
		if st.Init != nil {
			c.stmt(st.Init)
		}
		if st.Cond != nil {
			f := c.expr(st.Cond)
			c.a.markBranch(st.Branch, f.sym)
		}
		if st.Post != nil {
			c.stmt(st.Post)
		}
		c.stmt(st.Body)
	}
}

func (c *ctx) expr(e lang.Expr) flow {
	switch x := e.(type) {
	case *lang.IntLit:
		return flow{}
	case *lang.StrLit:
		return flow{pt: objSet{x: true}}
	case *lang.Ident:
		d := x.Decl
		if d.IsArray {
			return flow{pt: objSet{d: true}}
		}
		return flow{sym: c.varTaint(d), pt: c.a.ptOf(d)}
	case *lang.Unary:
		f := c.expr(x.X)
		return flow{sym: f.sym}
	case *lang.Binary:
		l := c.expr(x.L)
		r := c.expr(x.R)
		// Pointer arithmetic keeps the pointer's targets.
		pt := make(objSet)
		pt.addAll(l.pt)
		pt.addAll(r.pt)
		return flow{sym: l.sym || r.sym, pt: pt}
	case *lang.Logic:
		l := c.expr(x.L)
		// The short-circuit guard branches on the left operand.
		c.a.markBranch(x.Branch, l.sym)
		r := c.expr(x.R)
		return flow{sym: l.sym || r.sym}
	case *lang.Assign:
		rhs := c.expr(x.RHS)
		effective := rhs.sym
		if x.Op != lang.ASSIGN {
			// Compound assignment reads the old value too.
			old := c.expr(x.LHS)
			effective = effective || old.sym
		}
		c.store(x.LHS, flow{sym: effective, pt: rhs.pt})
		return flow{sym: effective, pt: rhs.pt}
	case *lang.IncDec:
		f := c.expr(x.X)
		c.store(x.X, f)
		return f
	case *lang.Call:
		return c.call(x)
	case *lang.Index:
		base := c.expr(x.Base)
		idx := c.expr(x.Idx)
		loaded := base.sym || idx.sym || c.a.anyObjTainted(base.pt)
		return flow{sym: loaded}
	case *lang.AddrOf:
		switch t := x.X.(type) {
		case *lang.Ident:
			if t.Decl.IsArray {
				return flow{pt: objSet{t.Decl: true}}
			}
			return flow{pt: objSet{t.Decl: true}}
		case *lang.Index:
			base := c.expr(t.Base)
			c.expr(t.Idx)
			return flow{pt: base.pt}
		}
		return flow{}
	case *lang.Deref:
		f := c.expr(x.X)
		return flow{sym: f.sym || c.a.anyObjTainted(f.pt)}
	}
	return flow{}
}

// store models an assignment into an lvalue.
func (c *ctx) store(lhs lang.Expr, val flow) {
	switch t := lhs.(type) {
	case *lang.Ident:
		c.setTaint(t.Decl, val.sym)
		if len(val.pt) > 0 {
			if c.a.ptOf(t.Decl).addAll(val.pt) {
				c.a.changed = true
				c.dirty = true
			}
		}
	case *lang.Index:
		base := c.expr(t.Base)
		c.expr(t.Idx)
		if val.sym && c.a.taintObjects(base.pt) {
			c.dirty = true
		}
	case *lang.Deref:
		f := c.expr(t.X)
		if val.sym && c.a.taintObjects(f.pt) {
			c.dirty = true
		}
	}
}

// call models function and builtin calls.
func (c *ctx) call(x *lang.Call) flow {
	flows := make([]flow, len(x.Args))
	for i, arg := range x.Args {
		flows[i] = c.expr(arg)
	}
	if x.Builtin {
		return c.builtinCall(x, flows)
	}
	fn := x.Func

	// Bind pointer arguments: the callee parameter may point to everything
	// the actual may point to (context-insensitive pointer flow).
	for i, prm := range fn.Params {
		if len(flows[i].pt) > 0 {
			if c.a.ptOf(prm.Decl).addAll(flows[i].pt) {
				c.a.changed = true
				c.dirty = true
			}
		}
	}

	// Conservative summaries for unanalyzed library functions (§5.3 mode).
	if c.a.opts.LibAsSymbolic && fn.Region == lang.RegionLib {
		anySym := false
		for _, f := range flows {
			if f.sym || c.a.anyObjTainted(f.pt) {
				anySym = true
				break
			}
		}
		if anySym {
			// Unknown code may copy input anywhere it can reach.
			for _, f := range flows {
				if c.a.taintObjects(f.pt) {
					c.dirty = true
				}
			}
		}
		pt := make(objSet)
		for _, f := range flows {
			pt.addAll(f.pt)
		}
		return flow{sym: anySym, pt: pt}
	}

	var pattern uint64
	for i, f := range flows {
		if i >= 64 {
			break
		}
		if f.sym {
			pattern |= 1 << uint(i)
		}
	}
	sum := c.a.enqueue(summaryKey{fn: fn, pattern: pattern})
	return flow{sym: sum.retSym, pt: sum.retPt}
}

// builtinCall applies the intrinsic summaries of VM builtins.
func (c *ctx) builtinCall(x *lang.Call, flows []flow) flow {
	switch x.Name {
	case "getarg":
		// getarg(i, buf, cap): fills buf with input; length is input-derived.
		if len(flows) >= 2 && c.a.taintObjects(flows[1].pt) {
			c.dirty = true
		}
		return flow{sym: true}
	case "read":
		// read(fd, buf, n): fills buf with input; count is input-derived.
		if len(flows) >= 2 && c.a.taintObjects(flows[1].pt) {
			c.dirty = true
		}
		return flow{sym: true}
	case "argcount", "select_ready":
		// Input-dependent (argument count; environment readiness).
		return flow{sym: true}
	case "accept", "open", "listen_socket", "close", "write",
		"signal_pending", "print_int", "print_str", "print_char",
		"exit", "crash":
		return flow{}
	}
	return flow{}
}

// SymbolicBranchIDs returns the sorted list of symbolic branch IDs of a
// report, for deterministic output in tools and tests.
func (r *Report) SymbolicBranchIDs() []lang.BranchID {
	out := make([]lang.BranchID, 0, len(r.SymbolicBranches))
	for id, v := range r.SymbolicBranches {
		if v {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
