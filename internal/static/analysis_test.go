package static

import (
	"testing"

	"pathlog/internal/lang"
)

func compile(t *testing.T, srcs map[string]lang.Region) *lang.Program {
	t.Helper()
	var units []*lang.Unit
	// Deterministic order: app units first, then lib.
	for _, region := range []lang.Region{lang.RegionApp, lang.RegionLib} {
		for name, r := range srcs {
			if r == region {
				u, err := lang.ParseUnit("u", region, name)
				if err != nil {
					t.Fatalf("parse: %v", err)
				}
				units = append(units, u)
			}
		}
	}
	p, err := lang.Link(units)
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return p
}

func compileApp(t *testing.T, src string) *lang.Program {
	t.Helper()
	return compile(t, map[string]lang.Region{src: lang.RegionApp})
}

func branchAtLine(p *lang.Program, line int) *lang.BranchSite {
	for _, b := range p.Branches {
		if b.Pos.Line == line {
			return b
		}
	}
	return nil
}

func TestListing1Static(t *testing.T) {
	prog := compileApp(t, `
int fibonacci(int n) {
	int a = 0;
	int b = 1;
	int i;
	for (i = 0; i < n; i++) { int t2 = a + b; a = b; b = t2; }
	return a;
}
int main() {
	char opt[8];
	getarg(0, opt, 8);
	int result = 0;
	if (opt[0] == 'a') { result = fibonacci(20); }
	else if (opt[0] == 'b') { result = fibonacci(40); }
	print_int(result);
	return 0;
}
`)
	rep := Analyze(prog, Options{})
	ifA := branchAtLine(prog, 13)
	ifB := branchAtLine(prog, 14)
	loop := branchAtLine(prog, 6)
	if !rep.SymbolicBranches[ifA.ID] || !rep.SymbolicBranches[ifB.ID] {
		t.Error("option branches must be symbolic")
	}
	if rep.SymbolicBranches[loop.ID] {
		t.Error("fibonacci loop must stay concrete: called with constants only")
	}
	if rep.CountSymbolic() != 2 {
		t.Errorf("symbolic count: %d (%v)", rep.CountSymbolic(), rep.SymbolicBranchIDs())
	}
}

func TestPerPatternContexts(t *testing.T) {
	// check() is called with both a constant and input. Its internal branch
	// becomes symbolic (some context is symbolic), but the return value is
	// tracked per context: y from check(5) stays concrete, z from
	// check(input) is symbolic.
	prog := compileApp(t, `
int check(int v) {
	if (v > 10) { return v; }
	return 0;
}
int main() {
	char a[4];
	getarg(0, a, 4);
	int y = check(5);
	int z = check(a[0]);
	if (y == 1) { print_int(1); }
	if (z == 1) { print_int(2); }
	return 0;
}
`)
	rep := Analyze(prog, Options{})
	inner := branchAtLine(prog, 3)
	onY := branchAtLine(prog, 11)
	onZ := branchAtLine(prog, 12)
	if !rep.SymbolicBranches[inner.ID] {
		t.Error("check's branch must be symbolic (symbolic context exists)")
	}
	if rep.SymbolicBranches[onY.ID] {
		t.Error("branch on check(5) result must stay concrete (per-pattern summary)")
	}
	if !rep.SymbolicBranches[onZ.ID] {
		t.Error("branch on check(input) result must be symbolic")
	}
	if rep.Contexts < 3 { // main:0, check:0, check:1
		t.Errorf("contexts: %d", rep.Contexts)
	}
}

func TestTaintThroughBuffer(t *testing.T) {
	// Input flows through a buffer and a length loop, like strlen.
	prog := compileApp(t, `
int len_of(char *s) {
	int n = 0;
	while (s[n] != '\0') { n++; }
	return n;
}
int main() {
	char a[16];
	char copy[16];
	getarg(0, a, 16);
	int i;
	for (i = 0; i < 15; i++) { copy[i] = a[i]; }
	int n = len_of(copy);
	if (n > 3) { print_int(n); }
	return 0;
}
`)
	rep := Analyze(prog, Options{})
	strlenLoop := branchAtLine(prog, 4)
	onLen := branchAtLine(prog, 14)
	copyLoop := branchAtLine(prog, 12)
	if !rep.SymbolicBranches[strlenLoop.ID] {
		t.Error("strlen loop over tainted buffer must be symbolic")
	}
	// The computed length flows only via control dependence, which dataflow
	// taint (dynamic and static alike) does not track: the path through the
	// strlen loop already encodes the length, so replay stays sound with the
	// loop branches logged and this branch concrete.
	if rep.SymbolicBranches[onLen.ID] {
		t.Error("branch on counted length is control- not data-dependent; must stay concrete")
	}
	if rep.SymbolicBranches[copyLoop.ID] {
		t.Error("copy loop bound is constant; must stay concrete")
	}
}

func TestGlobalTaint(t *testing.T) {
	prog := compileApp(t, `
int mode = 0;
void set_mode(int m) { mode = m; }
int main() {
	char a[4];
	getarg(0, a, 4);
	set_mode(a[0]);
	if (mode == 7) { print_int(1); }
	return 0;
}
`)
	rep := Analyze(prog, Options{})
	onMode := branchAtLine(prog, 8)
	if !rep.SymbolicBranches[onMode.ID] {
		t.Error("branch on tainted global must be symbolic")
	}
}

func TestPointerReturnTaint(t *testing.T) {
	// A function returning a pointer into its (tainted) argument: loads
	// through the returned pointer must be symbolic — the paper's reason for
	// combining dataflow with points-to analysis.
	prog := compileApp(t, `
char *skip_spaces(char *s) {
	while (*s == ' ') { s++; }
	return s;
}
int main() {
	char a[16];
	getarg(0, a, 16);
	char *p = skip_spaces(a);
	if (*p == 'x') { print_int(1); }
	return 0;
}
`)
	rep := Analyze(prog, Options{})
	onDeref := branchAtLine(prog, 10)
	if onDeref == nil {
		t.Fatal("no branch at line 10")
	}
	if !rep.SymbolicBranches[onDeref.ID] {
		t.Error("deref of pointer into tainted buffer must be symbolic")
	}
}

func TestOverApproximationByAliasing(t *testing.T) {
	// Field-insensitivity: tainting one cell taints the object, so a branch
	// reading an untouched cell is (conservatively) symbolic. Dynamic
	// analysis would know better — this is exactly the imprecision that
	// makes the `static` method instrument more than needed (§2.2).
	prog := compileApp(t, `
int main() {
	char buf[16];
	char a[4];
	getarg(0, a, 4);
	buf[0] = 9;
	buf[1] = a[0];
	if (buf[0] == 9) { print_int(1); }
	return 0;
}
`)
	rep := Analyze(prog, Options{})
	onCell := branchAtLine(prog, 8)
	if !rep.SymbolicBranches[onCell.ID] {
		t.Error("whole-object taint should over-approximate this branch as symbolic")
	}
}

func TestLogicBranchMarking(t *testing.T) {
	prog := compileApp(t, `
int main() {
	char a[4];
	getarg(0, a, 4);
	int n = 3;
	if (a[0] == 'x' && n > 2) { print_int(1); }
	if (n > 2 && a[0] == 'x') { print_int(2); }
	return 0;
}
`)
	rep := Analyze(prog, Options{})
	// Line 6: && guard branches on a[0]=='x' (symbolic); the if branches on
	// the whole condition (symbolic).
	// Line 7: && guard branches on n>2 (concrete); the if is symbolic.
	var andSites, ifSites []*lang.BranchSite
	for _, b := range prog.Branches {
		switch b.Kind {
		case lang.BranchAnd:
			andSites = append(andSites, b)
		case lang.BranchIf:
			ifSites = append(ifSites, b)
		}
	}
	if len(andSites) != 2 || len(ifSites) != 2 {
		t.Fatalf("sites: %d and, %d if", len(andSites), len(ifSites))
	}
	if !rep.SymbolicBranches[andSites[0].ID] {
		t.Error("first && guard (symbolic left) must be symbolic")
	}
	if rep.SymbolicBranches[andSites[1].ID] {
		t.Error("second && guard (concrete left) must stay concrete")
	}
	for _, b := range ifSites {
		if !rep.SymbolicBranches[b.ID] {
			t.Errorf("if at %v must be symbolic", b.Pos)
		}
	}
}

func TestLibAsSymbolicMode(t *testing.T) {
	app := `
int main() {
	char a[8];
	getarg(0, a, 8);
	int n = libstrlen(a);
	if (n > 2) { print_int(n); }
	int k = 5;
	if (k == 5) { print_int(k); }
	return 0;
}
`
	lib := `
int libstrlen(char *s) {
	int n = 0;
	while (s[n] != '\0') { n++; }
	return n;
}
`
	prog := compile(t, map[string]lang.Region{app: lang.RegionApp, lib: lang.RegionLib})
	rep := Analyze(prog, Options{LibAsSymbolic: true})

	// Every lib branch is symbolic by fiat.
	for _, b := range prog.BranchesIn(lang.RegionLib) {
		if !rep.SymbolicBranches[b.ID] {
			t.Errorf("lib branch %v must be symbolic in lib-as-symbolic mode", b)
		}
	}
	// The app branch on the lib return over tainted data must be symbolic.
	var appIfs []*lang.BranchSite
	for _, b := range prog.BranchesIn(lang.RegionApp) {
		appIfs = append(appIfs, b)
	}
	if len(appIfs) != 2 {
		t.Fatalf("app branches: %d", len(appIfs))
	}
	if !rep.SymbolicBranches[appIfs[0].ID] {
		t.Error("branch on libstrlen(tainted) must be symbolic")
	}
	if rep.SymbolicBranches[appIfs[1].ID] {
		t.Error("purely concrete app branch must stay concrete")
	}
}

func TestFullLibAnalysisIsMorePrecise(t *testing.T) {
	appSrc := `
int main() {
	char a[8];
	getarg(0, a, 8);
	int n = firstbyte(a);
	if (n == 'x') { print_int(n); }
	int z = zero();
	if (z == 0) { print_int(z); }
	return 0;
}
`
	libSrc := `
int firstbyte(char *s) { return s[0]; }
int zero() { return 0; }
`
	prog := compile(t, map[string]lang.Region{appSrc: lang.RegionApp, libSrc: lang.RegionLib})

	full := Analyze(prog, Options{})
	conservative := Analyze(prog, Options{LibAsSymbolic: true})
	if full.CountSymbolic() > conservative.CountSymbolic() {
		t.Errorf("full analysis should label fewer branches symbolic: %d vs %d",
			full.CountSymbolic(), conservative.CountSymbolic())
	}
	// zero() returns a constant: with full analysis the branch on z stays
	// concrete.
	var zBranch *lang.BranchSite
	for _, b := range prog.BranchesIn(lang.RegionApp) {
		if b.Pos.Line == 8 {
			zBranch = b
		}
	}
	if zBranch == nil {
		t.Fatal("no branch at line 8")
	}
	if full.SymbolicBranches[zBranch.ID] {
		t.Error("branch on zero() must be concrete under full analysis")
	}
}

func TestSoundnessOnSelectAndRead(t *testing.T) {
	prog := compileApp(t, `
int main() {
	int ready[8];
	int n = select_ready(ready, 8);
	if (n > 0) { print_int(n); }       // environment-dependent: symbolic
	char buf[32];
	int fd = open("data");
	if (fd >= 0) {                     // fd value: concrete
		int r = read(fd, buf, 32);
		if (r > 0) { print_int(r); }   // input-dependent: symbolic
		if (buf[0] == 'h') { print_int(2); }  // input bytes: symbolic
	}
	return 0;
}
`)
	rep := Analyze(prog, Options{})
	want := map[int]bool{5: true, 8: false, 10: true, 11: true}
	for line, expect := range want {
		b := branchAtLine(prog, line)
		if b == nil {
			t.Fatalf("no branch at line %d", line)
		}
		if rep.SymbolicBranches[b.ID] != expect {
			t.Errorf("line %d: symbolic=%v want %v", line, rep.SymbolicBranches[b.ID], expect)
		}
	}
}

func TestRecursionTerminates(t *testing.T) {
	prog := compileApp(t, `
int fact(int n) {
	if (n <= 1) { return 1; }
	return n * fact(n - 1);
}
int main() {
	char a[4];
	getarg(0, a, 4);
	exit(fact(a[0] % 5));
	return 0;
}
`)
	rep := Analyze(prog, Options{})
	inner := branchAtLine(prog, 3)
	if !rep.SymbolicBranches[inner.ID] {
		t.Error("recursive branch on input must be symbolic")
	}
	if rep.Passes >= DefaultMaxPasses {
		t.Errorf("fixpoint did not converge: %d passes", rep.Passes)
	}
}
