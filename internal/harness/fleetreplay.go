package harness

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"time"

	"pathlog"
	"pathlog/internal/apps"
	"pathlog/internal/concolic"
	"pathlog/internal/core"
	"pathlog/internal/corpus"
	"pathlog/internal/fleet"
	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/obs"
	"pathlog/internal/replay"
	"pathlog/internal/static"
)

// Chaos timing for the fleet-replay experiment. Every daemon holds each
// shard for workerdHold before replaying it, which opens a wide window in
// which a worker is observably busy (/healthz inflight >= 1) and the
// killer can SIGKILL it mid-shard; stealDeadline is well below the hold,
// so every surviving wave also demonstrates a duplicate dispatch. The
// margin hold >> steal >> kill-poll keeps the kill landing before the
// steal timer fires on the victim's shard, which is what makes the retry
// counter deterministic.
const (
	workerdHold   = 750 * time.Millisecond
	stealDeadline = 400 * time.Millisecond
)

// FleetReplay drives the distributed replay fleet end to end the way the
// chaos gate in internal/fleet does, but as an inspectable experiment: a
// corpus balance loop fans its replay shards out over real shardworkerd
// daemons (cmd/shardworkerd) on localhost, and one daemon is SIGKILLed
// while it holds a shard mid-flight.
//
// The experiment checks the subsystem's three claims:
//
//   - Chaos survival: the balance loop rides out the worker death on
//     retry + work stealing and still converges.
//   - Distributed parity: the chaos trajectory is identical to an
//     in-process control run — same plans, same measurements, same merged
//     profiles once wall-clock fields are stripped. Distribution moves
//     bytes, not results.
//   - Failure handling exercised: the runner's retry, steal and
//     worker-failure counters are all nonzero, and the victim ends the
//     run marked down.
//
// The runner's event stream and final counters are written as JSONL and
// JSON artifacts when FleetReplayJournalOut / FleetReplayMetricsOut are
// set (CI uploads them).
func (c Config) FleetReplay(ctx context.Context) (*Table, error) {
	workers := c.FleetReplayWorkers
	if workers < 3 {
		workers = 3
	}

	crp, s3, err := c.fleetReplayCorpus(ctx)
	if err != nil {
		return nil, err
	}
	bounds := replay.Options{MaxRuns: c.ReplayMaxRuns, TimeBudget: c.ReplayBudget, Workers: c.ReplayWorkers}

	// Control and chaos sessions must be configured identically, so their
	// trajectories can only diverge if distribution changes results.
	session := func() *pathlog.Session {
		return pathlog.SessionOf(s3,
			pathlog.WithSyscallLog(),
			pathlog.WithAnalysisSpec(apps.UServerAnalysisScenario().Spec),
			pathlog.WithDynamicBudget(c.UServerAnalysisRunsLC, 0),
			pathlog.WithStaticOptions(static.Options{LibAsSymbolic: true}),
			pathlog.WithReplayBudget(bounds.MaxRuns, bounds.TimeBudget),
			pathlog.WithReplayWorkers(bounds.Workers))
	}
	target := c.CorpusTargetRuns
	if target <= 0 {
		target = c.AdaptiveTargetRuns
	}
	balanceOpts := func() pathlog.BalanceOptions {
		return pathlog.BalanceOptions{
			TargetReplayRuns: target,
			MaxGenerations:   c.AdaptiveMaxGenerations,
			Shards:           workers,
		}
	}

	ctrl, err := session().CorpusBalance(ctx, crp, balanceOpts())
	if err != nil {
		return nil, fmt.Errorf("harness: in-process control balance: %w", err)
	}

	bin := c.FleetReplayWorkerCmd
	if bin == "" {
		bin, err = buildShardWorkerd(ctx)
		if err != nil {
			return nil, err
		}
	}
	daemons := make([]*shardDaemon, workers)
	urls := make([]string, workers)
	for i := range daemons {
		d, err := startShardWorkerd(ctx, bin, "-delay", workerdHold.String())
		if err != nil {
			return nil, err
		}
		defer d.stop()
		daemons[i] = d
		urls[i] = d.url
	}

	runner := fleet.NewRemoteRunner(urls, s3.Name, bounds)
	runner.StealAfter = stealDeadline
	// The event journal is one obs.EventSink consumer of the runner's
	// stream — the same schema and encoder every other journal in the
	// system uses, not a private encoding.
	var journal bytes.Buffer
	sink := obs.NewEventSink(&journal)
	runner.Events = sink
	hctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	err = runner.WaitHealthy(hctx)
	cancel()
	if err != nil {
		return nil, fmt.Errorf("harness: fleet never became healthy: %w", err)
	}

	// The killer: poll every daemon's /healthz until one reports a shard
	// inflight, then SIGKILL that daemon mid-shard.
	killCtx, stopKiller := context.WithCancel(ctx)
	defer stopKiller()
	killed := make(chan string, 1)
	go func() {
		defer close(killed)
		cl := &http.Client{Timeout: time.Second}
		tick := time.NewTicker(10 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-killCtx.Done():
				return
			case <-tick.C:
			}
			for _, d := range daemons {
				if n, err := daemonInflight(cl, d.url); err == nil && n >= 1 {
					d.cmd.Process.Kill()
					killed <- d.url
					return
				}
			}
		}
	}()

	t := &Table{
		ID: "FleetReplay",
		Title: fmt.Sprintf("distributed replay fleet: corpus balance sharded over %d HTTP workers, one SIGKILLed mid-shard",
			workers),
		Header: []string{"gen", "strategy", "locs", "mean bits", "mean runs", "max runs", "repro", "promoted", "demoted"},
	}
	chaosOpts := balanceOpts()
	chaosOpts.Runner = runner
	chaosOpts.OnCorpusGeneration = func(pt pathlog.CorpusPoint) {
		t.AddRow(fmt.Sprintf("%d", pt.Generation),
			shorten(pt.Plan.Strategy, 34),
			fmt.Sprintf("%d", pt.Plan.NumInstrumented()),
			fmt.Sprintf("%.1f", pt.MeanOverheadBits),
			fmt.Sprintf("%.1f", pt.MeanReplayRuns),
			fmt.Sprintf("%d", pt.MaxReplayRuns),
			fmt.Sprintf("%d/%d", pt.Reproduced, pt.Members),
			fmt.Sprintf("%d", len(pt.Promoted)),
			fmt.Sprintf("%d", len(pt.Demoted)))
	}
	chaos, err := session().CorpusBalance(ctx, crp, chaosOpts)
	if err != nil {
		return nil, fmt.Errorf("harness: chaos balance: %w", err)
	}
	stopKiller()
	victim := <-killed

	// Artifacts before judging, so a failed run still leaves its evidence.
	eventCount := int(sink.Count())
	if c.FleetReplayJournalOut != "" {
		if err := os.WriteFile(c.FleetReplayJournalOut, journal.Bytes(), 0o644); err != nil {
			return nil, err
		}
	}
	m := runner.Metrics()
	if c.FleetReplayMetricsOut != "" {
		data, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(c.FleetReplayMetricsOut, data, 0o644); err != nil {
			return nil, err
		}
	}

	if chaos.Converged {
		t.Notes = append(t.Notes, fmt.Sprintf("fleet replay balance: converged: %s", chaos.Reason))
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf("fleet replay balance: NOT converged: %s", chaos.Reason))
	}

	up := 0
	for _, st := range runner.WorkerStatuses() {
		if st.Up {
			up++
		}
	}
	victimDown := victim != ""
	for _, st := range runner.WorkerStatuses() {
		if st.URL == fleet.WorkerURL(victim) && st.Up {
			victimDown = false
		}
	}
	if victim != "" && victimDown {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"chaos kill: SIGKILLed worker %s while it held a shard; %d of %d workers survived and the victim ended marked down",
			victim, up, workers))
	} else if victim != "" {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"chaos kill: NOT demonstrated — %s was killed but still reads as up", victim))
	} else {
		t.Notes = append(t.Notes, "chaos kill: NOT demonstrated — no worker was ever observed holding a shard")
	}

	if diag := trajectoryDiff(ctrl, chaos); diag == "" {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"distributed parity: chaos trajectory matches the in-process control exactly — %d generation(s), identical plans, measurements and merged profiles",
			len(chaos.Points)))
	} else {
		t.Notes = append(t.Notes, "distributed parity: FAILED — "+diag)
	}

	counters := fmt.Sprintf("%d retries, %d steals (%d stolen wins), %d worker failures over %d dispatches",
		m.Retries, m.Steals, m.StolenWins, m.WorkerFailures, m.Dispatched)
	if m.Retries > 0 && m.Steals > 0 && m.WorkerFailures > 0 {
		t.Notes = append(t.Notes, "failure handling exercised: "+counters)
	} else {
		t.Notes = append(t.Notes, "failure handling NOT exercised: "+counters)
	}
	if c.FleetReplayJournalOut != "" {
		t.Notes = append(t.Notes, fmt.Sprintf("event journal: %d event(s) -> %s", eventCount, c.FleetReplayJournalOut))
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf("event journal: %d event(s) observed (no -fleet-replay-journal-out)", eventCount))
	}
	return t, nil
}

// fleetReplayCorpus builds the three-member uServer corpus the chaos gate
// replays: experiments 1, 2 and 4 recorded under one low-coverage dynamic
// plan of userver-exp3, each member carrying its user input so the balance
// loop can re-record it under refined plans.
func (c Config) fleetReplayCorpus(ctx context.Context) (*corpus.Corpus, *core.Scenario, error) {
	s3, err := apps.UServerScenario(3, 72)
	if err != nil {
		return nil, nil, err
	}
	an := apps.UServerAnalysisScenario()
	dyn := an.AnalyzeDynamicContext(ctx, concolic.Options{MaxRuns: c.UServerAnalysisRunsLC})
	st := s3.AnalyzeStatic(static.Options{LibAsSymbolic: true})
	plan := instrument.BuildPlan(s3.Prog, instrument.MethodDynamic,
		instrument.Inputs{Dynamic: dyn, Static: st}, true)

	base := time.Unix(1_700_000_000, 0)
	var members []corpus.Member
	for i, exp := range []int{1, 2, 4} {
		se, err := apps.UServerScenario(exp, 72)
		if err != nil {
			return nil, nil, err
		}
		scn := &core.Scenario{Name: s3.Name, Prog: s3.Prog, Spec: s3.Spec, UserBytes: se.UserBytes}
		rec, _, err := scn.RecordContext(ctx, plan)
		if err != nil {
			return nil, nil, err
		}
		if rec == nil {
			return nil, nil, fmt.Errorf("harness: uServer experiment %d did not crash", exp)
		}
		members = append(members, corpus.Member{
			Rec:       rec,
			ModTime:   base.Add(time.Duration(i) * time.Hour),
			UserBytes: se.UserBytes,
		})
	}
	crp, err := corpus.Build(members, corpus.Options{})
	if err != nil {
		return nil, nil, err
	}
	return crp, s3, nil
}

// trajectoryDiff compares two balance trajectories generation by
// generation; it returns "" when they match and a one-line diagnosis of
// the first divergence otherwise. Wall-clock fields are stripped from the
// merged profiles before comparing.
func trajectoryDiff(ctrl, chaos *pathlog.CorpusTrajectory) string {
	if !ctrl.Converged || !chaos.Converged {
		return fmt.Sprintf("control converged=%v, chaos converged=%v", ctrl.Converged, chaos.Converged)
	}
	if len(ctrl.Points) != len(chaos.Points) {
		return fmt.Sprintf("control ran %d generations, chaos %d", len(ctrl.Points), len(chaos.Points))
	}
	for i := range ctrl.Points {
		a, b := ctrl.Points[i], chaos.Points[i]
		if a.Plan.Fingerprint() != b.Plan.Fingerprint() {
			return fmt.Sprintf("generation %d deployed different plans (control %s, chaos %s)",
				i, a.Plan.Fingerprint(), b.Plan.Fingerprint())
		}
		if a.Reproduced != b.Reproduced || a.MeanReplayRuns != b.MeanReplayRuns {
			return fmt.Sprintf("generation %d measurements diverge (control %d reproduced %.1f runs, chaos %d reproduced %.1f runs)",
				i, a.Reproduced, a.MeanReplayRuns, b.Reproduced, b.MeanReplayRuns)
		}
		if !reflect.DeepEqual(stripWallClock(a.Outcome.Profile), stripWallClock(b.Outcome.Profile)) {
			return fmt.Sprintf("generation %d merged profiles diverge", i)
		}
	}
	return ""
}

// stripWallClock zeroes the per-branch solver-time fields, the only part
// of a merged search profile that varies across process boundaries.
func stripWallClock(p *instrument.SearchProfile) *instrument.SearchProfile {
	out := *p
	out.Branches = make(map[lang.BranchID]*instrument.BranchCost, len(p.Branches))
	for id, bc := range p.Branches {
		cost := *bc
		cost.SolverTime = 0
		out.Branches[id] = &cost
	}
	return &out
}

// buildShardWorkerd compiles cmd/shardworkerd into a temp dir; the binary
// lives until the process exits.
func buildShardWorkerd(ctx context.Context) (string, error) {
	if _, err := exec.LookPath("go"); err != nil {
		return "", fmt.Errorf("harness: fleetreplay needs a worker binary: go toolchain unavailable (%v) and no -fleet-replay-worker-cmd given", err)
	}
	return buildCmd(ctx, "shardworkerd")
}

// buildCmd compiles one cmd/<name> binary into a temp dir; the binary
// lives until the process exits.
func buildCmd(ctx context.Context, name string) (string, error) {
	if _, err := exec.LookPath("go"); err != nil {
		return "", fmt.Errorf("harness: building cmd/%s needs the go toolchain: %v", name, err)
	}
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "", fmt.Errorf("harness: cannot locate module root to build cmd/%s", name)
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	dir, err := os.MkdirTemp("", "pathlog-harness-bin-*")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, name)
	cmd := exec.CommandContext(ctx, "go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("harness: build %s: %v\n%s", name, err, out)
	}
	return bin, nil
}

// shardDaemon is one running shard worker daemon.
type shardDaemon struct {
	url string
	cmd *exec.Cmd
}

func (d *shardDaemon) stop() {
	d.cmd.Process.Kill()
	d.cmd.Wait()
}

// startShardWorkerd launches a daemon on a free port and scrapes the
// "listening on http://..." line for the picked address, bounded by ctx.
func startShardWorkerd(ctx context.Context, bin string, args ...string) (*shardDaemon, error) {
	cmd := exec.Command(bin, append([]string{"-listen", "127.0.0.1:0"}, args...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("harness: start shardworkerd: %w", err)
	}
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
		io.Copy(io.Discard, stdout)
	}()
	select {
	case line, ok := <-lines:
		if !ok {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("harness: shardworkerd exited before printing its address")
		}
		url := strings.TrimPrefix(strings.TrimSpace(line), "listening on ")
		if !strings.HasPrefix(url, "http://") {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, fmt.Errorf("harness: unexpected shardworkerd startup line %q", line)
		}
		return &shardDaemon{url: url, cmd: cmd}, nil
	case <-ctx.Done():
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("harness: shardworkerd printed no address: %w", ctx.Err())
	}
}

// daemonInflight reads one daemon's /healthz inflight counter.
func daemonInflight(cl *http.Client, url string) (int, error) {
	resp, err := cl.Get(url + "/healthz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var h struct {
		Inflight int `json:"inflight"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return 0, err
	}
	return h.Inflight, nil
}
