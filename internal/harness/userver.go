package harness

import (
	"context"
	"fmt"
	"sort"

	"pathlog/internal/apps"
	"pathlog/internal/concolic"
	"pathlog/internal/core"
	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/replay"
)

// uServer analysis results are shared across Table 2, Figure 4 and Tables
// 3/4/5/8; uAnalyses computes them once per Config use.
type uAnalyses struct {
	lc instrument.Inputs
	hc instrument.Inputs
}

func (c Config) uServerAnalyses(ctx context.Context) (uAnalyses, error) {
	// Pre-deployment exploration is seeded with developer test requests —
	// the paper's engine (Oasis) is "concolic execution driven by test
	// suites", and §6 notes that manual test cases boost coverage. The
	// streams stay fully symbolic; the seeds only pick the first paths.
	an := apps.UServerAnalysisScenario()
	// §5.3: static analysis cannot process the merged library sources, so it
	// runs on the application only and treats every library branch as
	// symbolic. The static report is shared between the two coverage levels
	// (only the concolic budget differs), so run it once.
	lcDyn := an.AnalyzeDynamicContext(ctx, concolic.Options{MaxRuns: c.UServerAnalysisRunsLC})
	hcDyn := an.AnalyzeDynamicContext(ctx, concolic.Options{MaxRuns: c.UServerAnalysisRunsHC})
	if err := ctx.Err(); err != nil {
		return uAnalyses{}, err
	}
	stat := an.AnalyzeStatic(staticLibOpts())
	return uAnalyses{
		lc: instrument.Inputs{Dynamic: lcDyn, Static: stat},
		hc: instrument.Inputs{Dynamic: hcDyn, Static: stat},
	}, nil
}

// Figure3 reproduces the uServer branch histogram: per-location execution
// counts split between application and library code. The paper observes ~18M
// executions with ~10% symbolic, 81% of executions in the library but only
// 28% of symbolic executions there.
func (c Config) Figure3(ctx context.Context) (*Table, error) {
	s := apps.UServerLoadScenario(c.UServerLoadRequests, apps.DefaultHTTPRequest)
	sample := &core.Scenario{Name: s.Name, Prog: s.Prog, Spec: mustUserSpec(s)}
	// One concolic run over the user input — a sampling probe, so the static
	// half of the full analysis pipeline is not wanted here.
	rep := sample.AnalyzeDynamicContext(ctx, concolic.Options{MaxRuns: 1})

	var rows []branchRow
	for id, n := range rep.ExecCount {
		rows = append(rows, branchRow{id: int(id), execs: n, symExecs: rep.SymExecCount[id]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })

	t := &Table{
		ID:     "Figure 3",
		Title:  fmt.Sprintf("uServer branch histogram, %d requests", c.UServerLoadRequests),
		Header: []string{"region", "branch", "where", "execs", "symbolic execs"},
	}
	var total, sym, libExecs, libSym int64
	symLocs := 0
	for _, r := range rows {
		b := s.Prog.Branches[r.id]
		total += r.execs
		sym += r.symExecs
		if b.Region == lang.RegionLib {
			libExecs += r.execs
			libSym += r.symExecs
		}
		if r.symExecs > 0 {
			symLocs++
		}
		t.AddRow(b.Region.String(), fmt.Sprintf("b%d", r.id),
			fmt.Sprintf("%s@%s:%d", b.Func, b.Pos.Unit, b.Pos.Line),
			fmt.Sprintf("%d", r.execs), fmt.Sprintf("%d", r.symExecs))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("total branch executions: %d; symbolic: %d (%.0f%%; paper ~10%%)",
			total, sym, 100*float64(sym)/float64(total)),
		fmt.Sprintf("library share of executions: %.0f%% (paper 81%%); of symbolic executions: %.0f%% (paper 28%%)",
			100*float64(libExecs)/float64(total), 100*float64(libSym)/float64(max64(sym, 1))),
		fmt.Sprintf("symbolic branch locations: %d (paper: 53)", symLocs))
	return t, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Table2 reproduces the uServer instrumented-branch-location counts for the
// four methods under low and high analysis coverage.
func (c Config) Table2(ctx context.Context) (*Table, error) {
	an, err := c.uServerAnalyses(ctx)
	if err != nil {
		return nil, err
	}
	prog := apps.UServerProgram()
	s := apps.UServerLoadScenario(2, apps.DefaultHTTPRequest)

	t := &Table{
		ID:     "Table 2",
		Title:  "instrumented branch locations in the uServer",
		Header: []string{"config", "LC", "HC", "LC app/lib", "HC app/lib"},
	}
	for _, m := range instrument.Methods {
		lcPlan := s.Plan(m, an.lc, true)
		hcPlan := s.Plan(m, an.hc, true)
		t.AddRow(m.String(),
			fmt.Sprintf("%d", lcPlan.NumInstrumented()),
			fmt.Sprintf("%d", hcPlan.NumInstrumented()),
			fmt.Sprintf("%d/%d", lcPlan.InstrumentedIn(prog, lang.RegionApp),
				lcPlan.InstrumentedIn(prog, lang.RegionLib)),
			fmt.Sprintf("%d/%d", hcPlan.InstrumentedIn(prog, lang.RegionApp),
				hcPlan.InstrumentedIn(prog, lang.RegionLib)))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("total branch locations: app %d, lib %d (paper: 5104 app, 8516 lib)",
			len(prog.BranchesIn(lang.RegionApp)), len(prog.BranchesIn(lang.RegionLib))),
		"paper HC: dynamic 246, dynamic+static 1490, static 2104, all 5104;",
		"coverage raises dynamic's count and lowers dynamic+static's (§5.3)")
	return t, nil
}

// Figure4 reproduces the uServer CPU-time and storage measurements per
// configuration: dynamic and dynamic+static at both coverages, static, all
// branches, against the uninstrumented baseline.
func (c Config) Figure4(ctx context.Context) (*Table, error) {
	an, err := c.uServerAnalyses(ctx)
	if err != nil {
		return nil, err
	}
	s := apps.UServerLoadScenario(c.UServerLoadRequests, apps.DefaultHTTPRequest)

	t := &Table{
		ID:    "Figure 4",
		Title: fmt.Sprintf("uServer CPU time and storage, %d requests", c.UServerLoadRequests),
		Header: []string{"config", "instr. locations", "cpu time", "rel cpu",
			"proj. native overhead", "storage bytes", "bytes/request", "syslog bytes"},
	}
	none := s.Plan(instrument.MethodNone, instrument.Inputs{}, false)
	baseline, _, err := measure(ctx, s, none, c.OverheadRounds)
	if err != nil {
		return nil, err
	}
	t.AddRow("none", "0", fmtDur(baseline), "100%", "+0%", "0", "0", "0")

	type cfg struct {
		label string
		m     instrument.Method
		in    instrument.Inputs
	}
	cfgs := []cfg{
		{"dynamic (lc)", instrument.MethodDynamic, an.lc},
		{"dynamic (hc)", instrument.MethodDynamic, an.hc},
		{"dynamic+static (lc)", instrument.MethodDynamicStatic, an.lc},
		{"dynamic+static (hc)", instrument.MethodDynamicStatic, an.hc},
		{"static", instrument.MethodStatic, an.hc},
		{"all branches", instrument.MethodAll, an.hc},
	}
	for _, cf := range cfgs {
		plan := s.Plan(cf.m, cf.in, true)
		avg, stats, err := measure(ctx, s, plan, c.OverheadRounds)
		if err != nil {
			return nil, err
		}
		storage := stats.TraceBytes + stats.SyslogBytes
		t.AddRow(cf.label, fmt.Sprintf("%d", plan.NumInstrumented()),
			fmtDur(avg), relCPU(avg, baseline),
			projectedOverhead(stats.TraceBits, stats.Steps),
			fmt.Sprintf("%d", storage),
			fmt.Sprintf("%.1f", float64(storage)/float64(c.UServerLoadRequests)),
			fmt.Sprintf("%d", stats.SyslogBytes))
	}
	t.Notes = append(t.Notes,
		"paper: dynamic 17%, dynamic+static 20% overhead; static only marginally better than all branches",
		"paper storage: ~50 bytes/request under dynamic and dynamic+static")
	return t, nil
}

// replayCell renders a replay result as the paper's tables do.
func replayCell(res *replay.Result) string {
	if !res.Reproduced {
		return Infinity
	}
	return fmtDur(res.Elapsed)
}

// uServerReplayConfigs enumerates the LC/HC × method grid of Table 3.
type uReplayRow struct {
	label string
	m     instrument.Method
	lc    bool
}

var uReplayRows = []uReplayRow{
	{"dynamic", instrument.MethodDynamic, true},
	{"dynamic", instrument.MethodDynamic, false},
	{"dynamic+static", instrument.MethodDynamicStatic, true},
	{"dynamic+static", instrument.MethodDynamicStatic, false},
	{"static", instrument.MethodStatic, false},
	{"all branches", instrument.MethodAll, false},
}

// Tables3and4 reproduces the uServer replay-time matrix (Table 3) and the
// logged/not-logged symbolic-branch statistics (Table 4) in one pass over
// the five input scenarios.
func (c Config) Tables3and4(ctx context.Context) (*Table, *Table, error) {
	an, err := c.uServerAnalyses(ctx)
	if err != nil {
		return nil, nil, err
	}
	t3 := &Table{
		ID:     "Table 3",
		Title:  "uServer bug reproduction times, five input scenarios",
		Header: []string{"exp", "config", "coverage", "replay time", "runs", "reproduced"},
	}
	t4 := &Table{
		ID:    "Table 4",
		Title: "symbolic branch locations/executions logged and not logged",
		Header: []string{"exp", "config", "coverage", "logged locs/execs",
			"NOT logged locs/execs"},
	}
	for exp := 1; exp <= len(apps.UServerExperiments); exp++ {
		s, err := apps.UServerScenario(exp, 72)
		if err != nil {
			return nil, nil, err
		}
		for _, rowCfg := range uReplayRows {
			in := an.hc
			cov := "HC"
			if rowCfg.lc {
				in = an.lc
				cov = "LC"
			}
			if rowCfg.m == instrument.MethodStatic || rowCfg.m == instrument.MethodAll {
				cov = "-"
			}
			plan := s.Plan(rowCfg.m, in, true)
			rec, _, err := record(ctx, s, plan)
			if err != nil {
				return nil, nil, fmt.Errorf("exp%d/%s: %w", exp, rowCfg.label, err)
			}
			if rec == nil {
				return nil, nil, fmt.Errorf("exp%d/%s: no crash", exp, rowCfg.label)
			}
			res, err := c.replay(ctx, s, rec)
			if err != nil {
				return nil, nil, fmt.Errorf("exp%d/%s: %w", exp, rowCfg.label, err)
			}
			t3.AddRow(fmt.Sprintf("%d", exp), rowCfg.label, cov, replayCell(res),
				fmt.Sprintf("%d", res.Runs), fmt.Sprintf("%v", res.Reproduced))
			logged := "-"
			notLogged := "-"
			if res.Reproduced {
				logged = fmt.Sprintf("%d / %d", res.SymLoggedLocs, res.SymLoggedExecs)
				notLogged = fmt.Sprintf("%d / %d", res.SymNotLoggedLocs, res.SymNotLoggedExecs)
			}
			t4.AddRow(fmt.Sprintf("%d", exp), rowCfg.label, cov, logged, notLogged)
		}
	}
	t3.Notes = append(t3.Notes,
		"paper: all branches and static fastest; dynamic+static slightly slower; dynamic worst,",
		"with several LC entries not finishing within one hour (inf)")
	t4.Notes = append(t4.Notes,
		"paper: replay time correlates with NOT-logged symbolic branch locations;",
		"static and all branches always show 0 not logged")
	return t3, t4, nil
}

// Tables5and8 reproduces the no-syscall-logging experiments: replay times
// (Table 5) and branch statistics (Table 8) for experiments 1 and 4.
func (c Config) Tables5and8(ctx context.Context) (*Table, *Table, error) {
	an, err := c.uServerAnalyses(ctx)
	if err != nil {
		return nil, nil, err
	}
	t5 := &Table{
		ID:     "Table 5",
		Title:  "uServer reproduction times without syscall-result logging (exps 1, 4)",
		Header: []string{"exp", "config", "coverage", "replay time", "runs", "reproduced"},
	}
	t8 := &Table{
		ID:    "Table 8",
		Title: "symbolic branch stats without syscall-result logging (exps 1, 4)",
		Header: []string{"exp", "config", "coverage", "logged locs/execs",
			"NOT logged locs/execs"},
	}
	for _, exp := range []int{1, 4} {
		s, err := apps.UServerScenario(exp, 72)
		if err != nil {
			return nil, nil, err
		}
		for _, rowCfg := range uReplayRows {
			in := an.hc
			cov := "HC"
			if rowCfg.lc {
				in = an.lc
				cov = "LC"
			}
			if rowCfg.m == instrument.MethodStatic || rowCfg.m == instrument.MethodAll {
				cov = "-"
			}
			// Plans without syscall logging: the recording carries no
			// syscall results, so replay falls back to the §3.3 models.
			plan := s.Plan(rowCfg.m, in, false)
			rec, _, err := record(ctx, s, plan)
			if err != nil {
				return nil, nil, fmt.Errorf("exp%d/%s: %w", exp, rowCfg.label, err)
			}
			if rec == nil {
				return nil, nil, fmt.Errorf("exp%d/%s: no crash", exp, rowCfg.label)
			}
			res, err := c.replay(ctx, s, rec)
			if err != nil {
				return nil, nil, fmt.Errorf("exp%d/%s: %w", exp, rowCfg.label, err)
			}
			t5.AddRow(fmt.Sprintf("%d", exp), rowCfg.label, cov, replayCell(res),
				fmt.Sprintf("%d", res.Runs), fmt.Sprintf("%v", res.Reproduced))
			logged := "-"
			notLogged := "-"
			if res.Reproduced {
				logged = fmt.Sprintf("%d / %d", res.SymLoggedLocs, res.SymLoggedExecs)
				notLogged = fmt.Sprintf("%d / %d", res.SymNotLoggedLocs, res.SymNotLoggedExecs)
			}
			t8.AddRow(fmt.Sprintf("%d", exp), rowCfg.label, cov, logged, notLogged)
		}
	}
	t5.Notes = append(t5.Notes,
		"paper: all configurations take significantly longer than with syscall logging (Table 3);",
		"the engine must search for the results of the modeled system calls")
	t8.Notes = append(t8.Notes,
		"paper: modeled syscall results add symbolic executions that no branch log covers")
	return t5, t8, nil
}

// Compress reports the branch-log gzip compression ratio (§5.3 text:
// 10-20x). The load workload is re-armed with the crash signal so Record
// yields a recording whose trace can be compressed.
func (c Config) Compress(ctx context.Context) (*Table, error) {
	an, err := c.uServerAnalyses(ctx)
	if err != nil {
		return nil, err
	}
	load := apps.UServerLoadScenario(c.UServerLoadRequests, apps.DefaultHTTPRequest)
	crashSpec := *load.Spec
	crashSpec.CrashSignalAfterConns = true
	s := &core.Scenario{Name: "compress", Prog: load.Prog, Spec: &crashSpec,
		UserBytes: load.UserBytes}

	t := &Table{
		ID:     "Compression",
		Title:  "branch-log gzip ratio (paper: 10-20x)",
		Header: []string{"config", "raw bytes", "ratio"},
	}
	for _, m := range []instrument.Method{instrument.MethodStatic, instrument.MethodAll} {
		plan := s.Plan(m, an.hc, false)
		rec, _, err := record(ctx, s, plan)
		if err != nil {
			return nil, err
		}
		if rec == nil {
			return nil, fmt.Errorf("compress: load run did not crash")
		}
		t.AddRow(m.String(), fmt.Sprintf("%d", rec.Trace.SizeBytes()),
			fmt.Sprintf("%.1fx", rec.Trace.CompressionRatio()))
	}
	return t, nil
}
