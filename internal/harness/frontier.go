package harness

import (
	"context"
	"fmt"

	"pathlog"
	"pathlog/internal/apps"
	"pathlog/internal/static"
)

// Frontier renders the paper's titular balance as one table: the Pareto
// frontier of (record overhead, estimated debug time) over the uServer,
// swept by Session.Frontier across the paper's methods plus Budgeted
// intermediate points. Each frontier plan additionally runs the load
// workload once so the modeled bits/run sit next to measured logged bits.
func (c Config) Frontier(ctx context.Context) (*Table, error) {
	s := apps.UServerLoadScenario(c.UServerLoadRequests, apps.DefaultHTTPRequest)
	sess := pathlog.SessionOf(s,
		pathlog.WithAnalysisSpec(apps.UServerAnalysisScenario().Spec),
		pathlog.WithDynamicBudget(c.UServerAnalysisRunsHC, 0),
		pathlog.WithStaticOptions(static.Options{LibAsSymbolic: true}),
		pathlog.WithSyscallLog(),
		pathlog.WithReplayWorkers(c.ReplayWorkers),
	)
	points, err := sess.Frontier(ctx)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "Frontier",
		Title: "overhead/debug-time Pareto frontier, uServer (the paper's titular balance)",
		Header: []string{"strategy", "instr. locations", "est bits/run",
			"est replay runs", "measured bits", "fingerprint"},
	}
	for _, pt := range points {
		measured := "0"
		if pt.Plan.Instruments() {
			_, stats, err := sess.RecordWith(ctx, pt.Plan, nil)
			if err != nil {
				return nil, fmt.Errorf("frontier %s: %w", pt.Strategy, err)
			}
			measured = fmt.Sprintf("%d", stats.TraceBits)
		}
		t.AddRow(pt.Strategy,
			fmt.Sprintf("%d", pt.Plan.NumInstrumented()),
			fmt.Sprintf("%.1f", pt.Overhead),
			fmt.Sprintf("%.1f", pt.ReplayRuns),
			measured,
			pt.Plan.Fingerprint())
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d Pareto-optimal strategies; estimated replay runs strictly decrease as overhead rises", len(points)),
		"estimates come from the concolic profile (per-branch hit counts); unvisited branches are priced with priors")
	return t, nil
}
