package harness

import (
	"bytes"
	"context"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"
)

// fastConfig shrinks every knob so the whole suite runs in CI time.
func fastConfig() Config {
	c := DefaultConfig()
	c.MicroLoopIters = 5000
	c.OverheadRounds = 1
	c.SmallWorkloadRounds = 5
	c.CoreutilAnalysisRuns = 1000
	c.UServerLoadRequests = 4
	c.UServerAnalysisRunsLC = 3
	c.UServerAnalysisRunsHC = 12
	c.DiffAnalysisRuns = 10
	c.ReplayMaxRuns = 1500
	c.ReplayBudget = 10 * time.Second
	return c
}

func cell(t *testing.T, tbl *Table, row, col int) string {
	t.Helper()
	if row >= len(tbl.Rows) || col >= len(tbl.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d); rows=%d", tbl.ID, row, col, len(tbl.Rows))
	}
	return tbl.Rows[row][col]
}

func TestTableRender(t *testing.T) {
	tbl := &Table{
		ID:     "Test",
		Title:  "demo",
		Header: []string{"a", "bee"},
		Notes:  []string{"a note"},
	}
	tbl.AddRow("1", "2")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== Test — demo ==", "a  bee", "1  2", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestMicroLoopShape(t *testing.T) {
	tbl, err := fastConfig().MicroLoop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// All-branches must log one bit per loop iteration (plus setup checks).
	if cell(t, tbl, 1, 4) == "0" {
		t.Error("all-branches logged nothing")
	}
}

func TestMicroFibShape(t *testing.T) {
	tbl, err := fastConfig().MicroFib(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Rows: none + 4 methods; the three selective methods instrument exactly
	// the two option branches of Listing 1.
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows[1:4] {
		if row[1] != "2" {
			t.Errorf("%s instruments %s locations, want 2", row[0], row[1])
		}
	}
}

func TestFigure1Assumptions(t *testing.T) {
	tbl, err := fastConfig().Figure1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no branch rows")
	}
	// The paper's assumption: no *application* location mixes symbolic and
	// concrete executions in a run of mkdir. Library locations may mix — the
	// paper notes uClibc bars are "almost but not completely" covered.
	found := false
	for _, n := range tbl.Notes {
		if strings.Contains(n, "application locations mixing symbolic and concrete executions: 0") {
			found = true
		}
	}
	if !found {
		t.Errorf("app mixed-location note missing or nonzero: %v", tbl.Notes)
	}
}

func TestTable1AllReproduced(t *testing.T) {
	tbl, err := fastConfig().Table1(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 16 { // 4 programs x 4 methods
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if row[4] != "true" {
			t.Errorf("%s/%s not reproduced", row[0], row[1])
		}
	}
}

func TestTable2Shape(t *testing.T) {
	c := fastConfig()
	tbl, err := c.Table2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	counts := map[string][2]string{}
	for _, row := range tbl.Rows {
		counts[row[0]] = [2]string{row[1], row[2]}
	}
	// dynamic must instrument fewer locations than dynamic+static, which
	// must not exceed static, which must not exceed all branches (§2.3).
	dynHC := atoiT(t, counts["dynamic"][1])
	dsHC := atoiT(t, counts["dynamic+static"][1])
	stHC := atoiT(t, counts["static"][1])
	allHC := atoiT(t, counts["all branches"][1])
	if !(dynHC < dsHC && dsHC <= stHC && stHC <= allHC) {
		t.Errorf("ordering violated: dyn=%d ds=%d st=%d all=%d", dynHC, dsHC, stHC, allHC)
	}
	// Coverage must not shrink dynamic's set.
	if atoiT(t, counts["dynamic"][0]) > dynHC {
		t.Error("dynamic LC > HC")
	}
}

func atoiT(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func TestFigure4StorageOrdering(t *testing.T) {
	c := fastConfig()
	tbl, err := c.Figure4(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Row order: none, dyn lc, dyn hc, ds lc, ds hc, static, all.
	if len(tbl.Rows) != 7 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	dynHC := atoiT(t, cell(t, tbl, 2, 5))
	dsHC := atoiT(t, cell(t, tbl, 4, 5))
	static := atoiT(t, cell(t, tbl, 5, 5))
	all := atoiT(t, cell(t, tbl, 6, 5))
	if !(dynHC <= dsHC && dsHC <= static && static <= all) {
		t.Errorf("storage ordering violated: dyn=%d ds=%d st=%d all=%d",
			dynHC, dsHC, static, all)
	}
	if all == 0 {
		t.Error("all-branches run logged nothing")
	}
}

func TestTables6and7DiffContrast(t *testing.T) {
	c := fastConfig()
	t6, t7, err := c.Tables6and7(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(t6.Rows) != 8 || len(t7.Rows) != 8 {
		t.Fatalf("rows: %d/%d", len(t6.Rows), len(t7.Rows))
	}
	// The three non-dynamic methods must reproduce both experiments.
	for _, row := range t6.Rows {
		if row[1] == "dynamic" {
			continue // may or may not finish, §5.4 says inf
		}
		if row[4] != "true" {
			t.Errorf("diff %s/%s not reproduced", row[0], row[1])
		}
	}
}

// TestFrontierUServer is the acceptance check for the Planner redesign:
// the uServer sweep must return at least 4 distinct Pareto points whose
// estimated replay runs decrease monotonically as estimated overhead
// rises — the paper's titular balance, queryable.
func TestFrontierUServer(t *testing.T) {
	tbl, err := fastConfig().Frontier(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) < 4 {
		t.Fatalf("frontier has %d points, want >= 4:\n%v", len(tbl.Rows), tbl.Rows)
	}
	fps := map[string]bool{}
	prevOver, prevRuns := -1.0, 0.0
	for i, row := range tbl.Rows {
		if fps[row[5]] {
			t.Errorf("duplicate fingerprint %s", row[5])
		}
		fps[row[5]] = true
		over := atofT(t, row[2])
		runs := atofT(t, row[3])
		if i > 0 {
			if !(over > prevOver) {
				t.Errorf("row %d: overhead %.1f not above %.1f", i, over, prevOver)
			}
			if !(runs < prevRuns) {
				t.Errorf("row %d: replay runs %.1f not below %.1f", i, runs, prevRuns)
			}
		}
		prevOver, prevRuns = over, runs
	}
}

func atofT(t *testing.T, s string) float64 {
	t.Helper()
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("not a number: %q", s)
	}
	return f
}

// TestAdaptiveShape runs the feedback-loop experiment at test scale and
// checks the paper's claim holds structurally: replay runs never rise
// across generations, the final generation reproduces within the target,
// and its recorded bits stay below the all-branches bar. The artifact
// JSONs round-trip through the Config knobs CI uses.
func TestAdaptiveShape(t *testing.T) {
	c := fastConfig()
	c.AdaptiveTrajectoryOut = t.TempDir() + "/trajectory.json"
	c.AdaptiveProfileOut = t.TempDir() + "/profile.json"
	tbl, err := c.Adaptive(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Last row is the all-branches bar; at least two generations before it.
	if len(tbl.Rows) < 3 {
		t.Fatalf("adaptive table has %d rows, want >= 3:\n%v", len(tbl.Rows), tbl.Rows)
	}
	gens := tbl.Rows[:len(tbl.Rows)-1]
	bar := tbl.Rows[len(tbl.Rows)-1]
	prevRuns := -1.0
	for i, row := range gens {
		runs := atofT(t, row[4])
		if i > 0 && runs > prevRuns {
			t.Errorf("generation %d replay runs rose: %.0f after %.0f", i, runs, prevRuns)
		}
		prevRuns = runs
	}
	final := gens[len(gens)-1]
	if final[6] != "true" {
		t.Errorf("final generation did not reproduce: %v", final)
	}
	if atofT(t, final[4]) > float64(c.AdaptiveTargetRuns) {
		t.Errorf("final generation used %s replay runs, target %d", final[4], c.AdaptiveTargetRuns)
	}
	if atofT(t, final[3]) >= atofT(t, bar[3]) {
		t.Errorf("bits/run %s not below the all-branches bar %s", final[3], bar[3])
	}
	for _, path := range []string{c.AdaptiveTrajectoryOut, c.AdaptiveProfileOut} {
		if _, err := os.Stat(path); err != nil {
			t.Errorf("artifact missing: %v", err)
		}
	}
}

func TestCompressRatio(t *testing.T) {
	tbl, err := fastConfig().Compress(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := fastConfig().Run(context.Background(), "nope", &buf); err == nil {
		t.Fatal("unknown experiment must error")
	}
}

func TestRunNamedExperiment(t *testing.T) {
	var buf bytes.Buffer
	if err := fastConfig().Run(context.Background(), "micro-fib", &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Micro 2") {
		t.Errorf("output: %s", buf.String())
	}
}

func TestSummaryReduction(t *testing.T) {
	tbl, err := fastConfig().Summary(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows: %d", len(tbl.Rows))
	}
	// dynamic+static must never log more bits than static (§2.3: it removes
	// dynamically-proven-concrete branches from static's set).
	for _, row := range tbl.Rows {
		st := atoiT(t, row[1])
		ds := atoiT(t, row[2])
		if ds > st {
			t.Errorf("%s: dyn+static bits %d > static bits %d", row[0], ds, st)
		}
	}
}

func TestStoreShape(t *testing.T) {
	c := fastConfig()
	c.StoreDir = t.TempDir()
	tbl, err := c.Store(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var before, withStore, measured int
	for _, row := range tbl.Rows {
		switch row[0] {
		case "cold (no store)":
			before++
			if row[5] == "yes" {
				t.Errorf("storeless sweep claims a measured point: %v", row)
			}
		case "cold + store":
			withStore++
			if row[5] == "yes" {
				measured++
				if row[6] == "+0.0" && row[7] == "+0.0" {
					t.Errorf("measured point renders zero drift on both axes: %v", row)
				}
			}
		default:
			t.Errorf("unknown sweep label %q", row[0])
		}
	}
	if before == 0 || withStore == 0 {
		t.Fatalf("missing sweep phase: before=%d withStore=%d", before, withStore)
	}
	// The acceptance bar: the store-backed cold sweep carries measured
	// ground truth the storeless one cannot.
	if measured == 0 {
		t.Fatalf("cold + store sweep has no measured points:\n%+v", tbl.Rows)
	}
	// The store directory is left populated for inspection.
	if entries, err := os.ReadDir(c.StoreDir + "/plans"); err != nil || len(entries) == 0 {
		t.Errorf("store dir not populated: %v", err)
	}
}
