package harness

import (
	"context"
	"fmt"
	"sort"

	"pathlog/internal/apps"
	"pathlog/internal/concolic"
	"pathlog/internal/core"
	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/world"
)

// healthyMkdir returns a non-crashing mkdir workload for branch-behavior and
// overhead measurements (Figures 1 and 2 profile normal runs).
func (c Config) healthyMkdir() (*core.Scenario, error) {
	s, err := apps.CoreutilScenario("mkdir", c.CoreutilArgLen)
	if err != nil {
		return nil, err
	}
	s.UserBytes = map[string][]byte{
		"arg0": []byte("-p"),
		"arg1": []byte("a/b"),
		"arg2": []byte("-v"),
	}
	return s, nil
}

// Figure1 reproduces the mkdir branch-behavior histogram: per branch
// location, total executions and symbolic-condition executions of a sample
// run. The paper's two assumptions must be visible in the data: few
// locations carry all symbolic executions, and each location is either
// always symbolic or always concrete.
func (c Config) Figure1(ctx context.Context) (*Table, error) {
	s, err := c.healthyMkdir()
	if err != nil {
		return nil, err
	}
	// A single concolic run over the user input is the paper's "sample run
	// with concrete inputs, recording per-branch symbolic/concrete" — a
	// sampling probe, so no static pass is wanted here.
	sample := &core.Scenario{Name: s.Name, Prog: s.Prog, Spec: mustUserSpec(s)}
	rep := sample.AnalyzeDynamicContext(ctx, concolic.Options{MaxRuns: 1})

	var rows []branchRow
	for id, n := range rep.ExecCount {
		rows = append(rows, branchRow{id: int(id), execs: n, symExecs: rep.SymExecCount[id]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })

	t := &Table{
		ID:     "Figure 1",
		Title:  "executions per branch location, sample run of mkdir",
		Header: []string{"branch", "kind", "where", "execs", "symbolic execs"},
	}
	mixedApp, mixedLib, withSym := 0, 0, 0
	for _, r := range rows {
		b := s.Prog.Branches[r.id]
		t.AddRow(fmt.Sprintf("b%d", r.id), b.Kind.String(),
			fmt.Sprintf("%s@%s:%d", b.Func, b.Pos.Unit, b.Pos.Line),
			fmt.Sprintf("%d", r.execs), fmt.Sprintf("%d", r.symExecs))
		if r.symExecs > 0 {
			withSym++
			if r.symExecs < r.execs {
				if b.Region == lang.RegionLib {
					mixedLib++
				} else {
					mixedApp++
				}
			}
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("branch locations executed: %d; with symbolic executions: %d",
			len(rows), withSym),
		fmt.Sprintf("application locations mixing symbolic and concrete executions: %d (paper: black bars fully cover gray bars)", mixedApp),
		fmt.Sprintf("library locations mixing: %d (paper: library bars \"almost but not completely\" covered)", mixedLib))
	return t, nil
}

// branchRow is one Figure 1/3 histogram entry.
type branchRow struct {
	id       int
	execs    int64
	symExecs int64
}

func mustUserSpec(s *core.Scenario) *world.Spec {
	spec, err := s.UserSpec()
	if err != nil {
		panic(err)
	}
	return spec
}

// Figure2 reproduces mkdir's normalized CPU time under the four
// instrumentation methods (plus none). The paper: dynamic, dynamic+static
// and static are near-identical; all-branches pays ~31%.
func (c Config) Figure2(ctx context.Context) (*Table, error) {
	s, err := c.healthyMkdir()
	if err != nil {
		return nil, err
	}
	in, err := analyze(ctx, apps.AnalysisSpec(s), c.CoreutilAnalysisRuns, false)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "Figure 2",
		Title: "mkdir CPU time, normalized to the uninstrumented version",
		Header: []string{"config", "instr. locations", "cpu time", "rel cpu",
			"proj. native overhead", "logged bits"},
	}
	none := s.Plan(instrument.MethodNone, in, true)
	baseline, _, err := measure(ctx, s, none, c.SmallWorkloadRounds)
	if err != nil {
		return nil, err
	}
	t.AddRow("none", "0", fmtDur(baseline), "100%", "+0%", "0")
	for _, m := range instrument.Methods {
		plan := s.Plan(m, in, true)
		avg, stats, err := measure(ctx, s, plan, c.SmallWorkloadRounds)
		if err != nil {
			return nil, err
		}
		t.AddRow(m.String(), fmt.Sprintf("%d", plan.NumInstrumented()),
			fmtDur(avg), relCPU(avg, baseline),
			projectedOverhead(stats.TraceBits, stats.Steps),
			fmt.Sprintf("%d", stats.TraceBits))
	}
	t.Notes = append(t.Notes,
		"paper: dynamic ≈ dynamic+static ≈ static; all branches slowest (~131%)")
	return t, nil
}

// Table1 reproduces the coreutils bug-replay times: all four programs under
// all four methods (the paper reports 1-1.5s, identical across methods).
func (c Config) Table1(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:     "Table 1",
		Title:  "time to replay a real bug in four coreutils programs",
		Header: []string{"program", "config", "replay time", "runs", "reproduced"},
	}
	for _, name := range apps.CoreutilNames() {
		s, err := apps.CoreutilScenario(name, c.CoreutilArgLen)
		if err != nil {
			return nil, err
		}
		in, err := analyze(ctx, apps.AnalysisSpec(s), c.CoreutilAnalysisRuns, false)
		if err != nil {
			return nil, err
		}
		for _, m := range instrument.Methods {
			plan := s.Plan(m, in, true)
			rec, _, err := record(ctx, s, plan)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", name, m, err)
			}
			if rec == nil {
				return nil, fmt.Errorf("%s/%v: user run did not crash", name, m)
			}
			res, err := c.replay(ctx, s, rec)
			if err != nil {
				return nil, fmt.Errorf("%s/%v: %w", name, m, err)
			}
			cell := fmtDur(res.Elapsed)
			if !res.Reproduced {
				cell = Infinity
			}
			t.AddRow(name, m.String(), cell,
				fmt.Sprintf("%d", res.Runs), fmt.Sprintf("%v", res.Reproduced))
		}
	}
	t.Notes = append(t.Notes,
		"paper: ~1-1.5s per program, same for all four configurations; ESD took 10-15s")
	return t, nil
}
