package harness

import (
	"context"
	"fmt"

	"pathlog"
	"pathlog/internal/apps"
	"pathlog/internal/static"
)

// Adaptive reproduces the paper's feedback-loop claim on the uServer:
// starting from a low-coverage dynamic plan whose replay blows past the
// budget, AutoBalance promotes the branches the search blames until the
// bug replays within the target — replay runs drop monotonically across
// generations while recorded bits/run grow sublinearly compared to
// instrumenting all branches. Input scenario 3 (cookies and
// percent-escapes) exercises the parser paths a thin concolic budget
// misses hardest.
//
// When AdaptiveTrajectoryOut / AdaptiveProfileOut are set, the
// per-generation trajectory and the final generation's search profile are
// written as JSON artifacts (CI uploads them next to the ReplayWorkers
// bench).
func (c Config) Adaptive(ctx context.Context) (*Table, error) {
	s, err := apps.UServerScenario(3, 72)
	if err != nil {
		return nil, err
	}
	sess := pathlog.SessionOf(s,
		pathlog.WithAnalysisSpec(apps.UServerAnalysisScenario().Spec),
		pathlog.WithDynamicBudget(c.UServerAnalysisRunsLC, 0),
		pathlog.WithStaticOptions(static.Options{LibAsSymbolic: true}),
		pathlog.WithSyscallLog(),
		pathlog.WithStrategy(pathlog.Dynamic()),
		pathlog.WithReplayBudget(c.ReplayMaxRuns, c.ReplayBudget),
		pathlog.WithReplayWorkers(c.ReplayWorkers),
	)
	tr, err := sess.AutoBalance(ctx, nil, pathlog.BalanceOptions{
		TargetReplayRuns: c.AdaptiveTargetRuns,
		MaxGenerations:   c.AdaptiveMaxGenerations,
	})
	if err != nil {
		return nil, err
	}

	// The comparison bar: what logging every branch would have cost on the
	// same workload.
	allPlan, err := sess.PlanWith(ctx, pathlog.All())
	if err != nil {
		return nil, err
	}
	_, allStats, err := sess.RecordWith(ctx, allPlan, nil)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "Adaptive",
		Title: "adaptive refinement on the uServer (exp 3): replay runs vs bits/run per generation",
		Header: []string{"gen", "strategy", "instr. locations", "bits/run",
			"replay runs", "replay time", "reproduced"},
	}
	for _, pt := range tr.Points {
		t.AddRow(fmt.Sprintf("%d", pt.Generation),
			shorten(pt.Plan.Strategy, 40),
			fmt.Sprintf("%d", pt.Plan.NumInstrumented()),
			fmt.Sprintf("%d", pt.OverheadBits),
			fmt.Sprintf("%d", pt.ReplayRuns),
			fmtDur(pt.ReplayTime),
			fmt.Sprintf("%v", pt.Reproduced))
	}
	t.AddRow("-", "all (bar)", fmt.Sprintf("%d", allPlan.NumInstrumented()),
		fmt.Sprintf("%d", allStats.TraceBits), "-", "-", "-")

	status := "converged"
	if !tr.Converged {
		status = "NOT converged"
	}
	final := tr.Final()
	t.Notes = append(t.Notes,
		fmt.Sprintf("%s: %s", status, tr.Reason),
		fmt.Sprintf("paper's claim: replay runs drop across generations (here %d -> %d) while bits/run stay far under all-branches (%d vs %d)",
			tr.Points[0].ReplayRuns, final.ReplayRuns, final.OverheadBits, allStats.TraceBits))

	if c.AdaptiveTrajectoryOut != "" {
		if err := tr.Save(c.AdaptiveTrajectoryOut); err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, "trajectory JSON written to "+c.AdaptiveTrajectoryOut)
	}
	if c.AdaptiveProfileOut != "" && final.Result != nil && final.Result.Profile != nil {
		if err := final.Result.Profile.Save(c.AdaptiveProfileOut); err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, "final-generation search profile written to "+c.AdaptiveProfileOut)
	}
	return t, nil
}

func shorten(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
