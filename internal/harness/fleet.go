package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pathlog"
	"pathlog/internal/apps"
	"pathlog/internal/corpus"
	"pathlog/internal/instrument"
	"pathlog/internal/replay"
	"pathlog/internal/static"
)

// Fleet drives the intake service end to end over a real HTTP listener,
// the way a deployed fleet would: N concurrent simulated user sites ship a
// duplicate-heavy mix of stamped-only v3 reference envelopes (one heavy
// blowup report each plus a burst of identical noisy ones) to pathlogd's
// ingest surface, with one daemon restart in the middle of the run.
//
// The experiment checks the subsystem's four claims:
//
//   - Dedupe at ingest: the duplicate-heavy mix collapses to one stored
//     report per content signature plus counters (ratio >= 5:1).
//   - Crash-recovery parity: the mid-run restart replays the journal and
//     loses zero accepted reports — counters and the ingested corpus
//     identity match a no-restart control run of the same mix.
//   - Trust boundary: envelopes with an unknown fingerprint stamp or a
//     wrong program hash are refused by name in the journal.
//   - Self-update: after a CorpusBalance round over the ingested corpus
//     (dedupe counters as member frequency), GET /plan/<proghash> serves
//     the newly published generation — what a site would re-record under.
func (c Config) Fleet(ctx context.Context) (*Table, error) {
	root := c.FleetDir
	if root == "" {
		tmp, err := os.MkdirTemp("", "pathlog-fleet-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}
	storeDir := filepath.Join(root, "store")
	intakeDir := filepath.Join(root, "intake")
	controlDir := filepath.Join(root, "intake-control")

	sites := c.FleetSites
	if sites < 1 {
		sites = 8
	}
	perSite := c.FleetReportsPerSite
	if perSite < 2 {
		perSite = 8
	}

	// Developer site: uServer under a low-coverage dynamic plan, backed by
	// the plan store the intake service validates stamps against.
	blowup, err := apps.UServerScenario(3, 72)
	if err != nil {
		return nil, err
	}
	noisy, err := apps.UServerScenario(1, 72)
	if err != nil {
		return nil, err
	}
	sess := pathlog.SessionOf(blowup,
		pathlog.WithAnalysisSpec(apps.UServerAnalysisScenario().Spec),
		pathlog.WithDynamicBudget(c.UServerAnalysisRunsLC, 0),
		pathlog.WithStaticOptions(static.Options{LibAsSymbolic: true}),
		pathlog.WithSyscallLog(),
		pathlog.WithStrategy(pathlog.Dynamic()),
		pathlog.WithReplayBudget(c.ReplayMaxRuns, c.ReplayBudget),
		pathlog.WithReplayWorkers(c.ReplayWorkers),
		pathlog.WithPlanStore(storeDir),
	)
	plan, err := sess.Plan(ctx)
	if err != nil {
		return nil, err
	}
	progHash := pathlog.ProgramHash(sess.Program())

	// User-site report bytes: the exact envelopes a site would POST.
	encode := func(user map[string][]byte, name string) (*pathlog.Recording, []byte, error) {
		rec, _, err := sess.RecordWith(ctx, plan, user)
		if err != nil {
			return nil, nil, err
		}
		if rec == nil {
			return nil, nil, fmt.Errorf("harness: user run %s did not crash", name)
		}
		data, err := rec.EncodeRef()
		return rec, data, err
	}
	blowupRec, blowupData, err := encode(blowup.UserBytes, "blowup")
	if err != nil {
		return nil, err
	}
	noisyRec, noisyData, err := encode(noisy.UserBytes, "noisy")
	if err != nil {
		return nil, err
	}

	st, err := pathlog.OpenPlanStore(storeDir)
	if err != nil {
		return nil, err
	}
	startIntake := func(dir string) (*pathlog.IntakeServer, string, chan error, error) {
		srv, err := pathlog.NewIntake(pathlog.IntakeConfig{Dir: dir, Store: st})
		if err != nil {
			return nil, "", nil, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, "", nil, err
		}
		done := make(chan error, 1)
		go func() { done <- srv.Serve(ln) }()
		return srv, "http://" + ln.Addr().String(), done, nil
	}

	srv, url, done, err := startIntake(intakeDir)
	if err != nil {
		return nil, err
	}
	var baseURL atomic.Value
	baseURL.Store(url)

	// A site POSTs until the daemon acknowledges the report (2xx): retries
	// ride out backpressure (429) and the mid-run restart window, so the
	// accepted totals are deterministic — which is exactly the parity the
	// journal must then preserve across the restart.
	client := &http.Client{Timeout: 10 * time.Second}
	postReport := func(data []byte) (int, error) {
		for attempt := 0; ; attempt++ {
			resp, err := client.Post(baseURL.Load().(string)+"/report", "application/json", bytes.NewReader(data))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusCreated, http.StatusOK:
					return resp.StatusCode, nil
				case http.StatusTooManyRequests:
					// throttled: retry below
				default:
					return resp.StatusCode, nil
				}
			}
			if attempt >= 600 {
				return 0, fmt.Errorf("harness: site gave up after %d attempts: %v", attempt, err)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	total := sites * perSite
	var wg sync.WaitGroup
	siteErrs := make(chan error, sites)
	for i := 0; i < sites; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < perSite; r++ {
				data := noisyData
				if r == 0 {
					data = blowupData
				}
				if _, err := postReport(data); err != nil {
					siteErrs <- err
					return
				}
			}
		}()
	}

	// Mid-run restart: once half the fleet's reports are in, take the
	// daemon down (graceful drain), bring a fresh process up over the same
	// intake directory, and swap the fleet's endpoint. Everything after
	// this point runs on journal-replayed state.
	for srv.Metrics().Accepted < int64(total/2) {
		time.Sleep(2 * time.Millisecond)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return nil, err
	}
	if err := <-done; err != nil {
		return nil, err
	}
	srv2, url2, done2, err := startIntake(intakeDir)
	if err != nil {
		return nil, err
	}
	defer func() {
		srv2.Shutdown(context.Background())
		<-done2
	}()
	baseURL.Store(url2)

	wg.Wait()
	close(siteErrs)
	for err := range siteErrs {
		return nil, err
	}
	parity := srv2.Metrics()

	// Control: the same mix into a fresh intake directory, no restart.
	srvC, urlC, doneC, err := startIntake(controlDir)
	if err != nil {
		return nil, err
	}
	baseURL.Store(urlC)
	for i := 0; i < sites; i++ {
		for r := 0; r < perSite; r++ {
			data := noisyData
			if r == 0 {
				data = blowupData
			}
			if _, err := postReport(data); err != nil {
				return nil, err
			}
		}
	}
	control := srvC.Metrics()
	controlCorpus, _, err := pathlog.IngestIntake(controlDir, progHash, pathlog.CorpusIngestOptions{})
	if err != nil {
		return nil, err
	}
	if err := srvC.Shutdown(ctx); err != nil {
		return nil, err
	}
	<-doneC
	baseURL.Store(url2)

	// Trust boundary: an unknown stamp and a wrong program hash, refused by
	// name in the journal.
	unknownFP := strings.Repeat("00ff", 8)
	wrongProg := strings.Repeat("ee", 16)
	unknownRec := *blowupRec
	unknownRec.Fingerprint = unknownFP
	unknownData, err := unknownRec.EncodeRef()
	if err != nil {
		return nil, err
	}
	wrongRec := *blowupRec
	wrongRec.ProgHash = wrongProg
	wrongData, err := wrongRec.EncodeRef()
	if err != nil {
		return nil, err
	}
	stUnknown, err := postReport(unknownData)
	if err != nil {
		return nil, err
	}
	stWrong, err := postReport(wrongData)
	if err != nil {
		return nil, err
	}
	journalBytes, err := os.ReadFile(filepath.Join(intakeDir, "journal.jsonl"))
	if err != nil {
		return nil, err
	}
	journal := string(journalBytes)
	refusedNamed := stUnknown == http.StatusForbidden && stWrong == http.StatusForbidden &&
		strings.Contains(journal, unknownFP) && strings.Contains(journal, wrongProg) &&
		strings.Contains(journal, "unknown-stamp") && strings.Contains(journal, "wrong-program")

	// Close the loop: ingest the intake bucket (dedupe counters as member
	// frequency) and run the corpus balance; the published generation must
	// then be what the plan endpoint serves back to the fleet.
	crp, info, err := pathlog.IngestIntake(intakeDir, progHash, pathlog.CorpusIngestOptions{})
	if err != nil {
		return nil, err
	}
	attach := func(rec *pathlog.Recording, user map[string][]byte) error {
		sig := corpus.Signature(rec)
		return crp.AttachInput(filepath.Join(intakeDir, "reports", progHash, plan.Fingerprint(), sig+".report"), user)
	}
	if err := attach(blowupRec, blowup.UserBytes); err != nil {
		return nil, err
	}
	if err := attach(noisyRec, noisy.UserBytes); err != nil {
		return nil, err
	}

	target := c.CorpusTargetRuns
	if target <= 0 {
		target = c.AdaptiveTargetRuns
	}
	var runner pathlog.CorpusRunner
	shardMode := "in-process"
	if c.CorpusShardCmd != "" {
		shardMode = "subprocess (" + c.CorpusShardCmd + ")"
		runner = &corpus.SubprocessRunner{
			Command:  []string{c.CorpusShardCmd},
			Scenario: blowup.Name,
			Opts: replay.Options{
				MaxRuns:    c.ReplayMaxRuns,
				TimeBudget: c.ReplayBudget,
				Workers:    c.ReplayWorkers,
			},
		}
	}
	shards := c.CorpusShards
	if shards < 1 {
		shards = 1
	}

	t := &Table{
		ID: "Fleet",
		Title: fmt.Sprintf("fleet intake service: %d sites POST %d reports each over HTTP, one mid-run daemon restart",
			sites, perSite),
		Header: []string{"gen", "strategy", "locs", "mean bits", "mean runs", "max runs", "repro", "promoted", "demoted"},
	}
	tr, err := sess.CorpusBalance(ctx, crp, pathlog.BalanceOptions{
		TargetReplayRuns: target,
		MaxGenerations:   c.AdaptiveMaxGenerations,
		Shards:           shards,
		Runner:           runner,
		DemotionRate:     c.FleetDemotionRate,
		OnCorpusGeneration: func(pt pathlog.CorpusPoint) {
			t.AddRow(fmt.Sprintf("%d", pt.Generation),
				shorten(pt.Plan.Strategy, 34),
				fmt.Sprintf("%d", pt.Plan.NumInstrumented()),
				fmt.Sprintf("%.1f", pt.MeanOverheadBits),
				fmt.Sprintf("%.1f", pt.MeanReplayRuns),
				fmt.Sprintf("%d", pt.MaxReplayRuns),
				fmt.Sprintf("%d/%d", pt.Reproduced, pt.Members),
				fmt.Sprintf("%d", len(pt.Promoted)),
				fmt.Sprintf("%d", len(pt.Demoted)))
		},
	})
	if err != nil {
		return nil, err
	}

	// Self-update: what the live daemon now serves for this program.
	resp, err := client.Get(url2 + "/plan/" + progHash)
	if err != nil {
		return nil, err
	}
	servedBytes, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	served, err := instrument.DecodePlan(servedBytes)
	if err != nil {
		return nil, fmt.Errorf("harness: GET /plan/%s: %w", progHash, err)
	}
	published, err := sess.PublishedPlan()
	if err != nil {
		return nil, err
	}

	// Metrics artifact: the final snapshot CI uploads next to the journal.
	final := srv2.Metrics()
	if c.FleetMetricsOut != "" {
		data, err := json.MarshalIndent(final, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(c.FleetMetricsOut, data, 0o644); err != nil {
			return nil, err
		}
	}

	status := "fleet balance: NOT converged"
	if tr.Converged {
		status = "fleet balance: converged"
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%s: %s", status, tr.Reason),
		fmt.Sprintf("intake bucket: plan %s generation %d, %d stored standing for %d accepted; shards: %d %s",
			info.Fingerprint, info.Generation, info.Stored, info.Accepted, shards, shardMode))

	ratio := 0
	if parity.Stored > 0 {
		ratio = int(parity.Accepted / parity.Stored)
	}
	if parity.Accepted >= int64(total) && ratio >= 5 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"fleet intake: dedupe ratio %d:1 — %d accepted reports stored as %d members (%d deduped at ingest)",
			ratio, parity.Accepted, parity.Stored, parity.Deduped))
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"fleet intake: dedupe NOT demonstrated (accepted %d of %d, stored %d)", parity.Accepted, total, parity.Stored))
	}
	// HTTP delivery over a restart is at-least-once: a request the daemon
	// journaled whose ack died with the draining connection is retried by
	// the site and absorbed as one more dedupe. So the loss-free invariants
	// are: nothing acknowledged is missing (accepted covers every site
	// send), the stored members and their signatures are exactly the
	// control's, and the books balance (accepted = stored + deduped).
	// Retransmissions only ever raise the duplicate counter.
	retrans := parity.Accepted - int64(total)
	lossFree := retrans >= 0 &&
		parity.Stored == control.Stored &&
		parity.Accepted == parity.Stored+parity.Deduped &&
		sigSet(crp) == sigSet(controlCorpus)
	switch {
	case lossFree && retrans == 0:
		t.Notes = append(t.Notes, fmt.Sprintf(
			"restart parity: mid-run restart lost zero accepted reports — %d accepted / %d stored / %d deduped and corpus identity %s match the no-restart control exactly",
			parity.Accepted, parity.Stored, parity.Deduped, crp.Identity()))
	case lossFree:
		t.Notes = append(t.Notes, fmt.Sprintf(
			"restart parity: mid-run restart lost zero accepted reports — %d stored members and signatures match the no-restart control; %d retransmission(s) whose ack died in the restart window were absorbed as duplicates (%d accepted = %d stored + %d deduped)",
			parity.Stored, retrans, parity.Accepted, parity.Stored, parity.Deduped))
	default:
		t.Notes = append(t.Notes, fmt.Sprintf(
			"restart parity: FAILED — restarted %d/%d/%d vs control %d/%d/%d, signatures %q vs %q",
			parity.Accepted, parity.Stored, parity.Deduped,
			control.Accepted, control.Stored, control.Deduped, sigSet(crp), sigSet(controlCorpus)))
	}
	if refusedNamed {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"refused by name: unknown stamp %s and wrong program %s answered 403 and journaled with their identities",
			unknownFP, wrongProg))
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"refused by name: NOT demonstrated (unknown %d, wrong %d)", stUnknown, stWrong))
	}
	if served.Fingerprint() == published.Fingerprint() && served.Generation > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"plan endpoint serves generation %d (fingerprint %s) after the corpus balance round — sites self-update to it",
			served.Generation, served.Fingerprint()))
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"plan endpoint: NOT serving the published head (served %s gen %d, published %s gen %d)",
			served.Fingerprint(), served.Generation, published.Fingerprint(), published.Generation))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"daemon metrics: accepted %d stored %d deduped %d refused %d throttled %d, journal %d record(s) / %d byte(s)",
		final.Accepted, final.Stored, final.Deduped, final.Refused, final.Throttled,
		final.JournalRecords, final.JournalBytes))
	return t, nil
}

// sigSet renders a corpus's member signatures in their canonical order —
// the count-insensitive identity restart parity is judged on.
func sigSet(c *pathlog.Corpus) string {
	sigs := make([]string, len(c.Reports))
	for i, rep := range c.Reports {
		sigs[i] = rep.Signature
	}
	return strings.Join(sigs, ",")
}
