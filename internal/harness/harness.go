// Package harness regenerates every table and figure of the paper's
// evaluation (§5). Each experiment function returns a Table whose rows
// mirror the corresponding artifact in the paper; cmd/experiments renders
// them, and EXPERIMENTS.md records paper-versus-measured values.
//
// Scale: the paper ran on Xeon testbeds for hours. The harness runs the
// same experiment *structure* at laptop scale — iteration counts, request
// counts and the replay cutoff all come from Config so the shape of every
// result (orderings, ratios, crossovers, ∞ entries) is reproduced in
// seconds. Absolute magnitudes are not comparable and are not meant to be.
package harness

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"pathlog"
	"pathlog/internal/core"
	"pathlog/internal/instrument"
	"pathlog/internal/replay"
	"pathlog/internal/static"
)

// Config sets the scale of every experiment. DefaultConfig is used by tests;
// cmd/experiments exposes the knobs as flags.
type Config struct {
	// MicroLoopIters is the counting-loop iteration count (paper: 1e9).
	MicroLoopIters int64
	// OverheadRounds is how many runs are averaged per CPU-time figure on
	// substantial workloads (uServer load, diff).
	OverheadRounds int
	// SmallWorkloadRounds is the round count for microsecond-scale
	// workloads (coreutils, Listing 1), where timing noise would otherwise
	// dominate.
	SmallWorkloadRounds int
	// CoreutilArgLen caps coreutil argument streams (paper: 100 bytes).
	CoreutilArgLen int
	// CoreutilAnalysisRuns is the concolic budget for §5.2 programs.
	CoreutilAnalysisRuns int
	// UServerLoadRequests is the request count for load experiments
	// (Figures 3 and 4; the paper uses 5000 and an httperf load).
	UServerLoadRequests int
	// UServerAnalysisRunsLC / HC are the low/high-coverage concolic budgets
	// of §5.3 (the paper stops after one and two hours).
	UServerAnalysisRunsLC int
	UServerAnalysisRunsHC int
	// DiffAnalysisRuns is the concolic budget for §5.4.
	DiffAnalysisRuns int
	// ReplayMaxRuns and ReplayBudget bound each reproduction attempt; an
	// exhausted budget renders as the paper's ∞.
	ReplayMaxRuns int
	ReplayBudget  time.Duration
	// ReplayWorkers fans each reproduction's pending-list search out over N
	// concurrent workers (1 = the paper's serial depth-first search).
	ReplayWorkers int
	// AdaptiveTargetRuns and AdaptiveMaxGenerations shape the adaptive
	// refinement experiment: the replay-run budget a generation must meet
	// and the refinement steps allowed to get there.
	AdaptiveTargetRuns     int
	AdaptiveMaxGenerations int
	// AdaptiveTrajectoryOut / AdaptiveProfileOut, when set, write the
	// adaptive experiment's per-generation trajectory and final search
	// profile as JSON artifacts (CI uploads them).
	AdaptiveTrajectoryOut string
	AdaptiveProfileOut    string
	// StoreDir, when set, is the plan store directory the store experiment
	// runs against (and leaves populated — an inspectable artifact); empty
	// uses a temporary directory discarded afterwards.
	StoreDir string
	// CorpusNoisyReports is the duplicate count of the corpus experiment's
	// noisy crash report (the burst that would steer a latest-crash loop).
	CorpusNoisyReports int
	// CorpusShards is the shard count of the corpus experiment's replays.
	CorpusShards int
	// CorpusShardCmd, when set, is a shard worker binary (cmd/shardworker)
	// the corpus experiment replays its shards through, exercising the
	// out-of-process JSON protocol; empty replays in-process.
	CorpusShardCmd string
	// CorpusTargetRuns is the corpus-mean replay-run target (0 falls back
	// to AdaptiveTargetRuns).
	CorpusTargetRuns int
	// CorpusDir, when set, is where the corpus experiment leaves its
	// report envelopes and plan store (an inspectable artifact); empty
	// uses a temporary directory discarded afterwards.
	CorpusDir string
	// CorpusTrajectoryOut / CorpusProfileOut, when set, write the corpus
	// experiment's per-generation trajectory and final merged profile as
	// JSON artifacts (CI uploads them).
	CorpusTrajectoryOut string
	CorpusProfileOut    string
	// FleetSites is the number of concurrent simulated user sites the fleet
	// experiment runs against the intake service's HTTP listener.
	FleetSites int
	// FleetReportsPerSite is how many reports each site ships — a
	// duplicate-heavy mix (one blowup report plus identical noisy ones) the
	// ingest dedupe collapses.
	FleetReportsPerSite int
	// FleetDir, when set, is where the fleet experiment leaves its plan
	// store, intake directory (journal + stored reports) and no-restart
	// control directory as inspectable artifacts; empty uses a temporary
	// directory discarded afterwards.
	FleetDir string
	// FleetMetricsOut, when set, writes the daemon's final /metrics
	// snapshot as a JSON artifact (CI uploads it next to the journal).
	FleetMetricsOut string
	// FleetDemotionRate is the disagreement-rate threshold the fleet
	// experiment's corpus balance demotes at (0 = the strict
	// zero-disagreement rule; the measured-acceptance gate applies either
	// way).
	FleetDemotionRate float64
	// FleetReplayWorkers is how many shard worker daemons the fleetreplay
	// experiment runs its corpus balance over (floor 3 — the chaos kill
	// needs survivors to steal onto).
	FleetReplayWorkers int
	// FleetReplayWorkerCmd, when set, is a prebuilt cmd/shardworkerd
	// binary; empty builds one with the go toolchain.
	FleetReplayWorkerCmd string
	// FleetReplayJournalOut / FleetReplayMetricsOut, when set, write the
	// remote runner's event stream (JSONL) and final counters (JSON) as
	// artifacts (CI uploads them).
	FleetReplayJournalOut string
	FleetReplayMetricsOut string
	// TraceFleetDir, when set, is where the tracefleet experiment leaves
	// its plan store, report files, intake directory and per-process trace
	// JSONLs (an inspectable artifact); empty uses a temp dir discarded
	// afterwards.
	TraceFleetDir string
	// TraceFleetTraceOut, when set, writes the merged cross-process span
	// JSONL — tune, pathlogd and every shardworkerd — as one artifact (CI
	// uploads it).
	TraceFleetTraceOut string
	// TraceFleetMetricsOut, when set, writes both daemons' Prometheus-text
	// /metrics scrapes here, each preceded by a "# scrape <url>" line.
	TraceFleetMetricsOut string
}

// DefaultConfig returns the laptop-scale configuration used by tests.
func DefaultConfig() Config {
	return Config{
		MicroLoopIters:         200_000,
		OverheadRounds:         3,
		SmallWorkloadRounds:    300,
		CoreutilArgLen:         12,
		CoreutilAnalysisRuns:   800,
		UServerLoadRequests:    30,
		UServerAnalysisRunsLC:  6,
		UServerAnalysisRunsHC:  60,
		DiffAnalysisRuns:       40,
		ReplayMaxRuns:          4000,
		ReplayBudget:           20 * time.Second,
		ReplayWorkers:          1,
		AdaptiveTargetRuns:     200,
		AdaptiveMaxGenerations: 4,
		CorpusNoisyReports:     5,
		CorpusShards:           2,
		FleetSites:             8,
		FleetReportsPerSite:    8,
		FleetReplayWorkers:     3,
	}
}

// Table is one rendered experiment artifact.
type Table struct {
	ID     string // e.g. "Table 3", "Figure 4a"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one row, stringifying cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Infinity is the render of an exhausted replay budget (the paper's ∞).
const Infinity = "inf"

// fmtDur renders a duration compactly for table cells.
func fmtDur(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%dus", d.Microseconds())
	case d < time.Second:
		return fmt.Sprintf("%dms", d.Milliseconds())
	default:
		return fmt.Sprintf("%.1fs", d.Seconds())
	}
}

// fmtPct renders a ratio as a percentage.
func fmtPct(x float64) string { return fmt.Sprintf("%.0f%%", x*100) }

// analyze runs both analyses over a scenario's neutral spec through the
// Session API; the context bounds the concolic exploration.
func analyze(ctx context.Context, s *core.Scenario, dynRuns int, libAsSymbolic bool) (instrument.Inputs, error) {
	sess := pathlog.SessionOf(s,
		pathlog.WithDynamicBudget(dynRuns, 0),
		pathlog.WithStaticOptions(static.Options{LibAsSymbolic: libAsSymbolic}))
	return sess.Analyze(ctx)
}

// record performs one user-site run under an explicit plan through the
// Session API.
func record(ctx context.Context, s *core.Scenario, plan *instrument.Plan) (*replay.Recording, *core.RecordStats, error) {
	return pathlog.SessionOf(s).RecordWith(ctx, plan, nil)
}

// measure averages the user-site wall time under a plan through the Session
// API.
func measure(ctx context.Context, s *core.Scenario, plan *instrument.Plan, rounds int) (time.Duration, *core.RecordStats, error) {
	return pathlog.SessionOf(s).MeasureOverhead(ctx, plan, rounds)
}

// replay reproduces a recording under the Config's replay budget and worker
// count through the Session API.
func (c Config) replay(ctx context.Context, s *core.Scenario, rec *replay.Recording) (*replay.Result, error) {
	sess := pathlog.SessionOf(s,
		pathlog.WithReplayBudget(c.ReplayMaxRuns, c.ReplayBudget),
		pathlog.WithReplayWorkers(c.ReplayWorkers))
	return sess.Replay(ctx, rec)
}

// staticLibOpts is the §5.3 static configuration: library treated as
// symbolic because the merged sources exceed the points-to analysis.
func staticLibOpts() static.Options { return static.Options{LibAsSymbolic: true} }

// overheadPct computes (instrumented - baseline) / baseline.
func overheadPct(instrumented, baseline time.Duration) float64 {
	if baseline <= 0 {
		return 0
	}
	return float64(instrumented-baseline) / float64(baseline)
}

// relCPU renders CPU time relative to the uninstrumented baseline, as the
// paper's normalized CPU-time axes do (100% = none).
func relCPU(instrumented, baseline time.Duration) string {
	if baseline <= 0 {
		return "?"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(instrumented)/float64(baseline))
}

// Native-projection model. The VM interprets a MiniC step in ~100ns while a
// logged bit costs a few ns, so measured VM overhead percentages are far
// smaller than the paper's native ones (where a branch costs ~1ns and the
// 17-instruction logging sequence dominates). projectedOverhead rescales the
// measured *work* — logged bits and executed steps — to native cost using
// the paper's own constants: 17 instructions per logged branch (§5.1)
// against an estimated nativeInstrPerStep instructions per MiniC step. The
// ordering across methods is determined by logged bits either way; this
// column makes the magnitudes comparable to the paper's axes.
const (
	logInstrPerBranch  = 17.0
	nativeInstrPerStep = 2.5
)

func projectedOverhead(loggedBits, steps int64) string {
	if steps == 0 {
		return "0%"
	}
	return fmt.Sprintf("+%.0f%%",
		100*logInstrPerBranch*float64(loggedBits)/(nativeInstrPerStep*float64(steps)))
}
