package harness

import (
	"context"
	"fmt"

	"pathlog/internal/apps"
	"pathlog/internal/instrument"
)

// diffAnalyses runs the §5.4 analyses: diff is input-heavy, so the concolic
// budget achieves only partial coverage (the paper reports 20% after one
// hour) while the full static analysis runs normally.
func (c Config) diffAnalyses(ctx context.Context) (instrument.Inputs, error) {
	s, err := apps.DiffExperimentScenario(1)
	if err != nil {
		panic(err) // static scenario table; cannot fail
	}
	return analyze(ctx, apps.AnalysisSpec(s), c.DiffAnalysisRuns, false)
}

// Figure5 reproduces diff's normalized CPU time under the four methods.
func (c Config) Figure5(ctx context.Context) (*Table, error) {
	in, err := c.diffAnalyses(ctx)
	if err != nil {
		return nil, err
	}
	s, err := apps.DiffExperimentScenario(1)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "Figure 5",
		Title: "diff CPU time, normalized to the uninstrumented version",
		Header: []string{"config", "instr. locations", "cpu time", "rel cpu",
			"proj. native overhead", "logged bits"},
	}
	none := s.Plan(instrument.MethodNone, in, true)
	baseline, _, err := measure(ctx, s, none, c.OverheadRounds)
	if err != nil {
		return nil, err
	}
	t.AddRow("none", "0", fmtDur(baseline), "100%", "+0%", "0")
	for _, m := range instrument.Methods {
		plan := s.Plan(m, in, true)
		avg, stats, err := measure(ctx, s, plan, c.OverheadRounds)
		if err != nil {
			return nil, err
		}
		t.AddRow(m.String(), fmt.Sprintf("%d", plan.NumInstrumented()),
			fmtDur(avg), relCPU(avg, baseline),
			projectedOverhead(stats.TraceBits, stats.Steps),
			fmt.Sprintf("%d", stats.TraceBits))
	}
	t.Notes = append(t.Notes,
		"paper: dynamic and dynamic+static best (~135%); dynamic found 440 of 8840 branches symbolic,",
		"static 4292, dynamic+static 3432")
	return t, nil
}

// Tables6and7 reproduces the diff replay times (Table 6) and the
// logged/not-logged symbolic branch statistics (Table 7) for the two file
// comparison scenarios. The paper: dynamic never finishes (inf); the other
// three configurations replay in 1s / 12s with zero unlogged symbolic
// branches.
func (c Config) Tables6and7(ctx context.Context) (*Table, *Table, error) {
	in, err := c.diffAnalyses(ctx)
	if err != nil {
		return nil, nil, err
	}
	t6 := &Table{
		ID:     "Table 6",
		Title:  "diff bug reproduction times, two input scenarios",
		Header: []string{"exp", "config", "replay time", "runs", "reproduced"},
	}
	t7 := &Table{
		ID:     "Table 7",
		Title:  "diff symbolic branch locations/executions logged and not logged",
		Header: []string{"exp", "config", "logged locs/execs", "NOT logged locs/execs"},
	}
	for exp := 1; exp <= len(apps.DiffExperiments); exp++ {
		s, err := apps.DiffExperimentScenario(exp)
		if err != nil {
			return nil, nil, err
		}
		for _, m := range instrument.Methods {
			plan := s.Plan(m, in, true)
			rec, _, err := record(ctx, s, plan)
			if err != nil {
				return nil, nil, fmt.Errorf("diff exp%d/%v: %w", exp, m, err)
			}
			if rec == nil {
				return nil, nil, fmt.Errorf("diff exp%d/%v: no crash", exp, m)
			}
			res, err := c.replay(ctx, s, rec)
			if err != nil {
				return nil, nil, fmt.Errorf("diff exp%d/%v: %w", exp, m, err)
			}
			t6.AddRow(fmt.Sprintf("%d", exp), m.String(), replayCell(res),
				fmt.Sprintf("%d", res.Runs), fmt.Sprintf("%v", res.Reproduced))
			logged, notLogged := "-", "-"
			if res.Reproduced {
				logged = fmt.Sprintf("%d / %d", res.SymLoggedLocs, res.SymLoggedExecs)
				notLogged = fmt.Sprintf("%d / %d", res.SymNotLoggedLocs, res.SymNotLoggedExecs)
			}
			t7.AddRow(fmt.Sprintf("%d", exp), m.String(), logged, notLogged)
		}
	}
	t6.Notes = append(t6.Notes,
		"paper: dynamic inf on both scenarios; dynamic+static, static, all branches: 1s and 12s")
	t7.Notes = append(t7.Notes,
		"paper: dynamic leaves tens of symbolic locations unlogged (millions of executions);",
		"the other three configurations leave none")
	return t6, t7, nil
}
