package harness

import (
	"context"
	"fmt"
	"io"

	"pathlog/internal/apps"
	"pathlog/internal/core"
	"pathlog/internal/instrument"
)

// Summary reproduces the paper's headline claim (§8): the combined method
// reduces instrumentation overhead by 10-92% compared to static alone, while
// keeping bug reproduction within budget. It measures the logged-bits
// reduction (the driver of both CPU and storage overhead) of dynamic+static
// versus static across the three workload families.
func (c Config) Summary(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:    "Summary",
		Title: "dynamic+static vs static: instrumentation reduction (paper: 10-92%)",
		Header: []string{"workload", "static bits", "dyn+static bits",
			"reduction", "static locs", "dyn+static locs"},
	}

	emit := func(name string, scn *core.Scenario, in instrument.Inputs) error {
		stPlan := scn.Plan(instrument.MethodStatic, in, true)
		dsPlan := scn.Plan(instrument.MethodDynamicStatic, in, true)
		_, stStats, err := measure(ctx, scn, stPlan, 1)
		if err != nil {
			return err
		}
		_, dsStats, err := measure(ctx, scn, dsPlan, 1)
		if err != nil {
			return err
		}
		red := "0%"
		if stStats.TraceBits > 0 {
			red = fmtPct(float64(stStats.TraceBits-dsStats.TraceBits) /
				float64(stStats.TraceBits))
		}
		t.AddRow(name,
			fmt.Sprintf("%d", stStats.TraceBits),
			fmt.Sprintf("%d", dsStats.TraceBits),
			red,
			fmt.Sprintf("%d", stPlan.NumInstrumented()),
			fmt.Sprintf("%d", dsPlan.NumInstrumented()))
		return nil
	}

	mk, err := c.healthyMkdir()
	if err != nil {
		return nil, err
	}
	mkIn, err := analyze(ctx, apps.AnalysisSpec(mk), c.CoreutilAnalysisRuns, false)
	if err != nil {
		return nil, err
	}
	if err := emit("mkdir", mk, mkIn); err != nil {
		return nil, err
	}
	us := apps.UServerLoadScenario(c.UServerLoadRequests, apps.DefaultHTTPRequest)
	uan, err := c.uServerAnalyses(ctx)
	if err != nil {
		return nil, err
	}
	if err := emit("userver", us, uan.hc); err != nil {
		return nil, err
	}
	df, err := apps.DiffExperimentScenario(1)
	if err != nil {
		return nil, err
	}
	dfIn, err := c.diffAnalyses(ctx)
	if err != nil {
		return nil, err
	}
	if err := emit("diff", df, dfIn); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"logged bits drive both CPU and storage overhead (1 bit per instrumented branch execution)")
	return t, nil
}

// Experiments lists experiment names in presentation order; cmd/experiments
// exposes them.
var Experiments = []string{
	"micro-loop", "micro-fib", "figure1", "figure2", "table1",
	"figure3", "table2", "figure4", "table3", "table4", "table5", "table8",
	"figure5", "table6", "table7", "compress", "frontier", "adaptive", "store", "corpus", "fleet", "fleetreplay", "tracefleet", "summary",
}

// Run executes one named experiment and renders it to w. The context
// cancels analysis and replay work in flight.
func (c Config) Run(ctx context.Context, name string, w io.Writer) error {
	render := func(t *Table, err error) error {
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	}
	render2 := func(a, b *Table, err error) error {
		if err != nil {
			return err
		}
		a.Render(w)
		b.Render(w)
		return nil
	}
	switch name {
	case "micro-loop":
		return render(c.MicroLoop(ctx))
	case "micro-fib":
		return render(c.MicroFib(ctx))
	case "figure1":
		return render(c.Figure1(ctx))
	case "figure2":
		return render(c.Figure2(ctx))
	case "table1":
		return render(c.Table1(ctx))
	case "figure3":
		return render(c.Figure3(ctx))
	case "table2":
		return render(c.Table2(ctx))
	case "figure4":
		return render(c.Figure4(ctx))
	case "table3", "table4":
		a, b, err := c.Tables3and4(ctx)
		return render2(a, b, err)
	case "table5", "table8":
		a, b, err := c.Tables5and8(ctx)
		return render2(a, b, err)
	case "figure5":
		return render(c.Figure5(ctx))
	case "table6", "table7":
		a, b, err := c.Tables6and7(ctx)
		return render2(a, b, err)
	case "compress":
		return render(c.Compress(ctx))
	case "frontier":
		return render(c.Frontier(ctx))
	case "adaptive":
		return render(c.Adaptive(ctx))
	case "store":
		return render(c.Store(ctx))
	case "corpus":
		return render(c.Corpus(ctx))
	case "fleet":
		return render(c.Fleet(ctx))
	case "fleetreplay":
		return render(c.FleetReplay(ctx))
	case "tracefleet":
		return render(c.TraceFleet(ctx))
	case "summary":
		return render(c.Summary(ctx))
	}
	return fmt.Errorf("harness: unknown experiment %q (known: %v)", name, Experiments)
}

// RunAll executes every experiment in presentation order, skipping the
// second name of rendered pairs.
func (c Config) RunAll(ctx context.Context, w io.Writer) error {
	skip := map[string]bool{"table4": true, "table8": true, "table7": true}
	for _, name := range Experiments {
		if skip[name] {
			continue
		}
		fmt.Fprintf(w, "-- running %s --\n", name)
		if err := c.Run(ctx, name, w); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}
