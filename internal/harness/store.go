package harness

import (
	"context"
	"fmt"
	"os"

	"pathlog"
	"pathlog/internal/apps"
	"pathlog/internal/static"
)

// Store proves the deployment-lifecycle claim the plan store exists for: a
// cold session's frontier sweep improves after loading a prior session's
// measured points. Phase one (warm) runs the adaptive loop on the uServer
// (exp 3) with a plan store attached, persisting every deployed generation
// and its measured (overhead, replay) point. Phase two (cold) builds a
// brand-new session over the same store and sweeps the frontier twice:
// once ignoring the store (pure cost-model estimates — what any cold
// session knew before this PR) and once with the store folded in, where
// the warm session's measurements appear as ground-truth points with their
// estimated-vs-measured drift rendered. The drift columns are the point:
// they show, per plan, how far the model's pricing was from what the
// deployment actually observed — knowledge only the store can carry
// between sessions.
func (c Config) Store(ctx context.Context) (*Table, error) {
	dir := c.StoreDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "pathlog-store-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	scenario := func() (*pathlog.Session, error) {
		s, err := apps.UServerScenario(3, 72)
		if err != nil {
			return nil, err
		}
		return pathlog.SessionOf(s,
			pathlog.WithAnalysisSpec(apps.UServerAnalysisScenario().Spec),
			pathlog.WithDynamicBudget(c.UServerAnalysisRunsLC, 0),
			pathlog.WithStaticOptions(static.Options{LibAsSymbolic: true}),
			pathlog.WithSyscallLog(),
			pathlog.WithStrategy(pathlog.Dynamic()),
			pathlog.WithReplayBudget(c.ReplayMaxRuns, c.ReplayBudget),
			pathlog.WithReplayWorkers(c.ReplayWorkers),
			pathlog.WithPlanStore(dir),
		), nil
	}

	// Warm session: deploy, measure, refine — everything lands in the store.
	warm, err := scenario()
	if err != nil {
		return nil, err
	}
	tr, err := warm.AutoBalance(ctx, nil, pathlog.BalanceOptions{
		TargetReplayRuns: c.AdaptiveTargetRuns,
		MaxGenerations:   c.AdaptiveMaxGenerations,
	})
	if err != nil {
		return nil, err
	}

	// Cold session: same program, same workload name, zero shared memory —
	// only the store directory connects the two.
	cold, err := scenario()
	if err != nil {
		return nil, err
	}
	merged, err := cold.Frontier(ctx)
	if err != nil {
		return nil, err
	}
	// For the "before" rows, sweep what a storeless cold session would see:
	// pure cost-model estimates with no measured history.
	bare, err := apps.UServerScenario(3, 72)
	if err != nil {
		return nil, err
	}
	noStore := pathlog.SessionOf(bare,
		pathlog.WithAnalysisSpec(apps.UServerAnalysisScenario().Spec),
		pathlog.WithDynamicBudget(c.UServerAnalysisRunsLC, 0),
		pathlog.WithStaticOptions(static.Options{LibAsSymbolic: true}),
		pathlog.WithSyscallLog(),
		pathlog.WithReplayWorkers(c.ReplayWorkers),
	)
	before, err := noStore.Frontier(ctx)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "Store",
		Title: "plan store: cold-session frontier before/after loading measured history (uServer exp 3)",
		Header: []string{"sweep", "strategy", "locs", "bits/run", "replay runs",
			"measured", "drift bits", "drift runs"},
	}
	addRows := func(label string, points []pathlog.PlanPoint) {
		for _, pt := range points {
			measured, dBits, dRuns := "", "-", "-"
			if pt.Measured {
				measured = "yes"
				dBits = fmt.Sprintf("%+.1f", pt.OverheadDrift())
				dRuns = fmt.Sprintf("%+.1f", pt.ReplayRunsDrift())
			}
			t.AddRow(label, shorten(pt.Strategy, 40),
				fmt.Sprintf("%d", pt.Plan.NumInstrumented()),
				fmt.Sprintf("%.1f", pt.Overhead),
				fmt.Sprintf("%.1f", pt.ReplayRuns),
				measured, dBits, dRuns)
		}
	}
	addRows("cold (no store)", before)
	addRows("cold + store", merged)

	nMeasured := 0
	for _, pt := range merged {
		if pt.Measured {
			nMeasured++
		}
	}
	status := "improved"
	if nMeasured == 0 {
		status = "NOT improved"
	}
	final := tr.Final()
	t.Notes = append(t.Notes,
		fmt.Sprintf("warm AutoBalance: %d generations, converged=%v (%s)",
			len(tr.Points), tr.Converged, tr.Reason),
		fmt.Sprintf("cold sweep %s: %d measured ground-truth point(s) resolved from the store replaced or joined the estimates",
			status, nMeasured),
		fmt.Sprintf("store retains the full lineage: a recording stamped with generation %d resolves without any plan file",
			final.Plan.Generation))
	return t, nil
}
