package harness

import (
	"context"
	"testing"
	"time"
)

// TestTraceFleetLinkage is the acceptance gate for the unified
// observability layer: one tune -corpus -workers run against a live
// pathlogd and two live shardworkerd daemons must produce a single trace
// whose spans link tune's balance generations to the daemons' ingest and
// shard spans by propagated trace ID, and both daemons must serve
// Prometheus-text /metrics including a histogram (traceFleet errors on
// any violation; the assertions here pin the tiers).
func TestTraceFleetLinkage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three binaries and runs four processes")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	res, err := fastConfig().traceFleet(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceID == "" {
		t.Fatal("no trace ID")
	}
	if res.Generations < 1 {
		t.Errorf("want >= 1 balance.generation span in trace %s, got %d", res.TraceID, res.Generations)
	}
	if res.WorkerShards < 2 {
		t.Errorf("want >= 2 worker.shard spans (one per shard over 2 workers), got %d", res.WorkerShards)
	}
	if res.Ingests != 3 {
		t.Errorf("want exactly 3 intake.ingest spans (one per published report), got %d", res.Ingests)
	}
	for _, s := range res.Spans {
		if s.Trace != res.TraceID {
			t.Errorf("span %s (%s) carries trace %s, want %s", s.Span, s.Name, s.Trace, res.TraceID)
		}
	}
}
