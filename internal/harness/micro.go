package harness

import (
	"context"
	"fmt"
	"time"

	"pathlog/internal/apps"
	"pathlog/internal/instrument"
)

// MicroLoop reproduces the first §5.1 microbenchmark: a counting loop run
// uninstrumented and with all branches logged. The paper measures 17
// instructions / ~3ns per instrumented branch and 107% total overhead; the
// harness reports the same quantities for this VM.
func (c Config) MicroLoop(ctx context.Context) (*Table, error) {
	s := apps.MicroLoopScenario(c.MicroLoopIters)
	none := s.Plan(instrument.MethodNone, instrument.Inputs{}, false)
	all := s.Plan(instrument.MethodAll, instrument.Inputs{}, false)

	baseline, baseStats, err := measure(ctx, s, none, c.OverheadRounds)
	if err != nil {
		return nil, err
	}
	logged, allStats, err := measure(ctx, s, all, c.OverheadRounds)
	if err != nil {
		return nil, err
	}

	perBranch := time.Duration(0)
	if allStats.InstrumentedExecs > 0 {
		perBranch = (logged - baseline) / time.Duration(allStats.InstrumentedExecs)
	}
	t := &Table{
		ID:    "Micro 1",
		Title: fmt.Sprintf("counting loop, %d iterations", c.MicroLoopIters),
		Header: []string{"config", "cpu time", "rel cpu", "proj. native overhead",
			"branch execs", "logged bits", "flushes"},
	}
	t.AddRow("none", fmtDur(baseline), "100%", "+0%",
		fmt.Sprintf("%d", baseStats.BranchExecs), "0", "0")
	t.AddRow("all branches", fmtDur(logged), relCPU(logged, baseline),
		projectedOverhead(allStats.TraceBits, allStats.Steps),
		fmt.Sprintf("%d", allStats.BranchExecs),
		fmt.Sprintf("%d", allStats.TraceBits),
		fmt.Sprintf("%d", allStats.Flushes))
	t.Notes = append(t.Notes,
		fmt.Sprintf("per-instrumented-branch cost: %s (paper: ~3ns native)", perBranch),
		fmt.Sprintf("total overhead: %s (paper: 107%%)", fmtPct(overheadPct(logged, baseline))))
	return t, nil
}

// MicroFib reproduces the second §5.1 microbenchmark: Listing 1 under all
// five configurations. The selective methods instrument only the two option
// branches, so their overhead is negligible; all-branches pays per loop
// iteration (the paper's 110%).
func (c Config) MicroFib(ctx context.Context) (*Table, error) {
	s := apps.MicroFibScenario('b') // fibonacci(40): the longer loop
	in, err := analyze(ctx, apps.AnalysisSpec(s), 60, false)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:    "Micro 2",
		Title: "Listing 1 (fibonacci) under all configurations",
		Header: []string{"config", "instr. locations", "cpu time", "rel cpu",
			"proj. native overhead", "logged bits"},
	}
	none := s.Plan(instrument.MethodNone, in, false)
	baseline, _, err := measure(ctx, s, none, c.SmallWorkloadRounds)
	if err != nil {
		return nil, err
	}
	t.AddRow("none", "0", fmtDur(baseline), "100%", "+0%", "0")
	for _, m := range instrument.Methods {
		plan := s.Plan(m, in, false)
		avg, stats, err := measure(ctx, s, plan, c.SmallWorkloadRounds)
		if err != nil {
			return nil, err
		}
		t.AddRow(m.String(),
			fmt.Sprintf("%d", plan.NumInstrumented()),
			fmtDur(avg), relCPU(avg, baseline),
			projectedOverhead(stats.TraceBits, stats.Steps),
			fmt.Sprintf("%d", stats.TraceBits))
	}
	t.Notes = append(t.Notes,
		"paper: selective methods log exactly the 2 option branches; all branches suffers ~110%",
		"VM wall time hides logging cost at this scale; the projected column rescales to native cost (see harness.go)")
	return t, nil
}
