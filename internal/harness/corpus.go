package harness

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"pathlog"
	"pathlog/internal/apps"
	"pathlog/internal/corpus"
	"pathlog/internal/replay"
	"pathlog/internal/static"
)

// Corpus demonstrates both directions of the corpus-driven balance on the
// uServer: a deployed system receives CorpusNoisyReports duplicate reports
// of a quick, noisy crash (input scenario 1 — a minimal GET whose replay
// is short) plus one older report of the heavy blowup crash (input
// scenario 3 — cookies and percent-escapes, which a low-coverage dynamic
// plan misses hardest and whose replay exhausts the budget).
//
//   - Latest-crash refinement — the pre-corpus loop — refines against the
//     newest report only. That report is noisy: its replay meets the
//     target immediately, the loop converges at generation 0, and the
//     blowup report keeps missing the budget. The corpus-mean replay
//     misses the target.
//   - Corpus-weighted refinement (Session.CorpusBalance) replays the whole
//     weighted population over CorpusShards shards, merges the attribution
//     through the verifying merge point, and promotes the corpus-wide
//     blowup branches — reaching the corpus-mean target the latest-crash
//     loop missed. It then shrinks: branches whose bits never once
//     disagreed across the population are demoted, the demoted plan is
//     re-deployed and re-measured, and the accepted generation carries
//     strictly fewer measured overhead bits with every report still
//     reproducing.
//
// Reports travel as stamped-only v3 reference envelopes through a plan
// store, exactly as a store-backed deployment ships them; with
// CorpusShardCmd set the shards replay in worker subprocesses speaking the
// JSON protocol (cmd/shardworker).
func (c Config) Corpus(ctx context.Context) (*Table, error) {
	root := c.CorpusDir
	if root == "" {
		tmp, err := os.MkdirTemp("", "pathlog-corpus-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}
	reportDir := filepath.Join(root, "reports")
	storeDir := filepath.Join(root, "store")
	if err := os.MkdirAll(reportDir, 0o755); err != nil {
		return nil, err
	}

	blowup, err := apps.UServerScenario(3, 72)
	if err != nil {
		return nil, err
	}
	noisy, err := apps.UServerScenario(1, 72)
	if err != nil {
		return nil, err
	}
	sess := pathlog.SessionOf(blowup,
		pathlog.WithAnalysisSpec(apps.UServerAnalysisScenario().Spec),
		pathlog.WithDynamicBudget(c.UServerAnalysisRunsLC, 0),
		pathlog.WithStaticOptions(static.Options{LibAsSymbolic: true}),
		pathlog.WithSyscallLog(),
		pathlog.WithStrategy(pathlog.Dynamic()),
		pathlog.WithReplayBudget(c.ReplayMaxRuns, c.ReplayBudget),
		pathlog.WithReplayWorkers(c.ReplayWorkers),
		pathlog.WithPlanStore(storeDir),
	)
	plan, err := sess.Plan(ctx)
	if err != nil {
		return nil, err
	}

	// The report stream: one old blowup report, then a burst of identical
	// noisy reports (deduped by signature at ingest). mtimes drive the
	// recency weights; the blowup report is a day older than the burst.
	now := time.Now().Truncate(time.Second)
	record := func(user map[string][]byte, name string, mtime time.Time) (string, error) {
		rec, _, err := sess.RecordWith(ctx, plan, user)
		if err != nil {
			return "", err
		}
		if rec == nil {
			return "", fmt.Errorf("harness: user run %s did not crash", name)
		}
		path := filepath.Join(reportDir, name)
		if err := rec.SaveRef(path); err != nil {
			return "", err
		}
		return path, os.Chtimes(path, mtime, mtime)
	}
	blowupPath, err := record(blowup.UserBytes, "blowup.report", now.Add(-24*time.Hour))
	if err != nil {
		return nil, err
	}
	nNoisy := c.CorpusNoisyReports
	if nNoisy < 1 {
		nNoisy = 5
	}
	var noisyPath string
	for i := 0; i < nNoisy; i++ {
		noisyPath, err = record(noisy.UserBytes, fmt.Sprintf("noisy-%02d.report", i),
			now.Add(-time.Duration(nNoisy-i)*time.Minute))
		if err != nil {
			return nil, err
		}
	}

	crp, err := pathlog.IngestCorpus(reportDir, pathlog.CorpusIngestOptions{})
	if err != nil {
		return nil, err
	}
	if err := crp.AttachInput(blowupPath, blowup.UserBytes); err != nil {
		return nil, err
	}
	if err := crp.AttachInput(noisyPath, noisy.UserBytes); err != nil {
		return nil, err
	}
	if err := crp.SaveManifest(filepath.Join(reportDir, corpus.ManifestName)); err != nil {
		return nil, err
	}

	target := c.CorpusTargetRuns
	if target <= 0 {
		target = c.AdaptiveTargetRuns
	}

	t := &Table{
		ID:    "Corpus",
		Title: "corpus-weighted refinement vs latest-crash on the uServer: N noisy reports + 1 heavy blowup report",
		Header: []string{"loop", "gen", "strategy", "locs", "mean bits", "mean runs",
			"max runs", "repro", "promoted", "demoted"},
	}

	// Latest-crash arm: the pre-corpus loop, driven by the newest report's
	// input. The noisy replay meets the target immediately, so the loop
	// converges at generation 0 and never touches the blowup branches.
	lcTraj, err := sess.AutoBalance(ctx, noisy.UserBytes, pathlog.BalanceOptions{
		TargetReplayRuns: target,
		MaxGenerations:   c.AdaptiveMaxGenerations,
	})
	if err != nil {
		return nil, err
	}
	lcFinal := lcTraj.Final()
	t.AddRow("latest-crash", fmt.Sprintf("%d", lcFinal.Generation),
		shorten(lcFinal.Plan.Strategy, 34),
		fmt.Sprintf("%d", lcFinal.Plan.NumInstrumented()),
		"-", fmt.Sprintf("%d", lcFinal.ReplayRuns), "-",
		fmt.Sprintf("%v", lcFinal.Reproduced), "-", "-")

	// Corpus arm: sharded weighted replay, promote until the population
	// meets the target, then demote with measured acceptance.
	var runner pathlog.CorpusRunner
	shardMode := "in-process"
	if c.CorpusShardCmd != "" {
		shardMode = "subprocess (" + c.CorpusShardCmd + ")"
		runner = &corpus.SubprocessRunner{
			Command:  []string{c.CorpusShardCmd},
			Scenario: blowup.Name,
			Opts: replay.Options{
				MaxRuns:    c.ReplayMaxRuns,
				TimeBudget: c.ReplayBudget,
				Workers:    c.ReplayWorkers,
			},
		}
	}
	shards := c.CorpusShards
	if shards < 1 {
		shards = 1
	}
	tr, err := sess.CorpusBalance(ctx, crp, pathlog.BalanceOptions{
		TargetReplayRuns: target,
		MaxGenerations:   c.AdaptiveMaxGenerations,
		Shards:           shards,
		Runner:           runner,
		OnCorpusGeneration: func(pt pathlog.CorpusPoint) {
			t.AddRow("corpus", fmt.Sprintf("%d", pt.Generation),
				shorten(pt.Plan.Strategy, 34),
				fmt.Sprintf("%d", pt.Plan.NumInstrumented()),
				fmt.Sprintf("%.1f", pt.MeanOverheadBits),
				fmt.Sprintf("%.1f", pt.MeanReplayRuns),
				fmt.Sprintf("%d", pt.MaxReplayRuns),
				fmt.Sprintf("%d/%d", pt.Reproduced, pt.Members),
				fmt.Sprintf("%d", len(pt.Promoted)),
				fmt.Sprintf("%d", len(pt.Demoted)))
		},
	})
	if err != nil {
		return nil, err
	}

	// Both directions of the claim, as grep-able notes.
	gen0 := tr.Points[0]
	final := tr.Final()
	lcMeanMiss := gen0.Reproduced < gen0.Members || gen0.MeanReplayRuns > float64(target)
	status := "corpus balance: NOT converged"
	if tr.Converged {
		status = "corpus balance: converged"
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%s: %s", status, tr.Reason),
		fmt.Sprintf("corpus: %d reports in %d members (noisy x%d deduped, weights %s), identity %s, shards: %d %s",
			nNoisy+1, len(crp.Reports), nNoisy, weightList(crp), tr.CorpusIdentity, shards, shardMode))
	if lcTraj.Converged && lcFinal.Generation == 0 && lcMeanMiss && tr.Converged {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"direction 1 (promote): latest-crash converges at generation 0 (noisy replay %d runs <= %d) leaving the corpus mean at %.1f runs with %d/%d reproduced — the corpus loop reaches mean %.1f <= %d",
			lcFinal.ReplayRuns, target, gen0.MeanReplayRuns, gen0.Reproduced, gen0.Members,
			final.MeanReplayRuns, target))
	} else {
		t.Notes = append(t.Notes, "direction 1 (promote): NOT demonstrated on this run")
	}
	demoted := demotedTotal(tr)
	preDemotion := preDemotionBits(tr)
	if demoted > 0 && final.MeanOverheadBits < preDemotion && final.Reproduced == final.Members {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"direction 2 (demote): %d branches demoted, measured mean bits %.1f strictly below pre-demotion %.1f, %d/%d reports reproduce",
			demoted, final.MeanOverheadBits, preDemotion, final.Reproduced, final.Members))
	} else {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"direction 2 (demote): NOT demonstrated (demoted %d, refused %q)", demoted, tr.DemotionRefused))
	}

	if c.CorpusTrajectoryOut != "" {
		if err := tr.Save(c.CorpusTrajectoryOut); err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, "corpus trajectory JSON written to "+c.CorpusTrajectoryOut)
	}
	if c.CorpusProfileOut != "" && final.Outcome != nil && final.Outcome.Profile != nil {
		if err := final.Outcome.Profile.Save(c.CorpusProfileOut); err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, "merged corpus profile written to "+c.CorpusProfileOut)
	}
	return t, nil
}

// weightList renders the member weights compactly.
func weightList(c *pathlog.Corpus) string {
	out := ""
	for i, rep := range c.Reports {
		if i > 0 {
			out += "/"
		}
		out += fmt.Sprintf("%.2f", rep.Weight)
	}
	return out
}

// demotedTotal counts branches demoted across the trajectory.
func demotedTotal(tr *pathlog.CorpusTrajectory) int {
	n := 0
	for _, pt := range tr.Points {
		n += len(pt.Demoted)
	}
	return n
}

// preDemotionBits returns the measured mean bits of the last generation
// before the first demotion (the shrink's baseline); the final point's
// bits when nothing was demoted.
func preDemotionBits(tr *pathlog.CorpusTrajectory) float64 {
	for i, pt := range tr.Points {
		if len(pt.Demoted) > 0 && i > 0 {
			return tr.Points[i-1].MeanOverheadBits
		}
	}
	return tr.Final().MeanOverheadBits
}
