package harness

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pathlog"
	"pathlog/internal/apps"
	"pathlog/internal/obs"
	"pathlog/internal/static"
)

// TraceFleet drives the unified observability layer end to end across
// three real processes: a pathlogd intake daemon, two shardworkerd replay
// daemons and one tune -corpus -workers invocation, every process writing
// its spans to its own -trace JSONL file.
//
// The experiment checks the tentpole's claims:
//
//   - One trace: tune's root span opens a trace ID that the corpus
//     publish (POST /report), the balance generation's fleet dispatches
//     (POST /shard) and — across both HTTP hops — the daemons' own
//     intake.ingest and worker.shard spans all share. Concatenating the
//     four JSONL files reassembles one coherent tree.
//   - Parent linkage: every remote span's parent ID is a span tune
//     itself emitted (corpus.publish for ingests, fleet.dispatch for
//     shards) — the header propagation carries span identity, not just
//     the trace ID.
//   - Uniform exposition: both daemons serve Prometheus-text /metrics
//     that obs.ParsePrometheus lints clean, each including at least one
//     histogram with observations.
func (c Config) TraceFleet(ctx context.Context) (*Table, error) {
	r, err := c.traceFleet(ctx)
	if err != nil {
		return nil, err
	}
	return r.Table, nil
}

// traceFleetResult carries the experiment's table plus the assertions'
// raw material, for the harness-level linkage test.
type traceFleetResult struct {
	Table *Table
	// TraceID is the run's single trace ID (from tune's root span).
	TraceID string
	// Spans is the merged cross-process span set.
	Spans []obs.SpanRecord
	// Generations, WorkerShards and Ingests count the spans of the run's
	// trace emitted by tune, the shard daemons and the intake daemon.
	Generations, WorkerShards, Ingests int
}

func (c Config) traceFleet(ctx context.Context) (*traceFleetResult, error) {
	root := c.TraceFleetDir
	if root == "" {
		tmp, err := os.MkdirTemp("", "pathlog-tracefleet-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}
	storeDir := filepath.Join(root, "store")
	reportsDir := filepath.Join(root, "reports")
	intakeDir := filepath.Join(root, "intake")
	if err := os.MkdirAll(reportsDir, 0o755); err != nil {
		return nil, err
	}

	// Developer site: a store-backed generation-0 plan, and three uServer
	// crash reports recorded under it as stamped-only v3 envelopes — the
	// exact files a deployed site would have shipped.
	s3, err := apps.UServerScenario(3, 72)
	if err != nil {
		return nil, err
	}
	sess := pathlog.SessionOf(s3,
		pathlog.WithAnalysisSpec(apps.UServerAnalysisScenario().Spec),
		pathlog.WithDynamicBudget(c.UServerAnalysisRunsLC, 0),
		pathlog.WithStaticOptions(static.Options{LibAsSymbolic: true}),
		pathlog.WithSyscallLog(),
		pathlog.WithStrategy(pathlog.Dynamic()),
		pathlog.WithPlanStore(storeDir),
	)
	plan, err := sess.Plan(ctx)
	if err != nil {
		return nil, err
	}
	for i, exp := range []int{1, 2, 4} {
		se, err := apps.UServerScenario(exp, 72)
		if err != nil {
			return nil, err
		}
		rec, _, err := sess.RecordWith(ctx, plan, se.UserBytes)
		if err != nil {
			return nil, err
		}
		if rec == nil {
			return nil, fmt.Errorf("harness: uServer experiment %d did not crash", exp)
		}
		data, err := rec.EncodeRef()
		if err != nil {
			return nil, err
		}
		path := filepath.Join(reportsDir, fmt.Sprintf("report-%d.json", exp))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return nil, err
		}
		// Staggered mtimes keep the recency weights deterministic.
		mt := time.Unix(1_700_000_000, 0).Add(time.Duration(i) * time.Hour)
		if err := os.Chtimes(path, mt, mt); err != nil {
			return nil, err
		}
	}

	pathlogdBin, err := buildCmd(ctx, "pathlogd")
	if err != nil {
		return nil, err
	}
	tuneBin, err := buildCmd(ctx, "tune")
	if err != nil {
		return nil, err
	}
	workerBin := c.FleetReplayWorkerCmd
	if workerBin == "" {
		if workerBin, err = buildCmd(ctx, "shardworkerd"); err != nil {
			return nil, err
		}
	}

	// The daemons, each tracing to its own file.
	pdTrace := filepath.Join(root, "pathlogd.trace.jsonl")
	pd, pdURL, err := startPathlogd(ctx, pathlogdBin,
		"-store", storeDir, "-dir", intakeDir, "-listen", "127.0.0.1:0", "-trace", pdTrace)
	if err != nil {
		return nil, err
	}
	defer pd.stop()
	workerTraces := make([]string, 2)
	workerURLs := make([]string, 2)
	for i := range workerTraces {
		workerTraces[i] = filepath.Join(root, fmt.Sprintf("worker%d.trace.jsonl", i))
		d, err := startShardWorkerd(ctx, workerBin, "-trace", workerTraces[i])
		if err != nil {
			return nil, err
		}
		defer d.stop()
		workerURLs[i] = d.url
	}

	// The run under test: one tune invocation publishing its corpus to
	// the intake daemon and fanning its replay shards over the workers.
	tuneTrace := filepath.Join(root, "tune.trace.jsonl")
	tuneCmd := exec.CommandContext(ctx, tuneBin,
		"-scenario", s3.Name,
		"-store", storeDir,
		"-corpus", reportsDir,
		"-workers", strings.Join(workerURLs, ","),
		"-report-to", pdURL,
		"-trace-out", tuneTrace,
		"-dynamic-runs", fmt.Sprint(c.UServerAnalysisRunsLC),
		"-replay-runs", fmt.Sprint(c.ReplayMaxRuns),
		"-replay-budget", c.ReplayBudget.String(),
		"-replay-workers", fmt.Sprint(c.ReplayWorkers),
	)
	tuneOut, err := tuneCmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("harness: tune run failed: %v\n%s", err, tuneOut)
	}

	// Scrape both daemon kinds' /metrics in Prometheus text and lint the
	// exposition; each must expose at least one histogram with
	// observations. The intake scrape also gates shutdown: all three
	// published reports must be counted before the daemons die.
	client := &http.Client{Timeout: 5 * time.Second}
	var metricsOut bytes.Buffer
	pdFams, err := scrapePromUntil(client, pdURL, &metricsOut, func(f map[string]obs.PromFamily) bool {
		return f["pathlog_intake_accepted_total"].Samples["pathlog_intake_accepted_total"] >= 3
	})
	if err != nil {
		return nil, fmt.Errorf("harness: pathlogd /metrics: %w", err)
	}
	wkFams, err := scrapePromUntil(client, workerURLs[0], &metricsOut, nil)
	if err != nil {
		return nil, fmt.Errorf("harness: shardworkerd /metrics: %w", err)
	}
	pdHist, err := histogramWithObservations(pdFams)
	if err != nil {
		return nil, fmt.Errorf("harness: pathlogd exposition: %w", err)
	}
	wkHist, err := histogramWithObservations(wkFams)
	if err != nil {
		return nil, fmt.Errorf("harness: shardworkerd exposition: %w", err)
	}
	if c.TraceFleetMetricsOut != "" {
		if err := os.WriteFile(c.TraceFleetMetricsOut, metricsOut.Bytes(), 0o644); err != nil {
			return nil, err
		}
	}

	// Merge the per-process traces into one JSONL and reassemble the tree.
	var spans []obs.SpanRecord
	var merged bytes.Buffer
	for _, path := range append([]string{tuneTrace, pdTrace}, workerTraces...) {
		ss, data, err := readSpans(path)
		if err != nil {
			return nil, err
		}
		spans = append(spans, ss...)
		merged.Write(data)
	}
	if c.TraceFleetTraceOut != "" {
		if err := os.WriteFile(c.TraceFleetTraceOut, merged.Bytes(), 0o644); err != nil {
			return nil, err
		}
	}

	res := &traceFleetResult{Spans: spans}
	byID := make(map[string]obs.SpanRecord, len(spans))
	for _, s := range spans {
		byID[s.Span] = s
	}
	for _, s := range spans {
		if s.Name == "tune" && s.Proc == "tune" {
			res.TraceID = s.Trace
		}
	}
	if res.TraceID == "" {
		return nil, fmt.Errorf("harness: tune emitted no root span (%d spans merged)", len(spans))
	}
	perProc := map[string]int{}
	names := map[string]map[string]int{}
	for _, s := range spans {
		if s.Trace != res.TraceID {
			return nil, fmt.Errorf("harness: span %s (%s, proc %s) carries trace %s, want the run's single trace %s",
				s.Span, s.Name, s.Proc, s.Trace, res.TraceID)
		}
		perProc[s.Proc]++
		if names[s.Proc] == nil {
			names[s.Proc] = map[string]int{}
		}
		names[s.Proc][s.Name]++
		switch s.Name {
		case "balance.generation":
			res.Generations++
		case "worker.shard":
			res.WorkerShards++
			if parent, ok := byID[s.Parent]; !ok || parent.Name != "fleet.dispatch" || parent.Proc != "tune" {
				return nil, fmt.Errorf("harness: worker.shard span %s does not parent under a tune fleet.dispatch span (parent %q)",
					s.Span, s.Parent)
			}
		case "intake.ingest":
			res.Ingests++
			if parent, ok := byID[s.Parent]; !ok || parent.Name != "corpus.publish" || parent.Proc != "tune" {
				return nil, fmt.Errorf("harness: intake.ingest span %s does not parent under tune's corpus.publish span (parent %q)",
					s.Span, s.Parent)
			}
		}
	}
	if res.Generations == 0 || res.WorkerShards == 0 || res.Ingests == 0 {
		return nil, fmt.Errorf("harness: trace %s is missing a tier: %d balance generation(s), %d worker shard(s), %d ingest(s)",
			res.TraceID, res.Generations, res.WorkerShards, res.Ingests)
	}

	t := &Table{
		ID: "TraceFleet",
		Title: fmt.Sprintf("unified observability: one tune run traced across pathlogd + %d shardworkerd daemons",
			len(workerURLs)),
		Header: []string{"process", "spans", "span names"},
	}
	for _, proc := range []string{"tune", "pathlogd", "shardworkerd"} {
		var parts []string
		for name, n := range names[proc] {
			parts = append(parts, fmt.Sprintf("%s×%d", name, n))
		}
		sort.Strings(parts)
		t.AddRow(proc, fmt.Sprintf("%d", perProc[proc]), strings.Join(parts, " "))
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"single trace: all %d spans across 4 processes share trace %s; %d balance generation(s) link to %d worker shard(s) and %d intake ingest(s) by propagated span identity",
		len(spans), res.TraceID, res.Generations, res.WorkerShards, res.Ingests))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"exposition lints clean: pathlogd /metrics (histogram %s) and shardworkerd /metrics (histogram %s) parse as Prometheus text 0.0.4",
		pdHist, wkHist))
	res.Table = t
	return res, nil
}

// startPathlogd launches the intake daemon and scrapes its startup line
// ("pathlogd: listening on <addr> ...") for the bound address.
func startPathlogd(ctx context.Context, bin string, args ...string) (*shardDaemon, string, error) {
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", fmt.Errorf("harness: start pathlogd: %w", err)
	}
	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
		io.Copy(io.Discard, stdout)
	}()
	select {
	case line, ok := <-lines:
		fields := strings.Fields(line)
		if !ok || len(fields) < 4 || !strings.HasPrefix(line, "pathlogd: listening on ") {
			cmd.Process.Kill()
			cmd.Wait()
			return nil, "", fmt.Errorf("harness: unexpected pathlogd startup line %q", line)
		}
		url := "http://" + fields[3]
		return &shardDaemon{url: url, cmd: cmd}, url, nil
	case <-ctx.Done():
		cmd.Process.Kill()
		cmd.Wait()
		return nil, "", fmt.Errorf("harness: pathlogd printed no address: %w", ctx.Err())
	}
}

// scrapePromUntil GETs <url>/metrics in Prometheus text, lints it, and —
// when ready is set — retries briefly until the parsed families satisfy
// it (the intake pipeline is asynchronous; a scrape can race the last
// ingest). The final scrape body is appended to out under a header line.
func scrapePromUntil(cl *http.Client, url string, out *bytes.Buffer, ready func(map[string]obs.PromFamily) bool) (map[string]obs.PromFamily, error) {
	var fams map[string]obs.PromFamily
	var body []byte
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := cl.Get(url + "/metrics")
		if err != nil {
			return nil, err
		}
		body, err = io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			return nil, fmt.Errorf("scrape %s/metrics: content type %q, want Prometheus text", url, ct)
		}
		if fams, err = obs.ParsePrometheus(bytes.NewReader(body)); err != nil {
			return nil, fmt.Errorf("scrape %s/metrics: %w", url, err)
		}
		if ready == nil || ready(fams) || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if ready != nil && !ready(fams) {
		return nil, fmt.Errorf("scrape %s/metrics: readiness condition never satisfied:\n%s", url, body)
	}
	fmt.Fprintf(out, "# scrape %s/metrics\n", url)
	out.Write(body)
	return fams, nil
}

// histogramWithObservations returns the name of a histogram family with a
// nonzero _count, or an error when the exposition has none.
func histogramWithObservations(fams map[string]obs.PromFamily) (string, error) {
	var hists []string
	for name, fam := range fams {
		if fam.Type != "histogram" {
			continue
		}
		hists = append(hists, name)
		if fam.Samples[name+"_count"] > 0 {
			return name, nil
		}
	}
	sort.Strings(hists)
	return "", fmt.Errorf("no histogram with observations (histogram families: %v)", hists)
}

// readSpans parses one span-per-line JSONL trace file.
func readSpans(path string) ([]obs.SpanRecord, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var spans []obs.SpanRecord
	for i, line := range bytes.Split(data, []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var s obs.SpanRecord
		if err := json.Unmarshal(line, &s); err != nil {
			return nil, nil, fmt.Errorf("harness: %s line %d: %w", path, i+1, err)
		}
		spans = append(spans, s)
	}
	return spans, data, nil
}
