package concolic

import (
	"context"
	"testing"

	"pathlog/internal/lang"
	"pathlog/internal/world"
)

// listing1 is the paper's example program (Listing 1): only the two option
// branches are symbolic; everything in fibonacci is concrete.
const listing1 = `
int fibonacci(int n) {
	int a = 0;
	int b = 1;
	int i;
	for (i = 0; i < n; i++) {    // concrete branch
		int t = a + b;
		a = b;
		b = t;
	}
	return a;
}
int main() {
	char opt[8];
	getarg(0, opt, 8);
	int result = 0;
	if (opt[0] == 'a') {          // symbolic branch
		result = fibonacci(20);
	} else if (opt[0] == 'b') {   // symbolic branch
		result = fibonacci(40);
	}
	print_int(result);
	return 0;
}
`

func compile(t *testing.T, src string) *lang.Program {
	t.Helper()
	u, err := lang.ParseUnit("test.mc", lang.RegionApp, src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := lang.Link([]*lang.Unit{u})
	if err != nil {
		t.Fatalf("link: %v", err)
	}
	return p
}

func branchByPosLine(p *lang.Program, line int) *lang.BranchSite {
	for _, b := range p.Branches {
		if b.Pos.Line == line {
			return b
		}
	}
	return nil
}

func TestListing1Labels(t *testing.T) {
	prog := compile(t, listing1)
	spec := &world.Spec{Args: []world.Stream{world.ArgSpec(0, "x", 4)}}
	ex := New(prog, spec, world.NewRegistry(), Options{MaxRuns: 50})
	rep := ex.Explore(context.Background())

	if rep.Runs < 3 {
		t.Fatalf("expected at least 3 runs, got %d", rep.Runs)
	}
	// Branches: for(line 6)=concrete, if 'a'(17)=symbolic, if 'b'(19)=symbolic.
	forB := branchByPosLine(prog, 6)
	ifA := branchByPosLine(prog, 17)
	ifB := branchByPosLine(prog, 19)
	if rep.Labels[ifA.ID] != Symbolic {
		t.Errorf("if(opt=='a'): %v", rep.Labels[ifA.ID])
	}
	if rep.Labels[ifB.ID] != Symbolic {
		t.Errorf("if(opt=='b'): %v", rep.Labels[ifB.ID])
	}
	if rep.Labels[forB.ID] != Concrete {
		t.Errorf("fib loop: %v", rep.Labels[forB.ID])
	}
	if got := rep.CountLabel(Symbolic); got != 2 {
		t.Errorf("symbolic count: %d", got)
	}
}

func TestExplorationFindsBothOptions(t *testing.T) {
	// The explorer must discover inputs 'a' and 'b' from seed "x": the fib
	// loop runs 20 and 40 iterations on those paths, so per-branch execution
	// counts reveal whether both paths were explored.
	prog := compile(t, listing1)
	spec := &world.Spec{Args: []world.Stream{world.ArgSpec(0, "x", 4)}}
	ex := New(prog, spec, world.NewRegistry(), Options{MaxRuns: 50})
	rep := ex.Explore(context.Background())

	forB := branchByPosLine(prog, 6)
	// Paths: 'x' (no fib), 'a' (21 execs), 'b' (41 execs) => >= 62.
	if rep.ExecCount[forB.ID] < 62 {
		t.Errorf("fib loop execs: %d; exploration missed an option path",
			rep.ExecCount[forB.ID])
	}
}

func TestCoverageBudget(t *testing.T) {
	prog := compile(t, listing1)
	spec := &world.Spec{Args: []world.Stream{world.ArgSpec(0, "x", 4)}}

	low := New(prog, spec, world.NewRegistry(), Options{MaxRuns: 1}).Explore(context.Background())
	high := New(prog, spec, world.NewRegistry(), Options{MaxRuns: 50}).Explore(context.Background())

	total := len(prog.Branches)
	if low.Coverage(total) > high.Coverage(total) {
		t.Errorf("coverage: low=%v high=%v", low.Coverage(total), high.Coverage(total))
	}
	// With a single run on seed "x", the fibonacci loop is never entered:
	// its branch location must stay concrete or unvisited-labeled, and at
	// least the two option branches are seen.
	if low.Runs != 1 {
		t.Errorf("low runs: %d", low.Runs)
	}
	if high.CountLabel(Symbolic) < low.CountLabel(Symbolic) {
		t.Error("symbolic labels should not shrink with budget")
	}
}

func TestRelabelConcreteToSymbolic(t *testing.T) {
	// A helper executed first with a constant, later with input: the branch
	// inside is labeled concrete first, then relabeled symbolic (§2.1).
	src := `
	int check(int v) {
		if (v > 10) { return 1; }   // concrete on first call, symbolic later
		return 0;
	}
	int main() {
		char a[4];
		int r = check(5);
		getarg(0, a, 4);
		r += check(a[0]);
		exit(r);
		return 0;
	}
	`
	prog := compile(t, src)
	spec := &world.Spec{Args: []world.Stream{world.ArgSpec(0, "z", 2)}}
	rep := New(prog, spec, world.NewRegistry(), Options{MaxRuns: 20}).Explore(context.Background())
	b := branchByPosLine(prog, 3)
	if rep.Labels[b.ID] != Symbolic {
		t.Errorf("relabel: got %v", rep.Labels[b.ID])
	}
}

func TestUnvisitedStaysUnvisited(t *testing.T) {
	// A function never called must leave its branches unvisited.
	src := `
	int dead(int v) {
		if (v > 0) { return 1; }
		return 0;
	}
	int main() {
		char a[4];
		getarg(0, a, 4);
		if (a[0] == 'Z' && a[1] == 'Q') { crash(1); }
		return 0;
	}
	`
	prog := compile(t, src)
	spec := &world.Spec{Args: []world.Stream{world.ArgSpec(0, "ab", 4)}}
	rep := New(prog, spec, world.NewRegistry(), Options{MaxRuns: 30}).Explore(context.Background())
	deadBranch := branchByPosLine(prog, 3)
	if rep.Labels[deadBranch.ID] != Unvisited {
		t.Errorf("dead branch: %v", rep.Labels[deadBranch.ID])
	}
	if rep.Coverage(len(prog.Branches)) >= 1.0 {
		t.Error("coverage should be below 100% with dead code")
	}
}

func TestExplorerFindsGuardedCrash(t *testing.T) {
	// The explorer must synthesize the two-byte guard 'Z','Q' by negating
	// constraints — the core capability replay depends on.
	src := `
	int main() {
		char a[4];
		getarg(0, a, 4);
		if (a[0] == 'Z') {
			if (a[1] == 'Q') { crash(1); }
		}
		return 0;
	}
	`
	prog := compile(t, src)
	spec := &world.Spec{Args: []world.Stream{world.ArgSpec(0, "ab", 4)}}
	rep := New(prog, spec, world.NewRegistry(), Options{MaxRuns: 30}).Explore(context.Background())
	inner := branchByPosLine(prog, 6)
	if rep.ExecCount[inner.ID] == 0 {
		t.Fatal("inner guard never reached; solver failed to flip outer guard")
	}
	if rep.Labels[inner.ID] != Symbolic {
		t.Errorf("inner guard label: %v", rep.Labels[inner.ID])
	}
}

func TestHistogramConsistency(t *testing.T) {
	prog := compile(t, listing1)
	spec := &world.Spec{Args: []world.Stream{world.ArgSpec(0, "a", 2)}}
	rep := New(prog, spec, world.NewRegistry(), Options{MaxRuns: 10}).Explore(context.Background())

	var execs, symExecs int64
	for _, n := range rep.ExecCount {
		execs += n
	}
	for _, n := range rep.SymExecCount {
		symExecs += n
	}
	if execs != rep.BranchExecs || symExecs != rep.SymbolicExecs {
		t.Fatalf("histogram mismatch: %d/%d vs %d/%d",
			execs, symExecs, rep.BranchExecs, rep.SymbolicExecs)
	}
	if symExecs > execs {
		t.Fatal("symbolic execs exceed total execs")
	}
	// Per-location: symbolic executions never exceed total executions.
	for id, n := range rep.SymExecCount {
		if n > rep.ExecCount[id] {
			t.Fatalf("branch %d: sym %d > total %d", id, n, rep.ExecCount[id])
		}
	}
}

func TestDeterministicExploration(t *testing.T) {
	run := func() (int, int) {
		prog := compile(t, listing1)
		spec := &world.Spec{Args: []world.Stream{world.ArgSpec(0, "x", 4)}}
		rep := New(prog, spec, world.NewRegistry(), Options{MaxRuns: 25}).Explore(context.Background())
		return rep.Runs, rep.CountLabel(Symbolic)
	}
	r1, s1 := run()
	r2, s2 := run()
	if r1 != r2 || s1 != s2 {
		t.Fatalf("nondeterministic exploration: %d/%d vs %d/%d", r1, s1, r2, s2)
	}
}

func TestLabelString(t *testing.T) {
	if Unvisited.String() != "unvisited" || Concrete.String() != "concrete" ||
		Symbolic.String() != "symbolic" {
		t.Error("label names")
	}
}
