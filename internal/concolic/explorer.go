// Package concolic implements the paper's dynamic analysis (§2.1): a
// time-bounded concolic execution engine that explores program paths with
// concrete inputs, labels every visited branch location as symbolic or
// concrete, and leaves the rest unvisited.
//
// The engine follows the concolic discipline described in the paper: each
// run executes the whole program with concrete inputs while collecting the
// path condition (one constraint per symbolic branch execution); after a run,
// constraints are negated one by one to produce child inputs (generational
// search), which are queued for later runs. Labels obey §2.1 exactly: a
// branch first executed with a symbolic condition is symbolic forever; a
// branch first executed with a concrete condition is concrete until some
// later execution observes a symbolic condition, which relabels it symbolic.
package concolic

import (
	"context"
	"time"

	"pathlog/internal/lang"
	"pathlog/internal/oskernel"
	"pathlog/internal/solver"
	"pathlog/internal/sym"
	"pathlog/internal/vm"
	"pathlog/internal/world"
)

// Label is the dynamic-analysis classification of a branch location.
type Label int

// Labels. The zero value is Unvisited.
const (
	Unvisited Label = iota
	Concrete
	Symbolic
)

// String implements fmt.Stringer.
func (l Label) String() string {
	return [...]string{"unvisited", "concrete", "symbolic"}[l]
}

// Options bound the exploration effort. The time budget is the paper's
// coverage knob: more symbolic-execution time buys higher branch coverage
// (the LC/HC configurations of §5.3).
type Options struct {
	// MaxRuns bounds the number of concolic runs; 0 means DefaultMaxRuns.
	MaxRuns int
	// TimeBudget bounds wall-clock exploration time; 0 means no limit.
	TimeBudget time.Duration
	// MaxStepsPerRun bounds each run; 0 uses the VM default.
	MaxStepsPerRun int64
	// MaxQueue bounds the pending-input queue; 0 means DefaultMaxQueue.
	MaxQueue int
	// MaxChildrenPerRun bounds how many negated constraints of one run are
	// turned into child inputs; 0 means DefaultMaxChildrenPerRun. Deep
	// paths (diff's LCS loops) would otherwise spawn thousands of solver
	// calls per run.
	MaxChildrenPerRun int
	// OnRun, when set, is called after each exploration run with the number
	// of runs completed so far.
	OnRun func(completed int)
	// Engine builds the execution machine for each run; nil uses the
	// tree-walking interpreter (vm.TreeFactory).
	Engine vm.Factory
	// Solver options.
	Solver solver.Options
}

// Default bounds.
const (
	DefaultMaxRuns           = 400
	DefaultMaxQueue          = 4096
	DefaultMaxChildrenPerRun = 48
)

// Report is the outcome of one exploration.
type Report struct {
	Labels      map[lang.BranchID]Label
	Runs        int
	Elapsed     time.Duration
	SolverStats solver.Stats
	// BranchExecs counts total branch executions across runs; SymbolicExecs
	// counts those with symbolic conditions (Figure 1/3 data).
	BranchExecs   int64
	SymbolicExecs int64
	// ExecCount and SymExecCount give per-location execution histograms.
	ExecCount    map[lang.BranchID]int64
	SymExecCount map[lang.BranchID]int64
}

// Coverage returns the fraction of the program's branch locations visited.
func (r *Report) Coverage(total int) float64 {
	if total == 0 {
		return 0
	}
	visited := 0
	for _, l := range r.Labels {
		if l != Unvisited {
			visited++
		}
	}
	return float64(visited) / float64(total)
}

// CountLabel returns how many branch locations carry the given label.
func (r *Report) CountLabel(l Label) int {
	n := 0
	for _, got := range r.Labels {
		if got == l {
			n++
		}
	}
	return n
}

// Explorer drives concolic exploration of one program over one input spec.
type Explorer struct {
	prog *lang.Program
	spec *world.Spec
	reg  *world.Registry
	slv  *solver.Solver
	opts Options

	report Report
	queue  []sym.MapAssignment
	seen   map[string]bool // dedup of queued assignments
	varBuf []int           // scratch for per-child constraint variable IDs

	// cache carries engine-private run-acceleration state across the runs of
	// one exploration (the bytecode VM's linear trace). Exploration is
	// sequential and starts with the all-seed run, so the seed run writes it
	// before any other run reads.
	cache *vm.SearchCache
}

// New creates an explorer. The registry may be shared with a later replay
// session so that branch labels and constraints agree on variable identity.
func New(prog *lang.Program, spec *world.Spec, reg *world.Registry, opts Options) *Explorer {
	if opts.MaxRuns <= 0 {
		opts.MaxRuns = DefaultMaxRuns
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = DefaultMaxQueue
	}
	if opts.MaxChildrenPerRun <= 0 {
		opts.MaxChildrenPerRun = DefaultMaxChildrenPerRun
	}
	if opts.Engine == nil {
		opts.Engine = vm.TreeFactory
	}
	return &Explorer{
		prog: prog,
		spec: spec,
		reg:  reg,
		slv:  solver.New(opts.Solver),
		opts: opts,
		seen: make(map[string]bool),
	}
}

// pathCond is one collected constraint with its branch site.
type pathCond struct {
	site *lang.BranchSite
	c    sym.Constraint
}

// tracer is the branch sink used during exploration runs: it labels branch
// locations and collects the path condition.
type tracer struct {
	ex    *Explorer
	conds []pathCond
	// maxConds caps the path condition length so enormous runs (the diff
	// LCS loops) do not stall child generation.
	maxConds int
}

// OnBranch implements vm.BranchSink.
func (t *tracer) OnBranch(site *lang.BranchSite, cond vm.Value, taken bool) error {
	t.ex.report.BranchExecs++
	t.ex.report.ExecCount[site.ID]++
	if cond.IsSymbolic() {
		t.ex.report.SymbolicExecs++
		t.ex.report.SymExecCount[site.ID]++
		t.ex.report.Labels[site.ID] = Symbolic // symbolic is sticky
		if len(t.conds) < t.maxConds {
			t.conds = append(t.conds, pathCond{
				site: site,
				c:    sym.Constraint{E: cond.Sym, Truth: taken},
			})
		}
		return nil
	}
	if t.ex.report.Labels[site.ID] == Unvisited {
		t.ex.report.Labels[site.ID] = Concrete
	}
	return nil
}

// Explore runs the analysis until its budget is exhausted, the context is
// cancelled, or its deadline passes, and returns the labeling report. The
// context subsumes the TimeBudget option: whichever bound fires first stops
// exploration after the current run.
func (e *Explorer) Explore(ctx context.Context) *Report {
	e.report = Report{
		Labels:       make(map[lang.BranchID]Label, len(e.prog.Branches)),
		ExecCount:    make(map[lang.BranchID]int64),
		SymExecCount: make(map[lang.BranchID]int64),
	}
	for _, b := range e.prog.Branches {
		e.report.Labels[b.ID] = Unvisited
	}

	start := time.Now()
	if e.opts.TimeBudget > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, start.Add(e.opts.TimeBudget))
		defer cancel()
	}

	e.cache = vm.NewSearchCache()
	e.queue = []sym.MapAssignment{{}} // initial run: all-seed input
	for len(e.queue) > 0 && e.report.Runs < e.opts.MaxRuns {
		if ctx.Err() != nil {
			break
		}
		asn := e.queue[0]
		e.queue = e.queue[1:]
		conds := e.runOnce(asn)
		if e.opts.OnRun != nil {
			e.opts.OnRun(e.report.Runs)
		}
		if e.report.Runs >= e.opts.MaxRuns {
			break // the budget is spent; child generation would be wasted
		}
		e.generateChildren(asn, conds)
	}

	e.report.Elapsed = time.Since(start)
	e.report.SolverStats = e.slv.Stats()
	return &e.report
}

// runOnce executes the program with one concrete assignment and returns the
// collected path condition.
func (e *Explorer) runOnce(asn sym.MapAssignment) []pathCond {
	e.report.Runs++
	w := world.NewWorld(e.spec, e.reg, asn)
	cfg := w.KernelConfig()
	cfg.Mode = oskernel.ModeRecord
	kern := oskernel.New(cfg)
	tr := &tracer{ex: e, maxConds: 4096}
	machine := e.opts.Engine(e.prog, vm.Options{
		Kernel:   kern,
		Sink:     tr,
		World:    w,
		MaxSteps: e.opts.MaxStepsPerRun,
		Cache:    e.cache,
	})
	// Crashes and budget blowups during analysis are expected: exploration
	// inputs routinely trip the planted bugs. Only real VM errors matter.
	if _, err := machine.Run(); err != nil {
		// A VM-internal error means a bug in this repository, not in the
		// analyzed program. Surface it loudly.
		panic(err)
	}
	return tr.conds
}

// generateChildren negates path constraints (generational search) and
// queues solved inputs for later runs. Two standard concolic optimizations
// keep this tractable on deep paths:
//
//   - the number of children per run is capped, with negation sites spread
//     evenly over the path so deep branches still get explored;
//   - unrelated constraint elimination: each child problem contains only the
//     prefix constraints transitively sharing variables with the negated
//     one. Dropping independent constraints cannot make the negation
//     unsolvable; the child input may diverge earlier on the path, which
//     exploration tolerates (it is not replay).
func (e *Explorer) generateChildren(parent sym.MapAssignment, conds []pathCond) {
	n := len(conds)
	if n == 0 {
		return
	}
	stride := 1
	if n > e.opts.MaxChildrenPerRun {
		stride = n / e.opts.MaxChildrenPerRun
	}
	for i := 0; i < n; i += stride {
		if len(e.queue) >= e.opts.MaxQueue {
			return
		}
		sliced := sliceRelevant(conds[:i], conds[i].c.Negated())
		vars := sym.ConstraintVarIDs(sliced, e.varBuf)
		e.varBuf = vars
		problem := solver.Problem{
			Constraints: sliced,
			Domains:     e.reg.Domains(vars),
			Seed:        overlaySeed(parent, vars),
		}
		child, ok := e.slv.Solve(problem)
		if !ok {
			continue
		}
		merged := mergeAssignment(parent, child)
		key := assignmentKey(merged)
		if e.seen[key] {
			continue
		}
		e.seen[key] = true
		e.queue = append(e.queue, merged)
	}
}

// sliceRelevant returns the negated constraint plus every prefix constraint
// transitively connected to it by shared variables (one backward pass).
func sliceRelevant(prefix []pathCond, negated sym.Constraint) []sym.Constraint {
	relevant := sym.Vars(negated.E)
	keep := make([]bool, len(prefix))
	for i := len(prefix) - 1; i >= 0; i-- {
		vars := sym.Vars(prefix[i].c.E)
		shared := false
		for v := range vars {
			if _, ok := relevant[v]; ok {
				shared = true
				break
			}
		}
		if !shared {
			continue
		}
		keep[i] = true
		for v := range vars {
			relevant[v] = struct{}{}
		}
	}
	out := make([]sym.Constraint, 0, 16)
	for i, k := range keep {
		if k {
			out = append(out, prefix[i].c)
		}
	}
	return append(out, negated)
}

// overlaySeed extracts the parent's values for the constraint variables as
// the solver seed.
func overlaySeed(parent sym.MapAssignment, vars []int) sym.MapAssignment {
	out := make(sym.MapAssignment, len(vars))
	for _, id := range vars {
		if v, ok := parent[id]; ok {
			out[id] = v
		}
	}
	return out
}

// mergeAssignment layers the solved values over the parent input.
func mergeAssignment(parent, child sym.MapAssignment) sym.MapAssignment {
	out := make(sym.MapAssignment, len(parent)+len(child))
	for id, v := range parent {
		out[id] = v
	}
	for id, v := range child {
		out[id] = v
	}
	return out
}

// assignmentKey renders a canonical dedup key.
func assignmentKey(asn sym.MapAssignment) string {
	// Assignments are small (tens of bytes); a sorted textual key is fine.
	ids := make([]int, 0, len(asn))
	for id := range asn {
		ids = append(ids, id)
	}
	sortInts(ids)
	buf := make([]byte, 0, len(ids)*6)
	for _, id := range ids {
		buf = appendInt(buf, int64(id))
		buf = append(buf, '=')
		buf = appendInt(buf, asn[id])
		buf = append(buf, ';')
	}
	return string(buf)
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func appendInt(buf []byte, v int64) []byte {
	if v < 0 {
		buf = append(buf, '-')
		v = -v
	}
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	return append(buf, tmp[i:]...)
}
