// Package world manages the symbolic input space of one benchmark scenario.
//
// A Spec declares which byte streams constitute program input — argument
// strings, file contents, connection payloads — along with the workload's
// kernel parameters. A Registry assigns stable symbolic-variable IDs to
// (stream, offset) coordinates and to modeled syscall results, so that
// constraints produced in different runs refer to the same variables. A World
// binds a Spec, a Registry, and one concrete assignment: it materializes the
// kernel configuration for a run and implements both vm.World (symbolic byte
// marking) and oskernel.ResultModel (modeled syscall results for replay
// without syscall logs).
package world

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"pathlog/internal/oskernel"
	"pathlog/internal/solver"
	"pathlog/internal/sym"
)

// Stream is one symbolic byte region. Bytes beyond the seed content up to
// Len read as NUL, giving the solver room to lengthen strings (the paper
// runs coreutils "with up to 10 arguments, each 100 bytes long").
type Stream struct {
	Name string
	Seed []byte
	Len  int
}

// FileInput attaches a stream to a file path.
type FileInput struct {
	Path   string
	Stream Stream
}

// ConnInput attaches a stream to a scripted client connection.
type ConnInput struct {
	Stream      Stream
	ArrivalTick int64
}

// Spec declares the full input space and workload shape of a scenario.
type Spec struct {
	Args  []Stream
	Files []FileInput
	Conns []ConnInput

	ListenPort            int
	KernelSeed            int64
	ShortReadDenom        int
	RotateSelectOrder     bool
	CrashSignalAfterConns bool
	// SymbolicFS selects the KLEE-style symbolic filesystem model: open()
	// succeeds against the declared files in order, whatever the path. Set
	// it for workloads whose file names are themselves symbolic input.
	SymbolicFS bool
}

// ArgSpec builds an argument stream named by its position.
func ArgSpec(i int, seed string, maxLen int) Stream {
	if maxLen < len(seed)+1 {
		maxLen = len(seed) + 1
	}
	return Stream{Name: oskernel.ArgStream(i), Seed: []byte(seed), Len: maxLen}
}

// FileSpec builds a file input stream.
func FileSpec(path, seed string, maxLen int) FileInput {
	if maxLen < len(seed) {
		maxLen = len(seed)
	}
	return FileInput{Path: path, Stream: Stream{
		Name: oskernel.FileStream(path), Seed: []byte(seed), Len: maxLen,
	}}
}

// ConnSpec builds a connection input stream for connection index i.
func ConnSpec(i int, seed string, maxLen int, arrival int64) ConnInput {
	if maxLen < len(seed) {
		maxLen = len(seed)
	}
	return ConnInput{
		Stream:      Stream{Name: oskernel.ConnStream(i), Seed: []byte(seed), Len: maxLen},
		ArrivalTick: arrival,
	}
}

// Registry assigns stable symbolic input variables. It persists across the
// runs of one analysis or replay session; IDs are allocated on first use of
// a coordinate and never change afterwards. A Registry is safe for
// concurrent use: parallel replay workers share one registry so constraints
// produced by different runs agree on variable identity.
type Registry struct {
	mu     sync.Mutex
	byKey  map[string]*sym.Input
	inputs []*sym.Input
	// byStream indexes byte variables by (stream, offset) so the per-byte
	// hot paths (symbolic marking, materialization) skip the key formatting
	// and map hashing of byKey. It shadows byKey: every byte variable is in
	// both.
	byStream map[string][]*sym.Input
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byKey:    make(map[string]*sym.Input),
		byStream: make(map[string][]*sym.Input),
	}
}

// ByteVar returns the input variable for byte (stream, off).
func (r *Registry) ByteVar(stream string, off int64) *sym.Input {
	return r.BoundedByteVar(stream, off, 0, 255)
}

// BoundedByteVar returns the input variable for byte (stream, off) with a
// custom domain; the domain is fixed on first use.
func (r *Registry) BoundedByteVar(stream string, off, lo, hi int64) *sym.Input {
	r.mu.Lock()
	defer r.mu.Unlock()
	if tbl := r.byStream[stream]; off >= 0 && off < int64(len(tbl)) {
		if in := tbl[off]; in != nil {
			return in
		}
	}
	key := stream + ":" + strconv.FormatInt(off, 10)
	in := sym.NewInput(len(r.inputs), key, lo, hi)
	r.byKey[key] = in
	r.inputs = append(r.inputs, in)
	tbl := r.byStream[stream]
	for int64(len(tbl)) <= off {
		tbl = append(tbl, nil)
	}
	tbl[off] = in
	r.byStream[stream] = tbl
	return in
}

// SyscallVar returns the input variable modeling a nondeterministic syscall
// result, e.g. ("read", 3) for the count of the fourth read. The domain is
// fixed on first use.
func (r *Registry) SyscallVar(kind string, seq int, lo, hi int64) *sym.Input {
	key := "sys:" + kind + ":" + strconv.Itoa(seq)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byKey[key]; ok {
		return in
	}
	in := sym.NewInput(len(r.inputs), key, lo, hi)
	r.byKey[key] = in
	r.inputs = append(r.inputs, in)
	return in
}

// LookupByte returns the variable of byte (stream, off), if registered.
func (r *Registry) LookupByte(stream string, off int64) (*sym.Input, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if tbl := r.byStream[stream]; off >= 0 && off < int64(len(tbl)) {
		if in := tbl[off]; in != nil {
			return in, true
		}
	}
	return nil, false
}

// Lookup returns the variable registered under a key, if any.
func (r *Registry) Lookup(key string) (*sym.Input, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	in, ok := r.byKey[key]
	return in, ok
}

// Get returns the variable with the given ID.
func (r *Registry) Get(id int) *sym.Input {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id < 0 || id >= len(r.inputs) {
		return nil
	}
	return r.inputs[id]
}

// Len returns the number of registered variables.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.inputs)
}

// SortedKeys lists the registered coordinate keys in lexical order.
func (r *Registry) SortedKeys() []string {
	r.mu.Lock()
	keys := make([]string, 0, len(r.byKey))
	for k := range r.byKey {
		keys = append(keys, k)
	}
	r.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Domains returns the solver domains of the given variable IDs, in input
// order, locking the registry once. Both search engines build one solver
// problem per explored alternative, so this runs on their hot paths; callers
// pass sorted, duplicate-free IDs (sym.ConstraintVarIDs) so the result meets
// solver.Problem's Domains contract directly.
func (r *Registry) Domains(ids []int) []solver.VarDomain {
	out := make([]solver.VarDomain, 0, len(ids))
	r.mu.Lock()
	for _, id := range ids {
		if id >= 0 && id < len(r.inputs) {
			if in := r.inputs[id]; in != nil {
				out = append(out, solver.VarDomain{ID: id, Lo: in.Lo, Hi: in.Hi})
			}
		}
	}
	r.mu.Unlock()
	return out
}

// World binds a scenario to one concrete input assignment.
type World struct {
	Spec *Spec
	Reg  *Registry
	// Asn holds the concrete values of registered input variables; missing
	// variables take their seed value.
	Asn sym.MapAssignment
	// Symbolic enables symbolic byte marking (analysis and replay runs).
	Symbolic bool
	// ModelSyscalls enables the symbolic syscall-result model (replay
	// without syscall logs, §3.3).
	ModelSyscalls bool

	// seedCache memoizes per-stream materialized bytes.
	seedCache map[string][]byte
	// selectTable holds derived count expressions (sums of readiness bits)
	// for modeled select() calls, keyed by select sequence number.
	selectTable *selectCountTable
}

// NewWorld creates a world over spec with the given assignment; a nil
// assignment means all-seed values.
func NewWorld(spec *Spec, reg *Registry, asn sym.MapAssignment) *World {
	if asn == nil {
		asn = sym.MapAssignment{}
	}
	return &World{Spec: spec, Reg: reg, Asn: asn, Symbolic: true,
		seedCache: make(map[string][]byte)}
}

// byteValue computes the concrete value of one stream byte under the current
// assignment: the assignment's value when the variable exists and is bound,
// else the seed byte, else NUL.
func (w *World) byteValue(s Stream, off int64) byte {
	if in, ok := w.Reg.LookupByte(s.Name, off); ok {
		if v, bound := w.Asn[in.ID]; bound {
			return byte(v)
		}
	}
	if off < int64(len(s.Seed)) {
		return s.Seed[off]
	}
	return 0
}

// MaterializeStream renders a stream's concrete bytes for this run. The
// materialized length is the full stream length; NUL bytes act as string
// terminators inside the programs.
func (w *World) MaterializeStream(s Stream) []byte {
	if b, ok := w.seedCache[s.Name]; ok {
		return b
	}
	out := make([]byte, s.Len)
	for i := range out {
		out[i] = w.byteValue(s, int64(i))
	}
	w.seedCache[s.Name] = out
	return out
}

// KernelConfig materializes the oskernel configuration for one run.
// Mode-specific fields (Mode, Log, Model, LogSyscalls) are left zero for the
// caller to fill in.
func (w *World) KernelConfig() oskernel.Config {
	cfg := oskernel.Config{
		ListenPort:            w.Spec.ListenPort,
		Seed:                  w.Spec.KernelSeed,
		ShortReadDenom:        w.Spec.ShortReadDenom,
		RotateSelectOrder:     w.Spec.RotateSelectOrder,
		CrashSignalAfterConns: w.Spec.CrashSignalAfterConns,
	}
	// Argument streams are passed untrimmed: the program sees the whole
	// fixed-size argv region (NUL-terminated-string semantics apply inside
	// it), so the position of the first NUL — the string's length — is
	// itself symbolic and the replay engine can lengthen or shorten
	// arguments, exactly as the paper's engine treats argv memory.
	for _, a := range w.Spec.Args {
		cfg.Args = append(cfg.Args, w.MaterializeStream(a))
	}
	cfg.SymbolicFS = w.Spec.SymbolicFS
	if len(w.Spec.Files) > 0 {
		cfg.Files = make(map[string][]byte, len(w.Spec.Files))
		for _, f := range w.Spec.Files {
			cfg.Files[f.Path] = w.MaterializeStream(f.Stream)
			cfg.FileOrder = append(cfg.FileOrder, f.Path)
		}
	}
	for _, c := range w.Spec.Conns {
		cfg.Conns = append(cfg.Conns, oskernel.ConnSpec{
			Payload:     w.MaterializeStream(c.Stream),
			ArrivalTick: c.ArrivalTick,
		})
	}
	return cfg
}

// MarkByte implements vm.World: input bytes of declared streams are
// symbolic. A position just past the stream's end (the argv NUL terminator)
// is symbolic with the singleton domain {0}: the whole argv region is
// symbolic, as in the paper's engine, but the terminator cannot change.
func (w *World) MarkByte(stream string, off int64) sym.Expr {
	if !w.Symbolic {
		return nil
	}
	st, ok := w.streamDeclared(stream)
	if !ok {
		return nil
	}
	if off >= int64(st.Len) {
		return w.Reg.BoundedByteVar(stream, off, 0, 0)
	}
	return w.Reg.ByteVar(stream, off)
}

func (w *World) streamDeclared(stream string) (Stream, bool) {
	for _, a := range w.Spec.Args {
		if a.Name == stream {
			return a, true
		}
	}
	for _, f := range w.Spec.Files {
		if f.Stream.Name == stream {
			return f.Stream, true
		}
	}
	for _, c := range w.Spec.Conns {
		if c.Stream.Name == stream {
			return c.Stream, true
		}
	}
	return Stream{}, false
}

// SyscallExpr implements vm.World: in model mode the result of read/select
// carries the modeled variable's expression. Reads map to a single count
// variable; selects map to the sum of their readiness bits.
func (w *World) SyscallExpr(kind string, seq int) sym.Expr {
	if !w.ModelSyscalls {
		return nil
	}
	switch kind {
	case "read":
		in, ok := w.Reg.Lookup("sys:read:" + strconv.Itoa(seq))
		if !ok {
			// The kernel consults the model before the VM asks for the
			// expression, so a miss means the call had no modeled result.
			return nil
		}
		return in
	case "select":
		if w.selectTable == nil {
			return nil
		}
		return w.selectTable.m[seq]
	}
	return nil
}

// ReadCount implements oskernel.ResultModel. The modeled count is an input
// variable with domain [-1, max] seeded at max (the paper's read() model:
// "initially returns the amount of input requested").
func (w *World) ReadCount(stream string, seq int, max int64) int64 {
	in := w.Reg.SyscallVar("read", seq, -1, max)
	if v, ok := w.Asn[in.ID]; ok {
		if v > max {
			return max
		}
		return v
	}
	return max
}

// SelectReady implements oskernel.ResultModel. Each candidate fd of the
// seq-th select gets a 0/1 readiness variable seeded ready; the returned
// order is candidate order. The count expression registered under
// sys:select:<seq> is the sum of the readiness bits, so branches on the
// select count constrain exactly those bits.
func (w *World) SelectReady(seq int, candidates []int) []int {
	if len(candidates) == 0 {
		return nil
	}
	var ready []int
	var countExpr sym.Expr = sym.Zero
	for j, fd := range candidates {
		bit := w.Reg.SyscallVar("select:"+strconv.Itoa(seq)+":cand", j, 0, 1)
		countExpr = sym.Add(countExpr, bit)
		v, bound := w.Asn[bit.ID]
		if !bound {
			v = 1 // seed: everything with pending data is ready
		}
		if v != 0 {
			ready = append(ready, fd)
		}
	}
	// Register the count variable's expression under the select key. We
	// cannot store an expression in the registry (it holds inputs), so the
	// sum is attached via a derived-expression table.
	w.selectCountExprs().set(seq, countExpr)
	return ready
}

// selectCounts lazily allocates the derived-expression table.
type selectCountTable struct {
	m map[int]sym.Expr
}

func (t *selectCountTable) set(seq int, e sym.Expr) { t.m[seq] = e }

func (w *World) selectCountExprs() *selectCountTable {
	if w.selectTable == nil {
		w.selectTable = &selectCountTable{m: make(map[int]sym.Expr)}
	}
	return w.selectTable
}

// Seeds returns a deterministic listing of registered variables and their
// current concrete values, for debugging and reports.
func (w *World) Seeds() []string {
	keys := w.Reg.SortedKeys()
	out := make([]string, len(keys))
	for i, k := range keys {
		in, _ := w.Reg.Lookup(k)
		v, bound := w.Asn[in.ID]
		if !bound {
			out[i] = fmt.Sprintf("%s=seed", k)
		} else {
			out[i] = fmt.Sprintf("%s=%d", k, v)
		}
	}
	return out
}
