package world

import (
	"testing"

	"pathlog/internal/sym"
)

func TestRegistryStableIDs(t *testing.T) {
	r := NewRegistry()
	a := r.ByteVar("arg0", 0)
	b := r.ByteVar("arg0", 1)
	c := r.ByteVar("conn0", 0)
	if a.ID == b.ID || b.ID == c.ID {
		t.Fatal("IDs must be distinct")
	}
	if got := r.ByteVar("arg0", 0); got != a {
		t.Fatal("same coordinate must return the same variable")
	}
	if r.Len() != 3 {
		t.Fatalf("len: %d", r.Len())
	}
	if r.Get(a.ID) != a {
		t.Fatal("Get by ID")
	}
	if r.Get(-1) != nil || r.Get(99) != nil {
		t.Fatal("out-of-range Get must return nil")
	}
}

func TestRegistrySyscallVars(t *testing.T) {
	r := NewRegistry()
	v := r.SyscallVar("read", 3, -1, 64)
	if v.Lo != -1 || v.Hi != 64 {
		t.Fatalf("domain: [%d,%d]", v.Lo, v.Hi)
	}
	// Re-registration keeps the original domain.
	v2 := r.SyscallVar("read", 3, 0, 8)
	if v2 != v {
		t.Fatal("syscall var must be stable per (kind, seq)")
	}
	if _, ok := r.Lookup("sys:read:3"); !ok {
		t.Fatal("lookup by key")
	}
}

func TestRegistryDomains(t *testing.T) {
	r := NewRegistry()
	a := r.ByteVar("arg0", 0)
	s := r.SyscallVar("read", 0, -1, 10)
	d := r.Domains([]int{a.ID, s.ID})
	if len(d) != 2 || d[0].ID != a.ID || d[0].Lo != 0 || d[0].Hi != 255 {
		t.Fatalf("byte domain: %+v", d)
	}
	if d[1].ID != s.ID || d[1].Lo != -1 || d[1].Hi != 10 {
		t.Fatalf("syscall domain: %+v", d)
	}
}

func spec() *Spec {
	return &Spec{
		Args:  []Stream{ArgSpec(0, "hi", 6)},
		Files: []FileInput{FileSpec("f.txt", "data", 8)},
		Conns: []ConnInput{ConnSpec(0, "GET", 8, 0)},
	}
}

func TestMaterializeSeeds(t *testing.T) {
	w := NewWorld(spec(), NewRegistry(), nil)
	arg := w.MaterializeStream(w.Spec.Args[0])
	if string(arg) != "hi\x00\x00\x00\x00" {
		t.Fatalf("arg: %q", arg)
	}
	file := w.MaterializeStream(w.Spec.Files[0].Stream)
	if string(file) != "data\x00\x00\x00\x00" {
		t.Fatalf("file: %q", file)
	}
}

func TestMaterializeWithAssignment(t *testing.T) {
	reg := NewRegistry()
	v0 := reg.ByteVar("arg0", 0)
	v3 := reg.ByteVar("arg0", 3) // beyond the seed
	asn := sym.MapAssignment{v0.ID: 'H', v3.ID: '!'}
	w := NewWorld(spec(), reg, asn)
	arg := w.MaterializeStream(w.Spec.Args[0])
	if string(arg) != "Hi\x00!\x00\x00" {
		t.Fatalf("arg: %q", arg)
	}
}

func TestKernelConfigShape(t *testing.T) {
	sp := spec()
	sp.ListenPort = 8080
	sp.CrashSignalAfterConns = true
	sp.SymbolicFS = true
	w := NewWorld(sp, NewRegistry(), nil)
	cfg := w.KernelConfig()
	if len(cfg.Args) != 1 || len(cfg.Files) != 1 || len(cfg.Conns) != 1 {
		t.Fatalf("cfg: %+v", cfg)
	}
	if cfg.ListenPort != 8080 || !cfg.CrashSignalAfterConns || !cfg.SymbolicFS {
		t.Fatal("workload fields lost")
	}
	if len(cfg.FileOrder) != 1 || cfg.FileOrder[0] != "f.txt" {
		t.Fatalf("file order: %v", cfg.FileOrder)
	}
	// Args are untrimmed: full symbolic region.
	if len(cfg.Args[0]) != 6 {
		t.Fatalf("arg length: %d", len(cfg.Args[0]))
	}
}

func TestMarkByteOnlyDeclaredStreams(t *testing.T) {
	w := NewWorld(spec(), NewRegistry(), nil)
	if w.MarkByte("arg0", 0) == nil {
		t.Error("declared stream must be symbolic")
	}
	if w.MarkByte("file:f.txt", 2) == nil {
		t.Error("declared file must be symbolic")
	}
	if w.MarkByte("conn0", 1) == nil {
		t.Error("declared conn must be symbolic")
	}
	if w.MarkByte("file:other", 0) != nil {
		t.Error("undeclared stream must be concrete")
	}
	w.Symbolic = false
	if w.MarkByte("arg0", 0) != nil {
		t.Error("non-symbolic world must not mark")
	}
}

func TestReadCountModel(t *testing.T) {
	reg := NewRegistry()
	w := NewWorld(spec(), reg, nil)
	w.ModelSyscalls = true
	// Unbound: seed is the maximum (the paper's read model).
	if got := w.ReadCount("conn0", 0, 5); got != 5 {
		t.Fatalf("seed count: %d", got)
	}
	v, ok := reg.Lookup("sys:read:0")
	if !ok {
		t.Fatal("read var not registered")
	}
	if v.Lo != -1 || v.Hi != 5 {
		t.Fatalf("domain: [%d,%d]", v.Lo, v.Hi)
	}
	// Bound: assignment wins, clamped to max.
	w.Asn[v.ID] = 3
	if got := w.ReadCount("conn0", 0, 5); got != 3 {
		t.Fatalf("bound count: %d", got)
	}
	w.Asn[v.ID] = 99
	if got := w.ReadCount("conn0", 0, 5); got != 5 {
		t.Fatalf("clamped count: %d", got)
	}
	if w.SyscallExpr("read", 0) == nil {
		t.Fatal("read expr missing in model mode")
	}
	w.ModelSyscalls = false
	if w.SyscallExpr("read", 0) != nil {
		t.Fatal("read expr must be nil outside model mode")
	}
}

func TestSelectReadyModel(t *testing.T) {
	reg := NewRegistry()
	w := NewWorld(spec(), reg, nil)
	w.ModelSyscalls = true
	cands := []int{4, 5, 6}
	ready := w.SelectReady(0, cands)
	if len(ready) != 3 {
		t.Fatalf("seed readiness: %v", ready)
	}
	expr := w.SyscallExpr("select", 0)
	if expr == nil {
		t.Fatal("select count expr missing")
	}
	// The expression is the sum of the three bits; all seeded to 1.
	if got := expr.Eval(sym.MapAssignment{}); got != 0 {
		// Unbound variables evaluate to 0 under an empty assignment — the
		// expression reflects bound values only.
		_ = got
	}
	// Turning one bit off drops the fd.
	bit, ok := reg.Lookup("sys:select:0:cand:1")
	if !ok {
		t.Fatal("bit var missing")
	}
	w.Asn[bit.ID] = 0
	ready = w.SelectReady(0, cands)
	if len(ready) != 2 || ready[0] != 4 || ready[1] != 6 {
		t.Fatalf("readiness with bit off: %v", ready)
	}
	if w.SelectReady(1, nil) != nil {
		t.Fatal("no candidates must mean no ready fds")
	}
}

func TestSeedsListing(t *testing.T) {
	reg := NewRegistry()
	v := reg.ByteVar("arg0", 0)
	w := NewWorld(spec(), reg, sym.MapAssignment{v.ID: 65})
	reg.ByteVar("arg0", 1)
	seeds := w.Seeds()
	if len(seeds) != 2 {
		t.Fatalf("seeds: %v", seeds)
	}
	if seeds[0] != "arg0:0=65" || seeds[1] != "arg0:1=seed" {
		t.Fatalf("seeds: %v", seeds)
	}
}

func TestStreamCapGrowth(t *testing.T) {
	// Constructors never cap below the seed.
	s := ArgSpec(0, "longseed", 2)
	if s.Len < len("longseed")+1 {
		t.Fatalf("len: %d", s.Len)
	}
	f := FileSpec("p", "abcdef", 2)
	if f.Stream.Len < 6 {
		t.Fatalf("file len: %d", f.Stream.Len)
	}
	c := ConnSpec(1, "xyz", 1, 5)
	if c.Stream.Len < 3 || c.ArrivalTick != 5 {
		t.Fatalf("conn: %+v", c)
	}
}
