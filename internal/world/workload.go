package world

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
)

// WorkloadHash returns a stable identity for one user-byte workload: a
// hash over the spec's declared streams (names, capacities, seeds), its
// kernel parameters, and the user-site input bytes. It is the workload
// analogue of instrument.ProgramHash — measured store points key on it, so
// two differently-named sessions over the same input spec share one
// measured history, and renaming a session stops fragmenting it. Any
// change that alters what the user run executes — a stream added or
// resized, a kernel knob flipped, different user bytes — changes the hash;
// a cosmetic rename does not.
func WorkloadHash(spec *Spec, user map[string][]byte) string {
	h := sha256.New()
	io.WriteString(h, "pathlog-workload-v1\n")
	stream := func(kind string, st Stream) {
		fmt.Fprintf(h, "%s %s len=%d seed=%x\n", kind, st.Name, st.Len, st.Seed)
	}
	for _, a := range spec.Args {
		stream("arg", a)
	}
	for _, f := range spec.Files {
		fmt.Fprintf(h, "file-path %s\n", f.Path)
		stream("file", f.Stream)
	}
	for _, c := range spec.Conns {
		fmt.Fprintf(h, "conn-arrival %d\n", c.ArrivalTick)
		stream("conn", c.Stream)
	}
	fmt.Fprintf(h, "kernel port=%d seed=%d shortread=%d rotate=%v crash=%v symfs=%v\n",
		spec.ListenPort, spec.KernelSeed, spec.ShortReadDenom,
		spec.RotateSelectOrder, spec.CrashSignalAfterConns, spec.SymbolicFS)
	names := make([]string, 0, len(user))
	for name := range user {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "user %s=%x\n", name, user[name])
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}
