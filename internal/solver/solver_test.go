package solver

import (
	"testing"
	"testing/quick"

	"pathlog/internal/sym"
)

func byteDomains(n int) []VarDomain {
	d := make([]VarDomain, 0, n)
	for i := 0; i < n; i++ {
		d = append(d, VarDomain{ID: i, Lo: 0, Hi: 255})
	}
	return d
}

func in(id int) *sym.Input { return sym.NewInput(id, "", 0, 255) }

func TestSolveSingleEquality(t *testing.T) {
	s := New(Options{})
	asn, ok := s.Solve(Problem{
		Constraints: []sym.Constraint{{E: sym.Eq(in(0), sym.NewConst(42)), Truth: true}},
		Domains:     byteDomains(1),
		Seed:        sym.MapAssignment{0: 0},
	})
	if !ok {
		t.Fatal("expected sat")
	}
	if asn[0] != 42 {
		t.Fatalf("got %d, want 42", asn[0])
	}
}

func TestSolveSeedFastPath(t *testing.T) {
	s := New(Options{})
	asn, ok := s.Solve(Problem{
		Constraints: []sym.Constraint{{E: sym.Lt(in(0), sym.NewConst(100)), Truth: true}},
		Domains:     byteDomains(1),
		Seed:        sym.MapAssignment{0: 7},
	})
	if !ok || asn[0] != 7 {
		t.Fatalf("seed should satisfy directly: ok=%v asn=%v", ok, asn)
	}
	if s.Stats().Nodes != 0 {
		t.Errorf("fast path should not search, nodes=%d", s.Stats().Nodes)
	}
}

func TestSolveConjunction(t *testing.T) {
	s := New(Options{})
	cs := []sym.Constraint{
		{E: sym.NewBin(sym.OpGe, in(0), sym.NewConst(10)), Truth: true},
		{E: sym.NewBin(sym.OpLe, in(0), sym.NewConst(20)), Truth: true},
		{E: sym.Ne(in(0), sym.NewConst(15)), Truth: true},
	}
	asn, ok := s.Solve(Problem{Constraints: cs, Domains: byteDomains(1), Seed: sym.MapAssignment{0: 15}})
	if !ok {
		t.Fatal("expected sat")
	}
	if v := asn[0]; v < 10 || v > 20 || v == 15 {
		t.Fatalf("got %d", v)
	}
}

func TestSolveUnsat(t *testing.T) {
	s := New(Options{})
	cs := []sym.Constraint{
		{E: sym.NewBin(sym.OpLt, in(0), sym.NewConst(5)), Truth: true},
		{E: sym.NewBin(sym.OpGt, in(0), sym.NewConst(10)), Truth: true},
	}
	_, ok := s.Solve(Problem{Constraints: cs, Domains: byteDomains(1), Seed: sym.MapAssignment{}})
	if ok {
		t.Fatal("expected unsat")
	}
	if s.Stats().Unsat != 1 {
		t.Errorf("unsat counter: %+v", s.Stats())
	}
}

func TestSolveTwoVarsLinear(t *testing.T) {
	s := New(Options{})
	// x + y == 100, x < 30.
	x, y := in(0), in(1)
	cs := []sym.Constraint{
		{E: sym.Eq(sym.Add(x, y), sym.NewConst(100)), Truth: true},
		{E: sym.Lt(x, sym.NewConst(30)), Truth: true},
	}
	asn, ok := s.Solve(Problem{Constraints: cs, Domains: byteDomains(2), Seed: sym.MapAssignment{0: 200, 1: 200}})
	if !ok {
		t.Fatal("expected sat")
	}
	if asn[0]+asn[1] != 100 || asn[0] >= 30 {
		t.Fatalf("bad solution %v", asn)
	}
}

func TestSolveNegatedConstraint(t *testing.T) {
	// The common replay pattern: prefix constraints plus one negated tail.
	s := New(Options{})
	x := in(0)
	cs := []sym.Constraint{
		{E: sym.Eq(x, sym.NewConst('a')), Truth: false}, // not 'a'
		{E: sym.Eq(x, sym.NewConst('b')), Truth: true},  // is 'b'
	}
	asn, ok := s.Solve(Problem{Constraints: cs, Domains: byteDomains(1), Seed: sym.MapAssignment{0: 'a'}})
	if !ok || asn[0] != 'b' {
		t.Fatalf("got ok=%v asn=%v", ok, asn)
	}
}

func TestSolveNonLinearFallback(t *testing.T) {
	s := New(Options{})
	// (x / 10) == 4 is non-linear for the normalizer; search must find it.
	x := in(0)
	cs := []sym.Constraint{
		{E: sym.Eq(sym.NewBin(sym.OpDiv, x, sym.NewConst(10)), sym.NewConst(4)), Truth: true},
	}
	asn, ok := s.Solve(Problem{Constraints: cs, Domains: byteDomains(1), Seed: sym.MapAssignment{0: 0}})
	if !ok {
		t.Fatal("expected sat")
	}
	if asn[0]/10 != 4 {
		t.Fatalf("got %d", asn[0])
	}
	if s.Stats().Fallbacks == 0 {
		t.Error("expected a fallback atom")
	}
}

func TestSolveBitMask(t *testing.T) {
	s := New(Options{})
	x := in(0)
	cs := []sym.Constraint{
		{E: sym.Eq(sym.NewBin(sym.OpAnd, x, sym.NewConst(0x0f)), sym.NewConst(0x05)), Truth: true},
		{E: sym.NewBin(sym.OpGe, x, sym.NewConst(0x20)), Truth: true},
	}
	asn, ok := s.Solve(Problem{Constraints: cs, Domains: byteDomains(1), Seed: sym.MapAssignment{0: 0}})
	if !ok {
		t.Fatal("expected sat")
	}
	if asn[0]&0x0f != 0x05 || asn[0] < 0x20 {
		t.Fatalf("got %#x", asn[0])
	}
}

func TestSolveManyVarsString(t *testing.T) {
	// Force a specific 8-byte string, as option parsing does.
	s := New(Options{})
	want := "mkdir -p"
	cs := make([]sym.Constraint, len(want))
	for i, ch := range []byte(want) {
		cs[i] = sym.Constraint{E: sym.Eq(in(i), sym.NewConst(int64(ch))), Truth: true}
	}
	asn, ok := s.Solve(Problem{Constraints: cs, Domains: byteDomains(len(want)), Seed: sym.MapAssignment{}})
	if !ok {
		t.Fatal("expected sat")
	}
	for i, ch := range []byte(want) {
		if asn[i] != int64(ch) {
			t.Fatalf("byte %d: got %d want %d", i, asn[i], ch)
		}
	}
}

func TestSolveChainComparisons(t *testing.T) {
	s := New(Options{})
	// 'a' <= x && x <= 'z' && x != 'q'.
	x := in(0)
	cs := []sym.Constraint{
		{E: sym.NewBin(sym.OpGe, x, sym.NewConst('a')), Truth: true},
		{E: sym.NewBin(sym.OpLe, x, sym.NewConst('z')), Truth: true},
		{E: sym.Eq(x, sym.NewConst('q')), Truth: false},
	}
	asn, ok := s.Solve(Problem{Constraints: cs, Domains: byteDomains(1), Seed: sym.MapAssignment{0: 'q'}})
	if !ok {
		t.Fatal("expected sat")
	}
	if v := asn[0]; v < 'a' || v > 'z' || v == 'q' {
		t.Fatalf("got %c", rune(v))
	}
}

func TestSolvePreservesUntouchedSeedVars(t *testing.T) {
	s := New(Options{})
	cs := []sym.Constraint{
		{E: sym.Eq(in(0), sym.NewConst(9)), Truth: true},
	}
	asn, ok := s.Solve(Problem{Constraints: cs, Domains: byteDomains(3), Seed: sym.MapAssignment{0: 1, 1: 111, 2: 222}})
	if !ok {
		t.Fatal("expected sat")
	}
	if asn[1] != 111 || asn[2] != 222 {
		t.Fatalf("untouched vars changed: %v", asn)
	}
}

func TestSolveDeterministic(t *testing.T) {
	run := func() sym.MapAssignment {
		s := New(Options{})
		cs := []sym.Constraint{
			{E: sym.NewBin(sym.OpGt, sym.Add(in(0), in(1)), sym.NewConst(100)), Truth: true},
			{E: sym.NewBin(sym.OpLt, in(0), sym.NewConst(40)), Truth: true},
		}
		asn, ok := s.Solve(Problem{Constraints: cs, Domains: byteDomains(2), Seed: sym.MapAssignment{0: 0, 1: 0}})
		if !ok {
			t.Fatal("expected sat")
		}
		return asn
	}
	a, b := run(), run()
	if a[0] != b[0] || a[1] != b[1] {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}

func TestSolveIntDomainNegative(t *testing.T) {
	// read() return value domain is [-1, n].
	s := New(Options{})
	x := sym.NewInput(0, "ret", -1, 64)
	cs := []sym.Constraint{
		{E: sym.NewBin(sym.OpLt, x, sym.NewConst(0)), Truth: true},
	}
	asn, ok := s.Solve(Problem{
		Constraints: cs,
		Domains:     []VarDomain{{ID: 0, Lo: -1, Hi: 64}},
		Seed:        sym.MapAssignment{0: 64},
	})
	if !ok || asn[0] != -1 {
		t.Fatalf("got ok=%v asn=%v", ok, asn)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New(Options{})
	p := Problem{
		Constraints: []sym.Constraint{{E: sym.Eq(in(0), sym.NewConst(5)), Truth: true}},
		Domains:     byteDomains(1),
		Seed:        sym.MapAssignment{},
	}
	s.Solve(p)
	s.Solve(p)
	if got := s.Stats().Calls; got != 2 {
		t.Fatalf("calls=%d", got)
	}
	s.ResetStats()
	if got := s.Stats().Calls; got != 0 {
		t.Fatalf("after reset calls=%d", got)
	}
}

// TestQuickSolveSatisfiesIntervals property-checks that whenever the solver
// reports sat for a random interval conjunction, the assignment satisfies it,
// and whenever the conjunction is trivially satisfiable the solver finds it.
func TestQuickSolveSatisfiesIntervals(t *testing.T) {
	f := func(loA, hiA, loB, hiB uint8) bool {
		lo0, hi0 := int64(loA), int64(hiA)
		if lo0 > hi0 {
			lo0, hi0 = hi0, lo0
		}
		lo1, hi1 := int64(loB), int64(hiB)
		if lo1 > hi1 {
			lo1, hi1 = hi1, lo1
		}
		s := New(Options{})
		cs := []sym.Constraint{
			{E: sym.NewBin(sym.OpGe, in(0), sym.NewConst(lo0)), Truth: true},
			{E: sym.NewBin(sym.OpLe, in(0), sym.NewConst(hi0)), Truth: true},
			{E: sym.NewBin(sym.OpGe, in(1), sym.NewConst(lo1)), Truth: true},
			{E: sym.NewBin(sym.OpLe, in(1), sym.NewConst(hi1)), Truth: true},
		}
		asn, ok := s.Solve(Problem{Constraints: cs, Domains: byteDomains(2), Seed: sym.MapAssignment{}})
		if !ok {
			return false // always satisfiable by construction
		}
		return asn[0] >= lo0 && asn[0] <= hi0 && asn[1] >= lo1 && asn[1] <= hi1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickSolveEqualitySum property-checks solving x+y == target.
func TestQuickSolveEqualitySum(t *testing.T) {
	f := func(target uint16) bool {
		tgt := int64(target % 511) // reachable by two bytes
		s := New(Options{})
		cs := []sym.Constraint{
			{E: sym.Eq(sym.Add(in(0), in(1)), sym.NewConst(tgt)), Truth: true},
		}
		asn, ok := s.Solve(Problem{Constraints: cs, Domains: byteDomains(2), Seed: sym.MapAssignment{}})
		if !ok {
			return false
		}
		return asn[0]+asn[1] == tgt
	}
	cfg := &quick.Config{MaxCount: 50}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestPropagationPrunesBeforeSearch(t *testing.T) {
	s := New(Options{MaxNodes: 50})
	// A tight equality chain over 4 vars that propagation alone almost
	// solves; with a tiny node budget the search still succeeds.
	cs := []sym.Constraint{
		{E: sym.Eq(in(0), sym.NewConst(17)), Truth: true},
		{E: sym.Eq(in(1), in(0)), Truth: true},
		{E: sym.Eq(in(2), sym.Add(in(1), sym.NewConst(1))), Truth: true},
		{E: sym.Eq(in(3), sym.Add(in(2), sym.NewConst(1))), Truth: true},
	}
	asn, ok := s.Solve(Problem{Constraints: cs, Domains: byteDomains(4), Seed: sym.MapAssignment{}})
	if !ok {
		t.Fatal("expected sat within tiny budget")
	}
	want := []int64{17, 17, 18, 19}
	for i, w := range want {
		if asn[i] != w {
			t.Fatalf("var %d: got %d want %d", i, asn[i], w)
		}
	}
}

func TestRelString(t *testing.T) {
	names := map[rel]string{relEQ: "==", relNE: "!=", relLT: "<", relLE: "<=", relGT: ">", relGE: ">="}
	for r, want := range names {
		if r.String() != want {
			t.Errorf("rel %d: got %q", r, r.String())
		}
	}
}
