package solver

import "pathlog/internal/sym"

// interval is a mutable inclusive range used during propagation and search.
type interval struct {
	lo, hi int64
}

func (iv *interval) width() int64 {
	if iv.hi < iv.lo {
		return 0
	}
	// Guard against overflow for huge ranges.
	w := iv.hi - iv.lo + 1
	if w <= 0 {
		return 1 << 62
	}
	return w
}

func (iv *interval) empty() bool { return iv.hi < iv.lo }

func (iv *interval) contains(v int64) bool { return v >= iv.lo && v <= iv.hi }

// searchState carries the solver's mutable state for one Solve call.
type searchState struct {
	solver   *Solver
	domains  map[int]*interval
	atoms    []atom
	seed     sym.MapAssignment
	assigned sym.MapAssignment
	nodes    int
	work     int64
}

// overWork reports whether the per-call evaluation budget is spent.
func (st *searchState) overWork() bool { return st.work > st.solver.opts.MaxWork }

func (st *searchState) mentioned(id int) bool {
	for _, a := range st.atoms {
		for _, v := range a.vars {
			if v == id {
				return true
			}
		}
	}
	return false
}

// propagateAll runs bounds propagation over all linear atoms to a fixed
// point. It returns false when some domain becomes empty (unsat).
func (st *searchState) propagateAll() bool {
	for changed := true; changed; {
		changed = false
		st.work += int64(len(st.atoms))
		for i := range st.atoms {
			a := &st.atoms[i]
			if !a.linear {
				continue
			}
			ch, ok := st.propagateAtom(a)
			if !ok {
				return false
			}
			changed = changed || ch
		}
	}
	return true
}

// propagateAtom tightens the domains of the variables of one linear atom
// using bounds reasoning on sum(coeff_i*x_i) + c REL 0.
func (st *searchState) propagateAtom(a *atom) (changed, ok bool) {
	// Compute bounds of the full sum.
	// sumLo/sumHi: bounds of sum(coeff*var) + c.
	for _, t := range a.terms {
		iv, present := st.domains[t.v]
		if !present || iv.empty() {
			return false, false
		}
	}
	// For each variable x, the rest of the atom bounds constrain x.
	for _, t := range a.terms {
		iv := st.domains[t.v]
		restLo, restHi := a.c, a.c
		for _, u := range a.terms {
			if u.v == t.v {
				continue
			}
			uv := st.domains[u.v]
			lo, hi := mulRange(u.coeff, uv.lo, uv.hi)
			restLo += lo
			restHi += hi
		}
		// coeff*x + rest REL 0.
		var lo, hi int64 // bounds for coeff*x
		hasLo, hasHi := false, false
		switch a.r {
		case relEQ:
			// coeff*x = -rest  =>  coeff*x in [-restHi, -restLo]
			lo, hi, hasLo, hasHi = -restHi, -restLo, true, true
		case relLE:
			// coeff*x <= -rest => coeff*x <= -restLo
			hi, hasHi = -restLo, true
		case relLT:
			hi, hasHi = -restLo-1, true
		case relGE:
			lo, hasLo = -restHi, true
		case relGT:
			lo, hasLo = -restHi+1, true
		case relNE:
			// Only prunes when every other variable is fixed and the bound
			// value sits at an edge of x's domain.
			if restLo == restHi && t.coeff != 0 {
				if v, exact := divExact(-restLo, t.coeff); exact {
					ch := false
					if iv.lo == v {
						iv.lo++
						ch = true
					}
					if iv.hi == v {
						iv.hi--
						ch = true
					}
					if iv.empty() {
						return false, false
					}
					changed = changed || ch
				}
			}
			continue
		}
		nlo, nhi := divRangeForVar(t.coeff, lo, hi, hasLo, hasHi, iv)
		if nlo > iv.lo {
			iv.lo = nlo
			changed = true
		}
		if nhi < iv.hi {
			iv.hi = nhi
			changed = true
		}
		if iv.empty() {
			return false, false
		}
	}
	return changed, true
}

// mulRange returns the range of coeff*x for x in [lo,hi].
func mulRange(coeff, lo, hi int64) (int64, int64) {
	a, b := coeff*lo, coeff*hi
	if a > b {
		a, b = b, a
	}
	return a, b
}

// divExact returns v/c when c divides v exactly.
func divExact(v, c int64) (int64, bool) {
	if c == 0 {
		return 0, false
	}
	if v%c != 0 {
		return 0, false
	}
	return v / c, true
}

// divRangeForVar converts bounds on coeff*x into bounds on x, given the
// current domain iv (used when a side is unbounded).
func divRangeForVar(coeff, lo, hi int64, hasLo, hasHi bool, iv *interval) (int64, int64) {
	nlo, nhi := iv.lo, iv.hi
	if coeff == 0 {
		return nlo, nhi
	}
	if coeff > 0 {
		if hasLo {
			nlo = ceilDiv(lo, coeff)
		}
		if hasHi {
			nhi = floorDiv(hi, coeff)
		}
	} else {
		// coeff < 0 flips the inequality directions.
		if hasHi {
			nlo = ceilDiv(hi, coeff)
		}
		if hasLo {
			nhi = floorDiv(lo, coeff)
		}
	}
	if nlo < iv.lo {
		nlo = iv.lo
	}
	if nhi > iv.hi {
		nhi = iv.hi
	}
	return nlo, nhi
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// search assigns vars[idx:] by depth-first backtracking.
func (st *searchState) search(vars []int, idx int) bool {
	st.nodes++
	st.solver.stats.Nodes++
	if st.nodes > st.solver.opts.MaxNodes || st.overWork() {
		return false
	}
	if idx == len(vars) {
		return st.checkAll()
	}
	v := vars[idx]
	iv := st.domains[v]
	saved := *iv

	for _, cand := range st.candidates(v, iv) {
		st.assigned[v] = cand
		// Narrow the domain to the candidate and propagate.
		iv.lo, iv.hi = cand, cand
		snapshot := st.snapshotDomains()
		if st.propagateAll() && st.checkDecided() && st.search(vars, idx+1) {
			return true
		}
		st.restoreDomains(snapshot)
		delete(st.assigned, v)
		*iv = saved
		if st.nodes > st.solver.opts.MaxNodes || st.overWork() {
			return false
		}
	}
	return false
}

// candidates enumerates values for v in deterministic order: the seed value
// first, then an outward sweep around it, clipped to the domain and the
// per-variable budget.
func (st *searchState) candidates(v int, iv *interval) []int64 {
	budget := st.solver.opts.MaxValuesPerVar
	out := make([]int64, 0, 16)
	seen := make(map[int64]struct{}, 16)
	add := func(x int64) {
		if len(out) >= budget {
			return
		}
		if !iv.contains(x) {
			return
		}
		if _, dup := seen[x]; dup {
			return
		}
		seen[x] = struct{}{}
		out = append(out, x)
	}
	seedVal, hasSeed := st.seed[v]
	if hasSeed {
		add(seedVal)
	}
	// Domain edges early: equality against constants typically lands there
	// after propagation.
	add(iv.lo)
	add(iv.hi)
	if hasSeed {
		for d := int64(1); len(out) < budget && d <= iv.hi-iv.lo; d++ {
			add(seedVal + d)
			add(seedVal - d)
		}
	} else {
		for x := iv.lo; len(out) < budget && x <= iv.hi; x++ {
			add(x)
		}
	}
	return out
}

func (st *searchState) snapshotDomains() map[int]interval {
	st.work += int64(len(st.domains)) * 2 // copy now, restore later
	snap := make(map[int]interval, len(st.domains))
	for id, iv := range st.domains {
		snap[id] = *iv
	}
	return snap
}

func (st *searchState) restoreDomains(snap map[int]interval) {
	for id, v := range snap {
		*st.domains[id] = v
	}
}

// checkDecided evaluates every atom whose variables are all assigned;
// returns false on any violation.
func (st *searchState) checkDecided() bool {
	for i := range st.atoms {
		a := &st.atoms[i]
		st.work += int64(len(a.vars))
		ready := true
		for _, v := range a.vars {
			if _, ok := st.assigned[v]; !ok {
				ready = false
				break
			}
		}
		if !ready {
			continue
		}
		if !st.evalAtom(a) {
			return false
		}
	}
	return true
}

// checkAll verifies every atom under the full assignment (seed-filling
// unassigned vars, which can only be vars outside all atoms).
func (st *searchState) checkAll() bool {
	for i := range st.atoms {
		if !st.evalAtom(&st.atoms[i]) {
			return false
		}
	}
	return true
}

func (st *searchState) evalAtom(a *atom) bool {
	st.work += int64(sym.Size(a.orig.E))
	asn := overlayAssignment{primary: st.assigned, fallback: st.seed}
	return a.orig.Holds(asn)
}

// overlayAssignment reads primary first, then fallback.
type overlayAssignment struct {
	primary  sym.MapAssignment
	fallback sym.MapAssignment
}

// Value implements sym.Assignment.
func (o overlayAssignment) Value(id int) int64 {
	if v, ok := o.primary[id]; ok {
		return v
	}
	return o.fallback[id]
}
