package solver

import "pathlog/internal/sym"

// interval is a mutable inclusive range used during propagation and search.
type interval struct {
	lo, hi int64
}

func (iv *interval) width() int64 {
	if iv.hi < iv.lo {
		return 0
	}
	// Guard against overflow for huge ranges.
	w := iv.hi - iv.lo + 1
	if w <= 0 {
		return 1 << 62
	}
	return w
}

func (iv *interval) empty() bool { return iv.hi < iv.lo }

func (iv *interval) contains(v int64) bool { return v >= iv.lo && v <= iv.hi }

// dterm is one linear term over a dense variable slot.
type dterm struct {
	slot  int32
	coeff int64
}

// atom is one constraint instantiated for the current Solve call: the cached
// normal form with its variable IDs translated to dense slots, plus the
// search bookkeeping counter of not-yet-assigned variables.
type atom struct {
	ne         *normEntry
	orig       sym.Constraint
	terms      []dterm // combined lhs-rhs form, for bounds propagation
	lform      []dterm
	rform      []dterm
	vars       []int32
	unassigned int32
}

// searchState carries the solver's mutable state for one Solve call. It is
// embedded in the Solver and reused across calls, so the slices below keep
// their capacity and the per-call and per-node allocation count stays flat.
// All variable-indexed state is dense: variable IDs are interned into slots
// (slotOf/idOf) and every hot structure is a slice indexed by slot.
type searchState struct {
	solver *Solver

	slotOf map[int]int32 // variable ID -> slot
	idOf   []int         // slot -> variable ID

	doms      []interval // current domain per slot
	seedVal   []int64    // clamped seed value per slot (0 when no seed)
	seedHas   []bool     // whether the slot's variable appeared in p.Domains
	asnVal    []int64    // search assignment per slot
	asnHas    []bool     // whether the slot is currently assigned
	varAtoms  [][]int32  // atom indices mentioning each slot
	termAtoms [][]int32  // atom indices with a propagation term on each slot
	atomDirty []bool     // per-atom: some term domain changed since its last run
	decidedOK []bool     // per-atom: fully assigned and already verified true

	atoms []atom

	order     []int32    // searched slots, most-constrained first
	snapStack []interval // LIFO domain snapshots, one doms-sized block per node
	candBufs  [][]int64  // per-depth candidate buffers

	nodes int
	work  int64
}

// reset prepares the state for a new Solve call, retaining slice capacity.
func (st *searchState) reset() {
	clear(st.slotOf)
	st.idOf = st.idOf[:0]
	st.doms = st.doms[:0]
	st.seedVal = st.seedVal[:0]
	st.seedHas = st.seedHas[:0]
	st.asnVal = st.asnVal[:0]
	st.asnHas = st.asnHas[:0]
	st.atoms = st.atoms[:0]
	st.atomDirty = st.atomDirty[:0]
	st.decidedOK = st.decidedOK[:0]
	st.snapStack = st.snapStack[:0]
	st.nodes = 0
	st.work = 0
}

// addSlot interns a variable ID with its domain and seed value.
func (st *searchState) addSlot(id int, iv interval, seed int64, hasSeed bool) int32 {
	s := int32(len(st.doms))
	st.slotOf[id] = s
	st.idOf = append(st.idOf, id)
	st.doms = append(st.doms, iv)
	st.seedVal = append(st.seedVal, seed)
	st.seedHas = append(st.seedHas, hasSeed)
	st.asnVal = append(st.asnVal, 0)
	st.asnHas = append(st.asnHas, false)
	if int(s) < len(st.varAtoms) {
		st.varAtoms[s] = st.varAtoms[s][:0]
	} else {
		st.varAtoms = append(st.varAtoms, nil)
	}
	if int(s) < len(st.termAtoms) {
		st.termAtoms[s] = st.termAtoms[s][:0]
	} else {
		st.termAtoms = append(st.termAtoms, nil)
	}
	return s
}

// slot returns the slot of a variable ID, interning it with the extended
// safety domain when the problem declared none.
func (st *searchState) slot(id int) int32 {
	if s, ok := st.slotOf[id]; ok {
		return s
	}
	// Constraint mentions a variable with no declared domain; assume full
	// byte range extended for safety.
	return st.addSlot(id, interval{lo: -(1 << 31), hi: 1 << 31}, 0, false)
}

// addAtom instantiates a cached normal form against the current slots,
// reusing the atom structs (and their term slices) of previous calls.
func (st *searchState) addAtom(c sym.Constraint, ne *normEntry) {
	n := len(st.atoms)
	if n < cap(st.atoms) {
		st.atoms = st.atoms[:n+1]
	} else {
		st.atoms = append(st.atoms, atom{})
	}
	a := &st.atoms[n]
	a.ne = ne
	a.orig = c
	a.vars = a.vars[:0]
	a.terms = a.terms[:0]
	a.lform = a.lform[:0]
	a.rform = a.rform[:0]
	for _, v := range ne.vars {
		s := st.slot(v)
		a.vars = append(a.vars, s)
		st.varAtoms[s] = append(st.varAtoms[s], int32(n))
	}
	for _, t := range ne.terms {
		ts := st.slotOf[t.v]
		a.terms = append(a.terms, dterm{slot: ts, coeff: t.coeff})
		st.termAtoms[ts] = append(st.termAtoms[ts], int32(n))
	}
	if ne.hasEval {
		for _, t := range ne.lform {
			a.lform = append(a.lform, dterm{slot: st.slotOf[t.v], coeff: t.coeff})
		}
		for _, t := range ne.rform {
			a.rform = append(a.rform, dterm{slot: st.slotOf[t.v], coeff: t.coeff})
		}
	}
	a.unassigned = int32(len(a.vars))
	st.atomDirty = append(st.atomDirty, true) // the first sweep runs every atom
	st.decidedOK = append(st.decidedOK, false)
}

// touch records a mutation of the slot's domain, re-dirtying every atom with
// a propagation term on it. A clean atom re-run would recompute the same
// bounds from the same domains and change nothing, so skipping clean atoms
// preserves the sweep's changed flag, the sweep count and the final domains
// exactly.
func (st *searchState) touch(s int32) {
	for _, ai := range st.termAtoms[s] {
		st.atomDirty[ai] = true
	}
}

// overWork reports whether the per-call evaluation budget is spent.
func (st *searchState) overWork() bool { return st.work > st.solver.opts.MaxWork }

// value reads a slot under the current partial assignment, falling back to
// the seed.
func (st *searchState) value(s int32) int64 {
	if st.asnHas[s] {
		return st.asnVal[s]
	}
	return st.seedVal[s]
}

// Value implements sym.Assignment for evaluating fallback atoms: assigned
// slots first, then the seed; unknown IDs read as zero.
func (st *searchState) Value(id int) int64 {
	s, ok := st.slotOf[id]
	if !ok {
		return 0
	}
	return st.value(s)
}

// propagateAll runs bounds propagation over all linear atoms to a fixed
// point. It returns false when some domain becomes empty (unsat).
func (st *searchState) propagateAll() bool {
	for changed := true; changed; {
		changed = false
		st.work += int64(len(st.atoms))
		for i := range st.atoms {
			a := &st.atoms[i]
			if !a.ne.linear || !st.atomDirty[i] {
				continue
			}
			// Clear before running so the atom's own narrowing re-dirties it:
			// bounds reasoning can tighten further on a repeat pass.
			st.atomDirty[i] = false
			ch, ok := st.propagateAtom(a)
			if !ok {
				return false
			}
			changed = changed || ch
		}
	}
	return true
}

// propagateAtom tightens the domains of the variables of one linear atom
// using bounds reasoning on sum(coeff_i*x_i) + c REL 0.
func (st *searchState) propagateAtom(a *atom) (changed, ok bool) {
	for _, t := range a.terms {
		if st.doms[t.slot].empty() {
			return false, false
		}
	}
	// For each variable x, the rest of the atom bounds constrain x.
	for _, t := range a.terms {
		iv := &st.doms[t.slot]
		restLo, restHi := a.ne.c, a.ne.c
		for _, u := range a.terms {
			if u.slot == t.slot {
				continue
			}
			uv := &st.doms[u.slot]
			lo, hi := mulRange(u.coeff, uv.lo, uv.hi)
			restLo += lo
			restHi += hi
		}
		// coeff*x + rest REL 0.
		var lo, hi int64 // bounds for coeff*x
		hasLo, hasHi := false, false
		switch a.ne.r {
		case relEQ:
			// coeff*x = -rest  =>  coeff*x in [-restHi, -restLo]
			lo, hi, hasLo, hasHi = -restHi, -restLo, true, true
		case relLE:
			// coeff*x <= -rest => coeff*x <= -restLo
			hi, hasHi = -restLo, true
		case relLT:
			hi, hasHi = -restLo-1, true
		case relGE:
			lo, hasLo = -restHi, true
		case relGT:
			lo, hasLo = -restHi+1, true
		case relNE:
			// Only prunes when every other variable is fixed and the bound
			// value sits at an edge of x's domain.
			if restLo == restHi && t.coeff != 0 {
				if v, exact := divExact(-restLo, t.coeff); exact {
					ch := false
					if iv.lo == v {
						iv.lo++
						ch = true
					}
					if iv.hi == v {
						iv.hi--
						ch = true
					}
					if ch {
						st.touch(t.slot)
					}
					if iv.empty() {
						return false, false
					}
					changed = changed || ch
				}
			}
			continue
		}
		nlo, nhi := divRangeForVar(t.coeff, lo, hi, hasLo, hasHi, iv)
		if nlo > iv.lo || nhi < iv.hi {
			if nlo > iv.lo {
				iv.lo = nlo
			}
			if nhi < iv.hi {
				iv.hi = nhi
			}
			st.touch(t.slot)
			changed = true
		}
		if iv.empty() {
			return false, false
		}
	}
	return changed, true
}

// mulRange returns the range of coeff*x for x in [lo,hi].
func mulRange(coeff, lo, hi int64) (int64, int64) {
	a, b := coeff*lo, coeff*hi
	if a > b {
		a, b = b, a
	}
	return a, b
}

// divExact returns v/c when c divides v exactly.
func divExact(v, c int64) (int64, bool) {
	if c == 0 {
		return 0, false
	}
	if v%c != 0 {
		return 0, false
	}
	return v / c, true
}

// divRangeForVar converts bounds on coeff*x into bounds on x, given the
// current domain iv (used when a side is unbounded).
func divRangeForVar(coeff, lo, hi int64, hasLo, hasHi bool, iv *interval) (int64, int64) {
	nlo, nhi := iv.lo, iv.hi
	if coeff == 0 {
		return nlo, nhi
	}
	if coeff > 0 {
		if hasLo {
			nlo = ceilDiv(lo, coeff)
		}
		if hasHi {
			nhi = floorDiv(hi, coeff)
		}
	} else {
		// coeff < 0 flips the inequality directions.
		if hasHi {
			nlo = ceilDiv(hi, coeff)
		}
		if hasLo {
			nhi = floorDiv(lo, coeff)
		}
	}
	if nlo < iv.lo {
		nlo = iv.lo
	}
	if nhi > iv.hi {
		nhi = iv.hi
	}
	return nlo, nhi
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) == (b < 0)) {
		q++
	}
	return q
}

// search assigns vars[idx:] by depth-first backtracking.
func (st *searchState) search(vars []int32, idx int) bool {
	st.nodes++
	st.solver.stats.Nodes++
	if st.nodes > st.solver.opts.MaxNodes || st.overWork() {
		return false
	}
	if idx == len(vars) {
		return st.checkAll()
	}
	s := vars[idx]
	iv := &st.doms[s]
	saved := *iv

	st.asnHas[s] = true
	for _, ai := range st.varAtoms[s] {
		st.atoms[ai].unassigned--
	}
	for _, cand := range st.candidates(idx, s, iv) {
		st.asnVal[s] = cand
		// The new value invalidates the decided-atom memo of every atom
		// this slot participates in.
		for _, ai := range st.varAtoms[s] {
			st.decidedOK[ai] = false
		}
		// Narrow the domain to the candidate and propagate.
		iv.lo, iv.hi = cand, cand
		st.touch(s)
		base := st.snapshotDomains()
		if st.propagateAll() && st.checkDecided() && st.search(vars, idx+1) {
			return true
		}
		st.restoreDomains(base)
		*iv = saved
		st.touch(s)
		if st.nodes > st.solver.opts.MaxNodes || st.overWork() {
			// Budget exhausted: the whole search is being abandoned, so the
			// assignment bookkeeping need not be unwound.
			return false
		}
	}
	st.asnHas[s] = false
	for _, ai := range st.varAtoms[s] {
		st.atoms[ai].unassigned++
	}
	return false
}

// candidates enumerates values for the slot in deterministic order: the seed
// value first, then the domain edges, then an outward sweep around the seed,
// clipped to the domain and the per-variable budget. The buffer is reused
// per search depth, so enumeration allocates nothing in steady state.
func (st *searchState) candidates(depth int, s int32, iv *interval) []int64 {
	budget := st.solver.opts.MaxValuesPerVar
	for len(st.candBufs) <= depth {
		st.candBufs = append(st.candBufs, nil)
	}
	out := st.candBufs[depth][:0]
	defer func() { st.candBufs[depth] = out }()
	if iv.empty() {
		return out
	}
	seedV, hasSeed := st.seedVal[s], st.seedHas[s]
	lo, hi := iv.lo, iv.hi
	// The prefix values below are the only possible duplicates: sweep values
	// differ from the seed (distance >= 1) and from each other, so tracking
	// which prefix values were emitted replaces a seen-set.
	var seedAdded, loAdded, hiAdded bool
	if hasSeed && len(out) < budget && iv.contains(seedV) {
		out = append(out, seedV)
		seedAdded = true
	}
	// Domain edges early: equality against constants typically lands there
	// after propagation.
	if len(out) < budget && !(seedAdded && lo == seedV) {
		out = append(out, lo)
		loAdded = true
	}
	if len(out) < budget && !(seedAdded && hi == seedV) && !(loAdded && hi == lo) {
		out = append(out, hi)
		hiAdded = true
	}
	if hasSeed {
		for d := int64(1); len(out) < budget && d <= hi-lo; d++ {
			if x := seedV + d; x >= lo && x <= hi && !(loAdded && x == lo) && !(hiAdded && x == hi) {
				out = append(out, x)
			}
			if x := seedV - d; len(out) < budget && x >= lo && x <= hi && !(loAdded && x == lo) && !(hiAdded && x == hi) {
				out = append(out, x)
			}
		}
	} else {
		for x := lo; len(out) < budget && x <= hi; x++ {
			if (loAdded && x == lo) || (hiAdded && x == hi) {
				continue
			}
			out = append(out, x)
		}
	}
	return out
}

// snapshotDomains pushes a copy of every domain onto the snapshot stack and
// returns the restore point. Snapshots nest strictly LIFO with the search.
func (st *searchState) snapshotDomains() int {
	st.work += int64(len(st.doms)) * 2 // copy now, restore later
	base := len(st.snapStack)
	st.snapStack = append(st.snapStack, st.doms...)
	return base
}

func (st *searchState) restoreDomains(base int) {
	snap := st.snapStack[base:]
	for i := range st.doms {
		if st.doms[i] != snap[i] {
			st.doms[i] = snap[i]
			st.touch(int32(i))
		}
	}
	st.snapStack = st.snapStack[:base]
}

// checkDecided evaluates every atom whose variables are all assigned;
// returns false on any violation. An atom that already evaluated true keeps
// holding as long as none of its variables is re-assigned (deeper search
// nodes only assign other slots and evaluation reads assignments, not
// domains), so its re-evaluation is skipped — while still charging the
// work the evaluation would have cost, keeping the budget's observable
// trajectory identical.
func (st *searchState) checkDecided() bool {
	for i := range st.atoms {
		a := &st.atoms[i]
		st.work += int64(len(a.vars))
		if a.unassigned != 0 {
			continue
		}
		if st.decidedOK[i] {
			st.work += int64(a.ne.size)
			continue
		}
		if !st.evalAtom(a) {
			return false
		}
		st.decidedOK[i] = true
	}
	return true
}

// checkAll verifies every atom under the full assignment (seed-filling
// unassigned vars, which can only be vars outside all atoms).
func (st *searchState) checkAll() bool {
	for i := range st.atoms {
		if !st.evalAtom(&st.atoms[i]) {
			return false
		}
	}
	return true
}

// evalAtom decides one atom under the current assignment. Linearized atoms
// are evaluated directly from their side forms — exactly equivalent to
// evaluating the original expression, since linearization preserves values
// under two's-complement wraparound — and only true fallback atoms walk the
// original expression tree.
func (st *searchState) evalAtom(a *atom) bool {
	st.work += int64(a.ne.size)
	if a.ne.hasEval {
		l := a.ne.lc
		for _, t := range a.lform {
			l += t.coeff * st.value(t.slot)
		}
		r := a.ne.rc
		for _, t := range a.rform {
			r += t.coeff * st.value(t.slot)
		}
		return holdsRel(a.ne.r, l, r)
	}
	return a.orig.Holds(st)
}

// holdsRel evaluates l REL r over signed 64-bit values.
func holdsRel(r rel, l, rv int64) bool {
	switch r {
	case relEQ:
		return l == rv
	case relNE:
		return l != rv
	case relLT:
		return l < rv
	case relLE:
		return l <= rv
	case relGT:
		return l > rv
	case relGE:
		return l >= rv
	}
	panic("solver: bad rel in holdsRel")
}
