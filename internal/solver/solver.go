// Package solver implements the constraint solver used to turn path
// conditions into concrete program inputs.
//
// The paper uses an off-the-shelf bitvector solver; this reproduction ships a
// self-contained CSP solver tuned to the constraint fragment that compiled
// MiniC programs generate: conjunctions of (in)equalities over linear
// combinations of input bytes, plus a residue of non-linear atoms (division,
// bit operations) that are checked by evaluation during search.
//
// The solve pipeline is:
//
//  1. normalize every constraint into a linear atom when possible;
//  2. tighten per-variable interval domains by bounds propagation to a fixed
//     point;
//  3. run a deterministic backtracking search over the remaining variables,
//     seeding value choice from the previous concrete run so that solutions
//     stay close to observed executions (this mirrors how concolic engines
//     reuse the current input);
//  4. verify the candidate assignment by evaluating the original constraints.
package solver

import (
	"fmt"
	"sort"

	"pathlog/internal/sym"
)

// Options tune solver effort. The zero value selects sane defaults.
type Options struct {
	// MaxNodes bounds the number of search-tree nodes visited per Solve
	// call. 0 means DefaultMaxNodes.
	MaxNodes int
	// MaxValuesPerVar bounds how many candidate values are tried for one
	// variable at one node. 0 means DefaultMaxValuesPerVar.
	MaxValuesPerVar int
	// MaxWork bounds the total evaluation effort (expression nodes touched)
	// per Solve call, so pathological non-linear conjunctions (diff's
	// hash-chain constraints) cannot stall a replay run. 0 means
	// DefaultMaxWork.
	MaxWork int64
}

// Default effort bounds.
const (
	DefaultMaxNodes        = 200000
	DefaultMaxValuesPerVar = 1024
	DefaultMaxWork         = 3_000_000
)

// Stats accumulates counters across Solve calls; the experiment harness
// reports them alongside replay times.
type Stats struct {
	Calls     int   // number of Solve invocations
	Sat       int   // how many returned a solution
	Unsat     int   // how many proved or gave up as unsatisfiable
	Nodes     int64 // total search nodes visited
	Atoms     int64 // total atoms normalized
	Fallbacks int64 // atoms that could not be linearized
}

// Add folds another Stats into s — the one aggregation point for callers
// combining per-worker or per-search counters.
func (s *Stats) Add(o Stats) {
	s.Calls += o.Calls
	s.Sat += o.Sat
	s.Unsat += o.Unsat
	s.Nodes += o.Nodes
	s.Atoms += o.Atoms
	s.Fallbacks += o.Fallbacks
}

// Solver solves conjunctions of sym.Constraint over bounded integer domains.
// A Solver is not safe for concurrent use.
type Solver struct {
	opts  Options
	stats Stats
}

// New returns a Solver with the given options.
func New(opts Options) *Solver {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = DefaultMaxNodes
	}
	if opts.MaxValuesPerVar <= 0 {
		opts.MaxValuesPerVar = DefaultMaxValuesPerVar
	}
	if opts.MaxWork <= 0 {
		opts.MaxWork = DefaultMaxWork
	}
	return &Solver{opts: opts}
}

// Stats returns a copy of the accumulated counters.
func (s *Solver) Stats() Stats { return s.stats }

// ResetStats clears the accumulated counters.
func (s *Solver) ResetStats() { s.stats = Stats{} }

// Domain describes the inclusive value range of one input variable.
type Domain struct {
	Lo, Hi int64
}

// Problem is one satisfiability query: a conjunction of constraints, the
// domains of the variables they mention, and a seed assignment (typically the
// concrete input of the run that produced the constraints).
type Problem struct {
	Constraints []sym.Constraint
	Domains     map[int]Domain
	Seed        sym.MapAssignment
}

// Solve searches for an assignment satisfying every constraint. Variables not
// mentioned by any constraint keep their seed value. The returned assignment
// is complete for all variables in p.Domains. ok is false when the problem is
// unsatisfiable or the search budget was exhausted.
func (s *Solver) Solve(p Problem) (asn sym.MapAssignment, ok bool) {
	s.stats.Calls++

	// Fast path: the seed may already satisfy the conjunction (frequent when
	// only one negated constraint was appended and it is loose).
	seedAsn := make(sym.MapAssignment, len(p.Domains))
	for id, d := range p.Domains {
		v := p.Seed[id]
		if v < d.Lo {
			v = d.Lo
		}
		if v > d.Hi {
			v = d.Hi
		}
		seedAsn[id] = v
	}
	if sym.AllHold(p.Constraints, seedAsn) {
		s.stats.Sat++
		return seedAsn, true
	}

	st := &searchState{
		solver:  s,
		domains: make(map[int]*interval, len(p.Domains)),
		seed:    seedAsn,
	}
	for id, d := range p.Domains {
		st.domains[id] = &interval{lo: d.Lo, hi: d.Hi}
	}

	// Normalize constraints into atoms.
	for _, c := range p.Constraints {
		a, lin := normalize(c)
		s.stats.Atoms++
		if !lin {
			s.stats.Fallbacks++
		}
		st.atoms = append(st.atoms, a)
		for _, v := range a.vars {
			if _, present := st.domains[v]; !present {
				// Constraint mentions a variable with no declared domain;
				// assume full byte range extended for safety.
				st.domains[v] = &interval{lo: -(1 << 31), hi: 1 << 31}
			}
		}
	}

	if !st.propagateAll() {
		s.stats.Unsat++
		return nil, false
	}

	// Order variables: most-constrained (smallest domain) first, ties by ID
	// for determinism.
	vars := make([]int, 0, len(st.domains))
	for id := range st.domains {
		if st.mentioned(id) {
			vars = append(vars, id)
		}
	}
	sort.Slice(vars, func(i, j int) bool {
		wi := st.domains[vars[i]].width()
		wj := st.domains[vars[j]].width()
		if wi != wj {
			return wi < wj
		}
		return vars[i] < vars[j]
	})

	st.assigned = make(sym.MapAssignment, len(vars))
	if !st.search(vars, 0) {
		s.stats.Unsat++
		return nil, false
	}

	// Assemble the full assignment: searched vars from the solution, the
	// rest from the seed.
	out := make(sym.MapAssignment, len(p.Domains))
	for id, v := range seedAsn {
		out[id] = v
	}
	for id, v := range st.assigned {
		out[id] = v
	}
	if !sym.AllHold(p.Constraints, out) {
		// Paranoia: search produced a candidate the evaluator rejects. Treat
		// as unsat rather than returning a wrong input.
		s.stats.Unsat++
		return nil, false
	}
	s.stats.Sat++
	return out, true
}

// --- atoms -----------------------------------------------------------------

// rel is the relation of a linear atom: sum(terms) + c REL 0.
type rel int

const (
	relEQ rel = iota
	relNE
	relLT
	relLE
	relGT
	relGE
)

// String implements fmt.Stringer.
func (r rel) String() string {
	return [...]string{"==", "!=", "<", "<=", ">", ">="}[r]
}

type term struct {
	v     int
	coeff int64
}

// atom is one normalized constraint. When linear is true it denotes
// sum(coeff_i * var_i) + c REL 0; otherwise orig is checked by evaluation
// once all its variables are assigned.
type atom struct {
	linear bool
	terms  []term
	c      int64
	r      rel
	orig   sym.Constraint
	vars   []int
}

// normalize converts a constraint to an atom, linearizing when possible.
func normalize(c sym.Constraint) (atom, bool) {
	varSet := sym.Vars(c.E)
	vars := make([]int, 0, len(varSet))
	for v := range varSet {
		vars = append(vars, v)
	}
	sort.Ints(vars)

	lhs, rhs, r, cmp := splitComparison(c.E)
	if cmp {
		lt, lok := linearize(lhs)
		rt, rok := linearize(rhs)
		if lok && rok {
			diff := lt.sub(rt)
			if !c.Truth {
				r = negateRel(r)
			}
			a := atom{linear: true, c: diff.c, r: r, orig: c, vars: vars}
			for v, co := range diff.coeffs {
				if co != 0 {
					a.terms = append(a.terms, term{v: v, coeff: co})
				}
			}
			sort.Slice(a.terms, func(i, j int) bool { return a.terms[i].v < a.terms[j].v })
			if len(a.terms) == 0 {
				// Fully constant after linearization; keep as fallback so
				// evaluation decides it (cheap, and exercised by tests).
				return atom{linear: false, orig: c, vars: vars}, false
			}
			return a, true
		}
	}
	// Truthness of a non-comparison expression: e != 0 (Truth) or e == 0.
	if lt, ok := linearize(c.E); ok {
		r := relNE
		if !c.Truth {
			r = relEQ
		}
		a := atom{linear: true, c: lt.c, r: r, orig: c, vars: vars}
		for v, co := range lt.coeffs {
			if co != 0 {
				a.terms = append(a.terms, term{v: v, coeff: co})
			}
		}
		sort.Slice(a.terms, func(i, j int) bool { return a.terms[i].v < a.terms[j].v })
		if len(a.terms) > 0 {
			return a, true
		}
	}
	return atom{linear: false, orig: c, vars: vars}, false
}

// splitComparison decomposes a top-level comparison into lhs REL rhs.
func splitComparison(e sym.Expr) (lhs, rhs sym.Expr, r rel, ok bool) {
	switch x := e.(type) {
	case *sym.Bin:
		switch x.Op {
		case sym.OpEq:
			return x.L, x.R, relEQ, true
		case sym.OpNe:
			return x.L, x.R, relNE, true
		case sym.OpLt:
			return x.L, x.R, relLT, true
		case sym.OpLe:
			return x.L, x.R, relLE, true
		case sym.OpGt:
			return x.L, x.R, relGT, true
		case sym.OpGe:
			return x.L, x.R, relGE, true
		}
	case *sym.Un:
		switch x.Op {
		case sym.OpNot:
			// !(e): swap truth by comparing e == 0.
			return x.X, sym.Zero, relEQ, true
		case sym.OpBool:
			return x.X, sym.Zero, relNE, true
		}
	}
	return nil, nil, 0, false
}

func negateRel(r rel) rel {
	switch r {
	case relEQ:
		return relNE
	case relNE:
		return relEQ
	case relLT:
		return relGE
	case relLE:
		return relGT
	case relGT:
		return relLE
	case relGE:
		return relLT
	}
	panic(fmt.Sprintf("solver: bad rel %d", r))
}

// linTerm is a linear combination of variables plus a constant.
type linTerm struct {
	coeffs map[int]int64
	c      int64
}

func (t linTerm) sub(o linTerm) linTerm {
	out := linTerm{coeffs: make(map[int]int64, len(t.coeffs)+len(o.coeffs)), c: t.c - o.c}
	for v, co := range t.coeffs {
		out.coeffs[v] = co
	}
	for v, co := range o.coeffs {
		out.coeffs[v] -= co
	}
	return out
}

// linearize attempts to express e as a linear combination of inputs.
func linearize(e sym.Expr) (linTerm, bool) {
	switch x := e.(type) {
	case *sym.Const:
		return linTerm{coeffs: map[int]int64{}, c: x.V}, true
	case *sym.Input:
		return linTerm{coeffs: map[int]int64{x.ID: 1}}, true
	case *sym.Un:
		if x.Op == sym.OpNeg {
			if t, ok := linearize(x.X); ok {
				for v := range t.coeffs {
					t.coeffs[v] = -t.coeffs[v]
				}
				t.c = -t.c
				return t, true
			}
		}
		return linTerm{}, false
	case *sym.Bin:
		switch x.Op {
		case sym.OpAdd, sym.OpSub:
			lt, lok := linearize(x.L)
			rt, rok := linearize(x.R)
			if !lok || !rok {
				return linTerm{}, false
			}
			if x.Op == sym.OpAdd {
				for v, co := range rt.coeffs {
					lt.coeffs[v] += co
				}
				lt.c += rt.c
				return lt, true
			}
			return lt.sub(rt), true
		case sym.OpMul:
			// Linear only when one side is constant.
			if cv, ok := sym.IsConst(x.L); ok {
				if t, tok := linearize(x.R); tok {
					return t.scale(cv), true
				}
			}
			if cv, ok := sym.IsConst(x.R); ok {
				if t, tok := linearize(x.L); tok {
					return t.scale(cv), true
				}
			}
		}
	}
	return linTerm{}, false
}

func (t linTerm) scale(k int64) linTerm {
	out := linTerm{coeffs: make(map[int]int64, len(t.coeffs)), c: t.c * k}
	for v, co := range t.coeffs {
		out.coeffs[v] = co * k
	}
	return out
}
