// Package solver implements the constraint solver used to turn path
// conditions into concrete program inputs.
//
// The paper uses an off-the-shelf bitvector solver; this reproduction ships a
// self-contained CSP solver tuned to the constraint fragment that compiled
// MiniC programs generate: conjunctions of (in)equalities over linear
// combinations of input bytes, plus a residue of non-linear atoms (division,
// bit operations) that are checked by evaluation during search.
//
// The solve pipeline is:
//
//  1. normalize every constraint into a linear atom when possible (normalized
//     forms are cached per expression, since replay re-solves path prefixes);
//  2. tighten per-variable interval domains by bounds propagation to a fixed
//     point;
//  3. run a deterministic backtracking search over the remaining variables,
//     seeding value choice from the previous concrete run so that solutions
//     stay close to observed executions (this mirrors how concolic engines
//     reuse the current input);
//  4. verify the candidate assignment by evaluating the original constraints.
//
// Internally the search works on dense slot-indexed state (variable IDs are
// mapped to slots once per Solve call) so the per-node hot paths — bounds
// propagation, decided-atom checks and candidate enumeration — run on slices
// with no map traffic and no per-node allocation.
package solver

import (
	"fmt"
	"reflect"
	"sort"

	"pathlog/internal/sym"
)

// Options tune solver effort. The zero value selects sane defaults.
type Options struct {
	// MaxNodes bounds the number of search-tree nodes visited per Solve
	// call. 0 means DefaultMaxNodes.
	MaxNodes int
	// MaxValuesPerVar bounds how many candidate values are tried for one
	// variable at one node. 0 means DefaultMaxValuesPerVar.
	MaxValuesPerVar int
	// MaxWork bounds the total evaluation effort (expression nodes touched)
	// per Solve call, so pathological non-linear conjunctions (diff's
	// hash-chain constraints) cannot stall a replay run. 0 means
	// DefaultMaxWork.
	MaxWork int64
}

// Default effort bounds.
const (
	DefaultMaxNodes        = 200000
	DefaultMaxValuesPerVar = 1024
	DefaultMaxWork         = 3_000_000
)

// normTabBits sizes the per-Solver normalization cache: a direct-mapped
// table of 2^normTabBits slots. Pending sets spawned by one replay run share
// their prefix expressions, so consecutive Solve calls hit the same slots;
// across runs expressions are rebuilt and the old entries simply get
// evicted. A fixed table keeps the cache allocation-free in steady state —
// a map here churns through fill-and-reset cycles that dominate the
// solver's allocation profile.
const normTabBits = 13

// Stats accumulates counters across Solve calls; the experiment harness
// reports them alongside replay times.
type Stats struct {
	Calls     int   // number of Solve invocations
	Sat       int   // how many returned a solution
	Unsat     int   // how many proved or gave up as unsatisfiable
	Nodes     int64 // total search nodes visited
	Atoms     int64 // total atoms normalized
	Fallbacks int64 // atoms that could not be linearized
}

// Add folds another Stats into s — the one aggregation point for callers
// combining per-worker or per-search counters.
func (s *Stats) Add(o Stats) {
	s.Calls += o.Calls
	s.Sat += o.Sat
	s.Unsat += o.Unsat
	s.Nodes += o.Nodes
	s.Atoms += o.Atoms
	s.Fallbacks += o.Fallbacks
}

// Solver solves conjunctions of sym.Constraint over bounded integer domains.
// A Solver is not safe for concurrent use.
type Solver struct {
	opts   Options
	stats  Stats
	norm   []normSlot   // direct-mapped normalization cache
	varBuf []int        // scratch for collecting variable IDs in normalize
	neBuf  []*normEntry // scratch for the per-call normal forms
	st     searchState  // reused across Solve calls to keep allocation flat

	// Slab storage for normal forms. The replay search normalizes one fresh
	// expression per executed symbolic branch (each run rebuilds its path
	// condition), so entries and their vars slices are bump-allocated in
	// chunks. A chunk is dropped on growth and becomes collectible once the
	// cache has evicted the last entry pointing into it.
	entrySlab []normEntry
	intSlab   []int
}

// New returns a Solver with the given options.
func New(opts Options) *Solver {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = DefaultMaxNodes
	}
	if opts.MaxValuesPerVar <= 0 {
		opts.MaxValuesPerVar = DefaultMaxValuesPerVar
	}
	if opts.MaxWork <= 0 {
		opts.MaxWork = DefaultMaxWork
	}
	s := &Solver{opts: opts, norm: make([]normSlot, 1<<normTabBits)}
	s.st.solver = s
	s.st.slotOf = make(map[int]int32)
	return s
}

// Stats returns a copy of the accumulated counters.
func (s *Solver) Stats() Stats { return s.stats }

// ResetStats clears the accumulated counters.
func (s *Solver) ResetStats() { s.stats = Stats{} }

// Domain describes the inclusive value range of one input variable.
type Domain struct {
	Lo, Hi int64
}

// VarDomain binds one variable ID to its domain.
type VarDomain struct {
	ID     int
	Lo, Hi int64
}

// Problem is one satisfiability query: a conjunction of constraints, the
// domains of the variables they mention, and a seed assignment (typically the
// concrete input of the run that produced the constraints). Domains must not
// repeat an ID; callers conventionally keep it ID-sorted (a slice rather
// than a map because solving is the replay search's inner loop).
type Problem struct {
	Constraints []sym.Constraint
	Domains     []VarDomain
	Seed        sym.MapAssignment
}

// Solve searches for an assignment satisfying every constraint. Variables not
// mentioned by any constraint keep their seed value. The returned assignment
// is complete for all variables in p.Domains. ok is false when the problem is
// unsatisfiable or the search budget was exhausted.
func (s *Solver) Solve(p Problem) (asn sym.MapAssignment, ok bool) {
	s.stats.Calls++

	// Fast path: the seed may already satisfy the conjunction (frequent when
	// only one negated constraint was appended and it is loose). Constraints
	// are checked through their cached normal forms — equivalent to
	// evaluating the original expressions, several times cheaper.
	seedAsn := make(sym.MapAssignment, len(p.Domains))
	for _, d := range p.Domains {
		v := p.Seed[d.ID]
		if v < d.Lo {
			v = d.Lo
		}
		if v > d.Hi {
			v = d.Hi
		}
		seedAsn[d.ID] = v
	}
	// Each constraint's normal form is looked up once per call and reused by
	// the seed check, the atom build and the final verification.
	nes := s.neBuf[:0]
	for _, c := range p.Constraints {
		nes = append(nes, s.normalized(c))
	}
	s.neBuf = nes

	seedHolds := true
	for i, c := range p.Constraints {
		if !evalNorm(nes[i], c, seedAsn) {
			seedHolds = false
			break
		}
	}
	if seedHolds {
		s.stats.Sat++
		return seedAsn, true
	}

	st := &s.st
	st.reset()
	for _, d := range p.Domains {
		st.addSlot(d.ID, interval{lo: d.Lo, hi: d.Hi}, seedAsn[d.ID], true)
	}

	// Build the atoms.
	for i, c := range p.Constraints {
		ne := nes[i]
		s.stats.Atoms++
		if !ne.linear {
			s.stats.Fallbacks++
		}
		st.addAtom(c, ne)
	}

	if !st.propagateAll() {
		s.stats.Unsat++
		return nil, false
	}

	// Order variables: most-constrained (smallest domain) first, ties by ID
	// for determinism.
	vars := st.order[:0]
	for slot := range st.doms {
		if len(st.varAtoms[slot]) > 0 {
			vars = append(vars, int32(slot))
		}
	}
	st.order = vars
	sort.Slice(vars, func(i, j int) bool {
		wi := st.doms[vars[i]].width()
		wj := st.doms[vars[j]].width()
		if wi != wj {
			return wi < wj
		}
		return st.idOf[vars[i]] < st.idOf[vars[j]]
	})

	if !st.search(vars, 0) {
		s.stats.Unsat++
		return nil, false
	}

	// Assemble the full assignment: searched vars from the solution, the
	// rest from the seed.
	out := make(sym.MapAssignment, len(p.Domains))
	for id, v := range seedAsn {
		out[id] = v
	}
	for _, slot := range vars {
		out[st.idOf[slot]] = st.asnVal[slot]
	}
	for i, c := range p.Constraints {
		if !evalNorm(nes[i], c, out) {
			// Paranoia: search produced a candidate the evaluator rejects.
			// Treat as unsat rather than returning a wrong input.
			s.stats.Unsat++
			return nil, false
		}
	}
	s.stats.Sat++
	return out, true
}

// evalNorm decides one constraint under an assignment via its normal form.
// Linearized constraints evaluate their two sides directly (exact under
// wraparound: linearization only rewrites ring operations); fallbacks walk
// the original expression.
func evalNorm(ne *normEntry, c sym.Constraint, asn sym.Assignment) bool {
	if ne.hasEval {
		l := ne.lc
		for _, t := range ne.lform {
			l += t.coeff * asn.Value(t.v)
		}
		r := ne.rc
		for _, t := range ne.rform {
			r += t.coeff * asn.Value(t.v)
		}
		return holdsRel(ne.r, l, r)
	}
	return c.Holds(asn)
}

// --- atoms -----------------------------------------------------------------

// rel is the relation of a linear atom: sum(terms) + c REL 0.
type rel int

const (
	relEQ rel = iota
	relNE
	relLT
	relLE
	relGT
	relGE
)

// String implements fmt.Stringer.
func (r rel) String() string {
	return [...]string{"==", "!=", "<", "<=", ">", ">="}[r]
}

type term struct {
	v     int
	coeff int64
}

// normSlot is one direct-mapped cache line: expression nodes are immutable
// and shared, so node identity plus the asserted truth identifies a normal
// form exactly.
type normSlot struct {
	e     sym.Expr
	truth bool
	ne    *normEntry
}

// normEntry is the variable-ID-indexed normal form of one constraint, cached
// across Solve calls. When linear is true, terms (the combined lhs-rhs form)
// feeds bounds propagation. When hasEval is true the constraint can be
// decided by evaluating the two linear sides directly — exact even under
// wraparound, because linearization only rewrites ring operations (+, -,
// neg, mul-by-const), never the comparison itself.
type normEntry struct {
	linear  bool
	hasEval bool
	terms   []term // combined lhs-rhs, zero coefficients dropped, sorted by v
	c       int64
	r       rel    // relation with the constraint's truth folded in
	lform   []term // lhs linear form
	lc      int64
	rform   []term // rhs linear form
	rc      int64
	vars    []int // all variable IDs of the expression, sorted
	size    int32 // sym.Size of the original expression (work accounting)
}

// normalized returns the cached normal form of c, computing it on a miss.
// The slot index hashes the expression's node identity (Fibonacci mixing of
// the pointer), with the truth folded into the low bit so both polarities of
// one expression coexist; a colliding entry is simply evicted.
func (s *Solver) normalized(c sym.Constraint) *normEntry {
	h := uint64(reflect.ValueOf(c.E).Pointer()) * 0x9E3779B97F4A7C15
	idx := (h >> (64 - normTabBits)) &^ 1
	if c.Truth {
		idx |= 1
	}
	slot := &s.norm[idx]
	if slot.e == c.E && slot.truth == c.Truth {
		return slot.ne
	}
	ne := s.normalize(c)
	slot.e, slot.truth, slot.ne = c.E, c.Truth, ne
	return ne
}

// newEntry bump-allocates one normEntry from the slab.
func (s *Solver) newEntry() *normEntry {
	if len(s.entrySlab) == cap(s.entrySlab) {
		s.entrySlab = make([]normEntry, 0, 512)
	}
	s.entrySlab = s.entrySlab[:len(s.entrySlab)+1]
	return &s.entrySlab[len(s.entrySlab)-1]
}

// ints bump-allocates an n-int slice from the slab.
func (s *Solver) ints(n int) []int {
	if cap(s.intSlab)-len(s.intSlab) < n {
		size := 4096
		if n > size {
			size = n
		}
		s.intSlab = make([]int, 0, size)
	}
	l := len(s.intSlab)
	s.intSlab = s.intSlab[:l+n]
	return s.intSlab[l : l+n : l+n]
}

// normalize converts a constraint to its normal form, linearizing when
// possible.
func (s *Solver) normalize(c sym.Constraint) *normEntry {
	buf := sym.AppendVarIDs(c.E, s.varBuf[:0])
	sort.Ints(buf)
	u := 0
	for i, v := range buf {
		if i == 0 || v != buf[i-1] {
			buf[u] = v
			u++
		}
	}
	s.varBuf = buf
	vars := s.ints(u)
	copy(vars, buf[:u])
	ne := s.newEntry()
	ne.vars, ne.size = vars, int32(sym.Size(c.E))

	lhs, rhs, r, cmp := splitComparison(c.E)
	if cmp {
		lt, lok := linearize(lhs)
		rt, rok := linearize(rhs)
		if lok && rok {
			if !c.Truth {
				r = negateRel(r)
			}
			diff := lt.combine(rt, true)
			ne.hasEval = true
			ne.r = r
			ne.lform, ne.lc = lt.terms, lt.c
			ne.rform, ne.rc = rt.terms, rt.c
			ne.terms, ne.c = diff.terms, diff.c
			// A combined form with no terms is constant after linearization;
			// it cannot drive propagation, so it stays a fallback (though
			// still decided by direct evaluation).
			ne.linear = len(ne.terms) > 0
			return ne
		}
	}
	// Truthness of a non-comparison expression: e != 0 (Truth) or e == 0.
	if lt, lok := linearize(c.E); lok {
		r := relNE
		if !c.Truth {
			r = relEQ
		}
		ne.hasEval = true
		ne.r = r
		ne.lform, ne.lc = lt.terms, lt.c
		ne.terms, ne.c = lt.terms, lt.c
		ne.linear = len(ne.terms) > 0
		return ne
	}
	return ne
}

// splitComparison decomposes a top-level comparison into lhs REL rhs.
func splitComparison(e sym.Expr) (lhs, rhs sym.Expr, r rel, ok bool) {
	switch x := e.(type) {
	case *sym.Bin:
		switch x.Op {
		case sym.OpEq:
			return x.L, x.R, relEQ, true
		case sym.OpNe:
			return x.L, x.R, relNE, true
		case sym.OpLt:
			return x.L, x.R, relLT, true
		case sym.OpLe:
			return x.L, x.R, relLE, true
		case sym.OpGt:
			return x.L, x.R, relGT, true
		case sym.OpGe:
			return x.L, x.R, relGE, true
		}
	case *sym.Un:
		switch x.Op {
		case sym.OpNot:
			// !(e): swap truth by comparing e == 0.
			return x.X, sym.Zero, relEQ, true
		case sym.OpBool:
			return x.X, sym.Zero, relNE, true
		}
	}
	return nil, nil, 0, false
}

func negateRel(r rel) rel {
	switch r {
	case relEQ:
		return relNE
	case relNE:
		return relEQ
	case relLT:
		return relGE
	case relLE:
		return relGT
	case relGT:
		return relLE
	case relGE:
		return relLT
	}
	panic(fmt.Sprintf("solver: bad rel %d", r))
}

// linTerm is a linear combination of variables plus a constant. Terms are
// sorted by variable ID and carry no zero coefficients; each linTerm owns
// its slice, so in-place negation and scaling are safe.
type linTerm struct {
	terms []term
	c     int64
}

// combine returns t + o (or t - o when sub), merging the sorted term lists
// and dropping coefficients that cancel.
func (t linTerm) combine(o linTerm, sub bool) linTerm {
	out := linTerm{terms: make([]term, 0, len(t.terms)+len(o.terms))}
	if sub {
		out.c = t.c - o.c
	} else {
		out.c = t.c + o.c
	}
	i, j := 0, 0
	for i < len(t.terms) && j < len(o.terms) {
		a, b := t.terms[i], o.terms[j]
		switch {
		case a.v < b.v:
			out.terms = append(out.terms, a)
			i++
		case a.v > b.v:
			if sub {
				b.coeff = -b.coeff
			}
			out.terms = append(out.terms, b)
			j++
		default:
			co := a.coeff + b.coeff
			if sub {
				co = a.coeff - b.coeff
			}
			if co != 0 {
				out.terms = append(out.terms, term{v: a.v, coeff: co})
			}
			i++
			j++
		}
	}
	out.terms = append(out.terms, t.terms[i:]...)
	for ; j < len(o.terms); j++ {
		b := o.terms[j]
		if sub {
			b.coeff = -b.coeff
		}
		out.terms = append(out.terms, b)
	}
	return out
}

// linearize attempts to express e as a linear combination of inputs.
func linearize(e sym.Expr) (linTerm, bool) {
	switch x := e.(type) {
	case *sym.Const:
		return linTerm{c: x.V}, true
	case *sym.Input:
		return linTerm{terms: []term{{v: x.ID, coeff: 1}}}, true
	case *sym.Un:
		if x.Op == sym.OpNeg {
			if t, ok := linearize(x.X); ok {
				for i := range t.terms {
					t.terms[i].coeff = -t.terms[i].coeff
				}
				t.c = -t.c
				return t, true
			}
		}
		return linTerm{}, false
	case *sym.Bin:
		switch x.Op {
		case sym.OpAdd, sym.OpSub:
			lt, lok := linearize(x.L)
			rt, rok := linearize(x.R)
			if !lok || !rok {
				return linTerm{}, false
			}
			return lt.combine(rt, x.Op == sym.OpSub), true
		case sym.OpMul:
			// Linear only when one side is constant.
			if cv, ok := sym.IsConst(x.L); ok {
				if t, tok := linearize(x.R); tok {
					return t.scale(cv), true
				}
			}
			if cv, ok := sym.IsConst(x.R); ok {
				if t, tok := linearize(x.L); tok {
					return t.scale(cv), true
				}
			}
		}
	}
	return linTerm{}, false
}

// scale multiplies the form by k in place (the receiver owns its terms).
// Scaling by zero cancels every term; constant folding upstream makes that
// unreachable in practice, but the filter keeps the no-zero invariant.
func (t linTerm) scale(k int64) linTerm {
	out := linTerm{terms: t.terms[:0], c: t.c * k}
	for _, u := range t.terms {
		if co := u.coeff * k; co != 0 {
			out.terms = append(out.terms, term{v: u.v, coeff: co})
		}
	}
	return out
}
