// Package solver implements the constraint solver used to turn path
// conditions into concrete program inputs.
//
// The paper uses an off-the-shelf bitvector solver; this reproduction ships a
// self-contained CSP solver tuned to the constraint fragment that compiled
// MiniC programs generate: conjunctions of (in)equalities over linear
// combinations of input bytes, plus a residue of non-linear atoms (division,
// bit operations) that are checked by evaluation during search.
//
// The solve pipeline is:
//
//  1. normalize every constraint into a linear atom when possible (normalized
//     forms are cached per expression, since replay re-solves path prefixes);
//  2. tighten per-variable interval domains by bounds propagation to a fixed
//     point;
//  3. run a deterministic backtracking search over the remaining variables,
//     seeding value choice from the previous concrete run so that solutions
//     stay close to observed executions (this mirrors how concolic engines
//     reuse the current input);
//  4. verify the candidate assignment by evaluating the original constraints.
//
// Internally the search works on dense slot-indexed state (variable IDs are
// mapped to slots once per Solve call) so the per-node hot paths — bounds
// propagation, decided-atom checks and candidate enumeration — run on slices
// with no map traffic and no per-node allocation.
package solver

import (
	"fmt"
	"reflect"
	"sort"
	"sync"

	"pathlog/internal/sym"
)

// Options tune solver effort. The zero value selects sane defaults.
type Options struct {
	// MaxNodes bounds the number of search-tree nodes visited per Solve
	// call. 0 means DefaultMaxNodes.
	MaxNodes int
	// MaxValuesPerVar bounds how many candidate values are tried for one
	// variable at one node. 0 means DefaultMaxValuesPerVar.
	MaxValuesPerVar int
	// MaxWork bounds the total evaluation effort (expression nodes touched)
	// per Solve call, so pathological non-linear conjunctions (diff's
	// hash-chain constraints) cannot stall a replay run. 0 means
	// DefaultMaxWork.
	MaxWork int64
}

// Default effort bounds.
const (
	DefaultMaxNodes        = 200000
	DefaultMaxValuesPerVar = 1024
	DefaultMaxWork         = 3_000_000
)

// normTabBits sizes the per-Solver normalization cache: a direct-mapped
// table of 2^normTabBits slots. Pending sets spawned by one replay run share
// their prefix expressions, so consecutive Solve calls hit the same slots;
// across runs expressions are rebuilt and the old entries simply get
// evicted. A fixed table keeps the cache allocation-free in steady state —
// a map here churns through fill-and-reset cycles that dominate the
// solver's allocation profile.
const normTabBits = 13

// structTabBits sizes the second-level, structurally-keyed normalization
// cache, and hashTabBits the per-node hash memo that feeds it. Across runs of
// one search every expression is rebuilt node-for-node, so the pointer-keyed
// first level misses on all of them; the structural level recognizes the
// rebuilt expressions and reuses their normal forms, which is what keeps
// normalization (and its slab churn) a first-run-only cost.
const (
	structTabBits = 13
	hashTabBits   = 14
)

// Stats accumulates counters across Solve calls; the experiment harness
// reports them alongside replay times.
type Stats struct {
	Calls     int   // number of Solve invocations
	Sat       int   // how many returned a solution
	Unsat     int   // how many proved or gave up as unsatisfiable
	Nodes     int64 // total search nodes visited
	Atoms     int64 // total atoms normalized
	Fallbacks int64 // atoms that could not be linearized
}

// Add folds another Stats into s — the one aggregation point for callers
// combining per-worker or per-search counters.
func (s *Stats) Add(o Stats) {
	s.Calls += o.Calls
	s.Sat += o.Sat
	s.Unsat += o.Unsat
	s.Nodes += o.Nodes
	s.Atoms += o.Atoms
	s.Fallbacks += o.Fallbacks
}

// Solver solves conjunctions of sym.Constraint over bounded integer domains.
// A Solver is not safe for concurrent use.
type Solver struct {
	opts    Options
	stats   Stats
	norm    []normSlot   // direct-mapped normalization cache, pointer-keyed
	snorm   []normSlot   // second level, structure-keyed
	hashTab []hashSlot   // per-node structural-hash memo
	varBuf  []int        // scratch for collecting variable IDs in normalize
	neBuf   []*normEntry // scratch for the per-call normal forms
	st      searchState  // reused across Solve calls to keep allocation flat

	// Slab storage for normal forms. The replay search normalizes one fresh
	// expression per executed symbolic branch (each run rebuilds its path
	// condition), so entries and their vars slices are bump-allocated in
	// chunks. A chunk is dropped on growth and becomes collectible once the
	// cache has evicted the last entry pointing into it.
	entrySlab []normEntry
	intSlab   []int
}

// New returns a Solver with the given options.
func New(opts Options) *Solver {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = DefaultMaxNodes
	}
	if opts.MaxValuesPerVar <= 0 {
		opts.MaxValuesPerVar = DefaultMaxValuesPerVar
	}
	if opts.MaxWork <= 0 {
		opts.MaxWork = DefaultMaxWork
	}
	s := &Solver{
		opts:    opts,
		norm:    make([]normSlot, 1<<normTabBits),
		snorm:   make([]normSlot, 1<<structTabBits),
		hashTab: make([]hashSlot, 1<<hashTabBits),
	}
	s.st.solver = s
	s.st.slotOf = make(map[int]int32)
	return s
}

// pool recycles Solvers between searches. A Solver's cache tables are its
// dominant allocation, and the structurally-keyed level stays valid across
// searches (normal forms depend only on expression structure), so a recycled
// Solver starts its next search warm. Stale entries are at worst evicted.
var pool sync.Pool

// Get returns a Solver for the given options, recycling a pooled one when
// its options match (after default resolution). Recycled Solvers have their
// stats cleared; cache contents carry over by design.
func Get(opts Options) *Solver {
	eff := opts
	if eff.MaxNodes <= 0 {
		eff.MaxNodes = DefaultMaxNodes
	}
	if eff.MaxValuesPerVar <= 0 {
		eff.MaxValuesPerVar = DefaultMaxValuesPerVar
	}
	if eff.MaxWork <= 0 {
		eff.MaxWork = DefaultMaxWork
	}
	if v := pool.Get(); v != nil {
		s := v.(*Solver)
		if s.opts == eff {
			s.ResetStats()
			return s
		}
	}
	return New(opts)
}

// Put returns a Solver to the pool. The caller must not use it afterwards.
func Put(s *Solver) { pool.Put(s) }

// Stats returns a copy of the accumulated counters.
func (s *Solver) Stats() Stats { return s.stats }

// ResetStats clears the accumulated counters.
func (s *Solver) ResetStats() { s.stats = Stats{} }

// Domain describes the inclusive value range of one input variable.
type Domain struct {
	Lo, Hi int64
}

// VarDomain binds one variable ID to its domain.
type VarDomain struct {
	ID     int
	Lo, Hi int64
}

// Problem is one satisfiability query: a conjunction of constraints, the
// domains of the variables they mention, and a seed assignment (typically the
// concrete input of the run that produced the constraints). Domains must not
// repeat an ID; callers conventionally keep it ID-sorted (a slice rather
// than a map because solving is the replay search's inner loop).
type Problem struct {
	Constraints []sym.Constraint
	Domains     []VarDomain
	Seed        sym.MapAssignment
}

// Solve searches for an assignment satisfying every constraint. Variables not
// mentioned by any constraint keep their seed value. The returned assignment
// is complete for all variables in p.Domains. ok is false when the problem is
// unsatisfiable or the search budget was exhausted.
func (s *Solver) Solve(p Problem) (asn sym.MapAssignment, ok bool) {
	s.stats.Calls++

	// Fast path: the seed may already satisfy the conjunction (frequent when
	// only one negated constraint was appended and it is loose). Constraints
	// are checked through their cached normal forms — equivalent to
	// evaluating the original expressions, several times cheaper.
	seedAsn := make(sym.MapAssignment, len(p.Domains))
	for _, d := range p.Domains {
		v := p.Seed[d.ID]
		if v < d.Lo {
			v = d.Lo
		}
		if v > d.Hi {
			v = d.Hi
		}
		seedAsn[d.ID] = v
	}
	// Each constraint's normal form is looked up once per call and reused by
	// the seed check, the atom build and the final verification.
	nes := s.neBuf[:0]
	for _, c := range p.Constraints {
		nes = append(nes, s.normalized(c))
	}
	s.neBuf = nes

	seedHolds := true
	for i, c := range p.Constraints {
		if !evalNorm(nes[i], c, seedAsn) {
			seedHolds = false
			break
		}
	}
	if seedHolds {
		s.stats.Sat++
		return seedAsn, true
	}

	st := &s.st
	st.reset()
	for _, d := range p.Domains {
		st.addSlot(d.ID, interval{lo: d.Lo, hi: d.Hi}, seedAsn[d.ID], true)
	}

	// Build the atoms.
	for i, c := range p.Constraints {
		ne := nes[i]
		s.stats.Atoms++
		if !ne.linear {
			s.stats.Fallbacks++
		}
		st.addAtom(c, ne)
	}

	if !st.propagateAll() {
		s.stats.Unsat++
		return nil, false
	}

	// Order variables: most-constrained (smallest domain) first, ties by ID
	// for determinism.
	vars := st.order[:0]
	for slot := range st.doms {
		if len(st.varAtoms[slot]) > 0 {
			vars = append(vars, int32(slot))
		}
	}
	st.order = vars
	sort.Slice(vars, func(i, j int) bool {
		wi := st.doms[vars[i]].width()
		wj := st.doms[vars[j]].width()
		if wi != wj {
			return wi < wj
		}
		return st.idOf[vars[i]] < st.idOf[vars[j]]
	})

	if !st.search(vars, 0) {
		s.stats.Unsat++
		return nil, false
	}

	// Assemble the full assignment: searched vars from the solution, the
	// rest from the seed.
	out := make(sym.MapAssignment, len(p.Domains))
	for id, v := range seedAsn {
		out[id] = v
	}
	for _, slot := range vars {
		out[st.idOf[slot]] = st.asnVal[slot]
	}
	for i, c := range p.Constraints {
		if !evalNorm(nes[i], c, out) {
			// Paranoia: search produced a candidate the evaluator rejects.
			// Treat as unsat rather than returning a wrong input.
			s.stats.Unsat++
			return nil, false
		}
	}
	s.stats.Sat++
	return out, true
}

// evalNorm decides one constraint under an assignment via its normal form.
// Linearized constraints evaluate their two sides directly (exact under
// wraparound: linearization only rewrites ring operations); fallbacks walk
// the original expression.
func evalNorm(ne *normEntry, c sym.Constraint, asn sym.Assignment) bool {
	if ne.hasEval {
		l := ne.lc
		for _, t := range ne.lform {
			l += t.coeff * asn.Value(t.v)
		}
		r := ne.rc
		for _, t := range ne.rform {
			r += t.coeff * asn.Value(t.v)
		}
		return holdsRel(ne.r, l, r)
	}
	return c.Holds(asn)
}

// --- atoms -----------------------------------------------------------------

// rel is the relation of a linear atom: sum(terms) + c REL 0.
type rel int

const (
	relEQ rel = iota
	relNE
	relLT
	relLE
	relGT
	relGE
)

// String implements fmt.Stringer.
func (r rel) String() string {
	return [...]string{"==", "!=", "<", "<=", ">", ">="}[r]
}

type term struct {
	v     int
	coeff int64
}

// normSlot is one direct-mapped cache line: expression nodes are immutable
// and shared, so node identity plus the asserted truth identifies a normal
// form exactly.
type normSlot struct {
	e     sym.Expr
	truth bool
	ne    *normEntry
}

// normEntry is the variable-ID-indexed normal form of one constraint, cached
// across Solve calls. When linear is true, terms (the combined lhs-rhs form)
// feeds bounds propagation. When hasEval is true the constraint can be
// decided by evaluating the two linear sides directly — exact even under
// wraparound, because linearization only rewrites ring operations (+, -,
// neg, mul-by-const), never the comparison itself.
type normEntry struct {
	linear  bool
	hasEval bool
	terms   []term // combined lhs-rhs, zero coefficients dropped, sorted by v
	c       int64
	r       rel    // relation with the constraint's truth folded in
	lform   []term // lhs linear form
	lc      int64
	rform   []term // rhs linear form
	rc      int64
	vars    []int // all variable IDs of the expression, sorted
	size    int32 // sym.Size of the original expression (work accounting)
}

// normalized returns the cached normal form of c, computing it on a miss.
// The first level hashes the expression's node identity (Fibonacci mixing of
// the pointer) — a hit is free and covers the re-solved path prefixes within
// one run. The second level hashes the expression's structure, so the
// node-for-node rebuilt expressions of later runs of the same search reuse
// the first run's normal forms instead of re-linearizing (a normEntry is a
// pure function of structure and truth, so sharing one across
// pointer-distinct but structurally equal expressions is exact). In both
// tables the truth folds into the low bit so the two polarities of one
// expression coexist; a colliding entry is simply evicted.
func (s *Solver) normalized(c sym.Constraint) *normEntry {
	h := uint64(reflect.ValueOf(c.E).Pointer()) * fibMix
	idx := (h >> (64 - normTabBits)) &^ 1
	if c.Truth {
		idx |= 1
	}
	slot := &s.norm[idx]
	if slot.e == c.E && slot.truth == c.Truth {
		return slot.ne
	}
	sidx := (s.structHash(c.E) >> (64 - structTabBits)) &^ 1
	if c.Truth {
		sidx |= 1
	}
	sslot := &s.snorm[sidx]
	if sslot.ne != nil && sslot.truth == c.Truth && structEq(sslot.e, c.E) {
		// Re-key the slot to the newest expression: its subtrees are shared
		// with the rest of this run's constraints, so later structEq walks
		// can short-circuit on pointer equality.
		sslot.e = c.E
		slot.e, slot.truth, slot.ne = c.E, c.Truth, sslot.ne
		return sslot.ne
	}
	ne := s.normalize(c)
	slot.e, slot.truth, slot.ne = c.E, c.Truth, ne
	sslot.e, sslot.truth, sslot.ne = c.E, c.Truth, ne
	return ne
}

const fibMix = 0x9E3779B97F4A7C15

// hashSlot is one line of the structural-hash memo: expression nodes are
// immutable, so a node's structural hash never changes once computed.
type hashSlot struct {
	e sym.Expr
	h uint64
}

// structHash returns a hash of the expression's structure (operators, shape,
// constants, input IDs) — equal for the node-for-node rebuilt expressions of
// different runs. Interior nodes memoize through a pointer-keyed table:
// constraints within one run share their subtrees, so each node is walked
// once per run, not once per constraint mentioning it.
func (s *Solver) structHash(e sym.Expr) uint64 {
	switch x := e.(type) {
	case *sym.Const:
		return (uint64(x.V) ^ 0xC0) * fibMix
	case *sym.Input:
		return (uint64(x.ID) ^ 0x1A) * fibMix
	case *sym.Un:
		p := uint64(reflect.ValueOf(e).Pointer()) * fibMix
		hs := &s.hashTab[p>>(64-hashTabBits)]
		if hs.e == e {
			return hs.h
		}
		h := (s.structHash(x.X) + uint64(x.Op) + 1) * fibMix
		hs.e, hs.h = e, h
		return h
	case *sym.Bin:
		p := uint64(reflect.ValueOf(e).Pointer()) * fibMix
		hs := &s.hashTab[p>>(64-hashTabBits)]
		if hs.e == e {
			return hs.h
		}
		h := (s.structHash(x.L)*3 + s.structHash(x.R) + uint64(x.Op)) * fibMix
		hs.e, hs.h = e, h
		return h
	}
	return fibMix
}

// structEq reports whether two expressions are structurally identical.
// Shared subtrees short-circuit on pointer equality.
func structEq(a, b sym.Expr) bool {
	if a == b {
		return true
	}
	switch x := a.(type) {
	case *sym.Const:
		y, ok := b.(*sym.Const)
		return ok && x.V == y.V
	case *sym.Input:
		y, ok := b.(*sym.Input)
		return ok && x.ID == y.ID
	case *sym.Un:
		y, ok := b.(*sym.Un)
		return ok && x.Op == y.Op && structEq(x.X, y.X)
	case *sym.Bin:
		y, ok := b.(*sym.Bin)
		return ok && x.Op == y.Op && structEq(x.L, y.L) && structEq(x.R, y.R)
	}
	return false
}

// newEntry bump-allocates one normEntry from the slab.
func (s *Solver) newEntry() *normEntry {
	if len(s.entrySlab) == cap(s.entrySlab) {
		s.entrySlab = make([]normEntry, 0, 512)
	}
	s.entrySlab = s.entrySlab[:len(s.entrySlab)+1]
	return &s.entrySlab[len(s.entrySlab)-1]
}

// ints bump-allocates an n-int slice from the slab.
func (s *Solver) ints(n int) []int {
	if cap(s.intSlab)-len(s.intSlab) < n {
		size := 4096
		if n > size {
			size = n
		}
		s.intSlab = make([]int, 0, size)
	}
	l := len(s.intSlab)
	s.intSlab = s.intSlab[:l+n]
	return s.intSlab[l : l+n : l+n]
}

// normalize converts a constraint to its normal form, linearizing when
// possible.
func (s *Solver) normalize(c sym.Constraint) *normEntry {
	buf := sym.AppendVarIDs(c.E, s.varBuf[:0])
	sort.Ints(buf)
	u := 0
	for i, v := range buf {
		if i == 0 || v != buf[i-1] {
			buf[u] = v
			u++
		}
	}
	s.varBuf = buf
	vars := s.ints(u)
	copy(vars, buf[:u])
	ne := s.newEntry()
	ne.vars, ne.size = vars, int32(sym.Size(c.E))

	lhs, rhs, r, cmp := splitComparison(c.E)
	if cmp {
		lt, lok := linearize(lhs)
		rt, rok := linearize(rhs)
		if lok && rok {
			if !c.Truth {
				r = negateRel(r)
			}
			diff := lt.combine(rt, true)
			ne.hasEval = true
			ne.r = r
			ne.lform, ne.lc = lt.terms, lt.c
			ne.rform, ne.rc = rt.terms, rt.c
			ne.terms, ne.c = diff.terms, diff.c
			// A combined form with no terms is constant after linearization;
			// it cannot drive propagation, so it stays a fallback (though
			// still decided by direct evaluation).
			ne.linear = len(ne.terms) > 0
			return ne
		}
	}
	// Truthness of a non-comparison expression: e != 0 (Truth) or e == 0.
	if lt, lok := linearize(c.E); lok {
		r := relNE
		if !c.Truth {
			r = relEQ
		}
		ne.hasEval = true
		ne.r = r
		ne.lform, ne.lc = lt.terms, lt.c
		ne.terms, ne.c = lt.terms, lt.c
		ne.linear = len(ne.terms) > 0
		return ne
	}
	return ne
}

// splitComparison decomposes a top-level comparison into lhs REL rhs.
func splitComparison(e sym.Expr) (lhs, rhs sym.Expr, r rel, ok bool) {
	switch x := e.(type) {
	case *sym.Bin:
		switch x.Op {
		case sym.OpEq:
			return x.L, x.R, relEQ, true
		case sym.OpNe:
			return x.L, x.R, relNE, true
		case sym.OpLt:
			return x.L, x.R, relLT, true
		case sym.OpLe:
			return x.L, x.R, relLE, true
		case sym.OpGt:
			return x.L, x.R, relGT, true
		case sym.OpGe:
			return x.L, x.R, relGE, true
		}
	case *sym.Un:
		switch x.Op {
		case sym.OpNot:
			// !(e): swap truth by comparing e == 0.
			return x.X, sym.Zero, relEQ, true
		case sym.OpBool:
			return x.X, sym.Zero, relNE, true
		}
	}
	return nil, nil, 0, false
}

func negateRel(r rel) rel {
	switch r {
	case relEQ:
		return relNE
	case relNE:
		return relEQ
	case relLT:
		return relGE
	case relLE:
		return relGT
	case relGT:
		return relLE
	case relGE:
		return relLT
	}
	panic(fmt.Sprintf("solver: bad rel %d", r))
}

// linTerm is a linear combination of variables plus a constant. Terms are
// sorted by variable ID and carry no zero coefficients; each linTerm owns
// its slice, so in-place negation and scaling are safe.
type linTerm struct {
	terms []term
	c     int64
}

// combine returns t + o (or t - o when sub), merging the sorted term lists
// and dropping coefficients that cancel.
func (t linTerm) combine(o linTerm, sub bool) linTerm {
	out := linTerm{terms: make([]term, 0, len(t.terms)+len(o.terms))}
	if sub {
		out.c = t.c - o.c
	} else {
		out.c = t.c + o.c
	}
	i, j := 0, 0
	for i < len(t.terms) && j < len(o.terms) {
		a, b := t.terms[i], o.terms[j]
		switch {
		case a.v < b.v:
			out.terms = append(out.terms, a)
			i++
		case a.v > b.v:
			if sub {
				b.coeff = -b.coeff
			}
			out.terms = append(out.terms, b)
			j++
		default:
			co := a.coeff + b.coeff
			if sub {
				co = a.coeff - b.coeff
			}
			if co != 0 {
				out.terms = append(out.terms, term{v: a.v, coeff: co})
			}
			i++
			j++
		}
	}
	out.terms = append(out.terms, t.terms[i:]...)
	for ; j < len(o.terms); j++ {
		b := o.terms[j]
		if sub {
			b.coeff = -b.coeff
		}
		out.terms = append(out.terms, b)
	}
	return out
}

// linearize attempts to express e as a linear combination of inputs.
func linearize(e sym.Expr) (linTerm, bool) {
	switch x := e.(type) {
	case *sym.Const:
		return linTerm{c: x.V}, true
	case *sym.Input:
		return linTerm{terms: []term{{v: x.ID, coeff: 1}}}, true
	case *sym.Un:
		if x.Op == sym.OpNeg {
			if t, ok := linearize(x.X); ok {
				for i := range t.terms {
					t.terms[i].coeff = -t.terms[i].coeff
				}
				t.c = -t.c
				return t, true
			}
		}
		return linTerm{}, false
	case *sym.Bin:
		switch x.Op {
		case sym.OpAdd, sym.OpSub:
			lt, lok := linearize(x.L)
			rt, rok := linearize(x.R)
			if !lok || !rok {
				return linTerm{}, false
			}
			return lt.combine(rt, x.Op == sym.OpSub), true
		case sym.OpMul:
			// Linear only when one side is constant.
			if cv, ok := sym.IsConst(x.L); ok {
				if t, tok := linearize(x.R); tok {
					return t.scale(cv), true
				}
			}
			if cv, ok := sym.IsConst(x.R); ok {
				if t, tok := linearize(x.L); tok {
					return t.scale(cv), true
				}
			}
		}
	}
	return linTerm{}, false
}

// scale multiplies the form by k in place (the receiver owns its terms).
// Scaling by zero cancels every term; constant folding upstream makes that
// unreachable in practice, but the filter keeps the no-zero invariant.
func (t linTerm) scale(k int64) linTerm {
	out := linTerm{terms: t.terms[:0], c: t.c * k}
	for _, u := range t.terms {
		if co := u.coeff * k; co != 0 {
			out.terms = append(out.terms, term{v: u.v, coeff: co})
		}
	}
	return out
}
