package intake

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"pathlog/internal/corpus"
	"pathlog/internal/obs"
	"pathlog/internal/replay"
	"pathlog/internal/store"
)

// Defaults for Config fields left zero.
const (
	DefaultQueueSize = 64
	DefaultWorkers   = 2
	DefaultMaxBody   = 1 << 20
)

// Config shapes an intake server.
type Config struct {
	// Dir is the intake directory: the journal and the stored report
	// buckets live under it.
	Dir string
	// Store is the plan store the ingest trust boundary validates stamps
	// against and GET /plan serves chain heads from.
	Store *store.Store
	// QueueSize bounds the ingest queue; a full queue answers 429 +
	// Retry-After instead of growing without bound (zero selects
	// DefaultQueueSize).
	QueueSize int
	// Workers is the number of ingest workers draining the queue (zero
	// selects DefaultWorkers).
	Workers int
	// MaxBody caps the POSTed envelope size in bytes (zero selects
	// DefaultMaxBody).
	MaxBody int64
	// RateBurst and RatePerSecond configure the per-signature token
	// bucket: each signature may burst RateBurst reports, refilled at
	// RatePerSecond. RateBurst zero disables rate limiting. Throttled
	// reports are counted but neither stored nor journaled.
	RateBurst     int
	RatePerSecond float64
	// Now overrides the clock (tests and deterministic experiments);
	// nil selects time.Now.
	Now func() time.Time
	// Obs supplies the observability substrate: the registry the ingest
	// counters and histograms live in (nil creates a private one, so GET
	// /metrics always works) and the tracer POST /report spans are
	// recorded to (nil records nothing but still propagates IDs).
	Obs *obs.Observer
	// Pprof, when set, mounts net/http/pprof under /debug/pprof — opt-in
	// because the profiling surface has no business on an internet-facing
	// ingest port by default.
	Pprof bool
}

// Metrics is the counter snapshot GET /metrics serves.
type Metrics struct {
	// Accepted counts reports taken in: Stored + Deduped.
	Accepted int64 `json:"accepted"`
	// Stored counts unique signatures with a report file on disk.
	Stored int64 `json:"stored"`
	// Deduped counts accepted reports that were duplicates of a stored one.
	Deduped int64 `json:"deduped"`
	// Refused counts reports turned away at the trust boundary (malformed,
	// embedded plan, unknown stamp, wrong program).
	Refused int64 `json:"refused"`
	// Throttled counts requests shed by backpressure or rate limiting.
	Throttled      int64           `json:"throttled"`
	QueueDepth     int             `json:"queue_depth"`
	QueueCapacity  int             `json:"queue_capacity"`
	JournalRecords int64           `json:"journal_records"`
	JournalBytes   int64           `json:"journal_bytes"`
	Buckets        []BucketMetrics `json:"buckets,omitempty"`
}

// BucketMetrics is one (program hash, plan fingerprint, generation)
// bucket's row in the metrics snapshot.
type BucketMetrics struct {
	ProgHash    string `json:"prog_hash"`
	Fingerprint string `json:"plan_fingerprint"`
	Generation  int    `json:"generation"`
	Stored      int64  `json:"stored"`
	Accepted    int64  `json:"accepted"`
}

// Server is an intake service instance. Create one with New (which replays
// the journal), expose Handler over any listener or call Serve, and stop
// it with Shutdown — Shutdown drains in-flight requests before closing the
// journal, so a SIGTERM loses nothing.
type Server struct {
	cfg   Config
	queue chan task
	wg    sync.WaitGroup

	mu      sync.Mutex
	journal *journal
	seen    map[string]*sigState
	buckets map[bucketKey]*bucketState
	limits  map[string]*tokenBucket

	// Counters live in the obs registry (every mutation happens under
	// s.mu, so a snapshot taken under s.mu is a single consistent pass);
	// the Metrics struct is reconstructed from them on demand.
	reg        *obs.Registry
	tracer     *obs.Tracer
	cAccepted  *obs.Counter
	cStored    *obs.Counter
	cDeduped   *obs.Counter
	cRefused   *obs.Counter
	cThrottled *obs.Counter
	gQueue     *obs.Gauge
	gQueueCap  *obs.Gauge
	gJournalN  *obs.Gauge
	gJournalB  *obs.Gauge
	hIngestNS  *obs.Histogram

	httpMu   sync.Mutex
	httpSrv  *http.Server
	shutOnce sync.Once
	shutErr  error
}

type task struct {
	data  []byte
	reply chan response
}

type response struct {
	status     int
	body       string
	retryAfter int // seconds; set on 429
}

type bucketKey struct {
	prog string
	fp   string
	gen  int
}

type sigState struct {
	count  int64
	bucket bucketKey
}

type bucketState struct {
	stored   int64
	accepted int64
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// New opens (creating if needed) the intake directory, replays the journal
// to rebuild the dedupe table and counters, and starts the ingest workers.
func New(cfg Config) (*Server, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("intake: no directory configured")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("intake: no plan store configured")
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = DefaultQueueSize
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = DefaultMaxBody
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "reports"), 0o755); err != nil {
		return nil, fmt.Errorf("intake: open %s: %w", cfg.Dir, err)
	}
	j, records, err := openJournal(filepath.Join(cfg.Dir, JournalName))
	if err != nil {
		return nil, err
	}
	reg := cfg.Obs.Registry()
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		cfg:        cfg,
		queue:      make(chan task, cfg.QueueSize),
		journal:    j,
		seen:       make(map[string]*sigState),
		buckets:    make(map[bucketKey]*bucketState),
		limits:     make(map[string]*tokenBucket),
		reg:        reg,
		tracer:     cfg.Obs.Tracer(),
		cAccepted:  reg.Counter("pathlog_intake_accepted_total"),
		cStored:    reg.Counter("pathlog_intake_stored_total"),
		cDeduped:   reg.Counter("pathlog_intake_deduped_total"),
		cRefused:   reg.Counter("pathlog_intake_refused_total"),
		cThrottled: reg.Counter("pathlog_intake_throttled_total"),
		gQueue:     reg.Gauge("pathlog_intake_queue_depth"),
		gQueueCap:  reg.Gauge("pathlog_intake_queue_capacity"),
		gJournalN:  reg.Gauge("pathlog_intake_journal_records"),
		gJournalB:  reg.Gauge("pathlog_intake_journal_bytes"),
		hIngestNS:  reg.Histogram("pathlog_intake_ingest_ns", obs.ExpBuckets(1000, 4, 14)),
	}
	s.gQueueCap.Set(int64(cfg.QueueSize))
	for _, rec := range records {
		s.replayRecord(rec)
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// replayRecord applies one journal record to the in-memory state, exactly
// as the live ingest path would have: this is what makes restart counters
// match a run that never crashed.
func (s *Server) replayRecord(rec Record) {
	switch rec.Event {
	case EventAccepted:
		key := bucketKey{prog: rec.Prog, fp: rec.Plan, gen: rec.Gen}
		s.seen[rec.Sig] = &sigState{count: 1, bucket: key}
		s.bucket(key).stored++
		s.bucket(key).accepted++
		s.cStored.Inc()
		s.cAccepted.Inc()
	case EventDuplicate:
		if st := s.seen[rec.Sig]; st != nil {
			st.count++
			s.bucket(st.bucket).accepted++
		}
		s.cDeduped.Inc()
		s.cAccepted.Inc()
	case EventRefused:
		s.cRefused.Inc()
	}
}

func (s *Server) bucket(key bucketKey) *bucketState {
	b := s.buckets[key]
	if b == nil {
		b = &bucketState{}
		s.buckets[key] = b
	}
	return b
}

// Handler returns the service's HTTP surface: POST /report, GET
// /plan/{proghash}, GET /metrics, GET /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /report", s.handleReport)
	mux.HandleFunc("GET /plan/{proghash}", s.handlePlan)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	if s.cfg.Pprof {
		obs.MountPprof(mux)
	}
	return mux
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	// One ingest span per report, parented under whatever span the site
	// propagated in the trace header — this is the trust boundary the
	// span tree crosses between tune and pathlogd.
	start := time.Now()
	ctx := obs.Extract(r.Context(), r.Header)
	_, span := s.tracer.StartSpan(ctx, "intake.ingest")
	defer func() {
		s.hIngestNS.Observe(float64(time.Since(start).Nanoseconds()))
		span.End()
	}()
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		span.SetAttr("outcome", "bad-body")
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("report body exceeds %d bytes", s.cfg.MaxBody), http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, "read report body: "+err.Error(), http.StatusBadRequest)
		return
	}
	t := task{data: data, reply: make(chan response, 1)}
	select {
	case s.queue <- t:
	default:
		// Bounded-queue backpressure: shed the request now rather than
		// queueing without bound; the site retries after a beat.
		s.mu.Lock()
		s.cThrottled.Inc()
		s.mu.Unlock()
		span.SetAttr("outcome", "queue-full")
		w.Header().Set("Retry-After", "1")
		http.Error(w, "ingest queue full", http.StatusTooManyRequests)
		return
	}
	resp := <-t.reply
	span.SetAttr("status", strconv.Itoa(resp.status))
	if resp.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(resp.retryAfter))
	}
	w.WriteHeader(resp.status)
	io.WriteString(w, resp.body)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	progHash := r.PathValue("proghash")
	plan, err := s.cfg.Store.ChainHead(progHash)
	if errors.Is(err, store.ErrPlanNotFound) {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	data, err := plan.Encode()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// handleMetrics serves the Prometheus text format by default and the
// legacy JSON snapshot behind Accept: application/json. Both render from
// one snapshot taken under s.mu — every counter mutation happens under
// that lock, so concurrent scrapes can never observe a torn set where,
// say, accepted has advanced but stored+deduped has not.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsJSON(r.Header.Get("Accept")) {
		data, err := json.MarshalIndent(s.Metrics(), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		return
	}
	snap := s.snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w, snap)
}

// wantsJSON implements the exposition content negotiation: only an
// explicit application/json (or +json) Accept selects the legacy JSON.
func wantsJSON(accept string) bool { return obs.WantsJSON(accept) }

// snapshot freezes gauge state and captures the registry in one pass
// under s.mu (the lock every counter mutation holds).
func (s *Server) snapshot() obs.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	records, bytes := s.journal.stats()
	s.gQueue.Set(int64(len(s.queue)))
	s.gJournalN.Set(records)
	s.gJournalB.Set(bytes)
	return s.reg.Snapshot()
}

// Metrics snapshots the counters, queue depth and per-bucket tallies.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	records, bytes := s.journal.stats()
	m := Metrics{
		Accepted:       s.cAccepted.Value(),
		Stored:         s.cStored.Value(),
		Deduped:        s.cDeduped.Value(),
		Refused:        s.cRefused.Value(),
		Throttled:      s.cThrottled.Value(),
		QueueDepth:     len(s.queue),
		QueueCapacity:  s.cfg.QueueSize,
		JournalRecords: records,
		JournalBytes:   bytes,
	}
	for key, b := range s.buckets {
		m.Buckets = append(m.Buckets, BucketMetrics{
			ProgHash:    key.prog,
			Fingerprint: key.fp,
			Generation:  key.gen,
			Stored:      b.stored,
			Accepted:    b.accepted,
		})
	}
	sort.Slice(m.Buckets, func(i, j int) bool {
		a, b := m.Buckets[i], m.Buckets[j]
		if a.ProgHash != b.ProgHash {
			return a.ProgHash < b.ProgHash
		}
		if a.Generation != b.Generation {
			return a.Generation < b.Generation
		}
		return a.Fingerprint < b.Fingerprint
	})
	return m
}

func (s *Server) worker() {
	defer s.wg.Done()
	for t := range s.queue {
		t.reply <- s.process(t.data)
	}
}

// process runs one report through the ingest pipeline: decode, trust
// boundary, rate limit, dedupe, store, journal.
func (s *Server) process(data []byte) response {
	rec, err := replay.DecodeRecording(data)
	if err != nil {
		return s.refuse("", bucketKey{}, "malformed envelope: "+err.Error(), http.StatusBadRequest)
	}
	if rec.Plan != nil {
		// Version 1/2 envelopes always embed their plan; the intake path is
		// stamped-only by design (the plan's identity is the store's to
		// resolve, not the report's to assert).
		return s.refuse("", bucketKey{}, "embedded-plan envelope (intake accepts stamped-only version-3 references)", http.StatusForbidden)
	}
	if rec.ProgHash == "" {
		return s.refuse("", bucketKey{}, "envelope carries no program hash", http.StatusForbidden)
	}
	sig := corpus.Signature(rec)
	if retry, ok := s.allow(sig); !ok {
		s.mu.Lock()
		s.cThrottled.Inc()
		s.mu.Unlock()
		return response{
			status:     http.StatusTooManyRequests,
			body:       fmt.Sprintf("signature %s rate limited\n", sig),
			retryAfter: retry,
		}
	}
	plan, err := s.cfg.Store.GetPlan(rec.Fingerprint)
	if errors.Is(err, store.ErrPlanNotFound) {
		return s.refuse(sig, bucketKey{prog: rec.ProgHash, fp: rec.Fingerprint},
			fmt.Sprintf("unknown-stamp: fingerprint %s matches no retained plan", rec.Fingerprint), http.StatusForbidden)
	}
	if err != nil {
		return s.refuse(sig, bucketKey{prog: rec.ProgHash, fp: rec.Fingerprint},
			"resolve stamp: "+err.Error(), http.StatusForbidden)
	}
	if rec.ProgHash != plan.ProgHash {
		return s.refuse(sig, bucketKey{prog: rec.ProgHash, fp: rec.Fingerprint},
			fmt.Sprintf("wrong-program: envelope names program %s, plan %s is retained for %s",
				rec.ProgHash, rec.Fingerprint, plan.ProgHash), http.StatusForbidden)
	}
	key := bucketKey{prog: plan.ProgHash, fp: rec.Fingerprint, gen: plan.Generation}
	now := s.cfg.Now().Unix()

	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.seen[sig]; st != nil {
		st.count++
		s.bucket(st.bucket).accepted++
		s.cDeduped.Inc()
		s.cAccepted.Inc()
		if err := s.journal.append(Record{
			TimeUnix: now, Event: EventDuplicate, Sig: sig,
			Prog: key.prog, Plan: key.fp, Gen: key.gen,
		}); err != nil {
			return response{status: http.StatusInternalServerError, body: err.Error() + "\n"}
		}
		return response{status: http.StatusOK, body: fmt.Sprintf("duplicate of %s (count %d)\n", sig, st.count)}
	}
	// New signature: store the verbatim POSTed bytes first, journal second.
	// If a crash lands between the two, the file exists with no accepted
	// record — the signature stays unseen, and a retry rewrites the same
	// bytes to the same name, so recovery is idempotent.
	path := s.reportPath(key, sig)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return response{status: http.StatusInternalServerError, body: err.Error() + "\n"}
	}
	if err := writeFileAtomic(path, data); err != nil {
		return response{status: http.StatusInternalServerError, body: err.Error() + "\n"}
	}
	s.seen[sig] = &sigState{count: 1, bucket: key}
	s.bucket(key).stored++
	s.bucket(key).accepted++
	s.cStored.Inc()
	s.cAccepted.Inc()
	if err := s.journal.append(Record{
		TimeUnix: now, Event: EventAccepted, Sig: sig,
		Prog: key.prog, Plan: key.fp, Gen: key.gen,
	}); err != nil {
		return response{status: http.StatusInternalServerError, body: err.Error() + "\n"}
	}
	return response{status: http.StatusCreated, body: fmt.Sprintf("accepted %s\n", sig)}
}

// refuse journals and counts a trust-boundary refusal, naming the reason.
func (s *Server) refuse(sig string, key bucketKey, reason string, status int) response {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cRefused.Inc()
	if err := s.journal.append(Record{
		TimeUnix: s.cfg.Now().Unix(), Event: EventRefused, Sig: sig,
		Prog: key.prog, Plan: key.fp, Reason: reason,
	}); err != nil {
		return response{status: http.StatusInternalServerError, body: err.Error() + "\n"}
	}
	return response{status: status, body: "refused: " + reason + "\n"}
}

// allow takes one token from the signature's bucket, reporting a
// Retry-After hint when the bucket is dry. RateBurst zero disables
// limiting.
func (s *Server) allow(sig string) (retryAfter int, ok bool) {
	if s.cfg.RateBurst <= 0 {
		return 0, true
	}
	now := s.cfg.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	tb := s.limits[sig]
	if tb == nil {
		tb = &tokenBucket{tokens: float64(s.cfg.RateBurst), last: now}
		s.limits[sig] = tb
	}
	if s.cfg.RatePerSecond > 0 {
		tb.tokens += now.Sub(tb.last).Seconds() * s.cfg.RatePerSecond
		if tb.tokens > float64(s.cfg.RateBurst) {
			tb.tokens = float64(s.cfg.RateBurst)
		}
	}
	tb.last = now
	if tb.tokens >= 1 {
		tb.tokens--
		return 0, true
	}
	if s.cfg.RatePerSecond <= 0 {
		return 1, false
	}
	return int(math.Ceil((1 - tb.tokens) / s.cfg.RatePerSecond)), false
}

func (s *Server) reportPath(key bucketKey, sig string) string {
	return filepath.Join(s.cfg.Dir, "reports", key.prog, key.fp, sig+".report")
}

// writeFileAtomic writes data next to path and renames it into place
// (mirroring the plan store's crash-safety discipline).
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Serve runs the service on ln until Shutdown. It returns nil after a
// clean Shutdown.
func (s *Server) Serve(ln net.Listener) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       time.Minute,
	}
	s.httpMu.Lock()
	s.httpSrv = srv
	s.httpMu.Unlock()
	err := srv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the service: stop accepting requests, let in-flight
// handlers and queued reports finish, then close the journal. Safe to call
// once whether or not Serve was used; this is the SIGTERM path, and a
// drained shutdown journals every report that was ever acknowledged.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutOnce.Do(func() {
		s.httpMu.Lock()
		srv := s.httpSrv
		s.httpMu.Unlock()
		if srv != nil {
			s.shutErr = srv.Shutdown(ctx)
		}
		close(s.queue)
		s.wg.Wait()
		if err := s.journal.close(); s.shutErr == nil {
			s.shutErr = err
		}
	})
	return s.shutErr
}
