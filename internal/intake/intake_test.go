package intake

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"pathlog/internal/corpus"
	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/replay"
	"pathlog/internal/store"
	"pathlog/internal/trace"
	"pathlog/internal/vm"
)

const (
	fixedProgHash = "00112233445566778899aabbccddeeff"
	otherProgHash = "ffeeddccbbaa99887766554433221100"
)

func testPlan() *instrument.Plan {
	return &instrument.Plan{
		Strategy:     "dynamic",
		Instrumented: map[lang.BranchID]bool{1: true, 4: true},
		ProgHash:     fixedProgHash,
	}
}

func testChild() *instrument.Plan {
	p := testPlan()
	return &instrument.Plan{
		Strategy:     "refine(dynamic,gen1,+b7)",
		Instrumented: map[lang.BranchID]bool{1: true, 4: true, 7: true},
		ProgHash:     fixedProgHash,
		Generation:   1,
		Parent:       p.Fingerprint(),
	}
}

// testRec builds a recording under the retained plan; bits and line are
// the identity knobs (different values → different signatures).
func testRec(plan *instrument.Plan, bits byte, line int) *replay.Recording {
	return &replay.Recording{
		Plan:        plan,
		Trace:       trace.FromBytes([]byte{bits}, 6),
		Crash:       vm.CrashInfo{Kind: vm.CrashKind(1), Pos: lang.Pos{Unit: "u.mc", Line: line, Col: 2}, Code: 7},
		Fingerprint: plan.Fingerprint(),
		ProgHash:    plan.ProgHash,
	}
}

func encodeRef(t *testing.T, rec *replay.Recording) []byte {
	t.Helper()
	data, err := rec.EncodeRef()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// fakeClock is a deterministic, manually advanced time source.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0).UTC()}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// newTestServer opens a store with the golden plan retained and an intake
// server over it.
func newTestServer(t *testing.T, dir string, clock *fakeClock) (*Server, *store.Store) {
	t.Helper()
	st, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutPlan(testPlan()); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Dir: filepath.Join(dir, "intake"), Store: st, Now: clock.Now})
	if err != nil {
		t.Fatal(err)
	}
	return s, st
}

func post(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/report", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestIntakeAcceptDedupeRefuse(t *testing.T) {
	clock := newFakeClock()
	s, _ := newTestServer(t, t.TempDir(), clock)
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	plan := testPlan()
	a := encodeRef(t, testRec(plan, 0b101, 10))
	b := encodeRef(t, testRec(plan, 0b111, 20))

	if resp := post(t, ts.URL, a); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first report: status %d, want 201", resp.StatusCode)
	}
	for i := 0; i < 3; i++ {
		clock.Advance(time.Second)
		if resp := post(t, ts.URL, a); resp.StatusCode != http.StatusOK {
			t.Fatalf("duplicate %d: status %d, want 200", i, resp.StatusCode)
		}
	}
	if resp := post(t, ts.URL, b); resp.StatusCode != http.StatusCreated {
		t.Fatalf("second report: status %d, want 201", resp.StatusCode)
	}

	// Unknown stamp: a plan the store never retained.
	unknown := testChild()
	if resp := post(t, ts.URL, encodeRef(t, testRec(unknown, 0b001, 30))); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unknown stamp: status %d, want 403", resp.StatusCode)
	}
	// Wrong program: the stamp resolves but the envelope names another
	// program.
	wrong := testRec(plan, 0b101, 10)
	wrong.ProgHash = otherProgHash
	if resp := post(t, ts.URL, encodeRef(t, wrong)); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("wrong program: status %d, want 403", resp.StatusCode)
	}
	// Embedded-plan envelope (version 2): stamped-only is the contract.
	v2 := filepath.Join(t.TempDir(), "v2.report")
	if err := testRec(plan, 0b101, 10).Save(v2); err != nil {
		t.Fatal(err)
	}
	v2data, err := os.ReadFile(v2)
	if err != nil {
		t.Fatal(err)
	}
	if resp := post(t, ts.URL, v2data); resp.StatusCode != http.StatusForbidden {
		t.Fatalf("embedded plan: status %d, want 403", resp.StatusCode)
	}

	m := s.Metrics()
	if m.Accepted != 5 || m.Stored != 2 || m.Deduped != 3 || m.Refused != 3 {
		t.Fatalf("metrics: accepted %d stored %d deduped %d refused %d, want 5/2/3/3",
			m.Accepted, m.Stored, m.Deduped, m.Refused)
	}
	if len(m.Buckets) != 1 || m.Buckets[0].Fingerprint != plan.Fingerprint() || m.Buckets[0].Stored != 2 || m.Buckets[0].Accepted != 5 {
		t.Fatalf("bucket metrics: %+v", m.Buckets)
	}

	// The journal names every refusal.
	records, _, err := readJournal(filepath.Join(s.cfg.Dir, JournalName))
	if err != nil {
		t.Fatal(err)
	}
	var reasons []string
	for _, rec := range records {
		if rec.Event == EventRefused {
			reasons = append(reasons, rec.Reason)
		}
	}
	joined := strings.Join(reasons, "\n")
	if !strings.Contains(joined, unknown.Fingerprint()) {
		t.Errorf("refusals do not name the unknown fingerprint: %s", joined)
	}
	if !strings.Contains(joined, otherProgHash) {
		t.Errorf("refusals do not name the wrong program: %s", joined)
	}
	if !strings.Contains(joined, "embedded-plan") {
		t.Errorf("refusals do not name the embedded plan: %s", joined)
	}
}

// TestWireRoundTrip pins the wire identity satellite: bytes stored by the
// server are byte-identical to what the site POSTed, and the decoded
// envelope reproduces the content signature and plan stamp exactly.
func TestWireRoundTrip(t *testing.T) {
	clock := newFakeClock()
	s, _ := newTestServer(t, t.TempDir(), clock)
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	plan := testPlan()
	orig := testRec(plan, 0b101, 10)
	data := encodeRef(t, orig)
	if resp := post(t, ts.URL, data); resp.StatusCode != http.StatusCreated {
		t.Fatalf("post: status %d", resp.StatusCode)
	}

	sig := corpus.Signature(orig)
	stored := filepath.Join(s.cfg.Dir, "reports", fixedProgHash, plan.Fingerprint(), sig+".report")
	got, err := os.ReadFile(stored)
	if err != nil {
		t.Fatalf("stored report missing: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("stored bytes differ from POSTed bytes")
	}
	dec, err := replay.DecodeRecording(got)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Plan != nil {
		t.Errorf("decoded reference envelope has an embedded plan")
	}
	if corpus.Signature(dec) != sig {
		t.Errorf("signature changed across the wire: %s vs %s", corpus.Signature(dec), sig)
	}
	if dec.Fingerprint != plan.Fingerprint() || dec.ProgHash != fixedProgHash {
		t.Errorf("stamp changed across the wire: %s/%s", dec.Fingerprint, dec.ProgHash)
	}
}

// TestJournalCrashReplay pins the crash-recovery parity satellite: a
// restart over a journal with a torn final record rebuilds identical
// counters and an identical ingested corpus.
func TestJournalCrashReplay(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	s, st := newTestServer(t, dir, clock)
	ts := httptest.NewServer(s.Handler())

	plan := testPlan()
	a := encodeRef(t, testRec(plan, 0b101, 10))
	b := encodeRef(t, testRec(plan, 0b111, 20))
	post(t, ts.URL, a)
	for i := 0; i < 3; i++ {
		clock.Advance(time.Second)
		post(t, ts.URL, a)
	}
	post(t, ts.URL, b)

	want := s.Metrics()
	wantCorpus, wantInfo, err := Ingest(s.cfg.Dir, fixedProgHash, corpus.Options{HalfLife: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a torn, unterminated final record.
	jpath := filepath.Join(s.cfg.Dir, JournalName)
	f, err := os.OpenFile(jpath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":99,"time_un`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := New(Config{Dir: s.cfg.Dir, Store: st, Now: clock.Now})
	if err != nil {
		t.Fatalf("restart over torn journal: %v", err)
	}
	defer s2.Shutdown(context.Background())
	got := s2.Metrics()
	if got.Accepted != want.Accepted || got.Stored != want.Stored ||
		got.Deduped != want.Deduped || got.Refused != want.Refused {
		t.Fatalf("restart counters diverged: got %+v, want %+v", got, want)
	}
	gotCorpus, gotInfo, err := Ingest(s2.cfg.Dir, fixedProgHash, corpus.Options{HalfLife: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if gotCorpus.Identity() != wantCorpus.Identity() {
		t.Fatalf("restart corpus identity diverged: %s vs %s", gotCorpus.Identity(), wantCorpus.Identity())
	}
	if *gotInfo != *wantInfo {
		t.Fatalf("restart bucket info diverged: %+v vs %+v", gotInfo, wantInfo)
	}

	// Damage anywhere but the tail stays loud.
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitN(data, []byte("\n"), 2)
	damaged := append([]byte("not json\n"), lines[1]...)
	if err := os.WriteFile(jpath, damaged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Dir: s.cfg.Dir, Store: st, Now: clock.Now}); !errors.Is(err, ErrJournalDamaged) {
		t.Fatalf("mid-journal damage: want ErrJournalDamaged, got %v", err)
	}
}

// TestIngestCounts verifies intake dedupe counters feed corpus member
// frequency: the ingested corpus matches a directly built one holding the
// same duplicate multiset.
func TestIngestCounts(t *testing.T) {
	clock := newFakeClock()
	s, _ := newTestServer(t, t.TempDir(), clock)
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	plan := testPlan()
	recA := testRec(plan, 0b101, 10)
	recB := testRec(plan, 0b111, 20)
	post(t, ts.URL, encodeRef(t, recA))
	post(t, ts.URL, encodeRef(t, recB))
	for i := 0; i < 4; i++ {
		clock.Advance(time.Minute)
		post(t, ts.URL, encodeRef(t, recA))
	}

	c, info, err := Ingest(s.cfg.Dir, fixedProgHash, corpus.Options{HalfLife: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if info.Stored != 2 || info.Accepted != 6 || info.Fingerprint != plan.Fingerprint() || info.Generation != 0 {
		t.Fatalf("bucket info: %+v", info)
	}
	counts := map[string]int{}
	for _, rep := range c.Reports {
		counts[rep.Signature] = rep.Count
	}
	if counts[corpus.Signature(recA)] != 5 || counts[corpus.Signature(recB)] != 1 {
		t.Fatalf("member counts: %v", counts)
	}

	// The same duplicate multiset built directly (one member per accepted
	// report) has the same identity.
	direct, err := corpus.Build([]corpus.Member{
		{Rec: recA, ModTime: clock.Now(), Count: 5},
		{Rec: recB, ModTime: clock.Now().Add(-4 * time.Minute)},
	}, corpus.Options{HalfLife: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if c.Identity() != direct.Identity() {
		t.Fatalf("ingested corpus identity %s != direct build %s", c.Identity(), direct.Identity())
	}
}

func TestRateLimitThrottles(t *testing.T) {
	clock := newFakeClock()
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutPlan(testPlan()); err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Dir: filepath.Join(dir, "intake"), Store: st, Now: clock.Now,
		RateBurst: 2, RatePerSecond: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	a := encodeRef(t, testRec(testPlan(), 0b101, 10))
	if resp := post(t, ts.URL, a); resp.StatusCode != http.StatusCreated {
		t.Fatalf("first: %d", resp.StatusCode)
	}
	if resp := post(t, ts.URL, a); resp.StatusCode != http.StatusOK {
		t.Fatalf("second: %d", resp.StatusCode)
	}
	resp := post(t, ts.URL, a)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// Throttled reports are flow control, not evidence: no journal growth.
	m := s.Metrics()
	if m.Throttled != 1 || m.Accepted != 2 {
		t.Fatalf("throttled %d accepted %d, want 1/2", m.Throttled, m.Accepted)
	}
	// The bucket refills with time.
	clock.Advance(3 * time.Second)
	if resp := post(t, ts.URL, a); resp.StatusCode != http.StatusOK {
		t.Fatalf("after refill: %d", resp.StatusCode)
	}
}

func TestPlanEndpointServesChainHead(t *testing.T) {
	clock := newFakeClock()
	s, st := newTestServer(t, t.TempDir(), clock)
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (*http.Response, []byte) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp, buf.Bytes()
	}

	resp, body := get("/plan/" + fixedProgHash)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: status %d", resp.StatusCode)
	}
	served, err := instrument.DecodePlan(body)
	if err != nil {
		t.Fatal(err)
	}
	if served.Fingerprint() != testPlan().Fingerprint() {
		t.Fatalf("served %s, want gen-0 head", served.Fingerprint())
	}

	// Publishing a refined generation moves the head sites see.
	if err := st.PutPlan(testChild()); err != nil {
		t.Fatal(err)
	}
	_, body = get("/plan/" + fixedProgHash)
	served, err = instrument.DecodePlan(body)
	if err != nil {
		t.Fatal(err)
	}
	if served.Fingerprint() != testChild().Fingerprint() || served.Generation != 1 {
		t.Fatalf("served %s gen %d, want refined head", served.Fingerprint(), served.Generation)
	}

	if resp, _ := get("/plan/" + otherProgHash); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown program: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
}
