package intake

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"pathlog/internal/obs"
)

// TestMetricsExposition pins the content negotiation: GET /metrics is
// Prometheus text by default (lintable, with the ingest histogram), and
// the legacy JSON snapshot behind Accept: application/json.
func TestMetricsExposition(t *testing.T) {
	clock := newFakeClock()
	s, _ := newTestServer(t, t.TempDir(), clock)
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	plan := testPlan()
	post(t, ts.URL, encodeRef(t, testRec(plan, 0b101, 10)))
	post(t, ts.URL, encodeRef(t, testRec(plan, 0b101, 10)))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("default content type = %q, want text/plain prom format", ct)
	}
	fams, err := obs.ParsePrometheus(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("prom lint failed:\n%s\n%v", body, err)
	}
	if fams["pathlog_intake_accepted_total"].Samples["pathlog_intake_accepted_total"] != 2 {
		t.Fatalf("accepted counter wrong:\n%s", body)
	}
	hist, ok := fams["pathlog_intake_ingest_ns"]
	if !ok || hist.Type != "histogram" {
		t.Fatalf("ingest histogram missing from exposition:\n%s", body)
	}
	if hist.Samples["pathlog_intake_ingest_ns_count"] != 2 {
		t.Fatalf("ingest histogram count wrong: %+v", hist.Samples)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/json")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Accept json content type = %q", ct)
	}
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("JSON view unparsable: %v\n%s", err, body)
	}
	if m.Accepted != 2 || m.Stored != 1 || m.Deduped != 1 {
		t.Fatalf("JSON snapshot wrong: %+v", m)
	}
}

// TestMetricsScrapeWhileIngesting hammers /report from several writers
// while scraping both exposition formats concurrently. Every scrape must
// be internally consistent — accepted == stored + deduped can only hold
// on every sample if the snapshot is taken in one locked pass — and the
// run doubles as the -race gate for the scrape path.
func TestMetricsScrapeWhileIngesting(t *testing.T) {
	clock := newFakeClock()
	s, _ := newTestServer(t, t.TempDir(), clock)
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	plan := testPlan()
	// Pre-store each signature so every concurrent POST is a pure
	// counter increment (accepted+deduped together under one lock): any
	// torn snapshot then breaks the books exactly.
	bodies := make([][]byte, 4)
	for i := range bodies {
		bodies[i] = encodeRef(t, testRec(plan, byte(i+1), 10+i))
		post(t, ts.URL, bodies[i])
	}

	const writers, perWriter, scrapes = 4, 50, 40
	var wg sync.WaitGroup
	errs := make(chan error, writers+2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				resp := post(t, ts.URL, bodies[w])
				if resp.StatusCode != http.StatusOK {
					errs <- errorfOnce("writer %d: status %d", w, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Add(2)
	go func() { // prom scraper
		defer wg.Done()
		for i := 0; i < scrapes; i++ {
			resp, err := http.Get(ts.URL + "/metrics")
			if err != nil {
				errs <- err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			fams, err := obs.ParsePrometheus(strings.NewReader(string(body)))
			if err != nil {
				errs <- err
				return
			}
			acc := fams["pathlog_intake_accepted_total"].Samples["pathlog_intake_accepted_total"]
			sto := fams["pathlog_intake_stored_total"].Samples["pathlog_intake_stored_total"]
			ded := fams["pathlog_intake_deduped_total"].Samples["pathlog_intake_deduped_total"]
			if acc != sto+ded {
				errs <- errorfOnce("torn prom scrape: accepted %v != stored %v + deduped %v", acc, sto, ded)
				return
			}
		}
	}()
	go func() { // JSON scraper
		defer wg.Done()
		for i := 0; i < scrapes; i++ {
			m := s.Metrics()
			if m.Accepted != m.Stored+m.Deduped {
				errs <- errorfOnce("torn JSON snapshot: %+v", m)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	final := s.Metrics()
	want := int64(len(bodies) + writers*perWriter)
	if final.Accepted != want || final.Stored != int64(len(bodies)) {
		t.Fatalf("final: accepted %d stored %d, want %d/%d", final.Accepted, final.Stored, want, len(bodies))
	}
}

func errorfOnce(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}
