package intake

import (
	"fmt"
	"path/filepath"
	"sort"
	"time"

	"pathlog/internal/corpus"
	"pathlog/internal/replay"
)

// BucketInfo describes the report bucket Ingest built a corpus from.
type BucketInfo struct {
	// ProgHash and Fingerprint/Generation identify the bucket: every member
	// was recorded under this retained plan generation.
	ProgHash    string
	Fingerprint string
	Generation  int
	// Stored is the number of unique signatures (corpus members); Accepted
	// includes the duplicates the intake service deduped away.
	Stored   int
	Accepted int
}

// Ingest builds a corpus from an intake directory for one program: it
// replays the journal read-only, picks the program's newest-generation
// report bucket (ties broken toward the larger fingerprint, matching the
// store's chain-head rule), and loads each stored report with its dedupe
// counter as the member frequency — so a report POSTed a thousand times
// weighs like a thousand files without a thousand files existing. Recency
// comes from the journal's observation times, not file mtimes.
func Ingest(dir, progHash string, opts corpus.Options) (*corpus.Corpus, *BucketInfo, error) {
	records, _, err := readJournal(filepath.Join(dir, JournalName))
	if err != nil {
		return nil, nil, err
	}
	type sigInfo struct {
		count  int
		newest int64
		bucket bucketKey
	}
	sigs := make(map[string]*sigInfo)
	for _, rec := range records {
		if rec.Prog != progHash {
			continue
		}
		switch rec.Event {
		case EventAccepted:
			sigs[rec.Sig] = &sigInfo{
				count:  1,
				newest: rec.TimeUnix,
				bucket: bucketKey{prog: rec.Prog, fp: rec.Plan, gen: rec.Gen},
			}
		case EventDuplicate:
			if si := sigs[rec.Sig]; si != nil {
				si.count++
				if rec.TimeUnix > si.newest {
					si.newest = rec.TimeUnix
				}
			}
		}
	}
	if len(sigs) == 0 {
		return nil, nil, fmt.Errorf("intake: ingest %s: no accepted reports for program %s", dir, progHash)
	}
	// Pick the newest-generation bucket for the program.
	var head bucketKey
	haveHead := false
	for _, si := range sigs {
		if !haveHead || si.bucket.gen > head.gen ||
			(si.bucket.gen == head.gen && si.bucket.fp > head.fp) {
			head = si.bucket
			haveHead = true
		}
	}
	info := &BucketInfo{ProgHash: head.prog, Fingerprint: head.fp, Generation: head.gen}
	var names []string
	for sig, si := range sigs {
		if si.bucket == head {
			names = append(names, sig)
		}
	}
	sort.Strings(names)
	var members []corpus.Member
	for _, sig := range names {
		si := sigs[sig]
		path := filepath.Join(dir, "reports", head.prog, head.fp, sig+".report")
		rec, err := replay.LoadRecording(path)
		if err != nil {
			return nil, nil, fmt.Errorf("intake: ingest stored report %s: %w", path, err)
		}
		if got := corpus.Signature(rec); got != sig {
			return nil, nil, fmt.Errorf("intake: stored report %s has signature %s (stored bytes no longer match the journal)", path, got)
		}
		members = append(members, corpus.Member{
			Rec:     rec,
			ModTime: time.Unix(si.newest, 0),
			Path:    path,
			Count:   si.count,
		})
		info.Stored++
		info.Accepted += si.count
	}
	c, err := corpus.Build(members, opts)
	if err != nil {
		return nil, nil, err
	}
	return c, info, nil
}
