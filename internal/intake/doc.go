// Package intake is the developer site's always-on report ingest: an HTTP
// service user sites POST stamped reference envelopes to, closing the
// paper's deployment loop without raw inputs ever leaving a site.
//
// The server reuses the plan store's trust boundary at the network edge: an
// envelope whose fingerprint stamp matches no retained plan, or whose
// program hash disagrees with the plan it names, is refused by name — the
// same refusals replay applies to files, applied before a report is ever
// stored. Accepted reports dedupe at ingest by corpus content signature: a
// million duplicate crashes cost one stored report (the verbatim POSTed
// bytes) plus a counter bump, and the counter feeds straight into corpus
// member frequency via Ingest.
//
// Every accepted, duplicate and refused event appends to a journal
// (journal.jsonl, one JSON record per line). The journal is the service's
// durable state: restart replays it to rebuild the dedupe table and every
// counter, and crash-recovery parity — counters after a restart equal
// counters without one — is the subsystem's core invariant. A torn final
// line (the crash remnant of an interrupted append) is healed on open;
// damage anywhere else is a loud error, never a silent rewind.
//
// The server also serves: GET /plan/{proghash} returns the program's
// current chain-head plan, so sites poll it to self-update to newly
// published generations and re-record under them. Robustness is part of
// the subsystem: a bounded ingest queue answers 429 + Retry-After when
// full, per-signature token buckets throttle duplicate floods, request
// bodies are capped, and /metrics + /healthz expose the counters, queue
// depth and journal size.
package intake
