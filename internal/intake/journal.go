package intake

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"pathlog/internal/obs"
)

// JournalName is the journal's filename inside an intake directory.
const JournalName = "journal.jsonl"

// Journal event names. Throttled requests are deliberately not journaled:
// throttling is flow control, not evidence, and a duplicate flood must not
// be able to grow the durable state it is being throttled to protect.
const (
	EventAccepted  = "accepted"
	EventDuplicate = "duplicate"
	EventRefused   = "refused"
)

// ErrJournalDamaged marks a journal whose body (not its final, possibly
// torn line) fails to parse. Replay refuses to proceed past it: counters
// rebuilt from a damaged journal could silently undercount accepted
// reports, which is exactly the loss the journal exists to rule out.
var ErrJournalDamaged = errors.New("intake journal damaged")

// Record is one journal line: an accepted, duplicate or refused ingest
// event. Accepted and duplicate records carry the report's content
// signature and its (program hash, plan fingerprint, generation) bucket;
// refused records carry the refusal reason, naming the stamp that failed.
type Record struct {
	Seq      int64  `json:"seq"`
	TimeUnix int64  `json:"time_unix"`
	Event    string `json:"event"`
	Sig      string `json:"sig,omitempty"`
	Prog     string `json:"prog,omitempty"`
	Plan     string `json:"plan,omitempty"`
	Gen      int    `json:"gen,omitempty"`
	Reason   string `json:"reason,omitempty"`
}

// readJournal parses a journal file, returning the records and the byte
// length of the valid prefix. A final line that is incomplete (no
// terminating newline, or unparseable) is treated as the crash remnant of
// an interrupted append and excluded from the prefix; an unparseable or
// out-of-order record anywhere earlier returns ErrJournalDamaged. A
// missing file is an empty journal, not an error.
func readJournal(path string) ([]Record, int64, error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("intake: read journal: %w", err)
	}
	var records []Record
	var valid int64
	offset := 0
	for offset < len(data) {
		end := offset
		for end < len(data) && data[end] != '\n' {
			end++
		}
		line := data[offset:end]
		terminated := end < len(data)
		var rec Record
		if uerr := json.Unmarshal(line, &rec); uerr != nil || rec.Event == "" {
			if !terminated {
				// Torn final line: the append was interrupted mid-write.
				break
			}
			return nil, 0, fmt.Errorf("intake: %w: %s record %d: %q", ErrJournalDamaged, path, len(records)+1, line)
		}
		if !terminated {
			// Parsed but unterminated: the newline never hit the disk, so the
			// record's durability is unknown — treat it as the torn tail too.
			break
		}
		if n := len(records); n > 0 && rec.Seq <= records[n-1].Seq {
			return nil, 0, fmt.Errorf("intake: %w: %s record %d: seq %d after %d",
				ErrJournalDamaged, path, n+1, rec.Seq, records[n-1].Seq)
		}
		records = append(records, rec)
		valid = int64(end + 1)
		offset = end + 1
	}
	return records, valid, nil
}

// journal is the append side: an open file written through the shared
// obs.JSONL encoder (which also keeps the record/byte counters the
// metrics surface reports), plus the sequence assignment that makes the
// replayed order checkable.
type journal struct {
	f       *os.File
	path    string
	jl      *obs.JSONL
	nextSeq int64
}

// openJournal replays the journal at path, heals a torn final line by
// truncating to the valid prefix, and opens it for appending. The replayed
// records are returned so the server can rebuild its dedupe table.
func openJournal(path string) (*journal, []Record, error) {
	records, valid, err := readJournal(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("intake: open journal: %w", err)
	}
	if info, err := f.Stat(); err == nil && info.Size() > valid {
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("intake: heal journal tail: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("intake: open journal: %w", err)
	}
	j := &journal{f: f, path: path, jl: obs.NewJSONL(f), nextSeq: 1}
	j.jl.Seed(int64(len(records)), valid)
	if n := len(records); n > 0 {
		j.nextSeq = records[n-1].Seq + 1
	}
	return j, records, nil
}

// append assigns the next sequence number and writes the record as one
// newline-terminated JSON line through the shared encoder.
func (j *journal) append(rec Record) error {
	rec.Seq = j.nextSeq
	if err := j.jl.Encode(rec); err != nil {
		return fmt.Errorf("intake: append journal: %w", err)
	}
	j.nextSeq++
	return nil
}

// stats reports the journal's record and byte counters.
func (j *journal) stats() (records, bytes int64) {
	return j.jl.Stats()
}

func (j *journal) close() error {
	return j.f.Close()
}
