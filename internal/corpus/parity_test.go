package corpus_test

import (
	"context"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"pathlog/internal/apps"
	"pathlog/internal/concolic"
	"pathlog/internal/core"
	"pathlog/internal/corpus"
	"pathlog/internal/instrument"
	"pathlog/internal/lang"
	"pathlog/internal/replay"
	"pathlog/internal/static"
)

// repoRoot locates the module root from this file's path, for go build.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// buildWorker compiles cmd/shardworker into a temp dir.
func buildWorker(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go toolchain unavailable: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "shardworker")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/shardworker")
	cmd.Dir = repoRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build shardworker: %v\n%s", err, out)
	}
	return bin
}

// parityCorpus builds a three-member uServer corpus: three distinct
// crashing inputs (experiments 1, 2 and 4 — the quick replays) recorded
// under one low-coverage dynamic plan of the userver-exp3 scenario, whose
// name the subprocess worker resolves to the same program and spec.
func parityCorpus(t *testing.T) (*corpus.Corpus, *core.Scenario) {
	t.Helper()
	ctx := context.Background()
	s3, err := apps.UServerScenario(3, 72)
	if err != nil {
		t.Fatal(err)
	}
	an := apps.UServerAnalysisScenario()
	dyn := an.AnalyzeDynamicContext(ctx, concolic.Options{MaxRuns: 6})
	st := s3.AnalyzeStatic(static.Options{LibAsSymbolic: true})
	plan := instrument.BuildPlan(s3.Prog, instrument.MethodDynamic,
		instrument.Inputs{Dynamic: dyn, Static: st}, true)

	base := time.Unix(1_700_000_000, 0)
	var members []corpus.Member
	for i, exp := range []int{1, 2, 4} {
		se, err := apps.UServerScenario(exp, 72)
		if err != nil {
			t.Fatal(err)
		}
		scn := &core.Scenario{Name: s3.Name, Prog: s3.Prog, Spec: s3.Spec, UserBytes: se.UserBytes}
		rec, _, err := scn.RecordContext(ctx, plan)
		if err != nil {
			t.Fatal(err)
		}
		if rec == nil {
			t.Fatalf("exp%d did not crash", exp)
		}
		members = append(members, corpus.Member{Rec: rec, ModTime: base.Add(time.Duration(i) * time.Hour)})
	}
	c, err := corpus.Build(members, corpus.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Reports) != 3 {
		t.Fatalf("parity corpus has %d members, want 3 distinct", len(c.Reports))
	}
	return c, s3
}

// normalize strips wall-clock fields so profiles can be compared across
// shard counts and process boundaries.
func normalize(p *instrument.SearchProfile) *instrument.SearchProfile {
	out := *p
	out.Branches = make(map[lang.BranchID]*instrument.BranchCost, len(p.Branches))
	for id, bc := range p.Branches {
		c := *bc
		c.SolverTime = 0
		out.Branches[id] = &c
	}
	return &out
}

// TestShardParity is the sharded-replay correctness gate: the weighted
// merged profile must be identical whether the corpus replays in 1 shard
// or 4, in-process or in worker subprocesses over the JSON protocol. Run
// under -race (CI does), the in-process variants also exercise the
// concurrent shard goroutines against the shared merger.
func TestShardParity(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a worker binary and replays a corpus 4 times")
	}
	ctx := context.Background()
	c, s3 := parityCorpus(t)
	worker := buildWorker(t)
	opts := replay.Options{MaxRuns: 1500, TimeBudget: 15 * time.Second, Workers: 1}

	type config struct {
		name   string
		shards int
		runner corpus.Runner
	}
	configs := []config{
		{"inproc-1", 1, &corpus.InProcessRunner{Prog: s3.Prog, Spec: s3.Spec, Opts: opts}},
		{"inproc-4", 4, &corpus.InProcessRunner{Prog: s3.Prog, Spec: s3.Spec, Opts: opts}},
		{"subproc-1", 1, &corpus.SubprocessRunner{Command: []string{worker}, Scenario: s3.Name, Opts: opts}},
		{"subproc-4", 4, &corpus.SubprocessRunner{Command: []string{worker}, Scenario: s3.Name, Opts: opts}},
	}
	var ref *instrument.SearchProfile
	var refOut *corpus.Outcome
	for _, cfg := range configs {
		out, err := corpus.Replay(ctx, c, cfg.shards, cfg.runner)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if out.Reproduced != out.Members {
			t.Fatalf("%s: %d/%d reproduced — fixture must be all-quick replays",
				cfg.name, out.Reproduced, out.Members)
		}
		got := normalize(out.Profile)
		if ref == nil {
			ref, refOut = got, out
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Errorf("%s: merged profile diverges from %s:\n got %+v\n ref %+v",
				cfg.name, configs[0].name, got, ref)
		}
		if out.MeanRuns != refOut.MeanRuns || out.MaxRuns != refOut.MaxRuns {
			t.Errorf("%s: population stats diverge: mean %g max %d vs mean %g max %d",
				cfg.name, out.MeanRuns, out.MaxRuns, refOut.MeanRuns, refOut.MaxRuns)
		}
	}
}
