// Package corpus turns the single-recording refinement loop into a
// corpus-driven one: a deployed system receives a stream of bug reports,
// and refining against only the latest crash lets one noisy report steer
// the whole instrumentation plan.
//
// A Corpus is built from a directory of recording envelopes (Ingest) or
// from in-memory recordings (Build). Reports that are indistinguishable to
// the developer site — same crash site, same plan stamp, same logged
// evidence — dedupe into one member whose frequency is the duplicate
// count; each member then gets a deterministic weight from its frequency
// and its recency (a half-life decay over file mtimes, measured against
// the newest member rather than the wall clock, so the same file set
// always weighs the same). The corpus identity is a hash over the member
// signatures, so two ingests of the same reports agree on what they are
// refining against.
//
// Replay fans the corpus out over N shards. Each shard replays its
// reports — in-process through the replay engine, or out-of-process
// through a worker subprocess speaking the JSON stdin/stdout protocol of
// ShardRequest/ShardResponse (cmd/shardworker) — and returns one
// plan-fingerprint-stamped SearchProfile per report. The central Merger is
// the only new trust boundary: every incoming profile's program hash, plan
// fingerprint and generation are verified before it is merged, and a
// foreign or stale profile is refused with both identities named. Merging
// scales each report's search cost by its weight
// (instrument.SearchProfile.MergeWeighted), so the aggregated attribution
// converges on the report population instead of the loudest crash.
package corpus
